// Command swiftvet runs swift's project-specific static-analysis suite
// (internal/lint) over the module: injected-clock discipline, the
// zero-lock data path, error attribution across layer boundaries, metric
// naming, goroutine shutdown paths, and the interprocedural gates —
// hot-path allocation freedom, pooled-buffer lifecycles, lock-guarded
// fields, and deadline propagation.
//
// Usage:
//
//	swiftvet [-json] [-time] [-run analyzer[,analyzer...]] [packages]
//
// Package patterns are module-relative ("./...", "./internal/...",
// "./internal/core"); the default is "./...". Exit status: 0 when clean,
// 1 when findings are reported, 2 when the module fails to load.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"swift/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("swiftvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	timings := fs.Bool("time", false, "print per-analyzer wall time to stderr")
	runList := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("dir", "", "directory to resolve the module from (default: cwd)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *runList != "" {
		analyzers = lint.ByName(strings.Split(*runList, ",")...)
		if len(analyzers) == 0 {
			fmt.Fprintf(stderr, "swiftvet: no analyzers match -run=%s\n", *runList)
			return 2
		}
	}

	start := *dir
	if start == "" {
		cwd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "swiftvet:", err)
			return 2
		}
		start = cwd
	}
	root, err := lint.FindModuleRoot(start)
	if err != nil {
		fmt.Fprintln(stderr, "swiftvet:", err)
		return 2
	}
	module, err := lint.ModulePath(root)
	if err != nil {
		fmt.Fprintln(stderr, "swiftvet:", err)
		return 2
	}
	pkgs, err := lint.Load(root, module)
	if err != nil {
		fmt.Fprintln(stderr, "swiftvet:", err)
		return 2
	}
	for _, p := range pkgs {
		if len(p.Errs) > 0 {
			fmt.Fprintf(stderr, "swiftvet: package %s does not type-check:\n", p.Path)
			for _, e := range p.Errs {
				fmt.Fprintf(stderr, "  %v\n", e)
			}
			return 2
		}
	}

	patterns := lint.NormalizePatterns(fs.Args())
	var selected []*lint.Package
	for _, p := range pkgs {
		if p.Match(module, patterns) {
			selected = append(selected, p)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(stderr, "swiftvet: no packages match %v\n", fs.Args())
		return 2
	}

	diags, spent := lint.RunTimed(selected, analyzers)
	if *timings {
		names := make([]string, 0, len(spent))
		for name := range spent {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool { return spent[names[i]] > spent[names[j]] })
		var total time.Duration
		for _, name := range names {
			fmt.Fprintf(stderr, "swiftvet: %-12s %8.1fms\n", name, float64(spent[name].Microseconds())/1000)
			total += spent[name]
		}
		fmt.Fprintf(stderr, "swiftvet: %-12s %8.1fms\n", "total", float64(total.Microseconds())/1000)
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "swiftvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "swiftvet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
