package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for exit-code tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if _, ok := files["go.mod"]; !ok {
		files["go.mod"] = "module demo\n\ngo 1.22\n"
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const violating = `package memnet

import "time"

// Now leaks the wall clock.
func Now() time.Time { return time.Now() }
`

// TestTreeClean is the acceptance gate: the committed tree carries no
// findings, so swiftvet over the whole module exits 0.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load is slow")
	}
	var out, errb strings.Builder
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("swiftvet ./... = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

// TestExitCodeFindings: a seeded violation exits 1 and prints the finding.
func TestExitCodeFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{"memnet/m.go": violating})
	var out, errb strings.Builder
	if code := run([]string{"-dir", dir, "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[clockcheck]") {
		t.Errorf("stdout missing clockcheck finding:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "1 finding(s)") {
		t.Errorf("stderr missing summary: %s", errb.String())
	}
}

// TestJSONOutput: -json emits a machine-readable array with positions.
func TestJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{"memnet/m.go": violating})
	var out, errb strings.Builder
	if code := run([]string{"-json", "-dir", dir, "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "clockcheck" || d.File != "memnet/m.go" || d.Line != 6 || d.Col == 0 || d.Message == "" {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
}

// TestJSONClean: a clean module still emits a (empty) JSON array.
func TestJSONClean(t *testing.T) {
	dir := writeModule(t, map[string]string{"util/u.go": "package util\n\n// Nop does nothing.\nfunc Nop() {}\n"})
	var out, errb strings.Builder
	if code := run([]string{"-json", "-dir", dir, "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, errb.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("stdout = %q, want []", got)
	}
}

// TestExitCodeLoadError: a module that fails to type-check exits 2.
func TestExitCodeLoadError(t *testing.T) {
	dir := writeModule(t, map[string]string{"broken/b.go": "package broken\n\nfunc f() { undefined() }\n"})
	var out, errb strings.Builder
	if code := run([]string{"-dir", dir, "./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "does not type-check") {
		t.Errorf("stderr missing type-check report: %s", errb.String())
	}
}

// TestRunSubset: -run filters analyzers; unknown names exit 2.
func TestRunSubset(t *testing.T) {
	dir := writeModule(t, map[string]string{"memnet/m.go": violating})
	var out, errb strings.Builder
	if code := run([]string{"-run", "goexit", "-dir", dir, "./..."}, &out, &errb); code != 0 {
		t.Fatalf("-run goexit exit = %d, want 0 (clockcheck filtered out)\n%s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-run", "nosuch", "-dir", dir, "./..."}, &out, &errb); code != 2 {
		t.Fatalf("-run nosuch exit = %d, want 2", code)
	}
}

// TestList names every analyzer.
func TestList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"clockcheck", "lockio", "errattr", "metricname", "goexit"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestBadPattern: patterns matching nothing exit 2.
func TestBadPattern(t *testing.T) {
	dir := writeModule(t, map[string]string{"util/u.go": "package util\n\n// Nop does nothing.\nfunc Nop() {}\n"})
	var out, errb strings.Builder
	if code := run([]string{"-dir", dir, "./nonexistent/..."}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr: %s", code, errb.String())
	}
}
