// Command swiftd runs a Swift storage agent over UDP: the server process
// that owns one machine's disk and serves object fragments to Swift
// clients. Deploy one per storage machine and point clients (swiftctl or
// the swift package) at the set.
//
// It can also host a mediator replica — the admission-control tier — on
// its own control port, either alongside the agent or standalone
// (mediator-only, no store). Replicas given peers with -mediator-peers
// federate: sessions admitted on any replica are mirrored to the others,
// so clients fail over when a replica dies. On SIGTERM a mediator replica
// drains first — live sessions are handed to peers so no lease lapses —
// while SIGINT exits immediately (a crash, for drills).
//
// Usage:
//
//	swiftd -addr 127.0.0.1 -port 7070 -dir /var/swift  # file-backed agent
//	swiftd -port 7071 -mem                             # memory-backed agent
//	swiftd -mediator 7060 -mediator-name med-a \
//	       -mediator-peers med-b=h2:7060,med-c=h3:7060 \
//	       -mediator-agents h1:7070@400,h2:7070@400 \
//	       -lease-ttl 30s                              # mediator-only replica
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"swift/internal/agent"
	"swift/internal/integrity"
	"swift/internal/mediator"
	"swift/internal/medrpc"
	"swift/internal/obs"
	"swift/internal/store"
	"swift/internal/transport/udpnet"
)

func main() {
	log.SetPrefix("swiftd: ")
	log.SetFlags(log.LstdFlags)

	addr := flag.String("addr", "127.0.0.1", "IP address to bind")
	port := flag.String("port", agent.DefaultPort, "well-known control port")
	dir := flag.String("dir", "", "directory for the object store (required unless -mem or mediator-only)")
	mem := flag.Bool("mem", false, "keep objects in memory instead of on disk")
	sync := flag.Bool("sync", false, "write through to stable storage before acknowledging")
	withIntegrity := flag.Bool("integrity", false, "store fragments in the block-checksum envelope (detects at-rest corruption)")
	blockSize := flag.Int64("blocksize", 0, "integrity envelope block size in bytes (default 4096; implies -integrity)")
	verbose := flag.Bool("v", false, "log protocol diagnostics and burst-level trace events")
	metrics := flag.String("metrics", "", "HTTP address for /metrics, /trace and /debug/pprof (e.g. :9090; empty = off)")
	traceRate := flag.Float64("trace", 0, "distributed-tracing head-sample rate in [0,1] (0 = off); spans join client-minted trace contexts and serve at /trace/ops")
	readDelay := flag.Duration("read-delay", 0, "inject an artificial pause before serving each read (fault-injection drill; annotated in the trace span)")
	maxInflight := flag.Int("max-inflight-reads", 0, "bound the agent's read service queue; excess requests get an explicit pushback reply (0 = default)")
	medPort := flag.String("mediator", "", "serve a mediator replica on this control port (standalone when no store is given)")
	medName := flag.String("mediator-name", "", "this replica's name within the federated tier (default ADDR:PORT)")
	medPeers := flag.String("mediator-peers", "", "peer replicas as NAME=HOST:PORT,... (enables session mirroring)")
	medAgents := flag.String("mediator-agents", "", "installation agents as ADDR@RATEKB,... for the admission model (required with -mediator)")
	medNet := flag.Float64("mediator-net", 1<<20, "interconnect capacity in KB/s for the admission model")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "mediator session lease TTL (0 = sessions never expire)")
	admitWatermark := flag.Float64("admit-watermark", 0, "mediator admission watermark in [0,1]: past this reserved fraction new sessions are rejected with a retry-after hint (0 = admit to capacity)")
	flag.Parse()

	mediatorOnly := *medPort != "" && !*mem && *dir == ""

	var st store.Store
	switch {
	case mediatorOnly:
	case *mem:
		st = store.NewMem()
	case *dir != "":
		fs, err := store.NewFileStore(*dir)
		if err != nil {
			log.Fatalf("open store: %v", err)
		}
		st = fs
	default:
		fmt.Fprintln(os.Stderr, "swiftd: need -dir DIR, -mem, or -mediator PORT")
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	host := udpnet.NewHost(*addr)
	host.Register(reg)
	tracer := obs.NewTracer(obs.TracerConfig{Rate: *traceRate})
	tracer.Register(reg)

	var a *agent.Agent
	if !mediatorOnly {
		if *withIntegrity || *blockSize > 0 {
			ist := integrity.NewStore(st, *blockSize)
			reg.CounterFunc("swift_store_corruptions_total",
				"At-rest corruption detected by the integrity envelope.", nil,
				func() float64 { return float64(ist.Corruptions()) })
			st = ist
		}
		cfg := agent.Config{
			Port: *port, SyncWrites: *sync, Obs: reg, Verbose: *verbose,
			Tracer: tracer, ReadDelay: *readDelay,
			MaxInflightReads: *maxInflight,
		}
		if *verbose {
			cfg.Logf = log.Printf
		}
		var err error
		a, err = agent.New(host, st, cfg)
		if err != nil {
			log.Fatalf("start: %v", err)
		}
		log.Printf("storage agent serving on %s (store=%s sync=%v integrity=%v)",
			a.Addr(), storeDesc(*mem, *dir), *sync, *withIntegrity || *blockSize > 0)
	}

	var med *mediator.Mediator
	var medSrv *medrpc.Server
	if *medPort != "" {
		infos, err := parseMedAgents(*medAgents)
		if err != nil {
			log.Fatalf("mediator: %v", err)
		}
		name := *medName
		if name == "" {
			name = *addr + ":" + *medPort
		}
		med, err = mediator.New(mediator.Config{
			Agents:         infos,
			Nets:           []mediator.NetInfo{{Name: "net", Capacity: *medNet * 1024}},
			Self:           name,
			LeaseTTL:       *leaseTTL,
			AdmitWatermark: *admitWatermark,
			Obs:            reg,
		})
		if err != nil {
			log.Fatalf("mediator: %v", err)
		}
		peers, err := parseMedPeers(host, *medPeers)
		if err != nil {
			log.Fatalf("mediator: %v", err)
		}
		med.SetPeers(peers)
		logf := func(string, ...any) {}
		if *verbose {
			logf = log.Printf
		}
		medSrv, err = medrpc.Serve(medrpc.ServerConfig{Host: host, Port: *medPort, Med: med, Logf: logf, Tracer: tracer})
		if err != nil {
			log.Fatalf("mediator: %v", err)
		}
		log.Printf("mediator replica %q serving on %s (agents=%d peers=%d lease=%v)",
			name, medSrv.Addr(), len(infos), len(peers), *leaseTTL)
	}

	if *metrics != "" {
		var tr *obs.TraceRing
		if a != nil {
			tr = a.Trace()
		}
		msrv, err := obs.Serve(*metrics, reg, tr, tracer)
		if err != nil {
			log.Fatalf("metrics: %v", err)
		}
		defer msrv.Close()
		log.Printf("metrics on http://%s/metrics (trace at /trace, spans at /trace/ops, pprof at /debug/pprof)", msrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("shutting down (%v)", s)
	// SIGTERM is the graceful path: a mediator replica drains first,
	// handing its live sessions to peers so zero leases lapse. SIGINT
	// skips the drain — the crash path, which drills rely on.
	if med != nil && s == syscall.SIGTERM {
		handed, err := med.Drain()
		if err != nil {
			log.Printf("mediator drain: %v", err)
		}
		log.Printf("mediator drained: %d sessions handed to peers", handed)
	}
	if medSrv != nil {
		medSrv.Close()
	}
	if med != nil {
		med.Close()
	}
	if a != nil {
		if err := a.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
	}
}

// parseMedAgents parses the admission model's agent list: ADDR@RATEKB
// entries, comma-separated, all on the single modeled interconnect.
func parseMedAgents(s string) ([]mediator.AgentInfo, error) {
	if s == "" {
		return nil, fmt.Errorf("need -mediator-agents ADDR@RATEKB,...")
	}
	var infos []mediator.AgentInfo
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		addr, rateStr, ok := strings.Cut(ent, "@")
		if !ok {
			return nil, fmt.Errorf("bad -mediator-agents entry %q (want ADDR@RATEKB)", ent)
		}
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("bad rate in -mediator-agents entry %q", ent)
		}
		infos = append(infos, mediator.AgentInfo{Addr: addr, Rate: rate * 1024, Net: 0})
	}
	if len(infos) == 0 {
		return nil, fmt.Errorf("empty -mediator-agents")
	}
	return infos, nil
}

// parseMedPeers parses NAME=HOST:PORT peer entries into wire stubs.
func parseMedPeers(host *udpnet.Host, s string) ([]mediator.Peer, error) {
	if s == "" {
		return nil, nil
	}
	var peers []mediator.Peer
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		name, addr, ok := strings.Cut(ent, "=")
		if !ok {
			return nil, fmt.Errorf("bad -mediator-peers entry %q (want NAME=HOST:PORT)", ent)
		}
		c, err := medrpc.NewClient(medrpc.ClientConfig{Host: host, Name: name, Addr: addr})
		if err != nil {
			return nil, fmt.Errorf("peer %q: %w", name, err)
		}
		peers = append(peers, c)
	}
	return peers, nil
}

func storeDesc(mem bool, dir string) string {
	if mem {
		return "memory"
	}
	return dir
}
