// Command swiftd runs a Swift storage agent over UDP: the server process
// that owns one machine's disk and serves object fragments to Swift
// clients. Deploy one per storage machine and point clients (swiftctl or
// the swift package) at the set.
//
// Usage:
//
//	swiftd -addr 127.0.0.1 -port 7070 -dir /var/swift  # file-backed
//	swiftd -port 7071 -mem                             # memory-backed
//	swiftd -port 7072 -sync                            # synchronous writes
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"swift/internal/agent"
	"swift/internal/integrity"
	"swift/internal/obs"
	"swift/internal/store"
	"swift/internal/transport/udpnet"
)

func main() {
	log.SetPrefix("swiftd: ")
	log.SetFlags(log.LstdFlags)

	addr := flag.String("addr", "127.0.0.1", "IP address to bind")
	port := flag.String("port", agent.DefaultPort, "well-known control port")
	dir := flag.String("dir", "", "directory for the object store (required unless -mem)")
	mem := flag.Bool("mem", false, "keep objects in memory instead of on disk")
	sync := flag.Bool("sync", false, "write through to stable storage before acknowledging")
	withIntegrity := flag.Bool("integrity", false, "store fragments in the block-checksum envelope (detects at-rest corruption)")
	blockSize := flag.Int64("blocksize", 0, "integrity envelope block size in bytes (default 4096; implies -integrity)")
	verbose := flag.Bool("v", false, "log protocol diagnostics and burst-level trace events")
	metrics := flag.String("metrics", "", "HTTP address for /metrics, /trace and /debug/pprof (e.g. :9090; empty = off)")
	flag.Parse()

	var st store.Store
	switch {
	case *mem:
		st = store.NewMem()
	case *dir != "":
		fs, err := store.NewFileStore(*dir)
		if err != nil {
			log.Fatalf("open store: %v", err)
		}
		st = fs
	default:
		fmt.Fprintln(os.Stderr, "swiftd: need -dir DIR or -mem")
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	if *withIntegrity || *blockSize > 0 {
		ist := integrity.NewStore(st, *blockSize)
		reg.CounterFunc("swift_store_corruptions_total",
			"At-rest corruption detected by the integrity envelope.", nil,
			func() float64 { return float64(ist.Corruptions()) })
		st = ist
	}
	host := udpnet.NewHost(*addr)
	host.Register(reg)
	cfg := agent.Config{Port: *port, SyncWrites: *sync, Obs: reg, Verbose: *verbose}
	if *verbose {
		cfg.Logf = log.Printf
	}
	a, err := agent.New(host, st, cfg)
	if err != nil {
		log.Fatalf("start: %v", err)
	}
	log.Printf("storage agent serving on %s (store=%s sync=%v integrity=%v)",
		a.Addr(), storeDesc(*mem, *dir), *sync, *withIntegrity || *blockSize > 0)

	if *metrics != "" {
		msrv, err := obs.Serve(*metrics, reg, a.Trace())
		if err != nil {
			log.Fatalf("metrics: %v", err)
		}
		defer msrv.Close()
		log.Printf("metrics on http://%s/metrics (trace at /trace, pprof at /debug/pprof)", msrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	if err := a.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
}

func storeDesc(mem bool, dir string) string {
	if mem {
		return "memory"
	}
	return dir
}
