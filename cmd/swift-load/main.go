// Command swift-load drives a modeled Swift installation with a synthetic
// request stream (Poisson arrivals, configurable read/write mix and size
// distribution) and reports per-request latency percentiles and aggregate
// throughput — the "normal file system" traffic of the paper's §7, as
// opposed to the large sequential transfers of Tables 1-4.
//
// With -chaos, a deterministic seeded fault schedule (agent crashes,
// partitions, host pauses, latency spikes, loss and corruption bursts)
// runs against the installation while the load is applied, the client's
// background health monitor re-admits recovered agents automatically, and
// per-operation errors are counted rather than fatal — a chaos soak.
//
// Usage:
//
//	swift-load -agents 3 -rate 20 -requests 400 -size 64K
//	swift-load -agents 4 -parity -mix 0.5 -dist exp
//	swift-load -agents 4 -parity -chaos -chaos-seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"swift/internal/bench"
	"swift/internal/core"
	"swift/internal/faultinject"
	"swift/internal/obs"
	"swift/internal/stats"
	"swift/internal/workload"
)

func main() {
	agents := flag.Int("agents", 3, "number of storage agents")
	segments := flag.Int("segments", 1, "number of Ethernet segments")
	parity := flag.Bool("parity", false, "computed-copy redundancy")
	rate := flag.Float64("rate", 10, "arrival rate, requests/second (modeled)")
	requests := flag.Int("requests", 300, "number of requests")
	mix := flag.Float64("mix", 0.8, "read fraction")
	sizeStr := flag.String("size", "64K", "request size (suffix K or M)")
	dist := flag.String("dist", "fixed", "size distribution: fixed, uniform, exp")
	objects := flag.Int("objects", 8, "distinct objects")
	scale := flag.Float64("scale", 6, "modeled time scale")
	seed := flag.Int64("seed", 1, "random seed")
	chaos := flag.Bool("chaos", false, "run a randomized fault schedule against the load")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault schedule seed")
	cacheProf := flag.Bool("cache", false, "run the cached re-read profile instead of the Poisson load: sequential read + re-read with the block cache on vs off, reporting the agent round-trip ratio")
	cacheSize := flag.String("cache-size", "0", "client block cache size (suffix K or M; 0 = auto when a cache feature is on, -1 = off)")
	writeBehind := flag.String("write-behind", "0", "write-behind dirty budget (suffix K or M; 0 = write-through)")
	verbose := flag.Bool("v", false, "log diagnostics and burst-level trace events to stderr")
	metrics := flag.String("metrics", "", "HTTP address for /metrics, /trace and /debug/pprof while the load runs (e.g. :9090; empty = off)")
	traceRate := flag.Float64("trace", 0, "distributed-tracing head-sample rate in [0,1] (0 = off); slowest op traces print after the run")
	traceTop := flag.Int("trace-top", 3, "how many of the slowest kept op traces to render after the run (with -trace)")
	flag.Parse()

	if *chaos && !*parity {
		fmt.Fprintln(os.Stderr, "swift-load: note: -chaos without -parity will surface errors (no redundancy to mask faults)")
	}

	size, err := parseSize(*sizeStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swift-load: %v\n", err)
		os.Exit(2)
	}
	cacheBytes, err := parseSizeSigned(*cacheSize)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swift-load: -cache-size: %v\n", err)
		os.Exit(2)
	}
	writeBehindBytes, err := parseSizeSigned(*writeBehind)
	if err != nil || writeBehindBytes < 0 {
		fmt.Fprintf(os.Stderr, "swift-load: -write-behind: bad size %q\n", *writeBehind)
		os.Exit(2)
	}

	if *cacheProf {
		runCacheProfile(*agents, *segments, *scale, *seed, *verbose)
		return
	}
	var sizes workload.SizeDist
	switch *dist {
	case "fixed":
		sizes = workload.Fixed(size)
	case "uniform":
		sizes = workload.Uniform{Min: size / 4, Max: size}
	case "exp":
		sizes = workload.Exponential{Mean: float64(size), Min: 1024, Max: 4 * size}
	default:
		fmt.Fprintf(os.Stderr, "swift-load: unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	// One tracer is shared by the client and every modeled agent, so the
	// collector assembles full cross-layer span trees in-process.
	tracer := obs.NewTracer(obs.TracerConfig{Rate: *traceRate})
	tracer.Register(reg)
	copts := bench.Options{
		Agents:         *agents,
		Segments:       *segments,
		Parity:         *parity,
		Scale:          *scale,
		Seed:           *seed,
		CacheSize:      cacheBytes,
		WriteBehindMax: writeBehindBytes,
		Obs:            reg,
		Tracer:         tracer,
	}
	if *verbose {
		copts.Verbose = true
		copts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *chaos {
		// The monitor drives automatic suspect/down demotion and
		// re-admission while faults fly. The give-up budget is cut from
		// the measurement default (80 modeled seconds of no progress) to
		// ~3, so failure attribution outpaces the fault schedule.
		copts.HealthInterval = 300 * time.Millisecond
		copts.MaxRetries = 8
	}
	cluster, err := bench.NewSwiftCluster(copts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swift-load: %v\n", err)
		os.Exit(1)
	}
	defer cluster.Close()

	if *metrics != "" {
		msrv, err := obs.Serve(*metrics, reg, cluster.Client.Trace(), tracer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swift-load: metrics: %v\n", err)
			os.Exit(1)
		}
		defer msrv.Close()
		fmt.Printf("metrics on http://%s/metrics (trace at /trace, pprof at /debug/pprof)\n", msrv.Addr())
	}

	gen, err := workload.New(workload.Config{
		Rate:         *rate,
		ReadFraction: *mix,
		Sizes:        sizes,
		Objects:      *objects,
		ObjectSize:   8 << 20,
		Seed:         *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "swift-load: %v\n", err)
		os.Exit(1)
	}

	// Pre-create and pre-fill the object set so reads have data.
	files := make(map[string]*core.File)
	fill := make([]byte, 8<<20)
	for i := range fill {
		fill[i] = byte(i * 131)
	}
	for i := 0; i < *objects; i++ {
		name := fmt.Sprintf("obj%03d", i)
		f, err := cluster.Client.Open(name, core.OpenFlags{Create: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "swift-load: open %s: %v\n", name, err)
			os.Exit(1)
		}
		if _, err := f.WriteAt(fill, 0); err != nil {
			fmt.Fprintf(os.Stderr, "swift-load: prefill %s: %v\n", name, err)
			os.Exit(1)
		}
		files[name] = f
	}
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	fmt.Printf("prefilled %d objects of %d MB; starting %d requests at %.1f req/s (reads %.0f%%)\n",
		*objects, len(fill)>>20, *requests, *rate, *mix*100)

	// Chaos: walk a deterministic fault schedule in modeled time while
	// the load runs, healing everything when the load finishes.
	var ctl *faultinject.Controller
	var chaosStop, chaosDone chan struct{}
	if *chaos {
		ctl = faultinject.New(faultinject.Cluster{
			Net:        cluster.Net,
			Segments:   cluster.Segments,
			AgentHosts: cluster.AgentHosts,
			Crash:      cluster.CrashAgent,
			Restart:    cluster.RestartAgent,
		}, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})
		dur := time.Duration(float64(*requests) / *rate * float64(time.Second))
		sched := faultinject.RandomSchedule(*chaosSeed, faultinject.ScheduleOpts{
			Agents:   *agents,
			Segments: *segments,
			Duration: dur,
		})
		fmt.Printf("chaos: %d fault events over %v modeled (seed %d)\n",
			len(sched), dur, *chaosSeed)
		chaosStop = make(chan struct{})
		chaosDone = make(chan struct{})
		go func() {
			defer close(chaosDone)
			if err := ctl.Run(sched, chaosStop); err != nil {
				fmt.Fprintf(os.Stderr, "swift-load: chaos: %v\n", err)
			}
		}()
	}

	// Replay the stream in modeled time: arrivals are honored against
	// the modeled clock (open-loop), each request runs to completion
	// before the next is issued once it has arrived.
	var readLat, writeLat, allLat stats.Sample
	var bytesMoved int64
	opErrs := 0
	buf := make([]byte, 16<<20)
	start := cluster.Net.Now()
	for i := 0; i < *requests; i++ {
		op := gen.Next()
		// Wait for the arrival instant.
		for cluster.Net.Now()-start < op.Start {
			cluster.Net.Sleep(op.Start - (cluster.Net.Now() - start))
		}
		f := files[op.Object]
		t0 := cluster.Net.Now()
		var opErr error
		if op.Read {
			_, opErr = f.ReadAt(buf[:op.Size], op.Offset)
		} else {
			_, opErr = f.WriteAt(buf[:op.Size], op.Offset)
		}
		if opErr != nil {
			kind := "write"
			if op.Read {
				kind = "read"
			}
			if !*chaos {
				fmt.Fprintf(os.Stderr, "swift-load: %s: %v\n", kind, opErr)
				os.Exit(1)
			}
			// Under chaos, errors are an outcome, not a crash.
			opErrs++
			fmt.Fprintf(os.Stderr, "swift-load: chaos %s error: %v\n", kind, opErr)
			continue
		}
		lat := (cluster.Net.Now() - t0).Seconds() * 1000
		allLat.Add(lat)
		if op.Read {
			readLat.Add(lat)
		} else {
			writeLat.Add(lat)
		}
		bytesMoved += op.Size
	}
	elapsed := cluster.Net.Now() - start
	if *chaos {
		close(chaosStop)
		<-chaosDone
		fmt.Printf("\nchaos: %d faults applied, %d operation errors\n", len(ctl.Log()), opErrs)
		for _, h := range cluster.Client.ProbeOnce() {
			fmt.Printf("chaos: agent %-14s %-8v failures=%d\n", h.Addr, h.State, h.Failures)
		}
	}

	fmt.Printf("\n%d requests, %.1f MB in %.1f modeled seconds (%.0f KB/s)\n",
		*requests, float64(bytesMoved)/1e6, elapsed.Seconds(),
		float64(bytesMoved)/1024/elapsed.Seconds())
	printLat := func(label string, s *stats.Sample) {
		if s.N() == 0 {
			return
		}
		fmt.Printf("%-6s n=%-4d mean=%6.1fms  p50=%6.1fms  p95=%6.1fms  p99=%6.1fms  max=%6.1fms\n",
			label, s.N(), s.Mean(), s.Percentile(50), s.Percentile(95),
			s.Percentile(99), s.Max())
	}
	printLat("all", &allLat)
	printLat("read", &readLat)
	printLat("write", &writeLat)

	// Per-agent attribution and medium occupancy from the telemetry layer.
	snap := cluster.Client.Stats()
	fmt.Printf("\nprotocol: %d read bursts (%d timeouts), %d write bursts (%d timeouts), %d resend asks, %d backoffs\n",
		snap.Counters.ReadBursts, snap.Counters.ReadTimeouts,
		snap.Counters.WriteBursts, snap.Counters.WriteTimeouts,
		snap.Counters.ResendAsks, snap.Counters.Backoffs)
	if cs := snap.Cache; cs.Hits+cs.Misses > 0 || cs.Flushes > 0 {
		fmt.Printf("cache: %.1f%% hit rate (%d hits, %d misses), readahead %d/%d used, %d flushes (%d stalls), %d invalidations\n",
			100*cs.HitRate(), cs.Hits, cs.Misses,
			cs.ReadAheadUsed, cs.ReadAheadIssued,
			cs.Flushes, cs.Stalls, cs.Invalidations)
	}
	for i, as := range snap.Agents {
		fmt.Printf("agent %d %-14s %-8v rb=%-5d rto=%-3d wb=%-5d wto=%-3d rp50=%-8v wp50=%-8v\n",
			i, as.Addr, as.State, as.ReadBursts, as.ReadTimeouts,
			as.WriteBursts, as.WriteTimeouts,
			as.ReadBurstLat.P50, as.WriteBurstLat.P50)
	}
	for _, seg := range cluster.Segments {
		st := seg.Stats()
		fmt.Printf("net %-8s frames=%-7d lost=%-5d deferrals=%-6d utilization=%.1f%%\n",
			seg.Name(), st.Frames, st.Lost, st.Deferrals, 100*seg.Utilization())
	}

	// Trace epilogue: render the slowest kept op traces as waterfalls,
	// so one run surfaces where its worst ops spent their time.
	if traces := tracer.Traces(); len(traces) > 0 && *traceTop > 0 {
		sort.Slice(traces, func(i, j int) bool { return traces[i].Dur > traces[j].Dur })
		n := *traceTop
		if n > len(traces) {
			n = len(traces)
		}
		fmt.Printf("\ntraces: %d kept; slowest %d:\n", len(traces), n)
		for _, tr := range traces[:n] {
			fmt.Printf("\n%s\n", tr.Waterfall())
		}
	}
}

// runCacheProfile measures the block cache's round-trip savings: one
// client reads a striped object sequentially, then re-reads it — once
// with the cache tier disabled, once with read-ahead + cache on — and
// the profile reports agent read round-trips per pass plus the re-read
// ratio (the paper's "second viewing" of a stored video).
func runCacheProfile(agents, segments int, scale float64, seed int64, verbose bool) {
	const (
		objBytes = int64(4 << 20)
		readSize = int64(64 << 10)
	)
	type passStats struct {
		pass1, pass2 int64
		cache        core.StatsSnapshot
	}
	run := func(cached bool) passStats {
		opts := bench.Options{
			Agents:    agents,
			Segments:  segments,
			Scale:     scale,
			Seed:      seed,
			CacheSize: -1,
		}
		if cached {
			opts.CacheSize = 0 // auto-size from read-ahead
			opts.ReadAhead = 256 << 10
		}
		if verbose {
			opts.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
		}
		cluster, err := bench.NewSwiftCluster(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swift-load: %v\n", err)
			os.Exit(1)
		}
		defer cluster.Close()

		f, err := cluster.Client.Open("video", core.OpenFlags{Create: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "swift-load: open: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		fill := make([]byte, objBytes)
		for i := range fill {
			fill[i] = byte(i * 131)
		}
		if _, err := f.WriteAt(fill, 0); err != nil {
			fmt.Fprintf(os.Stderr, "swift-load: prefill: %v\n", err)
			os.Exit(1)
		}

		buf := make([]byte, readSize)
		pass := func() {
			for off := int64(0); off < objBytes; off += readSize {
				if _, err := f.ReadAt(buf, off); err != nil {
					fmt.Fprintf(os.Stderr, "swift-load: read at %d: %v\n", off, err)
					os.Exit(1)
				}
			}
		}
		base := cluster.Client.Stats().Counters.ReadBursts
		pass()
		// Let in-flight read-ahead land before attributing bursts, so
		// prefetch traffic counts against pass 1, not the re-read.
		cluster.Net.Sleep(500 * time.Millisecond)
		mid := cluster.Client.Stats().Counters.ReadBursts
		pass()
		snap := cluster.Client.Stats()
		return passStats{
			pass1: int64(mid - base),
			pass2: int64(snap.Counters.ReadBursts - mid),
			cache: snap,
		}
	}

	fmt.Printf("cache profile: %d MB object, sequential %d KB reads, read + re-read\n",
		objBytes>>20, readSize>>10)
	off := run(false)
	on := run(true)
	fmt.Printf("cache off: pass1=%d pass2=%d agent read round-trips\n", off.pass1, off.pass2)
	fmt.Printf("cache on : pass1=%d pass2=%d agent read round-trips, %.1f%% hit rate, readahead %d/%d used\n",
		on.pass1, on.pass2, 100*on.cache.Cache.HitRate(),
		on.cache.Cache.ReadAheadUsed, on.cache.Cache.ReadAheadIssued)
	ratio := "inf"
	if on.pass2 > 0 {
		ratio = fmt.Sprintf("%.1f", float64(off.pass2)/float64(on.pass2))
	}
	fmt.Printf("re-read round-trips: off=%d on=%d (%sx fewer)\n", off.pass2, on.pass2, ratio)
}

func parseSizeSigned(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "0" {
		return 0, nil
	}
	neg := strings.HasPrefix(s, "-")
	v, err := parseSize(strings.TrimPrefix(s, "-"))
	if neg {
		v = -v
	}
	return v, err
}

func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "M"):
		mult = 1 << 20
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "K"):
		mult = 1 << 10
		s = s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}
