// Command swiftctl is the Swift client CLI: it stripes files over a set of
// storage agents (swiftd processes) and retrieves them, with optional
// computed-copy redundancy.
//
// Usage:
//
//	swiftctl -agents HOST:PORT,HOST:PORT,... COMMAND [args]
//
// Commands:
//
//	put LOCAL [OBJECT]    store a local file as a striped object
//	get OBJECT [LOCAL]    retrieve a striped object
//	cat OBJECT            write an object to stdout
//	stat OBJECT           print an object's size
//	ls                    list objects
//	rm OBJECT             remove an object
//	status                probe each agent: liveness, RTT, objects, bytes
//	health                run one health round: lifecycle state per agent
//	stats [-watch]        client telemetry: counters, latency percentiles,
//	                      per-agent attribution; -watch refreshes, -mb N
//	                      drives a background transfer loop while watching
//	reread OBJECT         read an object end-to-end -n times in one
//	                      process (default 2), printing each pass's size
//	                      and SHA-256 plus the block cache's hit rate —
//	                      the cache and coherence drill (run with
//	                      -readahead to enable the cache; a coherence
//	                      sync runs before every pass after the first,
//	                      so -mediators sessions converge on concurrent
//	                      writers); -pause waits between passes, -out
//	                      saves the final pass
//	scrub [OBJECT]        verify at-rest integrity and parity row by row;
//	                      -repair heals from parity, -all scrubs every object
//	bench [-mb N]         measure read & write data-rates against the agents
//	mediators             probe each mediator replica: role, sessions,
//	                      reserved ratios, failovers, handoffs (needs
//	                      -mediators; no -agents required)
//	trace                 render kept per-operation span trees as
//	                      waterfalls; -from URL fetches them from a
//	                      running swiftd's metrics endpoint (no -agents
//	                      required), otherwise one traced write+read runs
//	                      against the agent set; -slow, -op, -id, -n
//	                      filter
//
// Flags -unit, -parity, -parity-shards and -rate select the striping
// parameters; -parity-shards k selects an m+k Reed–Solomon scheme whose
// rows survive k simultaneous agent failures (k=1 is the classic XOR
// computed copy). -rate asks the built-in mediator policy to pick agents
// and unit size for a required data-rate in KB/s. With -lease-ttl the mediator reservation
// is leased: swiftctl heartbeats it in the background for as long as the
// command runs, and the reservation self-releases if the process dies.
//
// With -mediators NAME=HOST:PORT,... the session is opened against a
// federated mediator tier (swiftd replicas started with -mediator)
// instead of the built-in policy: the failover broker picks the key's
// home replica, heartbeats the lease over the wire, and re-targets to a
// surviving replica if the home crashes or drains mid-command. In that
// mode -agents is optional for -rate commands — the tier's installation
// model supplies the agent set. Combining -mediators with -agents and no
// -rate opens a coherence-only session: the striping layout comes from
// the flags, and the mediator lease carries just the CacheSync rounds
// that keep this command's cache coherent with other writers.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"swift"
	"swift/internal/mediator"
	"swift/internal/medrpc"
	"swift/internal/obs"
	"swift/internal/stripe"
	"swift/internal/transport/udpnet"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: swiftctl -agents HOST:PORT,... [flags] COMMAND [args]")
	fmt.Fprintln(os.Stderr, "commands: put get cat stat ls rm status health stats reread scrub bench mediators trace")
	flag.PrintDefaults()
	os.Exit(2)
}

// medClients are the wire stubs for the federated mediator tier, set
// when -mediators is given; stats and the mediators command read them.
var medClients []*medrpc.Client

func main() {
	agents := flag.String("agents", "", "comma-separated storage agent addresses")
	bind := flag.String("bind", "127.0.0.1", "local IP to bind")
	unit := flag.Int64("unit", 32*1024, "striping unit in bytes")
	parity := flag.Bool("parity", false, "enable computed-copy redundancy")
	parityShards := flag.Int("parity-shards", 0, "parity units per stripe row (the k of an m+k Reed-Solomon scheme; implies -parity)")
	rate := flag.Float64("rate", 0, "required data-rate in KB/s (mediator picks agents and unit)")
	agentRate := flag.Float64("agent-rate", 400, "per-agent deliverable rate in KB/s, for -rate")
	leaseTTL := flag.Duration("lease-ttl", 0, "with -rate, lease the mediator reservation and heartbeat it")
	mediators := flag.String("mediators", "", "federated mediator replicas as NAME=HOST:PORT,... (replaces the built-in policy for -rate)")
	traceRate := flag.Float64("trace", 0, "distributed-tracing head-sample rate in [0,1]; the trace command defaults it to 1")
	opTimeout := flag.Duration("op-timeout", 0, "per-operation deadline budget, propagated to agents and mediators on the wire (0 = none)")
	hedge := flag.Bool("hedge", false, "hedge straggling reads: race parity reconstruction against the slowest agent (needs -parity)")
	syncw := flag.Bool("sync", false, "synchronous writes")
	readAhead := flag.Int64("readahead", 0, "sequential read-ahead window in bytes (0 = off; enables the block cache)")
	cacheSize := flag.Int64("cache-size", 0, "client block cache size in bytes (0 = auto when a cache feature is on, negative = off)")
	writeBehind := flag.Int64("write-behind", 0, "write-behind dirty budget in bytes (0 = write-through)")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() == 0 {
		usage()
	}
	host := udpnet.NewHost(*bind)
	if *mediators != "" {
		var err error
		medClients, err = parseMediators(host, *mediators)
		if err != nil {
			fatal(err)
		}
	}

	// trace -from fetches span trees from a running swiftd's metrics
	// endpoint: no agent set and no dial.
	if flag.Arg(0) == "trace" && hasFromFlag(flag.Args()[1:]) {
		if err := cmdTrace(nil, flag.Args()[1:]); err != nil {
			fatal(err)
		}
		return
	}

	// The mediators command talks only to the mediator tier: it must not
	// require -agents or dial the storage set.
	if flag.Arg(0) == "mediators" {
		if len(medClients) == 0 {
			fatal(fmt.Errorf("mediators needs -mediators NAME=HOST:PORT,..."))
		}
		if err := cmdMediators(medClients); err != nil {
			fatal(err)
		}
		return
	}

	// With a federated tier and a rate requirement the agent set comes
	// from the tier's installation model, so -agents may be omitted.
	if *agents == "" && !(len(medClients) > 0 && *rate > 0) {
		usage()
	}
	var addrs []string
	if *agents != "" {
		addrs = strings.Split(*agents, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
	}

	cfg := swift.Config{
		Host:         host,
		Agents:       addrs,
		StripeUnit:   *unit,
		Parity:       *parity,
		ParityShards: *parityShards,
		SyncWrites:   *syncw,
		TraceRate:    *traceRate,
		OpTimeout:    *opTimeout,
		HedgeReads:   *hedge,

		ReadAhead:      *readAhead,
		CacheSize:      *cacheSize,
		WriteBehindMax: *writeBehind,
	}
	// The trace command is pointless untraced: default to sampling
	// every op unless the user picked a rate.
	if flag.Arg(0) == "trace" && cfg.TraceRate == 0 {
		cfg.TraceRate = 1
	}

	// With a rate requirement and a federated tier, open the session via
	// the failover broker: the key's home replica builds the plan, the
	// broker heartbeats the lease and re-targets if the home dies.
	// Without a rate but with an explicit -agents set, the session is
	// coherence-only: a token reservation that exists purely to carry
	// CacheSync rounds, while the striping layout stays exactly what the
	// flags say — so cooperating commands in different processes keep an
	// identical layout and still invalidate each other's caches.
	if len(medClients) > 0 && (*rate > 0 || *agents != "") {
		eps := make([]swift.MediatorEndpoint, len(medClients))
		for i, c := range medClients {
			eps[i] = c
		}
		key, _ := os.Hostname()
		if key == "" {
			key = "swiftctl"
		}
		broker, err := swift.NewMediatorBroker(swift.BrokerConfig{
			Endpoints: eps,
			Key:       key,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "swiftctl: "+format+"\n", args...)
			},
		})
		if err != nil {
			fatal(err)
		}
		sessRate := *rate * 1024
		if *rate == 0 {
			sessRate = 1024 // coherence-only: token rate, never a plan
		}
		rec, err := broker.OpenSession(swift.MediatorRequirements{
			Rate:         sessRate,
			Redundancy:   *parity,
			ParityShards: *parityShards,
		})
		if err != nil {
			fatal(err)
		}
		// The mediator session doubles as the cache-coherence channel:
		// writes this client declares propagate as invalidations to every
		// other session caching the same objects.
		cfg.CacheSync = broker.CacheSync
		if *rate > 0 {
			cfg.ApplyPlan(&rec.Plan)
			fmt.Fprintf(os.Stderr, "swiftctl: plan: %d agents, unit %d, parity shards %d via %s\n",
				len(rec.Plan.Addrs), rec.Plan.Unit, rec.Plan.ParityShards, broker.Home())
		} else {
			fmt.Fprintf(os.Stderr, "swiftctl: coherence session via %s (layout from flags)\n",
				broker.Home())
		}
		fmt.Fprintf(os.Stderr, "swiftctl: session %d leased, expires %s\n",
			rec.ID, rec.Expires.Format(time.RFC3339))
		// Heartbeat over the wire while the command runs; the broker
		// rotates to a surviving replica if the home crashes or drains.
		stopRenew := make(chan struct{})
		defer close(stopRenew)
		go func() {
			iv := *leaseTTL / 3
			if iv <= 0 {
				iv = 2 * time.Second
			}
			tick := time.NewTicker(iv)
			defer tick.Stop()
			for {
				select {
				case <-stopRenew:
					return
				case <-tick.C:
					broker.Heartbeat()
				}
			}
		}()
		defer broker.CloseSession()
	} else if *rate > 0 {
		infos := make([]mediator.AgentInfo, len(addrs))
		for i, a := range addrs {
			infos[i] = mediator.AgentInfo{Addr: a, Rate: *agentRate * 1024, Net: 0}
		}
		med, err := mediator.New(mediator.Config{
			Agents:   infos,
			Nets:     []mediator.NetInfo{{Name: "net", Capacity: 1e12}},
			LeaseTTL: *leaseTTL,
		})
		if err != nil {
			fatal(err)
		}
		defer med.Close()
		plan, err := med.OpenSession(mediator.Requirements{
			Rate:         *rate * 1024,
			Redundancy:   *parity,
			ParityShards: *parityShards,
		})
		if err != nil {
			fatal(err)
		}
		cfg.Agents = plan.Addrs
		cfg.StripeUnit = plan.Unit
		cfg.Parity = plan.Parity
		cfg.ParityShards = plan.ParityShards
		fmt.Fprintf(os.Stderr, "swiftctl: plan: %d agents, unit %d, parity shards %d\n",
			len(plan.Addrs), plan.Unit, plan.ParityShards)
		if *leaseTTL > 0 {
			// Heartbeat the reservation while the command runs; stopping
			// lets the lease lapse and the mediator reclaim the rate.
			for _, s := range med.SessionList() {
				fmt.Fprintf(os.Stderr, "swiftctl: session %d leased, expires %s\n",
					s.ID, s.Expires.Format(time.RFC3339))
			}
			stopRenew := make(chan struct{})
			defer close(stopRenew)
			go func() {
				iv := *leaseTTL / 3
				if iv <= 0 {
					iv = time.Millisecond
				}
				tick := time.NewTicker(iv)
				defer tick.Stop()
				for {
					select {
					case <-stopRenew:
						return
					case <-tick.C:
						if err := med.Renew(plan.SessionID); err != nil {
							fmt.Fprintf(os.Stderr, "swiftctl: lease renewal: %v\n", err)
							return
						}
					}
				}
			}()
			defer med.CloseSession(plan.SessionID)
		}
	}

	fs, err := swift.Dial(cfg)
	if err != nil {
		fatal(err)
	}
	defer fs.Close()

	args := flag.Args()
	switch args[0] {
	case "put":
		err = cmdPut(fs, args[1:])
	case "get":
		err = cmdGet(fs, args[1:])
	case "cat":
		err = cmdCat(fs, args[1:])
	case "stat":
		err = cmdStat(fs, args[1:])
	case "ls":
		err = cmdLs(fs)
	case "rm":
		err = cmdRm(fs, args[1:])
	case "status":
		err = cmdStatus(fs)
	case "health":
		err = cmdHealth(fs)
	case "stats":
		err = cmdStats(fs, args[1:])
	case "reread":
		err = cmdReread(fs, args[1:])
	case "scrub":
		err = cmdScrub(fs, args[1:])
	case "bench":
		err = cmdBench(fs, args[1:])
	case "trace":
		err = cmdTrace(fs, args[1:])
	default:
		usage()
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "swiftctl: %v\n", err)
	os.Exit(1)
}

// parseMediators parses NAME=HOST:PORT replica entries into wire stubs.
func parseMediators(host *udpnet.Host, s string) ([]*medrpc.Client, error) {
	var clients []*medrpc.Client
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		name, addr, ok := strings.Cut(ent, "=")
		if !ok {
			return nil, fmt.Errorf("bad -mediators entry %q (want NAME=HOST:PORT)", ent)
		}
		c, err := medrpc.NewClient(medrpc.ClientConfig{Host: host, Name: name, Addr: addr})
		if err != nil {
			return nil, fmt.Errorf("mediator %q: %w", name, err)
		}
		clients = append(clients, c)
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("empty -mediators")
	}
	return clients, nil
}

// cmdMediators probes each replica of the federated tier and prints its
// operator-facing state: role, session counts, reservation headroom and
// the failover/handoff history.
func cmdMediators(clients []*medrpc.Client) error {
	fmt.Printf("%-12s %-9s %8s %6s %8s %7s %10s %9s %8s  %s\n",
		"replica", "role", "sessions", "home", "agents%", "net%",
		"failovers", "handoffs", "expired", "last-handoff")
	down := 0
	for _, c := range clients {
		st, err := c.Status()
		if err != nil {
			fmt.Printf("%-12s DOWN (%v)\n", c.Name(), err)
			down++
			continue
		}
		last := "-"
		if !st.LastHandoff.IsZero() {
			last = st.LastHandoff.Format(time.RFC3339)
		}
		fmt.Printf("%-12s %-9s %8d %6d %7.0f%% %6.0f%% %10d %9d %8d  %s\n",
			st.Name, st.Role, st.Sessions, st.HomeSessions,
			100*maxFrac(st.AgentReserved), 100*maxFrac(st.NetReserved),
			st.Failovers, st.Handoffs, st.Expirations, last)
	}
	if down == len(clients) {
		return fmt.Errorf("all %d mediator replicas are down", down)
	}
	return nil
}

func maxFrac(fs []float64) float64 {
	var m float64
	for _, f := range fs {
		if f > m {
			m = f
		}
	}
	return m
}

// printFederation appends the mediator tier's view to a stats snapshot:
// one line per replica, DOWN for unreachable ones.
func printFederation(clients []*medrpc.Client) {
	for _, c := range clients {
		st, err := c.Status()
		if err != nil {
			fmt.Printf("federation: %-12s DOWN (%v)\n", c.Name(), err)
			continue
		}
		fmt.Printf("federation: %-12s %-9s sessions=%d home=%d failovers=%d handoffs=%d expired=%d\n",
			st.Name, st.Role, st.Sessions, st.HomeSessions,
			st.Failovers, st.Handoffs, st.Expirations)
	}
}

func cmdPut(fs *swift.FS, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("put needs a local file")
	}
	local := args[0]
	object := local
	if len(args) > 1 {
		object = args[1]
	}
	data, err := os.ReadFile(local)
	if err != nil {
		return err
	}
	f, err := fs.Create(object)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	fmt.Printf("stored %s (%d bytes) as %q\n", local, len(data), object)
	return nil
}

func cmdGet(fs *swift.FS, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("get needs an object name")
	}
	object := args[0]
	local := object
	if len(args) > 1 {
		local = args[1]
	}
	f, err := fs.Open(object)
	if err != nil {
		return err
	}
	defer f.Close()
	data := make([]byte, f.Size())
	if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
		return err
	}
	if err := os.WriteFile(local, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("retrieved %q (%d bytes) to %s\n", object, len(data), local)
	return nil
}

func cmdCat(fs *swift.FS, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("cat needs an object name")
	}
	f, err := fs.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.Copy(os.Stdout, f)
	return err
}

func cmdStat(fs *swift.FS, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("stat needs an object name")
	}
	size, err := fs.Stat(args[0])
	if err != nil {
		return err
	}
	li := fs.Layout()
	if li.ParityShards == 0 {
		fmt.Printf("%s\t%d bytes\tscheme=%s\n", args[0], size, li.Scheme)
		return nil
	}
	// Per-file redundancy: what the fragments actually occupy across the
	// agent set, parity units included.
	stored := stripe.Layout{
		Unit: li.Unit, Agents: li.Agents,
		Parity: true, ParityUnits: li.ParityShards,
	}.FragmentSizes(size)
	var total int64
	for _, s := range stored {
		total += s
	}
	overhead := 0.0
	if size > 0 {
		overhead = 100 * float64(total-size) / float64(size)
	}
	fmt.Printf("%s\t%d bytes\tscheme=%s\tstored=%d bytes (redundancy overhead %.0f%%)\n",
		args[0], size, li.Scheme, total, overhead)
	return nil
}

func cmdLs(fs *swift.FS) error {
	names, err := fs.List()
	if err != nil {
		return err
	}
	for _, n := range names {
		fmt.Println(n)
	}
	return nil
}

func cmdRm(fs *swift.FS, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("rm needs an object name")
	}
	return fs.Remove(args[0])
}

func cmdStatus(fs *swift.FS) error {
	li := fs.Layout()
	fmt.Printf("scheme %s  unit %d  agents %d (%d data + %d parity units per row)\n",
		li.Scheme, li.Unit, li.Agents, li.DataShards, li.ParityShards)
	for i, st := range fs.Ping() {
		if !st.Alive {
			fmt.Printf("agent %d  %-22s DOWN\n", i, st.Addr)
			continue
		}
		fmt.Printf("agent %d  %-22s up  rtt=%-10v objects=%-5d sessions=%-3d bytes=%d\n",
			i, st.Addr, st.RTT.Round(time.Microsecond), st.Objects, st.Sessions, st.Bytes)
	}
	return nil
}

func cmdHealth(fs *swift.FS) error {
	for i, h := range fs.CheckHealth() {
		line := fmt.Sprintf("agent %d  %-22s %-8v", i, h.Addr, h.State)
		if h.Failures > 0 {
			line += fmt.Sprintf("  failures=%d", h.Failures)
		}
		if h.LastErr != "" {
			line += fmt.Sprintf("  last=%q", h.LastErr)
		}
		fmt.Println(line)
	}
	return nil
}

// cmdStats prints the client's telemetry snapshot. With -watch it
// refreshes every -every, showing counter deltas per interval; with -mb N
// it drives a background read/write loop so the numbers move.
func cmdStats(fs *swift.FS, args []string) error {
	statsFlags := flag.NewFlagSet("stats", flag.ExitOnError)
	watch := statsFlags.Bool("watch", false, "refresh continuously until interrupted")
	every := statsFlags.Duration("every", time.Second, "refresh period with -watch")
	mb := statsFlags.Int("mb", 0, "drive a background transfer loop of this many MB per pass")
	rounds := statsFlags.Int("rounds", 0, "with -watch, stop after this many refreshes (0 = until interrupted)")
	if err := statsFlags.Parse(args); err != nil {
		return err
	}

	if !*watch {
		// One-shot: optionally run one traffic pass, then snapshot.
		if *mb > 0 {
			stop := make(chan struct{})
			close(stop) // statsLoad's first pass always runs, then it sees stop
			if err := statsLoad(fs, *mb, stop); err != nil {
				return err
			}
			defer fs.Remove("swiftctl-stats")
		}
		printStats(fs.Stats(), swift.MetricsSnapshot{}, 0)
		printFederation(medClients)
		return nil
	}

	// Watch: optional background traffic so the numbers move.
	stop := make(chan struct{})
	loadDone := make(chan error, 1)
	if *mb > 0 {
		go func() {
			loadDone <- statsLoad(fs, *mb, stop)
		}()
		defer func() {
			close(stop)
			<-loadDone
			fs.Remove("swiftctl-stats")
		}()
	}

	prev := fs.Metrics()
	for n := 0; *rounds == 0 || n < *rounds; n++ {
		time.Sleep(*every)
		s := fs.Stats()
		fmt.Printf("--- %s\n", time.Now().Format("15:04:05"))
		printStats(s, prev, *every)
		printFederation(medClients)
		prev = s.Counters
	}
	return nil
}

// statsLoad loops read/write passes of mb MB against a scratch object
// until stop closes. The first pass always completes, so one-shot stats
// have traffic to report.
func statsLoad(fs *swift.FS, mb int, stop chan struct{}) error {
	size := mb << 20
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 2654435761)
	}
	f, err := fs.Create("swiftctl-stats")
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, size)
	for first := true; ; first = false {
		if !first {
			select {
			case <-stop:
				return nil
			default:
			}
		}
		if _, err := f.WriteAt(data, 0); err != nil {
			return err
		}
		if _, err := f.ReadAt(buf, 0); err != nil {
			return err
		}
	}
}

// printStats renders one telemetry snapshot. With a non-zero interval the
// counter line shows per-interval deltas against prev.
func printStats(s swift.Stats, prev swift.MetricsSnapshot, interval time.Duration) {
	c := s.Counters.Sub(prev)
	suffix := ""
	if interval > 0 {
		suffix = fmt.Sprintf("/%v", interval)
	}
	fmt.Printf("bursts: read=%d%s (timeouts %d)  write=%d%s (timeouts %d)  resends=%d  backoffs=%d  probes=%d\n",
		c.ReadBursts, suffix, c.ReadTimeouts, c.WriteBursts, suffix,
		c.WriteTimeouts, c.ResendAsks, c.Backoffs, c.Probes)
	fmt.Printf("integrity[%s]: corruptions=%d repairs=%d unrepairable=%d scrubbed_rows=%d\n",
		s.Scheme, c.Corruptions, c.Repairs, c.Unrepairable, c.ScrubRows)
	if s.Scheme != "" && s.Scheme != "none" {
		line := fmt.Sprintf("ec[%s]: encodes=%d (%.1f MB) reconstructs=%d (%.1f MB) inv_cache=%d/%d",
			s.Scheme, s.EC.EncodeCalls, float64(s.EC.EncodeBytes)/1e6,
			s.EC.ReconstructCalls, float64(s.EC.ReconstructBytes)/1e6,
			s.EC.InvCacheHits, s.EC.InvCacheHits+s.EC.InvCacheMisses)
		for n := 1; n < len(s.EC.ByMissing); n++ {
			line += fmt.Sprintf(" rebuilt_%dmiss=%d", n, s.EC.ByMissing[n])
		}
		fmt.Println(line)
	}
	printHist := func(label string, h swift.LatencySnapshot) {
		if h.Count == 0 {
			return
		}
		fmt.Printf("%-6s n=%-6d mean=%-10v p50=%-10v p90=%-10v p99=%-10v max=%v\n",
			label, h.Count, h.Mean.Round(time.Microsecond),
			h.P50.Round(time.Microsecond), h.P90.Round(time.Microsecond),
			h.P99.Round(time.Microsecond), h.Max.Round(time.Microsecond))
	}
	ov := s.Overload
	fmt.Printf("overload: pushbacks=%d hedges=%d (wins %d) budget_denials=%d breaker_trips=%d budget_fill=%.0f%%\n",
		ov.Pushbacks, ov.Hedges, ov.HedgeWins, ov.BudgetDenials,
		ov.BreakerTrips, 100*ov.BudgetFill)
	if cs := s.Cache; cs.Capacity > 0 {
		fmt.Printf("cache: %.1f/%.1f MB (%.1f dirty)  hit_rate=%.1f%% (%d/%d)  readahead=%d/%d used  flushes=%d (errs %d, stalls %d)  evictions=%d  invalidations=%d\n",
			float64(cs.Bytes)/1e6, float64(cs.Capacity)/1e6, float64(cs.Dirty)/1e6,
			100*cs.HitRate(), cs.Hits, cs.Hits+cs.Misses,
			cs.ReadAheadUsed, cs.ReadAheadIssued,
			cs.Flushes, cs.FlushErrors, cs.Stalls, cs.Evictions, cs.Invalidations)
	}
	printHist("open", s.OpenLat)
	printHist("read", s.ReadLat)
	printHist("write", s.WriteLat)
	printHist("probe", s.ProbeLat)
	for i, as := range s.Agents {
		fmt.Printf("agent %d %-22s %-8v brk=%-9v rb=%-6d rto=%-4d wb=%-6d wto=%-4d pb=%-4d hg=%-4d rp50=%-10v wp50=%v\n",
			i, as.Addr, as.State, as.Breaker, as.ReadBursts, as.ReadTimeouts,
			as.WriteBursts, as.WriteTimeouts, as.Pushbacks, as.Hedges,
			as.ReadBurstLat.P50.Round(time.Microsecond),
			as.WriteBurstLat.P50.Round(time.Microsecond))
	}
}

// cmdReread reads an object end-to-end n times inside one process — the
// block cache and coherence drill. One handle stays open across every
// pass (clean cached blocks drop with the last reference, so reopening
// per pass would read cold each time): pass 1 warms the cache, later
// passes are served from it (watch the hit rate), and each pass after
// the first is preceded by a coherence sync so a concurrent writer's
// update is re-fetched instead of served stale. Each pass prints its
// byte count and SHA-256, so a driver script can assert both cache hits
// and convergence on new contents.
func cmdReread(fs *swift.FS, args []string) error {
	rr := flag.NewFlagSet("reread", flag.ExitOnError)
	passes := rr.Int("n", 2, "number of sequential end-to-end passes")
	pause := rr.Duration("pause", 0, "wait between passes (lets concurrent writers land)")
	out := rr.String("out", "", "save the final pass to this local file")
	if err := rr.Parse(args); err != nil {
		return err
	}
	if rr.NArg() < 1 {
		return fmt.Errorf("reread needs an object name")
	}
	f, err := fs.Open(rr.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	for i := 0; i < *passes; i++ {
		if i > 0 {
			if *pause > 0 {
				time.Sleep(*pause)
			}
			fs.CoherenceSync()
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				return err
			}
		}
		h := sha256.New()
		var w io.Writer = h
		var save *os.File
		if *out != "" && i == *passes-1 {
			if save, err = os.Create(*out); err != nil {
				return err
			}
			w = io.MultiWriter(h, save)
		}
		n, err := io.Copy(w, f)
		if save != nil {
			if cerr := save.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return fmt.Errorf("pass %d: %w", i+1, err)
		}
		fmt.Printf("pass %d: %d bytes sha256=%x\n", i+1, n, h.Sum(nil))
	}
	cs := fs.CacheStats()
	fmt.Printf("cache: hits=%d misses=%d hit_rate=%.1f%% readahead=%d/%d used invalidations=%d\n",
		cs.Hits, cs.Misses, 100*cs.HitRate(),
		cs.ReadAheadUsed, cs.ReadAheadIssued, cs.Invalidations)
	return nil
}

// cmdScrub verifies at-rest integrity (checksum envelopes) and parity
// consistency row by row — the maintenance pass an installation runs on a
// schedule. With -repair, damaged units are rewritten from parity and
// stale parity is recomputed from the data. The exit status reflects the
// verdict: an error is returned when damage was found but not healed.
func cmdScrub(fs *swift.FS, args []string) error {
	scrubFlags := flag.NewFlagSet("scrub", flag.ExitOnError)
	repair := scrubFlags.Bool("repair", false, "rewrite corrupt units from parity; recompute stale parity")
	all := scrubFlags.Bool("all", false, "scrub every object on the agent set")
	pause := scrubFlags.Duration("pause", 0, "pause between stripe rows (rate-limit the pass)")
	if err := scrubFlags.Parse(args); err != nil {
		return err
	}
	opts := swift.ScrubOptions{Repair: *repair, RowPause: *pause}

	var (
		rep  swift.ScrubReport
		err  error
		what string
	)
	switch {
	case *all:
		what = "all objects"
		rep, err = fs.ScrubAll(opts)
	case scrubFlags.NArg() >= 1:
		what = scrubFlags.Arg(0)
		rep, err = fs.ScrubObject(what, opts)
	default:
		return fmt.Errorf("scrub needs an object name (or -all)")
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s\n", what, rep)
	switch {
	case rep.Unrepairable > 0:
		return fmt.Errorf("%d corrupt units exceed parity redundancy", rep.Unrepairable)
	case (rep.Corruptions > 0 || rep.ParityMismatches > 0) && !*repair:
		return fmt.Errorf("damage found; run with -repair to heal from parity")
	case rep.Skipped > 0:
		return fmt.Errorf("%d rows skipped (agent out or unsettled); re-run once healthy", rep.Skipped)
	}
	return nil
}

// hasFromFlag reports whether the trace subcommand's args carry -from,
// which selects the remote-fetch mode that needs no agent set. It must
// be decided before the subcommand FlagSet parses, because the main
// command path dials the agents first.
func hasFromFlag(args []string) bool {
	for _, a := range args {
		a = strings.TrimPrefix(a, "-")
		a = strings.TrimPrefix(a, "-")
		if a == "from" || strings.HasPrefix(a, "from=") {
			return true
		}
	}
	return false
}

// cmdTrace renders kept per-operation span trees as waterfalls. With
// -from it fetches them from a running swiftd or swift-load metrics
// endpoint (/trace/ops); without it, one traced write+read runs against
// the agent set and the client tracer's kept traces are rendered.
func cmdTrace(fs *swift.FS, args []string) error {
	tf := flag.NewFlagSet("trace", flag.ExitOnError)
	from := tf.String("from", "", "fetch traces from this metrics endpoint (e.g. http://127.0.0.1:9090) instead of running a transfer")
	slow := tf.Bool("slow", false, "only tail-kept traces: errored, retried, or slower than the op's live p99")
	op := tf.String("op", "", "only traces whose root op matches (open, read, write, sync, scrub, ...)")
	id := tf.String("id", "", "only the trace with this hex id")
	n := tf.Int("n", 0, "only the n most recent matches (0 = all)")
	mb := tf.Int("mb", 1, "transfer size in MB for the traced write+read (without -from)")
	if err := tf.Parse(args); err != nil {
		return err
	}

	var traces []obs.Trace
	if *from != "" {
		var err error
		traces, err = fetchTraces(*from, *op, *id, *slow, *n)
		if err != nil {
			return err
		}
	} else {
		tracer := fs.Tracer()
		if *mb > 0 {
			size := *mb << 20
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(i * 2654435761)
			}
			f, err := fs.Create("swiftctl-trace")
			if err != nil {
				return err
			}
			defer func() {
				f.Close()
				fs.Remove("swiftctl-trace")
			}()
			if _, err := f.WriteAt(data, 0); err != nil {
				return err
			}
			if _, err := f.ReadAt(data, 0); err != nil {
				return err
			}
		}
		var err error
		traces, err = obs.FilterTraces(tracer.Traces(), *op, *id, *slow, *n)
		if err != nil {
			return err
		}
	}
	if len(traces) == 0 {
		fmt.Println("no traces kept (is tracing enabled? swiftd -trace RATE / swiftctl -trace RATE)")
		return nil
	}
	for _, tr := range traces {
		fmt.Printf("%s\n\n", tr.Waterfall())
	}
	return nil
}

// fetchTraces pulls the kept span trees from a metrics endpoint's
// /trace/ops handler, filtering server-side.
func fetchTraces(base, op, id string, slow bool, n int) ([]obs.Trace, error) {
	u := strings.TrimSuffix(base, "/")
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	q := url.Values{"format": {"json"}}
	if slow {
		q.Set("slow", "1")
	}
	if op != "" {
		q.Set("op", op)
	}
	if id != "" {
		q.Set("id", id)
	}
	if n > 0 {
		q.Set("n", strconv.Itoa(n))
	}
	resp, err := http.Get(u + "/trace/ops?" + q.Encode())
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("trace: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var out struct {
		Traces []obs.Trace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("trace: decode /trace/ops reply: %w", err)
	}
	return out.Traces, nil
}

func cmdBench(fs *swift.FS, args []string) error {
	benchFlags := flag.NewFlagSet("bench", flag.ExitOnError)
	mb := benchFlags.Int("mb", 8, "transfer size in MB")
	if err := benchFlags.Parse(args); err != nil {
		return err
	}
	size := *mb << 20
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 2654435761)
	}

	f, err := fs.Create("swiftctl-bench")
	if err != nil {
		return err
	}
	defer func() {
		f.Close()
		fs.Remove("swiftctl-bench")
	}()

	start := time.Now()
	if _, err := f.WriteAt(data, 0); err != nil {
		return err
	}
	welapsed := time.Since(start)

	buf := make([]byte, size)
	start = time.Now()
	if _, err := f.ReadAt(buf, 0); err != nil {
		return err
	}
	relapsed := time.Since(start)

	fmt.Printf("write: %8.0f KB/s  (%d MB in %v)\n",
		float64(size)/1024/welapsed.Seconds(), *mb, welapsed.Round(time.Millisecond))
	fmt.Printf("read:  %8.0f KB/s  (%d MB in %v)\n",
		float64(size)/1024/relapsed.Seconds(), *mb, relapsed.Round(time.Millisecond))
	return nil
}
