// Command swift-sim regenerates the paper's simulation results
// (Figures 3-6): the §5 discrete-event study of Swift on a gigabit
// token-ring network.
//
// Usage:
//
//	swift-sim -figure 3 [-requests 1200]
//	swift-sim -figure all
//
// Output is a whitespace-aligned table per figure: one row per x-axis
// point, one column per curve, matching the paper's series.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"swift/internal/simswift"
)

func main() {
	figure := flag.String("figure", "all", "figure to regenerate: 3, 4, 5, 6, or all")
	requests := flag.Int("requests", 0, "requests per simulation point (0 = default)")
	flag.Parse()

	run := func(name string, fn func(int)) {
		fmt.Printf("==== Figure %s ====\n", name)
		fn(*requests)
		fmt.Println()
	}

	switch *figure {
	case "3":
		run("3", figure3)
	case "4":
		run("4", figure4)
	case "5":
		run("5", figure5)
	case "6":
		run("6", figure6)
	case "edf":
		run("EDF extension (§6.1.2)", figureEDF)
	case "parity":
		run("parity cost (§6.1.1)", figureParity)
	case "layout":
		run("layout policies (§5.1)", figureLayout)
	case "all":
		run("3", figure3)
		run("4", figure4)
		run("5", figure5)
		run("6", figure6)
	default:
		fmt.Fprintf(os.Stderr, "swift-sim: unknown figure %q\n", *figure)
		os.Exit(2)
	}
}

// figureParity runs the §6.1.1 simulator enhancement: the cost of
// computing and storing the check data, on a write-dominated workload.
func figureParity(requests int) {
	fmt.Println("Mean write response with and without computed-copy redundancy")
	fmt.Println("(512 KB requests, 32 KB units, write-dominated, 2 req/s).")
	_ = requests
	w := newTab()
	fmt.Fprintln(w, "disks\tno parity\twith parity\toverhead\t")
	for _, disks := range []int{4, 8, 16, 32} {
		plain, par := simswift.ParityImpact(disks, 32*simswift.KB, 512*simswift.KB, 2)
		over := float64(par.MeanResponse)/float64(plain.MeanResponse) - 1
		fmt.Fprintf(w, "%d\t%v\t%v\t+%.0f%%\t\n",
			disks,
			plain.MeanResponse.Round(time.Millisecond),
			par.MeanResponse.Round(time.Millisecond),
			over*100)
	}
	w.Flush()
}

// figureLayout quantifies §5.1's acknowledged pessimism: the model charges
// full positioning per transfer unit ("a lower bound on the data-rates");
// with sequential placement enabled, later units of a multiblock request
// pay only track-to-track positioning.
func figureLayout(requests int) {
	fmt.Println("Max sustainable data-rate: lower-bound model vs sequential placement.")
	fmt.Println("128 KB requests, 4 KB units, Fujitsu M2372K (Figure 5's workload).")
	w := newTab()
	fmt.Fprintln(w, "disks\tlower bound\tseq placement\tgain\t")
	for _, disks := range []int{4, 8, 16, 32} {
		cfg := simswift.Figure5Config(simswift.Figure3Drive(), disks)
		if requests > 0 {
			cfg.Requests = requests
		}
		lower, _ := simswift.MaxSustainableRate(cfg)
		cfg.SeqPlacement = true
		better, _ := simswift.MaxSustainableRate(cfg)
		fmt.Fprintf(w, "%d\t%.2f MB/s\t%.2f MB/s\t×%.2f\t\n",
			disks, lower/1e6, better/1e6, better/lower)
	}
	w.Flush()
}

// figureEDF runs the §6.1.2 future-work extension: deadline-scheduled
// disk queues protecting a continuous-media stream from background load.
func figureEDF(requests int) {
	fmt.Println("Deadline misses of a 128 KB / 250 ms continuous-media stream")
	fmt.Println("(4 disks) under background load, FIFO vs EDF disk queues.")
	periods := 200
	if requests > 0 {
		periods = requests
	}
	w := newTab()
	fmt.Fprintln(w, "bg req/s\tFIFO miss%\tEDF miss%\tFIFO bg resp\tEDF bg resp\t")
	for _, bg := range []float64{0, 4, 8, 12, 16} {
		mk := func(edf bool) simswift.RTResult {
			return simswift.RunRT(simswift.RTConfig{
				Disks: 4,
				Base: simswift.Config{
					Drive:        simswift.Figure3Drive(),
					Unit:         32 * simswift.KB,
					RequestBytes: 256 * simswift.KB,
					Seed:         1,
				},
				Streams:        1,
				StreamBytes:    128 * simswift.KB,
				Period:         250 * time.Millisecond,
				Periods:        periods,
				BackgroundRate: bg,
				EDF:            edf,
			})
		}
		fifo := mk(false)
		edf := mk(true)
		fmt.Fprintf(w, "%.0f\t%.1f\t%.1f\t%v\t%v\t\n",
			bg, fifo.MissFraction*100, edf.MissFraction*100,
			fifo.MeanBackgroundResponse.Round(time.Millisecond),
			edf.MeanBackgroundResponse.Round(time.Millisecond))
	}
	w.Flush()
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', tabwriter.AlignRight)
}

// figure3 prints average time to complete a 1-megabyte client request
// versus offered load, for each (disks, unit) curve of Figure 3.
func figure3(requests int) {
	fmt.Println("Average time to complete a 1 MB client request (ms).")
	fmt.Println("Drive: Fujitsu M2372K (seek 16ms, rot 8.3ms, 2.5 MB/s).")
	w := newTab()
	fmt.Fprintf(w, "req/s\t")
	for _, unit := range simswift.Figure3Units() {
		for _, disks := range simswift.Figure3Disks() {
			fmt.Fprintf(w, "%dK/%dd\t", unit/1024, disks)
		}
	}
	fmt.Fprintln(w)
	for _, lambda := range simswift.Figure3Loads() {
		fmt.Fprintf(w, "%.0f\t", lambda)
		for _, unit := range simswift.Figure3Units() {
			for _, disks := range simswift.Figure3Disks() {
				cfg := simswift.Figure3Config(disks, unit)
				if requests > 0 {
					cfg.Requests = requests
				}
				r := simswift.Run(cfg, lambda)
				if r.Completed == 0 {
					fmt.Fprintf(w, "-\t")
					continue
				}
				fmt.Fprintf(w, "%.0f\t", float64(r.MeanResponse.Microseconds())/1000)
			}
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}

// figure4 prints the same for 128-kilobyte requests on the 1.5 MB/s drive.
func figure4(requests int) {
	fmt.Println("Average time to complete a 128 KB client request (ms).")
	fmt.Println("Drive: 1.5 MB/s (seek 16ms, rot 8.3ms); 4 KB transfer unit.")
	w := newTab()
	fmt.Fprintf(w, "req/s\t")
	for _, disks := range simswift.Figure4Disks() {
		fmt.Fprintf(w, "%dd\t", disks)
	}
	fmt.Fprintln(w)
	for _, lambda := range simswift.Figure4Loads() {
		fmt.Fprintf(w, "%.0f\t", lambda)
		for _, disks := range simswift.Figure4Disks() {
			cfg := simswift.Figure4Config(disks)
			if requests > 0 {
				cfg.Requests = requests
			}
			r := simswift.Run(cfg, lambda)
			if r.Completed == 0 {
				fmt.Fprintf(w, "-\t")
				continue
			}
			fmt.Fprintf(w, "%.0f\t", float64(r.MeanResponse.Microseconds())/1000)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}

// maxRateTable prints the Figure 5/6 family: observed client data-rate at
// maximum sustainable load versus number of disks, per drive type.
func maxRateTable(requests int, mk func(drive int, disks int) simswift.Config) {
	drives := simswift.Figure56Drives()
	w := newTab()
	fmt.Fprintf(w, "disks\t")
	for _, d := range drives {
		fmt.Fprintf(w, "%s\t", d.Name)
	}
	fmt.Fprintln(w)
	for _, disks := range simswift.Figure56Disks() {
		fmt.Fprintf(w, "%d\t", disks)
		for di := range drives {
			cfg := mk(di, disks)
			if requests > 0 {
				cfg.Requests = requests
			}
			rate, _ := simswift.MaxSustainableRate(cfg)
			fmt.Fprintf(w, "%.2f MB/s\t", rate/1e6)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}

func figure5(requests int) {
	fmt.Println("Observed client data-rate at maximum sustainable load.")
	fmt.Println("Client request = 128 KB, disk transfer unit = 4 KB.")
	maxRateTable(requests, func(di, disks int) simswift.Config {
		return simswift.Figure5Config(simswift.Figure56Drives()[di], disks)
	})
}

func figure6(requests int) {
	fmt.Println("Observed client data-rate at maximum sustainable load.")
	fmt.Println("Client request = 1 MB, disk transfer unit = 32 KB.")
	maxRateTable(requests, func(di, disks int) simswift.Config {
		return simswift.Figure6Config(simswift.Figure56Drives()[di], disks)
	})
}
