// Command swift-bench regenerates the paper's prototype measurements:
//
//	Table 1 — Swift on a single Ethernet (3 storage agents)
//	Table 2 — the local SCSI disk baseline
//	Table 3 — the NFS file-server baseline
//	Table 4 — Swift on two Ethernets (6 storage agents)
//	tcp     — the §3 TCP-prototype ablation (≤45% of network capacity)
//	ec      — the erasure-coding codec microbench (encode/reconstruct
//	          MB/s, XOR vs Reed–Solomon; also writes BENCH_ec.json)
//	hotpath — the client read/write hot-path profile (ns/byte and
//	          allocs/op, tracing off vs on; also writes
//	          BENCH_hotpath.json)
//
// Each cell is sampled eight times and reported as mean, σ, min, max and a
// 90% confidence interval, exactly as the paper's tables are.
//
// Usage:
//
//	swift-bench -table all            # every table, full size sweep
//	swift-bench -table 1 -quick       # one table, reduced samples
//	swift-bench -table 3 -samples 4 -sizes 3,6
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"swift/internal/bench"
)

func main() {
	table := flag.String("table", "all", "table to run: 1, 2, 3, 4, tcp, ablations, ec, hotpath, or all")
	samples := flag.Int("samples", 0, "samples per cell (default 8)")
	sizes := flag.String("sizes", "", "comma-separated transfer sizes in MB (default 3,6,9)")
	scale := flag.Float64("scale", 0, "time-scale override (0 = per-table default)")
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "reduced run: 3 samples of 3 MB")
	ecBudget := flag.Duration("ec-budget", 100*time.Millisecond, "minimum measurement time per ec cell")
	ecJSON := flag.String("ec-json", "BENCH_ec.json", "machine-readable output path for -table ec (empty disables)")
	hotBudget := flag.Duration("hotpath-budget", 200*time.Millisecond, "minimum measurement time per hotpath packet cell")
	hotJSON := flag.String("hotpath-json", "BENCH_hotpath.json", "machine-readable output path for -table hotpath (empty disables)")
	flag.Parse()

	rc := bench.RunConfig{Samples: *samples, Scale: *scale, Seed: *seed}
	if *quick {
		q := bench.Quick()
		rc.Samples = q.Samples
		rc.SizesMB = q.SizesMB
	}
	if *sizes != "" {
		rc.SizesMB = nil
		for _, s := range strings.Split(*sizes, ",") {
			mb, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || mb <= 0 {
				fmt.Fprintf(os.Stderr, "swift-bench: bad size %q\n", s)
				os.Exit(2)
			}
			rc.SizesMB = append(rc.SizesMB, mb)
		}
	}

	type gen struct {
		key string
		fn  func(bench.RunConfig) (bench.Table, error)
	}
	gens := []gen{
		{"1", bench.Table1},
		{"2", bench.Table2},
		{"3", bench.Table3},
		{"4", bench.Table4},
		{"tcp", bench.TCPTable},
	}
	ran := false
	for _, g := range gens {
		if *table != "all" && *table != g.key {
			continue
		}
		ran = true
		t, err := g.fn(rc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swift-bench: table %s: %v\n", g.key, err)
			os.Exit(1)
		}
		t.Print(os.Stdout)
		fmt.Println()
	}
	if *table == "ablations" {
		ran = true
		if err := runAblations(rc); err != nil {
			fmt.Fprintf(os.Stderr, "swift-bench: ablations: %v\n", err)
			os.Exit(1)
		}
	}
	if *table == "ec" {
		ran = true
		if err := runEC(*ecBudget, *ecJSON); err != nil {
			fmt.Fprintf(os.Stderr, "swift-bench: ec: %v\n", err)
			os.Exit(1)
		}
	}
	if *table == "hotpath" {
		ran = true
		if err := runHotpath(*hotBudget, *hotJSON); err != nil {
			fmt.Fprintf(os.Stderr, "swift-bench: hotpath: %v\n", err)
			os.Exit(1)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "swift-bench: unknown table %q\n", *table)
		os.Exit(2)
	}
}

// runAblations prints the design-choice sweeps from DESIGN.md.
func runAblations(rc bench.RunConfig) error {
	sweeps := []func(bench.RunConfig) (bench.Sweep, error){
		bench.AblationRequestSize,
		bench.AblationStripeUnit,
		bench.AblationAgents,
		bench.AblationParity,
		bench.AblationReadAhead,
	}
	for _, fn := range sweeps {
		s, err := fn(rc)
		if err != nil {
			return err
		}
		s.Print(os.Stdout)
		fmt.Println()
	}
	small, err := bench.AblationSmallObjects(rc)
	if err != nil {
		return err
	}
	bench.PrintSmallObjects(os.Stdout, small)
	fmt.Println()
	return nil
}

// runEC runs the erasure-coding codec microbench, prints it in the
// ablation-sweep style, and (unless disabled) writes the machine-readable
// result set to jsonPath.
func runEC(budget time.Duration, jsonPath string) error {
	b, err := bench.MeasureEC(budget)
	if err != nil {
		return err
	}
	b.Print(os.Stdout)
	fmt.Println()
	if jsonPath == "" {
		return nil
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := b.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}

// runHotpath runs the client hot-path profile (ns/byte and allocs/op,
// tracing off vs on), prints it in the ablation-sweep style, and (unless
// disabled) writes the machine-readable result set to jsonPath.
func runHotpath(budget time.Duration, jsonPath string) error {
	b, err := bench.MeasureHotpath(budget)
	if err != nil {
		return err
	}
	b.Print(os.Stdout)
	fmt.Println()
	if jsonPath == "" {
		return nil
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := b.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}
