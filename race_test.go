//go:build race

package swift_test

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation slows the whole data path by an
// order of magnitude — wall-clock performance gates (goodput ratios,
// latency ceilings) are meaningless there and are skipped.
const raceEnabled = true
