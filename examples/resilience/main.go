// Resilience: computed-copy redundancy surviving an agent failure.
//
// Four storage agents hold a striped object with rotating XOR parity.
// One agent is killed mid-session; reads continue in degraded mode by
// reconstructing the lost units from the survivors. The agent is then
// replaced with an empty store and its fragment is rebuilt.
//
//	go run ./examples/resilience
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"swift"
	"swift/internal/transport/udpnet"
)

const victim = 2 // the agent that will fail

func main() {
	host := udpnet.NewHost("127.0.0.1")

	agents := make([]*swift.Agent, 4)
	addrs := make([]string, 4)
	start := func(i int) {
		a, err := swift.StartAgent(host, swift.NewMemStore(), swift.AgentConfig{
			Port: fmt.Sprintf("%d", 17170+i),
		})
		if err != nil {
			log.Fatalf("agent %d: %v", i, err)
		}
		agents[i] = a
		addrs[i] = a.Addr()
	}
	for i := range agents {
		start(i)
	}
	defer func() {
		for _, a := range agents {
			if a != nil {
				a.Close()
			}
		}
	}()

	fs, err := swift.Dial(swift.Config{
		Host:       host,
		Agents:     addrs,
		StripeUnit: 8 * 1024,
		Parity:     true, // one rotating parity unit per stripe row
	})
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer fs.Close()

	data := make([]byte, 512<<10)
	rand.New(rand.NewSource(7)).Read(data)
	f, err := fs.Create("survivor")
	if err != nil {
		log.Fatalf("create: %v", err)
	}
	if _, err := f.Write(data); err != nil {
		log.Fatalf("write: %v", err)
	}
	fmt.Printf("wrote %d KB over 4 agents with rotating parity\n", len(data)>>10)

	// Kill an agent while the file is open.
	agents[victim].Close()
	agents[victim] = nil
	fmt.Printf("agent %d killed\n", victim)

	// The next read discovers the failure and reconstructs.
	back := make([]byte, len(data))
	if _, err := f.ReadAt(back, 0); err != nil {
		log.Fatalf("degraded read: %v", err)
	}
	if !bytes.Equal(back, data) {
		log.Fatal("degraded read mismatch")
	}
	fmt.Printf("degraded read OK — %d KB reconstructed via XOR parity (agent %d marked down: %v)\n",
		len(back)>>10, victim, fs.Down(victim))

	// Degraded writes keep the parity consistent.
	patch := make([]byte, 64<<10)
	rand.New(rand.NewSource(8)).Read(patch)
	if _, err := f.WriteAt(patch, 100_000); err != nil {
		log.Fatalf("degraded write: %v", err)
	}
	copy(data[100_000:], patch)
	if _, err := f.ReadAt(back, 0); err != nil {
		log.Fatalf("read after degraded write: %v", err)
	}
	if !bytes.Equal(back, data) {
		log.Fatal("degraded write mismatch")
	}
	fmt.Println("degraded write OK — parity kept consistent around the failed agent")
	if err := f.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}

	// Replace the agent with an empty store and rebuild its fragment.
	start(victim)
	fs.MarkDown(victim, false)
	g, err := fs.OpenFile("survivor", swift.OpenFlags{Create: true})
	if err != nil {
		log.Fatalf("reopen for rebuild: %v", err)
	}
	if err := g.Rebuild(victim); err != nil {
		log.Fatalf("rebuild: %v", err)
	}
	fmt.Printf("agent %d replaced and its fragment rebuilt from the survivors\n", victim)

	// A fully healthy read now succeeds without reconstruction.
	if _, err := g.ReadAt(back, 0); err != nil {
		log.Fatalf("healthy read: %v", err)
	}
	if !bytes.Equal(back, data) {
		log.Fatal("post-rebuild mismatch")
	}
	g.Close()
	fmt.Println("post-rebuild read OK — installation fully healthy again")
}
