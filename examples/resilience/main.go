// Resilience: computed-copy redundancy surviving an agent failure, with
// detection and recovery fully automatic.
//
// Four storage agents hold a striped object with rotating XOR parity.
// One agent is killed mid-session; the next read discovers the failure,
// reconstructs the lost units from the survivors, and feeds the failure
// into the client's health lifecycle (healthy → suspect → down). Degraded
// writes keep the parity consistent. The agent is then restarted, and the
// client's background health monitor re-admits it on its own: it probes
// the agent back to life, reopens the file's session, and rebuilds the
// stale fragment from parity before the agent serves reads again. No
// manual intervention — no MarkDown, no explicit Rebuild.
//
//	go run ./examples/resilience
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"swift"
	"swift/internal/transport/udpnet"
)

const victim = 2 // the agent that will fail

func main() {
	host := udpnet.NewHost("127.0.0.1")

	agents := make([]*swift.Agent, 4)
	addrs := make([]string, 4)
	start := func(i int) {
		a, err := swift.StartAgent(host, swift.NewMemStore(), swift.AgentConfig{
			Port: fmt.Sprintf("%d", 17170+i),
		})
		if err != nil {
			log.Fatalf("agent %d: %v", i, err)
		}
		agents[i] = a
		addrs[i] = a.Addr()
	}
	for i := range agents {
		start(i)
	}
	defer func() {
		for _, a := range agents {
			if a != nil {
				a.Close()
			}
		}
	}()

	fs, err := swift.Dial(swift.Config{
		Host:       host,
		Agents:     addrs,
		StripeUnit: 8 * 1024,
		Parity:     true, // one rotating parity unit per stripe row
		// The background health monitor: probe every 200ms, and rebuild a
		// returning agent's fragments from parity before re-admitting it.
		HealthInterval: 200 * time.Millisecond,
		AutoRebuild:    true,
	})
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer fs.Close()

	data := make([]byte, 512<<10)
	rand.New(rand.NewSource(7)).Read(data)
	f, err := fs.Create("survivor")
	if err != nil {
		log.Fatalf("create: %v", err)
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		log.Fatalf("write: %v", err)
	}
	fmt.Printf("wrote %d KB over 4 agents with rotating parity\n", len(data)>>10)

	// Kill an agent while the file is open.
	agents[victim].Close()
	agents[victim] = nil
	fmt.Printf("agent %d killed\n", victim)

	// The next read discovers the failure, reconstructs, and marks the
	// agent in the failure-domain lifecycle.
	back := make([]byte, len(data))
	if _, err := f.ReadAt(back, 0); err != nil {
		log.Fatalf("degraded read: %v", err)
	}
	if !bytes.Equal(back, data) {
		log.Fatal("degraded read mismatch")
	}
	fmt.Printf("degraded read OK — %d KB reconstructed via XOR parity (agent %d now %v)\n",
		len(back)>>10, victim, fs.Health()[victim].State)

	// Degraded writes keep the parity consistent; the victim's units go
	// stale and will need a rebuild before it can serve reads again.
	patch := make([]byte, 64<<10)
	rand.New(rand.NewSource(8)).Read(patch)
	if _, err := f.WriteAt(patch, 100_000); err != nil {
		log.Fatalf("degraded write: %v", err)
	}
	copy(data[100_000:], patch)
	if _, err := f.ReadAt(back, 0); err != nil {
		log.Fatalf("read after degraded write: %v", err)
	}
	if !bytes.Equal(back, data) {
		log.Fatal("degraded write mismatch")
	}
	fmt.Println("degraded write OK — parity kept consistent around the failed agent")

	// Restart the agent (empty store: the machine came back reimaged).
	// The health monitor notices on its own: it probes the agent, reopens
	// the file's session, rebuilds the fragment from the survivors, and
	// returns the agent to service.
	start(victim)
	fmt.Printf("agent %d restarted; waiting for automatic re-admission...\n", victim)
	deadline := time.Now().Add(10 * time.Second)
	for fs.Health()[victim].State != swift.StateHealthy {
		if time.Now().After(deadline) {
			log.Fatalf("agent %d never re-admitted: %+v", victim, fs.Health()[victim])
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("agent %d re-admitted automatically — session reopened, fragment rebuilt\n", victim)

	// A fully healthy read now succeeds without reconstruction, through
	// the same open file handle.
	if _, err := f.ReadAt(back, 0); err != nil {
		log.Fatalf("healthy read: %v", err)
	}
	if !bytes.Equal(back, data) {
		log.Fatal("post-readmit mismatch")
	}
	fmt.Println("post-readmit read OK — installation fully healthy again")
}
