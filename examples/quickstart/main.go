// Quickstart: start three Swift storage agents over real UDP on the
// loopback interface, stripe an object across them, and read it back.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"swift"
	"swift/internal/transport/udpnet"
)

func main() {
	host := udpnet.NewHost("127.0.0.1")

	// Each agent would normally be its own machine running swiftd;
	// here they share the process for a self-contained demo.
	var addrs []string
	for i := 0; i < 3; i++ {
		a, err := swift.StartAgent(host, swift.NewMemStore(), swift.AgentConfig{
			Port: fmt.Sprintf("%d", 17070+i),
		})
		if err != nil {
			log.Fatalf("agent %d: %v", i, err)
		}
		defer a.Close()
		addrs = append(addrs, a.Addr())
	}

	fs, err := swift.Dial(swift.Config{
		Host:       host,
		Agents:     addrs,
		StripeUnit: 16 * 1024,
	})
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer fs.Close()

	// Write one megabyte striped over the three agents.
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	f, err := fs.Create("demo/object")
	if err != nil {
		log.Fatalf("create: %v", err)
	}
	if _, err := f.Write(data); err != nil {
		log.Fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	fmt.Printf("wrote %d bytes striped over %d agents (unit 16 KB)\n", len(data), len(addrs))

	// Reopen and verify.
	g, err := fs.Open("demo/object")
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer g.Close()
	back := make([]byte, g.Size())
	if _, err := g.ReadAt(back, 0); err != nil {
		log.Fatalf("read: %v", err)
	}
	if !bytes.Equal(back, data) {
		log.Fatal("read-back mismatch")
	}
	fmt.Printf("read %d bytes back — contents verified\n", len(back))

	size, err := fs.Stat("demo/object")
	if err != nil {
		log.Fatalf("stat: %v", err)
	}
	names, err := fs.List()
	if err != nil {
		log.Fatalf("list: %v", err)
	}
	fmt.Printf("stat: %d bytes; objects: %v\n", size, names)
}
