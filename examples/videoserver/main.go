// Videoserver: the paper's motivating workload — continuous multimedia.
//
// A client asks the storage mediator for a session able to sustain
// compressed video at 1.0 MB/s (the paper's §1 cites 1.2 MB/s for DVI
// video; our modeled SPARCstation 2 client tops out just below that, so
// the demo streams at 1.0 MB/s). No single 10 Mb/s Ethernet delivers
// ≈0.9 MB/s of application data and no single SCSI disk reads faster than
// ≈0.68 MB/s, so the mediator's transfer plan stripes the stream over
// storage agents on two Ethernet segments with a small striping unit.
// The playback loop reads against a 30-fps deadline clock and reports the
// delivered rate and late frames.
//
//	go run ./examples/videoserver
package main

import (
	"fmt"
	"log"
	"time"

	"swift/internal/bench"
	"swift/internal/core"
	"swift/internal/mediator"
)

const (
	videoRate = 1.0e6    // compressed video, bytes/second
	videoLen  = 12 << 20 // total stream size
	playerBuf = 512 << 10
)

func main() {
	// The mediator knows the installation's capacities: six SLC agents
	// at 400 KB/s each, three per 10 Mb/s Ethernet.
	infos := make([]mediator.AgentInfo, 6)
	for i := range infos {
		infos[i] = mediator.AgentInfo{Addr: fmt.Sprintf("slc%d:7070", i), Rate: 400e3, Net: i % 2}
	}
	med, err := mediator.New(mediator.Config{
		Agents:  infos,
		Nets:    []mediator.NetInfo{{Name: "ether0", Capacity: 0.9e6}, {Name: "ether1", Capacity: 0.9e6}},
		MaxUnit: 64 * 1024,
	})
	if err != nil {
		log.Fatalf("mediator: %v", err)
	}

	// A 3 MB/s request must be rejected: the installation cannot do it.
	if _, err := med.OpenSession(mediator.Requirements{Rate: 3e6}); err == nil {
		log.Fatal("mediator admitted an impossible session")
	} else {
		fmt.Printf("mediator rejected 3.0 MB/s (correctly): %v\n", err)
	}

	// The video session is admitted with a plan spanning both segments.
	plan, err := med.OpenSession(mediator.Requirements{Rate: videoRate})
	if err != nil {
		log.Fatalf("mediator rejected the video session: %v", err)
	}
	defer med.CloseSession(plan.SessionID)
	fmt.Printf("mediator admitted 1.0 MB/s: %d agents, striping unit %d KB\n",
		len(plan.Agents), plan.Unit/1024)

	// Build the installation and a client that executes the plan.
	cluster, err := bench.NewSwiftCluster(bench.Options{
		Agents:   6,
		Segments: 2,
		Scale:    6,
		Unit:     plan.Unit,
	})
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	defer cluster.Close()

	// Store the "video".
	f, err := cluster.Client.Open("movie.dvi", core.OpenFlags{Create: true, Truncate: true})
	if err != nil {
		log.Fatalf("create: %v", err)
	}
	defer f.Close()
	chunk := make([]byte, 1<<20)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	for off := int64(0); off < videoLen; off += int64(len(chunk)) {
		if _, err := f.WriteAt(chunk, off); err != nil {
			log.Fatalf("store video: %v", err)
		}
	}
	fmt.Printf("stored a %d MB stream\n", videoLen>>20)

	// Playback: a buffered player pre-buffers the first half-megabyte
	// (as real players do before starting the display clock), then must
	// stay ahead of consumption.
	perByte := float64(time.Second) / videoRate
	buf := make([]byte, playerBuf)
	if _, err := f.ReadAt(buf, 0); err != nil {
		log.Fatalf("prebuffer: %v", err)
	}
	late := 0
	start := cluster.Net.Now()
	for off := int64(0); off < videoLen; off += playerBuf {
		if _, err := f.ReadAt(buf, off); err != nil {
			log.Fatalf("read at %d: %v", off, err)
		}
		// This buffer must be in memory before the display clock
		// reaches it.
		deadline := start + time.Duration(perByte*float64(off+playerBuf))
		if cluster.Net.Now() > deadline {
			late++
		}
	}
	elapsed := cluster.Net.Now() - start
	rate := float64(videoLen) / elapsed.Seconds() / 1e6
	fmt.Printf("streamed %d MB in %.1f modeled seconds: %.2f MB/s delivered (need 1.00), %d/%d late buffers\n",
		videoLen>>20, elapsed.Seconds(), rate, late, videoLen/playerBuf)
	if late == 0 && rate >= 1.0 {
		fmt.Println("continuous-media deadline met: two striped Ethernets deliver what one cannot")
	}
}
