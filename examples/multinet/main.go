// Multinet: the §4.1 experiment as a demo — "the effect of adding a
// second Ethernet". The same client measures Swift transfers against
// three agents on one modeled Ethernet, then against six agents spread
// over two segments, and prints the scaling factors the paper reports
// (writes ≈2×, reads bounded by the client's receive path).
//
//	go run ./examples/multinet
package main

import (
	"fmt"
	"log"

	"swift/internal/bench"
	"swift/internal/core"
)

func measure(segments, agents int) (readKBps, writeKBps float64) {
	cluster, err := bench.NewSwiftCluster(bench.Options{
		Agents:   agents,
		Segments: segments,
		Scale:    6,
	})
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	defer cluster.Close()

	const size = 3 << 20
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 31)
	}
	f, err := cluster.Client.Open("scale-demo", core.OpenFlags{Create: true})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer f.Close()

	start := cluster.Net.Now()
	if _, err := f.WriteAt(data, 0); err != nil {
		log.Fatalf("write: %v", err)
	}
	writeKBps = size / 1024 / (cluster.Net.Now() - start).Seconds()

	buf := make([]byte, size)
	start = cluster.Net.Now()
	if _, err := f.ReadAt(buf, 0); err != nil {
		log.Fatalf("read: %v", err)
	}
	readKBps = size / 1024 / (cluster.Net.Now() - start).Seconds()
	return readKBps, writeKBps
}

func main() {
	fmt.Println("Swift scaling across Ethernet segments (3 MB transfers, modeled network)")

	r1, w1 := measure(1, 3)
	fmt.Printf("one Ethernet,  3 agents:  read %4.0f KB/s   write %4.0f KB/s\n", r1, w1)

	r2, w2 := measure(2, 6)
	fmt.Printf("two Ethernets, 6 agents:  read %4.0f KB/s   write %4.0f KB/s\n", r2, w2)

	fmt.Printf("scaling: read ×%.2f, write ×%.2f\n", r2/r1, w2/w1)
	fmt.Println()
	fmt.Println("As in the paper's Table 4: writes nearly double with the second")
	fmt.Println("segment, while reads gain only ~25-30% because the client's")
	fmt.Println("receive path saturates before the added network capacity does.")
}
