package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoExit flags fire-and-forget goroutines in internal packages: a
// goroutine whose body loops forever must have a visible shutdown path
// (a return or break reachable inside the loop — typically a select on a
// done channel or context — or a range over a closeable channel).
// Ranging over a ticker or timer channel is flagged outright: those
// channels never close, so Stop does not end the loop. Goroutines that
// would survive FS Close leak across every open/close cycle and poison
// the leakcheck gate in tests.
var GoExit = &Analyzer{
	Name: "goexit",
	Doc:  "goroutines must have a shutdown path; no unbounded fire-and-forget loops",
	Run:  runGoExit,
}

func runGoExit(pass *Pass) {
	if !strings.Contains(pass.Pkg.Path+"/", "/internal/") &&
		!strings.HasPrefix(pass.Pkg.Path, "internal/") {
		return
	}
	decls := funcDeclIndex(pass)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, label := goBody(pass, g, decls)
			if body == nil {
				return true
			}
			if why := leakyLoop(pass, body); why != "" {
				pass.Reportf(g.Pos(),
					"goexit: goroutine %s %s; add a done channel/context (or //lint:allow goexit <reason>)",
					label, why)
			}
			return true
		})
	}
}

// funcDeclIndex maps each function object defined in the package to its
// declaration, so `go x.loop()` can be checked at the launch site.
func funcDeclIndex(pass *Pass) map[*types.Func]*ast.FuncDecl {
	idx := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					idx[fn] = fd
				}
			}
		}
	}
	return idx
}

// goBody resolves the body the go statement will execute: a function
// literal, or a function/method declared in this package. Launches of
// foreign functions are skipped.
func goBody(pass *Pass, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) (*ast.BlockStmt, string) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body, "func literal"
	}
	if fn := pass.Callee(g.Call); fn != nil {
		if fd := decls[fn]; fd != nil && fd.Body != nil {
			return fd.Body, fn.Name()
		}
	}
	return nil, ""
}

// leakyLoop scans body (not descending into nested function literals) for
// a loop with no shutdown path. It returns a description of the first
// offending loop, or "".
func leakyLoop(pass *Pass, body *ast.BlockStmt) string {
	var why string
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if isTickerChan(pass, s.X) {
				why = "ranges over a ticker/timer channel that never closes, so it can never exit"
				return false
			}
		case *ast.ForStmt:
			if s.Cond == nil && !hasExit(s.Body) {
				why = "loops forever with no reachable return or break"
				return false
			}
		}
		return true
	})
	return why
}

// hasExit reports whether the loop body contains a return, a break, or a
// goto (not inside a nested function literal). A loop that can only be
// left through one of these has at least one designed exit; loops without
// any can never stop.
func hasExit(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			// break/goto leave the loop; continue does not.
			if s.Tok == token.BREAK || s.Tok == token.GOTO {
				found = true
			}
		}
		return !found
	})
	return found
}

// isTickerChan reports whether e is the C field of a time.Ticker or
// time.Timer.
func isTickerChan(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "C" {
		return false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "time" &&
		(named.Obj().Name() == "Ticker" || named.Obj().Name() == "Timer")
}
