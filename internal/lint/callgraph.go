package lint

import (
	"go/ast"
	"go/types"
)

// Module is the whole-module view the interprocedural analyzers share:
// every function declaration across the loaded packages, the static call
// graph between them, and lazily-computed summaries (hot-path
// reachability, transitive blockingness). One Module is built per Run
// invocation, so fixture loads and real-tree loads never mix.
//
// The call graph is static: direct calls and method calls resolved by
// the type checker. Calls through interface values or function-typed
// variables are opaque — deliberately, since swift's layer boundaries
// (store.Object, transport.Conn, mediator.Peer) are interfaces, this
// keeps hot-path reachability confined to the layer that was annotated
// instead of swallowing every implementation in the module.
type Module struct {
	Decls   map[*types.Func]*ast.FuncDecl // module function/method declarations
	DeclPkg map[*types.Func]*Package      // defining package of each declaration
	Calls   map[*types.Func][]*types.Func // static module-internal call edges

	pkgs     []*Package                  // the loaded packages, for lazy summaries
	hot      map[*types.Func]*types.Func // hot function -> its //swift:hotpath root
	blocking map[*types.Func]bool        // transitively reaches a blocking package
	guards   map[types.Object]string     // annotated field -> guarding mutex name
	guardMus map[*types.TypeName]map[string]bool
}

// BuildModule indexes the packages into a Module. Calls made inside
// function literals are attributed to the enclosing declaration: the
// literal runs with the enclosing function's obligations until proven
// otherwise.
func BuildModule(pkgs []*Package) *Module {
	m := &Module{
		Decls:   make(map[*types.Func]*ast.FuncDecl),
		DeclPkg: make(map[*types.Func]*Package),
		Calls:   make(map[*types.Func][]*types.Func),
	}
	for _, p := range pkgs {
		if p == nil || p.Types == nil {
			continue
		}
		m.pkgs = append(m.pkgs, p)
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					m.Decls[fn] = fd
					m.DeclPkg[fn] = p
				}
			}
		}
	}
	for fn, fd := range m.Decls {
		p := m.DeclPkg[fn]
		if fd.Body == nil {
			continue
		}
		seen := make(map[*types.Func]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(p, call)
			if callee != nil && !seen[callee] {
				seen[callee] = true
				m.Calls[fn] = append(m.Calls[fn], callee)
			}
			return true
		})
	}
	return m
}

// calleeOf resolves the function or method a call invokes within pkg's
// type info, or nil (builtin, conversion, or dynamic call).
func calleeOf(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := p.Info.Uses[id].(*types.Func)
	return f
}

// HotRoot returns the //swift:hotpath root fn is reachable from (fn
// itself if directly annotated), or nil if fn is off the hot path. The
// reachable set is the closure of the static call graph over the
// annotated roots, computed once per Module.
func (m *Module) HotRoot(fn *types.Func) *types.Func {
	if m.hot == nil {
		m.hot = make(map[*types.Func]*types.Func)
		var frontier []*types.Func
		for f, fd := range m.Decls {
			if hasDirective(fd.Doc, DirHotpath) {
				m.hot[f] = f
				frontier = append(frontier, f)
			}
		}
		for len(frontier) > 0 {
			f := frontier[0]
			frontier = frontier[1:]
			root := m.hot[f]
			for _, callee := range m.Calls[f] {
				if _, ok := m.Decls[callee]; !ok {
					continue // foreign function: no body to hold to the invariant
				}
				if _, ok := m.hot[callee]; !ok {
					m.hot[callee] = root
					frontier = append(frontier, callee)
				}
			}
		}
	}
	return m.hot[fn]
}

// Blocking reports whether fn performs blocking I/O, directly (it lives
// in or calls into a blocking package — transport, store, disk, ... as
// defined by lockio's blockingPkgBases, plus medrpc) or transitively
// through module-internal static calls.
func (m *Module) Blocking(fn *types.Func) bool {
	if m.blocking == nil {
		m.blocking = make(map[*types.Func]bool)
		// Seed: everything declared in a blocking package blocks (except
		// the pure helpers lockio already exempts).
		for f := range m.Decls {
			if directBlocking(f) {
				m.blocking[f] = true
			}
		}
		// Propagate to callers until the set stops growing. The graph is
		// small (one module); a simple fixpoint loop is fine.
		for changed := true; changed; {
			changed = false
			for caller, callees := range m.Calls {
				if m.blocking[caller] {
					continue
				}
				for _, callee := range callees {
					if m.blocking[callee] || directBlocking(callee) {
						m.blocking[caller] = true
						changed = true
						break
					}
				}
			}
		}
	}
	return m.blocking[fn] || directBlocking(fn)
}

// directBlocking reports whether fn itself belongs to a blocking
// package (the same set lockio guards, plus the mediator RPC stub).
func directBlocking(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	base := pkgBase(pkg.Path())
	if !blockingPkgBases[base] && base != "medrpc" {
		return false
	}
	return !pureHelper(fn.Name())
}
