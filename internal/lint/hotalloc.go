package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc machine-checks the zero-allocation hot path. Functions whose
// doc comment carries a //swift:hotpath directive are roots; everything
// module-reachable from a root through static calls inherits the
// obligation. Within the hot set the analyzer flags every construct that
// heap-allocates (or is overwhelmingly likely to under escape analysis):
//
//   - make / new and slice, map, and &T{} composite literals
//   - append whose destination is not rooted at a parameter or the
//     receiver (the caller-provided `dst = append(dst, ...)` codec idiom
//     and struct-owned scratch buffers are the approved shapes: they
//     amortize to zero)
//   - string <-> []byte / []rune conversions and string concatenation
//   - interface boxing at call arguments and conversions
//   - closures that capture enclosing variables, and go statements
//   - any fmt.* call
//
// Calls through interfaces and into foreign (stdlib) code are not
// traversed — the type system's layer boundaries bound the hot set —
// and justified exceptions (init-time setup, cold error branches) take
// //lint:allow hotalloc <reason>. This turns BENCH_hotpath.json's
// 0.0 allocs/op from a bench observation into a build gate.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//swift:hotpath functions and everything they reach must not heap-allocate",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	if pass.Mod == nil {
		pass.Mod = BuildModule([]*Package{pass.Pkg})
	}
	checkDirectives(pass)
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			root := pass.Mod.HotRoot(fn)
			if root == nil {
				continue
			}
			checkHotFunc(pass, fd, fn, root)
		}
	}
}

// checkDirectives validates the //swift: machine-directive namespace,
// which hotalloc owns: unknown directives, malformed arguments, and
// directives floating outside a function's doc comment (where they
// silently bind nothing) are all findings.
func checkDirectives(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		docs := make(map[*ast.CommentGroup]bool)
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
				docs[fd.Doc] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, args, ok := ParseDirective(c.Text)
				if !ok {
					continue
				}
				switch name {
				case DirHotpath:
					if args != "" {
						pass.Reportf(c.Pos(), "hotalloc: //swift:hotpath takes no argument (got %q)", args)
					} else if !docs[cg] {
						pass.Reportf(c.Pos(), "hotalloc: misplaced //swift:hotpath: the directive binds only on a function's doc comment")
					}
				case DirPool:
					// Argument validation belongs to bufsafe; placement is
					// shared grammar.
					if !docs[cg] {
						pass.Reportf(c.Pos(), "hotalloc: misplaced //swift:pool: the directive binds only on a function's doc comment")
					}
				default:
					pass.Reportf(c.Pos(), "hotalloc: unknown directive //swift:%s (known: hotpath, pool)", name)
				}
			}
		}
	}
}

// checkHotFunc flags every allocation site in one hot function.
func checkHotFunc(pass *Pass, fd *ast.FuncDecl, fn *types.Func, root *types.Func) {
	owned := ownedObjects(pass, fd)
	via := ""
	if root != fn {
		via = fmt.Sprintf(" (reached from //swift:hotpath root %s)", funcLabel(root))
	}
	flag := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, "hotalloc: "+fmt.Sprintf(format, args...)+" in hot-path function %s%s; hoist it or //lint:allow hotalloc <reason>", funcLabel(fn), via)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, x, owned, flag)
		case *ast.CompositeLit:
			t := pass.TypeOf(x)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				flag(x.Pos(), "slice literal allocates")
			case *types.Map:
				flag(x.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					flag(x.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(pass.TypeOf(x)) {
				flag(x.Pos(), "string concatenation allocates")
			}
		case *ast.GoStmt:
			flag(x.Pos(), "go statement allocates a goroutine")
		case *ast.FuncLit:
			if capturesOuter(pass, x, fd) {
				flag(x.Pos(), "closure captures enclosing variables and escapes")
			}
		}
		return true
	})
}

// checkHotCall handles the call-shaped allocation sites: builtins,
// conversions, fmt, append destinations, and interface boxing at the
// arguments.
func checkHotCall(pass *Pass, call *ast.CallExpr, owned map[types.Object]bool, flag func(token.Pos, string, ...any)) {
	// Builtins and append.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				flag(call.Pos(), "make allocates")
			case "new":
				flag(call.Pos(), "new allocates")
			case "append":
				if len(call.Args) > 0 && !rootedAt(pass, call.Args[0], owned) {
					flag(call.Pos(), "append to a function-local slice may grow and allocate")
				}
			}
			return
		}
	}
	// Conversions: string <-> []byte/[]rune allocate; conversions to an
	// interface type box.
	if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, pass.TypeOf(call.Args[0])
		switch {
		case isString(to) && isByteOrRuneSlice(from):
			flag(call.Pos(), "string(bytes) conversion copies and allocates")
		case isByteOrRuneSlice(to) && isString(from):
			flag(call.Pos(), "[]byte(string) conversion copies and allocates")
		case types.IsInterface(to) && from != nil && !types.IsInterface(from) && basicOrComposite(from):
			flag(call.Pos(), "conversion to interface boxes the value")
		}
		return
	}
	if fn := pass.Callee(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		flag(call.Pos(), "fmt.%s allocates", fn.Name())
		return
	}
	// Interface boxing at arguments: a concrete value passed where the
	// callee takes an interface is wrapped in a fresh heap cell.
	sig, _ := pass.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // forwarding a slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		at := pass.TypeOf(arg)
		if pt == nil || at == nil || !types.IsInterface(pt) || types.IsInterface(at) {
			continue
		}
		if isUntypedNil(pass, arg) || !basicOrComposite(at) {
			continue
		}
		flag(arg.Pos(), "argument boxes %s into %s", at, pt)
	}
}

// ownedObjects collects the objects an append destination may be rooted
// at without flagging: the function's parameters (including named
// results) and its receiver. Appending into caller-provided or
// struct-owned storage amortizes to zero allocations.
func ownedObjects(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	owned := make(map[types.Object]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.Pkg.Info.Defs[name]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	add(fd.Type.Results)
	return owned
}

// rootedAt reports whether the expression's base identifier resolves to
// one of the owned objects (unwrapping slicing, indexing, selectors and
// parens: s.sendBuf[:0] is rooted at s).
func rootedAt(pass *Pass, e ast.Expr, owned map[types.Object]bool) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return owned[pass.Pkg.Info.Uses[x]] || owned[pass.Pkg.Info.Defs[x]]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// capturesOuter reports whether lit references a variable declared in
// the enclosing function outside the literal itself — the case where
// materializing the closure allocates.
func capturesOuter(pass *Pass, lit *ast.FuncLit, fd *ast.FuncDecl) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < lit.Pos() {
			captures = true
		}
		return true
	})
	return captures
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// basicOrComposite reports whether boxing t requires a heap cell: basic
// values, structs, and arrays do; pointers, slices, maps, channels and
// functions fit the interface word (pointer-shaped) or are themselves
// already references.
func basicOrComposite(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UntypedNil
	case *types.Struct, *types.Array:
		return true
	}
	return false
}

func isUntypedNil(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return true
	}
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// funcLabel renders a function compactly for diagnostics:
// wire.AppendPacket, agent.(*session).serveRead.
func funcLabel(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return pkgBase(fn.Pkg().Path()) + "." + name
	}
	return name
}
