package lint

import (
	"go/ast"
)

// clockTargets are the model/simulation packages whose determinism under
// the time-scale knob (PAPER.md §4) depends on never reading the wall
// clock outside the injected-clock seam.
var clockTargets = map[string]bool{
	"memnet":   true,
	"disk":     true,
	"sim":      true,
	"simswift": true,
	"mediator": true,
}

// clockFuncs are the wall-clock entry points of package time.
var clockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// ClockCheck flags wall-clock access (time.Now, time.Sleep, timers,
// tickers) in model packages. Model code must go through the injected
// clock — memnet's scaled epoch, disk's Sleeper, mediator's Config.Now,
// sim's virtual time — or the paper's tables stop being reproducible.
// Both calls and value references (assigning time.Now as a default) are
// flagged; the deliberate seams carry //lint:allow clockcheck comments.
var ClockCheck = &Analyzer{
	Name: "clockcheck",
	Doc:  "model packages must use the injected clock, never the wall clock",
	Run:  runClockCheck,
}

func runClockCheck(pass *Pass) {
	if !clockTargets[pass.Pkg.Base()] {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok || !clockFuncs[sel.Sel.Name] || !pass.PkgIdent(x, "time") {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s bypasses the injected clock in model package %q; use the package's clock seam or justify with //lint:allow clockcheck <reason>",
				sel.Sel.Name, pass.Pkg.Base())
			return true
		})
	}
}
