package lint_test

import (
	"testing"

	"swift/internal/lint"
)

// TestUnusedAllowReported: an allow naming a real analyzer that no
// longer fires on that line is itself a finding — stale suppressions
// cannot linger after the code they excused is gone.
func TestUnusedAllowReported(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"sim/s.go": `package sim

// Fine no longer allocates, but kept its allow.
func Fine() int {
	//lint:allow hotalloc leftover from a deleted make call
	return 7
}
`,
	})
	pkgs := mustLoad(t, dir)
	diags := lint.Run(pkgs, lint.All())
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(diags), diags)
	}
	assertHas(t, diags, "lint", "unused //lint:allow hotalloc")
}

// TestUnusedAllowNotReportedOnPartialRun: when only a subset of
// analyzers runs (swiftvet -run), allows for the analyzers that did not
// run must not be called unused.
func TestUnusedAllowNotReportedOnPartialRun(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"sim/s.go": `package sim

// Fine is covered by an analyzer outside this run set.
func Fine() int {
	//lint:allow hotalloc leftover from a deleted make call
	return 7
}
`,
	})
	pkgs := mustLoad(t, dir)
	diags := lint.Run(pkgs, lint.ByName("clockcheck"))
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics on a partial run, got %v", diags)
	}
}

// TestUnknownDirective: a //swift: directive outside the known set is a
// finding, so typos cannot silently skip enforcement.
func TestUnknownDirective(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"sim/s.go": `package sim

//swift:hotpth
func Fine() {}
`,
	})
	pkgs := mustLoad(t, dir)
	diags := lint.Run(pkgs, lint.ByName("hotalloc"))
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(diags), diags)
	}
	assertHas(t, diags, "hotalloc", "unknown directive //swift:hotpth")
}

// TestHotpathDirectiveWithArgument: //swift:hotpath takes no argument.
func TestHotpathDirectiveWithArgument(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"sim/s.go": `package sim

//swift:hotpath encode
func Fine() {}
`,
	})
	pkgs := mustLoad(t, dir)
	diags := lint.Run(pkgs, lint.ByName("hotalloc"))
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(diags), diags)
	}
	assertHas(t, diags, "hotalloc", "takes no argument")
}

// TestMisplacedDirective: swift: directives bind only on function doc
// comments; anywhere else they silently do nothing, which must be loud.
func TestMisplacedDirective(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"sim/s.go": `package sim

// T is a type, not a function.
//swift:hotpath
type T struct{}

func Fine() {
	//swift:pool acquire
	_ = T{}
}
`,
	})
	pkgs := mustLoad(t, dir)
	diags := lint.Run(pkgs, lint.ByName("hotalloc"))
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics, got %d: %v", len(diags), diags)
	}
	assertHas(t, diags, "hotalloc", "misplaced //swift:hotpath")
	assertHas(t, diags, "hotalloc", "misplaced //swift:pool")
}

// TestPoolDirectiveBadRole: //swift:pool accepts exactly acquire or
// release.
func TestPoolDirectiveBadRole(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"sim/s.go": `package sim

//swift:pool recycle
func Get() *int { return new(int) }
`,
	})
	pkgs := mustLoad(t, dir)
	diags := lint.Run(pkgs, lint.ByName("bufsafe"))
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(diags), diags)
	}
	assertHas(t, diags, "bufsafe", `//swift:pool wants "acquire" or "release" (got "recycle")`)
}

// TestDanglingGuard: a guard comment naming a non-field is malformed.
func TestDanglingGuard(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"sim/s.go": `package sim

// S has a dangling guard annotation.
type S struct {
	n int // guarded by missing
}
`,
	})
	pkgs := mustLoad(t, dir)
	diags := lint.Run(pkgs, lint.ByName("lockguard"))
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(diags), diags)
	}
	assertHas(t, diags, "lockguard", "names no sibling field")
}

// TestHotpathCrossPackageAttribution: a diagnostic in a function dragged
// hot from another package names the root that reached it.
func TestHotpathCrossPackageAttribution(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"enc/e.go": `package enc

// Grow allocates; it is only hot because core.Send reaches it.
func Grow(n int) []byte {
	return make([]byte, n)
}
`,
		"core/c.go": `package core

import "fixture/enc"

// Send is the hot root.
//swift:hotpath
func Send() []byte { return enc.Grow(9) }
`,
	})
	pkgs := mustLoad(t, dir)
	diags := lint.Run(pkgs, lint.ByName("hotalloc"))
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(diags), diags)
	}
	assertHas(t, diags, "hotalloc", "reached from //swift:hotpath root core.Send")
}
