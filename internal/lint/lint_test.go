package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"swift/internal/lint"
)

// TestFixtures runs each analyzer over its seeded-violation fixture tree
// and checks (a) every diagnostic matches a `// want` regexp on its exact
// line, (b) every want is hit, and (c) the exact file:line:col positions
// match the committed expect.golden (set LINT_UPDATE=1 to regenerate).
func TestFixtures(t *testing.T) {
	for _, a := range lint.All() {
		t.Run(a.Name, func(t *testing.T) { runFixture(t, a.Name) })
	}
}

func runFixture(t *testing.T, name string) {
	root := filepath.Join("testdata", "src", name)
	pkgs := loadFixture(t, root)
	diags := lint.Run(pkgs, lint.ByName(name))

	wants := collectWants(t, root)
	matched := make(map[*want]bool)
	for _, d := range diags {
		w := findWant(wants, d, matched)
		if w == nil {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		matched[w] = true
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}

	// Exact-position golden: seeded violations must be reported at the
	// exact line and column.
	var got strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&got, "%s:%d:%d %s\n", d.File, d.Line, d.Col, d.Analyzer)
	}
	goldenPath := filepath.Join(root, "expect.golden")
	if os.Getenv("LINT_UPDATE") != "" {
		if err := os.WriteFile(goldenPath, []byte(got.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing %s (run with LINT_UPDATE=1 to generate): %v", goldenPath, err)
	}
	if string(want) != got.String() {
		t.Errorf("positions diverge from %s:\n--- want\n%s--- got\n%s", goldenPath, want, got.String())
	}
}

func loadFixture(t *testing.T, root string) []*lint.Package {
	t.Helper()
	pkgs, err := lint.Load(root, "fixture")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if len(p.Errs) > 0 {
			t.Fatalf("fixture package %s does not type-check: %v", p.Path, p.Errs)
		}
	}
	return pkgs
}

// want is one expected diagnostic parsed from a fixture comment.
type want struct {
	file string // fixture-root-relative, slash-separated
	line int
	rx   *regexp.Regexp
}

// collectWants scans fixture sources for `// want` comments carrying one
// or more backquoted regexps.
func collectWants(t *testing.T, root string) []*want {
	t.Helper()
	var wants []*want
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			for _, raw := range backquoted(line[idx+len("// want "):]) {
				rx, err := regexp.Compile(raw)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", rel, i+1, raw, err)
				}
				wants = append(wants, &want{file: rel, line: i + 1, rx: rx})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// backquoted extracts `...` segments from s.
func backquoted(s string) []string {
	var out []string
	for {
		open := strings.IndexByte(s, '`')
		if open < 0 {
			return out
		}
		close := strings.IndexByte(s[open+1:], '`')
		if close < 0 {
			return out
		}
		out = append(out, s[open+1:open+1+close])
		s = s[open+close+2:]
	}
}

func findWant(wants []*want, d lint.Diagnostic, matched map[*want]bool) *want {
	for _, w := range wants {
		if matched[w] || w.file != d.File || w.line != d.Line {
			continue
		}
		if w.rx.MatchString(d.Message) {
			return w
		}
	}
	return nil
}

// writeFixtureModule lays out an ad-hoc fixture tree for driver tests.
func writeFixtureModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestAllowRequiresJustification: a bare //lint:allow suppresses nothing
// and is itself reported.
func TestAllowRequiresJustification(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"memnet/m.go": `package memnet

import "time"

// Bad reads the wall clock under a justification-free allow.
func Bad() time.Time {
	//lint:allow clockcheck
	return time.Now()
}
`,
	})
	pkgs := mustLoad(t, dir)
	diags := lint.Run(pkgs, lint.All())
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics (finding + malformed allow), got %d: %v", len(diags), diags)
	}
	assertHas(t, diags, "clockcheck", "bypasses the injected clock")
	assertHas(t, diags, "lint", "malformed")
}

// TestAllowUnknownAnalyzer: allows naming a nonexistent analyzer are
// reported so typos cannot silently disable enforcement.
func TestAllowUnknownAnalyzer(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"memnet/m.go": `package memnet

// Fine does nothing.
//lint:allow clockchekc typo in the analyzer name
func Fine() {}
`,
	})
	pkgs := mustLoad(t, dir)
	diags := lint.Run(pkgs, lint.All())
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(diags), diags)
	}
	assertHas(t, diags, "lint", "unknown analyzer")
}

// TestAllowJustifiedSuppresses: a justified allow on the preceding line
// removes the finding entirely.
func TestAllowJustifiedSuppresses(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"sim/s.go": `package sim

import "time"

// Seam is the justified injection default.
func Seam() time.Time {
	//lint:allow clockcheck fixture: this is the injection seam
	return time.Now()
}
`,
	})
	pkgs := mustLoad(t, dir)
	diags := lint.Run(pkgs, lint.All())
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", diags)
	}
}

// TestRemovingAllowFails is the enforcement demonstration from the
// acceptance criteria: the same code without its allow comment fails.
func TestRemovingAllowFails(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"sim/s.go": `package sim

import "time"

// Seam lost its allow comment.
func Seam() time.Time {
	return time.Now()
}
`,
	})
	pkgs := mustLoad(t, dir)
	diags := lint.Run(pkgs, lint.All())
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic after removing the allow, got %v", diags)
	}
	assertHas(t, diags, "clockcheck", "bypasses the injected clock")
}

func mustLoad(t *testing.T, dir string) []*lint.Package {
	t.Helper()
	pkgs, err := lint.Load(dir, "fixture")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if len(p.Errs) > 0 {
			t.Fatalf("package %s does not type-check: %v", p.Path, p.Errs)
		}
	}
	return pkgs
}

func assertHas(t *testing.T, diags []lint.Diagnostic, analyzer, substr string) {
	t.Helper()
	for _, d := range diags {
		if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
			return
		}
	}
	t.Errorf("no %s diagnostic containing %q in %v", analyzer, substr, diags)
}

// TestMatchPatterns pins the CLI's package-pattern semantics.
func TestMatchPatterns(t *testing.T) {
	p := &lint.Package{Path: "swift/internal/core"}
	cases := []struct {
		patterns []string
		want     bool
	}{
		{nil, true},
		{[]string{"..."}, true},
		{[]string{"internal/..."}, true},
		{[]string{"internal/core"}, true},
		{[]string{"internal/core/..."}, true},
		{[]string{"cmd/..."}, false},
		{[]string{"internal/corex"}, false},
	}
	for _, c := range cases {
		if got := p.Match("swift", lint.NormalizePatterns(c.patterns)); got != c.want {
			t.Errorf("Match(%v) = %v, want %v", c.patterns, got, c.want)
		}
	}
}
