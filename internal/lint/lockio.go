package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockIO machine-checks the zero-lock data path: no sync.Mutex or
// sync.RWMutex may be held across a blocking transport, store, disk or
// integrity call. The analysis is intra-procedural and linear: within
// each function (and each function literal, analyzed as its own scope) it
// tracks Lock/RLock acquisitions, honors defer Unlock (the lock stays
// held to the end of the function), and flags any blocking call reached
// with a lock still held.
//
// The I/O packages themselves (store, disk, memnet, ...) are exempt:
// their mutexes model the medium — a disk.Device's lock is the disk arm,
// serving one request at a time — so holding them across the modeled
// transfer is the point, not a bug. The invariant binds the consumers:
// core, agent, mediator and everything above them must never pin a lock
// while waiting on I/O.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc:  "no mutex may be held across blocking transport/disk/store calls",
	Run:  runLockIO,
}

// blockingPkgBases are package basenames whose exported calls can block
// on I/O (network, disk, or a store behind either).
var blockingPkgBases = map[string]bool{
	"transport": true,
	"memnet":    true,
	"udpnet":    true,
	"store":     true,
	"disk":      true,
	"integrity": true,
	"localfs":   true,
	"nfs":       true,
}

// pureHelpers are calls into blocking packages that never touch the
// medium: error predicates/parsers, address helpers, stringers.
func pureHelper(name string) bool {
	for _, prefix := range []string{"Is", "Parse", "Split"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	switch name {
	case "String", "Name", "LocalAddr", "Addr", "Error", "Scale":
		return true
	}
	return false
}

func runLockIO(pass *Pass) {
	if blockingPkgBases[pass.Pkg.Base()] {
		return // the medium's own serialization is by design
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					lw := &lockWalker{pass: pass, check: blockingCheck(pass)}
					lw.stmts(fn.Body.List, lockState{})
				}
			case *ast.FuncLit:
				// Each literal is its own synchronous scope; the outer
				// walk does not descend into it (see lockWalker.expr).
				lw := &lockWalker{pass: pass, check: blockingCheck(pass)}
				lw.stmts(fn.Body.List, lockState{})
			}
			return true
		})
	}
}

// blockingCheck is lockio's per-expression check: no blocking call while
// any lock is held.
func blockingCheck(pass *Pass) func(ast.Expr, lockState) {
	return func(e ast.Expr, held lockState) {
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if len(held) == 0 {
				return true
			}
			if fn := pass.Callee(call); fn != nil && blockingFunc(fn) {
				for name, pos := range held {
					pass.Reportf(call.Pos(),
						"lockio: %s (locked at %s) held across blocking call %s.%s; release the lock before I/O",
						name, pass.Pkg.Fset.Position(pos), pkgBase(fn.Pkg().Path()), fn.Name())
				}
			}
			return true
		})
	}
}

// lockState maps the printed receiver of a held lock to its Lock position.
type lockState map[string]token.Pos

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// lockWalker threads held-lock state through a function body in source
// order. The check hook is invoked on every scanned expression with the
// locks held at that point; lockio plugs in its blocking-call check and
// lockguard its annotated-field-access check.
type lockWalker struct {
	pass  *Pass
	check func(ast.Expr, lockState)
}

// stmts walks a statement list in source order, threading lock state.
func (w *lockWalker) stmts(list []ast.Stmt, held lockState) {
	for _, st := range list {
		w.stmt(st, held)
	}
}

// stmt processes one statement: expressions are scanned for blocking
// calls under the current lock set, then lock transitions are applied.
func (w *lockWalker) stmt(st ast.Stmt, held lockState) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if name, op := w.lockOp(s.X); op != opNone {
			// The Lock/Unlock call itself is never "blocking I/O".
			switch op {
			case opLock:
				held[name] = s.X.Pos()
			case opUnlock:
				delete(held, name)
			}
			return
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() releases only at return: the lock stays held
		// for the rest of this walk. Argument expressions evaluate now.
		if _, op := w.lockOp(s.Call); op != opNone {
			return
		}
		for _, a := range s.Call.Args {
			w.expr(a, held)
		}
	case *ast.GoStmt:
		// The spawned call runs asynchronously; only its arguments are
		// evaluated under the current locks.
		for _, a := range s.Call.Args {
			w.expr(a, held)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, held.clone())
		if s.Else != nil {
			w.stmt(s.Else, held.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		inner := held.clone()
		w.stmts(s.Body.List, inner)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.stmts(s.Body.List, held.clone())
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e, held)
				}
				w.stmts(cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := held.clone()
				if cc.Comm != nil {
					w.stmt(cc.Comm, inner)
				}
				w.stmts(cc.Body, inner)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e, held)
				return false
			}
			return true
		})
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	}
}

// expr hands an expression to the walker's check under the current lock
// set. Checks must not descend into function literals (their bodies do
// not execute here; each literal is walked as its own scope).
func (w *lockWalker) expr(e ast.Expr, held lockState) {
	if e == nil {
		return
	}
	w.check(e, held)
}

type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
)

// lockOp recognizes mu.Lock/RLock/Unlock/RUnlock calls on sync mutexes
// (including promoted methods of embedded mutexes) and returns the
// printed receiver as the lock's identity.
func (w *lockWalker) lockOp(e ast.Expr) (string, lockOp) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", opNone
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	fn, ok := w.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", opNone
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return exprString(sel.X), opLock
	case "Unlock", "RUnlock":
		return exprString(sel.X), opUnlock
	}
	return "", opNone
}

// blockingFunc reports whether fn belongs to a package that performs
// blocking I/O on swift's data path.
func blockingFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	return blockingPkgBases[pkgBase(pkg.Path())] && !pureHelper(fn.Name())
}

func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// exprString renders a receiver expression compactly (c.mu, s.agent.mu).
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	default:
		return "lock"
	}
}
