package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BufSafe machine-checks pooled-buffer lifecycles. Functions whose doc
// comment carries //swift:pool acquire hand out a pooled buffer the
// caller must give back; functions marked //swift:pool release take one
// back. Within each function the analyzer tracks every variable bound to
// an acquire call (and its aliases, including subslices) through a
// linear walk of the control flow and reports:
//
//   - a path that returns while the buffer is still held (leak)
//   - a second release of the same buffer (double release)
//   - any use of the buffer or an alias after its release (use after
//     release — this is also the retention check: a subslice kept past
//     the release is a use of freed memory once the pool rewrites it)
//   - release on only some branches of an if/else (unpaired paths)
//
// Ownership transfers are recognized and end tracking: returning the
// buffer, storing it into a field, or deferring its release. Branching
// constructs the walker cannot pair precisely (loops, switches) degrade
// to not-tracked rather than to false positives.
//
// The contract is specified now, against the fixture pool in
// internal/lint/testdata, so the ROADMAP item 1 buffer pool lands with
// its checker already in CI.
var BufSafe = &Analyzer{
	Name: "bufsafe",
	Doc:  "pooled buffers must be released exactly once on every path and never used after release",
	Run:  runBufSafe,
}

// Pool roles a //swift:pool directive can assign.
const (
	poolAcquire = "acquire"
	poolRelease = "release"
)

// PoolRole returns the //swift:pool role of fn ("acquire", "release")
// or "" when fn is unmarked or foreign.
func (m *Module) PoolRole(fn *types.Func) string {
	fd := m.Decls[fn]
	if fd == nil {
		return ""
	}
	if name, args, ok := directiveOf(fd.Doc); ok && name == DirPool {
		if args == poolAcquire || args == poolRelease {
			return args
		}
	}
	return ""
}

func runBufSafe(pass *Pass) {
	if pass.Mod == nil {
		pass.Mod = BuildModule([]*Package{pass.Pkg})
	}
	// Validate the pool directives declared in this package.
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if name, args, ok := ParseDirective(c.Text); ok && name == DirPool {
					if args != poolAcquire && args != poolRelease {
						pass.Reportf(c.Pos(), "bufsafe: //swift:pool wants %q or %q (got %q)", poolAcquire, poolRelease, args)
					}
				}
			}
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bw := &bufWalker{pass: pass}
					sc := &bufScope{vars: make(map[types.Object]*bufGroup)}
					bw.stmts(fn.Body.List, sc)
					bw.finish(sc, fn.Body.End())
				}
			case *ast.FuncLit:
				// Analyzed as its own scope, like lockio: a buffer
				// acquired inside a literal must be balanced inside it.
				bw := &bufWalker{pass: pass}
				sc := &bufScope{vars: make(map[types.Object]*bufGroup)}
				bw.stmts(fn.Body.List, sc)
				bw.finish(sc, fn.Body.End())
			}
			return true
		})
	}
}

// Buffer lifecycle states.
const (
	bufAcquired = iota
	bufReleased
	bufEscaped // ownership transferred (returned, stored, deferred): stop judging
)

// bufGroup is one pooled buffer and all its aliases.
type bufGroup struct {
	state    int
	acquired token.Position // where the buffer came from the pool
	released token.Position // where it went back (valid when state == bufReleased)
	deferred bool           // a defer will release it at function exit
	name     string         // the variable first bound to it, for messages
}

// bufScope maps variables to the buffer group they alias on the current
// control-flow path.
type bufScope struct {
	vars map[types.Object]*bufGroup
}

func (s *bufScope) clone() *bufScope {
	c := &bufScope{vars: make(map[types.Object]*bufGroup, len(s.vars))}
	groups := make(map[*bufGroup]*bufGroup)
	for obj, g := range s.vars {
		ng, ok := groups[g]
		if !ok {
			copied := *g
			ng = &copied
			groups[g] = ng
		}
		c.vars[obj] = ng
	}
	return c
}

type bufWalker struct {
	pass *Pass
}

// finish reports buffers still held when the function falls off its end.
func (w *bufWalker) finish(s *bufScope, end token.Pos) {
	reported := make(map[*bufGroup]bool)
	for _, g := range s.vars {
		if g.state == bufAcquired && !g.deferred && !reported[g] {
			reported[g] = true
			w.pass.Reportf(end, "bufsafe: pooled buffer %s (acquired at %s) is never released", g.name, g.acquired)
		}
	}
}

// stmts walks a statement list, threading buffer state. It reports
// whether the flow terminated (an unconditional return).
func (w *bufWalker) stmts(list []ast.Stmt, s *bufScope) bool {
	for _, st := range list {
		if w.stmt(st, s) {
			return true
		}
	}
	return false
}

func (w *bufWalker) stmt(st ast.Stmt, s *bufScope) bool {
	switch x := st.(type) {
	case *ast.ExprStmt:
		if w.releaseCall(x.X, s, false) {
			return false
		}
		w.checkUses(x.X, s)
	case *ast.DeferStmt:
		w.releaseCall(x.Call, s, true)
	case *ast.AssignStmt:
		w.assign(x, s)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.bindValues(vs.Names, vs.Values, s)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.checkUses(r, s)
			w.markEscaped(r, s)
		}
		w.leaksAt(x.Pos(), s)
		return true
	case *ast.IfStmt:
		if x.Init != nil {
			w.stmt(x.Init, s)
		}
		w.checkUses(x.Cond, s)
		then := s.clone()
		thenTerm := w.stmts(x.Body.List, then)
		els := s.clone()
		elsTerm := false
		if x.Else != nil {
			elsTerm = w.stmt(x.Else, els)
		}
		w.merge(s, then, thenTerm, els, elsTerm, x.End())
		return thenTerm && elsTerm && x.Else != nil
	case *ast.BlockStmt:
		return w.stmts(x.List, s)
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.opaque(st, s)
	case *ast.GoStmt:
		w.checkUses(x.Call, s)
		for _, a := range x.Call.Args {
			w.markEscaped(a, s) // the goroutine owns it now
		}
	case *ast.SendStmt:
		w.checkUses(x.Chan, s)
		w.checkUses(x.Value, s)
		w.markEscaped(x.Value, s)
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, s)
	default:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.checkUses(e, s)
				return false
			}
			return true
		})
	}
	return false
}

// opaque handles constructs the walker does not model path-precisely:
// uses are still checked, releases inside still count, but a group
// touched inside degrades to escaped (not-tracked) rather than risking
// a false leak or false pairing report.
func (w *bufWalker) opaque(st ast.Stmt, s *bufScope) {
	inner := s.clone()
	ast.Inspect(st, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if w.releaseCall(x, inner, false) {
				return false
			}
		case ast.Expr:
			w.checkUses(x, inner)
			return false
		}
		return true
	})
	// Groups released (or newly bound) inside: stop judging them.
	for obj, g := range inner.vars {
		og, ok := s.vars[obj]
		if !ok || og.state != g.state {
			if ok {
				og.state = bufEscaped
			}
		}
	}
}

// merge reconciles the two arms of an if. A group released on one
// surviving arm but still held on the other is an unpaired path and is
// reported once, at the end of the if.
func (w *bufWalker) merge(s, then *bufScope, thenTerm bool, els *bufScope, elsTerm bool, pos token.Pos) {
	for obj, g := range s.vars {
		tg, eg := then.vars[obj], els.vars[obj]
		var states []int
		if !thenTerm && tg != nil {
			states = append(states, tg.state)
		}
		if !elsTerm && eg != nil {
			states = append(states, eg.state)
		}
		switch len(states) {
		case 0:
			// Both arms returned; anything after is dead code.
		case 1:
			g.state = states[0]
			if g.state == bufReleased {
				if tg != nil && tg.state == bufReleased {
					g.released = tg.released
				} else if eg != nil {
					g.released = eg.released
				}
			}
		default:
			if states[0] != states[1] {
				if (states[0] == bufReleased) != (states[1] == bufReleased) {
					w.pass.Reportf(pos, "bufsafe: pooled buffer %s (acquired at %s) is released on only some paths through this if", g.name, g.acquired)
				}
				g.state = bufEscaped
			} else {
				g.state = states[0]
				if g.state == bufReleased && tg != nil {
					g.released = tg.released
				}
			}
		}
	}
}

// assign handles acquires (x := pool.Get()), aliasing (y := x, y :=
// x[i:j]), stores (s.f = x transfers ownership), and plain uses.
func (w *bufWalker) assign(x *ast.AssignStmt, s *bufScope) {
	w.bindValues(identsOf(x.Lhs), x.Rhs, s)
}

// bindValues is the shared binding logic for := / = / var declarations.
func (w *bufWalker) bindValues(names []*ast.Ident, values []ast.Expr, s *bufScope) {
	// One call, possibly multi-valued: an acquire binds the first name.
	if len(values) == 1 {
		if call, ok := ast.Unparen(values[0]).(*ast.CallExpr); ok {
			w.checkUses(call, s)
			if fn := w.pass.Callee(call); fn != nil && w.pass.Mod.PoolRole(fn) == poolAcquire {
				for _, name := range names {
					if name == nil || name.Name == "_" {
						continue
					}
					obj := w.pass.Pkg.Info.Defs[name]
					if obj == nil {
						obj = w.pass.Pkg.Info.Uses[name]
					}
					if obj != nil {
						pos := w.pass.Pkg.Fset.Position(call.Pos())
						s.vars[obj] = &bufGroup{state: bufAcquired, acquired: pos, name: name.Name}
					}
					break // the buffer is the first result
				}
				return
			}
		}
	}
	for i, v := range values {
		w.checkUses(v, s)
		var name *ast.Ident
		if i < len(names) {
			name = names[i]
		}
		if name == nil {
			// Field or index store: ownership transfers to the container.
			w.markEscaped(v, s)
			continue
		}
		// Aliasing: y := x or y := x[a:b] joins y to x's group.
		if name.Name != "_" {
			if g := w.groupOf(v, s); g != nil {
				obj := w.pass.Pkg.Info.Defs[name]
				if obj == nil {
					obj = w.pass.Pkg.Info.Uses[name]
				}
				if obj != nil {
					s.vars[obj] = g
				}
			}
		}
	}
}

// identsOf maps assignment LHS expressions to their identifiers; a
// non-identifier LHS (field store, index store) comes back nil and the
// RHS value, if tracked, escapes.
func identsOf(lhs []ast.Expr) []*ast.Ident {
	out := make([]*ast.Ident, len(lhs))
	for i, e := range lhs {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			out[i] = id
		}
	}
	return out
}

// groupOf resolves the buffer group an expression aliases: the variable
// itself, a field of it, or a subslice of either.
func (w *bufWalker) groupOf(e ast.Expr, s *bufScope) *bufGroup {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := w.pass.Pkg.Info.Uses[x]; obj != nil {
			return s.vars[obj]
		}
	case *ast.SelectorExpr:
		return w.groupOf(x.X, s)
	case *ast.SliceExpr:
		return w.groupOf(x.X, s)
	}
	return nil
}

// releaseCall recognizes pool.Put(x) / x.Release() shapes. deferred
// marks defer sites, which satisfy the pairing obligation without
// transitioning the state (the release happens at exit, so later uses
// are fine).
func (w *bufWalker) releaseCall(e ast.Expr, s *bufScope, deferred bool) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := w.pass.Callee(call)
	if fn == nil || w.pass.Mod.PoolRole(fn) != poolRelease {
		return false
	}
	// The released buffer: the first tracked argument, or the method
	// receiver for buf.Release() shapes.
	var g *bufGroup
	var at ast.Expr
	for _, a := range call.Args {
		if cg := w.groupOf(a, s); cg != nil {
			g, at = cg, a
			break
		}
	}
	if g == nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if cg := w.groupOf(sel.X, s); cg != nil {
				g, at = cg, sel.X
			}
		}
	}
	if g == nil {
		return true // releasing something we don't track (a parameter, a field)
	}
	pos := at.Pos()
	switch {
	case deferred:
		if g.state == bufReleased {
			w.pass.Reportf(pos, "bufsafe: deferred release of %s which was already released at %s", g.name, g.released)
		}
		g.deferred = true
	case g.deferred:
		w.pass.Reportf(pos, "bufsafe: double release of %s: a deferred release already pairs its acquire at %s", g.name, g.acquired)
	case g.state == bufReleased:
		w.pass.Reportf(pos, "bufsafe: double release of %s (already released at %s)", g.name, g.released)
	case g.state == bufAcquired:
		g.state = bufReleased
		g.released = w.pass.Pkg.Fset.Position(pos)
	}
	return true
}

// checkUses reports uses of released buffers (or their aliases) inside
// an expression, and treats stores into fields as ownership transfer.
func (w *bufWalker) checkUses(e ast.Expr, s *bufScope) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := w.pass.Pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		if g := s.vars[obj]; g != nil && g.state == bufReleased {
			w.pass.Reportf(id.Pos(), "bufsafe: use of %s after release (released at %s)", id.Name, g.released)
			g.state = bufEscaped // one report per release, not one per use
		}
		return true
	})
}

// markEscaped transfers ownership of a tracked buffer named by e.
func (w *bufWalker) markEscaped(e ast.Expr, s *bufScope) {
	if g := w.groupOf(e, s); g != nil && g.state == bufAcquired {
		g.state = bufEscaped
	}
}

// leaksAt reports buffers still held at an early return.
func (w *bufWalker) leaksAt(pos token.Pos, s *bufScope) {
	reported := make(map[*bufGroup]bool)
	for _, g := range s.vars {
		if g.state == bufAcquired && !g.deferred && !reported[g] {
			reported[g] = true
			w.pass.Reportf(pos, "bufsafe: pooled buffer %s (acquired at %s) is not released on this return path", g.name, g.acquired)
		}
	}
}
