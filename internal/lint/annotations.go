package lint

import (
	"go/ast"
	"strings"
)

// Annotation grammar. Three comment families drive the interprocedural
// analyzers:
//
//	//swift:hotpath                    function is a hot-path root (hotalloc)
//	//swift:pool acquire               function returns a pooled buffer (bufsafe)
//	//swift:pool release               function releases its pooled argument (bufsafe)
//	// guarded by <mu>                 struct field is protected by sibling mutex <mu> (lockguard)
//	//lint:allow <analyzer> <reason>   justified suppression (all analyzers)
//
// swift: directives are machine-read and must be exact: no space after
// //, the directive name immediately after the colon. "guarded by" is a
// human-readable trailing comment on a struct field. Parsers are exported
// for the fuzz tests in annotations_fuzz_test.go.

const directivePrefix = "swift:"

// Directive names the analyzers accept.
const (
	DirHotpath = "hotpath"
	DirPool    = "pool"
)

// ParseDirective splits a //swift: machine directive into its name and
// argument string. Comments that are not swift: directives (including
// "// swift:..." with a space, which is prose) return ok=false.
func ParseDirective(text string) (name, args string, ok bool) {
	rest, found := strings.CutPrefix(text, "//"+directivePrefix)
	if !found {
		return "", "", false
	}
	name, args, _ = strings.Cut(rest, " ")
	if name == "" {
		return "", "", false
	}
	return name, strings.TrimSpace(args), true
}

// directiveOf scans a doc comment group for the first swift: directive.
func directiveOf(doc *ast.CommentGroup) (name, args string, ok bool) {
	if doc == nil {
		return "", "", false
	}
	for _, c := range doc.List {
		if n, a, found := ParseDirective(c.Text); found {
			return n, a, true
		}
	}
	return "", "", false
}

// hasDirective reports whether doc carries the named swift: directive.
func hasDirective(doc *ast.CommentGroup, want string) bool {
	name, _, ok := directiveOf(doc)
	return ok && name == want
}

// guardMarker introduces a lockguard field annotation inside a struct
// field's trailing (or doc) comment.
const guardMarker = "guarded by "

// ParseGuard extracts the mutex name from a "guarded by <mu>" field
// comment. The name ends at the first space or punctuation, so prose may
// follow ("guarded by mu; see the locking note above"). A marker with no
// name returns ok=false so lockguard can flag it as malformed.
func ParseGuard(text string) (mu string, ok bool) {
	body := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	i := strings.Index(body, guardMarker)
	if i < 0 {
		return "", false
	}
	rest := body[i+len(guardMarker):]
	end := len(rest)
	for j := 0; j < len(rest); j++ {
		c := rest[j]
		if !(c == '.' || c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			end = j
			break
		}
	}
	mu = rest[:end]
	return mu, mu != ""
}

// ParseAllow splits a //lint:allow comment into the analyzer name and
// justification. Comments without the lint:allow prefix return ok=false;
// a missing analyzer or justification comes back as the empty string and
// is reported as malformed by Run.
func ParseAllow(text string) (analyzer, reason string, ok bool) {
	body := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(body, allowPrefix) {
		return "", "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(body, allowPrefix))
	analyzer, reason, _ = strings.Cut(rest, " ")
	return analyzer, strings.TrimSpace(reason), true
}
