package lint

// All returns swift's analyzer suite in stable order: the five
// intra-procedural checkers from PR 4 followed by the interprocedural
// dataflow suite (hot-path allocations, pooled-buffer lifecycles,
// lock-guarded fields, deadline propagation).
func All() []*Analyzer {
	return []*Analyzer{
		ClockCheck, LockIO, ErrAttr, MetricName, GoExit,
		HotAlloc, BufSafe, LockGuard, DeadlineFlow,
	}
}

// ByName returns the named analyzers (nil entries for unknown names are
// omitted); with no names it returns All().
func ByName(names ...string) []*Analyzer {
	if len(names) == 0 {
		return All()
	}
	var out []*Analyzer
	for _, n := range names {
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
			}
		}
	}
	return out
}
