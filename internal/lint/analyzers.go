package lint

// All returns swift's analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{ClockCheck, LockIO, ErrAttr, MetricName, GoExit}
}

// ByName returns the named analyzers (nil entries for unknown names are
// omitted); with no names it returns All().
func ByName(names ...string) []*Analyzer {
	if len(names) == 0 {
		return All()
	}
	var out []*Analyzer
	for _, n := range names {
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
			}
		}
	}
	return out
}
