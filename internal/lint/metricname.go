package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// metricNameRE is the canonical shape of a swift metric name.
var metricNameRE = regexp.MustCompile(`^swift_[a-z]+(_[a-z0-9]+)*(_total|_seconds|_bytes|_ratio)?$`)

// metricPrefixes pins each instrumented layer to its naming prefix, so a
// dashboard query like swift_client_* can never silently miss a series
// registered from the wrong layer.
var metricPrefixes = map[string][]string{
	"core":     {"swift_client_", "swift_ec_"}, // core also instruments the erasure codec
	"agent":    {"swift_agent_", "swift_store_"},
	"mediator": {"swift_mediator_"},
	"memnet":   {"swift_net_"},
	"udpnet":   {"swift_udp_"},
}

// metricKindSuffix: counters count (…_total), histograms time (…_seconds).
var metricKindSuffix = map[string]string{
	"Counter":     "_total",
	"CounterFunc": "_total",
	"Histogram":   "_seconds",
}

// registryMethods are the obs.Registry registration entry points.
var registryMethods = map[string]bool{
	"Counter":     true,
	"Gauge":       true,
	"Histogram":   true,
	"CounterFunc": true,
	"GaugeFunc":   true,
}

// MetricName vets every obs.Registry registration call: the metric name
// must be a string literal matching the canonical pattern, carry the
// layer prefix of the registering package and the suffix of its kind,
// ship a non-empty literal help string, and be registered from exactly
// one call site per package (labeled instances share one site).
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "obs registrations need literal, well-formed, layer-prefixed metric names",
	Run:  runMetricName,
}

func runMetricName(pass *Pass) {
	firstSite := make(map[string]token.Pos) // literal name -> first call site
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.Callee(call)
			if fn == nil || fn.Pkg() == nil || !registryMethods[fn.Name()] {
				return true
			}
			if !isObsRegistry(fn.Pkg().Path()) || recvTypeName(fn) != "Registry" {
				return true
			}
			if len(call.Args) >= 2 {
				checkRegistration(pass, call, fn.Name(), firstSite)
			}
			return true
		})
	}
}

func isObsRegistry(pkgPath string) bool {
	return pkgPath == "swift/internal/obs" || strings.HasSuffix(pkgPath, "/internal/obs")
}

// recvTypeName returns the bare receiver type name of a method, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

func checkRegistration(pass *Pass, call *ast.CallExpr, kind string, firstSite map[string]token.Pos) {
	nameArg := call.Args[0]
	lit, ok := ast.Unparen(nameArg).(*ast.BasicLit)
	if !ok {
		pass.Reportf(nameArg.Pos(),
			"metricname: %s registration uses a non-literal name %s; metric names must be grep-able string literals",
			kind, exprString(nameArg))
		return
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !metricNameRE.MatchString(name) {
		pass.Reportf(nameArg.Pos(),
			"metricname: %q does not match %s", name, metricNameRE.String())
	} else {
		if prefixes, ok := metricPrefixes[pass.Pkg.Base()]; ok && !hasAnyPrefix(name, prefixes) {
			pass.Reportf(nameArg.Pos(),
				"metricname: %q lacks the %s layer prefix (%s)",
				name, pass.Pkg.Base(), strings.Join(prefixes, " or "))
		}
		if suffix, ok := metricKindSuffix[kind]; ok && !strings.HasSuffix(name, suffix) {
			pass.Reportf(nameArg.Pos(),
				"metricname: %s %q must end in %q", kind, name, suffix)
		}
	}
	if helpLit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit); !ok {
		pass.Reportf(call.Args[1].Pos(),
			"metricname: help for %q must be a non-empty string literal", name)
	} else if help, err := strconv.Unquote(helpLit.Value); err == nil && strings.TrimSpace(help) == "" {
		pass.Reportf(call.Args[1].Pos(),
			"metricname: help for %q is empty", name)
	}
	if prev, dup := firstSite[name]; dup {
		pass.Reportf(nameArg.Pos(),
			"metricname: duplicate registration of %q in package %s (first at %s)",
			name, pass.Pkg.Base(), pass.Pkg.Fset.Position(prev))
	} else {
		firstSite[name] = nameArg.Pos()
	}
}

func hasAnyPrefix(s string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}
