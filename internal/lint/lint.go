package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding, positioned in module-relative coordinates.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // relative to the module root
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer over one package. Mod is the whole-module
// view (call graph + summaries) shared by every pass of one Run; the
// interprocedural analyzers consult it but still report only findings
// positioned inside Pkg, so //lint:allow matching stays per-package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Mod      *Module
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.Pkg.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     file,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// Callee resolves the function or method a call invokes, or nil.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := p.Pkg.Info.Uses[id].(*types.Func)
	return f
}

// PkgIdent reports whether id names the import of the package with the
// given path.
func (p *Pass) PkgIdent(id *ast.Ident, path string) bool {
	pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// allow is one parsed //lint:allow comment.
type allow struct {
	analyzer string
	reason   string
	pos      token.Position
}

const allowPrefix = "lint:allow"

// collectAllows parses the //lint:allow comments of a package, keyed by
// (relative file, line).
func collectAllows(p *Package) map[string][]allow {
	out := make(map[string][]allow)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := ParseAllow(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				a := allow{analyzer: name, reason: reason, pos: pos}
				key := allowKey(p, pos.Filename, pos.Line)
				out[key] = append(out[key], a)
			}
		}
	}
	return out
}

func allowKey(p *Package, file string, line int) string {
	if rel, err := filepath.Rel(p.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d", file, line)
}

// Run applies the analyzers to the packages and returns the surviving
// diagnostics sorted by position. Findings carrying a justified
// //lint:allow comment on their line (or the line above) are suppressed;
// malformed allow comments — no justification, or naming an unknown
// analyzer — are themselves reported, as are allows whose analyzer ran
// but no longer fires there (a stale allow is a disabled check).
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(pkgs, analyzers)
	return diags
}

// RunTimed is Run, additionally reporting each analyzer's cumulative
// wall time across all packages (keyed by analyzer name; the "lint" key
// covers allow-comment auditing).
func RunTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, map[string]time.Duration) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	timings := make(map[string]time.Duration, len(analyzers)+1)
	mod := BuildModule(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg == nil || pkg.Types == nil {
			continue
		}
		auditStart := time.Now()
		allows := collectAllows(pkg)
		timings["lint"] += time.Since(auditStart)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Mod: mod, report: func(d Diagnostic) { raw = append(raw, d) }}
			start := time.Now()
			a.Run(pass)
			timings[a.Name] += time.Since(start)
		}
		auditStart = time.Now()
		used := make(map[*allow]bool)
		for _, d := range raw {
			if a := matchAllow(allows, d, used); a != nil {
				continue
			}
			diags = append(diags, d)
		}
		// Audit the allow comments themselves, whether or not they
		// shadowed a finding: a malformed, mistyped, or stale allow
		// silently rotting in the tree is exactly the kind of unchecked
		// exception this suite exists to prevent. Unused allows are only
		// judged for analyzers in the current run set — under -run a
		// subset, other analyzers' allows are out of scope.
		for key, list := range allows {
			for i := range list {
				a := &list[i]
				d := Diagnostic{Analyzer: "lint", Message: ""}
				file, line := splitKey(key)
				d.File, d.Line, d.Col = file, line, a.pos.Column
				switch {
				case a.analyzer == "" || a.reason == "":
					d.Message = fmt.Sprintf("malformed %s comment: want //lint:allow <analyzer> <justification>", allowPrefix)
				case !known[a.analyzer] && len(analyzers) == len(All()):
					d.Message = fmt.Sprintf("//lint:allow names unknown analyzer %q", a.analyzer)
				case known[a.analyzer] && !used[a]:
					d.Message = fmt.Sprintf("unused //lint:allow %s: the analyzer no longer fires here; delete the comment", a.analyzer)
				default:
					continue
				}
				diags = append(diags, d)
			}
		}
		timings["lint"] += time.Since(auditStart)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, timings
}

func splitKey(key string) (string, int) {
	i := strings.LastIndexByte(key, ':')
	var line int
	fmt.Sscanf(key[i+1:], "%d", &line)
	return key[:i], line
}

// matchAllow finds a justified allow for d on its own line or the line
// above.
func matchAllow(allows map[string][]allow, d Diagnostic, used map[*allow]bool) *allow {
	for _, line := range []int{d.Line, d.Line - 1} {
		key := fmt.Sprintf("%s:%d", d.File, line)
		for i := range allows[key] {
			a := &allows[key][i]
			if a.analyzer == d.Analyzer && a.reason != "" {
				used[a] = true
				return a
			}
		}
	}
	return nil
}
