package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeadlineFlow is a taint-style pass over PR 8's deadline plumbing: a
// function that receives a deadline budget (a time.Time/time.Duration
// parameter named like one: deadline, budget, expiry, giveUp, dl) or an
// obs.SpanContext must not silently drop it on a blocking path. The
// deadline parameters seed a taint set that grows through assignments
// (rem := time.Until(giveUp); req.Deadline = rem taints req; buf :=
// wire.Marshal(req) taints buf). A blocking call is then flagged when
// nothing tainted reaches it:
//
//   - a transport read/write is covered by a tainted argument (the
//     marshaled packet carries the budget) or by any
//     SetDeadline/SetReadDeadline/SetWriteDeadline call on tainted time
//     anywhere in the function;
//   - a call to a module function that itself performs blocking I/O and
//     accepts a deadline (a deadline-named parameter, an obs.SpanContext,
//     or a wire.Packet) is covered only by a tainted argument;
//   - using the deadline to bound a branch or a retry loop (the tainted
//     value appears in an if/for/select condition) counts as local
//     enforcement and covers the function.
//
// Functions inside the blocking packages themselves (transport, store,
// disk, ..., medrpc) are exempt: they are the machinery the deadline is
// threaded through, and their internal retransmit timers are not the
// caller's budget. This is the checker for the retry/hedge/repair paths
// that PR 8 threaded deadlines through by hand.
var DeadlineFlow = &Analyzer{
	Name: "deadlineflow",
	Doc:  "functions receiving a deadline/SpanContext must propagate it into their blocking calls",
	Run:  runDeadlineFlow,
}

func runDeadlineFlow(pass *Pass) {
	base := pass.Pkg.Base()
	if blockingPkgBases[base] || base == "medrpc" {
		return
	}
	if pass.Mod == nil {
		pass.Mod = BuildModule([]*Package{pass.Pkg})
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDeadlineFunc(pass, fd)
		}
	}
}

func checkDeadlineFunc(pass *Pass, fd *ast.FuncDecl) {
	seeds := deadlineParams(pass, fd)
	if len(seeds) == 0 {
		return
	}
	taint := make(map[types.Object]bool, len(seeds))
	var names []string
	for obj, name := range seeds {
		taint[obj] = true
		names = append(names, name)
	}
	propagateTaint(pass, fd.Body, taint)
	if locallyEnforced(pass, fd.Body, taint) {
		return
	}
	carried := strings.Join(names, ", ")
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.Callee(call)
		if fn == nil || !flaggableBlocking(pass, fn) {
			return true
		}
		for _, a := range call.Args {
			if mentionsTaint(pass, a, taint) {
				return true
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if mentionsTaint(pass, sel.X, taint) {
				return true // the receiver itself carries the budget
			}
		}
		pass.Reportf(call.Pos(),
			"deadlineflow: %s receives %s but this blocking call to %s.%s does not carry it; thread the budget (or //lint:allow deadlineflow <reason>)",
			fd.Name.Name, carried, pkgBase(fn.Pkg().Path()), fn.Name())
		return true
	})
}

// deadlineParams collects the function's deadline-carrying parameters:
// obs.SpanContext values of any name, and time.Time/time.Duration
// parameters whose name marks them a budget.
func deadlineParams(pass *Pass, fd *ast.FuncDecl) map[types.Object]string {
	out := make(map[types.Object]string)
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.Pkg.Info.Defs[name]
			if obj == nil {
				continue
			}
			t := obj.Type()
			switch {
			case isSpanContext(t):
				out[obj] = "a SpanContext (" + name.Name + ")"
			case isTimeKind(t) && deadlineName(name.Name):
				out[obj] = "a deadline (" + name.Name + ")"
			}
		}
	}
	return out
}

func deadlineName(name string) bool {
	l := strings.ToLower(name)
	if l == "dl" {
		return true
	}
	for _, marker := range []string{"deadline", "budget", "giveup", "expiry"} {
		if strings.Contains(l, marker) {
			return true
		}
	}
	return false
}

// isTimeKind reports whether t is time.Time or time.Duration.
func isTimeKind(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "time" &&
		(named.Obj().Name() == "Time" || named.Obj().Name() == "Duration")
}

// isSpanContext reports whether t is an obs.SpanContext (by package
// basename, so fixture trees model it the way lockio fixtures model
// transport).
func isSpanContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "SpanContext" && pkgBase(named.Obj().Pkg().Path()) == "obs"
}

// isPacketType reports whether t is a wire.Packet (or pointer to one).
func isPacketType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Packet" && pkgBase(named.Obj().Pkg().Path()) == "wire"
}

// propagateTaint grows the taint set through assignments until it stops
// changing: any value computed from a tainted one is tainted, and a
// store into a field of x (req.Deadline = rem) taints x itself.
func propagateTaint(pass *Pass, body *ast.BlockStmt, taint map[types.Object]bool) {
	for i := 0; i < 10; i++ {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				rhsTainted := false
				for _, r := range x.Rhs {
					if mentionsTaint(pass, r, taint) {
						rhsTainted = true
						break
					}
				}
				if !rhsTainted {
					return true
				}
				for _, l := range x.Lhs {
					if obj := baseObject(pass, l); obj != nil && !taint[obj] {
						taint[obj] = true
						changed = true
					}
				}
			case *ast.ValueSpec:
				for _, r := range x.Values {
					if mentionsTaint(pass, r, taint) {
						for _, name := range x.Names {
							if obj := pass.Pkg.Info.Defs[name]; obj != nil && !taint[obj] {
								taint[obj] = true
								changed = true
							}
						}
						break
					}
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// baseObject resolves the variable an assignment target is rooted at.
func baseObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pass.Pkg.Info.Defs[x]; obj != nil {
				return obj
			}
			return pass.Pkg.Info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// mentionsTaint reports whether any identifier in e resolves to a
// tainted object.
func mentionsTaint(pass *Pass, e ast.Expr, taint map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Pkg.Info.Uses[id]; obj != nil && taint[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// locallyEnforced reports whether the function already applies the
// budget itself: a Set*Deadline call on tainted time, or a tainted value
// bounding an if/for/select.
func locallyEnforced(pass *Pass, body *ast.BlockStmt, taint map[types.Object]bool) bool {
	enforced := false
	ast.Inspect(body, func(n ast.Node) bool {
		if enforced {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok &&
				strings.HasPrefix(sel.Sel.Name, "Set") && strings.Contains(sel.Sel.Name, "Deadline") {
				for _, a := range x.Args {
					if mentionsTaint(pass, a, taint) {
						enforced = true
					}
				}
			}
		case *ast.IfStmt:
			if x.Cond != nil && mentionsTaint(pass, x.Cond, taint) {
				enforced = true
			}
		case *ast.ForStmt:
			if x.Cond != nil && mentionsTaint(pass, x.Cond, taint) {
				enforced = true
			}
		case *ast.CommClause:
			for _, e := range commExprs(x) {
				if mentionsTaint(pass, e, taint) {
					enforced = true
				}
			}
		case *ast.SwitchStmt:
			if x.Tag != nil && mentionsTaint(pass, x.Tag, taint) {
				enforced = true
			}
		}
		return true
	})
	return enforced
}

// commExprs extracts the communicated expressions of a select case.
func commExprs(c *ast.CommClause) []ast.Expr {
	switch s := c.Comm.(type) {
	case *ast.ExprStmt:
		return []ast.Expr{s.X}
	case *ast.AssignStmt:
		return s.Rhs
	case *ast.SendStmt:
		return []ast.Expr{s.Chan, s.Value}
	}
	return nil
}

// flaggableBlocking reports whether a call to fn is one the deadline
// could and should flow into: a transport-layer read/write, or a
// module-internal blocking function that accepts a deadline, span, or
// packet.
func flaggableBlocking(pass *Pass, fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	base := pkgBase(pkg.Path())
	if base == "transport" || base == "memnet" || base == "udpnet" {
		return !pureHelper(fn.Name()) &&
			(strings.Contains(fn.Name(), "Read") || strings.Contains(fn.Name(), "Write"))
	}
	if _, inModule := pass.Mod.Decls[fn]; !inModule {
		return false
	}
	if !pass.Mod.Blocking(fn) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		if isSpanContext(p.Type()) || isPacketType(p.Type()) ||
			(isTimeKind(p.Type()) && deadlineName(p.Name())) {
			return true
		}
	}
	return false
}
