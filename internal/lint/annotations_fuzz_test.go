package lint_test

import (
	"strings"
	"testing"

	"swift/internal/lint"
)

// The annotation parsers run over every comment in the module, so they
// must be total: no panics, and the invariants the analyzers rely on
// must hold for arbitrary input.

func FuzzParseDirective(f *testing.F) {
	f.Add("//swift:hotpath")
	f.Add("//swift:pool acquire")
	f.Add("//swift:pool   acquire  ")
	f.Add("// swift:hotpath")
	f.Add("//swift:")
	f.Add("//swift:hotpath encode fast")
	f.Add("// plain prose")
	f.Add("//lint:allow hotalloc reason")
	f.Fuzz(func(t *testing.T, text string) {
		name, args, ok := lint.ParseDirective(text)
		if !ok {
			if name != "" || args != "" {
				t.Fatalf("ParseDirective(%q): not ok but returned (%q, %q)", text, name, args)
			}
			return
		}
		if name == "" {
			t.Fatalf("ParseDirective(%q): ok with empty name", text)
		}
		if strings.Contains(name, " ") {
			t.Fatalf("ParseDirective(%q): name %q contains a space", text, name)
		}
		if args != strings.TrimSpace(args) {
			t.Fatalf("ParseDirective(%q): args %q not trimmed", text, args)
		}
		if !strings.HasPrefix(text, "//swift:") {
			t.Fatalf("ParseDirective(%q): ok without the //swift: prefix", text)
		}
	})
}

func FuzzParseGuard(f *testing.F) {
	f.Add("// guarded by mu")
	f.Add("// guarded by s.mu extra prose")
	f.Add("// guarded by ")
	f.Add("// guarded by mu; see locking note")
	f.Add("// not a guard")
	f.Add("// guarded by 北")
	f.Fuzz(func(t *testing.T, text string) {
		mu, ok := lint.ParseGuard(text)
		if !ok {
			if mu != "" {
				t.Fatalf("ParseGuard(%q): not ok but returned %q", text, mu)
			}
			return
		}
		if mu == "" {
			t.Fatalf("ParseGuard(%q): ok with empty name", text)
		}
		for i := 0; i < len(mu); i++ {
			c := mu[i]
			if !(c == '.' || c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
				t.Fatalf("ParseGuard(%q): name %q contains forbidden byte %q", text, mu, c)
			}
		}
	})
}

func FuzzParseAllow(f *testing.F) {
	f.Add("//lint:allow hotalloc amortized append into caller storage")
	f.Add("// lint:allow clockcheck injection seam")
	f.Add("//lint:allow")
	f.Add("//lint:allow hotalloc")
	f.Add("//swift:hotpath")
	f.Fuzz(func(t *testing.T, text string) {
		analyzer, reason, ok := lint.ParseAllow(text)
		if !ok {
			if analyzer != "" || reason != "" {
				t.Fatalf("ParseAllow(%q): not ok but returned (%q, %q)", text, analyzer, reason)
			}
			return
		}
		if strings.Contains(analyzer, " ") {
			t.Fatalf("ParseAllow(%q): analyzer %q contains a space", text, analyzer)
		}
		if reason != strings.TrimSpace(reason) {
			t.Fatalf("ParseAllow(%q): reason %q not trimmed", text, reason)
		}
	})
}
