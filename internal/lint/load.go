// Package lint is swift's project-specific static-analysis suite. It
// loads the module from source using only the standard library (go/ast,
// go/parser, go/types, go/build), runs a set of bespoke analyzers that
// encode the repository's unwritten invariants (injected clocks, the
// zero-lock data path, error attribution across layer boundaries, metric
// naming, goroutine shutdown paths), and reports findings with exact
// positions. The cmd/swiftvet binary is a thin CLI over this package.
//
// Deliberate violations are annotated in source with
//
//	//lint:allow <analyzer> <justification>
//
// on the offending line or the line directly above it. The justification
// is mandatory: an allow comment without one does not suppress anything
// and is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string // import path ("swift/internal/core")
	Dir   string // absolute directory
	Root  string // module root directory (for relative positions)
	Name  string // package name
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Errs  []error // type-check errors (load is best-effort; Run refuses broken packages)
}

// Base returns the last element of the package's import path.
func (p *Package) Base() string {
	if i := strings.LastIndexByte(p.Path, '/'); i >= 0 {
		return p.Path[i+1:]
	}
	return p.Path
}

// loader resolves imports: module-internal packages come from the
// in-progress load, everything else is type-checked from GOROOT source
// with function bodies ignored (signatures are all the analyzers need).
type loader struct {
	root    string
	module  string
	fset    *token.FileSet
	bctx    build.Context
	pkgs    map[string]*Package       // module packages by import path
	std     map[string]*types.Package // stdlib cache by directory
	loading map[string]bool           // cycle guard for stdlib
}

// Load scans root for Go packages (skipping testdata, vendor and hidden
// directories), type-checks them in dependency order under the given
// module path, and returns them sorted by import path. Test files
// (_test.go) are not analyzed: the invariants guard production code, and
// tests legitimately use wall clocks and ad-hoc goroutines.
func Load(root, module string) ([]*Package, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	l := &loader{
		root:    abs,
		module:  module,
		fset:    token.NewFileSet(),
		bctx:    build.Default,
		pkgs:    make(map[string]*Package),
		std:     make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
	// Pure-Go view of the standard library: cgo-guarded files are
	// excluded, so packages like net type-check from their portable
	// fallbacks without invoking the cgo tool.
	l.bctx.CgoEnabled = false

	dirs, err := l.scan()
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		if _, err := l.loadModulePkg(dir); err != nil {
			return nil, err
		}
	}
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// ModulePath reads the module directive from root/go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		abs = parent
	}
}

// scan returns the directories under root holding buildable Go packages.
func (l *loader) scan() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps a module directory to its import path.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.module, nil
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

// dirForImport maps a module import path back to a directory.
func (l *loader) dirForImport(path string) string {
	if path == l.module {
		return l.root
	}
	rel := strings.TrimPrefix(path, l.module+"/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// loadModulePkg parses and type-checks the package in dir (loading its
// module-internal dependencies first) and caches it.
func (l *loader) loadModulePkg(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	bp, err := l.bctx.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("lint: %s: %v", dir, err)
	}
	// Register a placeholder early to break accidental cycles cleanly.
	l.pkgs[path] = nil

	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}
	// Load module-internal dependencies first (topological order).
	for _, imp := range bp.Imports {
		if imp == l.module || strings.HasPrefix(imp, l.module+"/") {
			if _, err := l.loadModulePkg(l.dirForImport(imp)); err != nil {
				return nil, err
			}
		}
	}

	p := &Package{
		Path: path, Dir: dir, Root: l.root, Name: bp.Name,
		Fset: l.fset, Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer:    (*moduleImporter)(l),
		FakeImportC: true,
		Error:       func(err error) { p.Errs = append(p.Errs, err) },
	}
	p.Types, _ = conf.Check(path, l.fset, files, p.Info)
	l.pkgs[path] = p
	return p, nil
}

// moduleImporter resolves imports for module packages.
type moduleImporter loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, m.root, 0)
}

func (m *moduleImporter) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	l := (*loader)(m)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		p := l.pkgs[path]
		if p == nil || p.Types == nil {
			return nil, fmt.Errorf("lint: module package %q not loaded", path)
		}
		return p.Types, nil
	}
	return l.importStd(path, srcDir)
}

// importStd type-checks a non-module (standard library) package from
// GOROOT source with function bodies ignored.
func (l *loader) importStd(path, srcDir string) (*types.Package, error) {
	bp, err := l.bctx.Import(path, srcDir, 0)
	if err != nil {
		return nil, err
	}
	if cached, ok := l.std[bp.Dir]; ok {
		if cached == nil {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
		return cached, nil
	}
	if l.loading[bp.Dir] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[bp.Dir] = true
	defer delete(l.loading, bp.Dir)

	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(bp.Dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer:         (*stdImporter)(l),
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		Error:            func(error) {}, // signatures-only check of foreign code: best effort
	}
	pkg, _ := conf.Check(bp.ImportPath, l.fset, files, nil)
	l.std[bp.Dir] = pkg
	return pkg, nil
}

// stdImporter resolves imports found while checking stdlib source; srcDir
// threading keeps GOROOT vendor resolution working.
type stdImporter loader

func (s *stdImporter) Import(path string) (*types.Package, error) {
	return s.ImportFrom(path, "", 0)
}

func (s *stdImporter) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	l := (*loader)(s)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return l.importStd(path, srcDir)
}

// Match reports whether the package matches any of the path patterns
// ("./...", "./internal/...", "./cmd/swiftvet", "internal/lint"). An
// empty pattern list matches everything.
func (p *Package) Match(module string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(p.Path, module), "/")
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		pat = strings.TrimSuffix(pat, "/")
		if pat == "..." || pat == "" {
			return true
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == sub || strings.HasPrefix(rel, sub+"/") {
				return true
			}
			continue
		}
		if rel == pat {
			return true
		}
	}
	return false
}

var patternRE = regexp.MustCompile(`^\.{0,2}/`)

// NormalizePatterns strips leading "./" markers so patterns compare
// against module-relative paths.
func NormalizePatterns(patterns []string) []string {
	out := make([]string, 0, len(patterns))
	for _, p := range patterns {
		out = append(out, patternRE.ReplaceAllString(p, ""))
	}
	return out
}
