package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockGuard enforces "guarded by <mu>" struct-field annotations: every
// access to an annotated field must happen with the named sibling mutex
// held. The annotation is a trailing (or doc) comment on the field:
//
//	type Mediator struct {
//		mu       sync.Mutex
//		sessions map[uint64]*session // guarded by mu
//	}
//
// Enforcement reuses lockio's lock-state threading: within each function
// the walker tracks Lock/RLock acquisitions (honoring defer Unlock) and,
// at each selector access x.field of an annotated field, requires x.mu in
// the held set. Two conventions are honored without a held lock:
//
//   - methods whose name ends in "Locked" are, by this repository's
//     convention, only called with the receiver's mutex already held;
//   - accesses rooted at a variable declared locally in the function
//     body (not a parameter) are exempt: a value that has not escaped
//     its constructor is not yet shared, so its invariants are not yet
//     live.
//
// A "guarded by" comment naming no sibling field, a non-mutex field, or
// a dotted path is malformed and is itself a finding: a dangling
// annotation is a lock-discipline check that silently stopped checking.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated `guarded by <mu>` must only be accessed with <mu> held",
	Run:  runLockGuard,
}

// Guards returns the module-wide guarded-field table: field object ->
// sibling mutex field name. Built lazily, once per Module.
func (m *Module) Guards() map[types.Object]string {
	if m.guards == nil {
		m.guards = make(map[types.Object]string)
		m.guardMus = make(map[*types.TypeName]map[string]bool)
		for _, p := range m.pkgs {
			collectGuards(p, func(field types.Object, owner *types.TypeName, mu string) {
				m.guards[field] = mu
				if m.guardMus[owner] == nil {
					m.guardMus[owner] = make(map[string]bool)
				}
				m.guardMus[owner][mu] = true
			}, nil)
		}
	}
	return m.guards
}

// collectGuards parses the guarded-by annotations declared in one
// package. Well-formed annotations go to found; malformed ones (dangling
// or non-mutex names) go to bad when it is non-nil.
func collectGuards(p *Package, found func(field types.Object, owner *types.TypeName, mu string), bad func(pos token.Pos, format string, args ...any)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				owner, _ := p.Info.Defs[ts.Name].(*types.TypeName)
				for _, field := range st.Fields.List {
					mu, pos, ok := guardOf(field)
					if !ok {
						continue
					}
					if strings.Contains(mu, ".") {
						if bad != nil {
							bad(pos, "lockguard: `guarded by %s`: dotted paths are not supported; name a sibling field", mu)
						}
						continue
					}
					if why := muProblem(st, p, mu); why != "" {
						if bad != nil {
							bad(pos, "lockguard: `guarded by %s`: %s", mu, why)
						}
						continue
					}
					for _, name := range field.Names {
						if obj := p.Info.Defs[name]; obj != nil && found != nil && owner != nil {
							found(obj, owner, mu)
						}
					}
				}
			}
		}
	}
}

// guardOf extracts a guarded-by annotation from a field's trailing or
// doc comment.
func guardOf(field *ast.Field) (mu string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m, found := ParseGuard(c.Text); found {
				return m, c.Pos(), true
			}
			// A marker with no parsable name is malformed, not absent.
			if strings.Contains(c.Text, strings.TrimSpace(guardMarker)) {
				return "", c.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

// muProblem validates that mu names a sibling field of mutex type,
// returning a description of the problem or "".
func muProblem(st *ast.StructType, p *Package, mu string) string {
	if mu == "" {
		return "missing mutex name; want `guarded by <mu>`"
	}
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			// Embedded mutex: referred to by its type name.
			if t := p.TypeOfExpr(field.Type); t != nil && isMutexType(t) {
				name := t
				if ptr, ok := name.(*types.Pointer); ok {
					name = ptr.Elem()
				}
				if named, ok := name.(*types.Named); ok && named.Obj().Name() == mu {
					return ""
				}
			}
			continue
		}
		for _, name := range field.Names {
			if name.Name != mu {
				continue
			}
			if t := p.TypeOfExpr(field.Type); t != nil && !isMutexType(t) {
				return "names field of type " + t.String() + ", not a sync.Mutex/RWMutex"
			}
			return ""
		}
	}
	return "names no sibling field in this struct"
}

// TypeOfExpr returns the checked type of e, or nil.
func (p *Package) TypeOfExpr(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

func runLockGuard(pass *Pass) {
	if pass.Mod == nil {
		pass.Mod = BuildModule([]*Package{pass.Pkg})
	}
	// Report malformed annotations declared here.
	collectGuards(pass.Pkg, nil, func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, format, args...)
	})
	guards := pass.Mod.Guards()
	if len(guards) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := lockState{}
			// The *Locked convention: the receiver's guarding mutexes are
			// held by contract.
			if strings.HasSuffix(fd.Name.Name, "Locked") && fd.Recv != nil && len(fd.Recv.List) > 0 {
				if names := fd.Recv.List[0].Names; len(names) > 0 {
					recv := names[0].Name
					if owner := recvNamed(pass, fd); owner != nil {
						for mu := range pass.Mod.guardMus[owner] {
							held[recv+"."+mu] = fd.Pos()
						}
					}
				}
			}
			lw := &lockWalker{pass: pass, check: guardCheck(pass, guards, fd)}
			lw.stmts(fd.Body.List, held)
		}
	}
	// Function literals run as their own scopes with no locks assumed.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lw := &lockWalker{pass: pass, check: guardCheck(pass, guards, nil)}
				lw.stmts(lit.Body.List, lockState{})
			}
			return true
		})
	}
}

// recvNamed resolves the type name of a method's receiver.
func recvNamed(pass *Pass, fd *ast.FuncDecl) *types.TypeName {
	fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// guardCheck is lockguard's per-expression check: every selector access
// to an annotated field needs its mutex in the held set.
func guardCheck(pass *Pass, guards map[types.Object]string, fd *ast.FuncDecl) func(ast.Expr, lockState) {
	return func(e ast.Expr, held lockState) {
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[sel.Sel]
			mu, guarded := guards[obj]
			if !guarded {
				return true
			}
			if localReceiver(pass, sel.X, fd) {
				return true // not yet shared: still inside its constructor
			}
			want := exprString(sel.X) + "." + mu
			if _, ok := held[want]; ok {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"lockguard: %s.%s is guarded by %s, which is not held here; lock it, rename the method *Locked, or //lint:allow lockguard <reason>",
				exprString(sel.X), sel.Sel.Name, want)
			return true
		})
	}
}

// localReceiver reports whether the access path is rooted at a variable
// declared inside the current function body — a value still under
// construction, not yet shared, whose lock invariants are not yet live.
func localReceiver(pass *Pass, e ast.Expr, fd *ast.FuncDecl) bool {
	if fd == nil || fd.Body == nil {
		return false
	}
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, ok := pass.Pkg.Info.Uses[x].(*types.Var)
			if !ok || v.IsField() {
				return false
			}
			return v.Pos() > fd.Body.Pos() && v.Pos() < fd.Body.End()
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			return false
		default:
			return false
		}
	}
}
