// Package core is a seeded-violation fixture: its basename places it on
// the error-attribution boundary.
package core

import (
	"errors"
	"fmt"
)

// wrapV flattens an error through %v.
func wrapV(err error) error {
	return fmt.Errorf("open failed: %v", err) // want `error operand err formatted without %w`
}

// wrapS flattens an error through %s with other operands present.
func wrapS(name string, err error) error {
	return fmt.Errorf("agent %s: %s", name, err) // want `error operand err formatted without %w`
}

// restring rebuilds an error from its text.
func restring(err error) error {
	return errors.New(err.Error()) // want `errors\.New rebuilt from an existing error`
}

// restringf hides the rebuild behind Sprintf.
func restringf(err error) error {
	return errors.New(fmt.Sprintf("failed: %v", err)) // want `errors\.New rebuilt from an existing error`
}

// good wraps with %w: attribution survives.
func good(err error) error {
	return fmt.Errorf("open failed: %w", err)
}

// goodSentinel mints a fresh sentinel, which is legal anywhere.
var goodSentinel = errors.New("core: fixture sentinel")

var _ = []any{wrapV, wrapS, restring, restringf, good, goodSentinel}
