// Package util mirrors non-boundary code, where stringifying errors is
// legal: nothing here may be flagged.
package util

import (
	"errors"
	"fmt"
)

// Describe may flatten errors: util is not a boundary package.
func Describe(err error) error {
	return fmt.Errorf("describe: %v", err)
}

// Restring is likewise exempt outside the boundary.
func Restring(err error) error {
	return errors.New(err.Error())
}
