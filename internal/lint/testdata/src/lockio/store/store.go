// Package store is a stub whose basename marks its calls as blocking
// I/O for the lockio fixture.
package store

// Store pretends to be a blocking object store.
type Store struct{}

// ReadAt models a blocking read.
func (s *Store) ReadAt(p []byte, off int64) (int, error) { return len(p), nil }

// Sync models a blocking stable-write.
func (s *Store) Sync() error { return nil }

// IsNotExist is a pure predicate: never blocking.
func IsNotExist(err error) bool { return err == nil }
