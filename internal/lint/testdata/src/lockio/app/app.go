// Package app seeds lock-across-I/O violations against the stub store,
// plus the repo's real release-before-I/O idioms as no-false-positive
// cases.
package app

import (
	"sync"

	"fixture/store"
)

type cache struct {
	mu sync.Mutex
	rw sync.RWMutex
	st *store.Store
	n  int64
}

// badRead holds mu across a blocking read.
func (c *cache) badRead(p []byte) {
	c.mu.Lock()
	c.st.ReadAt(p, 0) // want `c\.mu .* held across blocking call store\.ReadAt`
	c.mu.Unlock()
}

// badDefer: defer Unlock keeps the lock until return, so the sync under
// it still counts as held.
func (c *cache) badDefer() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.Sync() // want `c\.mu .* held across blocking call store\.Sync`
}

// badRLock: read locks pin the data path too.
func (c *cache) badRLock(p []byte) {
	c.rw.RLock()
	c.st.ReadAt(p, c.n) // want `c\.rw .* held across blocking call store\.ReadAt`
	c.rw.RUnlock()
}

// good releases before I/O (the repo's standard idiom).
func (c *cache) good(p []byte) {
	c.mu.Lock()
	off := c.n
	c.mu.Unlock()
	c.st.ReadAt(p, off)
}

// goodAsync: a spawned goroutine does not run under the caller's lock.
func (c *cache) goodAsync() {
	c.mu.Lock()
	go func() { _ = c.st.Sync() }()
	c.mu.Unlock()
}

// goodPure: predicates from blocking packages are not I/O.
func (c *cache) goodPure(err error) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return store.IsNotExist(err)
}
