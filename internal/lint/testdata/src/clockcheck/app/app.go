// Package app mirrors consumer code: it is not a model package, so the
// wall clock is fair game and nothing here may be flagged.
package app

import "time"

// Uptime reads the wall clock freely outside the model set.
func Uptime(start time.Time) time.Duration {
	time.Sleep(time.Microsecond)
	return time.Since(start)
}
