// Package memnet is a seeded-violation fixture: its basename places it
// in clockcheck's model-package set.
package memnet

import "time"

// Net stands in for the real scaled network.
type Net struct{ epoch time.Time }

// New seeds a wall-clock read inside a composite literal.
func New() *Net {
	return &Net{epoch: time.Now()} // want `time\.Now bypasses the injected clock`
}

// Wait seeds sleep, channel, timer and ticker wall-clock access.
func Wait() {
	time.Sleep(time.Millisecond)         // want `time\.Sleep bypasses the injected clock`
	<-time.After(time.Millisecond)       // want `time\.After bypasses the injected clock`
	t := time.NewTimer(time.Millisecond) // want `time\.NewTimer bypasses the injected clock`
	t.Stop()
	tick := time.NewTicker(time.Millisecond) // want `time\.NewTicker bypasses the injected clock`
	tick.Stop()
}

// Age seeds a time.Since read.
func (n *Net) Age() time.Duration {
	return time.Since(n.epoch) // want `time\.Since bypasses the injected clock`
}

// Allowed is the justified seam: suppressed, no diagnostic.
func (n *Net) Allowed() time.Time {
	//lint:allow clockcheck fixture seam: pacing maps modeled time onto the wall clock
	return time.Now()
}
