// Package cmdapp sits outside internal/: goexit does not apply, so the
// unbounded goroutine below must not be flagged.
package cmdapp

func spin() {}

// Fire launches an unbounded goroutine; exempt outside internal/.
func Fire() {
	go func() {
		for {
			spin()
		}
	}()
}
