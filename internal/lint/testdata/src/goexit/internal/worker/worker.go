// Package worker seeds goroutine-leak violations; its import path keeps
// it inside goexit's internal/ scope.
package worker

import "time"

func poll() {}

// Start seeds three leaks and three clean launches.
func Start(done chan struct{}, work chan int) {
	go func() { // want `loops forever with no reachable return or break`
		for {
			poll()
		}
	}()
	go leaky()  // want `goroutine leaky loops forever`
	go func() { // want `ranges over a ticker/timer channel`
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for range t.C {
			poll()
		}
	}()
	go func() { // good: select with a return on the done channel
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				poll()
			}
		}
	}()
	go func() { // good: bounded loop
		for i := 0; i < 3; i++ {
			poll()
		}
	}()
	go func() { // good: range over a closeable channel
		for range work {
			poll()
		}
	}()
}

// leaky spins with no exit; flagged at its launch site.
func leaky() {
	for {
		poll()
	}
}
