// Package core drives the fixture codec: its hot functions reach wire
// across the package boundary.
package core

import "fixture/wire"

// session owns a reusable send buffer.
type session struct {
	sendBuf []byte
	hdr     wire.Header
}

// send is hot and clean: appending into receiver-owned storage is the
// amortized-zero shape, and &s.hdr is not a composite literal.
//
//swift:hotpath
func (s *session) send(payload []byte) []byte {
	s.sendBuf = wire.AppendPacket(s.sendBuf[:0], &s.hdr, payload)
	return s.sendBuf
}

// flush retransmits by re-marshaling: reaching wire.Marshal drags that
// function's allocation into the hot set (see wire/wire.go).
//
//swift:hotpath
func (s *session) flush(payload []byte) []byte {
	return wire.Marshal(&s.hdr, payload)
}

// reset is hot, but its one-time growth is justified and allowed.
//
//swift:hotpath
func (s *session) reset() {
	if s.sendBuf == nil {
		//lint:allow hotalloc init-time growth on the first call only
		s.sendBuf = make([]byte, 0, 64)
	}
	s.sendBuf = s.sendBuf[:0]
}
