// Package wire is the fixture packet codec for the hotalloc tree.
package wire

import "fmt"

// Header is a fixture packet header.
type Header struct {
	Type uint8
	Len  uint32
}

// AppendPacket appends the encoded packet to dst — the approved
// caller-provided-buffer idiom. Clean: appends rooted at a parameter
// never flag.
//
//swift:hotpath
func AppendPacket(dst []byte, h *Header, payload []byte) []byte {
	dst = append(dst, h.Type)
	dst = append(dst, byte(h.Len>>24), byte(h.Len>>16), byte(h.Len>>8), byte(h.Len))
	dst = append(dst, payload...)
	return trailer(dst)
}

// trailer is not annotated itself: it inherits the obligation by being
// statically reachable from AppendPacket.
func trailer(dst []byte) []byte {
	var sum []byte
	sum = append(sum, byte(len(dst))) // want `append to a function-local slice`
	return append(dst, sum...)
}

// Marshal allocates a fresh packet per call. It is dragged into the hot
// set across the package boundary by core.session.flush.
func Marshal(h *Header, payload []byte) []byte {
	buf := make([]byte, 0, 5+len(payload)) // want `make allocates`
	return AppendPacket(buf, h, payload)
}

// Decode parses b: hot root with seeded conversion, make, and fmt
// violations. The error branch is cold but unexcused, so it flags.
//
//swift:hotpath
func Decode(b []byte) (Header, string, error) {
	var h Header
	if len(b) < 5 {
		return h, "", fmt.Errorf("wire: short packet: %d bytes", len(b)) // want `fmt.Errorf allocates`
	}
	h.Type = b[0]
	name := string(b[5:])      // want `string\(bytes\) conversion copies`
	scratch := make([]byte, 4) // want `make allocates`
	copy(scratch, b[1:5])
	return h, name, nil
}

// Cold is neither annotated nor reachable from a root: its allocations
// are nobody's business.
func Cold(n int) []byte {
	buf := make([]byte, n)
	_ = fmt.Sprintf("cold %d", n)
	return buf
}
