// Package obs models the metrics layer: boxing, closure, and goroutine
// seeds.
package obs

// Sink accepts samples through an interface boundary. Calls through it
// are opaque to the call graph: implementations stay cold.
type Sink interface {
	Push(v any)
}

// Counter is a fixture counter.
type Counter struct {
	n int64
}

// Inc is hot and clean: plain arithmetic on the receiver.
//
//swift:hotpath
func (c *Counter) Inc() { c.n++ }

// Observe is hot with one seed per boxing/closure class.
//
//swift:hotpath
func Observe(s Sink, v int64) {
	s.Push(v)                  // want `argument boxes int64 into any`
	labels := []string{"read"} // want `slice literal allocates`
	c := &Counter{}            // want `&composite literal escapes`
	go sweep(v)                // want `go statement allocates`
	fn := func() { c.n = v }   // want `closure captures enclosing variables`
	name := "op:" + labels[0]  // want `string concatenation allocates`
	fn()
	_ = name
}

// sweep is reached from Observe (via the go statement's call edge) and
// is itself clean.
func sweep(v int64) { _ = v }
