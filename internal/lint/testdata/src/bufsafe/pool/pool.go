// Package pool is the fixture buffer pool the bufsafe contract is
// specified against. The real pooled-buffer hot path (ROADMAP item 1)
// lands against the same directives, so its checker is already in CI.
package pool

// Buf is a pooled buffer.
type Buf struct {
	B []byte
}

var free []*Buf

// Get hands out a pooled buffer the caller must Put back.
//
//swift:pool acquire
func Get() *Buf {
	if n := len(free); n > 0 {
		b := free[n-1]
		free = free[:n-1]
		return b
	}
	return &Buf{B: make([]byte, 0, 1024)}
}

// Put returns a buffer to the pool. The buffer and every alias of it
// are dead after this call.
//
//swift:pool release
func Put(b *Buf) {
	b.B = b.B[:0]
	free = append(free, b)
}
