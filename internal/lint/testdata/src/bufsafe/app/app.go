// Package app exercises the pooled-buffer lifecycle contract: the
// seeded violations cover leak, conditional leak, double release,
// use-after-release, retention past release, and unpaired branches.
package app

import (
	"errors"

	"fixture/pool"
)

var errShort = errors.New("short write")

// Send is the clean shape: acquire, fill, release.
func Send(p []byte) {
	b := pool.Get()
	b.B = append(b.B, p...)
	pool.Put(b)
}

// SendDefer pairs the acquire with a deferred release: clean, and later
// uses of b are fine because the release happens at exit.
func SendDefer(p []byte) int {
	b := pool.Get()
	defer pool.Put(b)
	b.B = append(b.B, p...)
	return len(b.B)
}

// Leak falls off the end of the function holding the buffer.
func Leak(p []byte) {
	b := pool.Get()
	b.B = append(b.B, p...)
} // want `pooled buffer b \(acquired at .*\) is never released`

// LeakEarly forgets the release on the error path only.
func LeakEarly(p []byte, bad bool) error {
	b := pool.Get()
	if bad {
		return errShort // want `not released on this return path`
	}
	pool.Put(b)
	return nil
}

// Double releases the same buffer twice.
func Double() {
	b := pool.Get()
	pool.Put(b)
	pool.Put(b) // want `double release of b`
}

// UseAfter touches the buffer after giving it back.
func UseAfter() int {
	b := pool.Get()
	pool.Put(b)
	return len(b.B) // want `use of b after release`
}

// Retain keeps a subslice alive past the release: once the pool
// rewrites the backing array, head is garbage.
func Retain(p []byte) byte {
	b := pool.Get()
	b.B = append(b.B, p...)
	head := b.B[:1]
	pool.Put(b)
	return head[0] // want `use of head after release`
}

// Branchy releases on one arm and holds on the other.
func Branchy(flush bool) {
	b := pool.Get()
	if flush {
		pool.Put(b)
	} // want `released on only some paths through this if`
	_ = b
}
