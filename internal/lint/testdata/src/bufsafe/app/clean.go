package app

import "fixture/pool"

// The no-false-positive shapes: every ownership transfer the analyzer
// must recognize without complaint.

// Wrap hands the buffer to its caller: a transfer, not a leak.
func Wrap() *pool.Buf {
	b := pool.Get()
	return b
}

type holder struct{ b *pool.Buf }

// Stash transfers ownership into a field.
func (h *holder) Stash() {
	b := pool.Get()
	h.b = b
}

// Flush releases a buffer it never acquired: untracked, no findings —
// pairing is judged where the acquire happened.
func (h *holder) Flush() {
	pool.Put(h.b)
	h.b = nil
}

// BothArms releases on every path: the merge must not complain.
func BothArms(flush bool) {
	b := pool.Get()
	if flush {
		pool.Put(b)
	} else {
		pool.Put(b)
	}
}

// EarlyOut releases before each return.
func EarlyOut(bad bool) error {
	b := pool.Get()
	if bad {
		pool.Put(b)
		return errShort
	}
	pool.Put(b)
	return nil
}

// Handoff sends the buffer to a consumer goroutine, which owns it now.
func Handoff(ch chan *pool.Buf) {
	b := pool.Get()
	ch <- b
}
