// Package agent seeds metric-naming violations under the agent layer's
// prefix rules, next to clean registrations mirroring the real tree.
package agent

import "fixture/internal/obs"

// Register seeds one violation per rule.
func Register(reg *obs.Registry, dynamic string) {
	reg.Counter("swift_client_read_bursts_total", "Wrong layer.", nil)            // want `lacks the agent layer prefix`
	reg.Counter("swift_agent_Bad-Name_total", "Bad characters.", nil)             // want `does not match`
	reg.Counter("swift_agent_reads", "Counter without _total.", nil)              // want `must end in "_total"`
	reg.Histogram("swift_agent_read_latency", "Histogram without _seconds.", nil) // want `must end in "_seconds"`
	reg.Gauge("swift_agent_sessions", "", nil)                                    // want `is empty`
	reg.Counter(dynamic, "Non-literal name.", nil)                                // want `non-literal name`
	reg.Counter("swift_agent_opens_total", "Open requests.", nil)
	reg.Counter("swift_agent_opens_total", "Registered again.", nil) // want `duplicate registration`
}

// RegisterClean mirrors the real tree's idioms: labeled instruments, a
// computed gauge, and a justified table-driven registration.
func RegisterClean(reg *obs.Registry, rows []struct{ Name, Help string }) {
	l := obs.Labels{"agent": "0"}
	reg.Counter("swift_agent_read_requests_total", "Read requests served.", l)
	reg.Histogram("swift_agent_read_serve_seconds", "Read service time.", l)
	reg.GaugeFunc("swift_agent_queue_depth", "Queue depth.", nil, func() float64 { return 0 })
	for _, row := range rows {
		//lint:allow metricname fixture exception: the table rows above hold literal names
		reg.CounterFunc(row.Name, row.Help, nil, func() float64 { return 0 })
	}
}
