// Package obs is a stub of swift's metric registry; the analyzer
// recognizes it by its import-path suffix.
package obs

// Labels names one metric instance among several sharing a name.
type Labels map[string]string

// Counter is a stub instrument.
type Counter struct{}

// Gauge is a stub instrument.
type Gauge struct{}

// Histogram is a stub instrument.
type Histogram struct{}

// Registry is the stub registration surface.
type Registry struct{}

// Counter registers a counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter { return &Counter{} }

// Gauge registers a gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge { return &Gauge{} }

// Histogram registers a histogram.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram { return &Histogram{} }

// CounterFunc registers a computed counter.
func (r *Registry) CounterFunc(name, help string, labels Labels, f func() float64) {}

// GaugeFunc registers a computed gauge.
func (r *Registry) GaugeFunc(name, help string, labels Labels, f func() float64) {}
