package reg

import "sync"

// Server owns a table: accesses through a path must hold the mutex on
// that same path.
type Server struct {
	tab *Table
}

// Flush locks the nested mutex on the matching path: clean.
func (s *Server) Flush() {
	s.tab.mu.Lock()
	s.tab.sessions = nil
	s.tab.mu.Unlock()
}

// Drop holds a lock — the wrong one.
func (s *Server) Drop(t2 *Table) {
	t2.mu.Lock()
	s.tab.sessions = nil // want `s.tab.sessions is guarded by s.tab.mu`
	t2.mu.Unlock()
}

// Stats demonstrates RWMutex guards.
type Stats struct {
	rw    sync.RWMutex
	reads int64 // guarded by rw
}

// Read takes the read lock: clean.
func (s *Stats) Read() int64 {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.reads
}

// Peek skips the read lock.
func (s *Stats) Peek() int64 {
	return s.reads // want `s.reads is guarded by s.rw`
}
