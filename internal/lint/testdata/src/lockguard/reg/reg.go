// Package reg models a guarded session registry: the lockguard fixture.
package reg

import "sync"

// Table is the guarded session table.
type Table struct {
	mu       sync.Mutex
	sessions map[uint64]string // guarded by mu
	nextID   uint64            // guarded by mu
	hits     int64             // hot counter, deliberately unguarded
	stale    int               // guarded by nosuch // want `names no sibling field`
	count    int               // guarded by hits // want `not a sync.Mutex`
}

// Lookup accesses under the lock (held through the defer): clean.
func (t *Table) Lookup(id uint64) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sessions[id]
}

// Bump forgets the lock entirely.
func (t *Table) Bump() uint64 {
	t.nextID++      // want `t.nextID is guarded by t.mu, which is not held`
	return t.nextID // want `t.nextID is guarded by t.mu`
}

// Misuse releases too early.
func (t *Table) Misuse(id uint64) string {
	t.mu.Lock()
	t.mu.Unlock()
	return t.sessions[id] // want `t.sessions is guarded by t.mu`
}

// expireLocked is called with t.mu held — the *Locked naming convention
// is the contract: clean.
func (t *Table) expireLocked(id uint64) {
	delete(t.sessions, id)
	t.nextID--
}

// Expire is the locking wrapper: clean.
func (t *Table) Expire(id uint64) {
	t.mu.Lock()
	t.expireLocked(id)
	t.mu.Unlock()
}

// New builds a table. The value is still local — not yet shared — so
// its invariants are not yet live: clean.
func New() *Table {
	t := &Table{}
	t.sessions = make(map[uint64]string)
	return t
}

// Hits touches the unguarded counter without the lock: clean.
func (t *Table) Hits() int64 { return t.hits }
