// Package transport is a stub conn layer whose basename marks its calls
// as blocking I/O for the deadlineflow fixture.
package transport

import "time"

// Conn models an endpoint.
type Conn struct{}

// ReadFrom models a blocking read.
func (c *Conn) ReadFrom(p []byte) (int, error) { return 0, nil }

// WriteTo models a blocking send.
func (c *Conn) WriteTo(p []byte, addr string) error { return nil }

// SetReadDeadline arms the read timer.
func (c *Conn) SetReadDeadline(t time.Time) error { return nil }
