// Package app exercises deadline propagation through send, retry,
// hedge, and repair paths: the deadlineflow fixture.
package app

import (
	"time"

	"fixture/obs"
	"fixture/transport"
	"fixture/wire"
)

// send threads the caller's deadline into the packet budget field
// before the blocking write: clean.
func send(c *transport.Conn, deadline time.Time, payload []byte) error {
	rem := time.Until(deadline)
	pkt := &wire.Packet{Type: 1, Payload: payload}
	pkt.Deadline = int64(rem)
	buf := wire.Marshal(pkt)
	return c.WriteTo(buf, "peer")
}

// recv arms the read timer from the deadline: clean.
func recv(c *transport.Conn, deadline time.Time, buf []byte) (int, error) {
	if err := c.SetReadDeadline(deadline); err != nil {
		return 0, err
	}
	return c.ReadFrom(buf)
}

// retry retransmits on a timer but never threads deadline into the
// write: the budget is dropped on the retry path.
func retry(c *transport.Conn, deadline time.Time, buf []byte) error {
	for i := 0; i < 3; i++ {
		if err := c.WriteTo(buf, "peer"); err == nil { // want `does not carry it`
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// medrpcStub is a module-internal blocking RPC surface: its methods
// reach transport writes, so calls to them from deadline-carrying
// functions must pass the budget along.
type medrpcStub struct {
	conn *transport.Conn
}

// AdmitTraced threads the span into the packet before the blocking
// write: clean — and, because it accepts a SpanContext and blocks,
// it is a propagation target for its callers.
func (m *medrpcStub) AdmitTraced(ctx obs.SpanContext) error {
	pkt := &wire.Packet{Type: 2}
	pkt.Trace = ctx
	return m.conn.WriteTo(wire.Marshal(pkt), "mediator")
}

// hedge forwards the span into the second attempt: clean.
func (m *medrpcStub) hedge(ctx obs.SpanContext) error {
	if err := m.AdmitTraced(ctx); err != nil {
		return m.AdmitTraced(ctx)
	}
	return nil
}

// hedgeDropped launches the hedge with a fresh zero span, losing the
// caller's trace and budget.
func (m *medrpcStub) hedgeDropped(ctx obs.SpanContext) error {
	return m.AdmitTraced(obs.SpanContext{}) // want `does not carry it`
}

// admitIn enforces the budget locally before blocking: clean.
func (m *medrpcStub) admitIn(budget time.Duration) error {
	if budget <= 0 {
		return nil
	}
	return m.conn.WriteTo(nil, "mediator")
}

// repair forwards the remaining budget into the inner admit: clean.
func (m *medrpcStub) repair(deadline time.Time) error {
	return m.admitIn(time.Until(deadline))
}

// repairDropped invents a fixed budget instead of spending down the
// caller's deadline.
func (m *medrpcStub) repairDropped(deadline time.Time) error {
	return m.admitIn(4 * time.Second) // want `does not carry it`
}

// drain loops until the giveup time, checking it each pass: the
// deadline bounds the loop, so the inner write is budgeted: clean.
func drain(c *transport.Conn, giveup time.Time, buf []byte) {
	for time.Now().Before(giveup) {
		if err := c.WriteTo(buf, "peer"); err == nil {
			return
		}
	}
}
