// Package wire is a stub codec carrying the budget and trace
// extensions for the deadlineflow fixture.
package wire

import "fixture/obs"

// Packet is a stub packet.
type Packet struct {
	Type     uint8
	Deadline int64
	Trace    obs.SpanContext
	Payload  []byte
}

// Marshal encodes p.
func Marshal(p *Packet) []byte { return p.Payload }
