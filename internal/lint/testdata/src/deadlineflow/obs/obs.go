// Package obs is a stub trace layer for the deadlineflow fixture.
package obs

// SpanContext identifies a span.
type SpanContext struct {
	Trace uint64
	Span  uint64
}
