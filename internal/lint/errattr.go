package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// errAttrTargets are the packages whose errors cross layer boundaries and
// feed the healthy→suspect→down lifecycle and ParseCorrupt: losing the
// error chain there turns an attributable failure into an anonymous one.
var errAttrTargets = map[string]bool{
	"core":     true,
	"agent":    true,
	"wire":     true,
	"mediator": true,
}

// ErrAttr enforces error attribution across the core/agent/wire boundary:
// fmt.Errorf must wrap error operands with %w (not flatten them through
// %v/%s), and errors.New must not rebuild an error from another error's
// text. Typed attribution errors (integrity.CorruptError and friends) and
// fresh sentinel errors are untouched.
var ErrAttr = &Analyzer{
	Name: "errattr",
	Doc:  "boundary errors must stay attributable: wrap with %w, never re-stringify",
	Run:  runErrAttr,
}

func runErrAttr(pass *Pass) {
	if !errAttrTargets[pass.Pkg.Base()] {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.Callee(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
				checkErrorf(pass, call)
			case fn.Pkg().Path() == "errors" && fn.Name() == "New":
				checkErrorsNew(pass, call)
			}
			return true
		})
	}
}

// checkErrorf flags fmt.Errorf calls that format an error operand without
// a %w verb in the format string.
func checkErrorf(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return // non-literal format: out of scope
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErrorExpr(pass, arg) {
			pass.Reportf(arg.Pos(),
				"errattr: error operand %s formatted without %%w; the chain (and lifecycle attribution) is lost — wrap with %%w or return a typed error",
				exprString(arg))
		}
	}
}

// checkErrorsNew flags errors.New calls whose message is derived from an
// existing error (err.Error(), Sprintf over an error, ...): the original
// chain is discarded.
func checkErrorsNew(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	found := false
	ast.Inspect(call.Args[0], func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if isErrorExpr(pass, e) {
			found = true
			return false
		}
		return true
	})
	if found {
		pass.Reportf(call.Pos(),
			"errattr: errors.New rebuilt from an existing error discards its chain; wrap with fmt.Errorf(...%%w...) or a typed attribution error")
	}
}

// isErrorExpr reports whether e's static type implements the error
// interface (and is not the untyped nil).
func isErrorExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	errIface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if errIface == nil {
		return false
	}
	return types.Implements(t, errIface)
}
