// Package sim is a process-oriented discrete-event simulation kernel, the
// substrate for the paper's §5 scalability study. Model code is written as
// ordinary goroutines ("processes") that sleep in virtual time and queue on
// FIFO resources; the kernel runs exactly one process at a time and
// advances the clock between events, so runs are deterministic for a given
// seed regardless of the host scheduler.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// event is a scheduled wake-up.
type event struct {
	at   time.Duration
	seq  uint64 // tie-break: FIFO among simultaneous events
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Engine is one simulation run.
type Engine struct {
	now  time.Duration
	pq   eventHeap
	seq  uint64
	idle chan struct{} // the running process signals the kernel here
	rng  *rand.Rand
}

// New creates an engine seeded for reproducibility.
func New(seed int64) *Engine {
	return &Engine{
		idle: make(chan struct{}),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source. It must only be
// used from process context (the kernel serializes processes).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Proc is one simulated process.
type Proc struct {
	eng  *Engine
	wake chan struct{}
}

// Engine returns the engine the process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.eng.now }

// schedule enqueues a wake-up for proc at time at.
func (e *Engine) schedule(at time.Duration, proc *Proc) {
	e.seq++
	heap.Push(&e.pq, event{at: at, seq: e.seq, proc: proc})
}

// Spawn creates a process that will first run at virtual time `at` (which
// must be >= Now). It may be called before Run or from process context.
func (e *Engine) Spawn(at time.Duration, fn func(p *Proc)) {
	if at < e.now {
		at = e.now
	}
	p := &Proc{eng: e, wake: make(chan struct{})}
	go func() {
		<-p.wake // wait to be scheduled
		fn(p)
		e.idle <- struct{}{} // process exit returns control to the kernel
	}()
	e.schedule(at, p)
}

// Go spawns a process at the current time.
func (e *Engine) Go(fn func(p *Proc)) { e.Spawn(e.now, fn) }

// block yields to the kernel until this process is woken.
func (p *Proc) block() {
	p.eng.idle <- struct{}{}
	<-p.wake
}

// Sleep suspends the process for a virtual duration.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p.eng.now+d, p)
	p.block()
}

// Run executes events until the horizon passes or no events remain, then
// advances the clock to the horizon. It must not be called re-entrantly.
func (e *Engine) Run(until time.Duration) {
	e.run(until)
	if e.now < until {
		e.now = until
	}
}

// RunAll executes until no events remain, leaving the clock at the last
// event.
func (e *Engine) RunAll() { e.run(1<<62 - 1) }

func (e *Engine) run(until time.Duration) {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(event)
		if ev.at > until {
			heap.Push(&e.pq, ev)
			e.now = until
			return
		}
		e.now = ev.at
		ev.proc.wake <- struct{}{}
		<-e.idle // wait for it to block, exit, or sleep
	}
}

// Discipline selects how a Resource orders its queue.
type Discipline int

const (
	// FIFO serves waiters in arrival order.
	FIFO Discipline = iota
	// EDF serves the waiter with the earliest deadline first — the
	// real-time disk scheduling of the paper's §6.1.2 future work.
	EDF
)

// Resource is a queued server with a fixed number of slots (e.g. a disk
// spindle, a network medium). It tracks busy time for utilization.
type Resource struct {
	eng     *Engine
	name    string
	slots   int
	disc    Discipline
	inUse   int
	waiters []waiter
	wseq    uint64

	busy      time.Duration
	busySince time.Duration
}

type waiter struct {
	proc     *Proc
	deadline time.Duration
	seq      uint64
}

// NewResource creates a FIFO resource with the given concurrency.
func (e *Engine) NewResource(name string, slots int) *Resource {
	return e.NewResourceDisc(name, slots, FIFO)
}

// NewResourceDisc creates a resource with an explicit queue discipline.
func (e *Engine) NewResourceDisc(name string, slots int, disc Discipline) *Resource {
	if slots < 1 {
		panic(fmt.Sprintf("sim: resource %q needs at least one slot", name))
	}
	return &Resource{eng: e, name: name, slots: slots, disc: disc}
}

// Acquire obtains a slot, queuing behind earlier requesters. Under EDF it
// is equivalent to AcquireDeadline with no deadline (lowest priority).
func (r *Resource) Acquire(p *Proc) {
	r.AcquireDeadline(p, 1<<62-1)
}

// AcquireDeadline obtains a slot; under the EDF discipline waiters with
// earlier deadlines are served first.
func (r *Resource) AcquireDeadline(p *Proc, deadline time.Duration) {
	if r.inUse < r.slots && len(r.waiters) == 0 {
		r.take()
		return
	}
	r.wseq++
	r.waiters = append(r.waiters, waiter{proc: p, deadline: deadline, seq: r.wseq})
	p.block()
	// Woken by Release with the slot already transferred.
}

// pop removes and returns the next waiter per the discipline.
func (r *Resource) pop() *Proc {
	best := 0
	if r.disc == EDF {
		for i := 1; i < len(r.waiters); i++ {
			w, b := r.waiters[i], r.waiters[best]
			if w.deadline < b.deadline || (w.deadline == b.deadline && w.seq < b.seq) {
				best = i
			}
		}
	}
	p := r.waiters[best].proc
	r.waiters = append(r.waiters[:best], r.waiters[best+1:]...)
	return p
}

func (r *Resource) take() {
	if r.inUse == 0 {
		r.busySince = r.eng.now
	}
	r.inUse++
}

// Release frees a slot, handing it to the oldest waiter if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	if len(r.waiters) > 0 {
		// Transfer the slot: inUse stays constant.
		r.eng.schedule(r.eng.now, r.pop())
		return
	}
	r.inUse--
	if r.inUse == 0 {
		r.busy += r.eng.now - r.busySince
	}
}

// Use acquires the resource, holds it for d, and releases it.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// BusyTime returns the cumulative time the resource had at least one slot
// in use.
func (r *Resource) BusyTime() time.Duration {
	b := r.busy
	if r.inUse > 0 {
		b += r.eng.now - r.busySince
	}
	return b
}

// QueueLen returns the number of waiting processes.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Gate is a broadcast condition: processes Wait on it; Fire wakes all of
// them. A counter variant (WaitN) implements joins.
type Gate struct {
	eng     *Engine
	waiters []*Proc
	count   int
}

// NewGate creates a gate.
func (e *Engine) NewGate() *Gate { return &Gate{eng: e} }

// Wait suspends the process until the next Fire.
func (g *Gate) Wait(p *Proc) {
	g.waiters = append(g.waiters, p)
	p.block()
}

// Fire wakes all current waiters.
func (g *Gate) Fire() {
	for _, w := range g.waiters {
		g.eng.schedule(g.eng.now, w)
	}
	g.waiters = nil
}

// Add increments the gate's join counter by n.
func (g *Gate) Add(n int) { g.count += n }

// Done decrements the join counter; at zero all waiters fire.
func (g *Gate) Done() {
	g.count--
	if g.count <= 0 {
		g.Fire()
	}
}

// Pending reports the current join counter.
func (g *Gate) Pending() int { return g.count }
