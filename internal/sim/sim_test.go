package sim

import (
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	e := New(1)
	var order []int
	e.Spawn(0, func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		order = append(order, 1)
		if p.Now() != 10*time.Millisecond {
			t.Errorf("now = %v", p.Now())
		}
		p.Sleep(5 * time.Millisecond)
		order = append(order, 3)
	})
	e.Spawn(0, func(p *Proc) {
		p.Sleep(12 * time.Millisecond)
		order = append(order, 2)
	})
	e.RunAll()
	if e.Now() != 15*time.Millisecond {
		t.Fatalf("final now = %v", e.Now())
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestRunHorizonStops(t *testing.T) {
	e := New(1)
	ticks := 0
	e.Spawn(0, func(p *Proc) {
		for {
			p.Sleep(time.Millisecond)
			ticks++
		}
	})
	e.Run(10 * time.Millisecond)
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if e.Now() != 10*time.Millisecond {
		t.Fatalf("now = %v", e.Now())
	}
	// Resuming continues from the horizon.
	e.Run(15 * time.Millisecond)
	if ticks != 15 {
		t.Fatalf("ticks after resume = %d", ticks)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn(time.Millisecond, func(p *Proc) {
			order = append(order, i)
		})
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestResourceSerializes(t *testing.T) {
	e := New(1)
	r := e.NewResource("disk", 1)
	var finished []time.Duration
	for i := 0; i < 3; i++ {
		e.Spawn(0, func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			finished = append(finished, p.Now())
		})
	}
	e.RunAll()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i, w := range want {
		if finished[i] != w {
			t.Fatalf("finished = %v", finished)
		}
	}
	if r.BusyTime() != 30*time.Millisecond {
		t.Fatalf("busy = %v", r.BusyTime())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := New(1)
	r := e.NewResource("r", 1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn(time.Duration(i)*time.Microsecond, func(p *Proc) {
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(time.Millisecond)
			r.Release()
		})
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestMultiSlotResource(t *testing.T) {
	e := New(1)
	r := e.NewResource("r", 2)
	var finished []time.Duration
	for i := 0; i < 4; i++ {
		e.Spawn(0, func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			finished = append(finished, p.Now())
		})
	}
	e.RunAll()
	// Two at a time: completions at 10,10,20,20ms.
	if finished[1] != 10*time.Millisecond || finished[3] != 20*time.Millisecond {
		t.Fatalf("finished = %v", finished)
	}
}

func TestEDFOrdersByDeadline(t *testing.T) {
	e := New(1)
	r := e.NewResourceDisc("disk", 1, EDF)
	var order []string
	// A long-running holder, then three waiters with distinct deadlines
	// arriving in reverse-deadline order.
	e.Spawn(0, func(p *Proc) {
		r.Acquire(p)
		p.Sleep(10 * time.Millisecond)
		r.Release()
	})
	type req struct {
		name     string
		deadline time.Duration
		arrive   time.Duration
	}
	for _, q := range []req{
		{"late", 90 * time.Millisecond, 1 * time.Millisecond},
		{"mid", 50 * time.Millisecond, 2 * time.Millisecond},
		{"urgent", 20 * time.Millisecond, 3 * time.Millisecond},
	} {
		q := q
		e.Spawn(q.arrive, func(p *Proc) {
			r.AcquireDeadline(p, q.deadline)
			order = append(order, q.name)
			p.Sleep(time.Millisecond)
			r.Release()
		})
	}
	e.RunAll()
	want := []string{"urgent", "mid", "late"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEDFTieBreaksFIFO(t *testing.T) {
	e := New(1)
	r := e.NewResourceDisc("r", 1, EDF)
	var order []int
	e.Spawn(0, func(p *Proc) {
		r.Acquire(p)
		p.Sleep(5 * time.Millisecond)
		r.Release()
	})
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(time.Duration(i+1)*time.Microsecond, func(p *Proc) {
			r.AcquireDeadline(p, 42*time.Millisecond)
			order = append(order, i)
			r.Release()
		})
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestGateJoin(t *testing.T) {
	e := New(1)
	g := e.NewGate()
	g.Add(3)
	var joined time.Duration
	e.Spawn(0, func(p *Proc) {
		g.Wait(p)
		joined = p.Now()
	})
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * time.Millisecond
		e.Spawn(0, func(p *Proc) {
			p.Sleep(d)
			g.Done()
		})
	}
	e.RunAll()
	if joined != 3*time.Millisecond {
		t.Fatalf("joined at %v", joined)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := New(1)
	var child time.Duration
	e.Spawn(0, func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		e.Go(func(q *Proc) {
			q.Sleep(2 * time.Millisecond)
			child = q.Now()
		})
	})
	e.RunAll()
	if child != 7*time.Millisecond {
		t.Fatalf("child at %v", child)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() time.Duration {
		e := New(42)
		r := e.NewResource("r", 1)
		var last time.Duration
		for i := 0; i < 50; i++ {
			e.Spawn(0, func(p *Proc) {
				d := time.Duration(e.Rand().Intn(1000)) * time.Microsecond
				p.Sleep(d)
				r.Use(p, d/2)
				last = p.Now()
			})
		}
		e.RunAll()
		return last
	}
	if run() != run() {
		t.Fatal("simulation is not deterministic")
	}
}
