package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hammers the packet decoder with arbitrary bytes: it must
// never panic, and anything it accepts must re-marshal to the same bytes.
func FuzzUnmarshal(f *testing.F) {
	seed := func(p *Packet) {
		buf, err := Marshal(p)
		if err == nil {
			f.Add(buf)
		}
	}
	seed(&Packet{Header: Header{Type: TOpen}, Payload: AppendOpenRequest(nil, &OpenRequest{Name: "x"})})
	seed(&Packet{Header: Header{Type: TData, ReqID: 7, Handle: 9, Offset: 1 << 30, Length: 100}, Payload: bytes.Repeat([]byte{0xA5}, 100)})
	seed(&Packet{Header: Header{Type: TResend}, Payload: AppendResend(nil, []Range{{1, 2}})})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x53, 0x57}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		if err := Unmarshal(data, &p); err != nil {
			return
		}
		// Accepted packets round trip byte-for-byte.
		out, err := Marshal(&p)
		if err != nil {
			t.Fatalf("remarshal of accepted packet failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("roundtrip mismatch:\n in: %x\nout: %x", data, out)
		}
		// And the control payload parsers must not panic on it either.
		switch p.Type {
		case TOpen, TStat, TRemove:
			ParseOpenRequest(p.Payload)
		case TOpenReply:
			ParseOpenReply(p.Payload)
		case TStatReply:
			ParseStatReply(p.Payload)
		case TResend:
			ParseResend(p.Payload)
		case TListReply:
			ParseNames(p.Payload)
		case TError:
			ParseError(p.Payload)
		}
	})
}
