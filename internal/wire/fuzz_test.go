package wire

import (
	"bytes"
	"testing"

	"swift/internal/obs"
)

// FuzzUnmarshal hammers the packet decoder with arbitrary bytes: it must
// never panic, and anything it accepts must re-marshal to the same bytes.
func FuzzUnmarshal(f *testing.F) {
	seed := func(p *Packet) {
		buf, err := Marshal(p)
		if err == nil {
			f.Add(buf)
		}
	}
	seed(&Packet{Header: Header{Type: TOpen}, Payload: AppendOpenRequest(nil, &OpenRequest{Name: "x"})})
	seed(&Packet{Header: Header{Type: TData, ReqID: 7, Handle: 9, Offset: 1 << 30, Length: 100}, Payload: bytes.Repeat([]byte{0xA5}, 100)})
	seed(&Packet{Header: Header{Type: TResend}, Payload: AppendResend(nil, []Range{{1, 2}})})
	// Traced (version-2) packets: the 17-byte trace extension between
	// header and payload, with and without payload, sampled and not.
	ctx := obs.SpanContext{TraceID: 0x1122334455667788, SpanID: 0x99aabbccddeeff01, Flags: obs.SpanSampled}
	seed(&Packet{Header: Header{Type: TRead, ReqID: 3, Offset: 8192, Length: 65536}, Trace: ctx})
	seed(&Packet{Header: Header{Type: TWrite, ReqID: 4, Length: 100}, Trace: obs.SpanContext{TraceID: 1, SpanID: 2}, Payload: []byte("wb")})
	seed(&Packet{Header: Header{Type: TMedOpen}, Trace: ctx, Payload: AppendMedOpenRequest(nil, &MedOpenRequest{Rate: 1e6, Key: "t"})})
	// Deadlined (version-3) and dual-extension (version-4) packets: the
	// 8-byte remaining-budget extension rides after the trace extension.
	seed(&Packet{Header: Header{Type: TRead, ReqID: 8, Offset: 4096, Length: 8192}, Deadline: 250000000})
	seed(&Packet{Header: Header{Type: TMedOpen}, Trace: ctx, Deadline: 1 << 32, Payload: AppendMedOpenRequest(nil, &MedOpenRequest{Rate: 1e6, Key: "t"})})
	seed(&Packet{Header: Header{Type: TPushback, ReqID: 5}, Payload: AppendPushback(nil, &PushbackInfo{Reason: PushQueueFull, RetryAfter: 40000000})})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x53, 0x57}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		if err := Unmarshal(data, &p); err != nil {
			return
		}
		// Accepted packets round trip byte-for-byte.
		out, err := Marshal(&p)
		if err != nil {
			t.Fatalf("remarshal of accepted packet failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("roundtrip mismatch:\n in: %x\nout: %x", data, out)
		}
		// And the control payload parsers must not panic on it either.
		switch p.Type {
		case TOpen, TStat, TRemove:
			ParseOpenRequest(p.Payload)
		case TOpenReply:
			ParseOpenReply(p.Payload)
		case TStatReply:
			ParseStatReply(p.Payload)
		case TResend:
			ParseResend(p.Payload)
		case TListReply:
			ParseNames(p.Payload)
		case TPingReply:
			ParsePingReply(p.Payload)
		case TError:
			ParseError(p.Payload)
		case TPushback:
			ParsePushback(p.Payload)
		}
	})
}

// FuzzControlPayloads hammers every control-payload parser directly with
// arbitrary bytes — no packet framing or CRC to hide behind, which is
// exactly what a corruption burst that happens to preserve the frame check
// would deliver. No parser may panic, and anything a parser accepts must
// survive a re-encode/re-parse round trip unchanged.
func FuzzControlPayloads(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendOpenRequest(nil, &OpenRequest{Name: "obj"}))
	f.Add(AppendOpenReply(nil, &OpenReply{Port: "data9", Size: 1 << 40}))
	f.Add(AppendStatReply(nil, &StatReply{Size: 12345, Exists: true}))
	f.Add(AppendResend(nil, []Range{{0, 4096}, {1 << 20, 512}}))
	names, _ := AppendNames(nil, []string{"a", "bb", "ccc"})
	f.Add(names)
	f.Add(AppendPingReply(nil, &PingReply{Objects: 3, Sessions: 2, Bytes: 1 << 33}))
	f.Add(AppendError(nil, "no such object"))
	f.Add(AppendMedOpenRequest(nil, &MedOpenRequest{Rate: 1e6, Redundancy: true, ParityShards: 2, Key: "tenant-a"}))
	rec := MedRecord{
		ID: 0x1234000000000007, Key: "tenant-a", Home: "med-b", Expires: 1 << 60,
		Unit: 65536, Parity: true, Shards: 2, Rate: 1e6,
		Agents: []uint16{0, 2, 3, 5, 6}, Addrs: []string{"h0:9000", "h2:9000", "h3:9000", "h5:9000", "h6:9000"},
	}
	f.Add(AppendMedRecord(nil, &rec))
	f.Add(AppendMedMirror(nil, &MedMirror{Op: 1, From: "med-a", Rec: rec}))
	f.Add(AppendMedHome(nil, &MedHome{Home: "med-c"}))
	f.Add(AppendMedStatus(nil, &MedStatus{
		Name: "med-a", Role: "draining", Sessions: 4, HomeSessions: 2,
		LastHandoff: 99, Failovers: 1, Handoffs: 2, Expirations: 0,
		AgentReserved: []float64{0.5, 0, 1}, NetReserved: []float64{0.25},
	}))
	f.Add(AppendPushback(nil, &PushbackInfo{Reason: PushOverQuota, RetryAfter: 123456789}))
	f.Add([]byte{0xFF, 0xFF}) // huge length prefixes with no body
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	// Trace-context-shaped bytes (a version-2 extension: 8+8+1) fed to
	// every payload parser — corruption can slide the extension into the
	// payload window, and no parser may choke on it.
	f.Add([]byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88,
		0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x01, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := ParseOpenRequest(data); err == nil {
			if r2, err := ParseOpenRequest(AppendOpenRequest(nil, &r)); err != nil || r2 != r {
				t.Fatalf("OpenRequest roundtrip: %+v -> %+v, %v", r, r2, err)
			}
		}
		if r, err := ParseOpenReply(data); err == nil {
			if r2, err := ParseOpenReply(AppendOpenReply(nil, &r)); err != nil || r2 != r {
				t.Fatalf("OpenReply roundtrip: %+v -> %+v, %v", r, r2, err)
			}
		}
		if r, err := ParseStatReply(data); err == nil {
			if r2, err := ParseStatReply(AppendStatReply(nil, &r)); err != nil || r2 != r {
				t.Fatalf("StatReply roundtrip: %+v -> %+v, %v", r, r2, err)
			}
		}
		if rs, err := ParseResend(data); err == nil && len(rs) <= MaxResendRanges {
			rs2, err := ParseResend(AppendResend(nil, rs))
			if err != nil || len(rs2) != len(rs) {
				t.Fatalf("Resend roundtrip: %d ranges -> %d, %v", len(rs), len(rs2), err)
			}
			for i := range rs {
				if rs[i] != rs2[i] {
					t.Fatalf("Resend range %d: %+v -> %+v", i, rs[i], rs2[i])
				}
			}
		}
		if ns, err := ParseNames(data); err == nil {
			enc, count := AppendNames(nil, ns)
			if count == len(ns) {
				ns2, err := ParseNames(enc)
				if err != nil || len(ns2) != len(ns) {
					t.Fatalf("Names roundtrip: %d -> %d, %v", len(ns), len(ns2), err)
				}
				for i := range ns {
					if ns[i] != ns2[i] {
						t.Fatalf("Name %d: %q -> %q", i, ns[i], ns2[i])
					}
				}
			}
		}
		if r, err := ParsePingReply(data); err == nil {
			if r2, err := ParsePingReply(AppendPingReply(nil, &r)); err != nil || r2 != r {
				t.Fatalf("PingReply roundtrip: %+v -> %+v, %v", r, r2, err)
			}
		}
		// The mediator control-plane payloads contain floats (NaN != NaN)
		// and slices, so round trips compare the re-encoded bytes: encode
		// must be a fixed point after one parse.
		if r, err := ParseMedOpenRequest(data); err == nil {
			b1 := AppendMedOpenRequest(nil, &r)
			r2, err := ParseMedOpenRequest(b1)
			if err != nil || !bytes.Equal(b1, AppendMedOpenRequest(nil, &r2)) {
				t.Fatalf("MedOpenRequest roundtrip: %+v, %v", r, err)
			}
		}
		if r, err := ParseMedRecord(data); err == nil {
			b1 := AppendMedRecord(nil, &r)
			r2, err := ParseMedRecord(b1)
			if err != nil || !bytes.Equal(b1, AppendMedRecord(nil, &r2)) {
				t.Fatalf("MedRecord roundtrip: %+v, %v", r, err)
			}
		}
		if u, err := ParseMedMirror(data); err == nil {
			b1 := AppendMedMirror(nil, &u)
			u2, err := ParseMedMirror(b1)
			if err != nil || !bytes.Equal(b1, AppendMedMirror(nil, &u2)) {
				t.Fatalf("MedMirror roundtrip: %+v, %v", u, err)
			}
		}
		if h, err := ParseMedHome(data); err == nil {
			if h2, err := ParseMedHome(AppendMedHome(nil, &h)); err != nil || h2 != h {
				t.Fatalf("MedHome roundtrip: %+v -> %+v, %v", h, h2, err)
			}
		}
		if s, err := ParseMedStatus(data); err == nil {
			b1 := AppendMedStatus(nil, &s)
			s2, err := ParseMedStatus(b1)
			if err != nil || !bytes.Equal(b1, AppendMedStatus(nil, &s2)) {
				t.Fatalf("MedStatus roundtrip: %+v, %v", s, err)
			}
		}
		if pb, err := ParsePushback(data); err == nil {
			if pb2, err := ParsePushback(AppendPushback(nil, &pb)); err != nil || pb2 != pb {
				t.Fatalf("Pushback roundtrip: %+v -> %+v, %v", pb, pb2, err)
			}
		}
		// ParseError returns an error value either way: a RemoteError for
		// well-formed payloads, a wrapped ErrShortPayload otherwise —
		// never nil, never a panic.
		if err := ParseError(data); err == nil {
			t.Fatal("ParseError returned nil")
		}
	})
}
