package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hammers the packet decoder with arbitrary bytes: it must
// never panic, and anything it accepts must re-marshal to the same bytes.
func FuzzUnmarshal(f *testing.F) {
	seed := func(p *Packet) {
		buf, err := Marshal(p)
		if err == nil {
			f.Add(buf)
		}
	}
	seed(&Packet{Header: Header{Type: TOpen}, Payload: AppendOpenRequest(nil, &OpenRequest{Name: "x"})})
	seed(&Packet{Header: Header{Type: TData, ReqID: 7, Handle: 9, Offset: 1 << 30, Length: 100}, Payload: bytes.Repeat([]byte{0xA5}, 100)})
	seed(&Packet{Header: Header{Type: TResend}, Payload: AppendResend(nil, []Range{{1, 2}})})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x53, 0x57}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		if err := Unmarshal(data, &p); err != nil {
			return
		}
		// Accepted packets round trip byte-for-byte.
		out, err := Marshal(&p)
		if err != nil {
			t.Fatalf("remarshal of accepted packet failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("roundtrip mismatch:\n in: %x\nout: %x", data, out)
		}
		// And the control payload parsers must not panic on it either.
		switch p.Type {
		case TOpen, TStat, TRemove:
			ParseOpenRequest(p.Payload)
		case TOpenReply:
			ParseOpenReply(p.Payload)
		case TStatReply:
			ParseStatReply(p.Payload)
		case TResend:
			ParseResend(p.Payload)
		case TListReply:
			ParseNames(p.Payload)
		case TPingReply:
			ParsePingReply(p.Payload)
		case TError:
			ParseError(p.Payload)
		}
	})
}

// FuzzControlPayloads hammers every control-payload parser directly with
// arbitrary bytes — no packet framing or CRC to hide behind, which is
// exactly what a corruption burst that happens to preserve the frame check
// would deliver. No parser may panic, and anything a parser accepts must
// survive a re-encode/re-parse round trip unchanged.
func FuzzControlPayloads(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendOpenRequest(nil, &OpenRequest{Name: "obj"}))
	f.Add(AppendOpenReply(nil, &OpenReply{Port: "data9", Size: 1 << 40}))
	f.Add(AppendStatReply(nil, &StatReply{Size: 12345, Exists: true}))
	f.Add(AppendResend(nil, []Range{{0, 4096}, {1 << 20, 512}}))
	names, _ := AppendNames(nil, []string{"a", "bb", "ccc"})
	f.Add(names)
	f.Add(AppendPingReply(nil, &PingReply{Objects: 3, Sessions: 2, Bytes: 1 << 33}))
	f.Add(AppendError(nil, "no such object"))
	f.Add([]byte{0xFF, 0xFF}) // huge length prefixes with no body
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := ParseOpenRequest(data); err == nil {
			if r2, err := ParseOpenRequest(AppendOpenRequest(nil, &r)); err != nil || r2 != r {
				t.Fatalf("OpenRequest roundtrip: %+v -> %+v, %v", r, r2, err)
			}
		}
		if r, err := ParseOpenReply(data); err == nil {
			if r2, err := ParseOpenReply(AppendOpenReply(nil, &r)); err != nil || r2 != r {
				t.Fatalf("OpenReply roundtrip: %+v -> %+v, %v", r, r2, err)
			}
		}
		if r, err := ParseStatReply(data); err == nil {
			if r2, err := ParseStatReply(AppendStatReply(nil, &r)); err != nil || r2 != r {
				t.Fatalf("StatReply roundtrip: %+v -> %+v, %v", r, r2, err)
			}
		}
		if rs, err := ParseResend(data); err == nil && len(rs) <= MaxResendRanges {
			rs2, err := ParseResend(AppendResend(nil, rs))
			if err != nil || len(rs2) != len(rs) {
				t.Fatalf("Resend roundtrip: %d ranges -> %d, %v", len(rs), len(rs2), err)
			}
			for i := range rs {
				if rs[i] != rs2[i] {
					t.Fatalf("Resend range %d: %+v -> %+v", i, rs[i], rs2[i])
				}
			}
		}
		if ns, err := ParseNames(data); err == nil {
			enc, count := AppendNames(nil, ns)
			if count == len(ns) {
				ns2, err := ParseNames(enc)
				if err != nil || len(ns2) != len(ns) {
					t.Fatalf("Names roundtrip: %d -> %d, %v", len(ns), len(ns2), err)
				}
				for i := range ns {
					if ns[i] != ns2[i] {
						t.Fatalf("Name %d: %q -> %q", i, ns[i], ns2[i])
					}
				}
			}
		}
		if r, err := ParsePingReply(data); err == nil {
			if r2, err := ParsePingReply(AppendPingReply(nil, &r)); err != nil || r2 != r {
				t.Fatalf("PingReply roundtrip: %+v -> %+v, %v", r, r2, err)
			}
		}
		// ParseError returns an error value either way: a RemoteError for
		// well-formed payloads, a wrapped ErrShortPayload otherwise —
		// never nil, never a panic.
		if err := ParseError(data); err == nil {
			t.Fatal("ParseError returned nil")
		}
	})
}
