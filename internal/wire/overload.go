package wire

import (
	"encoding/binary"
	"fmt"
	"time"
)

// PushbackReason says why an agent refused (rather than failed) a
// request — the distinction matters to the client, which must treat
// pushback as backpressure, never as agent sickness.
type PushbackReason uint8

// Pushback reasons.
const (
	// PushQueueFull: the agent's bounded service queue is over its
	// admission quota; the request was shed before any work was done.
	PushQueueFull PushbackReason = iota + 1
	// PushDeadlineExpired: the request's propagated deadline had already
	// lapsed when the agent dequeued it — serving it would burn capacity
	// on an answer nobody is waiting for.
	PushDeadlineExpired
	// PushOverQuota: the requester exceeded its share of the agent's
	// capacity under contention.
	PushOverQuota
)

func (r PushbackReason) String() string {
	switch r {
	case PushQueueFull:
		return "queue-full"
	case PushDeadlineExpired:
		return "deadline-expired"
	case PushOverQuota:
		return "over-quota"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// PushbackInfo is the body of a TPushback reply: why the request was
// shed and how long the client should wait before offering the agent
// more work.
type PushbackInfo struct {
	Reason PushbackReason
	// RetryAfter is the agent's pacing hint; zero means "retry at the
	// client's own backoff schedule".
	RetryAfter time.Duration
}

// AppendPushback encodes p.
func AppendPushback(dst []byte, p *PushbackInfo) []byte {
	dst = append(dst, uint8(p.Reason))
	ra := p.RetryAfter
	if ra < 0 {
		ra = 0
	}
	return binary.BigEndian.AppendUint64(dst, uint64(ra))
}

// ParsePushback decodes a TPushback payload.
func ParsePushback(b []byte) (PushbackInfo, error) {
	if len(b) < 9 {
		return PushbackInfo{}, ErrShortPayload
	}
	ra := binary.BigEndian.Uint64(b[1:9])
	if ra > uint64(maxDuration) {
		return PushbackInfo{}, fmt.Errorf("wire: pushback retry-after %d overflows a duration", ra)
	}
	return PushbackInfo{
		Reason:     PushbackReason(b[0]),
		RetryAfter: time.Duration(ra),
	}, nil
}
