package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"swift/internal/obs"
)

func TestRoundTrip(t *testing.T) {
	p := &Packet{
		Header: Header{
			Type: TData, ReqID: 42, Handle: 7, Offset: 123456789,
			Length: 999, Flags: FLast,
		},
		Payload: []byte("hello striped world"),
	}
	buf, err := Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var q Packet
	if err := Unmarshal(buf, &q); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if q.Header != p.Header || !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", q, p)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(typ uint8, reqID uint32, handle uint64, off int64, length uint32, flags uint16, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		if off < 0 {
			off = -off
		}
		p := &Packet{
			Header: Header{
				Type: Type(typ), ReqID: reqID, Handle: handle,
				Offset: off, Length: length, Flags: flags,
			},
			Payload: payload,
		}
		buf, err := Marshal(p)
		if err != nil {
			return false
		}
		if len(buf) > MaxPacket {
			return false
		}
		var q Packet
		if err := Unmarshal(buf, &q); err != nil {
			return false
		}
		return q.Header == p.Header && bytes.Equal(q.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	p := &Packet{Payload: make([]byte, MaxPayload+1)}
	if _, err := Marshal(p); err != ErrOversize {
		t.Fatalf("err = %v, want ErrOversize", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	p := &Packet{Header: Header{Type: TRead, ReqID: 1}, Payload: []byte("abcdef")}
	good, _ := Marshal(p)
	rng := rand.New(rand.NewSource(42))
	var q Packet
	for i := 0; i < 200; i++ {
		buf := append([]byte(nil), good...)
		buf[rng.Intn(len(buf))] ^= 1 << uint(rng.Intn(8))
		if err := Unmarshal(buf, &q); err == nil {
			t.Fatalf("flip %d: corruption not detected", i)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	p := &Packet{Header: Header{Type: TRead}, Payload: []byte("abcdef")}
	good, _ := Marshal(p)
	var q Packet
	for n := 0; n < len(good); n++ {
		if err := Unmarshal(good[:n], &q); err == nil {
			t.Fatalf("truncation to %d bytes not detected", n)
		}
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	p := &Packet{Header: Header{Type: TRead}}
	good, _ := Marshal(p)
	var q Packet

	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if err := Unmarshal(bad, &q); err != ErrBadMagic {
		t.Fatalf("bad magic: err = %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[2] = 99
	if err := Unmarshal(bad, &q); err != ErrBadVersion {
		t.Fatalf("bad version: err = %v", err)
	}
}

func TestOpenPayloads(t *testing.T) {
	req := &OpenRequest{Name: "videos/clip.mpg"}
	b := AppendOpenRequest(nil, req)
	got, err := ParseOpenRequest(b)
	if err != nil || got != *req {
		t.Fatalf("open request: %v %v", got, err)
	}

	rep := &OpenReply{Port: "40123", Size: 1 << 33}
	b = AppendOpenReply(nil, rep)
	gr, err := ParseOpenReply(b)
	if err != nil || gr != *rep {
		t.Fatalf("open reply: %v %v", gr, err)
	}
}

func TestStatReplyPayload(t *testing.T) {
	for _, exists := range []bool{true, false} {
		b := AppendStatReply(nil, &StatReply{Size: 12345, Exists: exists})
		got, err := ParseStatReply(b)
		if err != nil || got.Size != 12345 || got.Exists != exists {
			t.Fatalf("stat reply: %+v %v", got, err)
		}
	}
}

func TestResendPayload(t *testing.T) {
	in := []Range{{0, 100}, {500, 1364}, {1 << 40, 7}}
	b := AppendResend(nil, in)
	out, err := ParseResend(b)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("range %d = %v, want %v", i, out[i], in[i])
		}
	}
}

func TestResendCapped(t *testing.T) {
	in := make([]Range, MaxResendRanges+50)
	b := AppendResend(nil, in)
	if len(b) > MaxPayload {
		t.Fatalf("resend payload %d exceeds MaxPayload", len(b))
	}
	out, err := ParseResend(b)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(out) != MaxResendRanges {
		t.Fatalf("len = %d, want %d", len(out), MaxResendRanges)
	}
}

func TestErrorPayload(t *testing.T) {
	b := AppendError(nil, "fragment missing")
	err := ParseError(b)
	if err == nil || err.Error() != "agent: fragment missing" {
		t.Fatalf("error = %v", err)
	}
}

func TestShortControlPayloads(t *testing.T) {
	if _, err := ParseOpenReply([]byte{0, 3, 'a'}); err == nil {
		t.Fatal("short open reply accepted")
	}
	if _, err := ParseStatReply([]byte{1, 2}); err == nil {
		t.Fatal("short stat reply accepted")
	}
	if _, err := ParseResend([]byte{0, 9}); err == nil {
		t.Fatal("short resend accepted")
	}
}

func TestNamesPayload(t *testing.T) {
	names := []string{"a", "videos/clip.mpg", "", "z"}
	b, consumed := AppendNames(nil, names)
	if consumed != len(names) {
		t.Fatalf("consumed = %d", consumed)
	}
	got, err := ParseNames(b)
	if err != nil || len(got) != len(names) {
		t.Fatalf("parse: %v %v", got, err)
	}
	for i := range names {
		if got[i] != names[i] {
			t.Fatalf("name %d = %q", i, got[i])
		}
	}
}

func TestNamesPayloadCapacity(t *testing.T) {
	// More names than fit in one packet: AppendNames must stop at the
	// payload limit and report how many it consumed.
	var names []string
	for i := 0; i < 2000; i++ {
		names = append(names, fmt.Sprintf("object-%04d-with-padding-padding", i))
	}
	b, consumed := AppendNames(nil, names)
	if len(b) > MaxPayload {
		t.Fatalf("payload %d exceeds max", len(b))
	}
	if consumed == 0 || consumed >= len(names) {
		t.Fatalf("consumed = %d of %d", consumed, len(names))
	}
	got, err := ParseNames(b)
	if err != nil || len(got) != consumed {
		t.Fatalf("parse: %d, %v", len(got), err)
	}
	// The remainder fits in subsequent packets.
	rest := names[consumed:]
	total := consumed
	for len(rest) > 0 {
		_, c := AppendNames(nil, rest)
		if c == 0 {
			t.Fatal("no progress")
		}
		total += c
		rest = rest[c:]
	}
	if total != len(names) {
		t.Fatalf("total consumed %d != %d", total, len(names))
	}
}

func TestPingReplyPayload(t *testing.T) {
	in := &PingReply{Objects: 42, Sessions: 7, Bytes: 9 << 30}
	b := AppendPingReply(nil, in)
	got, err := ParsePingReply(b)
	if err != nil || got != *in {
		t.Fatalf("ping reply = %+v, %v", got, err)
	}
	if _, err := ParsePingReply(b[:15]); err == nil {
		t.Fatal("short ping reply accepted")
	}
}

func TestParseNamesShort(t *testing.T) {
	if _, err := ParseNames([]byte{0}); err == nil {
		t.Fatal("short names accepted")
	}
	if _, err := ParseNames([]byte{0, 2, 0, 9, 'x'}); err == nil {
		t.Fatal("truncated name accepted")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	p := &Packet{
		Header: Header{Type: TRead, ReqID: 9, Handle: 3, Offset: 4096, Length: 65536},
		Trace:  obs.SpanContext{TraceID: 0xdeadbeefcafef00d, SpanID: 0x0123456789abcdef, Flags: obs.SpanSampled},
	}
	buf, err := Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if buf[2] != VersionTraced {
		t.Fatalf("version = %d, want %d", buf[2], VersionTraced)
	}
	if len(buf) != HeaderSize+TraceExtSize+TrailerSize {
		t.Fatalf("len = %d, want %d", len(buf), HeaderSize+TraceExtSize+TrailerSize)
	}
	var q Packet
	if err := Unmarshal(buf, &q); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if q.Header != p.Header || q.Trace != p.Trace {
		t.Fatalf("round trip mismatch: %+v vs %+v", q, p)
	}
	if !q.Trace.Sampled() {
		t.Fatal("sampled flag lost")
	}
}

// TestUntracedByteIdentical pins wire compatibility: a packet without a
// trace context must encode byte for byte as the pre-tracing (version 1)
// protocol did, so old peers keep decoding new traffic.
func TestUntracedByteIdentical(t *testing.T) {
	p := &Packet{
		Header:  Header{Type: TWrite, ReqID: 7, Handle: 11, Offset: 1 << 20, Length: 4096, Flags: FSyncWrite},
		Payload: []byte("payload bytes"),
	}
	got, err := Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	// The version-1 encoding, built by hand from the documented layout.
	want := make([]byte, 0, HeaderSize+len(p.Payload)+TrailerSize)
	var hdr [HeaderSize]byte
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = Version
	hdr[3] = uint8(p.Type)
	binary.BigEndian.PutUint32(hdr[4:8], p.ReqID)
	binary.BigEndian.PutUint64(hdr[8:16], p.Handle)
	binary.BigEndian.PutUint64(hdr[16:24], uint64(p.Offset))
	binary.BigEndian.PutUint32(hdr[24:28], p.Length)
	binary.BigEndian.PutUint16(hdr[28:30], p.Flags)
	binary.BigEndian.PutUint16(hdr[30:32], uint16(len(p.Payload)))
	want = append(want, hdr[:]...)
	want = append(want, p.Payload...)
	var tr [TrailerSize]byte
	binary.BigEndian.PutUint32(tr[:], crc32.ChecksumIEEE(want))
	want = append(want, tr[:]...)
	if !bytes.Equal(got, want) {
		t.Fatalf("untraced encoding differs from version-1 layout:\ngot:  %x\nwant: %x", got, want)
	}
}

func TestTracedPayloadCeiling(t *testing.T) {
	ctx := obs.SpanContext{TraceID: 1, SpanID: 2}
	p := &Packet{Trace: ctx, Payload: make([]byte, MaxTracedPayload)}
	buf, err := Marshal(p)
	if err != nil {
		t.Fatalf("max traced payload rejected: %v", err)
	}
	if len(buf) > MaxPacket {
		t.Fatalf("traced packet %d exceeds MaxPacket", len(buf))
	}
	p.Payload = make([]byte, MaxTracedPayload+1)
	if _, err := Marshal(p); err != ErrOversize {
		t.Fatalf("err = %v, want ErrOversize", err)
	}
	// The same payload fits untraced.
	p.Trace = obs.SpanContext{}
	if _, err := Marshal(p); err != nil {
		t.Fatalf("untraced MaxPayload-1 rejected: %v", err)
	}
}

func TestTracedZeroIDRejected(t *testing.T) {
	// A version-2 packet whose trace id is zero cannot round-trip (it
	// would re-encode as version 1), so the decoder rejects it.
	p := &Packet{Header: Header{Type: TRead}, Trace: obs.SpanContext{TraceID: 1, SpanID: 2}}
	buf, _ := Marshal(p)
	for i := HeaderSize; i < HeaderSize+8; i++ {
		buf[i] = 0
	}
	body := buf[:len(buf)-TrailerSize]
	binary.BigEndian.PutUint32(buf[len(buf)-TrailerSize:], crc32.ChecksumIEEE(body))
	var q Packet
	if err := Unmarshal(buf, &q); err != ErrBadVersion {
		t.Fatalf("zero-id traced packet: err = %v, want ErrBadVersion", err)
	}
}

// TestAppendPacketZeroAlloc pins the hot-path acceptance criterion: with
// no trace context attached, encode and decode of a full-size data packet
// into a reused buffer allocate nothing.
func TestAppendPacketZeroAlloc(t *testing.T) {
	payload := make([]byte, MaxPayload)
	p := &Packet{Header: Header{Type: TData, ReqID: 1, Handle: 2, Length: uint32(len(payload))}, Payload: payload}
	buf := make([]byte, 0, MaxPacket)
	var q Packet
	allocs := testing.AllocsPerRun(500, func() {
		out, err := AppendPacket(buf[:0], p)
		if err != nil {
			t.Fatal(err)
		}
		if err := Unmarshal(out, &q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("untraced encode+decode allocated %v per packet, want 0", allocs)
	}
}

func TestTypeString(t *testing.T) {
	if TData.String() != "data" || TOpen.String() != "open" {
		t.Fatal("type names wrong")
	}
	if Type(200).String() == "" {
		t.Fatal("unknown type produced empty string")
	}
	if TPushback.String() != "pushback" {
		t.Fatalf("TPushback = %q", TPushback.String())
	}
	if len(typeNames) != int(tMax) {
		t.Fatalf("typeNames has %d entries for %d types", len(typeNames), int(tMax))
	}
}

func TestDeadlineRoundTrip(t *testing.T) {
	p := &Packet{
		Header:   Header{Type: TRead, ReqID: 12, Handle: 5, Offset: 8192, Length: 32768},
		Deadline: 250 * time.Millisecond,
	}
	buf, err := Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if buf[2] != VersionDeadline {
		t.Fatalf("version = %d, want %d", buf[2], VersionDeadline)
	}
	if len(buf) != HeaderSize+DeadlineExtSize+TrailerSize {
		t.Fatalf("len = %d, want %d", len(buf), HeaderSize+DeadlineExtSize+TrailerSize)
	}
	var q Packet
	if err := Unmarshal(buf, &q); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if q.Header != p.Header || q.Deadline != p.Deadline || q.Trace.Valid() {
		t.Fatalf("round trip mismatch: %+v vs %+v", q, p)
	}
}

func TestTracedDeadlineRoundTrip(t *testing.T) {
	p := &Packet{
		Header:   Header{Type: TWrite, ReqID: 3, Handle: 1, Offset: 64, Length: 128},
		Trace:    obs.SpanContext{TraceID: 0xfeedface, SpanID: 0xabad1dea, Flags: obs.SpanSampled},
		Deadline: 2 * time.Second,
		Payload:  []byte("announce"),
	}
	buf, err := Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if buf[2] != VersionTracedDeadline {
		t.Fatalf("version = %d, want %d", buf[2], VersionTracedDeadline)
	}
	if len(buf) != HeaderSize+TraceExtSize+DeadlineExtSize+len(p.Payload)+TrailerSize {
		t.Fatalf("len = %d", len(buf))
	}
	var q Packet
	if err := Unmarshal(buf, &q); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if q.Header != p.Header || q.Trace != p.Trace || q.Deadline != p.Deadline ||
		!bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", q, p)
	}
}

// TestDeadlineByteIdentical pins the version-3 layout byte for byte, and
// re-verifies that a packet with neither extension still encodes as the
// version-1 protocol — the compatibility discipline the trace extension
// established.
func TestDeadlineByteIdentical(t *testing.T) {
	p := &Packet{
		Header:   Header{Type: TRead, ReqID: 21, Handle: 9, Offset: 512, Length: 2048},
		Deadline: 125 * time.Millisecond,
		Payload:  []byte("xy"),
	}
	got, err := Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	want := make([]byte, 0, HeaderSize+DeadlineExtSize+len(p.Payload)+TrailerSize)
	var hdr [HeaderSize]byte
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = VersionDeadline
	hdr[3] = uint8(p.Type)
	binary.BigEndian.PutUint32(hdr[4:8], p.ReqID)
	binary.BigEndian.PutUint64(hdr[8:16], p.Handle)
	binary.BigEndian.PutUint64(hdr[16:24], uint64(p.Offset))
	binary.BigEndian.PutUint32(hdr[24:28], p.Length)
	binary.BigEndian.PutUint16(hdr[28:30], p.Flags)
	binary.BigEndian.PutUint16(hdr[30:32], uint16(len(p.Payload)))
	want = append(want, hdr[:]...)
	var ext [DeadlineExtSize]byte
	binary.BigEndian.PutUint64(ext[:], uint64(p.Deadline))
	want = append(want, ext[:]...)
	want = append(want, p.Payload...)
	var tr [TrailerSize]byte
	binary.BigEndian.PutUint32(tr[:], crc32.ChecksumIEEE(want))
	want = append(want, tr[:]...)
	if !bytes.Equal(got, want) {
		t.Fatalf("deadline encoding differs from documented layout:\ngot:  %x\nwant: %x", got, want)
	}
}

func TestDeadlineZeroBudgetRejected(t *testing.T) {
	// A version-3 packet with a zero budget cannot round-trip (it would
	// re-encode as version 1), so the decoder rejects it — the same
	// invariant as the zero trace id.
	p := &Packet{Header: Header{Type: TRead}, Deadline: time.Second}
	buf, _ := Marshal(p)
	for i := HeaderSize; i < HeaderSize+DeadlineExtSize; i++ {
		buf[i] = 0
	}
	body := buf[:len(buf)-TrailerSize]
	binary.BigEndian.PutUint32(buf[len(buf)-TrailerSize:], crc32.ChecksumIEEE(body))
	var q Packet
	if err := Unmarshal(buf, &q); err != ErrBadVersion {
		t.Fatalf("zero-budget packet: err = %v, want ErrBadVersion", err)
	}
	// An unrepresentable budget (top bit set) is rejected the same way.
	buf, _ = Marshal(p)
	buf[HeaderSize] = 0xFF
	body = buf[:len(buf)-TrailerSize]
	binary.BigEndian.PutUint32(buf[len(buf)-TrailerSize:], crc32.ChecksumIEEE(body))
	if err := Unmarshal(buf, &q); err != ErrBadVersion {
		t.Fatalf("overflow-budget packet: err = %v, want ErrBadVersion", err)
	}
}

func TestDeadlinePayloadCeiling(t *testing.T) {
	p := &Packet{Deadline: time.Second, Payload: make([]byte, MaxPayload-DeadlineExtSize)}
	buf, err := Marshal(p)
	if err != nil {
		t.Fatalf("max deadlined payload rejected: %v", err)
	}
	if len(buf) > MaxPacket {
		t.Fatalf("deadlined packet %d exceeds MaxPacket", len(buf))
	}
	p.Payload = append(p.Payload, 0)
	if _, err := Marshal(p); err != ErrOversize {
		t.Fatalf("err = %v, want ErrOversize", err)
	}
	p.Trace = obs.SpanContext{TraceID: 1, SpanID: 2}
	p.Payload = make([]byte, MaxExtPayload)
	if buf, err = Marshal(p); err != nil || len(buf) > MaxPacket {
		t.Fatalf("max dual-extension payload: %v (len %d)", err, len(buf))
	}
	p.Payload = append(p.Payload, 0)
	if _, err := Marshal(p); err != ErrOversize {
		t.Fatalf("err = %v, want ErrOversize", err)
	}
}

func TestPushbackPayload(t *testing.T) {
	for _, in := range []PushbackInfo{
		{Reason: PushQueueFull, RetryAfter: 40 * time.Millisecond},
		{Reason: PushDeadlineExpired},
		{Reason: PushOverQuota, RetryAfter: time.Second},
	} {
		b := AppendPushback(nil, &in)
		got, err := ParsePushback(b)
		if err != nil || got != in {
			t.Fatalf("pushback %+v: got %+v, %v", in, got, err)
		}
	}
	if _, err := ParsePushback([]byte{1, 0, 0}); err == nil {
		t.Fatal("short pushback accepted")
	}
	overflow := AppendPushback(nil, &PushbackInfo{Reason: PushQueueFull, RetryAfter: time.Second})
	overflow[1] = 0xFF
	if _, err := ParsePushback(overflow); err == nil {
		t.Fatal("overflowing retry-after accepted")
	}
	// A negative hint clamps to zero on encode.
	b := AppendPushback(nil, &PushbackInfo{Reason: PushQueueFull, RetryAfter: -time.Second})
	got, err := ParsePushback(b)
	if err != nil || got.RetryAfter != 0 {
		t.Fatalf("negative retry-after: %+v, %v", got, err)
	}
	if PushQueueFull.String() != "queue-full" || PushDeadlineExpired.String() != "deadline-expired" ||
		PushOverQuota.String() != "over-quota" {
		t.Fatal("pushback reason names wrong")
	}
}
