package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Payload codecs for the control messages whose bodies carry structured
// data. Data packets carry raw bytes and need no codec.

// ErrShortPayload reports a truncated control payload.
var ErrShortPayload = errors.New("wire: short control payload")

// OpenRequest is the body of a TOpen packet.
type OpenRequest struct {
	Name string // object name, as stored by the agent
}

// AppendOpenRequest encodes r.
func AppendOpenRequest(dst []byte, r *OpenRequest) []byte {
	return appendString(dst, r.Name)
}

// ParseOpenRequest decodes a TOpen payload.
func ParseOpenRequest(b []byte) (OpenRequest, error) {
	name, _, err := parseString(b)
	return OpenRequest{Name: name}, err
}

// OpenReply is the body of a TOpenReply packet.
type OpenReply struct {
	Port string // private port for further traffic on this file
	Size int64  // current fragment size in bytes
}

// AppendOpenReply encodes r.
func AppendOpenReply(dst []byte, r *OpenReply) []byte {
	dst = appendString(dst, r.Port)
	return binary.BigEndian.AppendUint64(dst, uint64(r.Size))
}

// ParseOpenReply decodes a TOpenReply payload.
func ParseOpenReply(b []byte) (OpenReply, error) {
	port, rest, err := parseString(b)
	if err != nil {
		return OpenReply{}, err
	}
	if len(rest) < 8 {
		return OpenReply{}, ErrShortPayload
	}
	return OpenReply{Port: port, Size: int64(binary.BigEndian.Uint64(rest))}, nil
}

// StatReply is the body of a TStatReply packet.
type StatReply struct {
	Size   int64
	Exists bool
}

// AppendStatReply encodes r.
func AppendStatReply(dst []byte, r *StatReply) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Size))
	if r.Exists {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// ParseStatReply decodes a TStatReply payload.
func ParseStatReply(b []byte) (StatReply, error) {
	if len(b) < 9 {
		return StatReply{}, ErrShortPayload
	}
	return StatReply{
		Size:   int64(binary.BigEndian.Uint64(b)),
		Exists: b[8] != 0,
	}, nil
}

// Range is a missing byte range carried in a TResend payload.
type Range struct {
	Off int64
	Len int64
}

// MaxResendRanges bounds the ranges in one TResend packet so the packet
// stays within MaxPayload.
const MaxResendRanges = (MaxPayload - 2) / 16

// AppendResend encodes a resend request listing missing ranges. If more
// than MaxResendRanges are supplied, only the first MaxResendRanges are
// encoded; the remainder will be discovered by a later round.
func AppendResend(dst []byte, ranges []Range) []byte {
	if len(ranges) > MaxResendRanges {
		ranges = ranges[:MaxResendRanges]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(ranges)))
	for _, r := range ranges {
		dst = binary.BigEndian.AppendUint64(dst, uint64(r.Off))
		dst = binary.BigEndian.AppendUint64(dst, uint64(r.Len))
	}
	return dst
}

// ParseResend decodes a TResend payload.
func ParseResend(b []byte) ([]Range, error) {
	if len(b) < 2 {
		return nil, ErrShortPayload
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n*16 {
		return nil, ErrShortPayload
	}
	out := make([]Range, n)
	for i := 0; i < n; i++ {
		out[i].Off = int64(binary.BigEndian.Uint64(b[i*16:]))
		out[i].Len = int64(binary.BigEndian.Uint64(b[i*16+8:]))
	}
	return out, nil
}

// AppendNames encodes as many of names as fit in one TListReply payload,
// returning the payload and the number of names consumed.
func AppendNames(dst []byte, names []string) ([]byte, int) {
	count := 0
	counterAt := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, 0)
	for _, n := range names {
		if len(dst)+2+len(n) > MaxPayload {
			break
		}
		dst = appendString(dst, n)
		count++
	}
	binary.BigEndian.PutUint16(dst[counterAt:], uint16(count))
	return dst, count
}

// ParseNames decodes a TListReply payload.
func ParseNames(b []byte) ([]string, error) {
	if len(b) < 2 {
		return nil, ErrShortPayload
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		s, rest, err := parseString(b)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		b = rest
	}
	return out, nil
}

// PingReply is the body of a TPingReply packet: an agent's status.
type PingReply struct {
	Objects  uint32 // objects in the store
	Sessions uint32 // open file sessions
	Bytes    int64  // total fragment bytes stored
}

// AppendPingReply encodes r.
func AppendPingReply(dst []byte, r *PingReply) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.Objects)
	dst = binary.BigEndian.AppendUint32(dst, r.Sessions)
	return binary.BigEndian.AppendUint64(dst, uint64(r.Bytes))
}

// ParsePingReply decodes a TPingReply payload.
func ParsePingReply(b []byte) (PingReply, error) {
	if len(b) < 16 {
		return PingReply{}, ErrShortPayload
	}
	return PingReply{
		Objects:  binary.BigEndian.Uint32(b),
		Sessions: binary.BigEndian.Uint32(b[4:]),
		Bytes:    int64(binary.BigEndian.Uint64(b[8:])),
	}, nil
}

// AppendError encodes a TError payload from a message string.
func AppendError(dst []byte, msg string) []byte { return appendString(dst, msg) }

// ParseError decodes a TError payload into an error value.
func ParseError(b []byte) error {
	msg, _, err := parseString(b)
	if err != nil {
		return fmt.Errorf("wire: malformed error payload: %w", err)
	}
	return &RemoteError{Msg: msg}
}

// RemoteError is an error reported by a storage agent.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "agent: " + e.Msg }

func appendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func parseString(b []byte) (s string, rest []byte, err error) {
	if len(b) < 2 {
		return "", nil, ErrShortPayload
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, ErrShortPayload
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}
