// Package wire defines the packet format of Swift's light-weight
// data-transfer protocol. The prototype in the paper abandoned TCP for a
// thin protocol layered directly on UDP datagrams: every packet is
// self-describing (type, file handle, request id, object offset, length),
// so the kernel can scatter-gather payloads directly into user buffers and
// either side can detect and re-request lost packets without per-packet
// acknowledgements.
//
// Packet layout (big endian):
//
//	offset size field
//	0      2    magic 0x5357 ("SW")
//	2      1    version (1 untraced, 2 traced)
//	3      1    type
//	4      4    request id
//	8      8    file handle
//	16     8    object offset
//	24     4    request length
//	28     2    flags
//	30     2    payload length
//	32     n    payload
//	32+n   4    CRC-32 (IEEE) over bytes [0, 32+n)
//
// A version-2 packet carries a 17-byte trace extension between the fixed
// header and the payload — the distributed-tracing context (trace id,
// parent span id, flag bits) minted at the client op and joined by each
// hop:
//
//	offset size field          (version 2 only)
//	32     8    trace id
//	40     8    span id
//	48     1    trace flags (bit 0: head-sampled)
//	49     n    payload
//	49+n   4    CRC-32 (IEEE) over bytes [0, 49+n)
//
// A version-3 packet carries an 8-byte deadline extension instead: the
// request's remaining time budget in nanoseconds, measured at send time.
// The budget travels as a relative duration — not an absolute wall-clock
// instant — so hops need no clock synchronization; each receiver anchors
// it against its own clock at receipt and can refuse work that is
// already dead (see TPushback). Version 4 carries both extensions, trace
// first:
//
//	offset size field          (version 4; version 3 omits bytes 32..49)
//	32     17   trace extension (as version 2)
//	49     8    deadline: remaining budget in nanoseconds (nonzero)
//	57     n    payload
//	57+n   4    CRC-32 (IEEE) over bytes [0, 57+n)
//
// Packets without a trace context or deadline are always emitted as
// version 1, byte for byte identical to the pre-tracing protocol, so old
// peers keep decoding them; only control packets ever carry extensions —
// data packets (TData) stay version 1 so the per-packet hot path never
// pays for them.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"swift/internal/obs"
)

// Protocol constants.
const (
	Magic   = 0x5357 // "SW"
	Version = 1
	// VersionTraced marks a packet carrying the trace extension.
	VersionTraced = 2
	// VersionDeadline marks a packet carrying the deadline extension.
	VersionDeadline = 3
	// VersionTracedDeadline marks a packet carrying both extensions
	// (trace first, then deadline).
	VersionTracedDeadline = 4

	// HeaderSize is the fixed header length in bytes.
	HeaderSize = 32
	// TraceExtSize is the length of the version-2 trace extension.
	TraceExtSize = 17
	// DeadlineExtSize is the length of the deadline extension: the
	// remaining request budget in nanoseconds.
	DeadlineExtSize = 8
	// TrailerSize is the CRC trailer length in bytes.
	TrailerSize = 4
	// MaxPacket is the largest datagram the protocol emits. It is chosen
	// to fit in a single Ethernet frame with IP/UDP headers, as the
	// prototype's packets did.
	MaxPacket = 1400
	// MaxPayload is the largest payload a single packet can carry.
	MaxPayload = MaxPacket - HeaderSize - TrailerSize
	// MaxTracedPayload is the payload ceiling once the trace extension
	// has claimed its bytes.
	MaxTracedPayload = MaxPayload - TraceExtSize
	// MaxExtPayload is the payload ceiling with every extension present
	// (trace + deadline) — the floor any control payload must fit.
	MaxExtPayload = MaxPayload - TraceExtSize - DeadlineExtSize
)

// Type identifies the kind of a protocol packet.
type Type uint8

// Packet types. Open/Stat/Remove are served on the agent's well-known
// port; the rest flow on the per-file private port established at open.
const (
	TInvalid     Type = iota
	TOpen             // client→agent: open/create an object fragment
	TOpenReply        // agent→client: handle + private port + fragment size
	TRead             // client→agent: request [offset,offset+length) of the fragment
	TData             // either direction: payload carrying part of a request
	TWrite            // client→agent: announce a write burst [offset,offset+length)
	TWriteAck         // agent→client: write burst fully received & applied
	TResend           // agent→client: list of missing ranges in a write burst
	TClose            // client→agent: release the handle and private port
	TCloseReply       // agent→client: close acknowledged
	TStat             // client→agent (well-known port): fragment size query
	TStatReply        // agent→client: fragment size
	TRemove           // client→agent (well-known port): delete an object fragment
	TRemoveReply      // agent→client: remove acknowledged
	TSync             // client→agent: flush the fragment to stable storage
	TSyncReply        // agent→client: sync acknowledged
	TTrunc            // client→agent: truncate fragment to request length
	TTruncReply       // agent→client: truncate acknowledged
	TList             // client→agent (well-known port): enumerate objects
	TListReply        // agent→client: object names; FLast marks the final packet
	TPing             // client→agent (well-known port): liveness + status probe
	TPingReply        // agent→client: agent status
	TError            // agent→client: request failed; payload holds message

	// Mediator control plane (served by medrpc on a mediator replica's
	// well-known port; same packet envelope, different port).
	TMedOpen        // client→mediator: admit a session (requirements)
	TMedOpenReply   // mediator→client: the admitted session record
	TMedRenew       // client→mediator: renew-or-adopt; payload carries the record
	TMedRenewReply  // mediator→client: the session's current home replica
	TMedClose       // client→mediator: release session Handle
	TMedCloseReply  // mediator→client: close acknowledged
	TMedMirror      // mediator→mediator: session replication update
	TMedMirrorReply // mediator→mediator: update applied
	TMedStatus      // client→mediator: replica status query
	TMedStatusReply // mediator→client: replica status
	TMedDrain       // admin→mediator: hand live sessions to peers
	TMedDrainReply  // mediator→admin: drain done; Length counts handoffs

	// TPushback is an agent's explicit load-shed reply: the request was
	// refused — not failed — because its deadline had already expired or
	// the agent's service queue was over quota. The payload (PushbackInfo)
	// carries the reason and a retry-after hint. Pushback is a healthy
	// agent protecting itself; clients must not feed it into the
	// failure-domain lifecycle.
	TPushback

	// Cache-coherence extension of the mediator control plane: a client
	// rides one TMedInvalidate round per heartbeat, declaring the objects
	// it caches (with generations) and the objects it wrote; the reply
	// names the stale set. Appended after TPushback so every earlier type
	// keeps its wire value.
	TMedInvalidate      // client→mediator: cache-coherence sync round
	TMedInvalidateReply // mediator→client: stale cached objects
	tMax
)

var typeNames = [...]string{
	"invalid", "open", "openreply", "read", "data", "write", "writeack",
	"resend", "close", "closereply", "stat", "statreply", "remove",
	"removereply", "sync", "syncreply", "trunc", "truncreply",
	"list", "listreply", "ping", "pingreply", "error",
	"medopen", "medopenreply", "medrenew", "medrenewreply",
	"medclose", "medclosereply", "medmirror", "medmirrorreply",
	"medstatus", "medstatusreply", "meddrain", "meddrainreply",
	"pushback", "medinvalidate", "medinvalidatereply",
}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Flag bits.
const (
	// FLast marks the final data packet of a read reply burst.
	FLast uint16 = 1 << iota
	// FCreate asks open to create the fragment if absent.
	FCreate
	// FTrunc asks open to truncate an existing fragment.
	FTrunc
	// FSyncWrite asks the agent to write this burst synchronously.
	FSyncWrite
)

// Header is the fixed portion of every packet.
type Header struct {
	Type   Type
	ReqID  uint32
	Handle uint64
	Offset int64
	Length uint32
	Flags  uint16
}

// Packet is a decoded protocol packet: header plus payload, plus the
// optional extensions. A zero Trace and zero Deadline encode as a
// version-1 packet; a valid Trace adds the trace extension, a positive
// Deadline the deadline extension, and the version byte reflects which
// are present.
type Packet struct {
	Header
	Trace obs.SpanContext
	// Deadline is the request's remaining time budget, measured when the
	// packet is encoded. Zero means no deadline (the extension is
	// omitted); the receiver anchors a positive budget against its own
	// clock at receipt.
	Deadline time.Duration
	Payload  []byte
}

// Decoding errors.
var (
	ErrTooShort   = errors.New("wire: packet too short")
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadCRC     = errors.New("wire: checksum mismatch")
	ErrBadLength  = errors.New("wire: payload length mismatch")
	ErrOversize   = errors.New("wire: payload exceeds MaxPayload")
)

// AppendPacket encodes the packet and appends it to dst, returning the
// extended slice. It returns an error if the payload exceeds MaxPayload
// less the bytes any attached extensions claim.
//
//swift:hotpath
func AppendPacket(dst []byte, p *Packet) ([]byte, error) {
	traced := p.Trace.Valid()
	deadlined := p.Deadline > 0
	version := uint8(Version)
	limit := MaxPayload
	switch {
	case traced && deadlined:
		version = VersionTracedDeadline
		limit = MaxExtPayload
	case traced:
		version = VersionTraced
		limit = MaxTracedPayload
	case deadlined:
		version = VersionDeadline
		limit = MaxPayload - DeadlineExtSize
	}
	if len(p.Payload) > limit {
		return dst, ErrOversize
	}
	start := len(dst)
	var hdr [HeaderSize]byte
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = version
	hdr[3] = uint8(p.Type)
	binary.BigEndian.PutUint32(hdr[4:8], p.ReqID)
	binary.BigEndian.PutUint64(hdr[8:16], p.Handle)
	binary.BigEndian.PutUint64(hdr[16:24], uint64(p.Offset))
	binary.BigEndian.PutUint32(hdr[24:28], p.Length)
	binary.BigEndian.PutUint16(hdr[28:30], p.Flags)
	binary.BigEndian.PutUint16(hdr[30:32], uint16(len(p.Payload)))
	dst = append(dst, hdr[:]...)
	if traced {
		var ext [TraceExtSize]byte
		binary.BigEndian.PutUint64(ext[0:8], p.Trace.TraceID)
		binary.BigEndian.PutUint64(ext[8:16], p.Trace.SpanID)
		ext[16] = p.Trace.Flags
		dst = append(dst, ext[:]...)
	}
	if deadlined {
		var ext [DeadlineExtSize]byte
		binary.BigEndian.PutUint64(ext[:], uint64(p.Deadline))
		dst = append(dst, ext[:]...)
	}
	dst = append(dst, p.Payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	var tr [TrailerSize]byte
	binary.BigEndian.PutUint32(tr[:], crc)
	return append(dst, tr[:]...), nil
}

// Marshal encodes the packet into a fresh buffer.
func Marshal(p *Packet) ([]byte, error) {
	n := HeaderSize + len(p.Payload) + TrailerSize
	if p.Trace.Valid() {
		n += TraceExtSize
	}
	if p.Deadline > 0 {
		n += DeadlineExtSize
	}
	buf := make([]byte, 0, n) //lint:allow hotalloc Marshal returns a fresh buffer by contract; hot senders use AppendPacket with caller scratch
	return AppendPacket(buf, p)
}

// Unmarshal decodes buf into p. Versions 1 through 4 are accepted;
// p.Trace and p.Deadline are zeroed when the respective extension is
// absent. The returned packet's Payload aliases buf; callers that retain
// the packet past the buffer's reuse must copy it.
//
//swift:hotpath
func Unmarshal(buf []byte, p *Packet) error {
	if len(buf) < HeaderSize+TrailerSize {
		return ErrTooShort
	}
	if binary.BigEndian.Uint16(buf[0:2]) != Magic {
		return ErrBadMagic
	}
	traceExt, dlExt := 0, 0
	switch buf[2] {
	case Version:
	case VersionTraced:
		traceExt = TraceExtSize
	case VersionDeadline:
		dlExt = DeadlineExtSize
	case VersionTracedDeadline:
		traceExt, dlExt = TraceExtSize, DeadlineExtSize
	default:
		return ErrBadVersion
	}
	ext := traceExt + dlExt
	if len(buf) < HeaderSize+ext+TrailerSize {
		return ErrTooShort
	}
	body := buf[:len(buf)-TrailerSize]
	want := binary.BigEndian.Uint32(buf[len(buf)-TrailerSize:])
	if crc32.ChecksumIEEE(body) != want {
		return ErrBadCRC
	}
	plen := int(binary.BigEndian.Uint16(buf[30:32]))
	if HeaderSize+ext+plen != len(body) {
		return ErrBadLength
	}
	p.Type = Type(buf[3])
	p.ReqID = binary.BigEndian.Uint32(buf[4:8])
	p.Handle = binary.BigEndian.Uint64(buf[8:16])
	p.Offset = int64(binary.BigEndian.Uint64(buf[16:24]))
	p.Length = binary.BigEndian.Uint32(buf[24:28])
	p.Flags = binary.BigEndian.Uint16(buf[28:30])
	if traceExt != 0 {
		p.Trace.TraceID = binary.BigEndian.Uint64(buf[HeaderSize : HeaderSize+8])
		p.Trace.SpanID = binary.BigEndian.Uint64(buf[HeaderSize+8 : HeaderSize+16])
		p.Trace.Flags = buf[HeaderSize+16]
		// A traced packet with a zero trace id would re-encode without
		// the extension and break the round-trip invariant; reject it.
		if !p.Trace.Valid() {
			return ErrBadVersion
		}
	} else {
		p.Trace = obs.SpanContext{}
	}
	if dlExt != 0 {
		budget := binary.BigEndian.Uint64(buf[HeaderSize+traceExt : HeaderSize+traceExt+DeadlineExtSize])
		// Zero or unrepresentable budgets would re-encode without the
		// extension; reject them for the same round-trip invariant.
		if budget == 0 || budget > uint64(maxDuration) {
			return ErrBadVersion
		}
		p.Deadline = time.Duration(budget)
	} else {
		p.Deadline = 0
	}
	p.Payload = buf[HeaderSize+ext : HeaderSize+ext+plen]
	return nil
}

// maxDuration is the largest encodable deadline budget.
const maxDuration = time.Duration(1<<63 - 1)
