package wire

import (
	"encoding/binary"
	"math"
)

// Payload codecs for the mediator control plane. The wire package stays
// independent of the mediator package: medrpc converts between these flat
// forms and the mediator's native types. Times travel as Unix nanoseconds
// — federation assumes loosely synchronized replica clocks, which lease
// TTLs (hundreds of milliseconds and up) tolerate easily.

// MedOpenRequest is the body of a TMedOpen packet: a client's session
// requirements.
type MedOpenRequest struct {
	Rate         float64 // required data-rate, bytes/second
	Redundancy   bool
	ParityShards uint16
	Key          string // placement key
}

// AppendMedOpenRequest encodes r.
func AppendMedOpenRequest(dst []byte, r *MedOpenRequest) []byte {
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.Rate))
	if r.Redundancy {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.BigEndian.AppendUint16(dst, r.ParityShards)
	return appendString(dst, r.Key)
}

// ParseMedOpenRequest decodes a TMedOpen payload.
func ParseMedOpenRequest(b []byte) (MedOpenRequest, error) {
	if len(b) < 11 {
		return MedOpenRequest{}, ErrShortPayload
	}
	r := MedOpenRequest{
		Rate:         math.Float64frombits(binary.BigEndian.Uint64(b)),
		Redundancy:   b[8] != 0,
		ParityShards: binary.BigEndian.Uint16(b[9:]),
	}
	key, _, err := parseString(b[11:])
	if err != nil {
		return MedOpenRequest{}, err
	}
	r.Key = key
	return r, nil
}

// MedRecord is the flat form of one replicated session: the body of
// TMedOpenReply and TMedRenew packets and the record part of TMedMirror.
// A record with many agents can exceed MaxPayload; Marshal then fails
// with ErrOversize and the mediator rejects the plan as unshippable.
type MedRecord struct {
	ID      uint64
	Key     string
	Home    string
	Expires int64 // lease deadline, Unix nanoseconds; 0 = no lease
	Unit    int64
	Parity  bool
	Shards  uint16 // parity shards
	Rate    float64
	Agents  []uint16 // selected agent indices, striping order
	Addrs   []string // their control addresses
}

// AppendMedRecord encodes r. The agent and addr counts travel as
// uint16, so records must carry at most 65535 entries of each; the
// producer (medrpc's toWireRecord) validates that bound and the agent
// index range before building a MedRecord, keeping this codec
// allocation- and error-free.
func AppendMedRecord(dst []byte, r *MedRecord) []byte {
	dst = binary.BigEndian.AppendUint64(dst, r.ID)
	dst = appendString(dst, r.Key)
	dst = appendString(dst, r.Home)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Expires))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Unit))
	if r.Parity {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.BigEndian.AppendUint16(dst, r.Shards)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.Rate))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Agents)))
	for _, a := range r.Agents {
		dst = binary.BigEndian.AppendUint16(dst, a)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Addrs)))
	for _, a := range r.Addrs {
		dst = appendString(dst, a)
	}
	return dst
}

// parseMedRecord decodes a record, returning the remaining bytes.
func parseMedRecord(b []byte) (MedRecord, []byte, error) {
	var r MedRecord
	if len(b) < 8 {
		return r, nil, ErrShortPayload
	}
	r.ID = binary.BigEndian.Uint64(b)
	b = b[8:]
	var err error
	if r.Key, b, err = parseString(b); err != nil {
		return r, nil, err
	}
	if r.Home, b, err = parseString(b); err != nil {
		return r, nil, err
	}
	if len(b) < 8+8+1+2+8+2 {
		return r, nil, ErrShortPayload
	}
	r.Expires = int64(binary.BigEndian.Uint64(b))
	r.Unit = int64(binary.BigEndian.Uint64(b[8:]))
	r.Parity = b[16] != 0
	r.Shards = binary.BigEndian.Uint16(b[17:])
	r.Rate = math.Float64frombits(binary.BigEndian.Uint64(b[19:]))
	n := int(binary.BigEndian.Uint16(b[27:]))
	b = b[29:]
	if len(b) < n*2 {
		return r, nil, ErrShortPayload
	}
	r.Agents = make([]uint16, n)
	for i := 0; i < n; i++ {
		r.Agents[i] = binary.BigEndian.Uint16(b[i*2:])
	}
	b = b[n*2:]
	if len(b) < 2 {
		return r, nil, ErrShortPayload
	}
	na := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	r.Addrs = make([]string, 0, na)
	for i := 0; i < na; i++ {
		var s string
		if s, b, err = parseString(b); err != nil {
			return r, nil, err
		}
		r.Addrs = append(r.Addrs, s)
	}
	return r, b, nil
}

// ParseMedRecord decodes a TMedOpenReply or TMedRenew payload.
func ParseMedRecord(b []byte) (MedRecord, error) {
	r, _, err := parseMedRecord(b)
	return r, err
}

// MedMirror is the body of a TMedMirror packet: one replication update.
type MedMirror struct {
	Op   uint8 // mediator.MirrorOp
	From string
	Rec  MedRecord
}

// AppendMedMirror encodes u.
func AppendMedMirror(dst []byte, u *MedMirror) []byte {
	dst = append(dst, u.Op)
	dst = appendString(dst, u.From)
	return AppendMedRecord(dst, &u.Rec)
}

// ParseMedMirror decodes a TMedMirror payload.
func ParseMedMirror(b []byte) (MedMirror, error) {
	if len(b) < 1 {
		return MedMirror{}, ErrShortPayload
	}
	u := MedMirror{Op: b[0]}
	var err error
	b = b[1:]
	if u.From, b, err = parseString(b); err != nil {
		return MedMirror{}, err
	}
	if u.Rec, _, err = parseMedRecord(b); err != nil {
		return MedMirror{}, err
	}
	return u, nil
}

// MedHome is the body of a TMedRenewReply packet: where the session's
// lease now lives, so a renew against a draining replica transparently
// re-targets the client.
type MedHome struct {
	Home string
}

// AppendMedHome encodes h.
func AppendMedHome(dst []byte, h *MedHome) []byte { return appendString(dst, h.Home) }

// ParseMedHome decodes a TMedRenewReply payload.
func ParseMedHome(b []byte) (MedHome, error) {
	home, _, err := parseString(b)
	return MedHome{Home: home}, err
}

// MedCachedObject names one cached object together with the mediator
// write-generation the cached image reflects.
type MedCachedObject struct {
	Name string
	Gen  uint64
}

// appendCachedObjects encodes a uint16-counted object list.
func appendCachedObjects(dst []byte, objs []MedCachedObject) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(objs)))
	for _, o := range objs {
		dst = appendString(dst, o.Name)
		dst = binary.BigEndian.AppendUint64(dst, o.Gen)
	}
	return dst
}

// parseCachedObjects decodes a uint16-counted object list, returning the
// remaining bytes.
func parseCachedObjects(b []byte) ([]MedCachedObject, []byte, error) {
	if len(b) < 2 {
		return nil, nil, ErrShortPayload
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	var out []MedCachedObject
	for i := 0; i < n; i++ {
		var o MedCachedObject
		var err error
		if o.Name, b, err = parseString(b); err != nil {
			return nil, nil, err
		}
		if len(b) < 8 {
			return nil, nil, ErrShortPayload
		}
		o.Gen = binary.BigEndian.Uint64(b)
		b = b[8:]
		out = append(out, o)
	}
	return out, b, nil
}

// MedCacheSync is the body of a TMedInvalidate packet: one client's
// cache-coherence round — the session, the objects it caches (with the
// generations their images reflect), and the objects it wrote since its
// last successful round.
type MedCacheSync struct {
	Session uint64
	Cached  []MedCachedObject
	Written []string
}

// AppendMedCacheSync encodes s.
func AppendMedCacheSync(dst []byte, s *MedCacheSync) []byte {
	dst = binary.BigEndian.AppendUint64(dst, s.Session)
	dst = appendCachedObjects(dst, s.Cached)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s.Written)))
	for _, name := range s.Written {
		dst = appendString(dst, name)
	}
	return dst
}

// ParseMedCacheSync decodes a TMedInvalidate payload.
func ParseMedCacheSync(b []byte) (MedCacheSync, error) {
	var s MedCacheSync
	if len(b) < 8 {
		return s, ErrShortPayload
	}
	s.Session = binary.BigEndian.Uint64(b)
	b = b[8:]
	var err error
	if s.Cached, b, err = parseCachedObjects(b); err != nil {
		return s, err
	}
	if len(b) < 2 {
		return s, ErrShortPayload
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	for i := 0; i < n; i++ {
		var name string
		if name, b, err = parseString(b); err != nil {
			return s, err
		}
		s.Written = append(s.Written, name)
	}
	return s, nil
}

// MedCacheSyncReply is the body of a TMedInvalidateReply packet: the
// declared objects whose cached images are stale, each with the
// generation a fresh fetch will reflect.
type MedCacheSyncReply struct {
	Stale []MedCachedObject
}

// AppendMedCacheSyncReply encodes r.
func AppendMedCacheSyncReply(dst []byte, r *MedCacheSyncReply) []byte {
	return appendCachedObjects(dst, r.Stale)
}

// ParseMedCacheSyncReply decodes a TMedInvalidateReply payload.
func ParseMedCacheSyncReply(b []byte) (MedCacheSyncReply, error) {
	stale, _, err := parseCachedObjects(b)
	return MedCacheSyncReply{Stale: stale}, err
}

// MedStatus is the body of a TMedStatusReply packet: one replica's
// operator-facing state.
type MedStatus struct {
	Name          string
	Role          string
	Sessions      uint32
	HomeSessions  uint32
	LastHandoff   int64 // Unix nanoseconds; 0 = never
	Failovers     uint64
	Handoffs      uint64
	Expirations   uint64
	AgentReserved []float64
	NetReserved   []float64
}

// AppendMedStatus encodes s.
func AppendMedStatus(dst []byte, s *MedStatus) []byte {
	dst = appendString(dst, s.Name)
	dst = appendString(dst, s.Role)
	dst = binary.BigEndian.AppendUint32(dst, s.Sessions)
	dst = binary.BigEndian.AppendUint32(dst, s.HomeSessions)
	dst = binary.BigEndian.AppendUint64(dst, uint64(s.LastHandoff))
	dst = binary.BigEndian.AppendUint64(dst, s.Failovers)
	dst = binary.BigEndian.AppendUint64(dst, s.Handoffs)
	dst = binary.BigEndian.AppendUint64(dst, s.Expirations)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s.AgentReserved)))
	for _, v := range s.AgentReserved {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s.NetReserved)))
	for _, v := range s.NetReserved {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// ParseMedStatus decodes a TMedStatusReply payload.
func ParseMedStatus(b []byte) (MedStatus, error) {
	var s MedStatus
	var err error
	if s.Name, b, err = parseString(b); err != nil {
		return s, err
	}
	if s.Role, b, err = parseString(b); err != nil {
		return s, err
	}
	if len(b) < 4+4+8+8+8+8+2 {
		return s, ErrShortPayload
	}
	s.Sessions = binary.BigEndian.Uint32(b)
	s.HomeSessions = binary.BigEndian.Uint32(b[4:])
	s.LastHandoff = int64(binary.BigEndian.Uint64(b[8:]))
	s.Failovers = binary.BigEndian.Uint64(b[16:])
	s.Handoffs = binary.BigEndian.Uint64(b[24:])
	s.Expirations = binary.BigEndian.Uint64(b[32:])
	n := int(binary.BigEndian.Uint16(b[40:]))
	b = b[42:]
	if len(b) < n*8 {
		return s, ErrShortPayload
	}
	s.AgentReserved = make([]float64, n)
	for i := 0; i < n; i++ {
		s.AgentReserved[i] = math.Float64frombits(binary.BigEndian.Uint64(b[i*8:]))
	}
	b = b[n*8:]
	if len(b) < 2 {
		return s, ErrShortPayload
	}
	nn := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < nn*8 {
		return s, ErrShortPayload
	}
	s.NetReserved = make([]float64, nn)
	for i := 0; i < nn; i++ {
		s.NetReserved[i] = math.Float64frombits(binary.BigEndian.Uint64(b[i*8:]))
	}
	return s, nil
}
