// Package nfs implements the paper's comparison system: a single-server
// block-RPC file service with NFS v2 semantics — 8 KB transfers, stateless
// retried RPCs over datagrams, and synchronous write-through on the server
// ("the write data-rate measurements in NFS reflect the write-through
// policy of the server"). Blocks larger than the wire MTU are carried as
// application-level fragments, mirroring IP fragmentation of NFS/UDP,
// including its failure mode: losing any fragment costs the whole RPC.
package nfs

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol constants.
const (
	// BlockSize is the NFS transfer size.
	BlockSize = 8192
	// headerSize is the fixed RPC header length.
	headerSize = 28
	// FragSize is the data carried per wire fragment.
	FragSize = 1344
	// maxPacket bounds one datagram.
	maxPacket = headerSize + FragSize
)

// Ops.
const (
	opLookup uint8 = iota + 1
	opCreate
	opRead
	opWrite
	opGetattr
	opRemove
)

// Status codes.
const (
	stRequest uint8 = iota
	stOK
	stError
)

// message is one NFS datagram.
//
// Layout (big endian): op(1) status(1) xid(4) handle(4) offset(8)
// count(4) frag(2) nfrags(2) plen(2) payload(plen).
type message struct {
	op      uint8
	status  uint8
	xid     uint32
	handle  uint32
	offset  int64
	count   uint32
	frag    uint16
	nfrags  uint16
	payload []byte
}

var errShort = errors.New("nfs: short message")

func (m *message) marshal(dst []byte) ([]byte, error) {
	if len(m.payload) > FragSize {
		return nil, fmt.Errorf("nfs: payload %d exceeds fragment size", len(m.payload))
	}
	dst = dst[:0]
	dst = append(dst, m.op, m.status)
	dst = binary.BigEndian.AppendUint32(dst, m.xid)
	dst = binary.BigEndian.AppendUint32(dst, m.handle)
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.offset))
	dst = binary.BigEndian.AppendUint32(dst, m.count)
	dst = binary.BigEndian.AppendUint16(dst, m.frag)
	dst = binary.BigEndian.AppendUint16(dst, m.nfrags)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.payload)))
	dst = append(dst, m.payload...)
	return dst, nil
}

func (m *message) unmarshal(b []byte) error {
	if len(b) < headerSize {
		return errShort
	}
	m.op = b[0]
	m.status = b[1]
	m.xid = binary.BigEndian.Uint32(b[2:6])
	m.handle = binary.BigEndian.Uint32(b[6:10])
	m.offset = int64(binary.BigEndian.Uint64(b[10:18]))
	m.count = binary.BigEndian.Uint32(b[18:22])
	m.frag = binary.BigEndian.Uint16(b[22:24])
	m.nfrags = binary.BigEndian.Uint16(b[24:26])
	plen := int(binary.BigEndian.Uint16(b[26:28]))
	if len(b) < headerSize+plen {
		return errShort
	}
	m.payload = b[headerSize : headerSize+plen]
	return nil
}

// fragsFor returns the number of wire fragments for n payload bytes.
func fragsFor(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + FragSize - 1) / FragSize
}
