package nfs

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"swift/internal/transport"
)

// Client errors.
var (
	ErrTimeout = errors.New("nfs: rpc timed out")
)

// ClientConfig tunes the NFS client.
type ClientConfig struct {
	// Server is the server's "host:port" address.
	Server string
	// RetryTimeout is the per-RPC retransmission interval
	// (default 350ms — the NFS "timeo" knob).
	RetryTimeout time.Duration
	// MaxRetries bounds retransmissions per RPC (default 20).
	MaxRetries int
}

// Client is an NFS-like client: stateless per-block RPCs with one
// outstanding request, retried on timeout.
type Client struct {
	cfg  ClientConfig
	conn transport.PacketConn
	xid  atomic.Uint32
}

// Handle identifies an open file on the server.
type Handle uint32

// Dial creates a client on the given host.
func Dial(host transport.Host, cfg ClientConfig) (*Client, error) {
	if cfg.RetryTimeout == 0 {
		cfg.RetryTimeout = 350 * time.Millisecond
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 20
	}
	conn, err := host.Listen("0")
	if err != nil {
		return nil, fmt.Errorf("nfs: %w", err)
	}
	return &Client{cfg: cfg, conn: conn}, nil
}

// Close releases the client's endpoint.
func (c *Client) Close() error { return c.conn.Close() }

// rpc sends req and collects the reply's fragments, retransmitting the
// whole request on timeout (NFS RPCs are idempotent). It returns the
// reassembled payload and the reply header.
func (c *Client) rpc(req *message) (*message, []byte, error) {
	req.status = stRequest
	req.xid = c.xid.Add(1)
	sendBuf := make([]byte, 0, maxPacket)
	sendBuf, err := req.marshal(sendBuf)
	if err != nil {
		return nil, nil, err
	}

	rbuf := make([]byte, maxPacket)
	var m message
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if err := c.conn.WriteTo(sendBuf, c.cfg.Server); err != nil {
			return nil, nil, err
		}
		deadline := time.Now().Add(c.cfg.RetryTimeout)

		var data []byte
		var gotMask []bool
		got := 0
		for {
			c.conn.SetReadDeadline(deadline)
			n, _, err := c.conn.ReadFrom(rbuf)
			if err != nil {
				if transport.IsTimeout(err) {
					break // retransmit
				}
				return nil, nil, err
			}
			if err := m.unmarshal(rbuf[:n]); err != nil || m.xid != req.xid {
				continue
			}
			if m.status == stError {
				return nil, nil, fmt.Errorf("nfs: server: %s", m.payload)
			}
			if m.status != stOK {
				continue
			}
			if m.nfrags <= 1 {
				out := m
				return &out, append([]byte(nil), m.payload...), nil
			}
			if data == nil {
				data = make([]byte, m.count)
				gotMask = make([]bool, m.nfrags)
			}
			if int(m.frag) < len(gotMask) && !gotMask[m.frag] {
				gotMask[m.frag] = true
				got++
				copy(data[int(m.frag)*FragSize:], m.payload)
			}
			if got == len(gotMask) {
				out := m
				return &out, data, nil
			}
		}
	}
	return nil, nil, fmt.Errorf("%w: op %d to %s", ErrTimeout, req.op, c.cfg.Server)
}

// lookup resolves or creates a name.
func (c *Client) lookup(name string, create bool) (Handle, int64, error) {
	op := opLookup
	if create {
		op = opCreate
	}
	reply, _, err := c.rpc(&message{op: op, payload: []byte(name)})
	if err != nil {
		return 0, 0, err
	}
	return Handle(reply.handle), reply.offset, nil
}

// Lookup opens an existing file, returning its handle and size.
func (c *Client) Lookup(name string) (Handle, int64, error) { return c.lookup(name, false) }

// Create opens a file, creating it if needed.
func (c *Client) Create(name string) (Handle, int64, error) { return c.lookup(name, true) }

// Getattr refreshes a file's size.
func (c *Client) Getattr(h Handle) (int64, error) {
	reply, _, err := c.rpc(&message{op: opGetattr, handle: uint32(h)})
	if err != nil {
		return 0, err
	}
	return reply.offset, nil
}

// Remove deletes a file.
func (c *Client) Remove(name string) error {
	_, _, err := c.rpc(&message{op: opRemove, payload: []byte(name)})
	return err
}

// ReadBlock reads up to BlockSize bytes at off.
func (c *Client) ReadBlock(h Handle, off int64, buf []byte) (int, error) {
	count := len(buf)
	if count > BlockSize {
		count = BlockSize
	}
	_, data, err := c.rpc(&message{op: opRead, handle: uint32(h), offset: off, count: uint32(count)})
	if err != nil {
		return 0, err
	}
	return copy(buf, data), nil
}

// WriteBlock writes up to BlockSize bytes at off, synchronously on the
// server, as one fragmented RPC.
func (c *Client) WriteBlock(h Handle, off int64, data []byte) error {
	if len(data) > BlockSize {
		data = data[:BlockSize]
	}
	// Write requests fan the payload over fragments; the final
	// fragment doubles as the "commit" trigger. All fragments carry the
	// same xid, so rpc-level retransmission resends them all.
	xid := c.xid.Add(1)
	nf := fragsFor(len(data))
	sendBuf := make([]byte, 0, maxPacket)

	sendAll := func() error {
		for f := 0; f < nf; f++ {
			lo := f * FragSize
			hi := lo + FragSize
			if hi > len(data) {
				hi = len(data)
			}
			m := &message{
				op: opWrite, status: stRequest, xid: xid,
				handle: uint32(h), offset: off, count: uint32(len(data)),
				frag: uint16(f), nfrags: uint16(nf), payload: data[lo:hi],
			}
			buf, err := m.marshal(sendBuf)
			if err != nil {
				return err
			}
			if err := c.conn.WriteTo(buf, c.cfg.Server); err != nil {
				return err
			}
		}
		return nil
	}

	rbuf := make([]byte, maxPacket)
	var m message
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if err := sendAll(); err != nil {
			return err
		}
		deadline := time.Now().Add(c.cfg.RetryTimeout)
		for {
			c.conn.SetReadDeadline(deadline)
			n, _, err := c.conn.ReadFrom(rbuf)
			if err != nil {
				if transport.IsTimeout(err) {
					break
				}
				return err
			}
			if err := m.unmarshal(rbuf[:n]); err != nil || m.xid != xid {
				continue
			}
			if m.status == stError {
				return fmt.Errorf("nfs: server: %s", m.payload)
			}
			if m.status == stOK {
				return nil
			}
		}
	}
	return fmt.Errorf("%w: write to %s", ErrTimeout, c.cfg.Server)
}

// WriteFile writes data sequentially, one synchronous block RPC at a time
// — the single-outstanding write-through path that Table 3 measures.
func (c *Client) WriteFile(name string, data []byte) error {
	h, _, err := c.Create(name)
	if err != nil {
		return err
	}
	for off := 0; off < len(data); off += BlockSize {
		end := off + BlockSize
		if end > len(data) {
			end = len(data)
		}
		if err := c.WriteBlock(h, int64(off), data[off:end]); err != nil {
			return fmt.Errorf("nfs: write %s@%d: %w", name, off, err)
		}
	}
	return nil
}

// ReadFile reads the file sequentially into buf, returning bytes read.
func (c *Client) ReadFile(name string, buf []byte) (int64, error) {
	h, size, err := c.Lookup(name)
	if err != nil {
		return 0, err
	}
	n := int64(len(buf))
	if n > size {
		n = size
	}
	for off := int64(0); off < n; off += BlockSize {
		end := off + BlockSize
		if end > n {
			end = n
		}
		if _, err := c.ReadBlock(h, off, buf[off:end]); err != nil {
			return off, fmt.Errorf("nfs: read %s@%d: %w", name, off, err)
		}
	}
	return n, nil
}
