package nfs

import (
	"testing"
	"time"

	"swift/internal/disk"
	"swift/internal/store"
	"swift/internal/transport/memnet"
)

func TestConcurrentLookupsShareHandle(t *testing.T) {
	cl, _ := testSetup(t, 0)
	if err := cl.WriteFile("f", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	h1, _, err := cl.Lookup("f")
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := cl.Lookup("f")
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("handles differ: %d vs %d", h1, h2)
	}
}

func TestServerChargesDiskTime(t *testing.T) {
	// A server backed by a DiskStore with sync writes charges modeled
	// time per block; verify the clock advances far more for writes
	// than for reads, the write-through asymmetry of Table 3.
	n := memnet.New(1)
	seg := n.NewSegment("s", memnet.SegmentConfig{BandwidthBps: 1e10, FrameOverhead: 46})
	sh := n.MustHost("server", memnet.HostConfig{}, seg)
	ch := n.MustHost("client", memnet.HostConfig{}, seg)

	var clock time.Duration
	var clockMu = make(chan struct{}, 1)
	clockMu <- struct{}{}
	sleep := func(d time.Duration) {
		<-clockMu
		clock += d
		clockMu <- struct{}{}
	}
	dev := disk.NewDevice(disk.ProfileSunIPI(), disk.WithSleeper(sleep), disk.WithSeed(1))
	st := store.NewDiskStore(store.NewMem(), dev)
	st.SyncWrites = true
	srv, err := NewServer(sh, st, dev, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(ch, ClientConfig{Server: srv.Addr(), RetryTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	data := make([]byte, 10*BlockSize)
	if err := cl.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	writeTime := clock
	clock = 0
	if _, err := cl.ReadFile("f", data); err != nil {
		t.Fatal(err)
	}
	readTime := clock
	if writeTime < 3*readTime {
		t.Fatalf("write-through not dominating: write %v vs read %v", writeTime, readTime)
	}
}

func TestWriteRetransmitIdempotent(t *testing.T) {
	// Retransmitting a completed write (lost ack) must not duplicate
	// disk work or corrupt data: the server re-acks from its done set.
	cl, st := testSetup(t, 0)
	h, _, err := cl.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, BlockSize)
	for i := range data {
		data[i] = byte(i)
	}
	if err := cl.WriteBlock(h, 0, data); err != nil {
		t.Fatal(err)
	}
	// Write the next block; first block stays intact.
	if err := cl.WriteBlock(h, BlockSize, data); err != nil {
		t.Fatal(err)
	}
	if sz, _ := st.Stat("f"); sz != 2*BlockSize {
		t.Fatalf("size = %d", sz)
	}
}
