package nfs

import (
	"fmt"
	"sync"
	"time"

	"swift/internal/disk"
	"swift/internal/store"
	"swift/internal/transport"
)

// DefaultPort is the server's well-known port.
const DefaultPort = "2049"

// ServerConfig tunes the file server.
type ServerConfig struct {
	// Port is the listening port (default DefaultPort).
	Port string
	// CPUPerRPC is the server processing cost charged per request
	// (RPC decode, VFS, RPC encode). Default 0.
	CPUPerRPC time.Duration
	// Sleep charges modeled time (default time.Sleep).
	Sleep func(time.Duration)
	// MetaWritesPerBlock is the number of synchronous metadata disk
	// writes charged per block write (inode and indirect-block updates;
	// default 1). This is what makes NFS write-through so slow: the
	// head seeks away from the data area for every block.
	MetaWritesPerBlock int
	// Logf receives diagnostics.
	Logf func(format string, args ...any)
}

// Server is a single-host NFS-like file server.
type Server struct {
	host transport.Host
	st   store.Store
	dev  *disk.Device // nil: no metadata charges
	cfg  ServerConfig
	conn transport.PacketConn

	mu      sync.Mutex
	handles map[uint32]store.Object
	names   map[string]uint32
	nextH   uint32
	closed  bool

	// Write reassembly and duplicate-reply cache.
	pending map[uint32]*writeAsm
	done    map[uint32]time.Time

	metaOff int64

	wg sync.WaitGroup
}

type writeAsm struct {
	handle  uint32
	offset  int64
	count   uint32
	data    []byte
	gotMask []bool
	got     int
	when    time.Time
}

// NewServer starts an NFS server for st on host. dev, when non-nil, is
// the underlying device used to charge metadata write time (it should be
// the same device backing st's DiskStore).
func NewServer(host transport.Host, st store.Store, dev *disk.Device, cfg ServerConfig) (*Server, error) {
	if cfg.Port == "" {
		cfg.Port = DefaultPort
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.MetaWritesPerBlock == 0 {
		cfg.MetaWritesPerBlock = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	conn, err := host.Listen(cfg.Port)
	if err != nil {
		return nil, fmt.Errorf("nfs: %w", err)
	}
	s := &Server{
		host:    host,
		st:      st,
		dev:     dev,
		cfg:     cfg,
		conn:    conn,
		handles: make(map[uint32]store.Object),
		names:   make(map[string]uint32),
		pending: make(map[uint32]*writeAsm),
		done:    make(map[uint32]time.Time),
		metaOff: 512 << 20, // metadata area far from the data
	}
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Addr returns the server's address.
func (s *Server) Addr() string { return s.conn.LocalAddr() }

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, o := range s.handles {
		o.Close()
	}
	s.mu.Unlock()
	s.conn.Close()
	s.wg.Wait()
	return nil
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) send(to string, m *message) {
	buf := make([]byte, 0, maxPacket)
	buf, err := m.marshal(buf)
	if err != nil {
		s.cfg.Logf("nfs: marshal: %v", err)
		return
	}
	if err := s.conn.WriteTo(buf, to); err != nil {
		s.cfg.Logf("nfs: send: %v", err)
	}
}

func (s *Server) sendErr(to string, req *message, err error) {
	s.send(to, &message{
		op: req.op, status: stError, xid: req.xid,
		payload: []byte(err.Error()),
	})
}

func (s *Server) loop() {
	defer s.wg.Done()
	buf := make([]byte, maxPacket)
	var m message
	for {
		s.conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, from, err := s.conn.ReadFrom(buf)
		if err != nil {
			if transport.IsTimeout(err) {
				if s.isClosed() {
					return
				}
				s.gc()
				continue
			}
			return
		}
		if err := m.unmarshal(buf[:n]); err != nil || m.status != stRequest {
			continue
		}
		s.dispatch(&m, from)
	}
}

func (s *Server) dispatch(m *message, from string) {
	// Per-RPC processing cost. Write fragments are charged once per
	// RPC, on completion, not per fragment.
	if m.op != opWrite && s.cfg.CPUPerRPC > 0 {
		s.cfg.Sleep(s.cfg.CPUPerRPC)
	}
	switch m.op {
	case opLookup, opCreate:
		s.handleLookup(m, from)
	case opGetattr:
		s.handleGetattr(m, from)
	case opRead:
		s.handleRead(m, from)
	case opWrite:
		s.handleWrite(m, from)
	case opRemove:
		s.handleRemove(m, from)
	}
}

func (s *Server) object(h uint32) store.Object {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handles[h]
}

func (s *Server) handleLookup(m *message, from string) {
	name := string(m.payload)
	s.mu.Lock()
	h, known := s.names[name]
	s.mu.Unlock()
	if !known {
		o, err := s.st.Open(name, m.op == opCreate)
		if err != nil {
			s.sendErr(from, m, err)
			return
		}
		s.mu.Lock()
		// Re-check: a retransmitted lookup may have raced us.
		if h2, known2 := s.names[name]; known2 {
			h = h2
			o.Close()
		} else {
			s.nextH++
			h = s.nextH
			s.names[name] = h
			s.handles[h] = o
		}
		s.mu.Unlock()
	}
	o := s.object(h)
	size, err := o.Size()
	if err != nil {
		s.sendErr(from, m, err)
		return
	}
	s.send(from, &message{op: m.op, status: stOK, xid: m.xid, handle: h, offset: size})
}

func (s *Server) handleGetattr(m *message, from string) {
	o := s.object(m.handle)
	if o == nil {
		s.sendErr(from, m, fmt.Errorf("stale handle %d", m.handle))
		return
	}
	size, err := o.Size()
	if err != nil {
		s.sendErr(from, m, err)
		return
	}
	s.send(from, &message{op: opGetattr, status: stOK, xid: m.xid, handle: m.handle, offset: size})
}

func (s *Server) handleRemove(m *message, from string) {
	name := string(m.payload)
	s.mu.Lock()
	if h, known := s.names[name]; known {
		if o := s.handles[h]; o != nil {
			o.Close()
		}
		delete(s.handles, h)
		delete(s.names, name)
	}
	s.mu.Unlock()
	if err := s.st.Remove(name); err != nil && err != store.ErrNotExist {
		s.sendErr(from, m, err)
		return
	}
	s.send(from, &message{op: opRemove, status: stOK, xid: m.xid})
}

// handleRead serves one block: a sequential disk read followed by the
// reply, fragmented to wire size.
func (s *Server) handleRead(m *message, from string) {
	o := s.object(m.handle)
	if o == nil {
		s.sendErr(from, m, fmt.Errorf("stale handle %d", m.handle))
		return
	}
	count := int(m.count)
	if count > BlockSize {
		count = BlockSize
	}
	data := make([]byte, count)
	n, _ := o.ReadAt(data, m.offset) // short reads/EOF report n
	data = data[:n]
	nf := fragsFor(n)
	for f := 0; f < nf; f++ {
		lo := f * FragSize
		hi := lo + FragSize
		if hi > n {
			hi = n
		}
		s.send(from, &message{
			op: opRead, status: stOK, xid: m.xid, handle: m.handle,
			offset: m.offset, count: uint32(n),
			frag: uint16(f), nfrags: uint16(nf),
			payload: data[lo:hi],
		})
	}
}

// handleWrite reassembles a block's fragments, then writes through:
// the data block synchronously plus the configured metadata updates,
// seeking between the data and metadata areas as a real FFS would.
func (s *Server) handleWrite(m *message, from string) {
	s.mu.Lock()
	if _, ok := s.done[m.xid]; ok {
		s.mu.Unlock()
		// Retransmission of a completed write: re-acknowledge.
		s.send(from, &message{op: opWrite, status: stOK, xid: m.xid, handle: m.handle})
		return
	}
	s.mu.Unlock()

	s.mu.Lock()
	w := s.pending[m.xid]
	if w == nil {
		w = &writeAsm{
			handle:  m.handle,
			offset:  m.offset,
			count:   m.count,
			data:    make([]byte, m.count),
			gotMask: make([]bool, fragsFor(int(m.count))),
			when:    time.Now(),
		}
		s.pending[m.xid] = w
	}
	if int(m.frag) < len(w.gotMask) && !w.gotMask[m.frag] {
		w.gotMask[m.frag] = true
		w.got++
		copy(w.data[int(m.frag)*FragSize:], m.payload)
	}
	complete := w.got == len(w.gotMask)
	if complete {
		delete(s.pending, m.xid)
	}
	s.mu.Unlock()
	if !complete {
		return
	}

	if s.cfg.CPUPerRPC > 0 {
		s.cfg.Sleep(s.cfg.CPUPerRPC)
	}
	o := s.object(w.handle)
	if o == nil {
		s.sendErr(from, m, fmt.Errorf("stale handle %d", w.handle))
		return
	}
	// The data block: DiskStore.SyncWrites charges the synchronous
	// write-through here.
	if _, err := o.WriteAt(w.data, w.offset); err != nil {
		s.sendErr(from, m, err)
		return
	}
	// Metadata write-through.
	if s.dev != nil {
		for i := 0; i < s.cfg.MetaWritesPerBlock; i++ {
			s.dev.Write(s.metaOff, 512, true)
			s.metaOff += 512
		}
	}
	s.mu.Lock()
	s.done[m.xid] = time.Now()
	s.mu.Unlock()
	s.send(from, &message{op: opWrite, status: stOK, xid: m.xid, handle: w.handle})
}

// gc drops stale reassembly state and old duplicate-reply entries.
func (s *Server) gc() {
	cutoff := time.Now().Add(-5 * time.Second)
	s.mu.Lock()
	defer s.mu.Unlock()
	for xid, w := range s.pending {
		if w.when.Before(cutoff) {
			delete(s.pending, xid)
		}
	}
	for xid, when := range s.done {
		if when.Before(cutoff) {
			delete(s.done, xid)
		}
	}
}
