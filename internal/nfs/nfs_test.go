package nfs

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"swift/internal/store"
	"swift/internal/transport/memnet"
)

func testSetup(t *testing.T, loss float64) (*Client, *store.Mem) {
	t.Helper()
	n := memnet.New(1)
	seg := n.NewSegment("s", memnet.SegmentConfig{BandwidthBps: 1e10, FrameOverhead: 46, LossRate: loss, Seed: 3})
	sh := n.MustHost("server", memnet.HostConfig{}, seg)
	ch := n.MustHost("client", memnet.HostConfig{}, seg)
	st := store.NewMem()
	srv, err := NewServer(sh, st, nil, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(ch, ClientConfig{Server: srv.Addr(), RetryTimeout: 30 * time.Millisecond, MaxRetries: 100})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
	})
	return cl, st
}

func TestCodecRoundTrip(t *testing.T) {
	m := &message{
		op: opRead, status: stOK, xid: 77, handle: 5,
		offset: 1 << 40, count: 8192, frag: 2, nfrags: 6,
		payload: []byte("data"),
	}
	buf, err := m.marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var q message
	if err := q.unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if q.op != m.op || q.xid != m.xid || q.offset != m.offset ||
		q.frag != m.frag || q.nfrags != m.nfrags || !bytes.Equal(q.payload, m.payload) {
		t.Fatalf("round trip mismatch: %+v", q)
	}
}

func TestCodecShort(t *testing.T) {
	var m message
	if err := m.unmarshal(make([]byte, headerSize-1)); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestFragsFor(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, FragSize: 1, FragSize + 1: 2, BlockSize: 7}
	for n, want := range cases {
		if got := fragsFor(n); got != want {
			t.Errorf("fragsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	cl, st := testSetup(t, 0)
	data := make([]byte, 50_000)
	rand.New(rand.NewSource(1)).Read(data)
	if err := cl.WriteFile("f", data); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Server store agrees.
	if sz, err := st.Stat("f"); err != nil || sz != int64(len(data)) {
		t.Fatalf("server size = %d, %v", sz, err)
	}
	out := make([]byte, len(data))
	n, err := cl.ReadFile("f", out)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if n != int64(len(data)) || !bytes.Equal(out, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestLookupMissing(t *testing.T) {
	cl, _ := testSetup(t, 0)
	if _, _, err := cl.Lookup("absent"); err == nil {
		t.Fatal("lookup of absent file succeeded")
	}
}

func TestGetattrAndRemove(t *testing.T) {
	cl, _ := testSetup(t, 0)
	if err := cl.WriteFile("f", make([]byte, 10_000)); err != nil {
		t.Fatal(err)
	}
	h, size, err := cl.Lookup("f")
	if err != nil || size != 10_000 {
		t.Fatalf("lookup: %d, %v", size, err)
	}
	if sz, err := cl.Getattr(h); err != nil || sz != 10_000 {
		t.Fatalf("getattr: %d, %v", sz, err)
	}
	if err := cl.Remove("f"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, _, err := cl.Lookup("f"); err == nil {
		t.Fatal("lookup after remove succeeded")
	}
}

func TestLossyRPCsRecover(t *testing.T) {
	cl, _ := testSetup(t, 0.05)
	data := make([]byte, 60_000)
	rand.New(rand.NewSource(2)).Read(data)
	if err := cl.WriteFile("f", data); err != nil {
		t.Fatalf("write under loss: %v", err)
	}
	out := make([]byte, len(data))
	if _, err := cl.ReadFile("f", out); err != nil {
		t.Fatalf("read under loss: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("lossy round trip mismatch")
	}
}

func TestPartialTailBlock(t *testing.T) {
	cl, _ := testSetup(t, 0)
	data := make([]byte, BlockSize+123)
	rand.New(rand.NewSource(3)).Read(data)
	if err := cl.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(data)+500)
	n, err := cl.ReadFile("f", out)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) || !bytes.Equal(out[:n], data) {
		t.Fatalf("tail block mismatch (n=%d)", n)
	}
}

func TestStaleHandle(t *testing.T) {
	cl, _ := testSetup(t, 0)
	if _, err := cl.Getattr(Handle(999)); err == nil {
		t.Fatal("stale handle accepted")
	}
}
