// Package workload generates synthetic request streams for driving Swift
// installations and the simulator: Poisson arrivals (the paper's
// exponential interarrival times), read/write mixes (its conservative 4:1
// ratio from the Berkeley trace study), and request-size distributions.
package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// Op is one generated request.
type Op struct {
	// Read distinguishes reads from writes.
	Read bool
	// Object names the target object.
	Object string
	// Offset and Size delimit the transfer.
	Offset int64
	Size   int64
	// Start is the arrival time relative to the stream's origin.
	Start time.Duration
}

// SizeDist draws request sizes.
type SizeDist interface {
	Draw(rng *rand.Rand) int64
}

// Fixed is a constant request size.
type Fixed int64

// Draw implements SizeDist.
func (f Fixed) Draw(*rand.Rand) int64 { return int64(f) }

// Uniform draws sizes uniformly from [Min, Max].
type Uniform struct {
	Min, Max int64
}

// Draw implements SizeDist.
func (u Uniform) Draw(rng *rand.Rand) int64 {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + rng.Int63n(u.Max-u.Min+1)
}

// Exponential draws sizes exponentially with the given mean, clamped to
// [Min, Max]. File-size distributions are heavy-tailed; this is the
// classic simple stand-in.
type Exponential struct {
	Mean     float64
	Min, Max int64
}

// Draw implements SizeDist.
func (e Exponential) Draw(rng *rand.Rand) int64 {
	s := int64(rng.ExpFloat64() * e.Mean)
	if s < e.Min {
		s = e.Min
	}
	if e.Max > 0 && s > e.Max {
		s = e.Max
	}
	return s
}

// Config parameterizes a generated stream.
type Config struct {
	// Rate is the arrival rate in requests/second (Poisson).
	Rate float64
	// ReadFraction is the probability a request is a read
	// (default 0.8: the paper's 4:1).
	ReadFraction float64
	// Sizes draws request sizes (default Fixed(128 KiB)).
	Sizes SizeDist
	// Objects is the number of distinct objects addressed
	// (default 16).
	Objects int
	// ObjectSize bounds request offsets within each object
	// (default 8 MiB).
	ObjectSize int64
	// Seed seeds the stream.
	Seed int64
}

func (c Config) filled() Config {
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.8
	}
	if c.Sizes == nil {
		c.Sizes = Fixed(128 * 1024)
	}
	if c.Objects == 0 {
		c.Objects = 16
	}
	if c.ObjectSize == 0 {
		c.ObjectSize = 8 << 20
	}
	return c
}

// Generator produces a deterministic request stream.
type Generator struct {
	cfg Config
	rng *rand.Rand
	now time.Duration
}

// New creates a generator.
func New(cfg Config) (*Generator, error) {
	cfg = cfg.filled()
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("workload: rate must be positive, got %v", cfg.Rate)
	}
	if cfg.ReadFraction < 0 || cfg.ReadFraction > 1 {
		return nil, fmt.Errorf("workload: read fraction %v out of [0,1]", cfg.ReadFraction)
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Next returns the next request in arrival order.
func (g *Generator) Next() Op {
	g.now += time.Duration(g.rng.ExpFloat64() / g.cfg.Rate * float64(time.Second))
	size := g.cfg.Sizes.Draw(g.rng)
	if size < 1 {
		size = 1
	}
	maxOff := g.cfg.ObjectSize - size
	var off int64
	if maxOff > 0 {
		off = g.rng.Int63n(maxOff + 1)
	}
	return Op{
		Read:   g.rng.Float64() < g.cfg.ReadFraction,
		Object: fmt.Sprintf("obj%03d", g.rng.Intn(g.cfg.Objects)),
		Offset: off,
		Size:   size,
		Start:  g.now,
	}
}

// Take returns the next n requests.
func (g *Generator) Take(n int) []Op {
	out := make([]Op, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
