package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestValidation(t *testing.T) {
	if _, err := New(Config{Rate: 0}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := New(Config{Rate: 1, ReadFraction: 1.5}); err == nil {
		t.Fatal("bad read fraction accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := New(Config{Rate: 10, Seed: 5})
	b, _ := New(Config{Rate: 10, Seed: 5})
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("generators diverged")
		}
	}
}

func TestArrivalRate(t *testing.T) {
	g, _ := New(Config{Rate: 50, Seed: 1})
	ops := g.Take(5000)
	elapsed := ops[len(ops)-1].Start
	rate := float64(len(ops)) / elapsed.Seconds()
	if rate < 45 || rate > 55 {
		t.Fatalf("measured rate %.1f, want ≈50", rate)
	}
	// Arrivals are monotone.
	var prev time.Duration
	for _, op := range ops {
		if op.Start < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = op.Start
	}
}

func TestReadFraction(t *testing.T) {
	g, _ := New(Config{Rate: 10, ReadFraction: 0.8, Seed: 2})
	reads := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if g.Next().Read {
			reads++
		}
	}
	frac := float64(reads) / n
	if math.Abs(frac-0.8) > 0.03 {
		t.Fatalf("read fraction = %.3f, want ≈0.8", frac)
	}
}

func TestSizeDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if Fixed(4096).Draw(rng) != 4096 {
		t.Fatal("fixed size wrong")
	}
	u := Uniform{Min: 10, Max: 20}
	for i := 0; i < 1000; i++ {
		s := u.Draw(rng)
		if s < 10 || s > 20 {
			t.Fatalf("uniform draw %d out of range", s)
		}
	}
	e := Exponential{Mean: 1000, Min: 1, Max: 10000}
	sum := 0.0
	for i := 0; i < 20000; i++ {
		s := e.Draw(rng)
		if s < 1 || s > 10000 {
			t.Fatalf("exp draw %d out of range", s)
		}
		sum += float64(s)
	}
	if mean := sum / 20000; mean < 850 || mean > 1150 {
		t.Fatalf("exp mean %.0f, want ≈1000 (minus clamp effects)", mean)
	}
}

func TestOpsWithinObjectBounds(t *testing.T) {
	f := func(seed int64) bool {
		g, err := New(Config{
			Rate:       5,
			Sizes:      Uniform{Min: 1, Max: 1 << 20},
			ObjectSize: 4 << 20,
			Seed:       seed,
		})
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			op := g.Next()
			if op.Offset < 0 || op.Size < 1 || op.Offset+op.Size > 4<<20 {
				return false
			}
			if op.Object == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
