// Package transport defines the datagram abstraction Swift's protocol runs
// over. Two implementations exist: udpnet (real UDP sockets, for deployed
// use) and memnet (an in-memory network with modeled Ethernet segments,
// host CPU costs, bounded queues and packet loss, for the measured
// experiments). The storage agents and the distribution agent are written
// against these interfaces and run unchanged over either.
package transport

import (
	"errors"
	"strings"
	"time"
)

// Sentinel errors.
var (
	// ErrTimeout is returned by ReadFrom when the read deadline passes.
	ErrTimeout = errors.New("transport: read timeout")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("transport: connection closed")
	// ErrNoRoute is returned when no path exists to the destination.
	ErrNoRoute = errors.New("transport: no route to host")
	// ErrTooLarge is returned for datagrams exceeding the medium's MTU.
	ErrTooLarge = errors.New("transport: datagram exceeds MTU")
)

// PacketConn is an unreliable, unordered datagram endpoint. Addresses are
// strings of the form "host:port".
type PacketConn interface {
	// WriteTo sends one datagram to addr. Delivery is best-effort.
	WriteTo(p []byte, addr string) error
	// ReadFrom receives one datagram into p, returning its length and
	// source address. If the datagram is longer than p it is truncated.
	// ReadFrom returns ErrTimeout when the deadline set by
	// SetReadDeadline passes.
	ReadFrom(p []byte) (n int, from string, err error)
	// SetReadDeadline bounds future ReadFrom calls. The zero time means
	// no deadline.
	SetReadDeadline(t time.Time) error
	// LocalAddr returns this endpoint's "host:port" address.
	LocalAddr() string
	// Close releases the endpoint; blocked reads return ErrClosed.
	Close() error
}

// Host is a network endpoint factory representing one machine. Port "0"
// requests an ephemeral port.
type Host interface {
	Listen(port string) (PacketConn, error)
	Name() string
}

// IsTimeout reports whether err is a read-deadline expiry from either
// transport implementation.
func IsTimeout(err error) bool {
	if errors.Is(err, ErrTimeout) {
		return true
	}
	var ne interface{ Timeout() bool }
	if errors.As(err, &ne) {
		return ne.Timeout()
	}
	return false
}

// SplitAddr splits "host:port" into its components.
func SplitAddr(addr string) (host, port string, ok bool) {
	i := strings.LastIndexByte(addr, ':')
	if i < 0 {
		return "", "", false
	}
	return addr[:i], addr[i+1:], true
}

// JoinAddr composes "host:port".
func JoinAddr(host, port string) string { return host + ":" + port }
