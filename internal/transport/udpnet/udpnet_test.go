package udpnet

import (
	"testing"
	"time"

	"swift/internal/transport"
)

func TestRoundTrip(t *testing.T) {
	h := NewHost("127.0.0.1")
	a, err := h.Listen("0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := h.Listen("0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.WriteTo([]byte("ping"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	b.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, from, err := b.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "ping" || from != a.LocalAddr() {
		t.Fatalf("got %q from %q", buf[:n], from)
	}
}

func TestTimeoutMapsToTransportError(t *testing.T) {
	h := NewHost("127.0.0.1")
	c, err := h.Listen("0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	if _, _, err := c.ReadFrom(make([]byte, 8)); !transport.IsTimeout(err) {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestBadAddressRejected(t *testing.T) {
	h := NewHost("127.0.0.1")
	c, err := h.Listen("0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteTo([]byte("x"), "not-an-address"); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestEmptyHostDefaultsToLoopback(t *testing.T) {
	if NewHost("").Name() != "127.0.0.1" {
		t.Fatal("empty host did not default")
	}
}

func TestDuplicateFixedPortFails(t *testing.T) {
	h := NewHost("127.0.0.1")
	a, err := h.Listen("0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	_, port, _ := transport.SplitAddr(a.LocalAddr())
	if _, err := h.Listen(port); err == nil {
		t.Fatal("duplicate bind succeeded")
	}
}
