// Package udpnet implements the transport interfaces over real UDP
// sockets, for running Swift agents and clients on an actual network (or
// the loopback interface). This is the deployment transport; the measured
// experiments use memnet so that medium capacity is controlled.
package udpnet

import (
	"fmt"
	"net"
	"time"

	"swift/internal/transport"
)

// Host binds endpoints on a single IP address (e.g. "127.0.0.1").
type Host struct {
	ip string
}

// NewHost returns a Host binding sockets on the given IP address.
// An empty ip binds the unspecified address.
func NewHost(ip string) *Host {
	if ip == "" {
		ip = "127.0.0.1"
	}
	return &Host{ip: ip}
}

// Name returns the host's IP address.
func (h *Host) Name() string { return h.ip }

// Listen opens a UDP socket on the given port ("0" for ephemeral).
func (h *Host) Listen(port string) (transport.PacketConn, error) {
	pc, err := net.ListenPacket("udp", net.JoinHostPort(h.ip, port))
	if err != nil {
		return nil, fmt.Errorf("udpnet: listen %s:%s: %w", h.ip, port, err)
	}
	return &conn{pc: pc}, nil
}

type conn struct {
	pc net.PacketConn
}

func (c *conn) WriteTo(p []byte, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("udpnet: resolve %q: %w", addr, err)
	}
	_, err = c.pc.WriteTo(p, ua)
	return err
}

func (c *conn) ReadFrom(p []byte) (int, string, error) {
	n, from, err := c.pc.ReadFrom(p)
	if err != nil {
		if te, ok := err.(net.Error); ok && te.Timeout() {
			return n, "", transport.ErrTimeout
		}
		return n, "", err
	}
	return n, from.String(), nil
}

func (c *conn) SetReadDeadline(t time.Time) error { return c.pc.SetReadDeadline(t) }

func (c *conn) LocalAddr() string { return c.pc.LocalAddr().String() }

func (c *conn) Close() error { return c.pc.Close() }
