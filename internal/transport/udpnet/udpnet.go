// Package udpnet implements the transport interfaces over real UDP
// sockets, for running Swift agents and clients on an actual network (or
// the loopback interface). This is the deployment transport; the measured
// experiments use memnet so that medium capacity is controlled.
package udpnet

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"swift/internal/obs"
	"swift/internal/transport"
)

// Host binds endpoints on a single IP address (e.g. "127.0.0.1").
// It keeps atomic traffic totals across all its sockets.
type Host struct {
	ip string

	pktsIn, pktsOut   atomic.Int64
	bytesIn, bytesOut atomic.Int64
}

// Stats is a snapshot of a Host's cumulative socket traffic.
type Stats struct {
	PacketsIn, PacketsOut int64
	BytesIn, BytesOut     int64
}

// Stats returns the host's cumulative traffic totals.
func (h *Host) Stats() Stats {
	return Stats{
		PacketsIn:  h.pktsIn.Load(),
		PacketsOut: h.pktsOut.Load(),
		BytesIn:    h.bytesIn.Load(),
		BytesOut:   h.bytesOut.Load(),
	}
}

// Register exports the host's traffic totals into reg, computed at export
// time from the live atomics.
func (h *Host) Register(reg *obs.Registry) {
	l := obs.Labels{"host": h.ip}
	reg.CounterFunc("swift_udp_packets_in_total", "UDP datagrams received.", l,
		func() float64 { return float64(h.pktsIn.Load()) })
	reg.CounterFunc("swift_udp_packets_out_total", "UDP datagrams sent.", l,
		func() float64 { return float64(h.pktsOut.Load()) })
	reg.CounterFunc("swift_udp_bytes_in_total", "UDP payload bytes received.", l,
		func() float64 { return float64(h.bytesIn.Load()) })
	reg.CounterFunc("swift_udp_bytes_out_total", "UDP payload bytes sent.", l,
		func() float64 { return float64(h.bytesOut.Load()) })
}

// NewHost returns a Host binding sockets on the given IP address.
// An empty ip binds the unspecified address.
func NewHost(ip string) *Host {
	if ip == "" {
		ip = "127.0.0.1"
	}
	return &Host{ip: ip}
}

// Name returns the host's IP address.
func (h *Host) Name() string { return h.ip }

// Listen opens a UDP socket on the given port ("0" for ephemeral).
func (h *Host) Listen(port string) (transport.PacketConn, error) {
	pc, err := net.ListenPacket("udp", net.JoinHostPort(h.ip, port))
	if err != nil {
		return nil, fmt.Errorf("udpnet: listen %s:%s: %w", h.ip, port, err)
	}
	return &conn{host: h, pc: pc}, nil
}

type conn struct {
	host *Host
	pc   net.PacketConn
}

func (c *conn) WriteTo(p []byte, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("udpnet: resolve %q: %w", addr, err)
	}
	_, err = c.pc.WriteTo(p, ua)
	if err == nil {
		c.host.pktsOut.Add(1)
		c.host.bytesOut.Add(int64(len(p)))
	}
	return err
}

func (c *conn) ReadFrom(p []byte) (int, string, error) {
	n, from, err := c.pc.ReadFrom(p)
	if err != nil {
		if te, ok := err.(net.Error); ok && te.Timeout() {
			return n, "", transport.ErrTimeout
		}
		return n, "", err
	}
	c.host.pktsIn.Add(1)
	c.host.bytesIn.Add(int64(n))
	return n, from.String(), nil
}

func (c *conn) SetReadDeadline(t time.Time) error { return c.pc.SetReadDeadline(t) }

func (c *conn) LocalAddr() string { return c.pc.LocalAddr().String() }

func (c *conn) Close() error { return c.pc.Close() }
