package memnet

import (
	"swift/internal/obs"
)

// Register exports the segment's traffic counters and bus utilization
// into reg. All series are computed at export time from the segment's own
// bookkeeping — registering adds no cost to the modeled data path.
func (s *Segment) Register(reg *obs.Registry) {
	l := obs.Labels{"segment": s.name}
	reg.CounterFunc("swift_net_frames_total", "Frames carried by the segment.", l,
		func() float64 { return float64(s.Stats().Frames) })
	reg.CounterFunc("swift_net_bytes_total", "Payload bytes carried by the segment.", l,
		func() float64 { return float64(s.Stats().Bytes) })
	reg.CounterFunc("swift_net_lost_total", "Frames dropped on the wire.", l,
		func() float64 { return float64(s.Stats().Lost) })
	reg.CounterFunc("swift_net_corrupted_total", "Frames delivered with a flipped payload byte.", l,
		func() float64 { return float64(s.Stats().Corrupted) })
	reg.CounterFunc("swift_net_deferrals_total", "Frames that found the bus busy and deferred.", l,
		func() float64 { return float64(s.Stats().Deferrals) })
	reg.GaugeFunc("swift_net_deferred_seconds", "Cumulative modeled time frames waited for the bus.", l,
		func() float64 { return s.Stats().DeferredTime.Seconds() })
	reg.GaugeFunc("swift_net_busy_seconds", "Cumulative modeled time the bus was occupied.", l,
		func() float64 { return s.Stats().BusyTime.Seconds() })
	reg.GaugeFunc("swift_net_utilization", "Fraction of modeled time the bus has been occupied.", l,
		func() float64 { return s.Utilization() })
}

// Register exports the host's queue-drop counter into reg.
func (h *Host) Register(reg *obs.Registry) {
	l := obs.Labels{"host": h.name}
	reg.CounterFunc("swift_net_host_drops_total",
		"Datagrams the host discarded from full ingress or port queues.", l,
		func() float64 { return float64(h.Drops()) })
}
