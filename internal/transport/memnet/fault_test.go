package memnet

import (
	"bytes"
	"testing"
	"time"

	"swift/internal/transport"
)

// recv reads one packet with a deadline, returning nil payload on timeout.
func recv(t *testing.T, c transport.PacketConn, d time.Duration) []byte {
	t.Helper()
	buf := make([]byte, 256)
	c.SetReadDeadline(time.Now().Add(d))
	n, _, err := c.ReadFrom(buf)
	if err != nil {
		if transport.IsTimeout(err) {
			return nil
		}
		t.Fatalf("read: %v", err)
	}
	return append([]byte(nil), buf[:n]...)
}

// TestRuntimeLossRate: the loss rate can be flipped while the segment is
// carrying traffic — a loss burst — and restored.
func TestRuntimeLossRate(t *testing.T) {
	n := New(1)
	seg := fastSeg(n, "s")
	a := n.MustHost("a", HostConfig{}, seg)
	b := n.MustHost("b", HostConfig{}, seg)
	ca, _ := a.Listen("1")
	cb, _ := b.Listen("2")

	ca.WriteTo([]byte("before"), "b:2")
	if got := recv(t, cb, time.Second); string(got) != "before" {
		t.Fatalf("pre-burst delivery = %q", got)
	}

	seg.SetLossRate(1.0)
	lost0 := seg.Stats().Lost
	ca.WriteTo([]byte("burst"), "b:2")
	if got := recv(t, cb, 50*time.Millisecond); got != nil {
		t.Fatalf("frame delivered through 100%% loss: %q", got)
	}
	if seg.Stats().Lost <= lost0 {
		t.Fatal("loss burst not counted")
	}

	seg.SetLossRate(0)
	ca.WriteTo([]byte("after"), "b:2")
	if got := recv(t, cb, time.Second); string(got) != "after" {
		t.Fatalf("post-burst delivery = %q", got)
	}
}

// TestIsolateHeal: an isolated host is cut off in both directions; Heal
// restores it.
func TestIsolateHeal(t *testing.T) {
	n := New(1)
	seg := fastSeg(n, "s")
	a := n.MustHost("a", HostConfig{}, seg)
	b := n.MustHost("b", HostConfig{}, seg)
	ca, _ := a.Listen("1")
	cb, _ := b.Listen("2")

	seg.Isolate("b")
	if !seg.Isolated("b") {
		t.Fatal("b not reported isolated")
	}
	ca.WriteTo([]byte("to-b"), "b:2")
	if got := recv(t, cb, 50*time.Millisecond); got != nil {
		t.Fatalf("frame crossed partition to b: %q", got)
	}
	cb.WriteTo([]byte("from-b"), "a:1")
	if got := recv(t, ca, 50*time.Millisecond); got != nil {
		t.Fatalf("frame crossed partition from b: %q", got)
	}

	seg.Heal()
	if seg.Isolated("b") {
		t.Fatal("b still isolated after heal")
	}
	ca.WriteTo([]byte("healed"), "b:2")
	if got := recv(t, cb, time.Second); string(got) != "healed" {
		t.Fatalf("post-heal delivery = %q", got)
	}
}

// TestLinkLoss: per-link loss affects only the configured direction.
func TestLinkLoss(t *testing.T) {
	n := New(1)
	seg := fastSeg(n, "s")
	a := n.MustHost("a", HostConfig{}, seg)
	b := n.MustHost("b", HostConfig{}, seg)
	ca, _ := a.Listen("1")
	cb, _ := b.Listen("2")

	seg.SetLinkLoss("a", "b", 1.0)
	ca.WriteTo([]byte("a-to-b"), "b:2")
	if got := recv(t, cb, 50*time.Millisecond); got != nil {
		t.Fatalf("frame survived a>b link loss: %q", got)
	}
	// The reverse direction is unaffected.
	cb.WriteTo([]byte("b-to-a"), "a:1")
	if got := recv(t, ca, time.Second); string(got) != "b-to-a" {
		t.Fatalf("reverse link delivery = %q", got)
	}
	seg.SetLinkLoss("a", "b", 0)
	ca.WriteTo([]byte("cleared"), "b:2")
	if got := recv(t, cb, time.Second); string(got) != "cleared" {
		t.Fatalf("post-clear delivery = %q", got)
	}
}

// TestExtraLatency: a latency spike delays delivery by about the extra
// amount in modeled time.
func TestExtraLatency(t *testing.T) {
	n := New(1)
	seg := fastSeg(n, "s")
	a := n.MustHost("a", HostConfig{}, seg)
	b := n.MustHost("b", HostConfig{}, seg)
	ca, _ := a.Listen("1")
	cb, _ := b.Listen("2")

	const extra = 80 * time.Millisecond
	seg.SetExtraLatency(extra)
	t0 := n.Now()
	ca.WriteTo([]byte("slow"), "b:2")
	if got := recv(t, cb, 2*time.Second); string(got) != "slow" {
		t.Fatalf("delivery under latency spike = %q", got)
	}
	if d := n.Now() - t0; d < extra {
		t.Fatalf("delivered after %v, want >= %v", d, extra)
	}

	seg.SetExtraLatency(0)
	t0 = n.Now()
	ca.WriteTo([]byte("fast"), "b:2")
	if got := recv(t, cb, 2*time.Second); string(got) != "fast" {
		t.Fatalf("post-spike delivery = %q", got)
	}
	if d := n.Now() - t0; d >= extra {
		t.Fatalf("delivery still slow after clear: %v", d)
	}
}

// TestCorruptRate: corruption flips payload bytes in transit and counts
// the frames; clearing stops it.
func TestCorruptRate(t *testing.T) {
	n := New(1)
	seg := fastSeg(n, "s")
	a := n.MustHost("a", HostConfig{}, seg)
	b := n.MustHost("b", HostConfig{}, seg)
	ca, _ := a.Listen("1")
	cb, _ := b.Listen("2")

	payload := bytes.Repeat([]byte{0xAA}, 64)
	seg.SetCorruptRate(1.0)
	ca.WriteTo(payload, "b:2")
	got := recv(t, cb, time.Second)
	if got == nil {
		t.Fatal("corrupted frame not delivered")
	}
	if bytes.Equal(got, payload) {
		t.Fatal("frame not corrupted at rate 1.0")
	}
	if seg.Stats().Corrupted == 0 {
		t.Fatal("corruption not counted")
	}

	seg.SetCorruptRate(0)
	ca.WriteTo(payload, "b:2")
	if got := recv(t, cb, time.Second); !bytes.Equal(got, payload) {
		t.Fatalf("frame corrupted after clear: %x", got)
	}
}

// TestPauseResume: a paused host neither sends nor delivers; resuming
// releases queued ingress frames.
func TestPauseResume(t *testing.T) {
	n := New(1)
	seg := fastSeg(n, "s")
	a := n.MustHost("a", HostConfig{}, seg)
	b := n.MustHost("b", HostConfig{}, seg)
	ca, _ := a.Listen("1")
	cb, _ := b.Listen("2")

	b.SetPaused(true)
	if !b.Paused() {
		t.Fatal("b not reported paused")
	}
	ca.WriteTo([]byte("queued"), "b:2")
	if got := recv(t, cb, 50*time.Millisecond); got != nil {
		t.Fatalf("paused host delivered %q", got)
	}
	// A paused host's own sends vanish (its protocol stack is frozen).
	cb.WriteTo([]byte("frozen"), "a:1")
	if got := recv(t, ca, 50*time.Millisecond); got != nil {
		t.Fatalf("paused host transmitted %q", got)
	}

	b.SetPaused(false)
	// The queued frame is released to the application.
	if got := recv(t, cb, time.Second); string(got) != "queued" {
		t.Fatalf("post-resume delivery = %q", got)
	}
}
