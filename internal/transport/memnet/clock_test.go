package memnet

import (
	"testing"
	"time"
)

func TestNowAdvancesWithScale(t *testing.T) {
	n := New(100)
	start := n.Now()
	time.Sleep(5 * time.Millisecond)
	modeled := n.Now() - start
	// 5ms real at scale 100 ≈ 500ms modeled (generous bounds for CI).
	if modeled < 300*time.Millisecond || modeled > 2*time.Second {
		t.Fatalf("modeled elapsed = %v, want ≈500ms", modeled)
	}
}

func TestSleeperChargesModeledTime(t *testing.T) {
	n := New(50)
	sleep := n.Sleeper()
	start := n.Now()
	sleep(200 * time.Millisecond) // modeled
	elapsed := n.Now() - start
	if elapsed < 190*time.Millisecond || elapsed > 400*time.Millisecond {
		t.Fatalf("modeled sleep = %v, want ≈200ms", elapsed)
	}
}

func TestScaleDefaultsToOne(t *testing.T) {
	if New(0).Scale() != 1 || New(-3).Scale() != 1 {
		t.Fatal("non-positive scale not defaulted")
	}
	if New(25).Scale() != 25 {
		t.Fatal("scale not stored")
	}
}

func TestSegmentStatsAccumulate(t *testing.T) {
	n := New(1)
	seg := n.NewSegment("s", SegmentConfig{BandwidthBps: 1e9, FrameOverhead: 46})
	a := n.MustHost("a", HostConfig{}, seg)
	b := n.MustHost("b", HostConfig{}, seg)
	ca, _ := a.Listen("1")
	cb, _ := b.Listen("1")
	const frames = 20
	for i := 0; i < frames; i++ {
		if err := ca.WriteTo(make([]byte, 1000), "b:1"); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 1500)
	for i := 0; i < frames; i++ {
		cb.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, _, err := cb.ReadFrom(buf); err != nil {
			t.Fatal(err)
		}
	}
	st := seg.Stats()
	if st.Frames != frames || st.Bytes != frames*1000 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BusyTime <= 0 {
		t.Fatal("no busy time recorded")
	}
}

func TestHostCloseDropsTraffic(t *testing.T) {
	n := New(1)
	seg := n.NewSegment("s", SegmentConfig{BandwidthBps: 1e9})
	a := n.MustHost("a", HostConfig{}, seg)
	b := n.MustHost("b", HostConfig{}, seg)
	ca, _ := a.Listen("1")
	cb, _ := b.Listen("1")
	b.Close()
	// Reads on the closed host's conn fail.
	if _, _, err := cb.ReadFrom(make([]byte, 8)); err == nil {
		t.Fatal("read on closed host succeeded")
	}
	// Sends toward it do not wedge the sender.
	for i := 0; i < 5; i++ {
		if err := ca.WriteTo([]byte("x"), "b:1"); err != nil {
			t.Fatalf("send to closed host errored hard: %v", err)
		}
	}
	// Double close is safe.
	b.Close()
}

func TestListenAfterHostClose(t *testing.T) {
	n := New(1)
	seg := n.NewSegment("s", SegmentConfig{BandwidthBps: 1e9})
	a := n.MustHost("a", HostConfig{}, seg)
	a.Close()
	if _, err := a.Listen("0"); err == nil {
		t.Fatal("listen on closed host succeeded")
	}
}
