// Package memnet is an in-memory datagram network with modeled media.
// It reproduces the environment of the paper's prototype measurements:
// one or more shared-bus Ethernet segments with finite bandwidth and
// per-frame overhead, hosts with per-packet send/receive CPU costs and
// bounded receive queues (the SunOS buffer-space losses the prototype
// fought), and optional random loss.
//
// All medium and CPU bookkeeping is done in *modeled time* anchored to the
// network's epoch; goroutines sleep until the real-time projection of a
// modeled instant. A time-scale factor S runs the model S× faster than
// wall-clock while keeping modeled rates exact: scheduling decisions are
// made from the modeled timeline, so sleep jitter does not accumulate into
// throughput error.
//
// The same protocol code that runs over real UDP runs over memnet
// unchanged; only capacities and costs differ.
package memnet

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"swift/internal/transport"
)

// Net is an in-memory network: a set of hosts attached to segments.
type Net struct {
	scale float64
	epoch time.Time

	mu    sync.Mutex
	hosts map[string]*Host
}

// New creates a network whose modeled time runs scale× faster than real
// time (scale >= 1; 1 means real time).
func New(scale float64) *Net {
	if scale <= 0 {
		scale = 1
	}
	return &Net{
		scale: scale,
		//lint:allow clockcheck the epoch anchors modeled time to the wall clock; every other timestamp derives from it
		epoch: time.Now(),
		hosts: make(map[string]*Host),
	}
}

// Scale returns the time-scale factor.
func (n *Net) Scale() float64 { return n.scale }

// Close shuts down every host on the network, stopping their receive
// loops. Idempotent; intended for test teardown so leak checks see a
// quiet network.
func (n *Net) Close() {
	n.mu.Lock()
	hosts := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		hosts = append(hosts, h)
	}
	n.mu.Unlock()
	for _, h := range hosts {
		h.Close()
	}
}

// Now returns the current modeled time since the network's epoch. This
// is the clock seam itself: all model code reads time through it.
func (n *Net) Now() time.Duration {
	//lint:allow clockcheck this is the injected clock's implementation: modeled time is scaled wall time since the epoch
	return time.Duration(float64(time.Since(n.epoch)) * n.scale)
}

// Sleep blocks for a modeled duration. It funnels through sleepUntil so
// the wall clock is only read via the Now seam.
func (n *Net) Sleep(d time.Duration) {
	if d > 0 {
		n.sleepUntil(n.Now() + d)
	}
}

// Sleeper returns Sleep as a plain function, for injecting into modeled
// devices (e.g. disk.Device) so their delays share the network's clock.
func (n *Net) Sleeper() func(time.Duration) { return n.Sleep }

// sleepUntil blocks until the modeled instant t (since epoch).
func (n *Net) sleepUntil(t time.Duration) {
	sleepReal(n.epoch.Add(time.Duration(float64(t) / n.scale)))
}

// sleepReal blocks until the real instant target. The kernel timer floor
// can exceed a millisecond, which would turn into large modeled idle gaps
// at high time scales; so the tail of every wait is spun cooperatively
// (Gosched keeps other model goroutines running on small machines).
func sleepReal(target time.Time) {
	const spinWindow = 2 * time.Millisecond
	for {
		//lint:allow clockcheck sleepReal is the pacing primitive: it burns real time to realize modeled delays
		d := time.Until(target)
		if d <= 0 {
			return
		}
		if d > spinWindow {
			//lint:allow clockcheck sleepReal is the pacing primitive: it burns real time to realize modeled delays
			time.Sleep(d - spinWindow)
			continue
		}
		runtime.Gosched()
	}
}

// SegmentConfig parameterizes a shared-bus medium.
type SegmentConfig struct {
	// BandwidthBps is the raw medium bandwidth in bits/second.
	BandwidthBps float64
	// FrameOverhead is the per-datagram framing overhead in bytes
	// (preamble, MAC header/FCS, inter-frame gap, IP/UDP headers).
	FrameOverhead int
	// MTU is the largest datagram payload accepted (0 = 1500).
	MTU int
	// Latency is the one-way propagation delay added after transmission.
	Latency time.Duration
	// LossRate drops transmitted frames with this probability.
	LossRate float64
	// ReorderRate delays a frame's delivery by ReorderDelay with this
	// probability, letting later frames overtake it — UDP reordering.
	ReorderRate float64
	// ReorderDelay is the extra delivery delay for reordered frames
	// (0 = 2ms).
	ReorderDelay time.Duration
	// Seed seeds the segment's loss RNG.
	Seed int64
}

// Segment is one shared-bus medium. Transmissions serialize on the bus in
// modeled time; a sender occupies the bus for the frame's transmission
// time, which is how saturation and contention emerge.
//
// A segment's loss rate, extra latency, payload-corruption rate, per-link
// loss and host isolation set are adjustable at runtime while traffic is
// flowing — the injection points used by internal/faultinject.
type Segment struct {
	net  *Net
	name string
	cfg  SegmentConfig

	mu           sync.Mutex
	busyUntil    time.Duration
	busyAccum    time.Duration
	frames       int64
	bytes        int64
	lost         int64
	corrupted    int64
	deferrals    int64         // frames that found the bus busy
	deferredTime time.Duration // modeled time spent waiting for the bus
	rng          *rand.Rand

	// Runtime fault state (initialized from cfg, mutable while running).
	lossRate     float64
	extraLatency time.Duration
	corruptRate  float64
	linkLoss     map[string]float64 // "src>dst" host pair → loss probability
	isolated     map[string]bool    // hosts cut off from the segment
}

// NewSegment creates a medium on the network.
func (n *Net) NewSegment(name string, cfg SegmentConfig) *Segment {
	if cfg.MTU == 0 {
		cfg.MTU = 1500
	}
	return &Segment{
		net:      n,
		name:     name,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed + 1)),
		lossRate: cfg.LossRate,
	}
}

// SetLossRate replaces the segment's frame loss probability at runtime.
func (s *Segment) SetLossRate(p float64) {
	s.mu.Lock()
	s.lossRate = p
	s.mu.Unlock()
}

// SetExtraLatency adds d to every frame's delivery time — a runtime
// latency spike (0 restores normal propagation delay).
func (s *Segment) SetExtraLatency(d time.Duration) {
	s.mu.Lock()
	s.extraLatency = d
	s.mu.Unlock()
}

// SetCorruptRate makes the segment flip one payload byte of transmitted
// frames with probability p. Corrupted frames are delivered; detecting and
// rejecting them is the protocol's job (wire's CRC).
func (s *Segment) SetCorruptRate(p float64) {
	s.mu.Lock()
	s.corruptRate = p
	s.mu.Unlock()
}

// SetLinkLoss sets an additional loss probability for frames from host src
// to host dst (0 removes the entry). This models a single bad cable or
// transceiver rather than a congested bus.
func (s *Segment) SetLinkLoss(src, dst string, p float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p <= 0 {
		delete(s.linkLoss, src+">"+dst)
		return
	}
	if s.linkLoss == nil {
		s.linkLoss = make(map[string]float64)
	}
	s.linkLoss[src+">"+dst] = p
}

// Isolate partitions the named hosts off the segment: frames to or from
// them are dropped on the wire until Heal. Other hosts keep communicating.
func (s *Segment) Isolate(hosts ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.isolated == nil {
		s.isolated = make(map[string]bool)
	}
	for _, h := range hosts {
		s.isolated[h] = true
	}
}

// Heal removes every host isolation on the segment.
func (s *Segment) Heal() {
	s.mu.Lock()
	s.isolated = nil
	s.mu.Unlock()
}

// Isolated reports whether the named host is currently partitioned off.
func (s *Segment) Isolated(host string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.isolated[host]
}

// Name returns the segment's name.
func (s *Segment) Name() string { return s.name }

// frameTime returns the modeled transmission time of an n-byte datagram.
func (s *Segment) frameTime(n int) time.Duration {
	bits := float64(n+s.cfg.FrameOverhead) * 8
	return time.Duration(bits / s.cfg.BandwidthBps * float64(time.Second))
}

// Stats reports the segment's cumulative traffic counters.
type Stats struct {
	Frames       int64
	Bytes        int64 // payload bytes carried
	Lost         int64
	Corrupted    int64         // frames delivered with a flipped payload byte
	BusyTime     time.Duration // modeled time the bus was occupied
	Deferrals    int64         // frames that found the bus busy and waited
	DeferredTime time.Duration // modeled time frames spent waiting for the bus
}

// Stats returns a snapshot of the segment's counters.
func (s *Segment) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Frames: s.frames, Bytes: s.bytes, Lost: s.lost,
		Corrupted: s.corrupted, BusyTime: s.busyAccum,
		Deferrals: s.deferrals, DeferredTime: s.deferredTime}
}

// Utilization returns the fraction of modeled time since the network's
// epoch that the bus has been occupied — the figure the paper reports for
// its saturated Ethernet runs.
func (s *Segment) Utilization() float64 {
	now := s.net.Now()
	if now <= 0 {
		return 0
	}
	s.mu.Lock()
	busy := s.busyAccum
	s.mu.Unlock()
	return float64(busy) / float64(now)
}

// Capacity returns the effective payload capacity in bytes/second for
// datagrams of the given payload size, i.e. the medium's maximum data-rate
// as an application measures it.
func (s *Segment) Capacity(payload int) float64 {
	ft := s.frameTime(payload)
	return float64(payload) / ft.Seconds()
}

// HostConfig parameterizes a machine's network processing.
type HostConfig struct {
	// SendCPU is the per-packet protocol processing cost on transmit.
	SendCPU time.Duration
	// RecvCPU is the per-packet protocol processing cost on receive.
	// The prototype's SPARCstation 2 client is receive-bound; this is
	// the knob that reproduces the paper's Table 4 read behaviour.
	RecvCPU time.Duration
	// SendPerByte / RecvPerByte add a per-byte cost (data copying).
	SendPerByte time.Duration
	RecvPerByte time.Duration
	// IngressQueue bounds datagrams awaiting receive processing
	// (0 = 512). Overflow is dropped, modeling kernel buffer exhaustion.
	IngressQueue int
	// PortQueue bounds datagrams queued on each port (0 = 256).
	PortQueue int
}

// Host is one machine attached to one or more segments.
type Host struct {
	net  *Net
	name string
	cfg  HostConfig
	segs []*Segment

	mu        sync.Mutex
	ports     map[string]*conn
	ephemeral int
	txUntil   time.Duration
	closed    bool
	paused    bool

	ingress chan inPacket
	done    chan struct{} // closed by Host.Close; stops the receive loop

	drops int64 // ingress + port queue drops
}

type inPacket struct {
	payload []byte
	from    string
	port    string
	arrival time.Duration
}

// NewHost creates a host attached to the given segments. Host names must
// be unique within the network.
func (n *Net) NewHost(name string, cfg HostConfig, segs ...*Segment) (*Host, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("memnet: host %q needs at least one segment", name)
	}
	if cfg.IngressQueue == 0 {
		cfg.IngressQueue = 512
	}
	if cfg.PortQueue == 0 {
		cfg.PortQueue = 256
	}
	h := &Host{
		net:     n,
		name:    name,
		cfg:     cfg,
		segs:    segs,
		ports:   make(map[string]*conn),
		ingress: make(chan inPacket, cfg.IngressQueue),
		done:    make(chan struct{}),
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.hosts[name]; dup {
		return nil, fmt.Errorf("memnet: duplicate host %q", name)
	}
	n.hosts[name] = h
	go h.receiveLoop()
	return h, nil
}

// MustHost is NewHost that panics on error, for test and harness setup.
func (n *Net) MustHost(name string, cfg HostConfig, segs ...*Segment) *Host {
	h, err := n.NewHost(name, cfg, segs...)
	if err != nil {
		panic(err)
	}
	return h
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Drops returns the number of datagrams this host discarded due to full
// ingress or port queues.
func (h *Host) Drops() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.drops
}

// SetPaused freezes (true) or thaws (false) the host, like SIGSTOP on the
// machine's protocol stack: while paused it transmits nothing and
// processes no ingress. Arriving frames queue in the ingress buffer (and
// overflow drops, modeling kernel buffer exhaustion); they are processed
// after resume.
func (h *Host) SetPaused(p bool) {
	h.mu.Lock()
	h.paused = p
	h.mu.Unlock()
}

// Paused reports whether the host is currently frozen.
func (h *Host) Paused() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.paused
}

// receiveLoop models the host's receive-side protocol processing: packets
// are handled one at a time, each charged the per-packet (and per-byte)
// receive cost, then delivered to the destination port's queue.
func (h *Host) receiveLoop() {
	var cpuUntil time.Duration
	for {
		var pkt inPacket
		select {
		case pkt = <-h.ingress:
		case <-h.done:
			return
		}
		h.net.sleepUntil(pkt.arrival)
		for h.Paused() { // frozen: hold processing until resumed
			select {
			case <-h.done:
				return
			default:
			}
			h.net.Sleep(200 * time.Microsecond)
		}
		cost := h.cfg.RecvCPU + time.Duration(len(pkt.payload))*h.cfg.RecvPerByte
		if cost > 0 {
			start := h.net.Now()
			if start < cpuUntil {
				start = cpuUntil
			}
			cpuUntil = start + cost
			h.net.sleepUntil(cpuUntil)
		}
		h.mu.Lock()
		c := h.ports[pkt.port]
		h.mu.Unlock()
		if c == nil {
			continue // no listener: silently dropped, like UDP
		}
		select {
		case c.queue <- pkt:
		default:
			h.mu.Lock()
			h.drops++
			h.mu.Unlock()
		}
	}
}

// Close shuts down the host's receive processing. Intended for teardown in
// tests; sends to a closed host are dropped.
func (h *Host) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	conns := make([]*conn, 0, len(h.ports))
	for _, c := range h.ports {
		conns = append(conns, c)
	}
	h.ports = map[string]*conn{}
	h.mu.Unlock()
	for _, c := range conns {
		c.markClosed()
	}
	close(h.done)
}

// Listen opens a datagram endpoint on the given port ("0" = ephemeral).
func (h *Host) Listen(port string) (transport.PacketConn, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, transport.ErrClosed
	}
	if port == "0" || port == "" {
		for {
			h.ephemeral++
			port = fmt.Sprintf("%d", 40000+h.ephemeral)
			if _, used := h.ports[port]; !used {
				break
			}
		}
	} else if _, used := h.ports[port]; used {
		return nil, fmt.Errorf("memnet: port %s:%s already in use", h.name, port)
	}
	c := &conn{
		host:  h,
		port:  port,
		queue: make(chan inPacket, h.cfg.PortQueue),
		done:  make(chan struct{}),
	}
	h.ports[port] = c
	return c, nil
}

// route finds the first segment shared with the destination host.
func (h *Host) route(dst *Host) *Segment {
	for _, s := range h.segs {
		for _, d := range dst.segs {
			if s == d {
				return s
			}
		}
	}
	return nil
}

// send models the full transmission of one datagram: sender CPU, bus
// acquisition and occupancy, propagation, then hand-off to the receiving
// host's ingress queue. It blocks the caller for the modeled send time,
// like a blocking sendto(2) on a saturated interface.
func (h *Host) send(p []byte, dstHost *Host, dstPort, from string) error {
	seg := h.route(dstHost)
	if seg == nil {
		return transport.ErrNoRoute
	}
	if len(p) > seg.cfg.MTU {
		return transport.ErrTooLarge
	}
	if h.Paused() {
		return nil // a stopped machine transmits nothing
	}

	// Sender protocol processing (serialized per host).
	cost := h.cfg.SendCPU + time.Duration(len(p))*h.cfg.SendPerByte
	var cpuDone time.Duration
	h.mu.Lock()
	start := h.net.Now()
	if start < h.txUntil {
		start = h.txUntil
	}
	cpuDone = start + cost
	h.txUntil = cpuDone
	h.mu.Unlock()

	// Bus occupancy.
	ft := seg.frameTime(len(p))
	seg.mu.Lock()
	busStart := cpuDone
	if now := h.net.Now(); busStart < now {
		busStart = now
	}
	if busStart < seg.busyUntil {
		// Contention: another sender holds the bus; this frame defers
		// until the medium frees up (CSMA deference, minus collisions).
		seg.deferrals++
		seg.deferredTime += seg.busyUntil - busStart
		busStart = seg.busyUntil
	}
	txEnd := busStart + ft
	seg.busyUntil = txEnd
	seg.busyAccum += ft
	seg.frames++
	seg.bytes += int64(len(p))
	lost := seg.lossRate > 0 && seg.rng.Float64() < seg.lossRate
	if !lost && seg.isolated != nil && (seg.isolated[h.name] || seg.isolated[dstHost.name]) {
		lost = true // partitioned: the frame never reaches the far side
	}
	if !lost && seg.linkLoss != nil {
		if lp, ok := seg.linkLoss[h.name+">"+dstHost.name]; ok && seg.rng.Float64() < lp {
			lost = true
		}
	}
	if lost {
		seg.lost++
	}
	corruptAt := -1
	var corruptMask byte
	if !lost && seg.corruptRate > 0 && len(p) > 0 && seg.rng.Float64() < seg.corruptRate {
		corruptAt = seg.rng.Intn(len(p))
		corruptMask = byte(1 + seg.rng.Intn(255)) // never a no-op flip
		seg.corrupted++
	}
	extraLat := seg.extraLatency
	reordered := !lost && seg.cfg.ReorderRate > 0 && seg.rng.Float64() < seg.cfg.ReorderRate
	seg.mu.Unlock()

	h.net.sleepUntil(txEnd)
	if lost {
		return nil // dropped on the wire; sender cannot tell
	}

	dstHost.mu.Lock()
	dstClosed := dstHost.closed
	dstHost.mu.Unlock()
	if dstClosed {
		return nil // like sending to a powered-off machine
	}
	payload := append([]byte(nil), p...)
	if corruptAt >= 0 {
		payload[corruptAt] ^= corruptMask
	}
	pkt := inPacket{
		payload: payload,
		from:    from,
		port:    dstPort,
		arrival: txEnd + seg.cfg.Latency + extraLat,
	}
	if reordered {
		// Hold the frame back so later traffic overtakes it, then
		// inject it with its (past) arrival time.
		delay := seg.cfg.ReorderDelay
		if delay == 0 {
			delay = 2 * time.Millisecond
		}
		late := pkt
		late.arrival += delay
		go func() {
			h.net.sleepUntil(late.arrival)
			deliver(dstHost, late)
		}()
		return nil
	}
	deliver(dstHost, pkt)
	return nil
}

// deliver hands a frame to the destination host's ingress queue, counting
// a drop on overflow.
func deliver(dst *Host, pkt inPacket) {
	select {
	case dst.ingress <- pkt:
	default:
		dst.mu.Lock()
		dst.drops++
		dst.mu.Unlock()
	}
}

// conn is a memnet datagram endpoint.
type conn struct {
	host  *Host
	port  string
	queue chan inPacket

	mu       sync.Mutex
	deadline time.Time
	closed   bool
	done     chan struct{}
}

func (c *conn) LocalAddr() string { return transport.JoinAddr(c.host.name, c.port) }

func (c *conn) WriteTo(p []byte, addr string) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return transport.ErrClosed
	}
	dhost, dport, ok := transport.SplitAddr(addr)
	if !ok {
		return fmt.Errorf("memnet: bad address %q", addr)
	}
	c.host.net.mu.Lock()
	dst := c.host.net.hosts[dhost]
	c.host.net.mu.Unlock()
	if dst == nil {
		return transport.ErrNoRoute
	}
	return c.host.send(p, dst, dport, c.LocalAddr())
}

func (c *conn) ReadFrom(p []byte) (int, string, error) {
	c.mu.Lock()
	deadline := c.deadline
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return 0, "", transport.ErrClosed
	}

	var timeout <-chan time.Time
	if !deadline.IsZero() {
		//lint:allow clockcheck SetReadDeadline takes a wall-clock time.Time by the transport.PacketConn contract
		d := time.Until(deadline)
		if d <= 0 {
			// Still drain a ready packet, like the socket API.
			select {
			case pkt := <-c.queue:
				return copy(p, pkt.payload), pkt.from, nil
			default:
				return 0, "", transport.ErrTimeout
			}
		}
		//lint:allow clockcheck the read-deadline timer measures real waiting, mirroring the socket API
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}

	select {
	case pkt := <-c.queue:
		return copy(p, pkt.payload), pkt.from, nil
	case <-timeout:
		return 0, "", transport.ErrTimeout
	case <-c.done:
		return 0, "", transport.ErrClosed
	}
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	c.mu.Unlock()
	return nil
}

func (c *conn) Close() error {
	c.host.mu.Lock()
	if c.host.ports[c.port] == c {
		delete(c.host.ports, c.port)
	}
	c.host.mu.Unlock()
	c.markClosed()
	return nil
}

// markClosed marks the conn closed and wakes blocked readers.
func (c *conn) markClosed() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.done)
	}
}
