package memnet

import (
	"strings"
	"sync"
	"testing"

	"swift/internal/obs"
)

// TestContentionDeferrals: two hosts transmitting concurrently on a slow
// bus must serialize, and the loser's wait must be counted as a deferral.
func TestContentionDeferrals(t *testing.T) {
	n := New(1000)
	// 1 Mbit/s: a 1000-byte frame occupies the bus ~8ms modeled.
	seg := n.NewSegment("bus", SegmentConfig{BandwidthBps: 1e6, FrameOverhead: 46})
	a := n.MustHost("a", HostConfig{}, seg)
	b := n.MustHost("b", HostConfig{}, seg)
	dst := n.MustHost("dst", HostConfig{}, seg)
	dc, err := dst.Listen("9")
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()

	// Each sender pushes several back-to-back frames; with two senders
	// interleaving on one bus at least one transmission must start while
	// the medium is busy, whatever the goroutine schedule.
	const framesPerSender = 8
	payload := make([]byte, 1000)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for _, h := range []*Host{a, b} {
		conn, err := h.Listen("0")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		wg.Add(1)
		go func(c interface {
			WriteTo([]byte, string) error
		}) {
			defer wg.Done()
			<-start
			for i := 0; i < framesPerSender; i++ {
				if err := c.WriteTo(payload, "dst:9"); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		}(conn)
	}
	close(start)
	wg.Wait()

	st := seg.Stats()
	if st.Frames != 2*framesPerSender {
		t.Fatalf("frames = %d, want %d", st.Frames, 2*framesPerSender)
	}
	if st.Deferrals == 0 {
		t.Fatal("deferrals = 0, want > 0 (two concurrent senders, one bus)")
	}
	if st.DeferredTime <= 0 {
		t.Fatalf("deferred time = %v, want > 0", st.DeferredTime)
	}
	if u := seg.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization = %v, want (0,1]", u)
	}
}

// TestSegmentRegister: the export-time series reflect the live counters.
func TestSegmentRegister(t *testing.T) {
	n := New(1000)
	seg := n.NewSegment("bus", SegmentConfig{BandwidthBps: 1e9, FrameOverhead: 46})
	a := n.MustHost("a", HostConfig{}, seg)
	dst := n.MustHost("dst", HostConfig{}, seg)
	dc, err := dst.Listen("9")
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	conn, err := a.Listen("0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	reg := obs.NewRegistry()
	seg.Register(reg)
	a.Register(reg)
	dst.Register(reg)

	if err := conn.WriteTo(make([]byte, 100), "dst:9"); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`swift_net_frames_total{segment="bus"} 1`,
		`swift_net_bytes_total{segment="bus"} 100`,
		"swift_net_utilization",
		`swift_net_host_drops_total{host="a"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q in:\n%s", want, out)
		}
	}
}
