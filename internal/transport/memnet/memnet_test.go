package memnet

import (
	"sync"
	"testing"
	"time"

	"swift/internal/transport"
)

func fastSeg(n *Net, name string) *Segment {
	return n.NewSegment(name, SegmentConfig{BandwidthBps: 1e10, FrameOverhead: 46})
}

func TestDeliverReceive(t *testing.T) {
	n := New(1)
	seg := fastSeg(n, "s")
	a := n.MustHost("a", HostConfig{}, seg)
	b := n.MustHost("b", HostConfig{}, seg)
	ca, _ := a.Listen("100")
	cb, _ := b.Listen("200")

	if err := ca.WriteTo([]byte("ping"), "b:200"); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 64)
	cb.SetReadDeadline(time.Now().Add(2 * time.Second))
	rn, from, err := cb.ReadFrom(buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf[:rn]) != "ping" || from != "a:100" {
		t.Fatalf("got %q from %q", buf[:rn], from)
	}
}

func TestReadTimeout(t *testing.T) {
	n := New(1)
	seg := fastSeg(n, "s")
	a := n.MustHost("a", HostConfig{}, seg)
	c, _ := a.Listen("1")
	c.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
	_, _, err := c.ReadFrom(make([]byte, 16))
	if !transport.IsTimeout(err) {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestCloseUnblocksRead(t *testing.T) {
	n := New(1)
	seg := fastSeg(n, "s")
	a := n.MustHost("a", HostConfig{}, seg)
	c, _ := a.Listen("1")
	done := make(chan error, 1)
	go func() {
		_, _, err := c.ReadFrom(make([]byte, 16))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err != transport.ErrClosed {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read did not unblock")
	}
}

func TestNoRouteAcrossSegments(t *testing.T) {
	n := New(1)
	s1 := fastSeg(n, "s1")
	s2 := fastSeg(n, "s2")
	a := n.MustHost("a", HostConfig{}, s1)
	n.MustHost("b", HostConfig{}, s2)
	c, _ := a.Listen("1")
	if err := c.WriteTo([]byte("x"), "b:1"); err != transport.ErrNoRoute {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
	if err := c.WriteTo([]byte("x"), "nosuch:1"); err != transport.ErrNoRoute {
		t.Fatalf("unknown host err = %v", err)
	}
}

func TestMultiHomedRouting(t *testing.T) {
	// A host on two segments reaches peers on either.
	n := New(1)
	s1 := fastSeg(n, "s1")
	s2 := fastSeg(n, "s2")
	client := n.MustHost("client", HostConfig{}, s1, s2)
	p1 := n.MustHost("p1", HostConfig{}, s1)
	p2 := n.MustHost("p2", HostConfig{}, s2)
	cc, _ := client.Listen("1")
	c1, _ := p1.Listen("1")
	c2, _ := p2.Listen("1")

	cc.WriteTo([]byte("one"), "p1:1")
	cc.WriteTo([]byte("two"), "p2:1")
	buf := make([]byte, 16)
	c1.SetReadDeadline(time.Now().Add(2 * time.Second))
	if rn, _, err := c1.ReadFrom(buf); err != nil || string(buf[:rn]) != "one" {
		t.Fatalf("p1: %v %q", err, buf[:rn])
	}
	c2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if rn, _, err := c2.ReadFrom(buf); err != nil || string(buf[:rn]) != "two" {
		t.Fatalf("p2: %v %q", err, buf[:rn])
	}
}

func TestMTUEnforced(t *testing.T) {
	n := New(1)
	seg := n.NewSegment("s", SegmentConfig{BandwidthBps: 1e10, MTU: 100})
	a := n.MustHost("a", HostConfig{}, seg)
	n.MustHost("b", HostConfig{}, seg)
	c, _ := a.Listen("1")
	if err := c.WriteTo(make([]byte, 101), "b:1"); err != transport.ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestLossDropsFrames(t *testing.T) {
	n := New(1)
	seg := n.NewSegment("s", SegmentConfig{BandwidthBps: 1e10, LossRate: 1.0, Seed: 1})
	a := n.MustHost("a", HostConfig{}, seg)
	b := n.MustHost("b", HostConfig{}, seg)
	ca, _ := a.Listen("1")
	cb, _ := b.Listen("1")
	for i := 0; i < 10; i++ {
		ca.WriteTo([]byte("x"), "b:1")
	}
	cb.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, _, err := cb.ReadFrom(make([]byte, 8)); !transport.IsTimeout(err) {
		t.Fatalf("err = %v, want timeout (all frames lost)", err)
	}
	if st := seg.Stats(); st.Lost != 10 {
		t.Fatalf("lost = %d, want 10", st.Lost)
	}
}

func TestBandwidthThrottling(t *testing.T) {
	// 1000-byte payloads, zero overhead, 8 Mb/s => 1ms per frame.
	// 50 frames should take ≈50ms of wall-clock at scale 1.
	n := New(1)
	seg := n.NewSegment("s", SegmentConfig{BandwidthBps: 8e6})
	a := n.MustHost("a", HostConfig{}, seg)
	b := n.MustHost("b", HostConfig{}, seg)
	ca, _ := a.Listen("1")
	cb, _ := b.Listen("1")

	start := time.Now()
	go func() {
		for i := 0; i < 50; i++ {
			ca.WriteTo(make([]byte, 1000), "b:1")
		}
	}()
	buf := make([]byte, 1500)
	for i := 0; i < 50; i++ {
		cb.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, _, err := cb.ReadFrom(buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 40*time.Millisecond || elapsed > 250*time.Millisecond {
		t.Fatalf("50 frames took %v, want ≈50ms", elapsed)
	}
	rate := 50 * 1000 / elapsed.Seconds()
	if rate > 8e6/8*1.05 {
		t.Fatalf("measured %.0f B/s exceeds medium capacity", rate)
	}
}

func TestTimeScaleSpeedsUpWallClock(t *testing.T) {
	// Same transfer at scale 20 should take ≈1/20 the wall-clock.
	n := New(20)
	seg := n.NewSegment("s", SegmentConfig{BandwidthBps: 8e6})
	a := n.MustHost("a", HostConfig{}, seg)
	b := n.MustHost("b", HostConfig{}, seg)
	ca, _ := a.Listen("1")
	cb, _ := b.Listen("1")

	start := time.Now()
	modelStart := n.Now()
	go func() {
		for i := 0; i < 100; i++ {
			ca.WriteTo(make([]byte, 1000), "b:1")
		}
	}()
	buf := make([]byte, 1500)
	for i := 0; i < 100; i++ {
		cb.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, _, err := cb.ReadFrom(buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	real := time.Since(start)
	modeled := n.Now() - modelStart
	if real > 60*time.Millisecond {
		t.Fatalf("scaled run took %v wall-clock, want ≈5-10ms", real)
	}
	// Modeled time is ≈100 frames × 1ms.
	if modeled < 90*time.Millisecond || modeled > 200*time.Millisecond {
		t.Fatalf("modeled elapsed = %v, want ≈100ms", modeled)
	}
}

func TestHostCPUCostSerializes(t *testing.T) {
	// A receiver with 1ms per-packet CPU caps delivery at 1000 pkt/s of
	// modeled time even though the wire is fast.
	n := New(50)
	seg := fastSeg(n, "s")
	a := n.MustHost("a", HostConfig{}, seg)
	b := n.MustHost("b", HostConfig{RecvCPU: time.Millisecond}, seg)
	ca, _ := a.Listen("1")
	cb, _ := b.Listen("1")

	const frames = 100
	go func() {
		for i := 0; i < frames; i++ {
			ca.WriteTo(make([]byte, 100), "b:1")
		}
	}()
	buf := make([]byte, 256)
	start := n.Now()
	for i := 0; i < frames; i++ {
		cb.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, _, err := cb.ReadFrom(buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	modeled := n.Now() - start
	if modeled < 95*time.Millisecond {
		t.Fatalf("modeled %v, want >= ~100ms of receive CPU", modeled)
	}
}

func TestPortQueueOverflowDrops(t *testing.T) {
	n := New(1)
	seg := fastSeg(n, "s")
	a := n.MustHost("a", HostConfig{}, seg)
	b := n.MustHost("b", HostConfig{PortQueue: 4}, seg)
	ca, _ := a.Listen("1")
	b.Listen("1") // nobody reads
	for i := 0; i < 50; i++ {
		ca.WriteTo([]byte("x"), "b:1")
	}
	// Give the receive loop time to drain ingress into the port queue.
	deadline := time.Now().Add(2 * time.Second)
	for b.Drops() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if b.Drops() == 0 {
		t.Fatal("no drops despite tiny port queue")
	}
}

func TestEphemeralPortsUnique(t *testing.T) {
	n := New(1)
	seg := fastSeg(n, "s")
	a := n.MustHost("a", HostConfig{}, seg)
	seen := map[string]bool{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := a.Listen("0")
			if err != nil {
				t.Errorf("listen: %v", err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if seen[c.LocalAddr()] {
				t.Errorf("duplicate ephemeral %s", c.LocalAddr())
			}
			seen[c.LocalAddr()] = true
		}()
	}
	wg.Wait()
}

func TestDuplicatePortRejected(t *testing.T) {
	n := New(1)
	seg := fastSeg(n, "s")
	a := n.MustHost("a", HostConfig{}, seg)
	if _, err := a.Listen("7"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Listen("7"); err == nil {
		t.Fatal("duplicate port accepted")
	}
}

func TestDuplicateHostRejected(t *testing.T) {
	n := New(1)
	seg := fastSeg(n, "s")
	n.MustHost("a", HostConfig{}, seg)
	if _, err := n.NewHost("a", HostConfig{}, seg); err == nil {
		t.Fatal("duplicate host accepted")
	}
}

func TestSegmentCapacityMatchesPaper(t *testing.T) {
	// A 10 Mb/s Ethernet with our framing overhead has ≈1.12 MB/s
	// effective capacity for 1400-byte datagrams — the paper's measured
	// maximum.
	n := New(1)
	seg := n.NewSegment("ether", SegmentConfig{BandwidthBps: 10e6, FrameOverhead: 66})
	capacity := seg.Capacity(1400)
	if capacity < 1.10e6 || capacity > 1.22e6 {
		t.Fatalf("capacity = %.0f B/s, want ≈1.12-1.19 MB/s", capacity)
	}
}
