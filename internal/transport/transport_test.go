package transport

import (
	"errors"
	"testing"
)

func TestSplitJoinAddr(t *testing.T) {
	cases := []struct {
		addr       string
		host, port string
		ok         bool
	}{
		{"host:7070", "host", "7070", true},
		{"a.b.c:0", "a.b.c", "0", true},
		{"noport", "", "", false},
		{":", "", "", true},
		{"h:p:q", "h:p", "q", true}, // last colon wins
	}
	for _, c := range cases {
		h, p, ok := SplitAddr(c.addr)
		if ok != c.ok || h != c.host || p != c.port {
			t.Errorf("SplitAddr(%q) = (%q,%q,%v), want (%q,%q,%v)",
				c.addr, h, p, ok, c.host, c.port, c.ok)
		}
	}
	if JoinAddr("h", "1") != "h:1" {
		t.Fatal("join wrong")
	}
	// Round trip.
	h, p, ok := SplitAddr(JoinAddr("my-host", "40001"))
	if !ok || h != "my-host" || p != "40001" {
		t.Fatal("round trip failed")
	}
}

type fakeTimeoutErr struct{}

func (fakeTimeoutErr) Error() string { return "fake" }
func (fakeTimeoutErr) Timeout() bool { return true }

func TestIsTimeout(t *testing.T) {
	if !IsTimeout(ErrTimeout) {
		t.Fatal("ErrTimeout not a timeout")
	}
	if !IsTimeout(fakeTimeoutErr{}) {
		t.Fatal("net-style timeout not recognized")
	}
	if IsTimeout(ErrClosed) || IsTimeout(errors.New("other")) || IsTimeout(nil) {
		t.Fatal("false positive")
	}
}
