package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"swift/internal/ec"
)

// The erasure-coding microbench: raw codec throughput, no network and no
// agents, because the question it answers is purely computational — is
// the GF(2^8) kernel fast enough that redundancy math never becomes the
// bottleneck behind the transport? It compares the XOR degenerate code
// (k=1, the paper's computed-copy parity) against the Cauchy
// Reed–Solomon codec at the same and higher correction power, across the
// striping-unit sizes the mediator actually negotiates.

// ECPoint is one measured cell of the erasure-coding microbench.
// Throughput is expressed over the data bytes processed (m x unit per
// encode; the same row worth of data per reconstruct), so points with
// different schemes are directly comparable.
type ECPoint struct {
	Scheme          string  `json:"scheme"` // "m+k"
	Kernel          string  `json:"kernel"` // "xor" (k=1 fast path) or "rs"
	UnitBytes       int     `json:"unit_bytes"`
	EncodeMBps      float64 `json:"encode_mbps"`
	ReconstructMBps float64 `json:"reconstruct_mbps"` // k shards missing, worst case: all data
}

// ECBench is the machine-readable result set (BENCH_ec.json).
type ECBench struct {
	Points []ECPoint `json:"points"`
}

// ecScheme names one codec configuration under test.
type ecScheme struct {
	m, k   int
	kernel string // "xor" or "rs"
}

// defaultECUnits are the striping-unit sizes swept; they bracket the
// sizes the storage mediator negotiates in practice.
var defaultECUnits = []int{4 << 10, 16 << 10, 64 << 10, 256 << 10}

// defaultECSchemes pits the legacy XOR computed copy against
// Reed–Solomon at equal (3+1) and higher (3+2, 8+2) correction power.
var defaultECSchemes = []ecScheme{
	{m: 3, k: 1, kernel: "xor"},
	{m: 3, k: 1, kernel: "rs"},
	{m: 3, k: 2, kernel: "rs"},
	{m: 8, k: 2, kernel: "rs"},
}

// MeasureEC runs the codec microbench: for every scheme and unit size it
// times Encode over fresh parity and Reconstruct with k shards missing
// (all of them data shards — the worst case, every output needs the full
// decode matrix). budget is the minimum measurement time per cell.
func MeasureEC(budget time.Duration) (ECBench, error) {
	var out ECBench
	for _, sc := range defaultECSchemes {
		var (
			c   ec.Codec
			err error
		)
		if sc.kernel == "rs" {
			c, err = ec.NewRS(sc.m, sc.k)
		} else {
			c, err = ec.New(sc.m, sc.k)
		}
		if err != nil {
			return ECBench{}, fmt.Errorf("bench: codec %d+%d: %w", sc.m, sc.k, err)
		}
		for _, unit := range defaultECUnits {
			shards := make([][]byte, sc.m+sc.k)
			for i := range shards {
				shards[i] = pattern(unit, int64(i+1))
			}
			rowData := sc.m * unit

			enc, err := timeECOp(budget, rowData, func() error {
				return c.Encode(shards)
			})
			if err != nil {
				return ECBench{}, fmt.Errorf("bench: encode %d+%d unit %d: %w", sc.m, sc.k, unit, err)
			}

			// Reconstruct with the first k data shards missing. The
			// codec allocates the rebuilt shards, so each iteration just
			// re-nils them; the allocation cost is part of the measured
			// path, exactly as the degraded read pays it.
			rec, err := timeECOp(budget, rowData, func() error {
				for i := 0; i < sc.k; i++ {
					shards[i] = nil
				}
				return c.Reconstruct(shards)
			})
			if err != nil {
				return ECBench{}, fmt.Errorf("bench: reconstruct %d+%d unit %d: %w", sc.m, sc.k, unit, err)
			}

			out.Points = append(out.Points, ECPoint{
				Scheme:          fmt.Sprintf("%d+%d", sc.m, sc.k),
				Kernel:          sc.kernel,
				UnitBytes:       unit,
				EncodeMBps:      enc,
				ReconstructMBps: rec,
			})
		}
	}
	return out, nil
}

// timeECOp runs op until at least budget has elapsed (always at least
// once) and returns the throughput in MB/s over bytesPerOp.
func timeECOp(budget time.Duration, bytesPerOp int, op func() error) (float64, error) {
	// Warm-up: tables, decode-matrix cache, allocator.
	if err := op(); err != nil {
		return 0, err
	}
	var (
		iters int
		start = time.Now()
	)
	for {
		if err := op(); err != nil {
			return 0, err
		}
		iters++
		if time.Since(start) >= budget {
			break
		}
	}
	sec := time.Since(start).Seconds()
	return float64(iters) * float64(bytesPerOp) / 1e6 / sec, nil
}

// Print renders the microbench in the ablation-sweep style.
func (b ECBench) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation: erasure coding: codec encode/reconstruct MB/s vs XOR (k missing shards)")
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Scheme\tKernel\tUnit\tencode MB/s\treconstruct MB/s\t")
	for _, p := range b.Points {
		fmt.Fprintf(tw, "%s\t%s\t%d KB\t%.0f\t%.0f\t\n",
			p.Scheme, p.Kernel, p.UnitBytes>>10, p.EncodeMBps, p.ReconstructMBps)
	}
	tw.Flush()
}

// String renders the microbench to a string.
func (b ECBench) String() string {
	var sb strings.Builder
	b.Print(&sb)
	return sb.String()
}

// WriteJSON emits the machine-readable result set.
func (b ECBench) WriteJSON(w io.Writer) error {
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(b)
}
