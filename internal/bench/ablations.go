package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"swift/internal/core"
	"swift/internal/stats"
)

// Ablations quantify the design choices DESIGN.md calls out: datagram vs
// stream transport (TCPTable), read-request granularity, striping-unit
// size, parity cost, and agent-count scaling, plus the paper's §7
// small-object penalty.

// Sweep is one ablation result: a labeled series of read/write rates.
type Sweep struct {
	Name   string
	Title  string
	Labels []string
	Read   []stats.Summary // KB/s
	Write  []stats.Summary // KB/s
}

// Print renders the sweep.
func (s Sweep) Print(w io.Writer) {
	fmt.Fprintf(w, "%s: %s\n", s.Name, s.Title)
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Point\tread KB/s\twrite KB/s\t")
	for i, l := range s.Labels {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t\n", l, s.Read[i].Mean, s.Write[i].Mean)
	}
	tw.Flush()
}

// String renders the sweep to a string.
func (s Sweep) String() string {
	var sb strings.Builder
	s.Print(&sb)
	return sb.String()
}

// measureCluster takes samples of sequential read and write rates on a
// cluster.
func measureCluster(opts Options, sizeMB, samples int, seed int64) (read, write stats.Sample, err error) {
	opts.Seed = seed
	cl, cerr := NewSwiftCluster(opts)
	if cerr != nil {
		return read, write, cerr
	}
	defer cl.Close()
	size := sizeMB << 20
	data := pattern(size, seed)
	buf := make([]byte, size)
	for s := 0; s < samples; s++ {
		f, oerr := cl.Client.Open("ablation", core.OpenFlags{Create: true, Truncate: true})
		if oerr != nil {
			return read, write, oerr
		}
		start := cl.Net.Now()
		if _, werr := f.WriteAt(data, 0); werr != nil {
			f.Close()
			return read, write, werr
		}
		write.Add(float64(size) / 1024 / (cl.Net.Now() - start).Seconds())
		start = cl.Net.Now()
		if _, rerr := f.ReadAt(buf, 0); rerr != nil {
			f.Close()
			return read, write, rerr
		}
		read.Add(float64(size) / 1024 / (cl.Net.Now() - start).Seconds())
		f.Close()
	}
	return read, write, nil
}

// MeasureSwift runs one sample of sequential write-then-read of sizeMB
// against a cluster and returns the modeled rates in KB/s. It is the
// one-shot primitive the root benchmarks use.
func MeasureSwift(opts Options, sizeMB int, seed int64) (readKBps, writeKBps float64, err error) {
	rd, wr, err := measureCluster(opts, sizeMB, 1, seed)
	if err != nil {
		return 0, 0, err
	}
	return rd.Mean(), wr.Mean(), nil
}

// MeasureNFS runs one write-then-read sample against the NFS baseline.
func MeasureNFS(opts Options, sizeMB int, seed int64) (readKBps, writeKBps float64, err error) {
	opts.Seed = seed
	cl, err := NewNFSCluster(opts)
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()
	size := sizeMB << 20
	data := pattern(size, seed)
	start := cl.Net.Now()
	if err := cl.Client.WriteFile("m", data); err != nil {
		return 0, 0, err
	}
	writeKBps = float64(size) / 1024 / (cl.Net.Now() - start).Seconds()
	buf := make([]byte, size)
	start = cl.Net.Now()
	if _, err := cl.Client.ReadFile("m", buf); err != nil {
		return 0, 0, err
	}
	readKBps = float64(size) / 1024 / (cl.Net.Now() - start).Seconds()
	return readKBps, writeKBps, nil
}

// MeasureSCSI runs one write-then-read sample against the local-disk
// baseline.
func MeasureSCSI(sizeMB int, seed int64) (readKBps, writeKBps float64, err error) {
	rc := RunConfig{Samples: 1, SizesMB: []int{sizeMB}, Seed: seed}
	t, err := Table2(rc)
	if err != nil {
		return 0, 0, err
	}
	for _, r := range t.Rows {
		if r.Op == "Read" {
			readKBps = r.KBps.Mean
		} else {
			writeKBps = r.KBps.Mean
		}
	}
	return readKBps, writeKBps, nil
}

// AblationRequestSize sweeps the per-agent request burst: the prototype's
// "one outstanding packet request per storage agent" rule at different
// granularities. Tiny requests pay a turnaround per packet; large ones
// approach the medium's capacity.
func AblationRequestSize(rc RunConfig) (Sweep, error) {
	rc.fill()
	s := Sweep{
		Name:  "Ablation: request size",
		Title: "read/write rate vs per-agent request burst (3 agents, one Ethernet)",
	}
	for _, pkts := range []int64{1, 4, 12, 48} {
		rd, wr, err := measureCluster(Options{
			Agents: 3, RequestBytes: pkts * 1364, Scale: 6,
		}, rc.SizesMB[0], rc.Samples, rc.Seed)
		if err != nil {
			return Sweep{}, err
		}
		s.Labels = append(s.Labels, fmt.Sprintf("%d pkt (%d B)", pkts, pkts*1364))
		s.Read = append(s.Read, rd.Summarize())
		s.Write = append(s.Write, wr.Summarize())
	}
	return s, nil
}

// AblationStripeUnit sweeps the striping unit on the prototype, the knob
// the storage mediator tunes per session.
func AblationStripeUnit(rc RunConfig) (Sweep, error) {
	rc.fill()
	s := Sweep{
		Name:  "Ablation: striping unit",
		Title: "read/write rate vs striping unit (3 agents, one Ethernet)",
	}
	for _, unit := range []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10} {
		rd, wr, err := measureCluster(Options{
			Agents: 3, Unit: unit, Scale: 6,
		}, rc.SizesMB[0], rc.Samples, rc.Seed)
		if err != nil {
			return Sweep{}, err
		}
		s.Labels = append(s.Labels, fmt.Sprintf("%d KB", unit>>10))
		s.Read = append(s.Read, rd.Summarize())
		s.Write = append(s.Write, wr.Summarize())
	}
	return s, nil
}

// AblationAgents sweeps the number of storage agents on one Ethernet.
// The paper: "including a fourth storage agent would only saturate the
// network while not significantly increasing performance."
func AblationAgents(rc RunConfig) (Sweep, error) {
	rc.fill()
	s := Sweep{
		Name:  "Ablation: storage agents",
		Title: "read/write rate vs number of agents (one Ethernet)",
	}
	for _, n := range []int{1, 2, 3, 4} {
		rd, wr, err := measureCluster(Options{Agents: n, Scale: 6},
			rc.SizesMB[0], rc.Samples, rc.Seed)
		if err != nil {
			return Sweep{}, err
		}
		s.Labels = append(s.Labels, fmt.Sprintf("%d agents", n))
		s.Read = append(s.Read, rd.Summarize())
		s.Write = append(s.Write, wr.Summarize())
	}
	return s, nil
}

// AblationParity measures the cost of computed-copy redundancy: healthy
// writes pay the parity computation and the extra parity traffic; reads
// are unaffected until an agent fails.
func AblationParity(rc RunConfig) (Sweep, error) {
	rc.fill()
	s := Sweep{
		Name:  "Ablation: computed-copy redundancy",
		Title: "read/write rate with and without rotating parity (4 agents)",
	}
	for _, parity := range []bool{false, true} {
		rd, wr, err := measureCluster(Options{
			Agents: 4, Parity: parity, Scale: 6,
		}, rc.SizesMB[0], rc.Samples, rc.Seed)
		if err != nil {
			return Sweep{}, err
		}
		label := "no parity"
		if parity {
			label = "parity"
		}
		s.Labels = append(s.Labels, label)
		s.Read = append(s.Read, rd.Summarize())
		s.Write = append(s.Write, wr.Summarize())
	}
	return s, nil
}

// AblationReadAhead measures the client read-ahead window's effect on a
// small-sequential-read workload (8 KB application reads): the window
// turns per-read turnarounds into large-burst transfers.
func AblationReadAhead(rc RunConfig) (Sweep, error) {
	rc.fill()
	s := Sweep{
		Name:  "Ablation: client read-ahead",
		Title: "8 KB sequential reads vs read-ahead window (3 agents, one Ethernet)",
	}
	size := rc.SizesMB[0] << 20
	for _, window := range []int64{0, 64 << 10, 256 << 10} {
		opts := Options{Agents: 3, Scale: 6, Seed: rc.Seed, ReadAhead: window}
		cl, err := NewSwiftCluster(opts)
		if err != nil {
			return Sweep{}, err
		}
		data := pattern(size, rc.Seed)
		f, err := cl.Client.Open("ra", core.OpenFlags{Create: true})
		if err != nil {
			cl.Close()
			return Sweep{}, err
		}
		if _, err := f.WriteAt(data, 0); err != nil {
			f.Close()
			cl.Close()
			return Sweep{}, err
		}
		var rd stats.Sample
		buf := make([]byte, 8192)
		for smp := 0; smp < rc.Samples; smp++ {
			start := cl.Net.Now()
			for off := int64(0); off < int64(size); off += int64(len(buf)) {
				if _, err := f.ReadAt(buf, off); err != nil {
					f.Close()
					cl.Close()
					return Sweep{}, err
				}
			}
			rd.Add(float64(size) / 1024 / (cl.Net.Now() - start).Seconds())
		}
		f.Close()
		cl.Close()
		label := "no read-ahead"
		if window > 0 {
			label = fmt.Sprintf("%d KB window", window>>10)
		}
		s.Labels = append(s.Labels, label)
		s.Read = append(s.Read, rd.Summarize())
		s.Write = append(s.Write, stats.Summary{}) // read-only sweep
	}
	return s, nil
}

// SmallObjectResult reports the paper's §7 small-object penalty: "the
// penalties incurred are one round trip time for a short network message,
// and the cost of computing the parity code."
type SmallObjectResult struct {
	Size         int64
	ReadLatency  time.Duration // modeled, mean
	WriteLatency time.Duration
	ParityWrite  time.Duration
}

// AblationSmallObjects measures small-transfer latency.
func AblationSmallObjects(rc RunConfig) ([]SmallObjectResult, error) {
	rc.fill()
	var out []SmallObjectResult
	for _, size := range []int64{1 << 10, 4 << 10, 16 << 10} {
		res := SmallObjectResult{Size: size}
		for _, parity := range []bool{false, true} {
			opts := Options{Agents: 4, Parity: parity, Unit: 4 << 10, Scale: 6, Seed: rc.Seed}
			cl, err := NewSwiftCluster(opts)
			if err != nil {
				return nil, err
			}
			data := pattern(int(size), rc.Seed)
			f, err := cl.Client.Open("small", core.OpenFlags{Create: true})
			if err != nil {
				cl.Close()
				return nil, err
			}
			var wlat, rlat time.Duration
			n := rc.Samples
			for s := 0; s < n; s++ {
				start := cl.Net.Now()
				if _, err := f.WriteAt(data, 0); err != nil {
					f.Close()
					cl.Close()
					return nil, err
				}
				wlat += cl.Net.Now() - start
				start = cl.Net.Now()
				if _, err := f.ReadAt(data, 0); err != nil {
					f.Close()
					cl.Close()
					return nil, err
				}
				rlat += cl.Net.Now() - start
			}
			f.Close()
			cl.Close()
			if parity {
				res.ParityWrite = wlat / time.Duration(n)
			} else {
				res.WriteLatency = wlat / time.Duration(n)
				res.ReadLatency = rlat / time.Duration(n)
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// PrintSmallObjects renders the small-object latencies.
func PrintSmallObjects(w io.Writer, rs []SmallObjectResult) {
	fmt.Fprintln(w, "Ablation: small objects (modeled latency; §7's RTT + parity penalty)")
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Size\tread\twrite\twrite+parity\t")
	for _, r := range rs {
		fmt.Fprintf(tw, "%d KB\t%v\t%v\t%v\t\n",
			r.Size>>10,
			r.ReadLatency.Round(100*time.Microsecond),
			r.WriteLatency.Round(100*time.Microsecond),
			r.ParityWrite.Round(100*time.Microsecond))
	}
	tw.Flush()
}
