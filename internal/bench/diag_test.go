package bench

import (
	"fmt"
	"os"
	"testing"

	"swift/internal/core"
)

// TestDiagnoseTable1 is a calibration aid, enabled with SWIFT_DIAG=1:
// it prints segment and host counters after a Table 1-style transfer.
func TestDiagnoseTable1(t *testing.T) {
	if os.Getenv("SWIFT_DIAG") == "" {
		t.Skip("set SWIFT_DIAG=1 to run")
	}
	scale := 40.0
	if v := os.Getenv("SWIFT_SCALE"); v != "" {
		fmt.Sscanf(v, "%f", &scale)
	}
	cl, err := NewSwiftCluster(Options{Agents: 3, Segments: 1, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	size := 3 << 20
	data := pattern(size, 1)
	f, err := cl.Client.Open("diag", core.OpenFlags{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	start := cl.Net.Now()
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	welapsed := cl.Net.Now() - start
	st := cl.Segments[0].Stats()
	m := cl.Client.MetricsSnapshot()
	fmt.Printf("WRITE: %.0f KB/s modeled=%v\n", float64(size)/1024/welapsed.Seconds(), welapsed)
	fmt.Printf("  seg frames=%d bytes=%d lost=%d busy=%v busyFrac=%.2f\n",
		st.Frames, st.Bytes, st.Lost, st.BusyTime, st.BusyTime.Seconds()/welapsed.Seconds())
	fmt.Printf("  bursts=%d wtimeouts=%d resendAsks=%d data=%d\n",
		m.WriteBursts, m.WriteTimeouts, m.ResendAsks, m.DataPackets)

	start = cl.Net.Now()
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	relapsed := cl.Net.Now() - start
	st2 := cl.Segments[0].Stats()
	fmt.Printf("READ: %.0f KB/s modeled=%v\n", float64(size)/1024/relapsed.Seconds(), relapsed)
	fmt.Printf("  seg frames=%d bytes=%d lost=%d busyFrac=%.2f\n",
		st2.Frames-st.Frames, st2.Bytes-st.Bytes, st2.Lost-st.Lost,
		(st2.BusyTime-st.BusyTime).Seconds()/relapsed.Seconds())
}
