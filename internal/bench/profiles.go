// Package bench is the measurement harness that regenerates the paper's
// prototype experiments (Tables 1-4 and the §3 TCP observation) on the
// modeled network. It assembles the same installations the paper measured
// — SPARCstation 2 client, SPARCstation SLC storage agents with local SCSI
// disks, dedicated and departmental 10 Mb/s Ethernets, a Sun 4/390 NFS
// server with IPI drives — takes eight samples per cell as the paper did,
// and prints the same rows.
package bench

import (
	"time"

	"swift/internal/transport/memnet"
)

// Calibration constants. These describe the hardware once; no table's
// result is set directly.
const (
	// EthernetBps is raw 10 Mb/s Ethernet.
	EthernetBps = 10e6
	// EthernetOverhead is the per-datagram framing cost in bytes:
	// preamble 8 + MAC header/FCS 18 + inter-frame gap 12 + IP 20 +
	// UDP 8. With 1400-byte datagrams this yields the ≈1.12 MB/s
	// effective capacity the paper measured.
	EthernetOverhead = 66
	// EthernetLatency is the one-way propagation + interface delay.
	EthernetLatency = 100 * time.Microsecond

	// SparcRecvCPU is the SPARCstation 2 client's per-packet receive
	// processing cost (interrupt, protocol, copy to user). It caps the
	// client's receive rate at ≈1.2 MB/s, which is why the paper's
	// two-Ethernet reads improved only ≈25% while writes doubled.
	SparcRecvCPU = 1000 * time.Microsecond
	// SparcSendCPU is the client's per-packet send cost; transmission
	// used scatter-gather, so it is far cheaper than receive.
	SparcSendCPU = 250 * time.Microsecond

	// SLCRecvCPU / SLCSendCPU are the slower SPARCstation SLC storage
	// agents' per-packet costs.
	SLCRecvCPU = 400 * time.Microsecond
	SLCSendCPU = 400 * time.Microsecond

	// StreamRecvCPU is the per-packet cost of the first prototype's
	// TCP-based transport: stream reassembly forced "a significant
	// amount of data copying" and buffer management, which kept it
	// under 45% of the Ethernet's capacity.
	StreamRecvCPU = 2800 * time.Microsecond
	StreamSendCPU = 2800 * time.Microsecond

	// AsyncWriteRate is the SunOS buffer-cache absorption rate on the
	// agents (the prototype's agents wrote asynchronously).
	AsyncWriteRate = 4e6

	// WritePace is the prototype's "small wait loop between write
	// operations" that kept the client kernel from dropping packets.
	// It is what holds the write path at ≈78% of the medium's capacity,
	// as the paper observed.
	WritePace = 3000 * time.Microsecond

	// RequestBytes is the read/write burst the client asks of one agent
	// at a time (12 packets ≈ 16 KB). The prototype kept one
	// outstanding request per storage agent; this burst size reproduces
	// its read-path turnaround gaps.
	RequestBytes = 12 * 1364

	// NFSServerCPU is the Sun 4/390's per-RPC processing cost.
	NFSServerCPU = 1 * time.Millisecond

	// SunOSPortQueue models the small socket buffers that caused the
	// prototype's read-path losses ("packet loss rates caused by lack
	// of buffer space in the SunOS kernel").
	SunOSPortQueue = 64
	// SunOSIngressQueue bounds per-host interface queues.
	SunOSIngressQueue = 128
)

// EthernetSegment returns a 10 Mb/s shared-bus segment configuration.
func EthernetSegment(seed int64) memnet.SegmentConfig {
	return memnet.SegmentConfig{
		BandwidthBps:  EthernetBps,
		FrameOverhead: EthernetOverhead,
		Latency:       EthernetLatency,
		Seed:          seed,
	}
}

// SparcClientHost returns the SPARCstation 2 client host profile.
func SparcClientHost() memnet.HostConfig {
	return memnet.HostConfig{
		SendCPU:      SparcSendCPU,
		RecvCPU:      SparcRecvCPU,
		PortQueue:    SunOSPortQueue,
		IngressQueue: SunOSIngressQueue,
	}
}

// StreamClientHost returns the client profile for the TCP-prototype
// ablation: the same machine burdened with stream-transport copies.
func StreamClientHost() memnet.HostConfig {
	return memnet.HostConfig{
		SendCPU:      StreamSendCPU,
		RecvCPU:      StreamRecvCPU,
		PortQueue:    SunOSPortQueue,
		IngressQueue: SunOSIngressQueue,
	}
}

// SLCAgentHost returns the SPARCstation SLC storage-agent host profile.
func SLCAgentHost() memnet.HostConfig {
	return memnet.HostConfig{
		SendCPU:      SLCSendCPU,
		RecvCPU:      SLCRecvCPU,
		PortQueue:    SunOSPortQueue,
		IngressQueue: SunOSIngressQueue,
	}
}

// ServerHost returns the Sun 4/390 NFS server host profile (a faster
// machine than the SLCs).
func ServerHost() memnet.HostConfig {
	return memnet.HostConfig{
		SendCPU:      300 * time.Microsecond,
		RecvCPU:      300 * time.Microsecond,
		PortQueue:    SunOSPortQueue,
		IngressQueue: SunOSIngressQueue,
	}
}
