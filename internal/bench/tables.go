package bench

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"text/tabwriter"
	"time"

	"swift/internal/core"
	"swift/internal/disk"
	"swift/internal/localfs"
	"swift/internal/stats"
)

// RunConfig controls how much measuring a table run does.
type RunConfig struct {
	// Samples per cell (default 8, as the paper).
	Samples int
	// SizesMB are the transfer sizes (default 3, 6, 9, as the paper).
	SizesMB []int
	// Scale overrides the modeled-time speed-up (0 = per-table default).
	Scale float64
	// Seed seeds the run.
	Seed int64
}

func (rc *RunConfig) fill() {
	if rc.Samples == 0 {
		rc.Samples = 8
	}
	if len(rc.SizesMB) == 0 {
		rc.SizesMB = []int{3, 6, 9}
	}
}

// Quick returns a reduced configuration for tests and benchmarks.
func Quick() RunConfig { return RunConfig{Samples: 3, SizesMB: []int{3}} }

// Row is one table row: an operation at a size, summarized over samples.
type Row struct {
	Op     string // "Read" or "Write"
	SizeMB int
	KBps   stats.Summary
}

// Table is one regenerated paper table.
type Table struct {
	Name  string
	Title string
	Rows  []Row
}

// Print renders the table in the paper's layout.
func (t Table) Print(w io.Writer) {
	fmt.Fprintf(w, "%s: %s\n", t.Name, t.Title)
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Operation\tx̄\tσ\tmin\tmax\t90% low\t90% high\t")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s %d MB\t%.0f\t%.1f\t%.0f\t%.0f\t%.0f\t%.0f\t\n",
			r.Op, r.SizeMB, r.KBps.Mean, r.KBps.Std,
			r.KBps.Min, r.KBps.Max, r.KBps.CI90Low, r.KBps.CI90High)
	}
	tw.Flush()
}

// String renders the table to a string.
func (t Table) String() string {
	var sb strings.Builder
	t.Print(&sb)
	return sb.String()
}

// pattern builds a deterministic test payload.
func pattern(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// swiftTable measures Swift read and write data-rates on a cluster.
func swiftTable(name, title string, rc RunConfig, opts Options) (Table, error) {
	rc.fill()
	if rc.Scale != 0 {
		opts.Scale = rc.Scale
	}
	opts.Seed = rc.Seed
	cl, err := NewSwiftCluster(opts)
	if err != nil {
		return Table{}, err
	}
	defer cl.Close()

	t := Table{Name: name, Title: title}
	for _, mb := range rc.SizesMB {
		size := mb << 20
		data := pattern(size, rc.Seed+int64(mb))
		obj := fmt.Sprintf("bench-%dmb", mb)

		var wr stats.Sample
		for s := 0; s < rc.Samples; s++ {
			f, err := cl.Client.Open(obj, core.OpenFlags{Create: true, Truncate: true})
			if err != nil {
				return Table{}, fmt.Errorf("bench: open: %w", err)
			}
			start := cl.Net.Now()
			if _, err := f.WriteAt(data, 0); err != nil {
				f.Close()
				return Table{}, fmt.Errorf("bench: write: %w", err)
			}
			elapsed := cl.Net.Now() - start
			wr.Add(float64(size) / 1024 / elapsed.Seconds())
			if err := f.Close(); err != nil {
				return Table{}, fmt.Errorf("bench: close: %w", err)
			}
		}

		var rd stats.Sample
		buf := make([]byte, size)
		for s := 0; s < rc.Samples; s++ {
			f, err := cl.Client.Open(obj, core.OpenFlags{})
			if err != nil {
				return Table{}, fmt.Errorf("bench: reopen: %w", err)
			}
			start := cl.Net.Now()
			if _, err := f.ReadAt(buf, 0); err != nil {
				f.Close()
				return Table{}, fmt.Errorf("bench: read: %w", err)
			}
			elapsed := cl.Net.Now() - start
			rd.Add(float64(size) / 1024 / elapsed.Seconds())
			f.Close()
			if !bytes.Equal(buf, data) {
				return Table{}, fmt.Errorf("bench: read-back mismatch at %d MB", mb)
			}
		}
		t.Rows = append(t.Rows,
			Row{Op: "Read", SizeMB: mb, KBps: rd.Summarize()},
			Row{Op: "Write", SizeMB: mb, KBps: wr.Summarize()})
	}
	orderRows(&t)
	return t, nil
}

// orderRows sorts rows in the paper's order: all reads, then all writes.
func orderRows(t *Table) {
	var reads, writes []Row
	for _, r := range t.Rows {
		if r.Op == "Read" {
			reads = append(reads, r)
		} else {
			writes = append(writes, r)
		}
	}
	t.Rows = append(reads, writes...)
}

// Table1 regenerates "Swift read and write data-rates on a single
// Ethernet": one client, three storage agents.
func Table1(rc RunConfig) (Table, error) {
	return swiftTable("Table 1",
		"Swift read and write data-rates on a single Ethernet (KB/s)",
		rc, Options{Agents: 3, Segments: 1, Scale: 6})
}

// Table4 regenerates "Swift read and write data-rates on two Ethernets":
// six agents, three per segment, client attached to both.
func Table4(rc RunConfig) (Table, error) {
	return swiftTable("Table 4",
		"Swift read and write data-rates on two Ethernets (KB/s)",
		rc, Options{Agents: 6, Segments: 2, Scale: 6})
}

// TCPTable regenerates the §3 observation about the first, TCP-based
// prototype: with stream-transport copy costs on the client, the
// data-rates "were never more than 45% of the capacity of the
// Ethernet-based local-area network".
func TCPTable(rc RunConfig) (Table, error) {
	return swiftTable("TCP ablation",
		"Swift over a stream transport with data copying (KB/s)",
		rc, Options{Agents: 3, Segments: 1, Scale: 6, StreamClient: true})
}

// Table2 regenerates "SCSI read and write data-rates": the local disk of
// a SPARCstation SLC, synchronous writes, read-ahead reads. It needs no
// network; modeled time is accumulated directly.
func Table2(rc RunConfig) (Table, error) {
	rc.fill()
	var clock time.Duration
	sleep := func(d time.Duration) { clock += d }
	dev := disk.NewDevice(disk.ProfileSunSCSI(),
		disk.WithSleeper(sleep), disk.WithSeed(rc.Seed+1))
	fs := localfs.New(dev, 8192)

	t := Table{
		Name:  "Table 2",
		Title: "SCSI read and write data-rates (KB/s)",
	}
	for _, mb := range rc.SizesMB {
		size := mb << 20
		data := pattern(size, rc.Seed+int64(mb))
		name := fmt.Sprintf("scsi-%dmb", mb)

		var wr, rd stats.Sample
		for s := 0; s < rc.Samples; s++ {
			start := clock
			if err := fs.WriteFile(name, data); err != nil {
				return Table{}, err
			}
			wr.Add(float64(size) / 1024 / (clock - start).Seconds())
		}
		buf := make([]byte, size)
		for s := 0; s < rc.Samples; s++ {
			start := clock
			if _, err := fs.ReadFile(name, buf); err != nil {
				return Table{}, err
			}
			rd.Add(float64(size) / 1024 / (clock - start).Seconds())
			if !bytes.Equal(buf, data) {
				return Table{}, fmt.Errorf("bench: scsi read-back mismatch")
			}
		}
		t.Rows = append(t.Rows,
			Row{Op: "Read", SizeMB: mb, KBps: rd.Summarize()},
			Row{Op: "Write", SizeMB: mb, KBps: wr.Summarize()})
	}
	orderRows(&t)
	return t, nil
}

// Table3 regenerates "NFS read and write data-rates": the Sun 4/390
// server with IPI drives, synchronous write-through, over a shared
// departmental Ethernet.
func Table3(rc RunConfig) (Table, error) {
	rc.fill()
	opts := Options{Scale: 6, Seed: rc.Seed}
	if rc.Scale != 0 {
		opts.Scale = rc.Scale
	}
	cl, err := NewNFSCluster(opts)
	if err != nil {
		return Table{}, err
	}
	defer cl.Close()

	t := Table{
		Name:  "Table 3",
		Title: "NFS read and write data-rates (KB/s)",
	}
	for _, mb := range rc.SizesMB {
		size := mb << 20
		data := pattern(size, rc.Seed+int64(mb))
		name := fmt.Sprintf("nfs-%dmb", mb)

		var wr stats.Sample
		for s := 0; s < rc.Samples; s++ {
			start := cl.Net.Now()
			if err := cl.Client.WriteFile(name, data); err != nil {
				return Table{}, err
			}
			elapsed := cl.Net.Now() - start
			wr.Add(float64(size) / 1024 / elapsed.Seconds())
		}
		var rd stats.Sample
		buf := make([]byte, size)
		for s := 0; s < rc.Samples; s++ {
			start := cl.Net.Now()
			if _, err := cl.Client.ReadFile(name, buf); err != nil {
				return Table{}, err
			}
			elapsed := cl.Net.Now() - start
			rd.Add(float64(size) / 1024 / elapsed.Seconds())
			if !bytes.Equal(buf, data) {
				return Table{}, fmt.Errorf("bench: nfs read-back mismatch")
			}
		}
		t.Rows = append(t.Rows,
			Row{Op: "Read", SizeMB: mb, KBps: rd.Summarize()},
			Row{Op: "Write", SizeMB: mb, KBps: wr.Summarize()})
	}
	orderRows(&t)
	return t, nil
}
