package bench

import (
	"strings"
	"testing"
)

// The table tests run reduced configurations (fewer samples, 1-2 MB) and
// check the *relationships* the paper reports, not exact numbers: which
// system wins, by roughly what factor, and where the capacity ceilings
// are. Full-fidelity runs are cmd/swift-bench's job.

func tiny() RunConfig { return RunConfig{Samples: 2, SizesMB: []int{2}, Seed: 1} }

func rowRate(t Table, op string) float64 {
	for _, r := range t.Rows {
		if r.Op == op {
			return r.KBps.Mean
		}
	}
	return 0
}

func TestTable2MatchesPaperBands(t *testing.T) {
	tb, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	read, write := rowRate(tb, "Read"), rowRate(tb, "Write")
	if read < 620 || read > 720 {
		t.Fatalf("SCSI read = %.0f KB/s, paper band ≈654-682", read)
	}
	if write < 290 || write > 345 {
		t.Fatalf("SCSI write = %.0f KB/s, paper band ≈314-316", write)
	}
}

func TestTable1BeatsBaselines(t *testing.T) {
	t1, err := Table1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	sr, sw := rowRate(t1, "Read"), rowRate(t1, "Write")

	// Paper: Swift reads ≈876-897 KB/s, writes ≈860-882, both at
	// 77-80% of the 1.12 MB/s medium. Allow a generous band.
	if sr < 780 || sr > 1000 {
		t.Fatalf("Swift read = %.0f KB/s, paper ≈876-897", sr)
	}
	if sw < 780 || sw > 1000 {
		t.Fatalf("Swift write = %.0f KB/s, paper ≈860-882", sw)
	}
	// Swift vs local SCSI: reads ≈1.3×, writes ≈2.7-2.8×.
	if ratio := sr / rowRate(t2, "Read"); ratio < 1.15 || ratio > 1.6 {
		t.Fatalf("Swift/SCSI read ratio = %.2f, paper ≈1.3", ratio)
	}
	if ratio := sw / rowRate(t2, "Write"); ratio < 2.3 || ratio > 3.3 {
		t.Fatalf("Swift/SCSI write ratio = %.2f, paper ≈2.75", ratio)
	}
}

func TestTable3NFSMuchSlower(t *testing.T) {
	t1, err := Table1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	t3, err := Table3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: Swift ≈1.8-2× NFS reads, ≈7.7-8.1× NFS writes.
	if ratio := rowRate(t1, "Read") / rowRate(t3, "Read"); ratio < 1.6 || ratio > 2.8 {
		t.Fatalf("Swift/NFS read ratio = %.2f, paper ≈1.9", ratio)
	}
	if ratio := rowRate(t1, "Write") / rowRate(t3, "Write"); ratio < 6 || ratio > 11 {
		t.Fatalf("Swift/NFS write ratio = %.2f, paper ≈8", ratio)
	}
}

func TestTable4SecondEthernetScaling(t *testing.T) {
	t1, err := Table1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Table4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: writes almost double; reads gain only ≈25-30% (client
	// receive path bound).
	wratio := rowRate(t4, "Write") / rowRate(t1, "Write")
	if wratio < 1.6 || wratio > 2.2 {
		t.Fatalf("two-Ethernet write scaling = %.2f, paper ≈1.9", wratio)
	}
	rratio := rowRate(t4, "Read") / rowRate(t1, "Read")
	if rratio < 1.05 || rratio > 1.55 {
		t.Fatalf("two-Ethernet read scaling = %.2f, paper ≈1.27", rratio)
	}
	if rratio >= wratio {
		t.Fatal("reads scaled as well as writes; client bound lost")
	}
}

func TestTCPAblationUnder45Percent(t *testing.T) {
	tt, err := TCPTable(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "never more than 45% of the capacity" ⇒ ≤ ~505 KB/s of
	// the 1.12 MB/s medium.
	capacityKB := 1.12e6 / 1024
	for _, r := range tt.Rows {
		if frac := r.KBps.Mean / capacityKB; frac > 0.47 {
			t.Fatalf("stream-transport %s = %.0f KB/s (%.0f%% of capacity), want <= 45%%",
				r.Op, r.KBps.Mean, frac*100)
		}
	}
}

func TestTablePrintFormat(t *testing.T) {
	tb, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{"Table 2", "Read 2 MB", "Write 2 MB", "90%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationAgentsSaturates(t *testing.T) {
	s, err := AblationAgents(RunConfig{Samples: 1, SizesMB: []int{2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One agent is disk-bound (≈400-700 KB/s); three agents approach
	// the medium; the fourth shows diminishing returns ("would only
	// saturate the network"): it adds less than the second agent did.
	r1, r2, r3, r4 := s.Read[0].Mean, s.Read[1].Mean, s.Read[2].Mean, s.Read[3].Mean
	if r3 < 1.2*r1 {
		t.Fatalf("3 agents (%.0f) not clearly faster than 1 (%.0f)", r3, r1)
	}
	if r4-r3 >= r2-r1 {
		t.Fatalf("no diminishing returns: +%.0f (2nd agent) vs +%.0f (4th)", r2-r1, r4-r3)
	}
	// And the wire's capacity is never exceeded.
	if r4 > 1.12e6/1024 {
		t.Fatalf("4 agents (%.0f KB/s) exceed the Ethernet's capacity", r4)
	}
}

func TestAblationParityCostsWrites(t *testing.T) {
	s, err := AblationParity(RunConfig{Samples: 1, SizesMB: []int{2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plain, parity := s.Write[0].Mean, s.Write[1].Mean
	if parity >= plain {
		t.Fatalf("parity writes (%.0f) not slower than plain (%.0f)", parity, plain)
	}
	// Rotating parity over 4 agents adds one parity unit per 3 data
	// units: expect roughly 3/4 the rate, not a collapse.
	if parity < 0.5*plain {
		t.Fatalf("parity writes collapsed: %.0f vs %.0f", parity, plain)
	}
}
