package bench

import (
	"fmt"
	"os"
	"testing"
	"time"

	"swift/internal/core"
)

// TestCalibrate sweeps calibration knobs; enabled with SWIFT_CALIB=1.
func TestCalibrate(t *testing.T) {
	if os.Getenv("SWIFT_CALIB") == "" {
		t.Skip("set SWIFT_CALIB=1 to run")
	}
	size := 3 << 20
	data := pattern(size, 1)
	for _, rb := range []int64{8184, 16368, 32736, 65472} {
		for _, scpu := range []time.Duration{250e3, 400e3, 520e3} {
			cl, err := NewSwiftCluster(Options{Agents: 3, Scale: 6, RequestBytes: rb, SendCPU: scpu})
			if err != nil {
				t.Fatal(err)
			}
			f, err := cl.Client.Open("c", core.OpenFlags{Create: true, Truncate: true})
			if err != nil {
				t.Fatal(err)
			}
			start := cl.Net.Now()
			if _, err := f.WriteAt(data, 0); err != nil {
				t.Fatal(err)
			}
			w := float64(size) / 1024 / (cl.Net.Now() - start).Seconds()
			buf := make([]byte, size)
			start = cl.Net.Now()
			if _, err := f.ReadAt(buf, 0); err != nil {
				t.Fatal(err)
			}
			r := float64(size) / 1024 / (cl.Net.Now() - start).Seconds()
			fmt.Printf("req=%5d sendCPU=%v  write=%4.0f read=%4.0f KB/s\n", rb, scpu, w, r)
			f.Close()
			cl.Close()
		}
	}
}
