package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"text/tabwriter"
	"time"

	"swift/internal/core"
	"swift/internal/obs"
	"swift/internal/wire"
)

// The hot-path profile: what does one byte moved through the client
// read/write path cost, and does distributed tracing change it? Two
// levels are measured. The packet rows time the pure CPU encode/decode
// path (no network, single goroutine, exact malloc counts) — they are
// the evidence that an untraced packet allocates nothing, i.e. that
// tracing disabled is free per packet. The op rows drive full reads and
// writes through the modeled installation and count every allocation the
// op causes across client and agents; their ns/byte is modeled wall
// time, so only the off-vs-on comparison is meaningful there.

// HotPoint is one measured cell of the hot-path profile.
type HotPoint struct {
	Path        string  `json:"path"`    // "packet_encode", "packet_decode", "write", "read"
	Tracing     string  `json:"tracing"` // "off" or "on"
	BytesPerOp  int64   `json:"bytes_per_op"`
	NsPerByte   float64 `json:"ns_per_byte"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// HotBench is the machine-readable result set (BENCH_hotpath.json).
type HotBench struct {
	Points []HotPoint `json:"points"`
}

// MeasureHotpath runs the hot-path profile. budget is the minimum
// measurement time per packet-level cell; the op-level cells run a small
// fixed number of full read/write ops instead, because each op already
// moves opBytes through the modeled installation.
func MeasureHotpath(budget time.Duration) (HotBench, error) {
	var out HotBench

	for _, traced := range []bool{false, true} {
		enc, dec := measurePacket(budget, traced)
		out.Points = append(out.Points, enc, dec)
	}
	for _, traced := range []bool{false, true} {
		pts, err := measureOps(traced)
		if err != nil {
			return HotBench{}, err
		}
		out.Points = append(out.Points, pts...)
	}
	return out, nil
}

// measurePacket times wire encode (AppendPacket into a reused buffer)
// and decode (Unmarshal, payload aliasing) of a full-size data packet,
// untraced or carrying the version-2 trace extension. Runs pinned to one
// goroutine with exact malloc deltas — the per-packet numbers behind the
// "tracing off costs zero allocations" claim.
func measurePacket(budget time.Duration, traced bool) (enc, dec HotPoint) {
	pkt := wire.Packet{
		Header:  wire.Header{Type: wire.TData, ReqID: 7, Handle: 42, Offset: 1 << 20, Length: wire.MaxPayload},
		Payload: pattern(wire.MaxPayload, 3),
	}
	if traced {
		pkt.Trace = obs.SpanContext{TraceID: 0xdead, SpanID: 0xbeef, Flags: obs.SpanSampled}
		pkt.Payload = pkt.Payload[:wire.MaxTracedPayload]
		pkt.Length = wire.MaxTracedPayload
	}
	buf := make([]byte, 0, wire.MaxPacket)
	encoded, err := wire.AppendPacket(buf, &pkt)
	if err != nil {
		panic(err) // static inputs; cannot fail
	}

	mode := "off"
	if traced {
		mode = "on"
	}
	bytes := int64(len(pkt.Payload))

	nsb, allocs := timeAllocs(budget, func() {
		if _, err := wire.AppendPacket(buf[:0], &pkt); err != nil {
			panic(err)
		}
	})
	enc = HotPoint{Path: "packet_encode", Tracing: mode, BytesPerOp: bytes,
		NsPerByte: nsb / float64(bytes), AllocsPerOp: allocs}

	var got wire.Packet
	nsb, allocs = timeAllocs(budget, func() {
		if err := wire.Unmarshal(encoded, &got); err != nil {
			panic(err)
		}
	})
	dec = HotPoint{Path: "packet_decode", Tracing: mode, BytesPerOp: bytes,
		NsPerByte: nsb / float64(bytes), AllocsPerOp: allocs}
	return enc, dec
}

// hotOpBytes is the transfer each measured op moves: large enough that
// per-op setup amortizes, small enough that a cell finishes in seconds
// of wall time on the modeled Ethernet.
const hotOpBytes = 256 << 10

// hotOpRuns is the measured op count per cell (plus one warm-up).
const hotOpRuns = 4

// measureOps drives full WriteAt/ReadAt ops through a 3-agent modeled
// installation — tracing off (nil tracer) or on (head-sampling every op)
// — and reports ns/byte of modeled wall time plus the total allocations
// each op causes across the client and every agent goroutine.
func measureOps(traced bool) ([]HotPoint, error) {
	opts := Options{Seed: 1}
	mode := "off"
	if traced {
		mode = "on"
		opts.Tracer = obs.NewTracer(obs.TracerConfig{Rate: 1})
	}
	cl, err := NewSwiftCluster(opts)
	if err != nil {
		return nil, fmt.Errorf("bench: hotpath cluster: %w", err)
	}
	defer cl.Close()

	data := pattern(hotOpBytes, 11)
	f, err := cl.Client.Open("hotpath", core.OpenFlags{Create: true, Truncate: true})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	wns, wallocs, err := timeAllocsOp(func() error {
		_, werr := f.WriteAt(data, 0)
		return werr
	})
	if err != nil {
		return nil, fmt.Errorf("bench: hotpath write: %w", err)
	}
	buf := make([]byte, hotOpBytes)
	rns, rallocs, err := timeAllocsOp(func() error {
		_, rerr := f.ReadAt(buf, 0)
		return rerr
	})
	if err != nil {
		return nil, fmt.Errorf("bench: hotpath read: %w", err)
	}
	return []HotPoint{
		{Path: "write", Tracing: mode, BytesPerOp: hotOpBytes,
			NsPerByte: wns / hotOpBytes, AllocsPerOp: wallocs},
		{Path: "read", Tracing: mode, BytesPerOp: hotOpBytes,
			NsPerByte: rns / hotOpBytes, AllocsPerOp: rallocs},
	}, nil
}

// timeAllocs runs op until at least budget has elapsed (always at least
// once) on a single pinned goroutine and returns (ns per op, mallocs per
// op). The malloc delta is exact: GOMAXPROCS(1) and no helper goroutines,
// the same discipline testing.AllocsPerRun uses.
func timeAllocs(budget time.Duration, op func()) (nsPerOp, allocsPerOp float64) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	op() // warm-up
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var (
		iters int
		start = time.Now()
	)
	for {
		op()
		iters++
		if time.Since(start) >= budget {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(elapsed.Nanoseconds()) / float64(iters),
		float64(after.Mallocs-before.Mallocs) / float64(iters)
}

// timeAllocsOp measures hotOpRuns full ops: ns per op and the
// process-wide malloc delta per op. The ops fan work out to agent and
// transport goroutines, so the count is every allocation the op causes
// end to end — noisier than timeAllocs but the honest per-op figure.
func timeAllocsOp(op func() error) (nsPerOp, allocsPerOp float64, err error) {
	if err := op(); err != nil { // warm-up: sessions, buffers, read-ahead
		return 0, 0, err
	}
	runtime.GC() // flush garbage so the delta measures the ops, not cleanup
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < hotOpRuns; i++ {
		if err := op(); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(elapsed.Nanoseconds()) / hotOpRuns,
		float64(after.Mallocs-before.Mallocs) / hotOpRuns, nil
}

// Print renders the profile in the ablation-sweep style.
func (b HotBench) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation: hotpath: client read/write path ns/byte and allocs/op, tracing off vs on")
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Path\tTracing\tBytes/op\tns/byte\tallocs/op\t")
	for _, p := range b.Points {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\t%.1f\t\n",
			p.Path, p.Tracing, p.BytesPerOp, p.NsPerByte, p.AllocsPerOp)
	}
	tw.Flush()
}

// String renders the profile to a string.
func (b HotBench) String() string {
	var sb strings.Builder
	b.Print(&sb)
	return sb.String()
}

// WriteJSON emits the machine-readable result set.
func (b HotBench) WriteJSON(w io.Writer) error {
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(b)
}
