package bench

import (
	"fmt"
	"time"

	"swift/internal/agent"
	"swift/internal/core"
	"swift/internal/disk"
	"swift/internal/nfs"
	"swift/internal/obs"
	"swift/internal/store"
	"swift/internal/transport/memnet"
)

// Options configures a measured installation.
type Options struct {
	// Scale runs modeled time this many times faster than wall-clock
	// (default 6 — higher scales starve the model of real CPU on small
	// machines and understate data-rates; see DESIGN.md).
	Scale float64
	// Agents is the number of storage agents (default 3).
	Agents int
	// Segments spreads the agents over this many Ethernet segments,
	// all attached to the client (default 1).
	Segments int
	// StreamClient swaps in the TCP-prototype client profile.
	StreamClient bool
	// Parity enables computed-copy redundancy.
	Parity bool
	// SyncAgentWrites forces the agents to write through to disk.
	SyncAgentWrites bool
	// RequestBytes overrides the per-agent burst size (0 = default).
	RequestBytes int64
	// Unit overrides the striping unit (0 = 64 KiB).
	Unit int64
	// ReadAhead enables the client's sequential read-ahead window.
	ReadAhead int64
	// CacheSize bounds the client block cache in bytes (0 auto-sizes
	// when another cache feature is on; negative disables the tier).
	CacheSize int64
	// WriteBehindMax, when > 0, bounds write-behind dirty bytes.
	WriteBehindMax int64
	// SendCPU overrides the client's per-packet send cost (0 = default).
	SendCPU time.Duration
	// Seed seeds loss and disk positioning.
	Seed int64
	// HealthInterval, when > 0, starts the client's background health
	// monitor at this modeled-time period (scaled like the protocol
	// timers).
	HealthInterval time.Duration
	// HealthRebuild makes re-admission rebuild a returning agent's
	// fragments from parity first. At paper-faithful Ethernet rates a
	// full rebuild takes minutes of modeled time, so soak harnesses
	// usually leave it off and let re-admission just reopen sessions.
	HealthRebuild bool
	// MaxRetries overrides the client's no-progress give-up budget
	// (≈ MaxRetries × RetryTimeout). The default 200 suits measurement
	// runs where an op must survive deep loss; chaos soaks set it much
	// lower so failure attribution outpaces the fault schedule.
	MaxRetries int
	// Logf receives client and agent diagnostics (default: none).
	Logf func(format string, args ...any)
	// Verbose additionally routes burst-level trace events to Logf.
	Verbose bool
	// Obs, when non-nil, is the metric registry the client's telemetry
	// and every segment's and host's traffic counters are registered in
	// (swift-load's -metrics endpoint). Agents keep private registries —
	// their unlabeled series would collide in a shared one.
	Obs *obs.Registry
	// Tracer, when non-nil, is shared by the client and every agent, so
	// one collector assembles full cross-layer span trees (client op →
	// per-agent service spans) for the in-process installation.
	Tracer *obs.Tracer
}

func (o *Options) fill() {
	if o.Scale == 0 {
		o.Scale = 6
	}
	if o.Agents == 0 {
		o.Agents = 3
	}
	if o.Segments == 0 {
		o.Segments = 1
	}
}

// SwiftCluster is a measured Swift installation: a client and N storage
// agents with modeled SCSI disks on one or more modeled Ethernets.
type SwiftCluster struct {
	Net        *memnet.Net
	Segments   []*memnet.Segment
	Client     *core.Client
	Agents     []*agent.Agent
	AgentHosts []*memnet.Host
	stores     []*store.DiskStore
	opts       Options
}

// scaled converts a modeled duration to the real duration protocol timers
// must use.
func scaled(d time.Duration, scale float64) time.Duration {
	return time.Duration(float64(d) / scale)
}

// NewSwiftCluster builds the installation and dials the client.
func NewSwiftCluster(opts Options) (*SwiftCluster, error) {
	opts.fill()
	n := memnet.New(opts.Scale)
	c := &SwiftCluster{Net: n, opts: opts}

	for s := 0; s < opts.Segments; s++ {
		seg := n.NewSegment(fmt.Sprintf("ether%d", s), EthernetSegment(opts.Seed+int64(s)))
		if opts.Obs != nil {
			seg.Register(opts.Obs)
		}
		c.Segments = append(c.Segments, seg)
	}

	addrs := make([]string, opts.Agents)
	for i := 0; i < opts.Agents; i++ {
		seg := c.Segments[i%len(c.Segments)]
		host, err := n.NewHost(fmt.Sprintf("slc%d", i), SLCAgentHost(), seg)
		if err != nil {
			return nil, err
		}
		dev := disk.NewDevice(disk.ProfileSunSCSI(),
			disk.WithSleeper(n.Sleeper()),
			disk.WithAsyncWrites(AsyncWriteRate),
			disk.WithSeed(opts.Seed+100+int64(i)))
		st := store.NewDiskStore(store.NewMem(), dev)
		st.SyncWrites = opts.SyncAgentWrites
		a, err := agent.New(host, st, agent.Config{
			ResendCheck: scaled(60*time.Millisecond, opts.Scale),
			ResendAfter: scaled(120*time.Millisecond, opts.Scale),
			SessionIdle: scaled(120*time.Second, opts.Scale),
			Logf:        opts.Logf,
			Verbose:     opts.Verbose,
			Tracer:      opts.Tracer,
		})
		if err != nil {
			return nil, err
		}
		if opts.Obs != nil {
			host.Register(opts.Obs)
		}
		c.Agents = append(c.Agents, a)
		c.AgentHosts = append(c.AgentHosts, host)
		c.stores = append(c.stores, st)
		addrs[i] = a.Addr()
	}

	clientProfile := SparcClientHost()
	if opts.StreamClient {
		clientProfile = StreamClientHost()
	}
	if opts.SendCPU != 0 {
		clientProfile.SendCPU = opts.SendCPU
	}
	clientHost, err := n.NewHost("sparc2", clientProfile, c.Segments...)
	if err != nil {
		return nil, err
	}
	if opts.Obs != nil {
		clientHost.Register(opts.Obs)
	}
	reqBytes := int64(RequestBytes)
	if opts.RequestBytes != 0 {
		reqBytes = opts.RequestBytes
	}
	unit := int64(64 * 1024)
	if opts.Unit != 0 {
		unit = opts.Unit
	}
	maxRetries := 200
	if opts.MaxRetries != 0 {
		maxRetries = opts.MaxRetries
	}
	cl, err := core.Dial(core.Config{
		Host:         clientHost,
		Agents:       addrs,
		Unit:         unit,
		Parity:       opts.Parity,
		RequestBytes: reqBytes,
		WriteWindow:  2,
		RetryTimeout: scaled(400*time.Millisecond, opts.Scale),
		MaxRetries:   maxRetries,
		ReadAhead:    opts.ReadAhead,
		WritePace:    WritePace,
		Sleep:        n.Sleep,

		CacheSize:      opts.CacheSize,
		WriteBehindMax: opts.WriteBehindMax,
		Logf:           opts.Logf,
		Verbose:        opts.Verbose,
		Obs:            opts.Obs,
		Tracer:         opts.Tracer,
	})
	if err != nil {
		return nil, err
	}
	c.Client = cl
	if opts.HealthInterval > 0 {
		err = cl.StartMonitor(core.MonitorConfig{
			Interval: scaled(opts.HealthInterval, opts.Scale),
			Rebuild:  opts.HealthRebuild && opts.Parity,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// CrashAgent kills storage agent i's server process: its sessions, handles
// and private ports die with it; the host and its store survive.
func (c *SwiftCluster) CrashAgent(i int) error {
	if i < 0 || i >= len(c.Agents) || c.Agents[i] == nil {
		return fmt.Errorf("bench: no agent %d to crash", i)
	}
	c.Agents[i].Close()
	c.Agents[i] = nil
	return nil
}

// RestartAgent brings a crashed agent back on the same host, store and
// well-known port, as a rebooted machine would.
func (c *SwiftCluster) RestartAgent(i int) error {
	if i < 0 || i >= len(c.Agents) {
		return fmt.Errorf("bench: no agent %d to restart", i)
	}
	if c.Agents[i] != nil {
		return nil // still running
	}
	a, err := agent.New(c.AgentHosts[i], c.stores[i], agent.Config{
		ResendCheck: scaled(60*time.Millisecond, c.opts.Scale),
		ResendAfter: scaled(120*time.Millisecond, c.opts.Scale),
		SessionIdle: scaled(120*time.Second, c.opts.Scale),
		Logf:        c.opts.Logf,
		Verbose:     c.opts.Verbose,
		Tracer:      c.opts.Tracer,
	})
	if err != nil {
		return err
	}
	c.Agents[i] = a
	return nil
}

// Close tears the installation down.
func (c *SwiftCluster) Close() {
	if c.Client != nil {
		c.Client.Close()
	}
	for _, a := range c.Agents {
		if a != nil {
			a.Close()
		}
	}
}

// NFSCluster is the Table 3 installation: one NFS server with IPI drives
// and the SPARCstation client on a shared Ethernet.
type NFSCluster struct {
	Net    *memnet.Net
	Client *nfs.Client
	Server *nfs.Server
	opts   Options
}

// NewNFSCluster builds the NFS installation.
func NewNFSCluster(opts Options) (*NFSCluster, error) {
	opts.fill()
	n := memnet.New(opts.Scale)
	seg := n.NewSegment("dept", EthernetSegment(opts.Seed))

	srvHost, err := n.NewHost("sun4-390", ServerHost(), seg)
	if err != nil {
		return nil, err
	}
	dev := disk.NewDevice(disk.ProfileSunIPI(),
		disk.WithSleeper(n.Sleeper()),
		disk.WithSeed(opts.Seed+200))
	st := store.NewDiskStore(store.NewMem(), dev)
	st.SyncWrites = true // NFS v2 write-through
	srv, err := nfs.NewServer(srvHost, st, dev, nfs.ServerConfig{
		CPUPerRPC: NFSServerCPU,
		Sleep:     n.Sleep,
	})
	if err != nil {
		return nil, err
	}

	clientHost, err := n.NewHost("sparc2", SparcClientHost(), seg)
	if err != nil {
		srv.Close()
		return nil, err
	}
	cl, err := nfs.Dial(clientHost, nfs.ClientConfig{
		Server:       srv.Addr(),
		RetryTimeout: scaled(700*time.Millisecond, opts.Scale),
		MaxRetries:   50,
	})
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &NFSCluster{Net: n, Client: cl, Server: srv, opts: opts}, nil
}

// Close tears the installation down.
func (c *NFSCluster) Close() {
	if c.Client != nil {
		c.Client.Close()
	}
	if c.Server != nil {
		c.Server.Close()
	}
}
