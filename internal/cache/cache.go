// Package cache is the client-side block cache: a bounded, scan-resistant
// store of recently read — and, with write-behind, recently written —
// object bytes, shared by every open file of one client.
//
// The cache sits between core.File and the stripe layer. It is a passive
// policy engine: it never performs I/O itself. The file layer asks it to
// serve reads (ReadCached), tells it what a fetch brought back (Insert),
// absorbs writes into it (Write), and drains dirty extents out of it
// (NextFlush/FlushDone) in offset order. Keeping the I/O in core keeps
// the retry, failover, hedging and deadline machinery in one place and
// makes the cache trivially testable.
//
// Eviction is segmented LRU (a 2Q variant): blocks enter a probation
// FIFO and are promoted to the protected segment only on a re-reference
// after the insert-time access. A one-pass streaming scan therefore
// touches each block once, dies in probation, and never displaces the
// re-referenced hot set.
//
// Dirty blocks are pinned: they are excluded from both eviction lists
// until the file layer flushes them. Dirty bytes count against the
// write-behind budget, and WaitWriteBudget lets writers park until the
// background flusher drains below it.
package cache

import (
	"sync"
	"sync/atomic"

	"swift/internal/obs"
)

// Config sizes one client's cache.
type Config struct {
	// Capacity bounds resident bytes, clean plus dirty (floored at one
	// block).
	Capacity int64
	// BlockSize is the caching granularity (default 64 KiB). Fetches and
	// flushes may span several blocks; residency is tracked per block.
	BlockSize int64
	// ReadAhead is the per-stream prefetch window in bytes (0 disables
	// stream detection and prefetch suggestions).
	ReadAhead int64
	// Streams caps concurrently prefetching sequential streams
	// (default 2). The limit is enforced by the caller's prefetch
	// workers; the cache only sizes its suggestion bookkeeping with it.
	Streams int
	// WriteBehindMax is the dirty-byte budget. 0 means write-through:
	// the file layer must not absorb dirty data at all.
	WriteBehindMax int64
}

func (c *Config) fill() {
	if c.BlockSize <= 0 {
		c.BlockSize = 64 * 1024
	}
	if c.Capacity < c.BlockSize {
		c.Capacity = c.BlockSize
	}
	if c.Streams <= 0 {
		c.Streams = 2
	}
	// Leave at least one block of clean headroom so demand fetches can
	// always land even when write-behind is saturated.
	if c.WriteBehindMax > c.Capacity-c.BlockSize {
		c.WriteBehindMax = c.Capacity - c.BlockSize
	}
}

// Cache is one client's block cache. All structural state — the object
// table, the block tables, both LRU lists, and the byte accounting — is
// protected by mu; the counters are atomics so exports never take the
// lock.
type Cache struct {
	cfg Config

	mu        sync.Mutex
	objs      map[string]*Object // guarded by mu
	probation lruList            // guarded by mu
	protected lruList            // guarded by mu
	probBytes int64              // guarded by mu
	protBytes int64              // guarded by mu
	dirty     int64              // guarded by mu
	waiters   []chan struct{}    // guarded by mu

	// pool recycles block buffers so a steady-state cache allocates
	// nothing: every buffer a block ever holds comes from acquireBuf and
	// goes back through releaseBuf.
	pool sync.Pool

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	raIssued      atomic.Int64
	raUsed        atomic.Int64
	raWasted      atomic.Int64
	flushes       atomic.Int64
	flushErrors   atomic.Int64
	stalls        atomic.Int64
	invalidations atomic.Int64
}

// Stats is a point-in-time snapshot of the cache counters and gauges.
type Stats struct {
	Capacity int64 // configured byte capacity
	Bytes    int64 // resident bytes, clean + dirty
	Dirty    int64 // resident dirty (unflushed) bytes

	Hits      int64 // block touches served from cache
	Misses    int64 // blocks fetched on demand
	Evictions int64 // blocks evicted to make room

	ReadAheadIssued int64 // blocks inserted by prefetch
	ReadAheadUsed   int64 // prefetched blocks later served
	ReadAheadWasted int64 // prefetched blocks dropped unserved

	Flushes     int64 // dirty extents written back
	FlushErrors int64 // write-backs that failed (error re-surfaced)
	Stalls      int64 // writers parked on the write-behind budget

	Invalidations int64 // objects dropped by coherence invalidation
}

// HitRate is hits over hits+misses, 0 when idle.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// New builds a cache and, when reg is non-nil, registers its metrics.
func New(cfg Config, reg *obs.Registry) *Cache {
	cfg.fill()
	c := &Cache{cfg: cfg, objs: make(map[string]*Object)}
	c.probation.init()
	c.protected.init()
	c.pool.New = func() any {
		return make([]byte, cfg.BlockSize)
	}
	if reg != nil {
		c.register(reg)
	}
	return c
}

// BlockSize reports the caching granularity.
func (c *Cache) BlockSize() int64 { return c.cfg.BlockSize }

// ReadAhead reports the per-stream prefetch window.
func (c *Cache) ReadAhead() int64 { return c.cfg.ReadAhead }

// Streams reports the concurrent-prefetch-stream cap.
func (c *Cache) Streams() int { return c.cfg.Streams }

// WriteBehind reports whether dirty absorption is enabled at all.
func (c *Cache) WriteBehind() bool { return c.cfg.WriteBehindMax > 0 }

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	bytes := c.probBytes + c.protBytes + c.dirty
	dirty := c.dirty
	c.mu.Unlock()
	return Stats{
		Capacity:        c.cfg.Capacity,
		Bytes:           bytes,
		Dirty:           dirty,
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		Evictions:       c.evictions.Load(),
		ReadAheadIssued: c.raIssued.Load(),
		ReadAheadUsed:   c.raUsed.Load(),
		ReadAheadWasted: c.raWasted.Load(),
		Flushes:         c.flushes.Load(),
		FlushErrors:     c.flushErrors.Load(),
		Stalls:          c.stalls.Load(),
		Invalidations:   c.invalidations.Load(),
	}
}

// register hooks the counters into a metric registry. The cache package
// owns the swift_cache_* namespace.
func (c *Cache) register(reg *obs.Registry) {
	gauges := []struct {
		name, help string
		load       func() float64
	}{
		{"swift_cache_bytes", "Resident cached bytes, clean plus dirty.",
			func() float64 { return float64(c.Stats().Bytes) }},
		{"swift_cache_dirty_bytes", "Resident dirty (write-behind) bytes awaiting flush.",
			func() float64 { return float64(c.Stats().Dirty) }},
		{"swift_cache_capacity_bytes", "Configured cache capacity.",
			func() float64 { return float64(c.cfg.Capacity) }},
	}
	counters := []struct {
		name, help string
		v          *atomic.Int64
	}{
		{"swift_cache_hits_total", "Block touches served from cache.", &c.hits},
		{"swift_cache_misses_total", "Blocks fetched from agents on demand.", &c.misses},
		{"swift_cache_evictions_total", "Blocks evicted to make room.", &c.evictions},
		{"swift_cache_readahead_issued_total", "Blocks inserted by asynchronous read-ahead.", &c.raIssued},
		{"swift_cache_readahead_used_total", "Prefetched blocks later served to a reader.", &c.raUsed},
		{"swift_cache_readahead_wasted_total", "Prefetched blocks dropped before any reader touched them.", &c.raWasted},
		{"swift_cache_writebehind_flushes_total", "Dirty extents written back to agents.", &c.flushes},
		{"swift_cache_writebehind_errors_total", "Write-backs that failed; the error re-surfaces on the next write or sync.", &c.flushErrors},
		{"swift_cache_writebehind_stalls_total", "Writers parked on the write-behind dirty budget.", &c.stalls},
		{"swift_cache_invalidations_total", "Objects dropped by a coherence invalidation.", &c.invalidations},
	}
	for _, g := range gauges {
		//lint:allow metricname names and help strings are literals in the table above; the loop only threads the closure
		reg.GaugeFunc(g.name, g.help, nil, g.load)
	}
	for _, ct := range counters {
		v := ct.v
		//lint:allow metricname names and help strings are literals in the table above; the loop only threads the closure
		reg.CounterFunc(ct.name, ct.help, nil, func() float64 { return float64(v.Load()) })
	}
}

// acquireBuf hands out a block-size buffer from the pool.
//
//swift:pool acquire
func (c *Cache) acquireBuf() []byte {
	return c.pool.Get().([]byte)
}

// releaseBuf returns a block buffer to the pool.
//
//swift:pool release
func (c *Cache) releaseBuf(b []byte) {
	c.pool.Put(b[:cap(b)])
}

// Open returns the (refcounted) cache view of one object. Every Open
// must be paired with Object.Close.
func (c *Cache) Open(name string) *Object {
	c.mu.Lock()
	defer c.mu.Unlock()
	o := c.objs[name]
	if o == nil {
		o = &Object{c: c, name: name, blocks: make(map[int64]*block)}
		c.objs[name] = o
	}
	o.refs++
	return o
}

// Objects lists the names of every object with live references — the set
// a coherence sync declares to the mediator. seen receives each name with
// the generation last adopted from an invalidation.
func (c *Cache) Objects(seen func(name string, gen uint64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, o := range c.objs {
		seen(name, o.seenGen)
	}
}

// DirtyBytes reports total unflushed bytes across all objects.
func (c *Cache) DirtyBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dirty
}

// OverBudget reports whether dirty bytes exceed the write-behind budget.
func (c *Cache) OverBudget() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.WriteBehindMax > 0 && c.dirty > c.cfg.WriteBehindMax
}

// BudgetWait returns a channel that is closed once dirty bytes drop to
// the write-behind budget or below. When already under budget it returns
// nil. The caller parks on the channel (counted as a stall) while a
// background flusher drains.
func (c *Cache) BudgetWait() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.WriteBehindMax <= 0 || c.dirty <= c.cfg.WriteBehindMax {
		return nil
	}
	ch := make(chan struct{})
	c.waiters = append(c.waiters, ch)
	c.stalls.Add(1)
	return ch
}

// wakeWaitersLocked releases budget waiters once dirty drops to the
// budget; c.mu held.
func (c *Cache) wakeWaitersLocked() {
	if c.dirty > c.cfg.WriteBehindMax || len(c.waiters) == 0 {
		return
	}
	for _, ch := range c.waiters {
		close(ch)
	}
	c.waiters = nil
}

// ensureRoomLocked evicts clean blocks until n more bytes fit under
// Capacity; c.mu held. Dirty blocks are pinned and never evicted, so a
// saturated write-behind can at worst squeeze the clean segments to
// zero.
func (c *Cache) ensureRoomLocked(n int64) {
	for c.probBytes+c.protBytes+c.dirty+n > c.cfg.Capacity {
		b := c.probation.tail()
		if b == nil {
			b = c.protected.tail()
		}
		if b == nil {
			return // everything resident is dirty; nothing evictable
		}
		c.dropLocked(b, true)
	}
}

// dropLocked removes one clean block from its object and list and
// recycles its buffer; c.mu held.
func (c *Cache) dropLocked(b *block, evicted bool) {
	if b.list != nil {
		b.list.remove(b)
		if b.list == &c.probation {
			c.probBytes -= c.cfg.BlockSize
		} else {
			c.protBytes -= c.cfg.BlockSize
		}
		b.list = nil
	}
	delete(b.obj.blocks, b.idx)
	b.obj.bytes -= c.cfg.BlockSize
	if evicted {
		c.evictions.Add(1)
	}
	if b.prefetched {
		c.raWasted.Add(1)
	}
	c.releaseBuf(b.buf)
	b.buf = nil
}

// touchLocked is the segmented-LRU reference rule; c.mu held. The first
// touch after insert only marks the block served; a later touch promotes
// it to the protected segment (or refreshes its protected position).
// Prefetched blocks count their first touch as a read-ahead hit.
func (c *Cache) touchLocked(b *block) {
	if b.prefetched {
		b.prefetched = false
		c.raUsed.Add(1)
	}
	if !b.served {
		b.served = true
		return
	}
	if b.list == &c.protected {
		c.protected.moveFront(b)
		return
	}
	if b.list == nil {
		return // dirty (pinned): position is restored on flush
	}
	// Second reference in probation: promote, demoting the protected
	// tail when the protected segment overflows its 3/4 share.
	c.probation.remove(b)
	c.probBytes -= c.cfg.BlockSize
	c.protected.pushFront(b)
	b.list = &c.protected
	c.protBytes += c.cfg.BlockSize
	for c.protBytes > c.cfg.Capacity*3/4 {
		t := c.protected.tail()
		if t == nil || t == b {
			break
		}
		c.protected.remove(t)
		c.protBytes -= c.cfg.BlockSize
		c.probation.pushFront(t)
		t.list = &c.probation
		c.probBytes += c.cfg.BlockSize
	}
}
