package cache

import (
	"testing"

	"swift/internal/testutil/leakcheck"
)

// TestMain fails the binary if any test leaks a goroutine: the cache is
// a passive structure and must never start one.
func TestMain(m *testing.M) { leakcheck.Main(m) }
