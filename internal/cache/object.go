package cache

// Object is the cache view of one named object. It is refcounted by
// Cache.Open/Object.Close; the last Close drops the object's clean
// blocks (dirty blocks must be flushed by the file layer first).
//
// All fields are protected by the owning Cache's mutex. The file layer
// additionally serializes mutations of one object's content under its
// own per-file lock, which is what keeps a flush's view of a dirty
// buffer stable while the lock-free agent RPCs run.
type Object struct {
	c     *Cache
	name  string
	refs  int
	bytes int64 // resident bytes, clean + dirty

	blocks map[int64]*block // residency table, keyed by block index

	// Sequential-stream detector. streamNext is the offset the next
	// sequential read would start at; run counts the consecutive bytes
	// observed; gen is bumped on every seek so in-flight prefetches for
	// the abandoned stream can be recognized and dropped; prefetchHi is
	// the end of the furthest window already suggested, preventing
	// duplicate suggestions for one stream.
	streamNext int64
	run        int64
	gen        uint64
	prefetchHi int64

	// Write-behind bookkeeping: dirtyBytes counts this object's share of
	// the cache-wide budget, and flushErr carries a failed write-back to
	// the next write or sync (never swallowed).
	dirtyBytes int64
	flushErr   error

	// seenGen is the mediator write-generation last adopted from an
	// invalidation; the coherence sync declares it and the mediator
	// answers with objects whose generation has moved past it.
	seenGen uint64
}

// block is one resident cache block. buf always holds a fully valid
// BlockSize-byte image of the object at [idx*BlockSize, (idx+1)*BlockSize)
// — the file layer backfills partially-written blocks before absorbing a
// write, and fetches are block-aligned with any beyond-EOF remainder
// zero-filled (absent bytes read as zeros through the stripe layer, so
// the images agree).
type block struct {
	obj *Object
	idx int64
	buf []byte

	prev, next *block
	list       *lruList // probation, protected, or nil while dirty (pinned)

	served     bool // touched by a reader since insert (segmented-LRU promotion rule)
	prefetched bool // inserted by read-ahead and not yet touched
	dirty      bool
	dLo, dHi   int // dirty span within buf (valid when dirty)
}

// lruList is an intrusive doubly-linked block list with a sentinel.
type lruList struct {
	root block
}

func (l *lruList) init() {
	l.root.prev = &l.root
	l.root.next = &l.root
}

func (l *lruList) pushFront(b *block) {
	b.prev = &l.root
	b.next = l.root.next
	b.prev.next = b
	b.next.prev = b
}

func (l *lruList) remove(b *block) {
	b.prev.next = b.next
	b.next.prev = b.prev
	b.prev = nil
	b.next = nil
}

func (l *lruList) moveFront(b *block) {
	l.remove(b)
	l.pushFront(b)
}

// tail returns the least-recently-used block, nil when empty.
func (l *lruList) tail() *block {
	if l.root.prev == &l.root {
		return nil
	}
	return l.root.prev
}

// Close releases one reference. The last reference drops the object's
// clean blocks; dirty blocks must have been flushed by the caller (a
// leftover dirty block is kept resident and pinned so the data is never
// silently lost, and the object stays in the table for a later flush).
func (o *Object) Close() {
	c := o.c
	c.mu.Lock()
	defer c.mu.Unlock()
	o.refs--
	if o.refs > 0 {
		return
	}
	o.dropCleanLocked()
	if o.dirtyBytes == 0 {
		delete(c.objs, o.name)
	}
}

// dropCleanLocked removes every clean block; c.mu held.
func (o *Object) dropCleanLocked() {
	for _, b := range o.blocks {
		if !b.dirty {
			o.c.dropLocked(b, false)
		}
	}
}

// Name returns the object's name.
func (o *Object) Name() string { return o.name }

// SeenGen returns the write-generation last adopted from an
// invalidation.
func (o *Object) SeenGen() uint64 {
	o.c.mu.Lock()
	defer o.c.mu.Unlock()
	return o.seenGen
}

// AdoptGen records the mediator write-generation the object's cached
// image is now known to reflect.
func (o *Object) AdoptGen(gen uint64) {
	o.c.mu.Lock()
	defer o.c.mu.Unlock()
	if gen > o.seenGen {
		o.seenGen = gen
	}
}

// ReadCached copies cached bytes for the prefix of [off, off+len(dst))
// into dst and returns how many leading bytes it served. It stops at the
// first non-resident block; the caller fetches from there and calls
// Insert. Every block served counts as a hit; a leading miss counts
// nothing (Insert accounts demand misses per block).
//
//swift:hotpath
func (o *Object) ReadCached(dst []byte, off int64) int {
	c := o.c
	bs := c.cfg.BlockSize
	c.mu.Lock()
	served := 0
	for served < len(dst) {
		pos := off + int64(served)
		b := o.blocks[pos/bs]
		if b == nil {
			break
		}
		in := int(pos % bs)
		n := copy(dst[served:], b.buf[in:])
		served += n
		c.touchLocked(b)
		c.hits.Add(1)
	}
	c.mu.Unlock()
	return served
}

// Contains reports whether every byte of [off, off+n) is resident — the
// prefetch worker's re-check before fetching, and a test hook.
func (o *Object) Contains(off, n int64) bool {
	c := o.c
	bs := c.cfg.BlockSize
	c.mu.Lock()
	defer c.mu.Unlock()
	for idx := off / bs; idx*bs < off+n; idx++ {
		if o.blocks[idx] == nil {
			return false
		}
	}
	return true
}

// Insert copies fetched bytes into cache blocks. off must be
// block-aligned; a short tail (a fetch clamped at end-of-object) has its
// final block zero-filled, which matches what the stripe layer reads for
// absent bytes. Already-resident blocks are left untouched — they are at
// least as fresh as the fetch (a racing write invalidates or dirties
// them under the file lock). prefetched marks the blocks for read-ahead
// accounting; demand inserts count one miss per block.
func (o *Object) Insert(off int64, p []byte, prefetched bool) {
	c := o.c
	bs := c.cfg.BlockSize
	if off%bs != 0 {
		panic("cache: Insert offset not block-aligned")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for in := 0; in < len(p); in += int(bs) {
		idx := (off + int64(in)) / bs
		if o.blocks[idx] != nil {
			continue
		}
		c.ensureRoomLocked(bs)
		if c.probBytes+c.protBytes+c.dirty+bs > c.cfg.Capacity {
			return // wedged: capacity full of pinned dirty blocks
		}
		b := &block{obj: o, idx: idx, buf: c.acquireBuf(), prefetched: prefetched}
		n := copy(b.buf, p[in:])
		for i := n; i < len(b.buf); i++ {
			b.buf[i] = 0
		}
		o.blocks[idx] = b
		o.bytes += bs
		c.probation.pushFront(b)
		b.list = &c.probation
		c.probBytes += bs
		if prefetched {
			c.raIssued.Add(1)
		} else {
			c.misses.Add(1)
		}
	}
}

// MissingBacking returns the first block-aligned range of [off, off+n)
// that must be fetched and Inserted before Write can absorb the span:
// a non-resident block that would be left partially valid because the
// object has bytes on disk (below size) outside the written span. The
// caller loops: fetch, Insert, ask again.
func (o *Object) MissingBacking(off, n, size int64) (boff, blen int64, ok bool) {
	c := o.c
	bs := c.cfg.BlockSize
	wEnd := off + n
	c.mu.Lock()
	defer c.mu.Unlock()
	for idx := off / bs; idx*bs < wEnd; idx++ {
		if o.blocks[idx] != nil {
			continue
		}
		lo, hi := idx*bs, (idx+1)*bs
		if hi > size {
			hi = size
		}
		// Backing is needed exactly when the object has valid on-disk
		// bytes in this block outside the written span.
		if hi > lo && (lo < off || hi > wEnd) {
			return idx * bs, bs, true
		}
	}
	return 0, 0, false
}

// Write absorbs p at off into dirty blocks (write-behind). Blocks whose
// on-disk bytes the write does not fully cover must already be resident
// (see MissingBacking), so a block the write creates here has no valid
// on-disk bytes outside the written span and its zero-filled remainder
// is the correct image. Dirty blocks are pinned out of the eviction
// lists until FlushDone.
func (o *Object) Write(off int64, p []byte) {
	c := o.c
	bs := c.cfg.BlockSize
	c.mu.Lock()
	defer c.mu.Unlock()
	for in := 0; in < len(p); {
		pos := off + int64(in)
		idx := pos / bs
		b := o.blocks[idx]
		if b == nil {
			c.ensureRoomLocked(bs)
			b = &block{obj: o, idx: idx, buf: c.acquireBuf()}
			for i := range b.buf {
				b.buf[i] = 0
			}
			o.blocks[idx] = b
			o.bytes += bs
		}
		lo := int(pos % bs)
		n := copy(b.buf[lo:], p[in:])
		hi := lo + n
		if !b.dirty {
			b.dirty = true
			b.dLo, b.dHi = lo, hi
			if b.list != nil { // pin: out of the eviction lists
				if b.list == &c.probation {
					c.probBytes -= bs
				} else {
					c.protBytes -= bs
				}
				b.list.remove(b)
				b.list = nil
			}
			c.dirty += bs
			o.dirtyBytes += bs
		} else {
			// The block is fully valid, so widening the span over a gap
			// rewrites bytes that equal the on-disk image — harmless.
			if lo < b.dLo {
				b.dLo = lo
			}
			if hi > b.dHi {
				b.dHi = hi
			}
		}
		in += n
	}
}

// SequentialAt reports whether a read starting at off continues the
// object's current sequential stream — the file layer widens a demand
// fetch to the read-ahead window exactly then.
func (o *Object) SequentialAt(off int64) bool {
	c := o.c
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.ReadAhead > 0 && off == o.streamNext
}

// NextFlush returns the lowest-offset dirty extent as (off, view into
// the block buffer). The view stays stable while the caller holds the
// file lock (writers mutate blocks only under it) and dirty blocks are
// never evicted. After writing it back, call FlushDone (or FlushFail).
func (o *Object) NextFlush() (off int64, p []byte, ok bool) {
	c := o.c
	bs := c.cfg.BlockSize
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *block
	for _, b := range o.blocks {
		if b.dirty && (best == nil || b.idx < best.idx) {
			best = b
		}
	}
	if best == nil {
		return 0, nil, false
	}
	return best.idx*bs + int64(best.dLo), best.buf[best.dLo:best.dHi], true
}

// FlushDone marks the dirty extent returned by NextFlush clean. The
// block unpins into the protected segment — it was written recently and
// a write-behind pattern re-reads its own output often enough that
// probation would thrash it.
func (o *Object) FlushDone(off int64) {
	c := o.c
	bs := c.cfg.BlockSize
	c.mu.Lock()
	defer c.mu.Unlock()
	b := o.blocks[off/bs]
	if b == nil || !b.dirty {
		return
	}
	b.dirty = false
	b.served = true
	c.dirty -= bs
	o.dirtyBytes -= bs
	c.flushes.Add(1)
	c.protected.pushFront(b)
	b.list = &c.protected
	c.protBytes += bs
	c.ensureRoomLocked(0)
	c.wakeWaitersLocked()
}

// FlushFail records a failed write-back. The extent stays dirty (and
// will be retried); the error re-surfaces on the next write or sync.
func (o *Object) FlushFail(err error) {
	c := o.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if o.flushErr == nil {
		o.flushErr = err
	}
	c.flushErrors.Add(1)
}

// TakeFlushErr returns and clears a pending write-back error.
func (o *Object) TakeFlushErr() error {
	c := o.c
	c.mu.Lock()
	defer c.mu.Unlock()
	err := o.flushErr
	o.flushErr = nil
	return err
}

// DirtyBytes reports this object's unflushed bytes.
func (o *Object) DirtyBytes() int64 {
	c := o.c
	c.mu.Lock()
	defer c.mu.Unlock()
	return o.dirtyBytes
}

// Invalidate drops every block overlapping [off, off+n): the
// write-through path after a successful write, and the truncate path.
// Dirty blocks in range are dropped too — callers flush first when the
// dirty data must survive.
func (o *Object) Invalidate(off, n int64) {
	c := o.c
	bs := c.cfg.BlockSize
	c.mu.Lock()
	defer c.mu.Unlock()
	lo, hi := off/bs, (off+n+bs-1)/bs
	if hi-lo > int64(len(o.blocks)) {
		// The range spans more blocks than are resident (e.g. the
		// whole-object 1<<62 sentinel): sweep residency, not the range.
		for idx, b := range o.blocks {
			if idx >= lo && idx < hi {
				o.invalidateBlockLocked(b)
			}
		}
	} else {
		for idx := lo; idx < hi; idx++ {
			if b := o.blocks[idx]; b != nil {
				o.invalidateBlockLocked(b)
			}
		}
	}
	o.resetStreamLocked()
}

// invalidateBlockLocked drops one block, settling dirty accounting
// first; c.mu held.
func (o *Object) invalidateBlockLocked(b *block) {
	c := o.c
	if b.dirty {
		b.dirty = false
		c.dirty -= c.cfg.BlockSize
		o.dirtyBytes -= c.cfg.BlockSize
		c.wakeWaitersLocked()
	}
	c.dropLocked(b, false)
}

// InvalidateAll drops the object's entire cached image — the coherence
// path when another client wrote the object, counted as one
// invalidation. gen, when nonzero, is adopted as the write-generation
// the next fetch will reflect. Dirty blocks must be flushed first.
func (o *Object) InvalidateAll(gen uint64) {
	c := o.c
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, b := range o.blocks {
		if b.dirty {
			b.dirty = false
			c.dirty -= c.cfg.BlockSize
			o.dirtyBytes -= c.cfg.BlockSize
			c.wakeWaitersLocked()
		}
		c.dropLocked(b, false)
	}
	if gen > o.seenGen {
		o.seenGen = gen
	}
	o.resetStreamLocked()
	c.invalidations.Add(1)
}

// resetStreamLocked abandons the current sequential stream; c.mu held.
// Bumping gen cancels in-flight prefetches (their results are dropped by
// the worker's gen check).
func (o *Object) resetStreamLocked() {
	o.run = 0
	o.gen++
	o.prefetchHi = 0
}

// StreamGen returns the current stream generation; a prefetch worker
// re-checks it before inserting so a seek cancels in-flight read-ahead.
func (o *Object) StreamGen() uint64 {
	c := o.c
	c.mu.Lock()
	defer c.mu.Unlock()
	return o.gen
}

// NoteRead feeds the stream detector after serving [off, off+n) of an
// object currently size bytes long, and returns the read-ahead window
// the caller should prefetch asynchronously (plen == 0: none). A window
// is suggested once per stream position, block-aligned, clamped to the
// object size, and only after a full block of sequential progress.
func (o *Object) NoteRead(off, n, size int64) (poff, plen int64, gen uint64) {
	c := o.c
	bs := c.cfg.BlockSize
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.ReadAhead <= 0 {
		return 0, 0, 0
	}
	if off != o.streamNext {
		o.resetStreamLocked()
		o.run = n
	} else {
		o.run += n
	}
	o.streamNext = off + n
	if o.run < bs {
		return 0, 0, o.gen
	}
	start := o.streamNext
	if r := start % bs; r != 0 {
		start += bs - r
	}
	if start < o.prefetchHi {
		start = o.prefetchHi
	}
	end := o.streamNext + c.cfg.ReadAhead
	if r := end % bs; r != 0 {
		end += bs - r
	}
	if end > size {
		end = size
	}
	if end <= start {
		return 0, 0, o.gen
	}
	o.prefetchHi = end
	return start, end - start, o.gen
}
