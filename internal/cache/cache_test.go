package cache

import (
	"bytes"
	"errors"
	"testing"
)

const bs = 4096 // test block size

func testCache(t *testing.T, capBlocks int, cfg Config) *Cache {
	t.Helper()
	cfg.BlockSize = bs
	cfg.Capacity = int64(capBlocks) * bs
	return New(cfg, nil)
}

// fill returns a deterministic pattern for [off, off+n) so reads can be
// verified byte-exactly regardless of which blocks served them.
func fill(off int64, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte((off + int64(i)) * 7)
	}
	return p
}

// insertBlocks demand-inserts whole blocks [first, first+count).
func insertBlocks(o *Object, first, count int64) {
	for i := first; i < first+count; i++ {
		o.Insert(i*bs, fill(i*bs, bs), false)
	}
}

func TestReadCachedRoundTrip(t *testing.T) {
	c := testCache(t, 8, Config{})
	o := c.Open("obj")
	defer o.Close()

	insertBlocks(o, 0, 3)
	// Unaligned span across all three blocks.
	dst := make([]byte, 2*bs)
	n := o.ReadCached(dst, 100)
	if n != len(dst) {
		t.Fatalf("ReadCached served %d of %d", n, len(dst))
	}
	if !bytes.Equal(dst, fill(100, len(dst))) {
		t.Fatal("ReadCached returned wrong bytes")
	}
	// A hole stops service at its edge.
	n = o.ReadCached(dst, 2*bs+10)
	if want := bs - 10; n != want {
		t.Fatalf("ReadCached across hole served %d, want %d", n, want)
	}
	if c.Stats().Hits == 0 {
		t.Fatal("no hits counted")
	}
}

func TestEvictionBoundsResidency(t *testing.T) {
	c := testCache(t, 4, Config{})
	o := c.Open("obj")
	defer o.Close()

	insertBlocks(o, 0, 10)
	if got := c.Stats().Bytes; got > 4*bs {
		t.Fatalf("resident %d bytes, capacity %d", got, 4*bs)
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions counted")
	}
}

// TestScanResistance pins the 2Q property: a working set that has been
// re-referenced survives a one-pass scan that is larger than the whole
// cache.
func TestScanResistance(t *testing.T) {
	c := testCache(t, 8, Config{})
	hot := c.Open("hot")
	defer hot.Close()
	scan := c.Open("scan")
	defer scan.Close()

	// Build the hot set: insert two blocks and touch them twice — the
	// second touch promotes them into the protected segment.
	insertBlocks(hot, 0, 2)
	dst := make([]byte, bs)
	for pass := 0; pass < 2; pass++ {
		for i := int64(0); i < 2; i++ {
			if n := hot.ReadCached(dst, i*bs); n != bs {
				t.Fatalf("hot pass %d block %d: served %d", pass, i, n)
			}
		}
	}

	// Stream a 32-block scan through the 8-block cache, touching each
	// block exactly once, as a sequential reader does.
	for i := int64(0); i < 32; i++ {
		scan.Insert(i*bs, fill(i*bs, bs), false)
		if n := scan.ReadCached(dst, i*bs); n != bs {
			t.Fatalf("scan block %d: served %d", i, n)
		}
	}

	// The hot set must still be resident.
	for i := int64(0); i < 2; i++ {
		if !hot.Contains(i*bs, bs) {
			t.Fatalf("scan evicted hot block %d", i)
		}
	}
}

func TestInsertSkipsResidentBlocks(t *testing.T) {
	c := testCache(t, 8, Config{})
	o := c.Open("obj")
	defer o.Close()

	o.Insert(0, fill(0, bs), false)
	// A racing stale fetch must not clobber the resident block.
	o.Insert(0, make([]byte, bs), false)
	dst := make([]byte, bs)
	o.ReadCached(dst, 0)
	if !bytes.Equal(dst, fill(0, bs)) {
		t.Fatal("re-insert clobbered a resident block")
	}
}

func TestWriteBehindFlushOrderAndAccounting(t *testing.T) {
	c := testCache(t, 8, Config{WriteBehindMax: 4 * bs})
	o := c.Open("obj")
	defer o.Close()

	// Three dirty extents, absorbed out of offset order. None needs
	// backing: each write covers its block up to the object size.
	o.Write(2*bs, fill(2*bs, bs))
	o.Write(0, fill(0, bs))
	if got := c.DirtyBytes(); got != 2*bs {
		t.Fatalf("dirty = %d, want %d", got, 2*bs)
	}

	// Flush drains lowest offset first.
	off, p, ok := o.NextFlush()
	if !ok || off != 0 || len(p) != bs {
		t.Fatalf("NextFlush = (%d, %d, %v), want (0, %d, true)", off, len(p), ok, bs)
	}
	if !bytes.Equal(p, fill(0, bs)) {
		t.Fatal("flush view has wrong bytes")
	}
	o.FlushDone(off)
	off, _, ok = o.NextFlush()
	if !ok || off != 2*bs {
		t.Fatalf("NextFlush = (%d, _, %v), want (%d, _, true)", off, ok, 2*bs)
	}
	o.FlushDone(off)
	if _, _, ok = o.NextFlush(); ok {
		t.Fatal("NextFlush found dirty data after full drain")
	}
	if got := c.DirtyBytes(); got != 0 {
		t.Fatalf("dirty = %d after drain", got)
	}
	// Flushed blocks stay resident and readable.
	dst := make([]byte, bs)
	if n := o.ReadCached(dst, 2*bs); n != bs || !bytes.Equal(dst, fill(2*bs, bs)) {
		t.Fatal("flushed block lost or corrupt")
	}
	if c.Stats().Flushes != 2 {
		t.Fatalf("flushes = %d, want 2", c.Stats().Flushes)
	}
}

func TestWritePartialBlockTracksDirtySpan(t *testing.T) {
	c := testCache(t, 8, Config{WriteBehindMax: 4 * bs})
	o := c.Open("obj")
	defer o.Close()

	// Back the block first (the file layer would, via MissingBacking).
	o.Insert(0, fill(0, bs), false)
	patch := []byte("patched")
	o.Write(10, patch)
	off, p, ok := o.NextFlush()
	if !ok || off != 10 || !bytes.Equal(p, patch) {
		t.Fatalf("NextFlush = (%d, %q, %v), want (10, %q, true)", off, p, ok, patch)
	}
	o.FlushDone(off)

	// The block image holds the patch over the backing.
	dst := make([]byte, bs)
	o.ReadCached(dst, 0)
	want := fill(0, bs)
	copy(want[10:], patch)
	if !bytes.Equal(dst, want) {
		t.Fatal("patched block image is wrong")
	}
}

func TestMissingBacking(t *testing.T) {
	c := testCache(t, 8, Config{WriteBehindMax: 4 * bs})
	o := c.Open("obj")
	defer o.Close()
	const size = 3 * bs

	// Partial write into an unbacked block of a sized object: backing
	// needed.
	boff, blen, ok := o.MissingBacking(10, 20, size)
	if !ok || boff != 0 || blen != bs {
		t.Fatalf("MissingBacking = (%d, %d, %v), want (0, %d, true)", boff, blen, ok, bs)
	}
	// Whole-block write: no backing.
	if _, _, ok := o.MissingBacking(bs, bs, size); ok {
		t.Fatal("whole-block write wants backing")
	}
	// Write extending past EOF from exactly EOF: no backing.
	if _, _, ok := o.MissingBacking(size, bs, size); ok {
		t.Fatal("append at EOF wants backing")
	}
	// Once resident, no backing either.
	o.Insert(0, fill(0, bs), false)
	if _, _, ok := o.MissingBacking(10, 20, size); ok {
		t.Fatal("resident block wants backing")
	}
}

func TestBudgetWaitBackpressure(t *testing.T) {
	c := testCache(t, 8, Config{WriteBehindMax: 2 * bs})
	o := c.Open("obj")
	defer o.Close()

	o.Write(0, fill(0, 2*bs))
	if ch := c.BudgetWait(); ch != nil {
		t.Fatal("BudgetWait parked at exactly the budget")
	}
	o.Write(2*bs, fill(2*bs, bs))
	ch := c.BudgetWait()
	if ch == nil {
		t.Fatal("BudgetWait did not park over budget")
	}
	select {
	case <-ch:
		t.Fatal("budget channel closed while still over budget")
	default:
	}
	off, _, _ := o.NextFlush()
	o.FlushDone(off)
	select {
	case <-ch:
	default:
		t.Fatal("budget channel still open after draining below budget")
	}
	if c.Stats().Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", c.Stats().Stalls)
	}
}

func TestFlushErrorResurfaces(t *testing.T) {
	c := testCache(t, 8, Config{WriteBehindMax: 4 * bs})
	o := c.Open("obj")
	defer o.Close()

	o.Write(0, fill(0, bs))
	boom := errors.New("agent lost")
	o.FlushFail(boom)
	if err := o.TakeFlushErr(); !errors.Is(err, boom) {
		t.Fatalf("TakeFlushErr = %v, want %v", err, boom)
	}
	if err := o.TakeFlushErr(); err != nil {
		t.Fatalf("flush error reported twice: %v", err)
	}
	// The extent is still dirty and retryable.
	if _, _, ok := o.NextFlush(); !ok {
		t.Fatal("failed flush dropped the dirty extent")
	}
	off, _, _ := o.NextFlush()
	o.FlushDone(off)
}

func TestDirtyBlocksAreNeverEvicted(t *testing.T) {
	c := testCache(t, 4, Config{WriteBehindMax: 2 * bs})
	o := c.Open("obj")
	defer o.Close()

	o.Write(0, fill(0, 2*bs))
	// Stream three times the capacity through the cache.
	for i := int64(10); i < 22; i++ {
		o.Insert(i*bs, fill(i*bs, bs), false)
	}
	if _, _, ok := o.NextFlush(); !ok {
		t.Fatal("dirty data evicted by clean pressure")
	}
	dst := make([]byte, 2*bs)
	if n := o.ReadCached(dst, 0); n != 2*bs || !bytes.Equal(dst, fill(0, 2*bs)) {
		t.Fatal("dirty blocks lost bytes under pressure")
	}
	for off, p, ok := o.NextFlush(); ok; off, p, ok = o.NextFlush() {
		_ = p
		o.FlushDone(off)
	}
}

func TestInvalidateDropsAndCancelsStream(t *testing.T) {
	c := testCache(t, 8, Config{ReadAhead: 2 * bs})
	o := c.Open("obj")
	defer o.Close()

	insertBlocks(o, 0, 4)
	gen := o.StreamGen()
	o.Invalidate(bs, 1)
	if o.Contains(bs, 1) {
		t.Fatal("invalidated block still resident")
	}
	if !o.Contains(0, bs) {
		t.Fatal("invalidate dropped an unrelated block")
	}
	if o.StreamGen() == gen {
		t.Fatal("invalidate did not cancel the stream")
	}
}

func TestInvalidateAllAdoptsGeneration(t *testing.T) {
	c := testCache(t, 8, Config{})
	o := c.Open("obj")
	defer o.Close()

	insertBlocks(o, 0, 3)
	o.InvalidateAll(7)
	if o.Contains(0, 3*bs) {
		t.Fatal("InvalidateAll left blocks resident")
	}
	if got := o.SeenGen(); got != 7 {
		t.Fatalf("SeenGen = %d, want 7", got)
	}
	// Generations never move backwards.
	o.InvalidateAll(3)
	if got := o.SeenGen(); got != 7 {
		t.Fatalf("SeenGen = %d after stale invalidation, want 7", got)
	}
	if c.Stats().Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", c.Stats().Invalidations)
	}
}

func TestStreamDetectionSuggestsWindows(t *testing.T) {
	const size = 64 * bs
	c := testCache(t, 32, Config{ReadAhead: 4 * bs})
	o := c.Open("obj")
	defer o.Close()

	// Sequential progress below one block: no suggestion yet.
	poff, plen, _ := o.NoteRead(0, bs/2, size)
	if plen != 0 {
		t.Fatalf("early suggestion at run %d: (%d,%d)", bs/2, poff, plen)
	}
	// Crossing a block of run: suggest the window after the stream.
	poff, plen, gen := o.NoteRead(bs/2, bs/2, size)
	if plen == 0 {
		t.Fatal("no suggestion after a block of sequential run")
	}
	if poff%bs != 0 || plen%bs != 0 {
		t.Fatalf("suggestion (%d,%d) not block-aligned", poff, plen)
	}
	if poff != bs || plen != 4*bs {
		t.Fatalf("suggestion (%d,%d), want (%d,%d)", poff, plen, bs, 4*bs)
	}
	// The stream keeps the pipeline ahead without re-suggesting bytes:
	// the next suggestion starts where the previous window ended.
	poff2, plen2, _ := o.NoteRead(bs, bs/2, size)
	if plen2 != 0 && poff2 < poff+plen {
		t.Fatalf("suggestion (%d,%d) overlaps the previous window ending at %d", poff2, plen2, poff+plen)
	}
	// A seek resets the stream and bumps the generation.
	_, _, gen2 := o.NoteRead(30*bs, bs, size)
	if gen2 == gen {
		t.Fatal("seek did not bump the stream generation")
	}
	// Suggestions clamp at the object size.
	o.NoteRead(62*bs, bs, size)
	poff, plen, _ = o.NoteRead(63*bs, bs, size)
	if plen != 0 {
		t.Fatalf("suggestion (%d,%d) past EOF", poff, plen)
	}
}

func TestReadAheadAccounting(t *testing.T) {
	c := testCache(t, 4, Config{ReadAhead: 4 * bs})
	o := c.Open("obj")
	defer o.Close()

	o.Insert(0, fill(0, bs), true) // prefetched, then used
	dst := make([]byte, bs)
	o.ReadCached(dst, 0)
	o.Insert(bs, fill(bs, bs), true) // prefetched, never used
	o.InvalidateAll(0)
	s := c.Stats()
	if s.ReadAheadIssued != 2 || s.ReadAheadUsed != 1 || s.ReadAheadWasted != 1 {
		t.Fatalf("read-ahead issued/used/wasted = %d/%d/%d, want 2/1/1",
			s.ReadAheadIssued, s.ReadAheadUsed, s.ReadAheadWasted)
	}
}

func TestObjectsEnumeratesLiveObjects(t *testing.T) {
	c := testCache(t, 8, Config{})
	a := c.Open("a")
	b := c.Open("b")
	b.AdoptGen(5)
	got := map[string]uint64{}
	c.Objects(func(name string, gen uint64) { got[name] = gen })
	if len(got) != 2 || got["a"] != 0 || got["b"] != 5 {
		t.Fatalf("Objects = %v", got)
	}
	a.Close()
	b.Close()
	got = map[string]uint64{}
	c.Objects(func(name string, gen uint64) { got[name] = gen })
	if len(got) != 0 {
		t.Fatalf("closed objects still enumerated: %v", got)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("idle hit rate nonzero")
	}
	s.Hits, s.Misses = 3, 1
	if got := s.HitRate(); got != 0.75 {
		t.Fatalf("HitRate = %v, want 0.75", got)
	}
}
