package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"swift/internal/mediator"
	"swift/internal/transport/memnet"
)

// dialCacheClient dials an extra client against the cluster's agent set,
// so cache tests can run a writer and a cached reader side by side.
func dialCacheClient(t *testing.T, c *cluster, name string, mut func(*Config)) *Client {
	t.Helper()
	addrs := make([]string, len(c.agents))
	for i, a := range c.agents {
		addrs[i] = a.Addr()
	}
	h := c.net.MustHost(name, memnet.HostConfig{}, c.seg)
	cfg := Config{
		Host:         h,
		Agents:       addrs,
		Unit:         4096,
		RetryTimeout: 30 * time.Millisecond,
		MaxRetries:   100,
	}
	if mut != nil {
		mut(&cfg)
	}
	cl, err := Dial(cfg)
	if err != nil {
		t.Fatalf("dial %s: %v", name, err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// testMediator builds an in-process mediator whose CacheSync anchors the
// coherence protocol, plus one session per requested client.
func testMediator(t *testing.T, c *cluster, sessions int) (*mediator.Mediator, []uint64) {
	t.Helper()
	infos := make([]mediator.AgentInfo, len(c.agents))
	for i, a := range c.agents {
		infos[i] = mediator.AgentInfo{Addr: a.Addr(), Rate: 1e6}
	}
	med, err := mediator.New(mediator.Config{
		Agents: infos,
		Nets:   []mediator.NetInfo{{Name: "net", Capacity: 1e12}},
	})
	if err != nil {
		t.Fatalf("mediator: %v", err)
	}
	t.Cleanup(func() { med.Close() })
	ids := make([]uint64, sessions)
	for i := range ids {
		plan, err := med.OpenSession(mediator.Requirements{Rate: 1e3})
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		ids[i] = plan.SessionID
	}
	return med, ids
}

// TestTwoClientCoherenceTorture is the acceptance drill for the
// coherence protocol: a writer overwrites a shared object while a second
// client keeps a cached image, and after every write/invalidate cycle
// the reader's bytes must match the writer's exactly — zero stale reads
// across well over 100 cycles. The second read of each cycle must come
// from cache, so coherence cannot "pass" by disabling caching.
func TestTwoClientCoherenceTorture(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	med, ids := testMediator(t, c, 2)

	writer := dialCacheClient(t, c, "cwriter", func(cfg *Config) {
		cfg.CacheSize = 1 << 20
		cfg.CacheSync = func(cached []mediator.CachedObject, written []string) ([]mediator.CachedObject, error) {
			return med.CacheSync(ids[0], cached, written)
		}
	})
	reader := dialCacheClient(t, c, "creader", func(cfg *Config) {
		cfg.CacheSize = 1 << 20
		cfg.CacheSync = func(cached []mediator.CachedObject, written []string) ([]mediator.CachedObject, error) {
			return med.CacheSync(ids[1], cached, written)
		}
	})

	wf, err := writer.Open("shared", OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("writer open: %v", err)
	}
	defer wf.Close()
	const size = 40_000
	if _, err := wf.WriteAt(randBytes(size, 0), 0); err != nil {
		t.Fatalf("prefill: %v", err)
	}
	writer.CoherenceSync()

	rf, err := reader.Open("shared", OpenFlags{})
	if err != nil {
		t.Fatalf("reader open: %v", err)
	}
	defer rf.Close()

	out := make([]byte, size)
	const cycles = 120
	for i := 1; i <= cycles; i++ {
		want := randBytes(size, int64(i))
		if _, err := wf.WriteAt(want, 0); err != nil {
			t.Fatalf("cycle %d: write: %v", i, err)
		}
		writer.CoherenceSync() // declare the write, bump the generation
		reader.CoherenceSync() // learn the bump, drop the stale image
		for pass := 1; pass <= 2; pass++ {
			if _, err := rf.ReadAt(out, 0); err != nil {
				t.Fatalf("cycle %d pass %d: read: %v", i, pass, err)
			}
			if !bytes.Equal(out, want) {
				t.Fatalf("cycle %d pass %d: stale read", i, pass)
			}
		}
	}

	rs := reader.CacheStats()
	if rs.Invalidations < cycles {
		t.Fatalf("reader invalidations = %d, want >= %d", rs.Invalidations, cycles)
	}
	// Pass 2 of every cycle must have been served from cache: coherence
	// that just turned caching off would show no hits at all.
	if rs.Hits == 0 {
		t.Fatal("reader recorded zero cache hits; re-reads bypassed the cache")
	}
	if gen := med.ObjectGen("shared"); gen < cycles {
		t.Fatalf("mediator generation = %d, want >= %d", gen, cycles)
	}
}

// TestCoherenceWriterAdoptsOwnGeneration pins the adopt-own-writes rule:
// a client's declared writes must come back as generation adoptions, not
// invalidations, so a single read-your-writes client keeps its hit rate.
func TestCoherenceWriterAdoptsOwnGeneration(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	med, ids := testMediator(t, c, 1)
	cl := dialCacheClient(t, c, "cowner", func(cfg *Config) {
		cfg.CacheSize = 1 << 20
		cfg.CacheSync = func(cached []mediator.CachedObject, written []string) ([]mediator.CachedObject, error) {
			return med.CacheSync(ids[0], cached, written)
		}
	})
	f, err := cl.Open("own", OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	data := randBytes(20_000, 3)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := make([]byte, len(data))
	if _, err := f.ReadAt(out, 0); err != nil { // populate the cache
		t.Fatalf("read: %v", err)
	}
	cl.CoherenceSync() // declares the write; must adopt, not invalidate
	if inv := cl.CacheStats().Invalidations; inv != 0 {
		t.Fatalf("own write invalidated own cache (%d invalidations)", inv)
	}
	base := cl.CacheStats()
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("re-read mismatch")
	}
	if hits := cl.CacheStats().Hits - base.Hits; hits == 0 {
		t.Fatal("re-read after own-write sync missed the cache")
	}
}

// TestWriteBehindSyncBarrier pins the crash-safety contract: bytes
// written before Sync returns are durable on the agents even if the
// client never closes (crashes), while later dirty bytes may still be
// in flight. A second client plays the post-crash reader.
func TestWriteBehindSyncBarrier(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	writer := dialCacheClient(t, c, "wbwriter", func(cfg *Config) {
		cfg.WriteBehindMax = 1 << 20
	})
	f, err := writer.Open("wb", OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()

	durable := randBytes(200_000, 11)
	if _, err := f.WriteAt(durable, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if d := writer.CacheStats().Dirty; d != 0 {
		t.Fatalf("sync returned with %d dirty bytes", d)
	}
	// More writes land after the barrier; they are allowed to still be
	// dirty when the "crash" happens.
	late := randBytes(64_000, 12)
	if _, err := f.WriteAt(late, int64(len(durable))); err != nil {
		t.Fatalf("late write: %v", err)
	}

	// The writer is now considered crashed: nothing more is flushed on
	// its behalf before the reader checks. Everything before the Sync
	// barrier must already be on the agents.
	reader := dialCacheClient(t, c, "wbreader", nil)
	rf, err := reader.Open("wb", OpenFlags{})
	if err != nil {
		t.Fatalf("reader open: %v", err)
	}
	defer rf.Close()
	out := make([]byte, len(durable))
	if _, err := rf.ReadAt(out, 0); err != nil {
		t.Fatalf("reader read: %v", err)
	}
	if !bytes.Equal(out, durable) {
		t.Fatal("pre-Sync bytes not durable on the agents")
	}
}

// TestWriteBehindAbsorbsWrites pins the asynchrony: a write under the
// dirty budget returns before any agent round-trip, and the background
// flusher (or Close) lands it without further writes.
func TestWriteBehindAbsorbsWrites(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	writer := dialCacheClient(t, c, "wbabsorb", func(cfg *Config) {
		cfg.WriteBehindMax = 1 << 20
	})
	f, err := writer.Open("absorb", OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	data := randBytes(100_000, 13)
	base := writer.MetricsSnapshot().WriteBursts
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	if wb := writer.MetricsSnapshot().WriteBursts - base; wb != 0 {
		t.Fatalf("absorbed write cost %d agent write bursts, want 0", wb)
	}
	if err := f.Close(); err != nil { // Close flushes everything
		t.Fatalf("close: %v", err)
	}
	reader := dialCacheClient(t, c, "wbabsorbr", nil)
	rf, err := reader.Open("absorb", OpenFlags{})
	if err != nil {
		t.Fatalf("reader open: %v", err)
	}
	defer rf.Close()
	out := make([]byte, len(data))
	if _, err := rf.ReadAt(out, 0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("flushed bytes mismatch")
	}
}

// TestCacheSyncLostSessionDropsLease pins the lease-loss rule: when the
// mediator no longer knows the session, the client flushes dirty data
// and drops every cached image — it has no claim to coherence anymore.
func TestCacheSyncLostSessionDropsLease(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	med, ids := testMediator(t, c, 1)
	med.CloseSession(ids[0]) // lease is gone before the first sync
	cl := dialCacheClient(t, c, "clost", func(cfg *Config) {
		cfg.CacheSize = 1 << 20
		cfg.CacheSync = func(cached []mediator.CachedObject, written []string) ([]mediator.CachedObject, error) {
			return med.CacheSync(ids[0], cached, written)
		}
	})
	f, err := cl.Open("lost", OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	data := randBytes(30_000, 17)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := make([]byte, len(data))
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("read: %v", err)
	}
	cl.CoherenceSync() // ErrUnknownSession → drop the lease
	if inv := cl.CacheStats().Invalidations; inv == 0 {
		t.Fatal("lost session did not drop cached images")
	}
	// The data itself must still read back correctly (from the agents).
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("post-drop read: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("post-drop read mismatch")
	}
}

// TestCoherenceManyObjects runs the torture across several objects at
// once so declared-write bookkeeping for one object cannot leak into
// another's generation.
func TestCoherenceManyObjects(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	med, ids := testMediator(t, c, 2)
	writer := dialCacheClient(t, c, "mwriter", func(cfg *Config) {
		cfg.CacheSize = 1 << 20
		cfg.CacheSync = func(cached []mediator.CachedObject, written []string) ([]mediator.CachedObject, error) {
			return med.CacheSync(ids[0], cached, written)
		}
	})
	reader := dialCacheClient(t, c, "mreader", func(cfg *Config) {
		cfg.CacheSize = 1 << 20
		cfg.CacheSync = func(cached []mediator.CachedObject, written []string) ([]mediator.CachedObject, error) {
			return med.CacheSync(ids[1], cached, written)
		}
	})
	const nObjs = 4
	const size = 16_000
	wfs := make([]*File, nObjs)
	rfs := make([]*File, nObjs)
	for o := 0; o < nObjs; o++ {
		name := fmt.Sprintf("multi%d", o)
		wf, err := writer.Open(name, OpenFlags{Create: true})
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		defer wf.Close()
		if _, err := wf.WriteAt(randBytes(size, int64(o)), 0); err != nil {
			t.Fatalf("prefill %s: %v", name, err)
		}
		wfs[o] = wf
	}
	writer.CoherenceSync()
	for o := 0; o < nObjs; o++ {
		rf, err := reader.Open(fmt.Sprintf("multi%d", o), OpenFlags{})
		if err != nil {
			t.Fatalf("reader open %d: %v", o, err)
		}
		defer rf.Close()
		rfs[o] = rf
	}
	out := make([]byte, size)
	for i := 1; i <= 30; i++ {
		o := i % nObjs // only one object changes per cycle
		want := randBytes(size, int64(1000*i+o))
		if _, err := wfs[o].WriteAt(want, 0); err != nil {
			t.Fatalf("cycle %d: write: %v", i, err)
		}
		writer.CoherenceSync()
		reader.CoherenceSync()
		if _, err := rfs[o].ReadAt(out, 0); err != nil {
			t.Fatalf("cycle %d: read: %v", i, err)
		}
		if !bytes.Equal(out, want) {
			t.Fatalf("cycle %d: stale read on object %d", i, o)
		}
	}
}

// TestCacheLessWriterDeclaresWrites pins that write declaration is
// independent of local caching: a client with the coherence channel
// wired but the cache disabled (a plain command-line writer) must still
// declare its writes on the next sync, so cached readers elsewhere get
// invalidated — and must not panic trying to track them.
func TestCacheLessWriterDeclaresWrites(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	med, ids := testMediator(t, c, 2)

	writer := dialCacheClient(t, c, "nakedwriter", func(cfg *Config) {
		cfg.CacheSize = -1 // caching off, coherence on
		cfg.CacheSync = func(cached []mediator.CachedObject, written []string) ([]mediator.CachedObject, error) {
			return med.CacheSync(ids[0], cached, written)
		}
	})
	reader := dialCacheClient(t, c, "cachedreader", func(cfg *Config) {
		cfg.CacheSize = 1 << 20
		cfg.CacheSync = func(cached []mediator.CachedObject, written []string) ([]mediator.CachedObject, error) {
			return med.CacheSync(ids[1], cached, written)
		}
	})

	const name = "naked-obj"
	v1 := bytes.Repeat([]byte{0x11}, 32<<10)
	wf, err := writer.Open(name, OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("writer open: %v", err)
	}
	if _, err := wf.WriteAt(v1, 0); err != nil {
		t.Fatalf("write v1: %v", err)
	}
	writer.CoherenceSync() // must not panic, must declare the write

	rf, err := reader.Open(name, OpenFlags{})
	if err != nil {
		t.Fatalf("reader open: %v", err)
	}
	got := make([]byte, len(v1))
	if _, err := rf.ReadAt(got, 0); err != nil {
		t.Fatalf("read v1: %v", err)
	}

	v2 := bytes.Repeat([]byte{0x22}, 32<<10)
	if _, err := wf.WriteAt(v2, 0); err != nil {
		t.Fatalf("write v2: %v", err)
	}
	writer.CoherenceSync()
	reader.CoherenceSync() // must hear about v2 and drop the cached image
	if _, err := rf.ReadAt(got, 0); err != nil {
		t.Fatalf("read v2: %v", err)
	}
	if !bytes.Equal(got, v2) {
		t.Fatalf("stale read: got %x... want %x...", got[:4], v2[:4])
	}
	if inv := reader.CacheStats().Invalidations; inv == 0 {
		t.Fatalf("reader saw no invalidations; cache-less writer never declared")
	}
	if g := med.ObjectGen(name); g < 2 {
		t.Fatalf("gen = %d, want >= 2", g)
	}
}
