package core

import (
	"bytes"
	"testing"
	"time"

	"swift/internal/agent"
)

// TestAgentRestartPreservesData: an agent process restarts (same store,
// same well-known port); a client reopening the file reads everything
// back. This is the operational story of swiftd on a rebooted machine.
func TestAgentRestartPreservesData(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 3, unit: 2048})
	data := randBytes(80_000, 90)
	f, err := c.client.Open("durable", OpenFlags{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(data, 0)
	f.Close()

	// Restart agent 1 on its original host and port, with its store.
	if err := c.agents[1].Close(); err != nil {
		t.Fatal(err)
	}
	fresh, err := agent.New(c.hosts[1], c.stores[1], agent.Config{
		ResendCheck: 5 * time.Millisecond,
		ResendAfter: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	t.Cleanup(func() { fresh.Close() })
	c.agents[1] = fresh

	g, err := c.client.Open("durable", OpenFlags{})
	if err != nil {
		t.Fatalf("reopen after restart: %v", err)
	}
	defer g.Close()
	out := make([]byte, len(data))
	if _, err := g.ReadAt(out, 0); err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("data lost across agent restart")
	}
}

// TestPingReportsStatus: the health probe reflects agent liveness, open
// sessions, and stored bytes.
func TestPingReportsStatus(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 3, unit: 1024})
	f, err := c.client.Open("pingable", OpenFlags{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.WriteAt(randBytes(30_000, 93), 0)

	sts := c.client.Ping()
	if len(sts) != 3 {
		t.Fatalf("statuses = %d", len(sts))
	}
	var total int64
	for i, st := range sts {
		if !st.Alive {
			t.Fatalf("agent %d reported down", i)
		}
		if st.Objects != 1 || st.Sessions != 1 {
			t.Fatalf("agent %d: objects=%d sessions=%d", i, st.Objects, st.Sessions)
		}
		total += st.Bytes
	}
	if total != 30_000 {
		t.Fatalf("total fragment bytes = %d, want 30000", total)
	}

	// A dead agent shows as down; the others stay up.
	c.agents[2].Close()
	sts = c.client.Ping()
	if sts[2].Alive {
		t.Fatal("dead agent reported alive")
	}
	if !sts[0].Alive || !sts[1].Alive {
		t.Fatal("live agents reported down")
	}
}

// TestOpenSessionsSurviveOtherCloses: closing one file's sessions must not
// disturb another open file on the same agents.
func TestOpenSessionsSurviveOtherCloses(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	a, err := c.client.Open("a", OpenFlags{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.client.Open("b", OpenFlags{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	da := randBytes(20_000, 91)
	db := randBytes(20_000, 92)
	a.WriteAt(da, 0)
	b.WriteAt(db, 0)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(db))
	if _, err := b.ReadAt(out, 0); err != nil {
		t.Fatalf("read b after closing a: %v", err)
	}
	if !bytes.Equal(out, db) {
		t.Fatal("b corrupted by a's close")
	}
}
