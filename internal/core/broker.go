package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"swift/internal/backoff"
	"swift/internal/mediator"
	"swift/internal/obs"
)

// MediatorEndpoint is one mediator replica as the client sees it. Both
// *mediator.Mediator (in-process) and *medrpc.Client (wire) satisfy it,
// so the failover logic is transport-agnostic.
type MediatorEndpoint interface {
	Name() string
	Admit(req mediator.Requirements) (*mediator.SessionRecord, error)
	RenewSession(rec mediator.SessionRecord) (string, error)
	CloseSession(id uint64) error
	Status() (mediator.ReplicaStatus, error)
}

// Broker errors.
var (
	// ErrNoMediatorSession is returned by Renew/CloseSession before a
	// session has been opened (or after it was closed).
	ErrNoMediatorSession = errors.New("core: no mediator session")
	// ErrMediatorsDown is returned when every replica failed an
	// operation across the whole retry budget.
	ErrMediatorsDown = errors.New("core: all mediator replicas failed")
)

// BrokerConfig configures a MediatorBroker.
type BrokerConfig struct {
	// Endpoints are the mediator replicas, in any order; the broker
	// derives the per-key placement order itself.
	Endpoints []MediatorEndpoint
	// Key is the client's placement key: it decides the home replica and
	// the failover sequence. Empty falls back to "client".
	Key string
	// RetryTimeout is the pause before re-walking the whole replica set
	// after every endpoint failed once (default 50ms); it doubles per
	// walk, capped at MaxRetryTimeout (default 1s), with Attempts
	// (default 3) full walks before giving up.
	RetryTimeout    time.Duration
	MaxRetryTimeout time.Duration
	Attempts        int
	// Sleep implements the backoff pause (default time.Sleep); tests
	// inject a fake.
	Sleep func(time.Duration)
	Logf  func(format string, args ...any)
	// Obs, when non-nil, receives the broker's failover counters.
	Obs *obs.Registry
	// Tracer, when non-nil, mints spans for the admit/renew/close walks,
	// so mediator failovers show up in the client's op traces.
	Tracer *obs.Tracer
}

// tracedAdmitter and tracedRenewer are optional upgrades of
// MediatorEndpoint: wire transports implement them to carry the trace
// context on TMedOpen/TMedRenew packets, so the serving replica's span
// joins the client's trace. In-process endpoints need not bother — with a
// shared tracer their spans land in the same collector regardless.
type tracedAdmitter interface {
	AdmitTraced(req mediator.Requirements, ctx obs.SpanContext) (*mediator.SessionRecord, error)
}

type tracedRenewer interface {
	RenewSessionTraced(rec mediator.SessionRecord, ctx obs.SpanContext) (string, error)
}

// MediatorBroker is the client-side mediator failover layer: it opens a
// session against the key's home replica, heartbeats it, and — when the
// home stops answering — rotates through the surviving replicas in
// placement order, re-targeting renewals (or re-adopting the session from
// the record the client holds) so a mediator crash or drain never costs
// the client its reservations.
type MediatorBroker struct {
	cfg   BrokerConfig
	bo    *backoff.Policy    // walk-retry backoff schedule
	order []MediatorEndpoint // placement order for cfg.Key

	mu        sync.Mutex
	rec       *mediator.SessionRecord // guarded by mu
	home      string                  // guarded by mu
	failovers int64                   // guarded by mu
	renewErrs int64                   // guarded by mu

	telFailovers *obs.Counter
	telRetries   *obs.Counter
	telPaced     *obs.Counter
}

// NewMediatorBroker validates the replica set and derives the placement
// order for the broker's key.
func NewMediatorBroker(cfg BrokerConfig) (*MediatorBroker, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, errors.New("core: broker needs at least one mediator endpoint")
	}
	if cfg.Key == "" {
		cfg.Key = "client"
	}
	if cfg.RetryTimeout <= 0 {
		cfg.RetryTimeout = 50 * time.Millisecond
	}
	if cfg.MaxRetryTimeout <= 0 {
		cfg.MaxRetryTimeout = time.Second
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 3
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	byName := make(map[string]MediatorEndpoint, len(cfg.Endpoints))
	names := make([]string, 0, len(cfg.Endpoints))
	for _, ep := range cfg.Endpoints {
		if _, dup := byName[ep.Name()]; dup {
			return nil, fmt.Errorf("core: duplicate mediator replica name %q", ep.Name())
		}
		byName[ep.Name()] = ep
		names = append(names, ep.Name())
	}
	b := &MediatorBroker{cfg: cfg, bo: backoff.New(cfg.RetryTimeout, cfg.MaxRetryTimeout)}
	for _, name := range mediator.PlaceOrder(cfg.Key, names) {
		b.order = append(b.order, byName[name])
	}
	if reg := cfg.Obs; reg != nil {
		b.telFailovers = reg.Counter("swift_client_mediator_failovers_total",
			"Times the client re-targeted its mediator session to a different replica.", nil)
		b.telRetries = reg.Counter("swift_client_mediator_retries_total",
			"Full replica-set walks repeated after every replica failed once.", nil)
		b.telPaced = reg.Counter("swift_client_mediator_paced_total",
			"Admission attempts paced by a mediator's overload retry-after hint.", nil)
	}
	return b, nil
}

// span roots a broker span, joining parent when it names a trace; nil
// tracer yields a nil (no-op) span.
func (b *MediatorBroker) span(parent obs.SpanContext, name string) *obs.Span {
	if parent.Valid() {
		return b.cfg.Tracer.StartRemote(parent, "core", name, -1)
	}
	return b.cfg.Tracer.StartOp("core", name)
}

// admitVia runs one admit attempt against ep, propagating the span
// context when the endpoint's transport supports it.
func admitVia(ep MediatorEndpoint, req mediator.Requirements, sp *obs.Span) (*mediator.SessionRecord, error) {
	if ta, ok := ep.(tracedAdmitter); ok {
		if ctx := sp.Context(); ctx.Valid() {
			return ta.AdmitTraced(req, ctx)
		}
	}
	return ep.Admit(req)
}

// renewVia runs one renew attempt against ep, propagating the span
// context when the endpoint's transport supports it.
func renewVia(ep MediatorEndpoint, rec mediator.SessionRecord, sp *obs.Span) (string, error) {
	if tr, ok := ep.(tracedRenewer); ok {
		if ctx := sp.Context(); ctx.Valid() {
			return tr.RenewSessionTraced(rec, ctx)
		}
	}
	return ep.RenewSession(rec)
}

// backoff is the pause before retry walk number attempt (1-based):
// capped exponential with ±25% jitter.
func (b *MediatorBroker) backoff(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	return b.bo.Delay(attempt - 1)
}

// candidates returns the endpoints to try, the current home first and
// the rest in placement order.
func (b *MediatorBroker) candidates(home string) []MediatorEndpoint {
	if home == "" {
		return b.order
	}
	out := make([]MediatorEndpoint, 0, len(b.order))
	for _, ep := range b.order {
		if ep.Name() == home {
			out = append(out, ep)
		}
	}
	for _, ep := range b.order {
		if ep.Name() != home {
			out = append(out, ep)
		}
	}
	return out
}

// setHome records the session's home, counting a failover when it moved.
func (b *MediatorBroker) setHome(home string, viaFailure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.home != "" && home != b.home {
		b.failovers++
		if viaFailure {
			b.cfg.Logf("swift: mediator failover: %s -> %s", b.home, home)
		} else {
			b.cfg.Logf("swift: mediator handoff: %s -> %s", b.home, home)
		}
		if b.telFailovers != nil {
			b.telFailovers.Inc()
		}
	}
	b.home = home
	if b.rec != nil {
		b.rec.Home = home
	}
}

// OpenSession admits a session on the key's home replica, failing over
// through the placement order. A genuine admission rejection
// (ErrUnsatisfiable) is returned immediately — every replica runs the
// same admission arithmetic, so rotating cannot help.
func (b *MediatorBroker) OpenSession(req mediator.Requirements) (*mediator.SessionRecord, error) {
	return b.OpenSessionTraced(req, obs.SpanContext{})
}

// OpenSessionTraced is OpenSession with the admission walk parented under
// the caller's span (the facade's mount span), so the admit — and any
// replica failover inside it — appears in the op's trace.
func (b *MediatorBroker) OpenSessionTraced(req mediator.Requirements, parent obs.SpanContext) (*mediator.SessionRecord, error) {
	sp := b.span(parent, "med_admit")
	defer sp.Finish()
	if req.Key == "" {
		req.Key = b.cfg.Key
	}
	var lastErr error
	for attempt := 1; attempt <= b.cfg.Attempts; attempt++ {
		if attempt > 1 {
			if b.telRetries != nil {
				b.telRetries.Inc()
			}
			b.cfg.Sleep(b.backoff(attempt))
		}
		for _, ep := range b.order {
			rec, err := admitVia(ep, req, sp)
			if err == nil {
				sp.Annotate("admitted by %s", ep.Name())
				b.mu.Lock()
				cp := *rec
				b.rec = &cp
				b.home = rec.Home
				if b.home == "" {
					b.home = ep.Name()
				}
				b.mu.Unlock()
				out := *rec
				return &out, nil
			}
			if errors.Is(err, mediator.ErrUnsatisfiable) {
				sp.SetError(err)
				return nil, err
			}
			lastErr = err
			if errors.Is(err, mediator.ErrOverloaded) {
				// The replica is up but shedding: honor its pacing hint
				// (jittered, so paced clients don't re-converge) and try
				// again. Not a replica failure — don't rotate away from
				// the session's placement home for a transient surge.
				pause := b.backoff(attempt)
				var oe *mediator.OverloadedError
				if errors.As(err, &oe) && oe.RetryAfter > 0 {
					pause = b.bo.Jitter(oe.RetryAfter)
				}
				if b.telPaced != nil {
					b.telPaced.Inc()
				}
				sp.MarkRetry()
				sp.Annotate("admit on %s paced %v: %v", ep.Name(), pause, err)
				b.cfg.Logf("swift: mediator open on %s paced %v: %v", ep.Name(), pause, err)
				b.cfg.Sleep(pause)
				continue
			}
			sp.MarkRetry()
			sp.Annotate("admit on %s failed: %v", ep.Name(), err)
			b.cfg.Logf("swift: mediator open on %s: %v", ep.Name(), err)
		}
	}
	err := fmt.Errorf("%w: open: %w", ErrMediatorsDown, lastErr)
	sp.SetError(err)
	return nil, err
}

// Renew heartbeats the session: the home replica first, then — on any
// failure — the surviving replicas in placement order, each of which
// will renew its mirrored copy or adopt the session outright from the
// record the broker carries. A healthy home that answers with a
// different replica name (because it is draining and handed the session
// off) re-targets the broker without counting a failover.
func (b *MediatorBroker) Renew() error {
	b.mu.Lock()
	rec := b.rec
	home := b.home
	var recCopy mediator.SessionRecord
	if rec != nil {
		recCopy = *rec
	}
	b.mu.Unlock()
	if rec == nil {
		return ErrNoMediatorSession
	}
	sp := b.span(obs.SpanContext{}, "med_renew")
	defer sp.Finish()
	var lastErr error
	for attempt := 1; attempt <= b.cfg.Attempts; attempt++ {
		if attempt > 1 {
			if b.telRetries != nil {
				b.telRetries.Inc()
			}
			b.cfg.Sleep(b.backoff(attempt))
		}
		for _, ep := range b.candidates(home) {
			newHome, err := renewVia(ep, recCopy, sp)
			if err == nil {
				if newHome == "" {
					newHome = ep.Name()
				}
				if ep.Name() != home {
					// The session re-targeted: a failover (dead home) or a
					// drain handoff — either way worth keeping the trace.
					sp.MarkRetry()
					sp.Annotate("failover %s -> %s", home, newHome)
				}
				b.setHome(newHome, ep.Name() != home)
				return nil
			}
			lastErr = err
			sp.Annotate("renew on %s failed: %v", ep.Name(), err)
			if !errors.Is(err, mediator.ErrDraining) {
				b.cfg.Logf("swift: mediator renew on %s: %v", ep.Name(), err)
			}
		}
	}
	b.mu.Lock()
	b.renewErrs++
	b.mu.Unlock()
	err := fmt.Errorf("%w: renew session %d: %w", ErrMediatorsDown, recCopy.ID, lastErr)
	sp.SetError(err)
	return err
}

// Heartbeat is Renew shaped for Config.Heartbeat: failures are logged
// and counted (RenewFailures) rather than returned.
func (b *MediatorBroker) Heartbeat() {
	if err := b.Renew(); err != nil && !errors.Is(err, ErrNoMediatorSession) {
		b.cfg.Logf("swift: mediator heartbeat: %v", err)
	}
}

// CloseSession releases the session, rotating to a survivor when the
// home replica is gone (the survivor holds a mirrored copy). Closing
// with no session open is a no-op.
func (b *MediatorBroker) CloseSession() error {
	b.mu.Lock()
	rec := b.rec
	home := b.home
	b.rec = nil
	b.home = ""
	b.mu.Unlock()
	if rec == nil {
		return nil
	}
	sp := b.span(obs.SpanContext{}, "med_close")
	defer sp.Finish()
	var lastErr error
	for attempt := 1; attempt <= b.cfg.Attempts; attempt++ {
		if attempt > 1 {
			b.cfg.Sleep(b.backoff(attempt))
		}
		for _, ep := range b.candidates(home) {
			err := ep.CloseSession(rec.ID)
			if err == nil {
				if ep.Name() != home {
					sp.MarkRetry()
					sp.Annotate("closed via survivor %s", ep.Name())
				}
				return nil
			}
			lastErr = err
		}
	}
	// The lease janitor will reap the reservations within one TTL.
	err := fmt.Errorf("%w: close session %d: %w", ErrMediatorsDown, rec.ID, lastErr)
	sp.SetError(err)
	return err
}

// coherenceSyncer is the optional endpoint upgrade for the cache
// coherence round: *mediator.Mediator (in-process) and *medrpc.Client
// (wire) both implement it; endpoints that don't are skipped.
type coherenceSyncer interface {
	CacheSync(id uint64, cached []mediator.CachedObject, written []string) ([]mediator.CachedObject, error)
}

// CacheSync runs one cache-coherence round for the broker's session,
// shaped for core.Config.CacheSync. The home replica is tried first,
// then the survivors in placement order — any replica can serve the
// round, since generation bumps mirror across the federation. A session
// nobody knows surfaces ErrUnknownSession so the client drops its lease
// (and its cached bytes with it).
func (b *MediatorBroker) CacheSync(cached []mediator.CachedObject, written []string) ([]mediator.CachedObject, error) {
	b.mu.Lock()
	rec := b.rec
	home := b.home
	var id uint64
	if rec != nil {
		id = rec.ID
	}
	b.mu.Unlock()
	if rec == nil {
		return nil, ErrNoMediatorSession
	}
	var lastErr error
	for _, ep := range b.candidates(home) {
		cs, ok := ep.(coherenceSyncer)
		if !ok {
			continue
		}
		stale, err := cs.CacheSync(id, cached, written)
		if err == nil {
			return stale, nil
		}
		if errors.Is(err, mediator.ErrUnknownSession) {
			return nil, err
		}
		lastErr = err
	}
	if lastErr == nil {
		return nil, ErrNoMediatorSession // no endpoint speaks coherence
	}
	return nil, fmt.Errorf("%w: cache sync session %d: %w", ErrMediatorsDown, id, lastErr)
}

// Record returns a copy of the session record the broker holds, or nil
// before OpenSession.
func (b *MediatorBroker) Record() *mediator.SessionRecord {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rec == nil {
		return nil
	}
	cp := *b.rec
	return &cp
}

// Home returns the replica currently holding the session's lease.
func (b *MediatorBroker) Home() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.home
}

// Failovers returns how many times the session re-targeted to a
// different replica (failovers and drain handoffs).
func (b *MediatorBroker) Failovers() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failovers
}

// RenewFailures returns how many renew rounds exhausted every replica.
func (b *MediatorBroker) RenewFailures() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.renewErrs
}

// Endpoints returns the replicas in placement order for the broker's key.
func (b *MediatorBroker) Endpoints() []MediatorEndpoint {
	return append([]MediatorEndpoint(nil), b.order...)
}
