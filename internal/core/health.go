package core

import (
	"sync"
	"time"
)

// This file implements the client's automatic failure-domain lifecycle.
//
// Each storage agent moves through three states:
//
//	Healthy ──(attributable error)──▶ Suspect ──(second strike or
//	    ▲                                          failed probe)──▶ Down
//	    └──────────(probe succeeds; sessions reopened, fragment
//	                rebuilt under parity)───────────────────────────┘
//
// Attributable errors (ErrRetriesSpent, ErrAgentDown from a specific
// agent) feed the lifecycle with no caller intervention: the data path
// reports them via noteFailure as it fails over. A background health
// monitor (StartMonitor) probes non-healthy agents, and on recovery
// re-opens every open file's session on that agent — handles die with the
// agent process, so fresh ones are negotiated — optionally rebuilds the
// agent's fragments from parity, and returns the agent to service.

// AgentState is one agent's position in the failure-domain lifecycle.
type AgentState int

// Lifecycle states.
const (
	// StateHealthy: the agent is answering and carries traffic.
	StateHealthy AgentState = iota
	// StateSuspect: an attributable error was observed; the data path
	// has failed over and the monitor is probing for a verdict.
	StateSuspect
	// StateDown: repeated strikes or a failed probe confirmed the agent
	// unreachable. Control-plane operations skip it; parity masks it.
	StateDown
)

var stateNames = [...]string{"healthy", "suspect", "down"}

func (s AgentState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "state(?)"
}

// agentHealth is the client's internal per-agent lifecycle record.
type agentHealth struct {
	state    AgentState
	since    time.Time // when state last changed
	failures int64     // attributable failures observed since last healthy
	lastErr  string    // most recent attributable error
}

// AgentHealth is one agent's lifecycle snapshot.
type AgentHealth struct {
	Addr     string
	State    AgentState
	Since    time.Time // when the state was entered
	Failures int64     // attributable failures since last healthy
	LastErr  string    // most recent attributable error ("" if none)
}

// Health returns every agent's lifecycle snapshot, in agent order.
func (c *Client) Health() []AgentHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]AgentHealth, len(c.health))
	for i, h := range c.health {
		out[i] = AgentHealth{
			Addr:     c.cfg.Agents[i],
			State:    h.state,
			Since:    h.since,
			Failures: h.failures,
			LastErr:  h.lastErr,
		}
	}
	return out
}

// setStateLocked transitions agent i; c.mu must be held.
func (c *Client) setStateLocked(i int, s AgentState, why string) {
	h := &c.health[i]
	if h.state == s {
		return
	}
	c.cfg.Logf("core: agent %d (%s): %v -> %v (%s)",
		i, c.cfg.Agents[i], h.state, s, why)
	at := c.tel.agent(i)
	at.transitions.Inc()
	at.state.Set(int64(s))
	c.traceEvent("health", i, "%v -> %v (%s)", h.state, s, why)
	h.state = s
	h.since = time.Now()
	if s == StateHealthy {
		h.failures = 0
		h.lastErr = ""
	}
}

// noteFailure records an attributable error against agent i: a healthy
// agent becomes suspect; a suspect agent's second strike takes it down.
func (c *Client) noteFailure(i int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.health) {
		return
	}
	h := &c.health[i]
	h.failures++
	if err != nil {
		h.lastErr = err.Error()
	}
	switch h.state {
	case StateHealthy:
		c.setStateLocked(i, StateSuspect, "attributable error")
	case StateSuspect:
		c.setStateLocked(i, StateDown, "repeated attributable errors")
	}
}

// MonitorConfig tunes the background health monitor.
type MonitorConfig struct {
	// Interval is the probe period (default 500ms).
	Interval time.Duration
	// ProbeRetries sizes each probe's retry budget (default 2, i.e.
	// roughly 2×RetryTimeout per probe before an agent is written off
	// for the round).
	ProbeRetries int
	// Rebuild, with parity enabled, reconstructs a re-admitted agent's
	// fragments from the survivors before the agent serves reads again,
	// so units written degraded while it was out are never served stale.
	Rebuild bool
	// ScrubInterval, when > 0, runs a background scrub-and-repair pass
	// over every open file at this period (see Client.ScrubOnce). Zero
	// disables background scrubbing.
	ScrubInterval time.Duration
	// Heartbeat, when non-nil, is called once per probe round — the hook
	// the swift facade uses to renew its mediator session lease while the
	// client is alive.
	Heartbeat func()
}

func (mc *MonitorConfig) fill() {
	if mc.Interval == 0 {
		mc.Interval = 500 * time.Millisecond
	}
	if mc.ProbeRetries == 0 {
		mc.ProbeRetries = 2
	}
}

// StartMonitor launches the background health monitor: every Interval it
// probes every agent, demotes silent ones (healthy→suspect→down) even
// when no traffic is flowing, and re-admits recovered ones — reopening
// per-file sessions and, with Rebuild set, reconstructing their fragments
// first. Stop with StopMonitor or Client.Close.
func (c *Client) StartMonitor(mc MonitorConfig) error {
	mc.fill()
	c.mu.Lock()
	if c.monStop != nil {
		c.mu.Unlock()
		return nil // already running
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	c.monCfg = mc
	c.monStop = stop
	c.monDone = done
	c.mu.Unlock()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(mc.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if mc.Heartbeat != nil {
					mc.Heartbeat()
				}
				// Cache coherence rides the heartbeat cadence: declare
				// what we cache and wrote, drop what went stale.
				c.CoherenceSync()
				c.ProbeOnce()
			}
		}
	}()
	if mc.ScrubInterval > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(mc.ScrubInterval)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					rep := c.ScrubOnce()
					if !rep.Clean() {
						c.cfg.Logf("core: background scrub: %s", rep)
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	return nil
}

// StopMonitor stops the background health monitor, if running, and waits
// for its current round to finish.
func (c *Client) StopMonitor() {
	c.mu.Lock()
	stop, done := c.monStop, c.monDone
	c.monStop, c.monDone = nil, nil
	c.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// ProbeOnce runs one synchronous health round: it pings every agent
// concurrently, applies lifecycle transitions, re-admits recovered
// agents, and returns the resulting snapshot. The monitor calls it on a
// timer; swiftctl's health command calls it directly.
func (c *Client) ProbeOnce() []AgentHealth {
	c.mu.Lock()
	mc := c.monCfg
	c.mu.Unlock()
	mc.fill()

	type verdict struct{ ok bool }
	verdicts := make([]verdict, len(c.cfg.Agents))
	var wgDone = make(chan int, len(c.cfg.Agents))
	for i, addr := range c.cfg.Agents {
		go func(i int, addr string) {
			_, _, err := c.probeAgent(addr, mc.ProbeRetries)
			verdicts[i] = verdict{ok: err == nil}
			wgDone <- i
		}(i, addr)
	}
	for range c.cfg.Agents {
		<-wgDone
	}

	for i := range verdicts {
		c.mu.Lock()
		state := c.health[i].state
		c.mu.Unlock()
		switch {
		case verdicts[i].ok && state != StateHealthy:
			c.readmit(i, mc.Rebuild)
		case !verdicts[i].ok:
			c.mu.Lock()
			switch state {
			case StateHealthy:
				c.health[i].failures++
				c.health[i].lastErr = "health probe unanswered"
				c.setStateLocked(i, StateSuspect, "health probe unanswered")
			case StateSuspect:
				c.setStateLocked(i, StateDown, "health probe unanswered")
			}
			c.mu.Unlock()
		}
	}
	return c.Health()
}

// readmit returns a recovered agent to service: every registered open
// file re-opens its session on the agent (the old handle died with the
// agent process) and, when rebuild is set and parity is on, rebuilds the
// agent's fragment from the survivors before the session becomes visible.
// Only when every file succeeds is the agent marked healthy; otherwise it
// stays in its current state and the next round retries.
func (c *Client) readmit(i int, rebuild bool) {
	for _, f := range c.openFiles() {
		if err := f.readmit(i, rebuild); err != nil {
			c.cfg.Logf("core: readmit agent %d: %s: %v", i, f.Name(), err)
			return
		}
	}
	c.mu.Lock()
	c.setStateLocked(i, StateHealthy, "probe answered; sessions reopened")
	c.mu.Unlock()
	c.metrics.Readmissions.Add(1)
	c.traceEvent("readmit", i, "agent returned to service (rebuild=%v)", rebuild)
}
