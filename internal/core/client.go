// Package core implements the paper's primary contribution: the Swift
// distribution agent. It is the client-side engine that stripes an object
// over a set of storage agents and drives them in parallel, executing the
// transfer plan with no further intervention by the storage mediator.
//
// The engine provides Unix file semantics (open, close, read, write, seek)
// on striped objects, the light-weight datagram protocol of §3.1 (reads
// with client-side resubmission and one outstanding request per agent;
// writes streamed at full speed with explicit acknowledgement and
// agent-driven resend requests), and the computed-copy redundancy of §2:
// rotating XOR parity with degraded-mode reads, degraded writes, and
// fragment rebuild.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"swift/internal/backoff"
	"swift/internal/cache"
	"swift/internal/ec"
	"swift/internal/mediator"
	"swift/internal/obs"
	"swift/internal/stripe"
	"swift/internal/transport"
	"swift/internal/wire"
)

// Errors returned by the engine.
var (
	ErrAgentDown    = errors.New("core: storage agent unreachable")
	ErrNoQuorum     = errors.New("core: too many failed agents for this layout")
	ErrRetriesSpent = errors.New("core: request retries exhausted")
	ErrClosed       = errors.New("core: file closed")
)

// Config describes a client of a set of storage agents.
type Config struct {
	// Host is the client machine's transport.
	Host transport.Host
	// Agents lists the storage agents' well-known control addresses.
	// Their order defines the striping order and must be consistent
	// across clients of the same objects.
	Agents []string
	// Unit is the default striping unit in bytes (default 32 KiB). The
	// storage mediator overrides it per session when rate requirements
	// are declared.
	Unit int64
	// Parity enables computed-copy redundancy (requires >= 3 agents).
	Parity bool
	// ParityShards is the number of parity units per stripe row (k).
	// Zero means 1 when Parity is set (the legacy rotating-XOR layout);
	// values >= 2 select Reed–Solomon coding and tolerate up to k
	// simultaneous agent failures. Setting ParityShards implies Parity.
	ParityShards int
	// RequestBytes is the largest read or write burst requested from
	// one agent at a time (default 57344 = 42 full packets).
	RequestBytes int64
	// WriteWindow is the number of write bursts kept in flight per
	// agent (default 2).
	WriteWindow int
	// RetryTimeout is the base wait for progress on a burst before
	// resubmitting (default 250ms). Consecutive silent timeouts back off
	// exponentially (with jitter) up to MaxRetryTimeout, so a dead agent
	// is not bombarded on the shared medium.
	RetryTimeout time.Duration
	// MaxRetryTimeout caps the per-attempt backoff (default
	// 8×RetryTimeout).
	MaxRetryTimeout time.Duration
	// MaxRetries sizes the retransmission budget: an operation gives up
	// on an agent once roughly MaxRetries×RetryTimeout elapses with no
	// progress (default 40). Progress refreshes the budget.
	MaxRetries int
	// ReadAhead, when > 0, prefetches sequential streams in windows of
	// this many bytes through the client block cache — the client-side
	// analogue of the kernel read-ahead the paper's baselines enjoy.
	// Detected streams get their next window fetched by a background
	// worker while the application consumes the current one; random
	// reads bypass it. Setting ReadAhead enables the cache.
	ReadAhead int64
	// ReadAheadStreams caps concurrently prefetching sequential streams
	// (default 2); each gets a background read-ahead worker.
	ReadAheadStreams int
	// CacheSize bounds the client block cache in bytes. Zero auto-sizes
	// it when ReadAhead or WriteBehindMax enables the cache; negative
	// disables caching outright. Setting CacheSize > 0 enables the
	// cache even without read-ahead (re-reads then hit memory).
	CacheSize int64
	// WriteBehindMax, when > 0, absorbs writes into dirty cache blocks
	// up to this many bytes and flushes them to the agents in the
	// background in offset order. Sync remains a full flush barrier; a
	// failed write-back re-surfaces on the next write or Sync; writers
	// park once the dirty budget is exceeded. Zero keeps write-through.
	WriteBehindMax int64
	// CacheSync, when non-nil, is the mediator cache-coherence hook:
	// each heartbeat declares the cached objects (with the generations
	// their images reflect) and the objects written since the last
	// successful round, and receives back the stale set to drop. Nil
	// disables coherence (single-client caching).
	CacheSync func(cached []mediator.CachedObject, written []string) ([]mediator.CachedObject, error)
	// SyncWrites asks agents to commit each write burst to stable
	// storage before acknowledging it.
	SyncWrites bool
	// WritePace inserts a delay between outgoing data packets — the
	// prototype's "small wait loop between write operations" that kept
	// the SunOS kernel from silently dropping packets. Zero disables.
	WritePace time.Duration
	// Sleep implements WritePace (default time.Sleep). Measured runs
	// inject the modeled network's scaled sleeper.
	Sleep func(time.Duration)
	// Logf receives diagnostics (default: none).
	Logf func(format string, args ...any)
	// Verbose additionally routes burst-level trace events (timeouts,
	// resends, failovers, lifecycle transitions) to Logf, prefixed
	// "trace:". Without it, events only land in the trace ring.
	Verbose bool
	// Obs, when non-nil, is the metric registry the client registers its
	// telemetry in — so a process can aggregate client, transport and
	// mediator metrics behind one /metrics endpoint. Nil gets a private
	// registry (telemetry is always recorded).
	Obs *obs.Registry
	// Tracer, when non-nil, mints distributed-tracing spans: every client
	// operation roots a span tree, per-agent work opens children, and the
	// context rides control packets to agents and mediators. Nil disables
	// tracing at zero cost on the per-packet path.
	Tracer *obs.Tracer
	// OpTimeout, when > 0, gives every read and write operation a deadline
	// budget. The remaining budget rides each request in the version-gated
	// deadline extension so agents can shed work whose client has already
	// given up. Zero (the default) disables deadline propagation; requests
	// stay byte-identical to the version-1 format.
	OpTimeout time.Duration
	// HedgeReads enables hedged reads with parity: a read burst stalled
	// past HedgeMultiplier× the agent's p99 burst latency is abandoned and
	// its extents reconstructed from the other agents' shards, bounded by
	// the retry budget. Default off.
	HedgeReads bool
	// HedgeMultiplier scales the p99-derived hedge delay (default 2).
	HedgeMultiplier float64
	// RetryBudgetCap is the retry token bucket's capacity (default 1000).
	RetryBudgetCap float64
	// RetryBudgetRatio is the fraction of a token each fresh operation
	// deposits — sustained retries are capped at this fraction of fresh
	// traffic (default 0.5).
	RetryBudgetRatio float64
	// BreakerThreshold is the number of consecutive pushbacks or retry
	// give-ups that trip an agent's circuit breaker open (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before
	// admitting a half-open trial burst (default 2s).
	BreakerCooldown time.Duration
}

func (c *Config) fill() error {
	if c.Host == nil {
		return errors.New("core: config needs a Host")
	}
	if len(c.Agents) == 0 {
		return errors.New("core: config needs at least one agent")
	}
	if c.Unit == 0 {
		c.Unit = 32 * 1024
	}
	if c.RequestBytes == 0 {
		c.RequestBytes = 42 * wire.MaxPayload
	}
	if c.WriteWindow == 0 {
		c.WriteWindow = 2
	}
	if c.RetryTimeout == 0 {
		c.RetryTimeout = 250 * time.Millisecond
	}
	if c.MaxRetryTimeout == 0 {
		c.MaxRetryTimeout = 8 * c.RetryTimeout
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 40
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.HedgeMultiplier == 0 {
		c.HedgeMultiplier = 2
	}
	if c.RetryBudgetCap == 0 {
		c.RetryBudgetCap = 1000
	}
	if c.RetryBudgetRatio == 0 {
		c.RetryBudgetRatio = 0.5
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.ReadAheadStreams == 0 {
		c.ReadAheadStreams = 2
	}
	// Normalize the redundancy knobs both ways: ParityShards implies
	// Parity, and Parity alone means the legacy single parity unit. All
	// boolean cfg.Parity checks in the engine stay valid for any k.
	if c.ParityShards > 0 {
		c.Parity = true
	} else if c.Parity {
		c.ParityShards = 1
	}
	return c.layout().Validate()
}

// cacheEnabled reports whether the client runs the block cache tier.
func (c *Config) cacheEnabled() bool {
	if c.CacheSize < 0 {
		return false
	}
	return c.CacheSize > 0 || c.ReadAhead > 0 || c.WriteBehindMax > 0
}

// layout derives the striping layout from the filled config.
func (c *Config) layout() stripe.Layout {
	return stripe.Layout{
		Unit:        c.Unit,
		Agents:      len(c.Agents),
		Parity:      c.Parity,
		ParityUnits: c.ParityShards,
	}
}

// Client is a distribution agent bound to a fixed set of storage agents.
type Client struct {
	cfg    Config
	layout stripe.Layout
	codec  ec.Codec        // row erasure codec; nil without parity
	bo     *backoff.Policy // shared retransmission backoff schedule

	mu     sync.Mutex
	ctl    transport.PacketConn // shared control conn for stat/remove; guarded by mu
	health []agentHealth        // per-agent failure-domain state; guarded by mu
	files  map[*File]struct{}   // open files, for automatic re-admission; guarded by mu
	req    atomic.Uint32

	// Background health monitor (see health.go).
	monCfg  MonitorConfig
	monStop chan struct{}
	monDone chan struct{}

	metrics   Metrics
	tel       *telemetry
	tracer    *obs.Tracer // nil when tracing is disabled
	traceStop func()      // stops the Verbose buffered sink drain

	budget   *tokenBucket // shared retry/hedge budget (see overload.go)
	breakers []breaker    // per-agent circuit breakers

	// Block cache tier (nil when caching is off; see cachetier.go).
	cache        *cache.Cache
	prefetchQ    chan prefetchReq // read-ahead suggestions to the workers
	prefetchStop chan struct{}
	prefetchWG   sync.WaitGroup
	flushKick    chan struct{} // nudges the write-behind flusher
	flushStop    chan struct{}
	flushDone    chan struct{}
	cacheOnce    sync.Once // guards cache-worker teardown

	cohMu   sync.Mutex
	written map[string]struct{} // objects written since the last successful coherence round; guarded by cohMu
}

// Metrics counts protocol events, for diagnostics and calibration.
type Metrics struct {
	ReadBursts    atomic.Int64 // read requests issued
	ReadTimeouts  atomic.Int64 // read bursts that needed resubmission
	WriteBursts   atomic.Int64 // write bursts issued
	WriteTimeouts atomic.Int64 // write bursts re-announced after silence
	ResendAsks    atomic.Int64 // agent resend requests honoured
	DataPackets   atomic.Int64 // data packets sent (including resends)
	Backoffs      atomic.Int64 // retransmission waits grown beyond the base timeout
	Probes        atomic.Int64 // health probes sent (monitor and Ping)
	Readmissions  atomic.Int64 // agents automatically returned to service
	Corruptions   atomic.Int64 // at-rest corruption events reported by agents
	Repairs       atomic.Int64 // stripe units rewritten from parity (read-repair and scrub)
	Unrepairable  atomic.Int64 // corruption events parity could not repair
	ScrubRows     atomic.Int64 // stripe rows verified by the scrubber
	Pushbacks     atomic.Int64 // explicit pushback replies received from agents
	Hedges        atomic.Int64 // read bursts hedged after the straggler delay
	HedgeWins     atomic.Int64 // hedged reads completed by reconstruction
	BudgetDenials atomic.Int64 // retries or hedges denied by the retry budget
	BreakerTrips  atomic.Int64 // per-agent circuit breakers tripped open
}

// Metrics returns a pointer to the client's live protocol counters.
//
// Deprecated: the atomics behind the pointer keep mutating, so there is no
// coherent read across fields. Use MetricsSnapshot (a value copy) or
// Stats (the full telemetry snapshot) instead. Retained as an alias for
// existing callers.
func (c *Client) Metrics() *Metrics { return &c.metrics }

// Dial creates a client. It performs no network traffic; agents are
// contacted when objects are opened.
func Dial(cfg Config) (*Client, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ctl, err := cfg.Host.Listen("0")
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	c := &Client{
		cfg:      cfg,
		layout:   cfg.layout(),
		bo:       backoff.New(cfg.RetryTimeout, cfg.MaxRetryTimeout),
		ctl:      ctl,
		health:   make([]agentHealth, len(cfg.Agents)),
		files:    make(map[*File]struct{}),
		budget:   newTokenBucket(cfg.RetryBudgetCap, cfg.RetryBudgetRatio),
		breakers: make([]breaker, len(cfg.Agents)),
	}
	if k := c.layout.ParityPerRow(); k > 0 {
		c.codec, err = ec.New(c.layout.DataPerRow(), k)
		if err != nil {
			ctl.Close()
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	c.tel = newTelemetry(cfg.Obs, cfg.Agents, &c.metrics, c.codec, c.budget)
	c.initCache()
	c.tracer = cfg.Tracer
	if cfg.Verbose {
		logf := c.cfg.Logf
		// Logf implementations may block (files, test loggers); the
		// buffered hand-off keeps event emission non-blocking on the data
		// path, dropping on overflow instead of stalling a transfer.
		c.traceStop = c.tel.trace.SetBufferedSink(func(e obs.Event) { logf("trace: %s", e.String()) }, 256)
	}
	return c, nil
}

// Layout returns the client's striping layout.
func (c *Client) Layout() stripe.Layout { return c.layout }

// parityK returns the number of parity units per stripe row (0 without
// parity) — the number of simultaneous agent failures the layout masks.
func (c *Client) parityK() int { return c.layout.ParityPerRow() }

// Scheme describes the redundancy scheme: "m+k" (data+parity units per
// row) with parity enabled, "none" without.
func (c *Client) Scheme() string {
	if c.codec == nil {
		return "none"
	}
	return c.codec.String()
}

// ECStats snapshots the erasure codec's work counters. Without parity
// it returns zeros.
func (c *Client) ECStats() ec.Stats {
	if c.codec == nil {
		return ec.Stats{}
	}
	return c.codec.Stats()
}

// Close stops the health monitor (if running) and releases the client's
// control endpoint. Open files remain usable until closed individually.
func (c *Client) Close() error {
	c.StopMonitor()
	// Declare any writes still pending a coherence round, then stop the
	// cache workers (the flusher drains on its way out).
	c.CoherenceSync()
	c.stopCacheWorkers()
	if c.traceStop != nil {
		c.traceStop()
	}
	// Holding mu across Close is deliberate: it serializes teardown
	// against any in-flight control RPC on the shared conn.
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctl.Close() //lint:allow lockio teardown path; waits out in-flight control RPCs by design
}

// MarkDown forces agent i's state: failed (true) or recovered (false).
// With parity enabled, reads and writes continue in degraded mode around
// a single failed agent. Normally the failure-domain lifecycle manages
// states automatically; MarkDown remains for drills and administrative
// fencing.
func (c *Client) MarkDown(i int, down bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.health) {
		return
	}
	if down {
		c.setStateLocked(i, StateDown, "administratively marked down")
	} else {
		c.setStateLocked(i, StateHealthy, "")
	}
}

// Down reports whether agent i is in the Down state.
func (c *Client) Down(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.health[i].state == StateDown
}

// downSnapshot returns per-agent Down flags.
func (c *Client) downSnapshot() []bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]bool, len(c.health))
	for i := range c.health {
		out[i] = c.health[i].state == StateDown
	}
	return out
}

// backoff returns the retransmission wait for the given consecutive
// silent-timeout count (0 = base RetryTimeout): capped exponential growth
// with ±25% jitter so colliding clients desynchronize.
func (c *Client) backoff(level int) time.Duration { return c.bo.Delay(level) }

// retryBudget is the no-progress interval after which an operation gives
// up on an agent.
func (c *Client) retryBudget() time.Duration {
	return time.Duration(c.cfg.MaxRetries) * c.cfg.RetryTimeout
}

func (c *Client) nextReq() uint32 { return c.req.Add(1) }

// OpenFlags control Open.
type OpenFlags struct {
	Create   bool
	Truncate bool
	// Trace, when valid, parents the open's span under the caller's span
	// (the facade's mount span); zero roots a fresh trace.
	Trace obs.SpanContext
}

// startSpan roots a span for one client operation, joining parent when it
// names a trace. Returns nil (a no-op span) when tracing is disabled.
func (c *Client) startSpan(parent obs.SpanContext, name string) *obs.Span {
	if parent.Valid() {
		return c.tracer.StartRemote(parent, "core", name, -1)
	}
	return c.tracer.StartOp("core", name)
}

// Open establishes per-agent sessions for the named object and returns a
// File with Unix semantics. With parity enabled, Open tolerates up to k
// (= ParityShards) unreachable agents and enters degraded mode.
func (c *Client) Open(name string, flags OpenFlags) (*File, error) {
	start := time.Now()
	sp := c.startSpan(flags.Trace, "open")
	defer sp.Finish()
	sp.Annotate("open %s", name)
	down := c.downSnapshot()
	sessions := make([]*agentSession, len(c.cfg.Agents))
	errs := make([]error, len(c.cfg.Agents))
	var wg sync.WaitGroup
	for i, addr := range c.cfg.Agents {
		if down[i] {
			errs[i] = ErrAgentDown
			continue
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			as := sp.StartChild("agent_open", i)
			sessions[i], errs[i] = c.openSession(i, addr, name, flags, as.Context())
			as.SetError(errs[i])
			as.Finish()
		}(i, addr)
	}
	wg.Wait()

	failed := 0
	for i := range errs {
		if errs[i] != nil {
			failed++
			if !down[i] {
				c.noteFailure(i, errs[i])
			}
			c.traceEvent("open_fail", i, "open %s: %v", name, errs[i])
			c.cfg.Logf("core: open %s on agent %d: %v", name, i, errs[i])
		}
	}
	closeAll := func() {
		for _, s := range sessions {
			if s != nil {
				s.close()
			}
		}
	}
	if failed > 0 && (!c.cfg.Parity || failed > c.parityK()) {
		closeAll()
		for i, err := range errs {
			if err != nil {
				werr := fmt.Errorf("core: open %s on agent %d (%s): %w",
					name, i, c.cfg.Agents[i], err)
				sp.SetError(werr)
				return nil, werr
			}
		}
	}
	if failed > 0 {
		// Degraded open: tolerated by parity, but worth keeping the trace.
		sp.MarkRetry()
		sp.Annotate("degraded open: %d agents unavailable", failed)
	}

	frag := make([]int64, len(sessions))
	for i, s := range sessions {
		if s == nil {
			frag[i] = -1
			continue
		}
		frag[i] = s.fragSize
	}
	f := &File{
		c:        c,
		name:     name,
		sessions: sessions,
		size:     c.layout.SizeFromFragments(frag),
	}
	if flags.Truncate {
		f.size = 0
	}
	if c.cache != nil {
		f.cobj = c.cache.Open(name)
		if flags.Truncate {
			// Cached blocks of the previous incarnation are stale.
			f.cobj.Invalidate(0, 1<<62)
		}
	}
	c.mu.Lock()
	c.files[f] = struct{}{}
	c.mu.Unlock()
	c.tel.openFiles.Add(1)
	observeSpan(c.tel.openLat, start, sp)
	return f, nil
}

// dropFile unregisters a closed file from the re-admission set.
func (c *Client) dropFile(f *File) {
	c.mu.Lock()
	delete(c.files, f)
	c.mu.Unlock()
	c.tel.openFiles.Add(-1)
}

// openFiles snapshots the registered open files.
func (c *Client) openFiles() []*File {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*File, 0, len(c.files))
	for f := range c.files {
		out = append(out, f)
	}
	return out
}

// agentSession is the client side of one open file on one agent: a
// dedicated local port paired with the agent's private port.
type agentSession struct {
	idx      int
	conn     transport.PacketConn
	ctlAddr  string // agent well-known address
	dataAddr string // agent private address for this file
	handle   uint64
	fragSize int64
	buf      []byte // receive buffer, owned by the session's worker
	sendBuf  []byte // marshal buffer, owned by the session's worker
}

func (s *agentSession) close() {
	if s.conn != nil {
		s.conn.Close()
	}
}

// openSession performs the open handshake with one agent, with
// retransmission. tctx, when valid, rides the TOpen packet so the agent's
// service span joins the caller's trace.
func (c *Client) openSession(idx int, addr, name string, flags OpenFlags, tctx obs.SpanContext) (*agentSession, error) {
	conn, err := c.cfg.Host.Listen("0")
	if err != nil {
		return nil, err
	}
	var f uint16
	if flags.Create {
		f |= wire.FCreate
	}
	if flags.Truncate {
		f |= wire.FTrunc
	}
	reqID := c.nextReq()
	req := &wire.Packet{
		Header:  wire.Header{Type: wire.TOpen, ReqID: reqID, Flags: f},
		Trace:   tctx,
		Payload: wire.AppendOpenRequest(nil, &wire.OpenRequest{Name: name}),
	}
	reply, err := c.rpc(conn, addr, req, reqID)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if reply.Type != wire.TOpenReply {
		conn.Close()
		return nil, fmt.Errorf("core: unexpected %v to open", reply.Type)
	}
	or, err := wire.ParseOpenReply(reply.Payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	ahost, _, _ := transport.SplitAddr(addr)
	return &agentSession{
		idx:      idx,
		conn:     conn,
		ctlAddr:  addr,
		dataAddr: transport.JoinAddr(ahost, or.Port),
		handle:   reply.Handle,
		fragSize: or.Size,
		buf:      make([]byte, wire.MaxPacket),
		sendBuf:  make([]byte, 0, wire.MaxPacket),
	}, nil
}

// rpc sends req to addr on conn and waits for the matching reply,
// retransmitting on timeout. TError replies are converted to errors.
func (c *Client) rpc(conn transport.PacketConn, addr string, req *wire.Packet, reqID uint32) (*wire.Packet, error) {
	return c.rpcAttempts(conn, addr, req, reqID, c.cfg.MaxRetries)
}

// rpcAttempts is rpc with an explicit retransmission budget of roughly
// retries×RetryTimeout. Consecutive timeouts retransmit with capped
// exponential backoff and jitter so a dead agent is not hammered at a
// fixed cadence — the control plane shares the data path's storm
// avoidance.
func (c *Client) rpcAttempts(conn transport.PacketConn, addr string, req *wire.Packet, reqID uint32, retries int) (*wire.Packet, error) {
	rbuf := make([]byte, wire.MaxPacket)
	var pkt wire.Packet
	giveUp := time.Now().Add(time.Duration(retries) * c.cfg.RetryTimeout)
	for attempt := 0; ; attempt++ {
		// Each (re)transmission carries the remaining retry budget in
		// the deadline extension — the same contract as medrpc — so an
		// agent that dequeues a retransmit after the client's give-up
		// point sheds it instead of serving a reply nobody reads.
		if rem := time.Until(giveUp); rem > 0 {
			req.Deadline = rem
		} else {
			req.Deadline = 0
		}
		buf, err := wire.Marshal(req)
		if err != nil {
			return nil, err
		}
		if err := conn.WriteTo(buf, addr); err != nil {
			return nil, err
		}
		if attempt > 0 {
			c.metrics.Backoffs.Add(1)
		}
		deadline := time.Now().Add(c.backoff(attempt))
		for {
			conn.SetReadDeadline(deadline)
			n, _, err := conn.ReadFrom(rbuf)
			if err != nil {
				if transport.IsTimeout(err) {
					break // retransmit
				}
				return nil, err
			}
			if err := wire.Unmarshal(rbuf[:n], &pkt); err != nil {
				continue
			}
			if pkt.ReqID != reqID {
				continue // stale
			}
			if pkt.Type == wire.TError {
				return nil, wire.ParseError(pkt.Payload)
			}
			out := pkt
			out.Payload = append([]byte(nil), pkt.Payload...)
			return &out, nil
		}
		if !time.Now().Before(giveUp) {
			return nil, ErrAgentDown
		}
	}
}

// Stat returns the logical size of the named object, or store.ErrNotExist
// translated as a RemoteError if no agent has a fragment.
func (c *Client) Stat(name string) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	frag := make([]int64, len(c.cfg.Agents))
	exists := false
	for i, addr := range c.cfg.Agents {
		if c.health[i].state == StateDown {
			frag[i] = -1
			continue
		}
		reqID := c.nextReq()
		reply, err := c.rpc(c.ctl, addr, &wire.Packet{
			Header:  wire.Header{Type: wire.TStat, ReqID: reqID},
			Payload: wire.AppendOpenRequest(nil, &wire.OpenRequest{Name: name}),
		}, reqID)
		if err != nil {
			return 0, fmt.Errorf("core: stat %s on agent %d: %w", name, i, err)
		}
		sr, err := wire.ParseStatReply(reply.Payload)
		if err != nil {
			return 0, err
		}
		if sr.Exists {
			exists = true
			frag[i] = sr.Size
		}
	}
	if !exists {
		return 0, &wire.RemoteError{Msg: "object does not exist"}
	}
	return c.layout.SizeFromFragments(frag), nil
}

// List returns the union of object names across all reachable agents,
// sorted. An object striped over the set appears once.
func (c *Client) List() ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := make(map[string]bool)
	for i, addr := range c.cfg.Agents {
		if c.health[i].state == StateDown {
			continue
		}
		names, err := c.listAgentLocked(addr)
		if err != nil {
			return nil, fmt.Errorf("core: list agent %d: %w", i, err)
		}
		for _, n := range names {
			set[n] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// listAgentLocked collects one agent's TListReply stream, retransmitting
// the request until every packet up to the FLast-marked one has been seen.
// c.mu must be held: it serializes use of the shared control conn.
func (c *Client) listAgentLocked(addr string) ([]string, error) {
	reqID := c.nextReq()
	req, err := wire.Marshal(&wire.Packet{Header: wire.Header{Type: wire.TList, ReqID: reqID}})
	if err != nil {
		return nil, err
	}
	parts := make(map[int64][]string)
	last := int64(-1)
	complete := func() bool {
		if last < 0 {
			return false
		}
		for s := int64(0); s <= last; s++ {
			if _, ok := parts[s]; !ok {
				return false
			}
		}
		return true
	}
	rbuf := make([]byte, wire.MaxPacket)
	var pkt wire.Packet
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if err := c.ctl.WriteTo(req, addr); err != nil {
			return nil, err
		}
		deadline := time.Now().Add(c.cfg.RetryTimeout)
		for !complete() {
			c.ctl.SetReadDeadline(deadline)
			n, _, err := c.ctl.ReadFrom(rbuf)
			if err != nil {
				if transport.IsTimeout(err) {
					break
				}
				return nil, err
			}
			if uerr := wire.Unmarshal(rbuf[:n], &pkt); uerr != nil || pkt.ReqID != reqID {
				continue
			}
			if pkt.Type == wire.TError {
				return nil, wire.ParseError(pkt.Payload)
			}
			if pkt.Type != wire.TListReply {
				continue
			}
			names, perr := wire.ParseNames(pkt.Payload)
			if perr != nil {
				continue
			}
			parts[pkt.Offset] = names
			if pkt.Flags&wire.FLast != 0 {
				last = pkt.Offset
			}
		}
		if complete() {
			var out []string
			for s := int64(0); s <= last; s++ {
				out = append(out, parts[s]...)
			}
			return out, nil
		}
	}
	return nil, ErrAgentDown
}

// AgentStatus is one agent's health probe result.
type AgentStatus struct {
	Addr     string
	Alive    bool
	RTT      time.Duration
	Objects  uint32
	Sessions uint32
	Bytes    int64
}

// Ping probes every agent (including ones marked down) concurrently and
// returns their statuses in agent order. It holds no client lock and uses
// a private endpoint per probe, so a dead agent delays the result by at
// most its own probe budget and never stalls other client operations.
func (c *Client) Ping() []AgentStatus {
	out := make([]AgentStatus, len(c.cfg.Agents))
	var wg sync.WaitGroup
	for i, addr := range c.cfg.Agents {
		out[i].Addr = addr
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			pr, rtt, err := c.probeAgent(addr, 2)
			if err != nil {
				return
			}
			out[i].Alive = true
			out[i].RTT = rtt
			out[i].Objects = pr.Objects
			out[i].Sessions = pr.Sessions
			out[i].Bytes = pr.Bytes
		}(i, addr)
	}
	wg.Wait()
	return out
}

// probeAgent sends one TPing to addr on a private ephemeral endpoint with
// the given retry budget. It is safe to call concurrently and takes no
// client lock.
func (c *Client) probeAgent(addr string, retries int) (wire.PingReply, time.Duration, error) {
	conn, err := c.cfg.Host.Listen("0")
	if err != nil {
		return wire.PingReply{}, 0, err
	}
	defer conn.Close()
	c.metrics.Probes.Add(1)
	reqID := c.nextReq()
	start := time.Now()
	reply, err := c.rpcAttempts(conn, addr, &wire.Packet{
		Header: wire.Header{Type: wire.TPing, ReqID: reqID},
	}, reqID, retries)
	if err != nil {
		return wire.PingReply{}, 0, err
	}
	if reply.Type != wire.TPingReply {
		return wire.PingReply{}, 0, fmt.Errorf("core: unexpected %v to ping", reply.Type)
	}
	pr, err := wire.ParsePingReply(reply.Payload)
	if err != nil {
		return wire.PingReply{}, 0, err
	}
	rtt := time.Since(start)
	c.tel.probeLat.Observe(rtt)
	return pr, rtt, nil
}

// Remove deletes the named object's fragments from all reachable agents.
func (c *Client) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var firstErr error
	for i, addr := range c.cfg.Agents {
		if c.health[i].state == StateDown {
			continue
		}
		reqID := c.nextReq()
		_, err := c.rpc(c.ctl, addr, &wire.Packet{
			Header:  wire.Header{Type: wire.TRemove, ReqID: reqID},
			Payload: wire.AppendOpenRequest(nil, &wire.OpenRequest{Name: name}),
		}, reqID)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: remove %s on agent %d: %w", name, i, err)
		}
	}
	return firstErr
}
