package core

import (
	"bytes"
	"io"
	"testing"
	"time"

	"swift/internal/transport/memnet"
)

// raCluster builds a cluster whose client has read-ahead enabled.
func raCluster(t *testing.T, readAhead int64) (*cluster, *Client) {
	t.Helper()
	c := newCluster(t, clusterOpts{unit: 4096})
	if readAhead == 0 {
		return c, c.client
	}
	// Dial a second client with read-ahead against the same agents.
	addrs := make([]string, len(c.agents))
	for i, a := range c.agents {
		addrs[i] = a.Addr()
	}
	h := c.net.MustHost("ra-client", memnet.HostConfig{}, c.seg)
	cl, err := Dial(Config{
		Host: h, Agents: addrs, Unit: 4096,
		RetryTimeout: 30 * time.Millisecond, MaxRetries: 100,
		ReadAhead: readAhead,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return c, cl
}

func TestReadAheadCorrectness(t *testing.T) {
	c, cl := raCluster(t, 64*1024)
	data := randBytes(300_000, 80)
	// Write with the plain client.
	f, err := c.client.Open("ra", OpenFlags{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(data, 0)
	f.Close()

	g, err := cl.Open("ra", OpenFlags{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	// Small sequential reads through the window.
	var got bytes.Buffer
	buf := make([]byte, 8000)
	for {
		n, err := g.Read(buf)
		got.Write(buf[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatal("sequential read-ahead mismatch")
	}

	// Random reads bypass the window but stay correct.
	for _, off := range []int64{250_000, 10, 123_456, 0} {
		out := make([]byte, 5000)
		n, err := g.ReadAt(out, off)
		if err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(out[:n], data[off:off+int64(n)]) {
			t.Fatalf("random read at %d mismatch", off)
		}
	}
}

func TestReadAheadInvalidatedByWrite(t *testing.T) {
	_, cl := raCluster(t, 64*1024)
	data := randBytes(100_000, 81)
	f, err := cl.Open("raw", OpenFlags{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.WriteAt(data, 0)

	// Prime the window.
	buf := make([]byte, 8192)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	// Overwrite inside the window; the next sequential read must see it.
	patch := randBytes(4096, 82)
	f.WriteAt(patch, 8192)
	copy(data[8192:], patch)
	if _, err := f.ReadAt(buf, 8192); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:4096], patch) {
		t.Fatal("stale read-ahead window served after write")
	}
	_ = data
}

func TestReadAheadReducesRequests(t *testing.T) {
	// With a 128 KB window, 8 KB sequential reads issue far fewer read
	// bursts than without.
	_, cl := raCluster(t, 128*1024)
	data := randBytes(256*1024, 83)
	f, _ := cl.Open("rac", OpenFlags{Create: true})
	defer f.Close()
	f.WriteAt(data, 0)

	before := cl.MetricsSnapshot().ReadBursts
	buf := make([]byte, 8192)
	for off := int64(0); off < int64(len(data)); off += 8192 {
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	bursts := cl.MetricsSnapshot().ReadBursts - before
	// 256 KB / 128 KB windows over 3 agents ≈ 6 bursts; without
	// read-ahead each 8 KB read costs >= 2 bursts (32 reads).
	if bursts > 12 {
		t.Fatalf("read-ahead issued %d bursts, want few", bursts)
	}
}
