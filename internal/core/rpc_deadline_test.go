package core

import (
	"testing"
	"time"

	"swift/internal/backoff"
	"swift/internal/transport/memnet"
	"swift/internal/wire"
)

// TestRPCCarriesDeadlineBudget pins the control-plane deadline contract:
// every transmission of a client RPC — including retransmits — carries
// the remaining retry budget in the packet's deadline extension, and the
// budget shrinks across attempts. This is the retry path deadlineflow
// exists to guard; before the fix, core RPCs sent no deadline at all.
func TestRPCCarriesDeadlineBudget(t *testing.T) {
	n := memnet.New(1)
	defer n.Close()
	seg := n.NewSegment("lab", memnet.SegmentConfig{BandwidthBps: 1e10, FrameOverhead: 46})
	ah := n.MustHost("agent", memnet.HostConfig{}, seg)
	ch := n.MustHost("client", memnet.HostConfig{}, seg)

	srv, err := ah.Listen("7")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Fake agent: swallow the first attempt (forcing a retransmit),
	// record each attempt's deadline, reply on the second.
	deadlines := make(chan time.Duration, 2)
	go func() {
		buf := make([]byte, wire.MaxPacket)
		var pkt wire.Packet
		for i := 0; i < 2; i++ {
			nr, from, err := srv.ReadFrom(buf)
			if err != nil {
				return
			}
			if err := wire.Unmarshal(buf[:nr], &pkt); err != nil {
				continue
			}
			deadlines <- pkt.Deadline
			if i == 1 {
				reply, _ := wire.Marshal(&wire.Packet{
					Header: wire.Header{Type: wire.TStatReply, ReqID: pkt.ReqID},
				})
				srv.WriteTo(reply, from)
			}
		}
	}()

	c := &Client{
		cfg: Config{RetryTimeout: 20 * time.Millisecond, MaxRetries: 5},
		bo:  backoff.New(20*time.Millisecond, 80*time.Millisecond),
	}
	conn, err := ch.Listen("0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	req := &wire.Packet{Header: wire.Header{Type: wire.TStat, ReqID: 9}}
	if _, err := c.rpcAttempts(conn, ah.Name()+":7", req, 9, c.cfg.MaxRetries); err != nil {
		t.Fatalf("rpc: %v", err)
	}

	first := <-deadlines
	second := <-deadlines
	if first <= 0 {
		t.Fatalf("first attempt carried no deadline budget: %v", first)
	}
	if second <= 0 {
		t.Fatalf("retransmit carried no deadline budget: %v", second)
	}
	if second >= first {
		t.Fatalf("budget did not shrink across attempts: first %v, retransmit %v", first, second)
	}
}
