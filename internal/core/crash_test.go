package core

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// crashDuringWrite stretches a large WriteAt with a per-packet pace and
// kills agent k from a side goroutine while the write is in flight. It
// returns the write's outcome and the data it attempted to write.
func crashDuringWrite(t *testing.T, c *cluster, f *File, k int, size int) ([]byte, error) {
	t.Helper()
	// Pace the data stream so the crash lands mid-write, and shrink the
	// no-progress budget so a doomed write attributes its failure quickly.
	c.client.cfg.WritePace = 40 * time.Microsecond
	c.client.cfg.MaxRetries = 8

	data := randBytes(size, 77)
	crashed := make(chan struct{})
	go func() {
		defer close(crashed)
		time.Sleep(8 * time.Millisecond)
		c.agents[k].Close()
	}()
	_, err := f.WriteAt(data, 0)
	<-crashed
	return data, err
}

// TestMidWriteCrashWithoutParity: an agent crash in the middle of a large
// write surfaces as an attributable error — not a hang, not a generic
// failure — and the lifecycle marks the crashed agent, even though no
// failover is possible without redundancy.
func TestMidWriteCrashWithoutParity(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 3, unit: 2048})
	f, err := c.client.Open("obj", OpenFlags{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const k = 1
	_, err = crashDuringWrite(t, c, f, k, 600_000)
	if err == nil {
		t.Fatal("mid-write crash without parity did not error")
	}
	if !errors.Is(err, ErrRetriesSpent) && !errors.Is(err, ErrAgentDown) {
		t.Fatalf("error not attributable: %v", err)
	}
	if h := c.client.Health()[k]; h.State == StateHealthy {
		t.Fatalf("crashed agent still healthy: %+v", h)
	}
	for i, h := range c.client.Health() {
		if i != k && h.State != StateHealthy {
			t.Fatalf("surviving agent %d marked %v", i, h.State)
		}
	}
}

// TestMidWriteCrashWithParity: the same crash under computed-copy
// redundancy is masked — the write completes by failing over, the full
// object reads back correctly (the crashed agent's units served from
// parity), and the lifecycle has marked the crashed agent.
func TestMidWriteCrashWithParity(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 4, parity: true, unit: 2048})
	f, err := c.client.Open("obj", OpenFlags{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const k = 1
	data, err := crashDuringWrite(t, c, f, k, 600_000)
	if err != nil {
		t.Fatalf("mid-write crash not masked by parity: %v", err)
	}

	out := make([]byte, len(data))
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("degraded read-back: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("degraded read-back mismatch: write was not consistent")
	}
	if h := c.client.Health()[k]; h.State == StateHealthy {
		t.Fatalf("crashed agent still healthy: %+v", h)
	}

	// Recovery composes with the crash: restart the agent, probe, and the
	// healthy-path read must agree after an explicit rebuild.
	restartAgent(t, c, k)
	c.client.ProbeOnce()
	if h := c.client.Health()[k]; h.State != StateHealthy {
		t.Fatalf("restarted agent not re-admitted: %+v", h)
	}
	if err := f.Rebuild(k); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("post-rebuild read: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("post-rebuild read mismatch")
	}
}
