package core

import (
	"errors"
	"time"

	"swift/internal/cache"
	"swift/internal/mediator"
	"swift/internal/obs"
)

// This file wires the client-side block cache (internal/cache) into the
// engine: sizing and construction, the background read-ahead workers,
// the write-behind flusher, and the mediator cache-coherence rounds.
// The cache itself is a passive policy engine; every byte that moves
// between it and the agents moves through File.readRange/writeRange, so
// the retry, failover, hedging and deadline machinery stays in one place.

// flushTick paces the background flusher between kicks, so dirty bytes
// never linger just because writers went quiet.
const flushTick = 100 * time.Millisecond

// prefetchReq is one suggested read-ahead window for a file's stream.
type prefetchReq struct {
	f   *File
	off int64
	n   int64
	gen uint64 // stream generation; a seek invalidates the request
}

// initCache builds the block cache and starts its background workers,
// according to the filled config. No-op when caching is off.
func (c *Client) initCache() {
	cfg := &c.cfg
	if cfg.CacheSync != nil {
		// Write declaration is independent of local caching: a client
		// that writes but never caches still owes the federation its
		// generation bumps, or every other client's cache goes stale.
		//lint:allow lockguard Dial-time construction; no other goroutine can hold a *Client yet
		c.written = make(map[string]struct{})
	}
	if !cfg.cacheEnabled() {
		return
	}
	capBytes := cfg.CacheSize
	if capBytes == 0 {
		// Auto-size: room for several read-ahead windows and double the
		// dirty budget, floored at 8 MiB.
		capBytes = 8 << 20
		if n := 4 * cfg.ReadAhead; n > capBytes {
			capBytes = n
		}
		if n := 2 * cfg.WriteBehindMax; n > capBytes {
			capBytes = n
		}
	}
	c.cache = cache.New(cache.Config{
		Capacity:       capBytes,
		ReadAhead:      cfg.ReadAhead,
		Streams:        cfg.ReadAheadStreams,
		WriteBehindMax: cfg.WriteBehindMax,
	}, c.tel.reg)
	if cfg.ReadAhead > 0 {
		workers := c.cache.Streams()
		c.prefetchQ = make(chan prefetchReq, 4*workers)
		c.prefetchStop = make(chan struct{})
		for i := 0; i < workers; i++ {
			c.prefetchWG.Add(1)
			go c.prefetchLoop()
		}
	}
	if c.cache.WriteBehind() {
		c.flushKick = make(chan struct{}, 1)
		c.flushStop = make(chan struct{})
		c.flushDone = make(chan struct{})
		go c.flushLoop()
	}
}

// stopCacheWorkers shuts the prefetch and flush goroutines down, once.
// The flusher drains remaining dirty extents on its way out.
func (c *Client) stopCacheWorkers() {
	c.cacheOnce.Do(func() {
		if c.prefetchStop != nil {
			close(c.prefetchStop)
			c.prefetchWG.Wait()
		}
		if c.flushStop != nil {
			close(c.flushStop)
			<-c.flushDone
		}
	})
}

// CacheStats snapshots the block cache's counters (zeros when caching
// is off).
func (c *Client) CacheStats() cache.Stats {
	if c.cache == nil {
		return cache.Stats{}
	}
	return c.cache.Stats()
}

// suggestPrefetch hands a read-ahead window to the background workers.
// Non-blocking: a full queue drops the suggestion — the stream detector
// suggests the window again as the reader advances, and stalling a
// demand read to enqueue speculation would invert the priorities.
func (c *Client) suggestPrefetch(f *File, off, n int64, gen uint64) {
	select {
	case c.prefetchQ <- prefetchReq{f: f, off: off, n: n, gen: gen}:
	default:
	}
}

// prefetchLoop is one background read-ahead worker. The scratch buffer
// is worker-local and reused across requests, so steady-state prefetch
// allocates nothing.
func (c *Client) prefetchLoop() {
	defer c.prefetchWG.Done()
	var scratch []byte
	for {
		select {
		case <-c.prefetchStop:
			return
		case r := <-c.prefetchQ:
			scratch = r.f.prefetch(r, scratch)
		}
	}
}

// prefetch runs one read-ahead window on behalf of a background worker,
// reusing scratch across calls. Under f.mu it re-checks that the stream
// is still live (a seek bumps the generation) and the window not already
// resident, then reads WITHOUT failover retries or hedging: read-ahead
// is speculative and must never spend the retry budget demand reads and
// recovery depend on.
func (f *File) prefetch(r prefetchReq, scratch []byte) []byte {
	sp := f.c.startSpan(obs.SpanContext{}, "readahead")
	defer sp.Finish()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.cobj == nil || f.cobj.StreamGen() != r.gen {
		return scratch
	}
	off, n := r.off, r.n
	if off+n > f.size {
		n = f.size - off
	}
	if n <= 0 || f.cobj.Contains(off, n) {
		return scratch
	}
	if int64(cap(scratch)) < n {
		scratch = make([]byte, n)
	}
	buf := scratch[:n]
	sp.Annotate("%s [%d:%d)", f.name, off, off+n)
	f.prefetching = true
	err := f.readRange(buf, off, false, sp)
	f.prefetching = false
	if err != nil {
		sp.SetError(err)
		return scratch
	}
	f.cobj.Insert(off, buf, true)
	return scratch
}

// kickFlush nudges the background flusher. Non-blocking; a pending kick
// already covers this one.
func (c *Client) kickFlush() {
	if c.flushKick == nil {
		return
	}
	select {
	case c.flushKick <- struct{}{}:
	default:
	}
}

// flushLoop is the background write-behind flusher: it drains dirty
// extents in offset order on every kick and on a steady tick, and fully
// drains on shutdown so Close-time flushes find little left to do.
func (c *Client) flushLoop() {
	defer close(c.flushDone)
	t := time.NewTicker(flushTick)
	defer t.Stop()
	for {
		select {
		case <-c.flushStop:
			c.drainDirty()
			return
		case <-c.flushKick:
		case <-t.C:
		}
		c.drainDirty()
	}
}

// drainDirty flushes dirty extents across every open file until no file
// makes progress. A file whose flush fails parks the error on its cache
// object (re-surfaced on the next write or Sync) and reports no
// progress, so a dead object cannot spin the flusher.
func (c *Client) drainDirty() {
	for {
		progressed := false
		for _, f := range c.openFiles() {
			if f.flushSome() {
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

// flushSome writes back one dirty extent of the file, reporting whether
// it made progress.
func (f *File) flushSome() bool {
	sp := f.c.startSpan(obs.SpanContext{}, "writeback")
	defer sp.Finish()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.cobj == nil {
		return false
	}
	return f.flushOneLocked(sp)
}

// flushOneLocked writes back the lowest-offset dirty extent; f.mu held.
// Success declares the write for the next coherence round; failure
// parks the error on the object and leaves the extent dirty for retry.
func (f *File) flushOneLocked(sp *obs.Span) bool {
	off, p, ok := f.cobj.NextFlush()
	if !ok {
		return false
	}
	if err := f.writeRange(p, off, true, sp); err != nil {
		sp.SetError(err)
		f.cobj.FlushFail(err)
		return false
	}
	f.cobj.FlushDone(off)
	f.c.noteWritten(f.name)
	return true
}

// flushAllLocked drains every dirty extent of this file and returns any
// parked write-back error; f.mu held. The write-behind Sync barrier.
func (f *File) flushAllLocked(sp *obs.Span) error {
	if f.cobj == nil {
		return nil
	}
	for f.flushOneLocked(sp) {
	}
	return f.cobj.TakeFlushErr()
}

// waitWriteBudget parks the writer while dirty bytes exceed the
// write-behind budget — the back-pressure that keeps a fast writer from
// turning the cache into an unbounded queue. The park is bounded by the
// retry budget so a wedged flusher (every agent out) cannot hold
// writers forever; its error surfaces on the next write instead.
func (f *File) waitWriteBudget() {
	c := f.c
	if f.cobj == nil || c.cache == nil || !c.cache.WriteBehind() {
		return
	}
	ch := c.cache.BudgetWait()
	if ch == nil {
		return
	}
	c.kickFlush()
	select {
	case <-ch:
	case <-time.After(c.retryBudget()):
	}
}

// noteWritten records that this client moved the object's agent-side
// bytes (a write-through or a completed flush), for the next coherence
// round's declaration. No-op without a coherence hook.
func (c *Client) noteWritten(name string) {
	if c.cfg.CacheSync == nil {
		return
	}
	c.cohMu.Lock()
	c.written[name] = struct{}{}
	c.cohMu.Unlock()
}

// CoherenceSync runs one cache-coherence round against the mediator:
// declare what we cache and what we wrote, learn what went stale. The
// facade calls it on the heartbeat cadence. Rules:
//
//   - The written set is only cleared on a successful round; a failed
//     round redeclares it, so a generation bump is never lost.
//   - A stale object this client itself wrote adopts the new generation
//     without invalidating — the writer's cache absorbed those bytes on
//     the way out, and dropping them would collapse re-read hit rates.
//   - Any other stale object flushes its dirty extents (our unflushed
//     writes still beat the invalidation) and drops its blocks; the next
//     read re-fetches, and the file's size refreshes so a grown object
//     is not clamped at the stale length.
//   - ErrUnknownSession means the lease is gone, and with it any claim
//     to coherent caching: every open file flushes and drops its image.
func (c *Client) CoherenceSync() {
	if c.cfg.CacheSync == nil {
		return
	}
	c.cohMu.Lock()
	written := make([]string, 0, len(c.written))
	wrote := make(map[string]bool, len(c.written))
	for name := range c.written {
		written = append(written, name)
		wrote[name] = true
	}
	c.cohMu.Unlock()
	var cached []mediator.CachedObject
	if c.cache != nil {
		c.cache.Objects(func(name string, gen uint64) {
			cached = append(cached, mediator.CachedObject{Name: name, Gen: gen})
		})
	}
	if len(cached) == 0 && len(written) == 0 {
		return
	}
	stale, err := c.cfg.CacheSync(cached, written)
	if err != nil {
		if errors.Is(err, mediator.ErrUnknownSession) {
			c.dropLease()
		}
		return
	}
	c.cohMu.Lock()
	for _, name := range written {
		delete(c.written, name)
	}
	c.cohMu.Unlock()
	if c.cache == nil {
		return // nothing cached locally to adopt or invalidate
	}
	for _, co := range stale {
		if wrote[co.Name] {
			c.adoptGen(co.Name, co.Gen)
			continue
		}
		c.invalidateObject(co.Name, co.Gen)
	}
}

// adoptGen records that this client's cached image of the object
// reflects the given write generation (it minted it).
func (c *Client) adoptGen(name string, gen uint64) {
	o := c.cache.Open(name)
	o.AdoptGen(gen)
	o.Close()
}

// invalidateObject drops the cached image of an object another client
// wrote, then refreshes open files' sizes — a reader that kept the
// pre-write size would clamp reads short of the new bytes.
func (c *Client) invalidateObject(name string, gen uint64) {
	handled := false
	for _, f := range c.openFiles() {
		if f.name == name {
			f.invalidateCoherent(gen)
			handled = true
		}
	}
	if !handled {
		// No open file: leftover blocks (a closed file's parked dirty
		// data included) just drop — the other writer's bytes win.
		o := c.cache.Open(name)
		o.InvalidateAll(gen)
		o.Close()
		return
	}
	sz, err := c.Stat(name)
	if err != nil {
		return // next open or stat re-learns the size
	}
	for _, f := range c.openFiles() {
		if f.name != name {
			continue
		}
		f.mu.Lock()
		if !f.closed {
			f.size = sz
			if f.pos > sz {
				f.pos = sz
			}
		}
		f.mu.Unlock()
	}
}

// dropLease handles ErrUnknownSession from a coherence round: the lease
// is gone. Every open file flushes its dirty extents out (best effort)
// and drops its clean image, so nothing stale survives into whatever
// session comes next.
func (c *Client) dropLease() {
	for _, f := range c.openFiles() {
		f.invalidateCoherent(0)
	}
}

// invalidateCoherent drops the file's cached image after a coherence
// event: dirty extents flush first (this client's unflushed writes still
// beat the invalidation; silently losing them would be worse than one
// extra round-trip), then every block drops and the next read
// re-fetches fresh bytes.
func (f *File) invalidateCoherent(gen uint64) {
	sp := f.c.startSpan(obs.SpanContext{}, "invalidate")
	defer sp.Finish()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.cobj == nil {
		return
	}
	if err := f.flushAllLocked(sp); err != nil {
		// The flush error re-parks for the next write or Sync; the
		// invalidation still proceeds — remaining dirty blocks drop, and
		// correctness defers to the agents' (newer) bytes.
		f.c.cfg.Logf("core: coherence flush %s: %v", f.name, err)
		f.cobj.FlushFail(err)
	}
	f.cobj.InvalidateAll(gen)
}
