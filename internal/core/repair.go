package core

import (
	"fmt"

	"swift/internal/integrity"
	"swift/internal/obs"
	"swift/internal/wire"
)

// This file implements read-repair: when a storage agent reports at-rest
// corruption (an integrity.CorruptError surfaced through the wire as a
// TError), the client reconstructs the damaged stripe units from the
// surviving agents' units and parity, writes the recovered bytes back to
// the corrupt agent, and retries the original operation against clean
// data. Corruption is deliberately NOT fed into the failure-domain
// lifecycle: the agent is alive and answering — only its media is bad —
// so demoting it would trade a repairable fragment for a degraded stripe.

// noteCorrupt records a corruption report attributed to agent i.
func (f *File) noteCorrupt(i int, err error) {
	f.c.metrics.Corruptions.Add(1)
	if i >= 0 {
		f.c.tel.agent(i).corruptions.Inc()
	}
	f.c.traceEvent("corrupt", i, "%s: %v", f.name, err)
	f.c.cfg.Logf("core: corruption reported by agent %d: %s: %v", i, f.name, err)
}

// noteUnrepairable records a corruption event that parity could not mask.
func (f *File) noteUnrepairable(i int, err error) {
	f.c.metrics.Unrepairable.Add(1)
	f.c.traceEvent("unrepairable", i, "%s: %v", f.name, err)
	f.c.cfg.Logf("core: unrepairable corruption on agent %d: %s: %v", i, f.name, err)
}

// repairCorrupt rewrites the stripe rows of agent i's fragment implicated
// by the corruption error cerr, reconstructing each row's unit through
// the erasure codec from the surviving agents' units (data and parity
// alike). The logical operation range [off, off+n) bounds the rows
// repaired when the error does not carry a parseable corrupt range. f.mu
// must be held.
//
// Reconstruction is sound as long as the corrupt unit plus the dead
// agents stay within the codec's correction power: with k parity units,
// up to k-1 agents may be out while agent i's media is repaired. Callers
// fall back to degraded-mode failover when repair is refused.
func (f *File) repairCorrupt(i int, cerr error, off, n int64, sp *obs.Span) error {
	if !f.c.cfg.Parity {
		return fmt.Errorf("core: repair agent %d: parity disabled", i)
	}
	if i < 0 || i >= len(f.sessions) || f.sessions[i] == nil {
		return fmt.Errorf("core: repair: no session to agent %d", i)
	}
	out := 1 // agent i's corrupt unit is excluded from reconstruction
	for j, s := range f.sessions {
		if j != i && s == nil {
			out++
		}
	}
	if k := f.c.parityK(); out > k {
		return fmt.Errorf("core: repair agent %d: %d units unavailable, scheme tolerates %d", i, out, k)
	}
	r0, r1 := f.corruptRows(cerr, off, n)
	if r1 < r0 {
		return fmt.Errorf("core: repair agent %d: no rows implicated", i)
	}
	for r := r0; r <= r1; r++ {
		unit, err := f.reconstructUnit(i, r)
		if err != nil {
			return fmt.Errorf("core: repair agent %d row %d: reconstruct: %w", i, r, err)
		}
		if err := f.writeRowUnit(i, r, unit, sp); err != nil {
			return fmt.Errorf("core: repair agent %d row %d: %w", i, r, err)
		}
		f.c.metrics.Repairs.Add(1)
		f.c.tel.agent(i).repairs.Inc()
		f.c.traceEvent("repair", i, "%s row %d rewritten from parity", f.name, r)
		sp.Annotate("row %d rewritten from parity", r)
		f.c.cfg.Logf("core: repaired %s row %d on agent %d from parity", f.name, r, i)
	}
	return nil
}

// corruptRows maps a corruption error to the inclusive stripe-row range to
// repair. Preferred source is the error's own corrupt range — the agent
// reports fragment-local byte offsets, and a fragment's row index equals
// the stripe row index (every agent holds exactly one unit per row, at
// local offset row*Unit). When the error does not parse, fall back to the
// rows touched by the logical operation range [off, off+n).
func (f *File) corruptRows(cerr error, off, n int64) (r0, r1 int64) {
	l := f.c.layout
	if ce, ok := integrity.ParseCorrupt(cerr.Error()); ok && ce.Length > 0 {
		return ce.Offset / l.Unit, (ce.Offset + ce.Length - 1) / l.Unit
	}
	if n <= 0 {
		n = 1
	}
	return l.RowOfGlobal(off), l.RowOfGlobal(off + n - 1)
}

// writeRowUnit overwrites agent i's unit of stripe row r with unit
// (l.Unit bytes), then trims the fragment back to its expected size when
// the full-unit write extended it past the logical tail. The write covers
// whole integrity blocks (Unit is a multiple of the envelope block size),
// so it lands even when the old block contents are corrupt.
func (f *File) writeRowUnit(i int, r int64, unit []byte, sp *obs.Span) error {
	s := f.sessions[i]
	if s == nil {
		return fmt.Errorf("core: no session to agent %d", i)
	}
	l := f.c.layout
	lo := r * l.Unit
	err := f.runWriteBursts(s, []span{{lo: lo, n: l.Unit}}, func(localOff int64, out []byte) {
		copy(out, unit[localOff-lo:])
	}, sp)
	if err != nil {
		return err
	}
	want := l.FragmentSizes(f.size)[i]
	if lo+l.Unit <= want {
		return nil
	}
	reqID := f.c.nextReq()
	reply, err := f.c.rpc(s.conn, s.dataAddr, &wire.Packet{
		Header: wire.Header{Type: wire.TTrunc, ReqID: reqID, Handle: s.handle, Offset: want},
		Trace:  sp.Context(),
	}, reqID)
	if err != nil {
		return fmt.Errorf("repair trim: %w", err)
	}
	if reply.Type != wire.TTruncReply {
		return fmt.Errorf("unexpected %v to repair trim", reply.Type)
	}
	return nil
}

// repairBudget bounds the read-repair retry loop for one operation: each
// repaired attempt fixes at least one reported corrupt range, so at most
// every unit the operation touches (plus slack for the parity units of
// those rows) can need one pass. The bound exists to guarantee progress
// if an agent keeps re-reporting corruption on freshly repaired blocks.
func (f *File) repairBudget(off, n int64) int {
	if n <= 0 {
		n = 1
	}
	l := f.c.layout
	rows := l.RowOfGlobal(off+n-1) - l.RowOfGlobal(off) + 1
	return int(rows)*len(f.sessions) + 4
}
