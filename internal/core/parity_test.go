package core

import (
	"bytes"
	"testing"

	"swift/internal/parity"
	"swift/internal/transport"
	"swift/internal/transport/memnet"
)

// memnetTestHost returns a throwaway host for config-validation tests.
func memnetTestHost(t *testing.T) transport.Host {
	t.Helper()
	n := memnet.New(1)
	t.Cleanup(n.Close)
	seg := n.NewSegment("s", memnet.SegmentConfig{BandwidthBps: 1e9})
	return n.MustHost("h", memnet.HostConfig{}, seg)
}

func TestParityRoundTrip(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 4, parity: true, unit: 2048})
	f, err := c.client.Open("obj", OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	data := randBytes(50_000, 20)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := make([]byte, len(data))
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("parity round trip mismatch")
	}
}

func TestParityUnitsAreConsistent(t *testing.T) {
	// Verify on the agents' stores that each row's parity unit equals
	// the XOR of its data units.
	const unit = 1024
	c := newCluster(t, clusterOpts{agents: 3, parity: true, unit: unit})
	f, _ := c.client.Open("obj", OpenFlags{Create: true})
	defer f.Close()
	data := randBytes(3*unit*2+777, 21) // a few rows plus a partial tail
	f.WriteAt(data, 0)

	l := c.client.Layout()
	lastRow := l.RowOfGlobal(int64(len(data)) - 1)
	for row := int64(0); row <= lastRow; row++ {
		var units [][]byte
		var pbuf []byte
		for a := 0; a < 3; a++ {
			obj, err := c.stores[a].Open("obj", false)
			if err != nil {
				t.Fatalf("agent %d: %v", a, err)
			}
			buf := make([]byte, unit)
			obj.ReadAt(buf, row*unit) // zero-padded tail is fine
			obj.Close()
			if a == l.ParityAgent(row) {
				pbuf = buf
			} else {
				units = append(units, buf)
			}
		}
		if err := parity.Check(pbuf, units); err != nil {
			t.Fatalf("row %d: %v", row, err)
		}
	}
}

func TestDegradedRead(t *testing.T) {
	for dead := 0; dead < 4; dead++ {
		c := newCluster(t, clusterOpts{agents: 4, parity: true, unit: 2048})
		f, _ := c.client.Open("obj", OpenFlags{Create: true})
		data := randBytes(60_000, 22)
		f.WriteAt(data, 0)
		f.Close()

		// Kill one agent, then reopen and read everything.
		c.agents[dead].Close()
		c.client.MarkDown(dead, true)
		g, err := c.client.Open("obj", OpenFlags{})
		if err != nil {
			t.Fatalf("dead=%d: degraded open: %v", dead, err)
		}
		if g.Size() != int64(len(data)) {
			// The failed agent may have held the tail; the size can
			// understate, but never overstate.
			if g.Size() > int64(len(data)) {
				t.Fatalf("dead=%d: degraded size %d > real %d", dead, g.Size(), len(data))
			}
		}
		out := make([]byte, len(data))
		if err := g.readRange(out, 0, true, nil); err != nil {
			t.Fatalf("dead=%d: degraded read: %v", dead, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("dead=%d: degraded read mismatch", dead)
		}
		g.Close()
	}
}

func TestDegradedWriteThenRead(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 4, parity: true, unit: 2048})
	f, _ := c.client.Open("obj", OpenFlags{Create: true})
	data := randBytes(40_000, 23)
	f.WriteAt(data, 0)
	f.Close()

	// Agent 1 dies; overwrite a region in degraded mode.
	c.agents[1].Close()
	c.client.MarkDown(1, true)
	g, err := c.client.Open("obj", OpenFlags{})
	if err != nil {
		t.Fatalf("degraded open: %v", err)
	}
	patch := randBytes(10_000, 24)
	if _, err := g.WriteAt(patch, 5_000); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	copy(data[5_000:], patch)
	out := make([]byte, len(data))
	if err := g.readRange(out, 0, true, nil); err != nil {
		t.Fatalf("degraded read-back: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("degraded write mismatch")
	}
	g.Close()
}

func TestMidOperationFailover(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 4, parity: true, unit: 2048})
	f, _ := c.client.Open("obj", OpenFlags{Create: true})
	defer f.Close()
	data := randBytes(50_000, 25)
	f.WriteAt(data, 0)

	// Agent dies while the file is open: the next read discovers the
	// failure through retry exhaustion and fails over to degraded mode.
	c.agents[2].Close()
	out := make([]byte, len(data))
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("failover read: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("failover read mismatch")
	}
	// One attributable error moves the agent into the failure-domain
	// lifecycle (suspect on first strike; the monitor or a second strike
	// takes it down).
	if st := c.client.Health()[2].State; st == StateHealthy {
		t.Fatalf("agent 2 still %v after failover", st)
	}
	if c.client.Health()[2].Failures == 0 {
		t.Fatal("agent 2 failure count not recorded")
	}
}

func TestRebuild(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 4, parity: true, unit: 2048})
	f, _ := c.client.Open("obj", OpenFlags{Create: true})
	data := randBytes(45_000, 26)
	f.WriteAt(data, 0)
	f.Close()

	// Lose agent 3's fragment entirely (simulates disk replacement).
	if err := c.stores[3].Remove("obj"); err != nil {
		t.Fatalf("remove fragment: %v", err)
	}

	// Rebuild it from the survivors.
	g, err := c.client.Open("obj", OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("open for rebuild: %v", err)
	}
	if err := g.Rebuild(3); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	g.Close()

	// The rebuilt fragment matches what striping expects.
	want := c.client.Layout().FragmentSizes(int64(len(data)))[3]
	got, err := c.stores[3].Stat("obj")
	if err != nil {
		t.Fatalf("stat rebuilt: %v", err)
	}
	if got != want {
		t.Fatalf("rebuilt fragment size = %d, want %d", got, want)
	}

	// And a healthy read returns the original data.
	h, _ := c.client.Open("obj", OpenFlags{})
	defer h.Close()
	out := make([]byte, len(data))
	if _, err := h.ReadAt(out, 0); err != nil {
		t.Fatalf("read after rebuild: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("rebuild mismatch")
	}
}

func TestScrubDetectsAndRepairsCorruption(t *testing.T) {
	const unit = 1024
	c := newCluster(t, clusterOpts{agents: 4, parity: true, unit: unit})
	f, _ := c.client.Open("scrub", OpenFlags{Create: true})
	defer f.Close()
	data := randBytes(20_000, 95)
	f.WriteAt(data, 0)

	// A clean file scrubs clean.
	bad, err := f.VerifyParity()
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(bad) != 0 {
		t.Fatalf("clean file reported bad rows %v", bad)
	}

	// Corrupt one byte of agent 2's fragment in row 3 (bit rot).
	l := c.client.Layout()
	row := int64(3)
	obj, err := c.stores[2].Open("scrub", false)
	if err != nil {
		t.Fatal(err)
	}
	evil := []byte{0xFF}
	if _, err := obj.WriteAt(evil, row*unit+17); err != nil {
		t.Fatal(err)
	}
	obj.Close()

	bad, err = f.VerifyParity()
	if err != nil {
		t.Fatalf("verify after corruption: %v", err)
	}
	if len(bad) != 1 || bad[0] != row {
		t.Fatalf("bad rows = %v, want [%d]", bad, row)
	}

	// If agent 2 held the parity unit of that row, RepairRow restores
	// consistency from the data; otherwise recompute parity to match
	// the (now-corrupt) data — either way the row scrubs clean after.
	if err := f.RepairRow(row); err != nil {
		t.Fatalf("repair: %v", err)
	}
	bad, err = f.VerifyParity()
	if err != nil {
		t.Fatalf("verify after repair: %v", err)
	}
	if len(bad) != 0 {
		t.Fatalf("rows still bad after repair: %v", bad)
	}
	_ = l
}

func TestScrubRequiresParity(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 3})
	f, _ := c.client.Open("noparity", OpenFlags{Create: true})
	defer f.Close()
	if _, err := f.VerifyParity(); err == nil {
		t.Fatal("scrub without parity succeeded")
	}
}

func TestParityRequiresThreeAgents(t *testing.T) {
	n := memnetTestHost(t)
	_, err := Dial(Config{Host: n, Agents: []string{"a:1", "b:1"}, Parity: true})
	if err == nil {
		t.Fatal("expected error for parity with 2 agents")
	}
}
