package core

import (
	"bytes"
	"errors"
	"testing"

	"swift/internal/integrity"
)

// The read-repair / degraded-read matrix. Every test builds a cluster
// whose agent stores sit beneath an integrity envelope, seeds at-rest
// corruption by flipping raw bytes under the envelope, and asserts the
// three guarantees of the integrity subsystem:
//
//   - corrupt bytes are never served: reads either return the exact
//     written data (after transparent repair) or a corrupt error;
//   - with parity and a full complement of live agents, repair is
//     automatic and persistent;
//   - when redundancy cannot cover the damage (no parity, a second
//     impairment), the corruption surfaces as an error, and the
//     unrepairable counter records it.

const repairBS = 4096 // envelope block size used throughout

// physOf maps a fragment-local logical offset to the raw physical offset
// of that byte beneath an integrity envelope with block size bs.
func physOf(localOff, bs int64) int64 {
	return (localOff/bs)*(bs+integrity.HeaderSize) + integrity.HeaderSize + localOff%bs
}

// flipRaw XORs one raw byte of agent ai's fragment of name, beneath the
// integrity envelope, at fragment-local logical offset localOff.
func flipRaw(t *testing.T, c *cluster, ai int, name string, localOff int64) {
	t.Helper()
	obj, err := c.stores[ai].Open(name, false)
	if err != nil {
		t.Fatalf("flip: open raw %q on agent %d: %v", name, ai, err)
	}
	defer obj.Close()
	var b [1]byte
	phys := physOf(localOff, repairBS)
	if _, err := obj.ReadAt(b[:], phys); err != nil {
		t.Fatalf("flip: read raw byte on agent %d: %v", ai, err)
	}
	b[0] ^= 0xA5
	if _, err := obj.WriteAt(b[:], phys); err != nil {
		t.Fatalf("flip: write raw byte on agent %d: %v", ai, err)
	}
}

func writeObj(t *testing.T, c *cluster, name string, n int, seed int64) (*File, []byte) {
	t.Helper()
	f, err := c.client.Open(name, OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	data := randBytes(n, seed)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	return f, data
}

// TestReadRepairHealsCorruptUnit: a single rotten data unit under parity
// is detected, never served, repaired in place, and stays repaired.
func TestReadRepairHealsCorruptUnit(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 4, parity: true, integrityBS: repairBS})
	f, data := writeObj(t, c, "obj", 100_000, 1)
	defer f.Close()

	// Agent 1's row-0 unit is data (ParityAgent(0) = 3).
	flipRaw(t, c, 1, "obj", 137)

	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("read over corruption: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read served corrupt bytes")
	}
	m := c.client.MetricsSnapshot()
	if m.Corruptions == 0 {
		t.Fatal("corruption not detected")
	}
	if m.Repairs == 0 {
		t.Fatal("no repair performed")
	}
	if m.Unrepairable != 0 {
		t.Fatalf("unrepairable = %d, want 0", m.Unrepairable)
	}

	// The repair is persistent: a fresh read touches clean media.
	before := c.client.MetricsSnapshot()
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("post-repair read: %v", err)
	}
	if d := c.client.MetricsSnapshot().Sub(before); d.Corruptions != 0 {
		t.Fatalf("repair did not persist: %d fresh corruptions", d.Corruptions)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("post-repair read mismatch")
	}
}

// TestReadCorruptNoParity: without parity there is nothing to repair
// from — the read must fail with a corrupt error, never return rot.
func TestReadCorruptNoParity(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 3, parity: false, integrityBS: repairBS})
	f, data := writeObj(t, c, "obj", 60_000, 2)
	defer f.Close()

	flipRaw(t, c, 0, "obj", 137)

	got := make([]byte, len(data))
	_, err := f.ReadAt(got, 0)
	if err == nil {
		t.Fatal("read of corrupt data succeeded without parity")
	}
	if !integrity.IsCorrupt(err) {
		t.Fatalf("error is not a corruption report: %v", err)
	}
	m := c.client.MetricsSnapshot()
	if m.Corruptions == 0 {
		t.Fatal("corruption not detected")
	}
	if m.Unrepairable == 0 {
		t.Fatal("unrepairable corruption not counted")
	}
	if m.Repairs != 0 {
		t.Fatalf("repairs = %d without parity", m.Repairs)
	}
}

// TestReadCorruptAgentDown: corruption on one agent while another is
// already down exceeds single-parity redundancy. The read must error —
// quorum loss or a corruption report, never silent rot.
func TestReadCorruptAgentDown(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 4, parity: true, integrityBS: repairBS})
	// Stage the object while all agents are up.
	f0, data := writeObj(t, c, "obj", 100_000, 3)
	f0.Close()

	// Take agent 3 down, then open degraded.
	c.agents[3].Close()
	c.client.MarkDown(3, true)
	f, err := c.client.Open("obj", OpenFlags{})
	if err != nil {
		t.Fatalf("degraded open: %v", err)
	}
	defer f.Close()

	// Degraded reads work while media is clean.
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read mismatch")
	}

	// Now rot a data unit on a live agent: two impairments, one parity.
	flipRaw(t, c, 0, "obj", 137)
	_, err = f.ReadAt(got, 0)
	if err == nil {
		t.Fatal("read served corrupt bytes with an agent down")
	}
	if !errors.Is(err, ErrNoQuorum) && !integrity.IsCorrupt(err) {
		t.Fatalf("unexpected error class: %v", err)
	}
	if m := c.client.MetricsSnapshot(); m.Corruptions == 0 {
		t.Fatal("corruption not detected")
	}
}

// TestWriteRepairsCorruptBlock: a partial write whose merge-read hits a
// corrupt block triggers write-path repair, then completes; the final
// content is byte-exact.
func TestWriteRepairsCorruptBlock(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 4, parity: true, integrityBS: repairBS})
	f, data := writeObj(t, c, "obj", 100_000, 4)
	defer f.Close()

	flipRaw(t, c, 1, "obj", 137)

	// A small unaligned write into agent 1's corrupt block: the agent's
	// merge-read reports the rot, the client repairs the row from parity
	// and retries.
	g, ok := f.c.layout.GlobalOf(1, 200)
	if !ok {
		t.Fatal("agent 1 local 200 is a parity offset?")
	}
	patch := []byte("0123456789")
	if _, err := f.WriteAt(patch, g); err != nil {
		t.Fatalf("write over corruption: %v", err)
	}
	copy(data[g:], patch)

	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content mismatch after write-path repair")
	}
	m := c.client.MetricsSnapshot()
	if m.Corruptions == 0 || m.Repairs == 0 {
		t.Fatalf("corruptions=%d repairs=%d, want both > 0", m.Corruptions, m.Repairs)
	}
	if m.Unrepairable != 0 {
		t.Fatalf("unrepairable = %d, want 0", m.Unrepairable)
	}
}

// TestScrubHealsParityUnit: rot in a parity unit is invisible to reads;
// only the scrubber finds and repairs it.
func TestScrubHealsParityUnit(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 4, parity: true, integrityBS: repairBS})
	f, data := writeObj(t, c, "obj", 100_000, 5)
	defer f.Close()

	// Row 0's parity unit lives on agent 3 at local [0, Unit).
	flipRaw(t, c, 3, "obj", 137)

	// Reads never touch parity on the healthy path.
	before := c.client.MetricsSnapshot()
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read mismatch")
	}
	if d := c.client.MetricsSnapshot().Sub(before); d.Corruptions != 0 {
		t.Fatalf("healthy read touched parity: %d corruptions", d.Corruptions)
	}

	rep, err := f.Scrub(ScrubOptions{Repair: true})
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.Corruptions != 1 || rep.Repaired != 1 || rep.Unrepairable != 0 {
		t.Fatalf("scrub report: %s", rep)
	}
	verify, err := f.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatalf("verification scrub: %v", err)
	}
	if !verify.Clean() {
		t.Fatalf("verification scrub not clean: %s", verify)
	}
}

// TestScrubRecomputesStaleParity: a parity unit with a valid checksum
// but stale content (the crash-between-data-and-parity-writes case) is
// caught by the scrubber's XOR audit and recomputed from data.
func TestScrubRecomputesStaleParity(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 4, parity: true, integrityBS: repairBS})
	f, data := writeObj(t, c, "obj", 100_000, 6)
	defer f.Close()

	// Rewrite agent 3's row-0 parity unit through a fresh envelope over
	// the same raw store: valid checksum, wrong parity.
	ist := integrity.NewStore(c.stores[3], repairBS)
	obj, err := ist.Open("obj", false)
	if err != nil {
		t.Fatalf("open via envelope: %v", err)
	}
	junk := randBytes(64, 99)
	if _, err := obj.WriteAt(junk, 100); err != nil {
		t.Fatalf("stale-parity write: %v", err)
	}
	obj.Close()

	rep, err := f.Scrub(ScrubOptions{Repair: true})
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.Corruptions != 0 || rep.ParityMismatches != 1 || rep.Repaired != 1 {
		t.Fatalf("scrub report: %s", rep)
	}
	verify, err := f.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatalf("verification scrub: %v", err)
	}
	if !verify.Clean() {
		t.Fatalf("verification scrub not clean: %s", verify)
	}

	// Data was never at risk.
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read mismatch")
	}
}

// TestScrubDoubleCorruptionUnrepairable: two rotten units in the same
// stripe row exceed single parity. The scrubber reports them
// unrepairable, and reads of the row fail with a corruption error.
func TestScrubDoubleCorruptionUnrepairable(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 4, parity: true, integrityBS: repairBS})
	f, data := writeObj(t, c, "obj", 100_000, 7)
	defer f.Close()

	// Both flips land in row 0 (agents 0 and 1 hold data there).
	flipRaw(t, c, 0, "obj", 137)
	flipRaw(t, c, 1, "obj", 2048)

	rep, err := f.Scrub(ScrubOptions{Repair: true})
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.Unrepairable != 2 {
		t.Fatalf("unrepairable = %d, want 2 (report: %s)", rep.Unrepairable, rep)
	}
	if rep.Repaired != 0 {
		t.Fatalf("repaired = %d units of an unrepairable row", rep.Repaired)
	}

	got := make([]byte, len(data))
	_, err = f.ReadAt(got, 0)
	if err == nil {
		t.Fatal("read served a doubly-corrupt row")
	}
	if !integrity.IsCorrupt(err) && !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("unexpected error class: %v", err)
	}
	if m := c.client.MetricsSnapshot(); m.Unrepairable == 0 {
		t.Fatal("unrepairable corruption not counted")
	}
}
