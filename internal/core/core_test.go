package core

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"swift/internal/agent"
	"swift/internal/integrity"
	"swift/internal/store"
	"swift/internal/transport/memnet"
)

// cluster is a test harness: one client and n agents on a fast memnet
// segment.
type cluster struct {
	net    *memnet.Net
	seg    *memnet.Segment
	client *Client
	agents []*agent.Agent
	stores []*store.Mem
	hosts  []*memnet.Host
}

type clusterOpts struct {
	agents       int
	parity       bool
	parityShards int // number of parity units per row (implies parity when > 0)
	unit         int64
	loss         float64
	syncW        bool
	window       int
	reqBytes     int64

	// integrityBS wraps each agent's store in an integrity envelope with
	// the given block size. c.stores keeps the raw inner Mems, so tests
	// can corrupt bytes beneath the envelope.
	integrityBS int64
}

func newCluster(t *testing.T, o clusterOpts) *cluster {
	t.Helper()
	if o.agents == 0 {
		o.agents = 3
	}
	if o.unit == 0 {
		o.unit = 4096
	}
	n := memnet.New(1)
	seg := n.NewSegment("lab", memnet.SegmentConfig{
		BandwidthBps:  1e10, // effectively instant: tests exercise logic, not timing
		FrameOverhead: 46,
		LossRate:      o.loss,
		Seed:          7,
	})
	c := &cluster{net: n, seg: seg}
	addrs := make([]string, o.agents)
	for i := 0; i < o.agents; i++ {
		h := n.MustHost(agentName(i), memnet.HostConfig{}, seg)
		st := store.NewMem()
		var as store.Store = st
		if o.integrityBS > 0 {
			as = integrity.NewStore(st, o.integrityBS)
		}
		a, err := agent.New(h, as, agent.Config{
			ResendCheck: 5 * time.Millisecond,
			ResendAfter: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
		c.agents = append(c.agents, a)
		c.stores = append(c.stores, st)
		c.hosts = append(c.hosts, h)
		addrs[i] = a.Addr()
	}
	ch := n.MustHost("client", memnet.HostConfig{}, seg)
	cl, err := Dial(Config{
		Host:         ch,
		Agents:       addrs,
		Unit:         o.unit,
		Parity:       o.parity,
		ParityShards: o.parityShards,
		SyncWrites:   o.syncW,
		WriteWindow:  o.window,
		RequestBytes: o.reqBytes,
		RetryTimeout: 30 * time.Millisecond,
		MaxRetries:   100,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c.client = cl
	t.Cleanup(func() {
		cl.Close()
		for _, a := range c.agents {
			a.Close()
		}
		n.Close()
	})
	return c
}

func agentName(i int) string { return string(rune('a'+i)) + "gent" }

func randBytes(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	f, err := c.client.Open("obj", OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()

	data := randBytes(100_000, 1)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := f.Size(); got != int64(len(data)) {
		t.Fatalf("size = %d, want %d", got, len(data))
	}
	out := make([]byte, len(data))
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestUnalignedOffsets(t *testing.T) {
	c := newCluster(t, clusterOpts{unit: 1000})
	f, err := c.client.Open("obj", OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()

	data := randBytes(37_501, 2)
	if _, err := f.WriteAt(data, 317); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Head hole reads as zeros.
	out := make([]byte, 317+len(data))
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("read: %v", err)
	}
	for i := 0; i < 317; i++ {
		if out[i] != 0 {
			t.Fatalf("hole byte %d = %#x, want 0", i, out[i])
		}
	}
	if !bytes.Equal(out[317:], data) {
		t.Fatal("payload mismatch")
	}
	// Interior slice.
	slice := make([]byte, 999)
	if _, err := f.ReadAt(slice, 5000); err != nil {
		t.Fatalf("read slice: %v", err)
	}
	if !bytes.Equal(slice, out[5000:5999]) {
		t.Fatal("interior slice mismatch")
	}
}

func TestSequentialReadWriteSeek(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	f, err := c.client.Open("obj", OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()

	chunk := randBytes(10_000, 3)
	for i := 0; i < 5; i++ {
		if _, err := f.Write(chunk); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if pos, _ := f.Seek(0, io.SeekStart); pos != 0 {
		t.Fatalf("seek = %d", pos)
	}
	got := make([]byte, 10_000)
	for i := 0; i < 5; i++ {
		if _, err := io.ReadFull(f, got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, chunk) {
			t.Fatalf("chunk %d mismatch", i)
		}
	}
	if _, err := f.Read(got); err != io.EOF {
		t.Fatalf("read at EOF = %v, want io.EOF", err)
	}
	// SeekEnd.
	if pos, _ := f.Seek(-10, io.SeekEnd); pos != 49_990 {
		t.Fatalf("seek end = %d", pos)
	}
	n, err := f.Read(got)
	if n != 10 || (err != nil && err != io.EOF) {
		t.Fatalf("tail read = %d, %v", n, err)
	}
}

func TestOverwrite(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	f, err := c.client.Open("obj", OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	a := randBytes(50_000, 4)
	b := randBytes(20_000, 5)
	f.WriteAt(a, 0)
	f.WriteAt(b, 10_000)
	copy(a[10_000:], b)
	out := make([]byte, len(a))
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(out, a) {
		t.Fatal("overwrite mismatch")
	}
}

func TestPersistenceAcrossOpens(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	data := randBytes(64_000, 6)
	f, err := c.client.Open("obj", OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f.WriteAt(data, 0)
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	g, err := c.client.Open("obj", OpenFlags{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer g.Close()
	if g.Size() != int64(len(data)) {
		t.Fatalf("size after reopen = %d, want %d", g.Size(), len(data))
	}
	out := make([]byte, len(data))
	if _, err := g.ReadAt(out, 0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("reopen mismatch")
	}
}

func TestStatRemove(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	f, _ := c.client.Open("obj", OpenFlags{Create: true})
	f.WriteAt(randBytes(12_345, 7), 0)
	f.Close()

	size, err := c.client.Stat("obj")
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if size != 12_345 {
		t.Fatalf("stat size = %d, want 12345", size)
	}
	if err := c.client.Remove("obj"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := c.client.Stat("obj"); err == nil {
		t.Fatal("stat after remove succeeded")
	}
	if _, err := c.client.Open("obj", OpenFlags{}); err == nil {
		t.Fatal("open after remove succeeded")
	}
}

func TestTruncate(t *testing.T) {
	c := newCluster(t, clusterOpts{unit: 1024})
	f, _ := c.client.Open("obj", OpenFlags{Create: true})
	defer f.Close()
	data := randBytes(30_000, 8)
	f.WriteAt(data, 0)
	if err := f.Truncate(10_000); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if f.Size() != 10_000 {
		t.Fatalf("size = %d", f.Size())
	}
	out := make([]byte, 20_000)
	n, err := f.ReadAt(out, 0)
	if err != io.EOF || n != 10_000 {
		t.Fatalf("read = %d, %v; want 10000, EOF", n, err)
	}
	if !bytes.Equal(out[:n], data[:n]) {
		t.Fatal("truncated content mismatch")
	}
	// Reopen agrees.
	f.Close()
	g, err := c.client.Open("obj", OpenFlags{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer g.Close()
	if g.Size() != 10_000 {
		t.Fatalf("reopened size = %d", g.Size())
	}
}

func TestLossyNetworkRoundTrip(t *testing.T) {
	c := newCluster(t, clusterOpts{loss: 0.03})
	f, err := c.client.Open("obj", OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	data := randBytes(200_000, 9)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("write under loss: %v", err)
	}
	out := make([]byte, len(data))
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("read under loss: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("lossy round trip mismatch")
	}
}

func TestSyncWrites(t *testing.T) {
	c := newCluster(t, clusterOpts{syncW: true})
	f, err := c.client.Open("obj", OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	if _, err := f.WriteAt(randBytes(20_000, 10), 0); err != nil {
		t.Fatalf("sync write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

func TestManyFilesConcurrently(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	const nf = 8
	errs := make(chan error, nf)
	for i := 0; i < nf; i++ {
		go func(i int) {
			name := "obj" + string(rune('0'+i))
			data := randBytes(30_000, int64(100+i))
			f, err := c.client.Open(name, OpenFlags{Create: true})
			if err != nil {
				errs <- err
				return
			}
			defer f.Close()
			if _, err := f.WriteAt(data, 0); err != nil {
				errs <- err
				return
			}
			out := make([]byte, len(data))
			if _, err := f.ReadAt(out, 0); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(out, data) {
				errs <- io.ErrUnexpectedEOF
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < nf; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent file %d: %v", i, err)
		}
	}
}

func TestFragmentDistribution(t *testing.T) {
	// Data actually lands striped across the agents' stores.
	c := newCluster(t, clusterOpts{unit: 4096})
	f, _ := c.client.Open("obj", OpenFlags{Create: true})
	defer f.Close()
	f.WriteAt(randBytes(3*4096*4, 11), 0) // 4 full stripes over 3 agents
	for i, st := range c.stores {
		size, err := st.Stat("obj")
		if err != nil {
			t.Fatalf("agent %d has no fragment: %v", i, err)
		}
		if size != 4*4096 {
			t.Fatalf("agent %d fragment = %d, want %d", i, size, 4*4096)
		}
	}
}

func TestReorderedNetworkRoundTrip(t *testing.T) {
	// Datagram reordering: the protocol's offset-addressed packets and
	// extent bookkeeping tolerate out-of-order delivery.
	n := memnet.New(1)
	defer n.Close()
	seg := n.NewSegment("lab", memnet.SegmentConfig{
		BandwidthBps:  1e10,
		FrameOverhead: 46,
		ReorderRate:   0.1,
		ReorderDelay:  3 * time.Millisecond,
		Seed:          11,
	})
	addrs := make([]string, 3)
	var agents []*agent.Agent
	for i := 0; i < 3; i++ {
		h := n.MustHost(fmt.Sprintf("r%d", i), memnet.HostConfig{}, seg)
		a, err := agent.New(h, store.NewMem(), agent.Config{
			ResendCheck: 5 * time.Millisecond,
			ResendAfter: 15 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		agents = append(agents, a)
		addrs[i] = a.Addr()
	}
	ch := n.MustHost("rclient", memnet.HostConfig{}, seg)
	cl, err := Dial(Config{
		Host: ch, Agents: addrs, Unit: 4096,
		RetryTimeout: 40 * time.Millisecond, MaxRetries: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	f, err := cl.Open("reordered", OpenFlags{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := randBytes(150_000, 96)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("write under reordering: %v", err)
	}
	out := make([]byte, len(data))
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("read under reordering: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("reordered round trip mismatch")
	}
}
