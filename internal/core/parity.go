package core

import (
	"fmt"
	"sync"

	"swift/internal/extent"
	"swift/internal/integrity"
	"swift/internal/obs"
	"swift/internal/wire"
)

// This file is the engine's redundancy machinery: computing the k parity
// units of every written stripe row through the erasure codec
// (internal/ec), reconstructing missing units on the degraded read path,
// auditing rows (VerifyParity) and rebuilding whole fragments after an
// agent returns. At k=1 the codec is the legacy XOR computed copy —
// byte-identical placement and parity bytes — and at k>=2 it is a
// Reed–Solomon code tolerating up to k simultaneous failures per row.

// computeParity builds the parity units for every stripe row touched by a
// write of src at logical offset off. Rows only partially covered by the
// write are completed with a read-modify-write: the uncovered old bytes
// are fetched (degraded-tolerant) before the codec runs. Parity units
// always span the full striping unit; logical bytes past the object tail
// count as zeros. The result maps row -> k parity buffers in parity
// position order.
func (f *File) computeParity(src []byte, off int64, sp *obs.Span) (map[int64][][]byte, error) {
	l := f.c.layout
	m := l.DataPerRow()
	k := f.c.parityK()
	rb := l.RowBytes()
	end := off + int64(len(src))
	r0, r1 := l.RowOfGlobal(off), l.RowOfGlobal(end-1)

	pbufs := make(map[int64][][]byte, r1-r0+1)
	rowData := make([]byte, rb)
	shards := make([][]byte, m+k)
	for r := r0; r <= r1; r++ {
		rowOff := r * rb
		covLo, covHi := rowOff, rowOff+rb
		if covLo < off {
			covLo = off
		}
		if covHi > end {
			covHi = end
		}
		// Old data for the uncovered head and tail of the row
		// (clamped to the current size; beyond it everything is zero).
		for i := range rowData {
			rowData[i] = 0
		}
		if err := f.fillOldRow(rowData, rowOff, covLo, covHi, sp); err != nil {
			return nil, err
		}
		copy(rowData[covLo-rowOff:covHi-rowOff], src[covLo-off:covHi-off])

		for j := 0; j < m; j++ {
			shards[j] = rowData[int64(j)*l.Unit : int64(j+1)*l.Unit]
		}
		row := make([][]byte, k)
		for j := 0; j < k; j++ {
			row[j] = make([]byte, l.Unit)
			shards[m+j] = row[j]
		}
		if err := f.ecEncode(shards); err != nil {
			return nil, fmt.Errorf("core: encode row %d: %w", r, err)
		}
		pbufs[r] = row
	}
	return pbufs, nil
}

// fillOldRow reads the pre-write content of row bytes outside [covLo,
// covHi) into rowData (whose first byte is logical offset rowOff). The
// read is failover-capable: a write's read-modify-write must survive up
// to k agent failures (reading the old bytes degraded) or a mid-write
// crash would fail the whole write even though parity covers it.
func (f *File) fillOldRow(rowData []byte, rowOff, covLo, covHi int64, sp *obs.Span) error {
	rb := int64(len(rowData))
	read := func(lo, hi int64) error {
		if hi > f.size {
			hi = f.size // beyond the tail is zeros already
		}
		if lo >= hi {
			return nil
		}
		return f.readRange(rowData[lo-rowOff:hi-rowOff], lo, true, sp)
	}
	if err := read(rowOff, covLo); err != nil {
		return err
	}
	return read(covHi, rowOff+rb)
}

// readRowShards reads row r's units from every agent with a live session,
// except those listed in omit, and returns them in code order (data
// shards 0..m-1, parity shards m..m+k-1) with nil marking units that
// could not be read. Reads run in parallel.
//
// A per-agent read failure does not abort the row as long as at least m
// units survive: the failed unit becomes one more missing shard for the
// codec to correct, which is exactly what a second agent dying in the
// middle of an already-degraded read must look like, or a double failure
// under k=2 would error out of the reconstruct path instead of being
// masked. Attributable (non-media) failures are fed into the
// failure-domain lifecycle so the session is torn down at once — leaving
// it up would stall every later row for a full retry budget against a
// dead agent. Only when fewer than m units survive (more damage than any
// codec can cover) does the first error propagate.
func (f *File) readRowShards(r int64, omit func(agent int) bool) ([][]byte, error) {
	l := f.c.layout
	m := l.DataPerRow()
	shards := make([][]byte, m+f.c.parityK())
	type readFail struct {
		agent int
		err   error
	}
	var (
		mu    sync.Mutex
		wg    sync.WaitGroup
		fails []readFail
	)
	// Agents with an open circuit breaker are skipped — their unit becomes
	// one more missing shard — as long as enough candidates remain to
	// reach m units: a tripped straggler must not stall every
	// reconstruction for its whole cooldown. When shards are scarce the
	// breaker is overridden; slow beats unreadable.
	live := 0
	for i, s := range f.sessions {
		if s != nil && (omit == nil || !omit(i)) {
			live++
		}
	}
	for i, s := range f.sessions {
		if s == nil || (omit != nil && omit(i)) {
			continue
		}
		if !f.c.breakerAllow(i) && live-1 >= m {
			live--
			continue
		}
		pos := l.DataPos(r, i)
		if pos < 0 {
			pos = m + l.ParityPos(r, i)
		}
		wg.Add(1)
		go func(i int, s *agentSession, pos int) {
			defer wg.Done()
			buf := make([]byte, l.Unit)
			err := f.readBurst(s, r*l.Unit, l.Unit, func(localOff int64, b []byte) {
				copy(buf[localOff-r*l.Unit:], b)
			}, nil, false)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				fails = append(fails, readFail{agent: i, err: err})
				return
			}
			shards[pos] = buf
		}(i, s, pos)
	}
	wg.Wait()
	if len(fails) == 0 {
		return shards, nil
	}
	present := 0
	for _, sh := range shards {
		if sh != nil {
			present++
		}
	}
	if present < m {
		return nil, fails[0].err
	}
	for _, fl := range fails {
		if integrity.IsCorrupt(fl.err) {
			// Media damage, not a dead agent: keep the session in
			// service (read-repair and scrub heal it) and let the codec
			// route around the one bad unit.
			continue
		}
		if isOverloadSignal(fl.err) {
			// Backpressure (pushback, spent deadline): the agent is
			// healthy, the codec routes around the missing unit, and the
			// lifecycle stays untouched.
			continue
		}
		f.c.cfg.Logf("core: row %d read lost agent %d, reconstructing around it: %v",
			r, fl.agent, fl.err)
		f.failAgent(fl.agent, fl.err)
	}
	return shards, nil
}

// shardOfAgent returns the code-order shard index of the given agent in
// row r.
func (f *File) shardOfAgent(r int64, agent int) int {
	l := f.c.layout
	if j := l.DataPos(r, agent); j >= 0 {
		return j
	}
	return l.DataPerRow() + l.ParityPos(r, agent)
}

// reconstructRow reads the surviving units of row r (excluding agents for
// which omit returns true) and reconstructs the full row through the
// codec. It returns the shards in code order; every shard is non-nil on
// success. Reconstruction succeeds as long as at most k units are
// unavailable (dead sessions plus omitted agents).
func (f *File) reconstructRow(r int64, omit func(agent int) bool) ([][]byte, error) {
	shards, err := f.readRowShards(r, omit)
	if err != nil {
		return nil, err
	}
	if err := f.ecReconstruct(shards); err != nil {
		return nil, err
	}
	return shards, nil
}

// reconstructInto rebuilds the fragment extents of a failed agent from
// the surviving agents' units, placing the recovered logical bytes into
// dst (first byte = logical offset base). This is the degraded-mode read
// path of computed-copy redundancy; with k parity units it tolerates up
// to k simultaneous failures per row.
func (f *File) reconstructInto(dead int, es []extent.Extent, dst []byte, base int64) error {
	l := f.c.layout
	seen := make(map[int64]bool)
	for _, e := range es {
		for r := e.Off / l.Unit; r <= (e.End()-1)/l.Unit; r++ {
			if seen[r] {
				continue
			}
			seen[r] = true
			unit, err := f.reconstructUnit(dead, r)
			if err != nil {
				return err
			}
			// Place the requested portion(s) of this unit.
			uLo, uHi := r*l.Unit, (r+1)*l.Unit
			lo, hi := e.Off, e.End()
			if lo < uLo {
				lo = uLo
			}
			if hi > uHi {
				hi = uHi
			}
			if lo >= hi {
				continue
			}
			g, ok := l.GlobalOf(dead, lo)
			if !ok {
				continue // parity unit: not logical data
			}
			di := g - base
			if di < 0 || di >= int64(len(dst)) {
				continue
			}
			n := hi - lo
			if di+n > int64(len(dst)) {
				n = int64(len(dst)) - di
			}
			copy(dst[di:di+n], unit[lo-uLo:lo-uLo+n])
		}
	}
	return nil
}

// reconstructUnit rebuilds the unit of row r held by agent dead (data or
// parity alike) from the surviving agents' units through the codec.
func (f *File) reconstructUnit(dead int, r int64) ([]byte, error) {
	shards, err := f.reconstructRow(r, func(a int) bool { return a == dead })
	if err != nil {
		return nil, err
	}
	return shards[f.shardOfAgent(r, dead)], nil
}

// VerifyParity scrubs the file: for every stripe row it reads all units
// from all agents and checks that the parity units match the codec's
// encoding of the data units. It returns the rows that fail, in
// ascending order — the maintenance pass a Swift installation would run
// after crashes.
func (f *File) VerifyParity() ([]int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	if !f.c.cfg.Parity {
		return nil, fmt.Errorf("core: verify requires parity")
	}
	if f.liveCount() < len(f.sessions) {
		return nil, fmt.Errorf("core: verify requires all agents up")
	}
	if f.size == 0 {
		return nil, nil
	}
	l := f.c.layout
	var bad []int64
	lastRow := l.RowOfGlobal(f.size - 1)
	for r := int64(0); r <= lastRow; r++ {
		shards, err := f.readRowShards(r, nil)
		if err != nil {
			return nil, fmt.Errorf("core: verify row %d: %w", r, err)
		}
		ok, verr := f.c.codec.Verify(shards)
		if verr != nil {
			return nil, fmt.Errorf("core: verify row %d: %w", r, verr)
		}
		if !ok {
			bad = append(bad, r)
		}
	}
	return bad, nil
}

// RepairRow recomputes and rewrites the parity units of one row from its
// data units, fixing a scrub finding whose data is trusted.
func (f *File) RepairRow(r int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if !f.c.cfg.Parity {
		return fmt.Errorf("core: repair requires parity")
	}
	l := f.c.layout
	k := f.c.parityK()
	for j := 0; j < k; j++ {
		if pa := l.ParityAgentAt(r, j); pa >= len(f.sessions) || f.sessions[pa] == nil {
			return fmt.Errorf("core: repair: parity agent %d down", pa)
		}
	}
	// Read the data units and re-encode the row's parity.
	shards, err := f.readRowShards(r, func(a int) bool { return l.ParityPos(r, a) >= 0 })
	if err != nil {
		return err
	}
	m := l.DataPerRow()
	for j := 0; j < k; j++ {
		shards[m+j] = make([]byte, l.Unit)
	}
	if err := f.ecEncode(shards); err != nil {
		return fmt.Errorf("core: repair row %d: %w", r, err)
	}
	for j := 0; j < k; j++ {
		pa := l.ParityAgentAt(r, j)
		lo := l.ParityLocal(r)
		unit := shards[m+j]
		err := f.runWriteBursts(f.sessions[pa], []span{{lo: lo, n: l.Unit}}, func(localOff int64, out []byte) {
			copy(out, unit[localOff-lo:])
		}, nil)
		if err != nil {
			return err
		}
	}
	return nil
}

// Rebuild reconstructs every unit (data and parity) that agent idx should
// hold for this file and writes it back to that agent, then trims the
// fragment to its expected size. A session to the agent must exist; the
// health monitor performs this automatically on re-admission when
// MonitorConfig.Rebuild is set. With k >= 2 the rebuild succeeds even
// while other agents (up to k-1 of them) are still down.
func (f *File) Rebuild(idx int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	return f.rebuildLocked(idx)
}

// rebuildLocked is Rebuild with f.mu held (re-admission calls it before
// the fresh session becomes visible to reads).
func (f *File) rebuildLocked(idx int) error {
	if !f.c.cfg.Parity {
		return fmt.Errorf("core: rebuild requires parity")
	}
	if idx < 0 || idx >= len(f.sessions) || f.sessions[idx] == nil {
		return fmt.Errorf("core: rebuild: no session to agent %d", idx)
	}
	s := f.sessions[idx]
	l := f.c.layout
	if f.size == 0 {
		return nil
	}
	lastRow := l.RowOfGlobal(f.size - 1)
	for r := int64(0); r <= lastRow; r++ {
		unit, err := f.reconstructUnit(idx, r)
		if err != nil {
			return fmt.Errorf("core: rebuild row %d: %w", r, err)
		}
		lo := r * l.Unit
		err = f.runWriteBursts(s, []span{{lo: lo, n: l.Unit}}, func(localOff int64, out []byte) {
			copy(out, unit[localOff-lo:])
		}, nil)
		if err != nil {
			return fmt.Errorf("core: rebuild row %d: %w", r, err)
		}
	}
	// Trim the fragment: the tail data unit may be partial.
	want := l.FragmentSizes(f.size)[idx]
	reqID := f.c.nextReq()
	reply, err := f.c.rpc(s.conn, s.dataAddr, &wire.Packet{
		Header: wire.Header{Type: wire.TTrunc, ReqID: reqID, Handle: s.handle, Offset: want},
	}, reqID)
	if err != nil {
		return fmt.Errorf("core: rebuild trim: %w", err)
	}
	if reply.Type != wire.TTruncReply {
		return fmt.Errorf("core: unexpected %v to rebuild trim", reply.Type)
	}
	return nil
}
