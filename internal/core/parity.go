package core

import (
	"fmt"
	"sync"

	"swift/internal/extent"
	"swift/internal/parity"
	"swift/internal/wire"
)

// computeParity builds the XOR parity units for every stripe row touched
// by a write of src at logical offset off. Rows only partially covered by
// the write are completed with a read-modify-write: the uncovered old
// bytes are fetched (degraded-tolerant) before the parity is computed.
// Parity units always span the full striping unit; logical bytes past the
// object tail count as zeros.
func (f *File) computeParity(src []byte, off int64) (map[int64][]byte, error) {
	l := f.c.layout
	rb := l.RowBytes()
	end := off + int64(len(src))
	r0, r1 := l.RowOfGlobal(off), l.RowOfGlobal(end-1)

	pbufs := make(map[int64][]byte, r1-r0+1)
	rowData := make([]byte, rb)
	for r := r0; r <= r1; r++ {
		rowOff := r * rb
		covLo, covHi := rowOff, rowOff+rb
		if covLo < off {
			covLo = off
		}
		if covHi > end {
			covHi = end
		}
		// Old data for the uncovered head and tail of the row
		// (clamped to the current size; beyond it everything is zero).
		for i := range rowData {
			rowData[i] = 0
		}
		if err := f.fillOldRow(rowData, rowOff, covLo, covHi); err != nil {
			return nil, err
		}
		copy(rowData[covLo-rowOff:covHi-rowOff], src[covLo-off:covHi-off])

		pbuf := make([]byte, l.Unit)
		for j := 0; j < l.DataPerRow(); j++ {
			parity.XOR(pbuf, rowData[int64(j)*l.Unit:int64(j+1)*l.Unit])
		}
		pbufs[r] = pbuf
	}
	return pbufs, nil
}

// fillOldRow reads the pre-write content of row bytes outside [covLo,
// covHi) into rowData (whose first byte is logical offset rowOff). The
// read is failover-capable: a write's read-modify-write must survive a
// single agent failure (reading the old bytes degraded) or a mid-write
// crash would fail the whole write even though parity covers it.
func (f *File) fillOldRow(rowData []byte, rowOff, covLo, covHi int64) error {
	rb := int64(len(rowData))
	read := func(lo, hi int64) error {
		if hi > f.size {
			hi = f.size // beyond the tail is zeros already
		}
		if lo >= hi {
			return nil
		}
		return f.readRange(rowData[lo-rowOff:hi-rowOff], lo, true)
	}
	if err := read(rowOff, covLo); err != nil {
		return err
	}
	return read(covHi, rowOff+rb)
}

// reconstructInto rebuilds the fragment extents of a failed agent from the
// surviving agents' units and parity, placing the recovered logical bytes
// into dst (first byte = logical offset base). This is the degraded-mode
// read path of computed-copy redundancy.
func (f *File) reconstructInto(dead int, es []extent.Extent, dst []byte, base int64) error {
	l := f.c.layout
	seen := make(map[int64]bool)
	for _, e := range es {
		for r := e.Off / l.Unit; r <= (e.End()-1)/l.Unit; r++ {
			if seen[r] {
				continue
			}
			seen[r] = true
			unit, err := f.reconstructUnit(dead, r)
			if err != nil {
				return err
			}
			// Place the requested portion(s) of this unit.
			uLo, uHi := r*l.Unit, (r+1)*l.Unit
			lo, hi := e.Off, e.End()
			if lo < uLo {
				lo = uLo
			}
			if hi > uHi {
				hi = uHi
			}
			if lo >= hi {
				continue
			}
			g, ok := l.GlobalOf(dead, lo)
			if !ok {
				continue // parity unit: not logical data
			}
			di := g - base
			if di < 0 || di >= int64(len(dst)) {
				continue
			}
			n := hi - lo
			if di+n > int64(len(dst)) {
				n = int64(len(dst)) - di
			}
			copy(dst[di:di+n], unit[lo-uLo:lo-uLo+n])
		}
	}
	return nil
}

// reconstructUnit XORs the units of row r held by all surviving agents,
// yielding the failed agent's unit (data or parity alike).
func (f *File) reconstructUnit(dead int, r int64) ([]byte, error) {
	l := f.c.layout
	unit := make([]byte, l.Unit)
	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		firstEr error
	)
	for i, s := range f.sessions {
		if i == dead || s == nil {
			continue
		}
		wg.Add(1)
		go func(s *agentSession) {
			defer wg.Done()
			buf := make([]byte, l.Unit)
			err := f.readBurst(s, r*l.Unit, l.Unit, func(localOff int64, b []byte) {
				copy(buf[localOff-r*l.Unit:], b)
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstEr == nil {
					firstEr = err
				}
				return
			}
			parity.XOR(unit, buf)
		}(s)
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return unit, nil
}

// VerifyParity scrubs the file: for every stripe row it reads all units
// from all agents and checks that the parity unit equals the XOR of the
// data units. It returns the rows that fail, in ascending order — the
// maintenance pass a Swift installation would run after crashes.
func (f *File) VerifyParity() ([]int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	if !f.c.cfg.Parity {
		return nil, fmt.Errorf("core: verify requires parity")
	}
	if f.liveCount() < len(f.sessions) {
		return nil, fmt.Errorf("core: verify requires all agents up")
	}
	if f.size == 0 {
		return nil, nil
	}
	l := f.c.layout
	var bad []int64
	lastRow := l.RowOfGlobal(f.size - 1)
	unit := make([]byte, l.Unit)
	for r := int64(0); r <= lastRow; r++ {
		// XOR of all units of a consistent row is zero: the parity
		// unit is the XOR of the data units.
		got, err := f.xorRow(r, unit)
		if err != nil {
			return nil, fmt.Errorf("core: verify row %d: %w", r, err)
		}
		if !got {
			bad = append(bad, r)
		}
	}
	return bad, nil
}

// xorRow reads every agent's unit of row r and reports whether they XOR
// to zero. scratch must be Unit bytes.
func (f *File) xorRow(r int64, scratch []byte) (bool, error) {
	l := f.c.layout
	for i := range scratch {
		scratch[i] = 0
	}
	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		firstEr error
	)
	for _, s := range f.sessions {
		if s == nil {
			continue
		}
		wg.Add(1)
		go func(s *agentSession) {
			defer wg.Done()
			buf := make([]byte, l.Unit)
			err := f.readBurst(s, r*l.Unit, l.Unit, func(localOff int64, b []byte) {
				copy(buf[localOff-r*l.Unit:], b)
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstEr == nil {
					firstEr = err
				}
				return
			}
			parity.XOR(scratch, buf)
		}(s)
	}
	wg.Wait()
	if firstEr != nil {
		return false, firstEr
	}
	for _, b := range scratch {
		if b != 0 {
			return false, nil
		}
	}
	return true, nil
}

// RepairRow recomputes and rewrites the parity unit of one row from its
// data units, fixing a scrub finding whose data is trusted.
func (f *File) RepairRow(r int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if !f.c.cfg.Parity {
		return fmt.Errorf("core: repair requires parity")
	}
	l := f.c.layout
	pa := l.ParityAgent(r)
	if pa >= len(f.sessions) || f.sessions[pa] == nil {
		return fmt.Errorf("core: repair: parity agent %d down", pa)
	}
	// XOR the data units (everyone but the parity agent).
	unit := make([]byte, l.Unit)
	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		firstEr error
	)
	for i, s := range f.sessions {
		if i == pa || s == nil {
			continue
		}
		wg.Add(1)
		go func(s *agentSession) {
			defer wg.Done()
			buf := make([]byte, l.Unit)
			err := f.readBurst(s, r*l.Unit, l.Unit, func(localOff int64, b []byte) {
				copy(buf[localOff-r*l.Unit:], b)
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstEr == nil {
				firstEr = err
				return
			}
			parity.XOR(unit, buf)
		}(s)
	}
	wg.Wait()
	if firstEr != nil {
		return firstEr
	}
	lo := l.ParityLocal(r)
	return f.runWriteBursts(f.sessions[pa], []span{{lo: lo, n: l.Unit}}, func(localOff int64, out []byte) {
		copy(out, unit[localOff-lo:])
	})
}

// Rebuild reconstructs every unit (data and parity) that agent idx should
// hold for this file and writes it back to that agent, then trims the
// fragment to its expected size. A session to the agent must exist; the
// health monitor performs this automatically on re-admission when
// MonitorConfig.Rebuild is set.
func (f *File) Rebuild(idx int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	return f.rebuildLocked(idx)
}

// rebuildLocked is Rebuild with f.mu held (re-admission calls it before
// the fresh session becomes visible to reads).
func (f *File) rebuildLocked(idx int) error {
	if !f.c.cfg.Parity {
		return fmt.Errorf("core: rebuild requires parity")
	}
	if idx < 0 || idx >= len(f.sessions) || f.sessions[idx] == nil {
		return fmt.Errorf("core: rebuild: no session to agent %d", idx)
	}
	s := f.sessions[idx]
	l := f.c.layout
	if f.size == 0 {
		return nil
	}
	lastRow := l.RowOfGlobal(f.size - 1)
	for r := int64(0); r <= lastRow; r++ {
		unit, err := f.reconstructUnit(idx, r)
		if err != nil {
			return fmt.Errorf("core: rebuild row %d: %w", r, err)
		}
		lo := r * l.Unit
		err = f.runWriteBursts(s, []span{{lo: lo, n: l.Unit}}, func(localOff int64, out []byte) {
			copy(out, unit[localOff-lo:])
		})
		if err != nil {
			return fmt.Errorf("core: rebuild row %d: %w", r, err)
		}
	}
	// Trim the fragment: the tail data unit may be partial.
	want := l.FragmentSizes(f.size)[idx]
	reqID := f.c.nextReq()
	reply, err := f.c.rpc(s.conn, s.dataAddr, &wire.Packet{
		Header: wire.Header{Type: wire.TTrunc, ReqID: reqID, Handle: s.handle, Offset: want},
	}, reqID)
	if err != nil {
		return fmt.Errorf("core: rebuild trim: %w", err)
	}
	if reply.Type != wire.TTruncReply {
		return fmt.Errorf("core: unexpected %v to rebuild trim", reply.Type)
	}
	return nil
}
