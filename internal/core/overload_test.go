package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"swift/internal/agent"
	"swift/internal/store"
	"swift/internal/transport/memnet"
)

func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(3, 0.5)
	if f := b.fill(); f != 1 {
		t.Fatalf("new bucket fill = %v, want 1", f)
	}
	for i := 0; i < 3; i++ {
		if !b.spend() {
			t.Fatalf("spend %d denied on a full bucket", i)
		}
	}
	if b.spend() {
		t.Fatal("spend allowed on an empty bucket")
	}
	if f := b.fill(); f != 0 {
		t.Fatalf("empty bucket fill = %v, want 0", f)
	}
	// Two fresh ops deposit 2×0.5 = 1 token: one retry allowed again.
	b.deposit()
	b.deposit()
	if !b.spend() {
		t.Fatal("spend denied after deposits refilled one token")
	}
	if b.spend() {
		t.Fatal("second spend allowed with only one token deposited")
	}
	// Deposits never overflow the cap.
	for i := 0; i < 100; i++ {
		b.deposit()
	}
	if f := b.fill(); f != 1 {
		t.Fatalf("fill after overflow deposits = %v, want 1", f)
	}
}

// TestBreakerStateMachine drives the full closed → open → half-open →
// closed cycle with a scripted clock; no real time elapses.
func TestBreakerStateMachine(t *testing.T) {
	const threshold = 3
	const cooldown = 2 * time.Second
	now := time.Unix(1000, 0)
	var b breaker

	if !b.allow(now) {
		t.Fatal("new breaker must allow")
	}
	// Strikes below the threshold leave the breaker closed.
	for i := 0; i < threshold-1; i++ {
		if _, _, changed := b.strike(now, threshold, cooldown); changed {
			t.Fatalf("strike %d tripped below threshold", i+1)
		}
		if !b.allow(now) {
			t.Fatalf("closed breaker denied after %d strikes", i+1)
		}
	}
	// A success clears accumulated strikes.
	if _, _, changed := b.success(); changed {
		t.Fatal("success on a closed breaker reported a transition")
	}
	for i := 0; i < threshold-1; i++ {
		b.strike(now, threshold, cooldown)
	}
	// The threshold-th consecutive strike trips it open.
	from, to, changed := b.strike(now, threshold, cooldown)
	if !changed || from != BreakerClosed || to != BreakerOpen {
		t.Fatalf("trip = (%v, %v, %v), want closed->open", from, to, changed)
	}
	if b.allow(now) || b.allow(now.Add(cooldown-time.Millisecond)) {
		t.Fatal("open breaker allowed inside the cooldown")
	}
	// Further strikes while open are no-ops.
	if _, _, changed := b.strike(now, threshold, cooldown); changed {
		t.Fatal("strike on an open breaker reported a transition")
	}
	// Cooldown elapsed: half-open admits trial traffic.
	now = now.Add(cooldown)
	if !b.allow(now) {
		t.Fatal("breaker denied after the cooldown elapsed")
	}
	if b.current() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.current())
	}
	// A strike during the trial goes straight back to open.
	from, to, changed = b.strike(now, threshold, cooldown)
	if !changed || from != BreakerHalfOpen || to != BreakerOpen {
		t.Fatalf("half-open strike = (%v, %v, %v), want half-open->open", from, to, changed)
	}
	if b.allow(now) {
		t.Fatal("re-opened breaker allowed inside the new cooldown")
	}
	// Second cooldown, successful trial: closed again.
	now = now.Add(cooldown)
	if !b.allow(now) {
		t.Fatal("breaker denied after the second cooldown")
	}
	from, to, changed = b.success()
	if !changed || from != BreakerHalfOpen || to != BreakerClosed {
		t.Fatalf("trial success = (%v, %v, %v), want half-open->closed", from, to, changed)
	}
	if !b.allow(now) || b.current() != BreakerClosed {
		t.Fatal("closed breaker after recovery must allow")
	}
}

// overloadCluster builds a parity cluster with overload-control knobs
// exposed, on a fast memnet segment.
func newOverloadCluster(t *testing.T, mutate func(*Config)) *cluster {
	t.Helper()
	n := memnet.New(1)
	seg := n.NewSegment("lab", memnet.SegmentConfig{
		BandwidthBps:  1e10,
		FrameOverhead: 46,
		Seed:          7,
	})
	c := &cluster{net: n, seg: seg}
	const agents = 4
	addrs := make([]string, agents)
	for i := 0; i < agents; i++ {
		h := n.MustHost(agentName(i), memnet.HostConfig{}, seg)
		st := store.NewMem()
		a, err := agent.New(h, st, agent.Config{
			ResendCheck: 5 * time.Millisecond,
			ResendAfter: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
		c.agents = append(c.agents, a)
		c.stores = append(c.stores, st)
		c.hosts = append(c.hosts, h)
		addrs[i] = a.Addr()
	}
	ch := n.MustHost("client", memnet.HostConfig{}, seg)
	cfg := Config{
		Host:         ch,
		Agents:       addrs,
		Unit:         4096,
		Parity:       true,
		RetryTimeout: 20 * time.Millisecond,
		MaxRetries:   5,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	cl, err := Dial(cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c.client = cl
	t.Cleanup(func() {
		cl.Close()
		for _, a := range c.agents {
			a.Close()
		}
		n.Close()
	})
	return c
}

// TestHedgedReadWins slows one agent far past the hedge delay and checks
// that the read completes correctly by reconstruction, counts a hedge
// win, and never feeds the slow agent into the failure-domain lifecycle.
func TestHedgedReadWins(t *testing.T) {
	c := newOverloadCluster(t, func(cfg *Config) {
		cfg.HedgeReads = true
	})
	f, err := c.client.Open("obj", OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	data := randBytes(64_000, 3)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("write: %v", err)
	}

	c.agents[0].SetReadDelay(2 * time.Second)
	out := make([]byte, len(data))
	start := time.Now()
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("hedged read: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedged read took %v; reconstruction did not beat the straggler", elapsed)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("hedged read returned wrong data")
	}
	m := c.client.MetricsSnapshot()
	if m.Hedges == 0 || m.HedgeWins == 0 {
		t.Fatalf("hedges = %d, hedge wins = %d, want both > 0", m.Hedges, m.HedgeWins)
	}
	for i, h := range c.client.Health() {
		if h.State != StateHealthy {
			t.Fatalf("agent %d state = %v after hedging, want healthy (no lifecycle flap)", i, h.State)
		}
	}
	if tr := c.client.tel.agent(0).transitions.Load(); tr != 0 {
		t.Fatalf("agent 0 lifecycle transitions = %d after hedging, want 0", tr)
	}
}

// TestRetryBudgetExhaustion drains the retry budget and checks that a
// failover retry is denied with ErrRetryBudget while fresh operations
// (including degraded reads around the already-failed agent) proceed.
func TestRetryBudgetExhaustion(t *testing.T) {
	c := newOverloadCluster(t, nil)
	f, err := c.client.Open("obj", OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	data := randBytes(64_000, 4)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("write: %v", err)
	}

	// Drain the budget, then kill an agent: the mid-read failover that
	// would mask it must be denied.
	c.client.budget.mu.Lock()
	c.client.budget.tokens = 0
	c.client.budget.mu.Unlock()
	c.agents[1].Close()
	out := make([]byte, len(data))
	_, err = f.ReadAt(out, 0)
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("read with spent budget = %v, want ErrRetryBudget", err)
	}
	if m := c.client.MetricsSnapshot(); m.BudgetDenials == 0 {
		t.Fatalf("budget denials = %d, want > 0", m.BudgetDenials)
	}

	// Fresh operations are unaffected: the failed agent's session is
	// already torn down, so the next read is a plain degraded read — no
	// retry, no budget spend.
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("fresh degraded read after denial: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("degraded read returned wrong data")
	}
}

// TestOpDeadlineExceeded gives the operation a budget far below the
// agent's injected service delay: the read must fail with ErrDeadline
// and leave the lifecycle untouched.
func TestOpDeadlineExceeded(t *testing.T) {
	c := newOverloadCluster(t, func(cfg *Config) {
		cfg.OpTimeout = 60 * time.Millisecond
	})
	f, err := c.client.Open("obj", OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	data := randBytes(32_000, 5)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("write: %v", err)
	}

	for i := range c.agents {
		c.agents[i].SetReadDelay(200 * time.Millisecond)
	}
	out := make([]byte, len(data))
	_, err = f.ReadAt(out, 0)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("read past deadline = %v, want ErrDeadline", err)
	}
	for i, h := range c.client.Health() {
		if h.State != StateHealthy {
			t.Fatalf("agent %d state = %v after deadline miss, want healthy", i, h.State)
		}
	}
	// With the delay cleared the same file serves reads again. The stale
	// requests queued behind the injected delay drain first — each is
	// shed on dequeue as expired.
	for i := range c.agents {
		c.agents[i].SetReadDelay(0)
	}
	time.Sleep(time.Second)
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("read after recovery returned wrong data")
	}
}
