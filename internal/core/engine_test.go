package core

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// TestRandomOpsAgainstModel drives the full striped stack (client engine,
// wire protocol, agents, stores) with random reads, writes, and truncates
// and cross-checks every result against a plain in-memory model file.
func TestRandomOpsAgainstModel(t *testing.T) {
	configs := []clusterOpts{
		{agents: 1, unit: 512},
		{agents: 3, unit: 1000},
		{agents: 4, unit: 4096, parity: true},
		{agents: 5, unit: 700, parity: true},
	}
	for ci, opts := range configs {
		opts := opts
		c := newCluster(t, opts)
		f, err := c.client.Open("model", OpenFlags{Create: true})
		if err != nil {
			t.Fatalf("config %d: open: %v", ci, err)
		}

		rng := rand.New(rand.NewSource(int64(42 + ci)))
		var model []byte
		const space = 60_000
		for op := 0; op < 60; op++ {
			switch rng.Intn(5) {
			case 0, 1: // write
				off := rng.Int63n(space)
				n := rng.Intn(8000) + 1
				buf := make([]byte, n)
				rng.Read(buf)
				if _, err := f.WriteAt(buf, off); err != nil {
					t.Fatalf("config %d op %d: write: %v", ci, op, err)
				}
				if end := off + int64(n); end > int64(len(model)) {
					grown := make([]byte, end)
					copy(grown, model)
					model = grown
				}
				copy(model[off:], buf)
			case 2, 3: // read
				if len(model) == 0 {
					continue
				}
				off := rng.Int63n(int64(len(model)))
				n := rng.Intn(9000) + 1
				got := make([]byte, n)
				rn, err := f.ReadAt(got, off)
				want := model[off:]
				if n < len(want) {
					want = want[:n]
				}
				if len(want) < n {
					if err != io.EOF {
						t.Fatalf("config %d op %d: short read err = %v", ci, op, err)
					}
				} else if err != nil {
					t.Fatalf("config %d op %d: read: %v", ci, op, err)
				}
				if rn != len(want) || !bytes.Equal(got[:rn], want) {
					t.Fatalf("config %d op %d: read mismatch at %d+%d", ci, op, off, n)
				}
			case 4: // truncate
				size := rng.Int63n(space)
				if err := f.Truncate(size); err != nil {
					t.Fatalf("config %d op %d: truncate: %v", ci, op, err)
				}
				if size <= int64(len(model)) {
					model = model[:size]
				} else {
					grown := make([]byte, size)
					copy(grown, model)
					model = grown
				}
			}
			if f.Size() != int64(len(model)) {
				t.Fatalf("config %d op %d: size %d != model %d", ci, op, f.Size(), len(model))
			}
		}

		// Final full read-back, then reopen and check persistence.
		check := func(g *File) {
			out := make([]byte, len(model)+100)
			n, err := g.ReadAt(out, 0)
			if len(model) > 0 && err != io.EOF && err != nil {
				t.Fatalf("config %d: final read: %v", ci, err)
			}
			if n != len(model) || !bytes.Equal(out[:n], model) {
				t.Fatalf("config %d: final state mismatch (%d vs %d bytes)", ci, n, len(model))
			}
		}
		check(f)
		f.Close()
		g, err := c.client.Open("model", OpenFlags{})
		if err != nil {
			t.Fatalf("config %d: reopen: %v", ci, err)
		}
		if g.Size() != int64(len(model)) {
			t.Fatalf("config %d: reopened size %d != %d", ci, g.Size(), len(model))
		}
		check(g)
		g.Close()
	}
}

func TestEmptyFile(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	f, err := c.client.Open("empty", OpenFlags{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Size() != 0 {
		t.Fatalf("size = %d", f.Size())
	}
	if _, err := f.ReadAt(make([]byte, 10), 0); err != io.EOF {
		t.Fatalf("read empty: %v", err)
	}
	if n, err := f.Write(nil); n != 0 || err != nil {
		t.Fatalf("empty write = %d, %v", n, err)
	}
}

func TestNegativeOffsetsRejected(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	f, _ := c.client.Open("neg", OpenFlags{Create: true})
	defer f.Close()
	if _, err := f.ReadAt(make([]byte, 1), -1); err == nil {
		t.Fatal("negative read accepted")
	}
	if _, err := f.WriteAt(make([]byte, 1), -1); err == nil {
		t.Fatal("negative write accepted")
	}
	if _, err := f.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative seek accepted")
	}
	if err := f.Truncate(-1); err == nil {
		t.Fatal("negative truncate accepted")
	}
}

func TestClosedFileRejectsOps(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	f, _ := c.client.Open("closed", OpenFlags{Create: true})
	f.Close()
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if _, err := f.WriteAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
	if err := f.Truncate(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("truncate after close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestSparseWrite(t *testing.T) {
	c := newCluster(t, clusterOpts{unit: 1024})
	f, _ := c.client.Open("sparse", OpenFlags{Create: true})
	defer f.Close()
	tail := []byte("tail")
	if _, err := f.WriteAt(tail, 50_000); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 50_004 {
		t.Fatalf("size = %d", f.Size())
	}
	out := make([]byte, 50_004)
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50_000; i++ {
		if out[i] != 0 {
			t.Fatalf("hole byte %d = %#x", i, out[i])
		}
	}
	if !bytes.Equal(out[50_000:], tail) {
		t.Fatal("tail mismatch")
	}
}

func TestWriteFailsWithoutParityWhenAgentDies(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 3})
	f, _ := c.client.Open("fragile", OpenFlags{Create: true})
	defer f.Close()
	if _, err := f.WriteAt(randBytes(30_000, 50), 0); err != nil {
		t.Fatal(err)
	}
	c.agents[1].Close()
	if _, err := f.WriteAt(randBytes(30_000, 51), 0); !errors.Is(err, ErrRetriesSpent) {
		t.Fatalf("write with dead agent: %v, want ErrRetriesSpent", err)
	}
}

func TestListUnionAcrossAgents(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 3, unit: 1024})
	for _, name := range []string{"a", "b/c", "zzz"} {
		f, err := c.client.Open(name, OpenFlags{Create: true})
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(randBytes(5000, 60), 0)
		f.Close()
	}
	// A tiny object living on a single agent still shows up.
	g, _ := c.client.Open("tiny", OpenFlags{Create: true})
	g.WriteAt([]byte("x"), 0)
	g.Close()

	names, err := c.client.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b/c", "tiny", "zzz"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestManyNamesList(t *testing.T) {
	// Enough objects that the list reply spans multiple packets.
	c := newCluster(t, clusterOpts{agents: 1, unit: 1024})
	var want []string
	for i := 0; i < 300; i++ {
		name := "object-with-a-rather-long-name-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i%10))
		f, err := c.client.Open(name, OpenFlags{Create: true})
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		want = append(want, name)
	}
	names, err := c.client.List()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, w := range want {
		if !seen[w] {
			t.Fatalf("missing %q from list of %d", w, len(names))
		}
	}
}

func TestMetricsAdvance(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	f, _ := c.client.Open("metrics", OpenFlags{Create: true})
	defer f.Close()
	f.WriteAt(randBytes(100_000, 70), 0)
	f.ReadAt(make([]byte, 100_000), 0)
	m := c.client.MetricsSnapshot()
	if m.WriteBursts == 0 || m.ReadBursts == 0 || m.DataPackets == 0 {
		t.Fatalf("metrics did not advance: %+v", m)
	}
}
