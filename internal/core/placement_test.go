package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"swift/internal/stripe"
)

// newLayoutFile builds a detached File good enough to exercise the pure
// placement helpers (placeGlobal, gather) without any network.
func newLayoutFile(l stripe.Layout) *File {
	return &File{c: &Client{cfg: Config{Parity: l.Parity}, layout: l}}
}

// TestGatherPlaceInverse: for random layouts and ranges, gathering
// fragment bytes from a logical buffer and then placing them back
// reconstructs the original bytes — the core invariant connecting the
// write path's packet building to the read path's packet scattering.
func TestGatherPlaceInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := stripe.Layout{
			Unit:   int64(64 + rng.Intn(4000)),
			Agents: 1 + rng.Intn(6),
		}
		if l.Agents >= 3 && rng.Intn(2) == 0 {
			l.Parity = true
		}
		file := newLayoutFile(l)

		base := rng.Int63n(1 << 20)
		n := 1 + rng.Int63n(6*l.Unit)
		src := make([]byte, n)
		rng.Read(src)

		dst := make([]byte, n)
		// For each agent extent, gather fragment payloads in random
		// packet sizes and place them back.
		for agent, set := range l.LocalExtents(base, n) {
			for _, e := range set.Extents() {
				for off := e.Off; off < e.End(); {
					m := 1 + rng.Int63n(1300)
					if off+m > e.End() {
						m = e.End() - off
					}
					payload := make([]byte, m)
					file.gather(agent, off, payload, src, base, nil)
					file.placeGlobal(agent, off, payload, dst, base)
					off += m
				}
			}
		}
		return bytes.Equal(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestGatherParityUnits: with parity enabled, gathering a parity unit's
// fragment range sources bytes from the parity buffer, zero-padded.
func TestGatherParityUnits(t *testing.T) {
	l := stripe.Layout{Unit: 100, Agents: 3, Parity: true}
	file := newLayoutFile(l)
	pbuf := make([]byte, 100)
	for i := range pbuf {
		pbuf[i] = byte(i + 1)
	}
	pbufs := map[int64][][]byte{0: {pbuf}}
	pa := l.ParityAgent(0)

	out := make([]byte, 100)
	file.gather(pa, 0, out, nil, 0, pbufs)
	if !bytes.Equal(out, pbuf) {
		t.Fatal("parity gather mismatch")
	}

	// A row without a computed buffer gathers zeros.
	out2 := make([]byte, 100)
	out2[5] = 0xff
	file.gather(l.ParityAgent(1), l.ParityLocal(1), out2, nil, 0, pbufs)
	for i, b := range out2 {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

// TestPlaceGlobalIgnoresParity: read-path placement must skip fragment
// bytes that belong to parity units (no logical address).
func TestPlaceGlobalIgnoresParity(t *testing.T) {
	l := stripe.Layout{Unit: 100, Agents: 3, Parity: true}
	file := newLayoutFile(l)
	dst := make([]byte, 300)
	payload := bytes.Repeat([]byte{0xAA}, 100)
	pa := l.ParityAgent(0)
	file.placeGlobal(pa, l.ParityLocal(0), payload, dst, 0)
	for i, b := range dst {
		if b != 0 {
			t.Fatalf("parity payload leaked into logical byte %d", i)
		}
	}
}

// TestPlaceGlobalClipsToBuffer: payloads mapping outside the logical
// buffer are clipped, not panicking or corrupting.
func TestPlaceGlobalClipsToBuffer(t *testing.T) {
	l := stripe.Layout{Unit: 100, Agents: 2}
	file := newLayoutFile(l)
	dst := make([]byte, 50)
	payload := bytes.Repeat([]byte{1}, 100)
	// This fragment range maps to logical [200,300) — outside dst.
	file.placeGlobal(0, 100, payload, dst, 0)
	for _, b := range dst {
		if b != 0 {
			t.Fatal("out-of-range placement corrupted buffer")
		}
	}
	// And one straddling the end is clipped.
	file.placeGlobal(0, 0, payload, dst, 0)
	for i := 0; i < 50; i++ {
		if dst[i] != 1 {
			t.Fatalf("in-range byte %d not placed", i)
		}
	}
}
