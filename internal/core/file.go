package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"swift/internal/cache"
	"swift/internal/extent"
	"swift/internal/integrity"
	"swift/internal/obs"
	"swift/internal/transport"
	"swift/internal/wire"
)

// File is an open striped object with Unix file semantics. A File's
// methods are safe for concurrent use; operations are serialized, matching
// the prototype's library semantics.
type File struct {
	c    *Client
	name string

	mu       sync.Mutex
	sessions []*agentSession // nil entries are failed agents
	size     int64
	pos      int64
	closed   bool

	// opDeadline is the running operation's deadline budget (zero when
	// Config.OpTimeout is off). Set at ReadAt/WriteAt entry and cleared on
	// exit, under f.mu; maintenance paths (rebuild, scrub) run with it
	// zero so background repair never inherits a stale foreground budget.
	opDeadline time.Time

	// Block cache view (nil when the client cache is off). fetchBuf is
	// the demand-fetch scratch: demand misses are served to the caller
	// from it and only then inserted, so a one-pass scan earns cache
	// residence without earning references and dies in probation.
	cobj     *cache.Object
	fetchBuf []byte
	// prefetching marks operations running on behalf of a background
	// read-ahead worker; written under f.mu before readRange fans its
	// goroutines out (which are joined before it returns). Prefetch
	// reads never hedge — speculation must not race demand reads for
	// the retry budget.
	prefetching bool
}

// Name returns the object name.
func (f *File) Name() string { return f.name }

// Size returns the logical object size.
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = f.size
	default:
		return 0, fmt.Errorf("core: bad whence %d", whence)
	}
	np := base + offset
	if np < 0 {
		return 0, errors.New("core: negative seek position")
	}
	f.pos = np
	return np, nil
}

// Read implements io.Reader at the current position.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	pos := f.pos
	f.mu.Unlock()
	n, err := f.ReadAt(p, pos)
	f.mu.Lock()
	f.pos = pos + int64(n)
	f.mu.Unlock()
	return n, err
}

// Write implements io.Writer at the current position.
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	pos := f.pos
	f.mu.Unlock()
	n, err := f.WriteAt(p, pos)
	f.mu.Lock()
	f.pos = pos + int64(n)
	f.mu.Unlock()
	return n, err
}

// ReadAt implements io.ReaderAt: it reads from all agents holding pieces
// of [off, off+len(p)) in parallel.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	start := time.Now()
	sp := f.c.startSpan(obs.SpanContext{}, "read")
	defer sp.Finish()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	if off < 0 {
		return 0, errors.New("core: negative offset")
	}
	if off >= f.size {
		return 0, io.EOF
	}
	n := int64(len(p))
	if off+n > f.size {
		n = f.size - off
	}
	f.c.budget.deposit()
	if t := f.c.cfg.OpTimeout; t > 0 {
		f.opDeadline = start.Add(t)
		defer func() { f.opDeadline = time.Time{} }()
	}
	sp.Annotate("%s [%d:%d)", f.name, off, off+n)
	if err := f.readServe(p[:n], off, sp); err != nil {
		sp.SetError(err)
		return 0, err
	}
	observeSpan(f.c.tel.readLat, start, sp)
	if n < int64(len(p)) {
		return int(n), io.EOF
	}
	return int(n), nil
}

// readServe satisfies a clamped read through the block cache when it is
// on, falling back to a direct striped read otherwise. Resident bytes
// copy straight out; a miss fetches a block-aligned window (widened to
// the read-ahead window when the read continues a sequential stream),
// serves the caller from the fetch scratch, and inserts the blocks.
// Afterwards the stream detector may suggest the next window for the
// background prefetch workers.
func (f *File) readServe(dst []byte, off int64, sp *obs.Span) error {
	if f.cobj == nil {
		return f.readRange(dst, off, true, sp)
	}
	n := int64(len(dst))
	for filled := int64(0); filled < n; {
		pos := off + filled
		if m := f.cobj.ReadCached(dst[filled:], pos); m > 0 {
			filled += int64(m)
			continue
		}
		fo, flen := f.fetchWindow(pos, n-filled)
		buf := f.growFetch(flen)
		if err := f.readRange(buf, fo, true, sp); err != nil {
			return err
		}
		f.cobj.Insert(fo, buf, false)
		filled += int64(copy(dst[filled:], buf[pos-fo:]))
	}
	if poff, plen, gen := f.cobj.NoteRead(off, n, f.size); plen > 0 {
		f.c.suggestPrefetch(f, poff, plen, gen)
	}
	return nil
}

// fetchWindow picks the block-aligned fetch covering a demand miss at
// pos needing need more bytes: at least the spanning blocks, widened to
// the read-ahead window when pos continues a sequential stream (the
// first reads of a stream ride this before async prefetch is primed).
func (f *File) fetchWindow(pos, need int64) (off, n int64) {
	bs := f.c.cache.BlockSize()
	off = pos - pos%bs
	end := pos + need
	if r := end % bs; r != 0 {
		end += bs - r
	}
	if ra := f.c.cache.ReadAhead(); ra > 0 && off+ra > end && f.cobj.SequentialAt(pos) {
		end = off + ra
	}
	if end > f.size {
		end = f.size
	}
	if end < pos+need {
		end = pos + need // defensive: the read is already size-clamped
	}
	return off, end - off
}

// growFetch sizes the demand-fetch scratch buffer.
func (f *File) growFetch(n int64) []byte {
	if int64(cap(f.fetchBuf)) < n {
		f.fetchBuf = make([]byte, n)
	}
	return f.fetchBuf[:n]
}

// readRange reads [off, off+len(dst)) into dst, unclamped by the logical
// size (absent bytes arrive as zeros). With allowFailover set and parity
// enabled, up to k (= ParityShards) mid-operation agent failures trigger
// degraded retries under a progress budget; every retry is covered by
// the codec's correction power, so the operation completes as long as at
// most k agents are out.
//
// Corruption reported by an agent is handled before failover: the client
// repairs the damaged rows through the codec (read-repair) and retries
// against clean data, keeping the agent in service. Only when repair is
// impossible — parity off, too many agents out, budget spent — does the
// error fall through to the ordinary failover path or the caller.
func (f *File) readRange(dst []byte, off int64, allowFailover bool, sp *obs.Span) error {
	repairs, failovers := 0, 0
	budget := f.repairBudget(off, int64(len(dst)))
	for {
		failed, err := f.readRangeOnce(dst, off, sp)
		if err == nil {
			return nil
		}
		corrupt := failed >= 0 && integrity.IsCorrupt(err)
		if corrupt {
			f.noteCorrupt(failed, err)
			if repairs < budget {
				repairs++
				rs := sp.StartChild("read_repair", failed)
				rs.MarkRetry()
				rerr := f.repairCorrupt(failed, err, off, int64(len(dst)), rs)
				rs.SetError(rerr)
				rs.Finish()
				if rerr == nil {
					continue // repaired in place; retry clean
				}
				f.c.cfg.Logf("core: read repair of agent %d failed: %v", failed, rerr)
			}
		}
		if failed < 0 || !f.c.cfg.Parity || !allowFailover {
			if corrupt {
				// The agent is alive; only its media is bad. Do not
				// feed the failure-domain lifecycle — surface the
				// corruption to the caller instead.
				f.noteUnrepairable(failed, err)
				return err
			}
			if failed >= 0 {
				// No failover possible, but the failure is attributable:
				// feed the lifecycle so the monitor starts probing.
				f.failAgent(failed, err)
				if f.quorumLost() {
					return ErrNoQuorum
				}
			}
			return err
		}
		f.failAgent(failed, err)
		if f.quorumLost() {
			return ErrNoQuorum
		}
		// Failover retries spend from the shared budget so a brown-out is
		// not amplified into a retry storm; the lifecycle note above is
		// kept (the failure was real) even when the retry is denied.
		if !f.c.budget.spend() {
			f.c.metrics.BudgetDenials.Add(1)
			f.c.traceEvent("budget_denied", failed, "read failover denied: %v", err)
			return fmt.Errorf("%w: read failover around agent %d (last error: %v)",
				ErrRetryBudget, failed, err)
		}
		f.c.traceEvent("read_failover", failed, "%s: %v", f.name, err)
		sp.MarkRetry()
		sp.Annotate("failover around agent %d: %v", failed, err)
		f.c.cfg.Logf("core: read failing over around agent %d: %v", failed, err)
		failovers++
		if failovers >= f.c.parityK() {
			allowFailover = false
		}
	}
}

// readRangeOnce performs one attempt; on error it reports which agent
// failed (-1 when not attributable).
func (f *File) readRangeOnce(dst []byte, off int64, sp *obs.Span) (failedAgent int, err error) {
	n := int64(len(dst))
	if n == 0 {
		return -1, nil
	}
	exts := f.c.layout.LocalExtents(off, n)

	type result struct {
		agent int
		err   error
	}
	results := make(chan result, len(f.sessions))
	workers := 0
	var deadExts []extent.Set
	for i, s := range f.sessions {
		if exts[i].Len() == 0 {
			continue
		}
		// A tripped circuit breaker diverts the agent's extents to the
		// reconstruction path (only meaningful with parity: without it the
		// agent is the sole holder of its units and must be tried anyway).
		if s == nil || (f.c.cfg.Parity && !f.c.breakerAllow(i)) {
			if deadExts == nil {
				deadExts = make([]extent.Set, len(f.sessions))
			}
			deadExts[i] = exts[i]
			if s != nil {
				sp.Annotate("breaker open: reading around agent %d", i)
			}
			continue
		}
		workers++
		go func(i int, s *agentSession, es []extent.Extent) {
			as := sp.StartChild("agent_read", i)
			var werr error
			for _, e := range es {
				if werr = f.agentRead(s, e, dst, off, as); werr != nil {
					break
				}
			}
			as.SetError(werr)
			as.Finish()
			results <- result{agent: i, err: werr}
		}(i, s, exts[i].Extents())
	}
	// Overload signals (pushback, hedge, spent deadline) are collected
	// separately from failures: they must not be attributed to the agent's
	// failure-domain lifecycle. A hedged or pushed-back agent's extents
	// are reconstructed from the other agents' shards instead.
	var soft []result
	for ; workers > 0; workers-- {
		r := <-results
		if r.err == nil {
			continue
		}
		if isOverloadSignal(r.err) {
			soft = append(soft, r)
			continue
		}
		if err == nil {
			failedAgent, err = r.agent, r.err
		}
	}
	if err != nil {
		return failedAgent, err
	}
	for _, r := range soft {
		if errors.Is(r.err, ErrDeadline) || !f.c.cfg.Parity {
			// The deadline is global to the operation (reconstruction
			// cannot outrun it), and without parity there is nothing to
			// reconstruct from: surface the signal unattributed.
			return -1, r.err
		}
		hedged := errors.Is(r.err, errHedged)
		name := "busy_read"
		if hedged {
			name = "hedged_read"
		}
		ds := sp.StartChild(name, r.agent)
		ds.MarkRetry()
		rerr := f.reconstructInto(r.agent, exts[r.agent].Extents(), dst, off)
		ds.SetError(rerr)
		ds.Finish()
		if rerr != nil {
			return -1, fmt.Errorf("core: reconstruction around agent %d: %w (after %v)", r.agent, rerr, r.err)
		}
		if hedged {
			f.c.metrics.HedgeWins.Add(1)
			f.c.traceEvent("hedge_win", r.agent, "%s: reconstruction beat the straggler", f.name)
		}
	}
	// Reconstruct anything that lived on failed agents.
	for i := range deadExts {
		if deadExts[i].Len() == 0 {
			continue
		}
		if !f.c.cfg.Parity {
			return -1, ErrAgentDown
		}
		ds := sp.StartChild("degraded_read", i)
		ds.MarkRetry()
		rerr := f.reconstructInto(i, deadExts[i].Extents(), dst, off)
		ds.SetError(rerr)
		ds.Finish()
		if rerr != nil {
			return -1, rerr
		}
	}
	return -1, nil
}

// agentRead fetches one fragment extent from one agent in bursts, placing
// payload bytes into the logical buffer dst (whose first byte is logical
// offset base).
func (f *File) agentRead(s *agentSession, e extent.Extent, dst []byte, base int64, sp *obs.Span) error {
	for lo := e.Off; lo < e.End(); {
		n := f.c.cfg.RequestBytes
		if lo+n > e.End() {
			n = e.End() - lo
		}
		err := f.readBurst(s, lo, n, func(localOff int64, b []byte) {
			f.placeGlobal(s.idx, localOff, b, dst, base)
		}, sp, !f.prefetching)
		if err != nil {
			return err
		}
		lo += n
	}
	return nil
}

// placeGlobal copies fragment bytes into the logical buffer, splitting at
// striping-unit boundaries (a datagram's payload may span two units of the
// fragment, which are discontiguous in logical space).
//
//swift:hotpath
func (f *File) placeGlobal(agent int, localOff int64, b []byte, dst []byte, base int64) {
	l := f.c.layout
	for len(b) > 0 {
		in := localOff % l.Unit
		take := l.Unit - in
		if take > int64(len(b)) {
			take = int64(len(b))
		}
		if g, ok := l.GlobalOf(agent, localOff); ok {
			di := g - base
			if di >= 0 && di < int64(len(dst)) {
				end := di + take
				if end > int64(len(dst)) {
					end = int64(len(dst))
				}
				copy(dst[di:end], b[:end-di])
			}
		}
		b = b[take:]
		localOff += take
	}
}

// readBurst issues one read request for fragment range [lo, lo+n) and
// collects the data packets, resubmitting requests for missing ranges on
// timeout — the client-driven recovery of §3.1 ("the client keeps
// sufficient state to determine what packets have been received and thus
// can resubmit requests when packets are lost"). The engine keeps one
// outstanding request per storage agent, as the prototype did. sink is
// called with fragment-local offsets.
//
// With OpTimeout set, each request carries the operation's remaining
// deadline budget so the agent can shed work whose client has given up.
// An agent pushback paces retransmission by the agent's hint and feeds
// the circuit breaker; repeated pushback abandons the burst with
// ErrAgentBusy so the caller reconstructs around the agent. allowHedge
// additionally arms hedging (with Config.HedgeReads): a burst stalled
// past the p99-derived delay returns errHedged for the caller to race
// reconstruction against the straggler. Reconstruction's own shard reads
// pass allowHedge false — a hedge inside a hedge would recurse.
func (f *File) readBurst(s *agentSession, lo, n int64, sink func(localOff int64, b []byte), sp *obs.Span, allowHedge bool) error {
	cfg := &f.c.cfg
	at := f.c.tel.agent(s.idx)
	start := time.Now()
	accept := map[uint32]bool{}
	var got extent.Set
	var pkt wire.Packet
	opDl := f.opDeadline

	// The request packet carries the per-agent span's context so the
	// agent's service span joins this trace; data packets never do.
	tctx := sp.Context()
	send := func(off, length int64) error {
		var budget time.Duration
		if !opDl.IsZero() {
			if budget = time.Until(opDl); budget <= 0 {
				return fmt.Errorf("%w: read %s[%d:%d]", ErrDeadline, f.name, lo, lo+n)
			}
		}
		reqID := f.c.nextReq()
		accept[reqID] = true
		return f.sendPacket(s, &wire.Packet{Header: wire.Header{
			Type: wire.TRead, ReqID: reqID, Handle: s.handle,
			Offset: off, Length: uint32(length),
		}, Trace: tctx, Deadline: budget})
	}
	if err := send(lo, n); err != nil {
		return err
	}
	f.c.metrics.ReadBursts.Add(1)
	at.readBursts.Inc()
	hedging := allowHedge && cfg.HedgeReads && cfg.Parity
	var hedgeAt time.Time
	if hedging {
		hedgeAt = start.Add(f.c.hedgeDelay(s.idx))
	}
	pushbacks := 0
	level := 0 // consecutive silent timeouts; drives the backoff
	giveUp := time.Now().Add(f.c.retryBudget())
	deadline := time.Now().Add(cfg.RetryTimeout)
	for !got.Contains(lo, n) {
		wake := deadline
		if hedging && hedgeAt.Before(wake) {
			wake = hedgeAt
		}
		s.conn.SetReadDeadline(wake)
		rn, _, err := s.conn.ReadFrom(s.buf)
		if err != nil {
			if !transport.IsTimeout(err) {
				return err
			}
			now := time.Now()
			if hedging && !now.Before(hedgeAt) {
				if f.c.budget.spend() {
					f.c.metrics.Hedges.Add(1)
					at.hedges.Inc()
					f.c.traceEvent("hedge", s.idx, "%s[%d:%d] stalled %v, racing reconstruction",
						f.name, lo, lo+n, now.Sub(start))
					sp.MarkRetry()
					sp.Annotate("hedging agent %d after %v stall", s.idx, now.Sub(start))
					return fmt.Errorf("%w: agent %d read %s[%d:%d]", errHedged, s.idx, f.name, lo, lo+n)
				}
				f.c.metrics.BudgetDenials.Add(1)
				hedging = false // budget empty: wait the burst out normally
			}
			if now.Before(deadline) {
				continue // woke early only to check the hedge clock
			}
			if !opDl.IsZero() && !now.Before(opDl) {
				return fmt.Errorf("%w: read %s[%d:%d]", ErrDeadline, f.name, lo, lo+n)
			}
			f.c.metrics.ReadTimeouts.Add(1)
			at.readTimeouts.Inc()
			if !now.Before(giveUp) {
				f.c.traceEvent("read_giveup", s.idx, "%s[%d:%d] retries exhausted", f.name, lo, lo+n)
				f.c.noteOverload(s.idx, "retry give-up")
				return fmt.Errorf("%w: read %s[%d:%d] agent %d",
					ErrRetriesSpent, f.name, lo, lo+n, s.idx)
			}
			missing := got.Missing(lo, n)
			const maxResubmit = 8
			if len(missing) > maxResubmit {
				missing = missing[:maxResubmit]
			}
			f.c.traceEvent("read_timeout", s.idx, "%s[%d:%d] resubmitting %d ranges (level %d)",
				f.name, lo, lo+n, len(missing), level)
			sp.MarkRetry()
			sp.Annotate("read timeout [%d:%d): resubmitting %d ranges (level %d)",
				lo, lo+n, len(missing), level)
			for _, m := range missing {
				if err := send(m.Off, m.Len); err != nil {
					return err
				}
			}
			// Resubmissions back off exponentially (with jitter) so a
			// silent agent is not hammered on the shared medium.
			if level > 0 {
				f.c.metrics.Backoffs.Add(1)
				at.backoffs.Inc()
			}
			deadline = time.Now().Add(f.c.backoff(level))
			level++
			continue
		}
		if uerr := wire.Unmarshal(s.buf[:rn], &pkt); uerr != nil {
			continue
		}
		if pkt.Type == wire.TError && accept[pkt.ReqID] {
			return wire.ParseError(pkt.Payload)
		}
		if pkt.Type == wire.TPushback && accept[pkt.ReqID] {
			info, perr := wire.ParsePushback(pkt.Payload)
			if perr != nil {
				continue
			}
			pushbacks++
			f.c.metrics.Pushbacks.Add(1)
			at.pushbacks.Inc()
			f.c.noteOverload(s.idx, "pushback: "+info.Reason.String())
			f.c.traceEvent("pushback", s.idx, "%s[%d:%d] %v (retry after %v)",
				f.name, lo, lo+n, info.Reason, info.RetryAfter)
			sp.MarkRetry()
			sp.Annotate("pushback from agent %d: %v", s.idx, info.Reason)
			if info.Reason == wire.PushDeadlineExpired {
				// The agent says our budget is spent; trust it.
				return fmt.Errorf("%w: agent %d shed read %s[%d:%d]", ErrDeadline, s.idx, f.name, lo, lo+n)
			}
			if pushbacks >= 2 {
				// Persistent shedding: stop offering work; the caller
				// reconstructs around the agent. Never a lifecycle event.
				return agentBusy(s.idx)
			}
			// Single pushback: pace the retransmission by the agent's
			// hint and let the timeout machinery resubmit.
			wait := info.RetryAfter
			if wait <= 0 {
				wait = cfg.RetryTimeout
			}
			deadline = time.Now().Add(wait)
			continue
		}
		if pkt.Type != wire.TData || !accept[pkt.ReqID] || len(pkt.Payload) == 0 {
			continue
		}
		sink(pkt.Offset, pkt.Payload)
		got.Add(pkt.Offset, int64(len(pkt.Payload)))
		// Progress: reset the backoff and refresh the give-up budget.
		level = 0
		giveUp = time.Now().Add(f.c.retryBudget())
		deadline = time.Now().Add(cfg.RetryTimeout)
	}
	f.c.noteAgentOK(s.idx)
	observeSpan(at.readBurstLat, start, sp)
	return nil
}

// sendPacket marshals into the session's scratch buffer and transmits to
// the agent's private port.
//
//swift:hotpath
func (f *File) sendPacket(s *agentSession, p *wire.Packet) error {
	buf, err := wire.AppendPacket(s.sendBuf[:0], p)
	if err != nil {
		return err
	}
	s.sendBuf = buf[:0]
	return s.conn.WriteTo(buf, s.dataAddr)
}

// WriteAt implements io.WriterAt: it streams to all affected agents in
// parallel and, with parity enabled, maintains the computed copy. With
// write-behind on, the bytes are instead absorbed into dirty cache
// blocks and flushed in the background; the writer parks outside the
// file lock once the dirty budget is exceeded, so back-pressure never
// blocks the flusher itself.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	start := time.Now()
	sp := f.c.startSpan(obs.SpanContext{}, "write")
	defer sp.Finish()
	f.mu.Lock()
	n, err := f.writeAtLocked(p, off, start, sp)
	f.mu.Unlock()
	if err == nil {
		f.waitWriteBudget()
	}
	return n, err
}

func (f *File) writeAtLocked(p []byte, off int64, start time.Time, sp *obs.Span) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if off < 0 {
		return 0, errors.New("core: negative offset")
	}
	if len(p) == 0 {
		return 0, nil
	}
	if f.cobj != nil {
		// A failed background write-back surfaces on the next write —
		// never silently swallowed.
		if err := f.cobj.TakeFlushErr(); err != nil {
			sp.SetError(err)
			return 0, err
		}
	}
	f.c.budget.deposit()
	if t := f.c.cfg.OpTimeout; t > 0 {
		f.opDeadline = start.Add(t)
		defer func() { f.opDeadline = time.Time{} }()
	}
	sp.Annotate("%s [%d:%d)", f.name, off, off+int64(len(p)))
	if f.cobj != nil && f.c.cache.WriteBehind() {
		if err := f.absorbWrite(p, off, sp); err != nil {
			sp.SetError(err)
			return 0, err
		}
	} else {
		if err := f.writeRange(p, off, true, sp); err != nil {
			sp.SetError(err)
			return 0, err
		}
		if f.cobj != nil {
			// Write-through: cached blocks in range went stale.
			f.cobj.Invalidate(off, int64(len(p)))
		}
		f.c.noteWritten(f.name)
	}
	observeSpan(f.c.tel.writeLat, start, sp)
	if end := off + int64(len(p)); end > f.size {
		f.size = end
	}
	return len(p), nil
}

// absorbWrite lands a write in dirty cache blocks (write-behind). A
// block the write covers only partially must first be backed by its
// on-disk bytes so the cached image stays fully valid; then the bytes
// absorb, the flusher is kicked, and — while the cache is over its
// dirty budget — the writer flushes its own file inline so a saturated
// cache degrades to write-through instead of wedging.
func (f *File) absorbWrite(p []byte, off int64, sp *obs.Span) error {
	n := int64(len(p))
	for {
		bo, blen, ok := f.cobj.MissingBacking(off, n, f.size)
		if !ok {
			break
		}
		buf := f.growFetch(blen)
		if err := f.readRange(buf, bo, true, sp); err != nil {
			return err
		}
		f.cobj.Insert(bo, buf, false)
	}
	f.cobj.Write(off, p)
	for f.c.cache.OverBudget() && f.cobj.DirtyBytes() > 0 {
		if !f.flushOneLocked(sp) {
			if err := f.cobj.TakeFlushErr(); err != nil {
				return err
			}
			break
		}
	}
	f.c.kickFlush()
	return nil
}

// writeRange writes src at logical offset off. Corruption reported by an
// agent (a partial-block write must merge-read its neighbours, and those
// may be rotten) triggers read-repair-then-retry, but only when exactly
// one agent failed: every other agent then completed its bursts, so the
// codec reconstruction from the survivors is the intended new unit.
// Anything else falls to the ordinary degraded-mode failover, which
// tolerates up to k (= ParityShards) failed agents.
func (f *File) writeRange(src []byte, off int64, allowFailover bool, sp *obs.Span) error {
	repairs, failovers := 0, 0
	budget := f.repairBudget(off, int64(len(src)))
	for {
		failed, nerrs, err := f.writeRangeOnce(src, off, sp)
		if err == nil {
			return nil
		}
		corrupt := failed >= 0 && nerrs == 1 && integrity.IsCorrupt(err)
		if corrupt {
			f.noteCorrupt(failed, err)
			if repairs < budget {
				repairs++
				rs := sp.StartChild("write_repair", failed)
				rs.MarkRetry()
				rerr := f.repairCorrupt(failed, err, off, int64(len(src)), rs)
				rs.SetError(rerr)
				rs.Finish()
				if rerr == nil {
					continue // damaged rows healed; retry the write
				}
				f.c.cfg.Logf("core: write repair of agent %d failed: %v", failed, rerr)
			}
		}
		if failed < 0 || !f.c.cfg.Parity || !allowFailover {
			if corrupt {
				f.noteUnrepairable(failed, err)
				return err
			}
			if failed >= 0 {
				f.failAgent(failed, err)
				if f.quorumLost() {
					return ErrNoQuorum
				}
			}
			return err
		}
		f.failAgent(failed, err)
		if f.quorumLost() {
			return ErrNoQuorum
		}
		if !f.c.budget.spend() {
			f.c.metrics.BudgetDenials.Add(1)
			f.c.traceEvent("budget_denied", failed, "write failover denied: %v", err)
			return fmt.Errorf("%w: write failover around agent %d (last error: %v)",
				ErrRetryBudget, failed, err)
		}
		f.c.traceEvent("write_failover", failed, "%s: %v", f.name, err)
		sp.MarkRetry()
		sp.Annotate("failover around agent %d: %v", failed, err)
		f.c.cfg.Logf("core: write failing over around agent %d: %v", failed, err)
		failovers++
		if failovers >= f.c.parityK() {
			allowFailover = false
		}
	}
}

func (f *File) writeRangeOnce(src []byte, off int64, sp *obs.Span) (failedAgent, nerrs int, err error) {
	n := int64(len(src))
	exts := f.c.layout.LocalExtents(off, n)

	var pbufs map[int64][][]byte
	if f.c.cfg.Parity {
		pbufs, err = f.computeParity(src, off, sp)
		if err != nil {
			return -1, 0, err
		}
		l := f.c.layout
		k := f.c.parityK()
		for row := range pbufs {
			for j := 0; j < k; j++ {
				a := l.ParityAgentAt(row, j)
				exts[a].Add(l.ParityLocal(row), l.Unit)
			}
		}
	}

	type result struct {
		agent int
		err   error
	}
	results := make(chan result, len(f.sessions))
	workers := 0
	for i, s := range f.sessions {
		if exts[i].Len() == 0 {
			continue
		}
		if s == nil {
			if !f.c.cfg.Parity {
				return -1, 0, ErrAgentDown
			}
			continue // degraded: this agent's units are covered by parity
		}
		workers++
		go func(i int, s *agentSession, es []extent.Extent) {
			as := sp.StartChild("agent_write", i)
			werr := f.agentWrite(s, es, src, off, pbufs, as)
			as.SetError(werr)
			as.Finish()
			results <- result{agent: i, err: werr}
		}(i, s, exts[i].Extents())
	}
	for ; workers > 0; workers-- {
		r := <-results
		if r.err != nil {
			nerrs++
			// Prefer attributing a real failure over an overload signal.
			if err == nil || (isOverloadSignal(err) && !isOverloadSignal(r.err)) {
				failedAgent, err = r.agent, r.err
			}
		}
	}
	if err != nil {
		if isOverloadSignal(err) {
			// Backpressure, not failure: surface unattributed so the
			// caller neither fails over nor feeds the lifecycle.
			return -1, nerrs, err
		}
		return failedAgent, nerrs, err
	}
	return -1, 0, nil
}

// wburst is one in-flight write burst.
type wburst struct {
	reqID    uint32
	lo, n    int64
	start    time.Time // announce time, for burst completion latency
	deadline time.Time // next retransmission time (backed off)
	giveUp   time.Time // abandon the agent if no progress by then
	retries  int       // consecutive silent re-announces; drives backoff
}

// agentWrite streams the fragment extents to one agent: announce each
// burst, blast its data packets, and collect acknowledgements, honouring
// the agent's resend requests — the write protocol of §3.1 ("the client
// sends out the data to be written as fast as it can ... each storage
// agent ... either acknowledges receipt of all packets or sends requests
// for packets lost").
func (f *File) agentWrite(s *agentSession, es []extent.Extent, src []byte, base int64, pbufs map[int64][][]byte, sp *obs.Span) error {
	cfg := &f.c.cfg
	var bursts []span
	for _, e := range es {
		for lo := e.Off; lo < e.End(); {
			n := cfg.RequestBytes
			if lo+n > e.End() {
				n = e.End() - lo
			}
			bursts = append(bursts, span{lo, n})
			lo += n
		}
	}
	return f.runWriteBursts(s, bursts, func(localOff int64, out []byte) {
		f.gather(s.idx, localOff, out, src, base, pbufs)
	}, sp)
}

// span is one write burst's fragment range.
type span struct{ lo, n int64 }

// runWriteBursts drives the windowed announce/data/ack/resend state
// machine for a list of bursts on one agent. fill supplies the bytes for
// any fragment range being (re)transmitted.
func (f *File) runWriteBursts(s *agentSession, bursts []span, fill func(localOff int64, out []byte), sp *obs.Span) error {
	cfg := &f.c.cfg
	at := f.c.tel.agent(s.idx)
	pending := make(map[uint32]*wburst)
	next := 0
	var pkt wire.Packet
	payload := make([]byte, wire.MaxPayload)

	// Only the announce packet carries the trace context and deadline
	// budget; the data packets that follow stay untraced so the hot path
	// never grows.
	tctx := sp.Context()
	opDl := f.opDeadline
	announce := func(b *wburst) error {
		var budget time.Duration
		if !opDl.IsZero() {
			if budget = time.Until(opDl); budget <= 0 {
				return fmt.Errorf("%w: write %s[%d:%d]", ErrDeadline, f.name, b.lo, b.lo+b.n)
			}
		}
		return f.sendPacket(s, &wire.Packet{Header: wire.Header{
			Type: wire.TWrite, ReqID: b.reqID, Handle: s.handle,
			Offset: b.lo, Length: uint32(b.n), Flags: f.writeFlags(),
		}, Trace: tctx, Deadline: budget})
	}
	sendData := func(b *wburst, off, length int64) error {
		for po := off; po < off+length; {
			m := int64(wire.MaxPayload)
			if po+m > off+length {
				m = off + length - po
			}
			fill(po, payload[:m])
			err := f.sendPacket(s, &wire.Packet{
				Header: wire.Header{
					Type: wire.TData, ReqID: b.reqID, Handle: s.handle,
					Offset: po, Length: uint32(m),
				},
				Payload: payload[:m],
			})
			if err != nil {
				return err
			}
			f.c.metrics.DataPackets.Add(1)
			at.dataPackets.Inc()
			if cfg.WritePace > 0 {
				cfg.Sleep(cfg.WritePace)
			}
			po += m
		}
		return nil
	}

	for next < len(bursts) || len(pending) > 0 {
		// Keep the window full.
		for len(pending) < cfg.WriteWindow && next < len(bursts) {
			sp := bursts[next]
			next++
			now := time.Now()
			b := &wburst{
				reqID: f.c.nextReq(), lo: sp.lo, n: sp.n,
				start:    now,
				deadline: now.Add(cfg.RetryTimeout),
				giveUp:   now.Add(f.c.retryBudget()),
			}
			pending[b.reqID] = b
			f.c.metrics.WriteBursts.Add(1)
			at.writeBursts.Inc()
			if err := announce(b); err != nil {
				return err
			}
			if err := sendData(b, b.lo, b.n); err != nil {
				return err
			}
		}

		// Earliest pending deadline.
		oldest := time.Now().Add(cfg.RetryTimeout)
		for _, b := range pending {
			if b.deadline.Before(oldest) {
				oldest = b.deadline
			}
		}
		s.conn.SetReadDeadline(oldest)
		rn, _, err := s.conn.ReadFrom(s.buf)
		if err != nil {
			if !transport.IsTimeout(err) {
				return err
			}
			now := time.Now()
			if !opDl.IsZero() && !now.Before(opDl) {
				return fmt.Errorf("%w: write %s", ErrDeadline, f.name)
			}
			for _, b := range pending {
				if now.Before(b.deadline) {
					continue
				}
				f.c.metrics.WriteTimeouts.Add(1)
				at.writeTimeouts.Inc()
				if !now.Before(b.giveUp) {
					f.c.traceEvent("write_giveup", s.idx, "%s[%d:%d] retries exhausted", f.name, b.lo, b.lo+b.n)
					f.c.noteOverload(s.idx, "write retry give-up")
					return fmt.Errorf("%w: write %s[%d:%d] agent %d",
						ErrRetriesSpent, f.name, b.lo, b.lo+b.n, s.idx)
				}
				// Re-announce: the agent re-acks if complete or
				// requests exactly what is missing. Consecutive silent
				// re-announces back off exponentially with jitter.
				if b.retries > 0 {
					f.c.metrics.Backoffs.Add(1)
					at.backoffs.Inc()
					f.c.traceEvent("write_timeout", s.idx, "%s[%d:%d] re-announce (retry %d)",
						f.name, b.lo, b.lo+b.n, b.retries)
					sp.MarkRetry()
					sp.Annotate("write timeout [%d:%d): re-announce (retry %d)",
						b.lo, b.lo+b.n, b.retries)
				}
				b.deadline = now.Add(f.c.backoff(b.retries))
				b.retries++
				if err := announce(b); err != nil {
					return err
				}
			}
			continue
		}
		if uerr := wire.Unmarshal(s.buf[:rn], &pkt); uerr != nil {
			continue
		}
		switch pkt.Type {
		case wire.TWriteAck:
			if b := pending[pkt.ReqID]; b != nil {
				observeSpan(at.writeBurstLat, b.start, sp)
			}
			delete(pending, pkt.ReqID)
		case wire.TResend:
			b := pending[pkt.ReqID]
			if b == nil {
				continue
			}
			ranges, perr := wire.ParseResend(pkt.Payload)
			if perr != nil {
				continue
			}
			// The agent is alive and told us what it wants: progress.
			// Reset the backoff and refresh the give-up budget.
			b.retries = 0
			b.deadline = time.Now().Add(cfg.RetryTimeout)
			b.giveUp = time.Now().Add(f.c.retryBudget())
			f.c.metrics.ResendAsks.Add(1)
			at.resendAsks.Inc()
			f.c.traceEvent("resend_ask", s.idx, "%s[%d:%d] %d ranges",
				f.name, b.lo, b.lo+b.n, len(ranges))
			sp.MarkRetry()
			sp.Annotate("resend ask [%d:%d): %d ranges", b.lo, b.lo+b.n, len(ranges))
			for _, r := range ranges {
				if err := sendData(b, r.Off, r.Len); err != nil {
					return err
				}
			}
		case wire.TError:
			if pending[pkt.ReqID] != nil {
				return wire.ParseError(pkt.Payload)
			}
		}
	}
	return nil
}

func (f *File) writeFlags() uint16 {
	if f.c.cfg.SyncWrites {
		return wire.FSyncWrite
	}
	return 0
}

// gather fills payload with the fragment bytes [localOff, localOff+len)
// of the given agent, sourcing data units from the logical buffer src
// (first byte = logical offset base) and parity units from pbufs (k
// buffers per row, in parity position order).
//
//swift:hotpath
func (f *File) gather(agent int, localOff int64, payload []byte, src []byte, base int64, pbufs map[int64][][]byte) {
	l := f.c.layout
	for filled := 0; filled < len(payload); {
		o := localOff + int64(filled)
		in := o % l.Unit
		take := l.Unit - in
		if take > int64(len(payload)-filled) {
			take = int64(len(payload) - filled)
		}
		out := payload[filled : filled+int(take)]
		if g, ok := l.GlobalOf(agent, o); ok {
			si := g - base
			for i := range out {
				j := si + int64(i)
				if j >= 0 && j < int64(len(src)) {
					out[i] = src[j]
				} else {
					out[i] = 0
				}
			}
		} else {
			row := o / l.Unit
			var pb []byte
			if bufs := pbufs[row]; bufs != nil {
				if p := l.ParityPos(row, agent); p >= 0 && p < len(bufs) {
					pb = bufs[p]
				}
			}
			for i := range out {
				j := in + int64(i)
				if pb != nil && j < int64(len(pb)) {
					out[i] = pb[j]
				} else {
					out[i] = 0
				}
			}
		}
		filled += int(take)
	}
}

// Sync asks every live agent to commit the file to stable storage.
func (f *File) Sync() error {
	sp := f.c.startSpan(obs.SpanContext{}, "sync")
	defer sp.Finish()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	sp.Annotate("%s", f.name)
	// Write-behind barrier: every dirty extent reaches the agents before
	// the commit requests go out, and a parked write-back error surfaces
	// here rather than being swallowed.
	if err := f.flushAllLocked(sp); err != nil {
		sp.SetError(err)
		return err
	}
	for _, s := range f.sessions {
		if s == nil {
			continue
		}
		as := sp.StartChild("agent_sync", s.idx)
		reqID := f.c.nextReq()
		reply, err := f.c.rpc(s.conn, s.dataAddr, &wire.Packet{
			Header: wire.Header{Type: wire.TSync, ReqID: reqID, Handle: s.handle},
			Trace:  as.Context(),
		}, reqID)
		if err == nil && reply.Type != wire.TSyncReply {
			err = fmt.Errorf("core: unexpected %v to sync", reply.Type)
		} else if err != nil {
			err = fmt.Errorf("core: sync agent %d: %w", s.idx, err)
		}
		as.SetError(err)
		as.Finish()
		if err != nil {
			sp.SetError(err)
			return err
		}
	}
	return nil
}

// Truncate sets the logical size, truncating every fragment accordingly.
func (f *File) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if size < 0 {
		return errors.New("core: negative size")
	}
	// Flush dirty extents first: a dirty block below the new size must
	// survive the truncation, and flushing the lot is simpler than
	// splitting blocks at the cut.
	if err := f.flushAllLocked(nil); err != nil {
		return err
	}
	frags := f.c.layout.FragmentSizes(size)
	for _, s := range f.sessions {
		if s == nil {
			continue
		}
		reqID := f.c.nextReq()
		reply, err := f.c.rpc(s.conn, s.dataAddr, &wire.Packet{
			Header: wire.Header{Type: wire.TTrunc, ReqID: reqID, Handle: s.handle, Offset: frags[s.idx]},
		}, reqID)
		if err != nil {
			return fmt.Errorf("core: truncate agent %d: %w", s.idx, err)
		}
		if reply.Type != wire.TTruncReply {
			return fmt.Errorf("core: unexpected %v to truncate", reply.Type)
		}
	}
	if f.cobj != nil {
		f.cobj.Invalidate(0, 1<<62)
	}
	f.size = size
	if f.pos > size {
		f.pos = size
	}
	return nil
}

// Close releases the file handle on every agent ("the client expires the
// file handle and the storage agents release the ports and extinguish the
// threads").
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	// Write-behind data leaves before the handles do; a parked flush
	// error surfaces here rather than dying with the file.
	firstErr := f.flushAllLocked(nil)
	f.closed = true
	f.c.dropFile(f)
	for _, s := range f.sessions {
		if s == nil {
			continue
		}
		reqID := f.c.nextReq()
		// Best-effort with a small budget: a dead agent reaps the
		// session on its idle timer anyway, and a full retry budget per
		// dead agent would stall the caller for seconds.
		_, err := f.c.rpcAttempts(s.conn, s.dataAddr, &wire.Packet{
			Header: wire.Header{Type: wire.TClose, ReqID: reqID, Handle: s.handle},
		}, reqID, 2)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: close agent %d: %w", s.idx, err)
		}
		s.close()
	}
	if f.cobj != nil {
		f.cobj.Close()
		f.cobj = nil
	}
	return firstErr
}

// failAgent tears down the session of a failed agent and feeds the
// attributable error into the failure-domain lifecycle (healthy → suspect
// → down; see health.go). The health monitor re-opens the session when the
// agent answers probes again.
func (f *File) failAgent(i int, err error) {
	if i < 0 || i >= len(f.sessions) {
		return
	}
	if s := f.sessions[i]; s != nil {
		s.close()
		f.sessions[i] = nil
	}
	f.c.noteFailure(i, err)
}

// readmit re-opens this file's session on a recovered agent and, when
// rebuild is set and parity is enabled, reconstructs the agent's fragment
// from the survivors before the session becomes visible — units written
// degraded while the agent was out would otherwise be served stale. File
// operations serialize under f.mu, so no read can observe the fresh
// session before the rebuild completes.
func (f *File) readmit(idx int, rebuild bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	if idx < 0 || idx >= len(f.sessions) {
		return nil
	}
	if old := f.sessions[idx]; old != nil {
		// The agent may have died and restarted between probe rounds
		// without this file ever touching it, leaving a session whose
		// handle died with the old process. Handles are only valid for
		// the process that issued them, so always negotiate afresh.
		old.close()
		f.sessions[idx] = nil
	}
	s, err := f.c.openSession(idx, f.c.cfg.Agents[idx], f.name, OpenFlags{Create: true}, obs.SpanContext{})
	if err != nil {
		return err
	}
	f.sessions[idx] = s
	if rebuild && f.c.cfg.Parity {
		if err := f.rebuildLocked(idx); err != nil {
			f.sessions[idx] = nil
			s.close()
			return err
		}
	}
	// Cached blocks stay valid across readmission: recovery and rebuild
	// restore the agent's fragment to the same logical bytes the cache
	// already holds, and dropping the image here would discard absorbed
	// write-behind data.
	return nil
}

func (f *File) liveCount() int {
	n := 0
	for _, s := range f.sessions {
		if s != nil {
			n++
		}
	}
	return n
}

// quorumLost reports whether more agents are out than the redundancy
// scheme tolerates: fewer than Agents-k live sessions means some rows
// have more than k units unavailable, and no codec can cover that.
func (f *File) quorumLost() bool {
	return f.c.cfg.Parity && f.liveCount() < len(f.sessions)-f.c.parityK()
}
