package core

import (
	"strings"
	"testing"

	"swift/internal/obs"
)

// TestStatsAdvance: a live transfer must surface per-operation latency
// percentiles, per-agent burst attribution and protocol counters through
// Client.Stats.
func TestStatsAdvance(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	f, err := c.client.Open("tele", OpenFlags{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := randBytes(200_000, 7)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(make([]byte, len(data)), 0); err != nil {
		t.Fatal(err)
	}

	s := c.client.Stats()
	if s.OpenLat.Count == 0 || s.ReadLat.Count == 0 || s.WriteLat.Count == 0 {
		t.Fatalf("operation latency histograms empty: %+v", s)
	}
	if s.ReadLat.P50 <= 0 || s.ReadLat.P99 < s.ReadLat.P50 {
		t.Fatalf("read percentiles implausible: p50=%v p99=%v", s.ReadLat.P50, s.ReadLat.P99)
	}
	if s.OpenFiles != 1 {
		t.Fatalf("open files = %d, want 1", s.OpenFiles)
	}
	if s.Counters.ReadBursts == 0 || s.Counters.WriteBursts == 0 {
		t.Fatalf("protocol counters did not advance: %+v", s.Counters)
	}
	// Striping means every agent carried traffic.
	for i, as := range s.Agents {
		if as.ReadBursts == 0 || as.WriteBursts == 0 {
			t.Errorf("agent %d saw no bursts: %+v", i, as)
		}
		if as.ReadBursts > 0 && as.ReadBurstLat.Count == 0 {
			t.Errorf("agent %d: read bursts counted but no latency recorded", i)
		}
		if as.State != StateHealthy {
			t.Errorf("agent %d not healthy: %v", i, as.State)
		}
	}
	// Per-agent sums must reconcile with the global counters.
	var rb int64
	for _, as := range s.Agents {
		rb += as.ReadBursts
	}
	if rb != s.Counters.ReadBursts {
		t.Errorf("per-agent read bursts %d != global %d", rb, s.Counters.ReadBursts)
	}
}

// TestHealthTransitionsObserved: killing an agent must surface lifecycle
// transitions in both the per-agent counters and the trace ring.
func TestHealthTransitionsObserved(t *testing.T) {
	c := newCluster(t, clusterOpts{parity: true, agents: 3})
	f, err := c.client.Open("hobs", OpenFlags{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := randBytes(50_000, 9)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}

	c.agents[1].Close() // kill agent 1; parity masks it
	if _, err := f.ReadAt(make([]byte, len(data)), 0); err != nil {
		t.Fatalf("degraded read: %v", err)
	}

	s := c.client.Stats()
	if s.Agents[1].Transitions == 0 {
		t.Fatalf("agent 1 lifecycle transitions not counted: %+v", s.Agents[1])
	}
	if s.Agents[1].State == StateHealthy {
		t.Fatalf("agent 1 still healthy after being killed")
	}
	var sawHealth bool
	for _, e := range c.client.TraceEvents(1024) {
		if e.Kind == "health" && e.Agent == 1 {
			sawHealth = true
			break
		}
	}
	if !sawHealth {
		t.Fatal("no health trace event for agent 1")
	}
}

// TestSharedRegistryExport: a client wired to an external registry must
// expose its series through the Prometheus exporter.
func TestSharedRegistryExport(t *testing.T) {
	reg := obs.NewRegistry()
	n := 0
	for _, name := range reg.Names() {
		_ = name
		n++
	}
	if n != 0 {
		t.Fatalf("fresh registry not empty")
	}

	c := newClusterWithObs(t, reg)
	f, err := c.client.Open("exp", OpenFlags{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(randBytes(20_000, 3), 0); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"swift_client_write_seconds",
		"swift_client_agent_write_bursts_total",
		`agent="0"`,
		"swift_client_data_packets_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus export missing %q", want)
		}
	}
}

// newClusterWithObs is newCluster with an external metric registry.
func newClusterWithObs(t *testing.T, reg *obs.Registry) *cluster {
	t.Helper()
	c := newCluster(t, clusterOpts{})
	// Re-dial the client against the same agents with the registry wired.
	addrs := make([]string, len(c.agents))
	for i, a := range c.agents {
		addrs[i] = a.Addr()
	}
	h := c.client.cfg.Host
	c.client.Close()
	cl, err := Dial(Config{
		Host:         h,
		Agents:       addrs,
		Unit:         4096,
		RetryTimeout: c.client.cfg.RetryTimeout,
		MaxRetries:   c.client.cfg.MaxRetries,
		Obs:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.client = cl
	t.Cleanup(func() { cl.Close() })
	return c
}
