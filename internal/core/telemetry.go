package core

import (
	"strconv"
	"time"

	"swift/internal/cache"
	"swift/internal/ec"
	"swift/internal/obs"
)

// telemetry is the client's observability surface: per-operation latency
// histograms, per-agent protocol attribution, lifecycle transition
// counters and a trace-event ring. Everything recorded on the data path
// is an atomic add into pre-resolved instruments; registration happens
// once in Dial.
type telemetry struct {
	reg   *obs.Registry
	trace *obs.TraceRing

	// Per-operation latency (whole client calls).
	openLat  *obs.Histogram
	readLat  *obs.Histogram
	writeLat *obs.Histogram
	probeLat *obs.Histogram

	openFiles *obs.Gauge

	// Erasure-codec latency (row encode on the write path, row
	// reconstruct on degraded reads, repair, rebuild and scrub).
	ecEncodeLat      *obs.Histogram
	ecReconstructLat *obs.Histogram

	agents []agentTelemetry
}

// agentTelemetry attributes protocol events and burst latency to one
// storage agent.
type agentTelemetry struct {
	readBursts    *obs.Counter
	readTimeouts  *obs.Counter
	writeBursts   *obs.Counter
	writeTimeouts *obs.Counter
	backoffs      *obs.Counter
	resendAsks    *obs.Counter
	dataPackets   *obs.Counter
	corruptions   *obs.Counter // corrupt reads/writes reported by this agent
	repairs       *obs.Counter // units rewritten on this agent from parity
	transitions   *obs.Counter // lifecycle state changes
	state         *obs.Gauge   // current AgentState as integer
	readBurstLat  *obs.Histogram
	writeBurstLat *obs.Histogram

	// Overload control (see overload.go).
	pushbacks          *obs.Counter // pushback replies received from this agent
	hedges             *obs.Counter // read bursts hedged away from this agent
	breakerTransitions *obs.Counter // circuit-breaker state changes
	breakerState       *obs.Gauge   // current BreakerState as integer
}

// newTelemetry builds and registers the client's instruments. When reg is
// nil a private registry is created, so every client always records.
// codec, when non-nil, additionally exports the erasure-coding work
// counters as swift_ec_* metrics.
func newTelemetry(reg *obs.Registry, agents []string, m *Metrics, codec ec.Codec, budget *tokenBucket) *telemetry {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	t := &telemetry{
		reg:       reg,
		trace:     obs.NewTraceRing(1024),
		openLat:   reg.Histogram("swift_client_open_seconds", "Latency of Open calls.", nil),
		readLat:   reg.Histogram("swift_client_read_seconds", "Latency of ReadAt calls.", nil),
		writeLat:  reg.Histogram("swift_client_write_seconds", "Latency of WriteAt calls.", nil),
		probeLat:  reg.Histogram("swift_client_probe_seconds", "Latency of agent health probes.", nil),
		openFiles: reg.Gauge("swift_client_open_files", "Currently open striped files.", nil),
		ecEncodeLat: reg.Histogram("swift_ec_encode_seconds",
			"Latency of erasure-codec row encodes on the write path.", nil),
		ecReconstructLat: reg.Histogram("swift_ec_reconstruct_seconds",
			"Latency of erasure-codec row reconstructions (degraded reads, repair, rebuild).", nil),
	}
	if codec != nil {
		ecLoads := []struct {
			name, help string
			load       func(ec.Stats) int64
		}{
			{"swift_ec_encode_rows_total", "Stripe rows encoded by the erasure codec.",
				func(s ec.Stats) int64 { return s.EncodeCalls }},
			{"swift_ec_encode_bytes_total", "Data bytes consumed by erasure-codec encodes.",
				func(s ec.Stats) int64 { return s.EncodeBytes }},
			{"swift_ec_reconstruct_rows_total", "Stripe rows reconstructed by the erasure codec.",
				func(s ec.Stats) int64 { return s.ReconstructCalls }},
			{"swift_ec_reconstruct_bytes_total", "Shard bytes rebuilt by erasure-codec reconstructions.",
				func(s ec.Stats) int64 { return s.ReconstructBytes }},
			{"swift_ec_matrix_cache_hits_total", "Decode-matrix inversions served from the submatrix cache.",
				func(s ec.Stats) int64 { return s.InvCacheHits }},
			{"swift_ec_matrix_cache_misses_total", "Decode-matrix inversions computed and cached.",
				func(s ec.Stats) int64 { return s.InvCacheMisses }},
		}
		for _, g := range ecLoads {
			load := g.load
			//lint:allow metricname names and help strings are literals in the table above; the loop only threads the closure
			reg.CounterFunc(g.name, g.help, nil, func() float64 { return float64(load(codec.Stats())) })
		}
		for n := 1; n <= codec.ParityShards(); n++ {
			n := n
			reg.CounterFunc("swift_ec_reconstructions_total",
				"Row reconstructions by number of missing shards.",
				obs.Labels{"failures": strconv.Itoa(n)},
				func() float64 {
					s := codec.Stats()
					if n < len(s.ByMissing) {
						return float64(s.ByMissing[n])
					}
					return 0
				})
		}
	}

	// Global protocol counters: exported from the live atomics rather than
	// double-booked.
	global := []struct {
		name, help string
		load       func() int64
	}{
		{"swift_client_read_bursts_total", "Read burst requests issued.", m.ReadBursts.Load},
		{"swift_client_read_timeouts_total", "Read bursts that needed resubmission.", m.ReadTimeouts.Load},
		{"swift_client_write_bursts_total", "Write bursts issued.", m.WriteBursts.Load},
		{"swift_client_write_timeouts_total", "Write bursts re-announced after silence.", m.WriteTimeouts.Load},
		{"swift_client_resend_asks_total", "Agent resend requests honoured.", m.ResendAsks.Load},
		{"swift_client_data_packets_total", "Data packets sent, including resends.", m.DataPackets.Load},
		{"swift_client_backoffs_total", "Retransmission waits grown beyond the base timeout.", m.Backoffs.Load},
		{"swift_client_probes_total", "Health probes sent.", m.Probes.Load},
		{"swift_client_readmissions_total", "Agents automatically returned to service.", m.Readmissions.Load},
		{"swift_client_corruptions_total", "At-rest corruption events reported by agents.", m.Corruptions.Load},
		{"swift_client_repairs_total", "Stripe units rewritten from parity (read-repair and scrub).", m.Repairs.Load},
		{"swift_client_unrepairable_total", "Corruption events parity could not repair.", m.Unrepairable.Load},
		{"swift_client_scrub_rows_total", "Stripe rows verified by the scrubber.", m.ScrubRows.Load},
		{"swift_client_pushbacks_total", "Explicit pushback replies received from agents.", m.Pushbacks.Load},
		{"swift_client_hedged_reads_total", "Read bursts hedged after the straggler delay.", m.Hedges.Load},
		{"swift_client_hedge_wins_total", "Hedged reads completed by parity reconstruction.", m.HedgeWins.Load},
		{"swift_client_retry_budget_denials_total", "Retries or hedges denied by the retry budget.", m.BudgetDenials.Load},
		{"swift_client_breaker_trips_total", "Per-agent circuit breakers tripped open.", m.BreakerTrips.Load},
	}
	for _, g := range global {
		load := g.load
		//lint:allow metricname names and help strings are literals in the table above; the loop only threads the closure
		reg.CounterFunc(g.name, g.help, nil, func() float64 { return float64(load()) })
	}
	if budget != nil {
		reg.GaugeFunc("swift_client_retry_budget_fill",
			"Retry token bucket fill fraction (1 = full budget available).",
			nil, budget.fill)
	}

	t.agents = make([]agentTelemetry, len(agents))
	for i := range agents {
		l := obs.Labels{"agent": strconv.Itoa(i)}
		at := &t.agents[i]
		at.readBursts = reg.Counter("swift_client_agent_read_bursts_total", "Read bursts issued to this agent.", l)
		at.readTimeouts = reg.Counter("swift_client_agent_read_timeouts_total", "Read burst timeouts on this agent.", l)
		at.writeBursts = reg.Counter("swift_client_agent_write_bursts_total", "Write bursts issued to this agent.", l)
		at.writeTimeouts = reg.Counter("swift_client_agent_write_timeouts_total", "Write burst timeouts on this agent.", l)
		at.backoffs = reg.Counter("swift_client_agent_backoffs_total", "Backed-off retransmissions to this agent.", l)
		at.resendAsks = reg.Counter("swift_client_agent_resend_asks_total", "Resend requests honoured from this agent.", l)
		at.dataPackets = reg.Counter("swift_client_agent_data_packets_total", "Data packets sent to this agent.", l)
		at.corruptions = reg.Counter("swift_client_agent_corruptions_total", "Corruption events reported by this agent.", l)
		at.repairs = reg.Counter("swift_client_agent_repairs_total", "Units rewritten on this agent from parity.", l)
		at.transitions = reg.Counter("swift_client_agent_transitions_total", "Failure-domain lifecycle transitions.", l)
		at.state = reg.Gauge("swift_client_agent_state", "Lifecycle state: 0 healthy, 1 suspect, 2 down.", l)
		at.readBurstLat = reg.Histogram("swift_client_agent_read_burst_seconds", "Read burst completion latency per agent.", l)
		at.writeBurstLat = reg.Histogram("swift_client_agent_write_burst_seconds", "Write burst completion latency per agent.", l)
		at.pushbacks = reg.Counter("swift_client_agent_pushbacks_total", "Pushback replies received from this agent.", l)
		at.hedges = reg.Counter("swift_client_agent_hedges_total", "Read bursts hedged away from this agent.", l)
		at.breakerTransitions = reg.Counter("swift_client_agent_breaker_transitions_total", "Circuit-breaker state changes for this agent.", l)
		at.breakerState = reg.Gauge("swift_client_agent_breaker_state", "Breaker state: 0 closed, 1 open, 2 half-open.", l)
	}
	return t
}

// agent returns agent i's instrument set (never nil for valid i).
func (t *telemetry) agent(i int) *agentTelemetry {
	if i < 0 || i >= len(t.agents) {
		return &agentTelemetry{}
	}
	return &t.agents[i]
}

// Obs returns the client's metric registry, for export (swift-load's
// /metrics endpoint, the swift facade's Stats snapshot).
func (c *Client) Obs() *obs.Registry { return c.tel.reg }

// Trace returns the client's trace-event ring.
func (c *Client) Trace() *obs.TraceRing { return c.tel.trace }

// TraceEvents returns up to n recent trace events, oldest first.
func (c *Client) TraceEvents(n int) []obs.Event { return c.tel.trace.Last(n) }

// MetricsSnapshot is a coherent value copy of the client's protocol
// counters. Unlike the deprecated Metrics method it hands out plain
// integers, so callers can difference, print and compare snapshots
// without touching live atomics.
type MetricsSnapshot struct {
	ReadBursts    int64
	ReadTimeouts  int64
	WriteBursts   int64
	WriteTimeouts int64
	ResendAsks    int64
	DataPackets   int64
	Backoffs      int64
	Probes        int64
	Readmissions  int64
	Corruptions   int64
	Repairs       int64
	Unrepairable  int64
	ScrubRows     int64
	Pushbacks     int64
	Hedges        int64
	HedgeWins     int64
	BudgetDenials int64
	BreakerTrips  int64
}

// Sub returns the counter deltas s - prev.
func (s MetricsSnapshot) Sub(prev MetricsSnapshot) MetricsSnapshot {
	return MetricsSnapshot{
		ReadBursts:    s.ReadBursts - prev.ReadBursts,
		ReadTimeouts:  s.ReadTimeouts - prev.ReadTimeouts,
		WriteBursts:   s.WriteBursts - prev.WriteBursts,
		WriteTimeouts: s.WriteTimeouts - prev.WriteTimeouts,
		ResendAsks:    s.ResendAsks - prev.ResendAsks,
		DataPackets:   s.DataPackets - prev.DataPackets,
		Backoffs:      s.Backoffs - prev.Backoffs,
		Probes:        s.Probes - prev.Probes,
		Readmissions:  s.Readmissions - prev.Readmissions,
		Corruptions:   s.Corruptions - prev.Corruptions,
		Repairs:       s.Repairs - prev.Repairs,
		Unrepairable:  s.Unrepairable - prev.Unrepairable,
		ScrubRows:     s.ScrubRows - prev.ScrubRows,
		Pushbacks:     s.Pushbacks - prev.Pushbacks,
		Hedges:        s.Hedges - prev.Hedges,
		HedgeWins:     s.HedgeWins - prev.HedgeWins,
		BudgetDenials: s.BudgetDenials - prev.BudgetDenials,
		BreakerTrips:  s.BreakerTrips - prev.BreakerTrips,
	}
}

// MetricsSnapshot returns a value copy of the protocol counters.
func (c *Client) MetricsSnapshot() MetricsSnapshot {
	m := &c.metrics
	return MetricsSnapshot{
		ReadBursts:    m.ReadBursts.Load(),
		ReadTimeouts:  m.ReadTimeouts.Load(),
		WriteBursts:   m.WriteBursts.Load(),
		WriteTimeouts: m.WriteTimeouts.Load(),
		ResendAsks:    m.ResendAsks.Load(),
		DataPackets:   m.DataPackets.Load(),
		Backoffs:      m.Backoffs.Load(),
		Probes:        m.Probes.Load(),
		Readmissions:  m.Readmissions.Load(),
		Corruptions:   m.Corruptions.Load(),
		Repairs:       m.Repairs.Load(),
		Unrepairable:  m.Unrepairable.Load(),
		ScrubRows:     m.ScrubRows.Load(),
		Pushbacks:     m.Pushbacks.Load(),
		Hedges:        m.Hedges.Load(),
		HedgeWins:     m.HedgeWins.Load(),
		BudgetDenials: m.BudgetDenials.Load(),
		BreakerTrips:  m.BreakerTrips.Load(),
	}
}

// AgentStats is one agent's telemetry snapshot: protocol attribution and
// burst latency percentiles.
type AgentStats struct {
	Addr          string
	State         AgentState
	ReadBursts    int64
	ReadTimeouts  int64
	WriteBursts   int64
	WriteTimeouts int64
	Backoffs      int64
	ResendAsks    int64
	DataPackets   int64
	Corruptions   int64
	Repairs       int64
	Transitions   int64
	ReadBurstLat  obs.Snapshot
	WriteBurstLat obs.Snapshot

	Pushbacks          int64
	Hedges             int64
	Breaker            BreakerState
	BreakerTransitions int64
}

// StatsSnapshot is the whole client's telemetry at one instant: protocol
// counters, per-operation latency and the per-agent breakdown.
type StatsSnapshot struct {
	Counters  MetricsSnapshot
	OpenLat   obs.Snapshot
	ReadLat   obs.Snapshot
	WriteLat  obs.Snapshot
	ProbeLat  obs.Snapshot
	OpenFiles int64
	Agents    []AgentStats

	// Scheme is the redundancy scheme ("m+k" or "none"); EC holds the
	// erasure codec's work counters (zero without parity).
	Scheme           string
	EC               ec.Stats
	ECEncodeLat      obs.Snapshot
	ECReconstructLat obs.Snapshot

	// Overload is the cooperative overload-control summary.
	Overload OverloadStats

	// Cache is the block cache's counters (zeros when caching is off).
	Cache cache.Stats
}

// OverloadStats summarizes the client's overload-control activity.
type OverloadStats struct {
	Pushbacks     int64   // pushback replies received
	Hedges        int64   // read bursts hedged
	HedgeWins     int64   // hedges completed by reconstruction
	BudgetDenials int64   // retries/hedges denied by the budget
	BreakerTrips  int64   // breakers tripped open
	BudgetFill    float64 // retry token bucket fill fraction [0,1]
}

// Stats snapshots the client's telemetry. It is safe to call during live
// transfers; recording is never blocked.
func (c *Client) Stats() StatsSnapshot {
	s := StatsSnapshot{
		Counters:  c.MetricsSnapshot(),
		OpenLat:   c.tel.openLat.Snapshot(),
		ReadLat:   c.tel.readLat.Snapshot(),
		WriteLat:  c.tel.writeLat.Snapshot(),
		ProbeLat:  c.tel.probeLat.Snapshot(),
		OpenFiles: c.tel.openFiles.Load(),

		Scheme:           c.Scheme(),
		EC:               c.ECStats(),
		ECEncodeLat:      c.tel.ecEncodeLat.Snapshot(),
		ECReconstructLat: c.tel.ecReconstructLat.Snapshot(),

		Cache: c.CacheStats(),
	}
	s.Overload = OverloadStats{
		Pushbacks:     s.Counters.Pushbacks,
		Hedges:        s.Counters.Hedges,
		HedgeWins:     s.Counters.HedgeWins,
		BudgetDenials: s.Counters.BudgetDenials,
		BreakerTrips:  s.Counters.BreakerTrips,
		BudgetFill:    c.budget.fill(),
	}
	health := c.Health()
	s.Agents = make([]AgentStats, len(c.tel.agents))
	for i := range c.tel.agents {
		at := &c.tel.agents[i]
		as := &s.Agents[i]
		as.Addr = c.cfg.Agents[i]
		if i < len(health) {
			as.State = health[i].State
		}
		as.ReadBursts = at.readBursts.Load()
		as.ReadTimeouts = at.readTimeouts.Load()
		as.WriteBursts = at.writeBursts.Load()
		as.WriteTimeouts = at.writeTimeouts.Load()
		as.Backoffs = at.backoffs.Load()
		as.ResendAsks = at.resendAsks.Load()
		as.DataPackets = at.dataPackets.Load()
		as.Corruptions = at.corruptions.Load()
		as.Repairs = at.repairs.Load()
		as.Transitions = at.transitions.Load()
		as.ReadBurstLat = at.readBurstLat.Snapshot()
		as.WriteBurstLat = at.writeBurstLat.Snapshot()
		as.Pushbacks = at.pushbacks.Load()
		as.Hedges = at.hedges.Load()
		as.BreakerTransitions = at.breakerTransitions.Load()
		as.Breaker = c.breakers[i].current()
	}
	return s
}

// ecEncode runs the client's codec over one row's shards, timing the
// call into swift_ec_encode_seconds. The codec itself is clock-free; all
// timing lives here on the client.
func (f *File) ecEncode(shards [][]byte) error {
	start := time.Now()
	err := f.c.codec.Encode(shards)
	f.c.tel.ecEncodeLat.Observe(time.Since(start))
	return err
}

// ecReconstruct rebuilds one row's missing shards through the codec,
// timing the call into swift_ec_reconstruct_seconds.
func (f *File) ecReconstruct(shards [][]byte) error {
	start := time.Now()
	err := f.c.codec.Reconstruct(shards)
	f.c.tel.ecReconstructLat.Observe(time.Since(start))
	return err
}

// traceEvent emits a structured trace event; with Verbose configured the
// event also reaches Config.Logf (wired up in Dial via the ring's sink).
func (c *Client) traceEvent(kind string, agent int, format string, args ...any) {
	c.tel.trace.Emitf("core", kind, agent, format, args...)
}

// observe is a small helper: record elapsed time since start into h.
func observe(h *obs.Histogram, start time.Time) { h.Observe(time.Since(start)) }

// observeSpan is observe plus a histogram exemplar: when sp belongs to a
// trace, the observation carries the trace id so exported percentiles link
// to a concrete kept trace. A nil span degrades to plain observe.
func observeSpan(h *obs.Histogram, start time.Time, sp *obs.Span) {
	d := time.Since(start)
	if id := sp.Context().TraceID; id != 0 {
		h.ObserveExemplar(d, id)
		return
	}
	h.Observe(d)
}

// Tracer returns the client's span tracer (nil when tracing is disabled).
func (c *Client) Tracer() *obs.Tracer { return c.tracer }
