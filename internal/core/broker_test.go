package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"swift/internal/mediator"
)

// brokerFed builds a 3-replica in-process federation with leases on a
// fake clock and a broker over it that never sleeps.
func brokerFed(t *testing.T, key string) (*mediator.Federation, *MediatorBroker) {
	t.Helper()
	agents := make([]mediator.AgentInfo, 6)
	for i := range agents {
		agents[i] = mediator.AgentInfo{Addr: "agent:7070", Rate: 400e3, Net: i / 3}
	}
	clk := struct {
		mu  sync.Mutex
		now time.Time
	}{now: time.Unix(1000, 0)}
	base := mediator.Config{
		Agents:   agents,
		Nets:     []mediator.NetInfo{{Name: "lab", Capacity: 1.12e6}, {Name: "dept", Capacity: 1.12e6}},
		LeaseTTL: time.Minute,
		Now: func() time.Time {
			clk.mu.Lock()
			defer clk.mu.Unlock()
			return clk.now
		},
	}
	f, err := mediator.NewFederation([]string{"med-a", "med-b", "med-c"}, base)
	if err != nil {
		t.Fatalf("federation: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	var eps []MediatorEndpoint
	for _, m := range f.Mediators() {
		eps = append(eps, m)
	}
	b, err := NewMediatorBroker(BrokerConfig{
		Endpoints: eps,
		Key:       key,
		Sleep:     func(time.Duration) {},
	})
	if err != nil {
		t.Fatalf("broker: %v", err)
	}
	return f, b
}

// fedIndex maps a replica name to its federation index.
func fedIndex(t *testing.T, f *mediator.Federation, name string) int {
	t.Helper()
	for i, n := range f.Names() {
		if n == name {
			return i
		}
	}
	t.Fatalf("no replica named %q", name)
	return -1
}

func TestBrokerOpensOnHomeReplica(t *testing.T) {
	f, b := brokerFed(t, "tenant-a")
	rec, err := b.OpenSession(mediator.Requirements{Rate: 400e3})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	want := mediator.Place("tenant-a", f.Names())
	if b.Home() != want || rec.Home != want {
		t.Fatalf("home = %q/%q, want %q", b.Home(), rec.Home, want)
	}
	if b.Failovers() != 0 {
		t.Fatalf("failovers = %d on a clean open", b.Failovers())
	}
	if err := b.CloseSession(); err != nil {
		t.Fatalf("close: %v", err)
	}
	f.WaitMirrors()
	for i, m := range f.Mediators() {
		if n := m.Sessions(); n != 0 {
			t.Fatalf("replica %d: %d sessions after close", i, n)
		}
	}
}

// TestBrokerFailoverMatrix kills the home replica at each stage of the
// session life cycle and asserts the broker lands on a survivor without
// losing the session.
func TestBrokerFailoverMatrix(t *testing.T) {
	t.Run("home dead before open", func(t *testing.T) {
		f, b := brokerFed(t, "tenant-a")
		home := mediator.Place("tenant-a", f.Names())
		f.Kill(fedIndex(t, f, home))
		rec, err := b.OpenSession(mediator.Requirements{Rate: 400e3})
		if err != nil {
			t.Fatalf("open with dead home: %v", err)
		}
		if rec.Home == home || b.Home() == home {
			t.Fatalf("session homed on the dead replica %q", home)
		}
		if err := b.Renew(); err != nil {
			t.Fatalf("renew: %v", err)
		}
	})

	t.Run("home dead after open, mirror arrived", func(t *testing.T) {
		f, b := brokerFed(t, "tenant-a")
		if _, err := b.OpenSession(mediator.Requirements{Rate: 400e3}); err != nil {
			t.Fatalf("open: %v", err)
		}
		home := b.Home()
		f.WaitMirrors() // the mirror reached the survivors
		f.Kill(fedIndex(t, f, home))
		if err := b.Renew(); err != nil {
			t.Fatalf("renew after home crash: %v", err)
		}
		if b.Home() == home {
			t.Fatal("renew did not re-target off the dead home")
		}
		if b.Failovers() != 1 {
			t.Fatalf("failovers = %d, want 1", b.Failovers())
		}
		if b.RenewFailures() != 0 {
			t.Fatalf("renew failures = %d, want 0", b.RenewFailures())
		}
		// The survivor adopted; its accounting carries the session.
		surv := fedIndex(t, f, b.Home())
		st, err := f.Mediator(surv).Status()
		if err != nil {
			t.Fatalf("survivor status: %v", err)
		}
		if st.HomeSessions != 1 || st.Failovers != 1 {
			t.Fatalf("survivor status after adoption: %+v", st)
		}
	})

	t.Run("home dead before first mirror flushed", func(t *testing.T) {
		// Worst case: the home crashed before replicating the session.
		// The broker still holds the record, so a survivor adopts it
		// wholesale from the renewal.
		f, b := brokerFed(t, "tenant-a")
		if _, err := b.OpenSession(mediator.Requirements{Rate: 400e3}); err != nil {
			t.Fatalf("open: %v", err)
		}
		home := b.Home()
		// Kill without WaitMirrors: with the fan-out loop dead the queued
		// mirror is never offered, simulating a crash before replication.
		f.Kill(fedIndex(t, f, home))
		if err := b.Renew(); err != nil {
			t.Fatalf("renew with unreplicated session: %v", err)
		}
		if b.Home() == home {
			t.Fatal("renew did not re-target")
		}
		surv := fedIndex(t, f, b.Home())
		if n := f.Mediator(surv).Sessions(); n != 1 {
			t.Fatalf("survivor sessions = %d, want the adopted 1", n)
		}
	})

	t.Run("drain re-targets without failures", func(t *testing.T) {
		f, b := brokerFed(t, "tenant-a")
		if _, err := b.OpenSession(mediator.Requirements{Rate: 400e3}); err != nil {
			t.Fatalf("open: %v", err)
		}
		home := b.Home()
		idx := fedIndex(t, f, home)
		// Renewals race the drain from several goroutines; none may fail.
		var wg sync.WaitGroup
		errs := make(chan error, 64)
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					if err := b.Renew(); err != nil {
						errs <- err
					}
				}
			}()
		}
		handed, err := f.Drain(idx)
		wg.Wait()
		close(errs)
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
		if handed != 1 {
			t.Fatalf("handed = %d, want 1", handed)
		}
		for err := range errs {
			t.Fatalf("renew rejected during drain: %v", err)
		}
		// The next heartbeat follows the handoff to the new home.
		if err := b.Renew(); err != nil {
			t.Fatalf("post-drain renew: %v", err)
		}
		if b.Home() == home {
			t.Fatal("broker still heartbeats the drained replica")
		}
		if b.RenewFailures() != 0 {
			t.Fatalf("renew failures = %d during drain", b.RenewFailures())
		}
	})
}

func TestBrokerSurfacesUnsatisfiableImmediately(t *testing.T) {
	_, b := brokerFed(t, "tenant-a")
	walks := 0
	b.cfg.Sleep = func(time.Duration) { walks++ }
	if _, err := b.OpenSession(mediator.Requirements{Rate: 1e9}); !errors.Is(err, mediator.ErrUnsatisfiable) {
		t.Fatalf("err = %v, want ErrUnsatisfiable", err)
	}
	if walks != 0 {
		t.Fatalf("broker backed off %d times on a hopeless request", walks)
	}
}

func TestBrokerAllReplicasDown(t *testing.T) {
	f, b := brokerFed(t, "tenant-a")
	rec, err := b.OpenSession(mediator.Requirements{Rate: 100e3})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f.WaitMirrors()
	for i := range f.Names() {
		f.Kill(i)
	}
	if err := b.Renew(); !errors.Is(err, ErrMediatorsDown) {
		t.Fatalf("renew err = %v, want ErrMediatorsDown", err)
	}
	if b.RenewFailures() != 1 {
		t.Fatalf("renew failures = %d, want 1", b.RenewFailures())
	}
	if err := b.CloseSession(); !errors.Is(err, ErrMediatorsDown) {
		t.Fatalf("close err = %v, want ErrMediatorsDown", err)
	}
	_ = rec
}

func TestBrokerRenewWithoutSession(t *testing.T) {
	_, b := brokerFed(t, "k")
	if err := b.Renew(); !errors.Is(err, ErrNoMediatorSession) {
		t.Fatalf("err = %v, want ErrNoMediatorSession", err)
	}
	if err := b.CloseSession(); err != nil {
		t.Fatalf("close without session: %v", err)
	}
}
