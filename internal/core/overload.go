package core

// This file implements the client's half of cooperative overload
// control:
//
//   - a token-bucket retry budget shared by every operation, so retries
//     and hedges stay a bounded fraction of fresh traffic and a brown-out
//     cannot be amplified into a retry storm;
//   - a per-agent circuit breaker fed by pushback replies and retry
//     give-ups, so a shedding or silent agent is routed around (through
//     parity reconstruction) instead of being offered more work;
//   - hedged reads: a read burst that stalls past a p99-derived delay is
//     abandoned and its extents reconstructed from the other agents'
//     shards, bounded by the retry budget.
//
// Pushback is deliberately kept out of the failure-domain lifecycle
// (healthy → suspect → down): an overloaded agent is healthy, and taking
// it down would convert a transient brown-out into a capacity loss.

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Overload sentinels.
var (
	// ErrDeadline: the operation's deadline budget was spent (locally or
	// reported by an agent) before the operation completed. Never fed to
	// the failure-domain lifecycle.
	ErrDeadline = errors.New("core: operation deadline exceeded")
	// ErrAgentBusy: an agent refused work with explicit pushback and the
	// operation could not be completed around it. Backpressure, not
	// failure.
	ErrAgentBusy = errors.New("core: agent shedding load")
	// ErrRetryBudget: the shared retry budget is exhausted; the retry or
	// hedge was denied. Fresh operations are unaffected.
	ErrRetryBudget = errors.New("core: retry budget exhausted")
)

// errHedged is the internal signal that a read burst was abandoned at
// the hedge delay; the caller reconstructs the extents from parity.
var errHedged = errors.New("core: read burst hedged")

// tokenBucket is the shared retry budget: fresh operations deposit
// fractional tokens, retries and hedges spend whole ones. With ratio r,
// sustained retry traffic is capped at r times fresh traffic; the cap
// bounds the burst a long quiet period can accumulate.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64 // guarded by mu
	limit  float64
	ratio  float64
}

// newTokenBucket returns a bucket that starts full, so a fault burst
// early in a client's life is not penalized.
func newTokenBucket(limit, ratio float64) *tokenBucket {
	return &tokenBucket{tokens: limit, limit: limit, ratio: ratio}
}

// deposit credits one fresh operation.
func (b *tokenBucket) deposit() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.limit {
		b.tokens = b.limit
	}
	b.mu.Unlock()
}

// spend consumes one retry token, reporting whether the retry may
// proceed.
func (b *tokenBucket) spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// fill reports the bucket's fill fraction in [0, 1].
func (b *tokenBucket) fill() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.limit <= 0 {
		return 0
	}
	return b.tokens / b.limit
}

// BreakerState is one agent's circuit-breaker position.
type BreakerState int32

// Breaker states.
const (
	// BreakerClosed: traffic flows normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: consecutive pushbacks/give-ups tripped the breaker;
	// the stripe layer reconstructs around the agent until the cooldown
	// elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; one trial burst probes the
	// agent. Success closes the breaker, another strike re-opens it.
	BreakerHalfOpen
)

var breakerNames = [...]string{"closed", "open", "half-open"}

func (s BreakerState) String() string {
	if int(s) < len(breakerNames) {
		return breakerNames[s]
	}
	return "breaker(?)"
}

// breaker is one agent's circuit breaker. Methods take the current time
// explicitly so the state machine is testable with a scripted clock.
type breaker struct {
	mu      sync.Mutex
	state   BreakerState // guarded by mu
	strikes int          // consecutive strikes while closed; guarded by mu
	until   time.Time    // open-state cooldown expiry; guarded by mu
}

// allow reports whether the agent may be offered work at time now, and
// transitions open → half-open once the cooldown has elapsed. Half-open
// admits trial traffic; the first signal decides (success closes,
// another strike re-opens).
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Before(b.until) {
			return false
		}
		b.state = BreakerHalfOpen
		return true
	default: // half-open
		return true
	}
}

// strike records a pushback or retry give-up at time now, reporting
// whether the breaker transitioned (and from/to what, for telemetry).
func (b *breaker) strike(now time.Time, threshold int, cooldown time.Duration) (from, to BreakerState, changed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.strikes++
		if b.strikes < threshold {
			return BreakerClosed, BreakerClosed, false
		}
		b.state = BreakerOpen
		b.until = now.Add(cooldown)
		b.strikes = 0
		return BreakerClosed, BreakerOpen, true
	case BreakerHalfOpen:
		// The trial failed: straight back to open for another cooldown.
		b.state = BreakerOpen
		b.until = now.Add(cooldown)
		return BreakerHalfOpen, BreakerOpen, true
	default: // already open
		return BreakerOpen, BreakerOpen, false
	}
}

// success records a completed burst, closing a half-open breaker and
// clearing closed-state strikes.
func (b *breaker) success() (from, to BreakerState, changed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.state = BreakerClosed
		b.strikes = 0
		return BreakerHalfOpen, BreakerClosed, true
	}
	b.strikes = 0
	return b.state, b.state, false
}

// current reports the breaker's state without side effects.
func (b *breaker) current() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// breakerAllow reports whether agent i may be offered work now; it is
// the stripe layer's view of the breaker (open = reconstruct around).
func (c *Client) breakerAllow(i int) bool {
	if i < 0 || i >= len(c.breakers) {
		return true
	}
	return c.breakers[i].allow(time.Now())
}

// BreakerStates snapshots every agent's breaker position, in agent
// order.
func (c *Client) BreakerStates() []BreakerState {
	out := make([]BreakerState, len(c.breakers))
	for i := range c.breakers {
		out[i] = c.breakers[i].current()
	}
	return out
}

// noteOverload feeds one pushback or retry give-up from agent i into its
// breaker, recording the transition in telemetry and the trace ring.
func (c *Client) noteOverload(i int, why string) {
	if i < 0 || i >= len(c.breakers) {
		return
	}
	from, to, changed := c.breakers[i].strike(time.Now(), c.cfg.BreakerThreshold, c.cfg.BreakerCooldown)
	if !changed {
		return
	}
	at := c.tel.agent(i)
	at.breakerTransitions.Inc()
	at.breakerState.Set(int64(to))
	if to == BreakerOpen && from == BreakerClosed {
		c.metrics.BreakerTrips.Add(1)
	}
	c.traceEvent("breaker", i, "%v -> %v (%s)", from, to, why)
	c.cfg.Logf("core: agent %d breaker %v -> %v (%s)", i, from, to, why)
}

// noteAgentOK feeds one successful burst from agent i into its breaker.
func (c *Client) noteAgentOK(i int) {
	if i < 0 || i >= len(c.breakers) {
		return
	}
	from, to, changed := c.breakers[i].success()
	if !changed {
		return
	}
	at := c.tel.agent(i)
	at.breakerTransitions.Inc()
	at.breakerState.Set(int64(to))
	c.traceEvent("breaker", i, "%v -> %v (trial burst completed)", from, to)
	c.cfg.Logf("core: agent %d breaker %v -> %v (trial burst completed)", i, from, to)
}

// hedgeDelay is how long a read burst on agent i may stall before the
// client hedges: a multiple of the agent's live p99 burst latency,
// floored at the base retry timeout so a cold histogram cannot cause
// hair-trigger hedging.
func (c *Client) hedgeDelay(i int) time.Duration {
	d := time.Duration(float64(c.tel.agent(i).readBurstLat.Percentile(99)) * c.cfg.HedgeMultiplier)
	if d < c.cfg.RetryTimeout {
		d = c.cfg.RetryTimeout
	}
	return d
}

// isOverloadSignal reports whether err is backpressure (pushback, hedge,
// spent deadline) rather than agent failure — errors that must never
// feed the failure-domain lifecycle.
func isOverloadSignal(err error) bool {
	return errors.Is(err, ErrAgentBusy) || errors.Is(err, errHedged) || errors.Is(err, ErrDeadline)
}

// agentBusy wraps ErrAgentBusy with the shedding agent's identity.
func agentBusy(i int) error {
	return fmt.Errorf("%w: agent %d", ErrAgentBusy, i)
}
