package core

import (
	"testing"

	"swift/internal/testutil/leakcheck"
)

// TestMain fails the binary if any test leaks a goroutine: every
// client, scrubber, and read-ahead worker must be shut down by the
// test that started it.
func TestMain(m *testing.M) { leakcheck.Main(m) }
