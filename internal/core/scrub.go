package core

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"swift/internal/integrity"
	"swift/internal/obs"
)

// This file implements the background scrubber: a maintenance pass that
// walks a striped object row by row, reads every agent's unit, verifies
// that nothing reports at-rest corruption and that the row's parity
// units match the erasure codec's encoding of its data units, and —
// when repair is enabled — heals what it finds: up to k corrupt units
// per row are reconstructed through the codec from the surviving units;
// a parity mismatch with trusted data is fixed by re-encoding the stale
// parity units. The health monitor drives it periodically
// (MonitorConfig.ScrubInterval); swiftctl scrub drives it on demand.

// ScrubOptions tune one scrub pass.
type ScrubOptions struct {
	// Repair rewrites what the scrub can heal: corrupt units
	// (reconstructed through the erasure codec from their peers) and
	// stale parity units (re-encoded from the data units). Requires
	// parity; without it the scrub only detects.
	Repair bool
	// RowPause inserts a delay between rows so a background scrub yields
	// the medium to foreground transfers. Zero scrubs flat out.
	RowPause time.Duration
}

// ScrubReport totals one scrub pass.
type ScrubReport struct {
	Scheme           string // redundancy scheme, e.g. "7+1" or "6+2" ("none" without parity)
	Objects          int64  // objects visited
	Rows             int64  // stripe rows verified
	Bytes            int64  // unit bytes read and checked
	Corruptions      int64  // units whose agent reported at-rest corruption
	ParityMismatches int64  // rows whose parity units disagreed with the data units
	Repaired         int64  // units rewritten (corrupt units and parity units)
	Unrepairable     int64  // corrupt units the codec could not reconstruct
	Skipped          int64  // rows skipped (agent out, lifecycle unsettled, read error)
}

func (r *ScrubReport) add(o ScrubReport) {
	if r.Scheme == "" {
		r.Scheme = o.Scheme
	}
	r.Objects += o.Objects
	r.Rows += o.Rows
	r.Bytes += o.Bytes
	r.Corruptions += o.Corruptions
	r.ParityMismatches += o.ParityMismatches
	r.Repaired += o.Repaired
	r.Unrepairable += o.Unrepairable
	r.Skipped += o.Skipped
}

// Clean reports whether the pass found nothing wrong and skipped nothing.
func (r ScrubReport) Clean() bool {
	return r.Corruptions == 0 && r.ParityMismatches == 0 &&
		r.Unrepairable == 0 && r.Skipped == 0
}

// String renders the report for logs and swiftctl.
func (r ScrubReport) String() string {
	prefix := ""
	if r.Scheme != "" {
		prefix = fmt.Sprintf("scheme=%s ", r.Scheme)
	}
	return prefix + fmt.Sprintf(
		"objects=%d rows=%d bytes=%d corrupt=%d parity_mismatch=%d repaired=%d unrepairable=%d skipped=%d",
		r.Objects, r.Rows, r.Bytes, r.Corruptions, r.ParityMismatches,
		r.Repaired, r.Unrepairable, r.Skipped)
}

// Scrub verifies this file row by row. The file lock is taken per row, so
// foreground reads and writes interleave with a running scrub; the row
// count is re-derived from the live size each step, and the pass ends
// early if the file shrinks or closes underneath it.
func (f *File) Scrub(opts ScrubOptions) (ScrubReport, error) {
	sp := f.c.startSpan(obs.SpanContext{}, "scrub")
	defer sp.Finish()
	sp.Annotate("%s", f.name)
	rep := ScrubReport{Scheme: f.c.Scheme()}
	for r := int64(0); ; r++ {
		done, err := f.scrubRow(r, opts, &rep, sp)
		if err != nil {
			sp.SetError(err)
			return rep, err
		}
		if done {
			return rep, nil
		}
		if opts.RowPause > 0 {
			f.c.cfg.Sleep(opts.RowPause)
		}
	}
}

// scrubRow verifies (and optionally repairs) stripe row r under f.mu. It
// reports done when the row is past the object tail or the file closed.
// Rows the scrub cannot judge — an agent out, a lifecycle mid-transition,
// a transient read failure — are skipped, not failed: the next pass sees
// them again.
func (f *File) scrubRow(r int64, opts ScrubOptions, rep *ScrubReport, sp *obs.Span) (done bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.size == 0 {
		return true, nil
	}
	l := f.c.layout
	if r > l.RowOfGlobal(f.size-1) {
		return true, nil
	}
	// Judging a row needs every unit: any missing agent makes both the
	// corruption verdict and the XOR check meaningless. An unsettled
	// lifecycle (suspect/down) also defers to the monitor's rebuild.
	for i, s := range f.sessions {
		if s == nil || f.c.agentState(i) != StateHealthy {
			rep.Skipped++
			return false, nil
		}
	}

	bufs := make([][]byte, len(f.sessions))
	errs := make([]error, len(f.sessions))
	var wg sync.WaitGroup
	for i, s := range f.sessions {
		wg.Add(1)
		go func(i int, s *agentSession) {
			defer wg.Done()
			buf := make([]byte, l.Unit)
			errs[i] = f.readBurst(s, r*l.Unit, l.Unit, func(localOff int64, b []byte) {
				copy(buf[localOff-r*l.Unit:], b)
			}, nil, false)
			bufs[i] = buf
		}(i, s)
	}
	wg.Wait()

	var corrupt, failed []int
	for i, e := range errs {
		if e == nil {
			continue
		}
		if integrity.IsCorrupt(e) {
			corrupt = append(corrupt, i)
			rep.Corruptions++
			f.noteCorrupt(i, e)
			continue
		}
		failed = append(failed, i)
	}
	if len(failed) > 0 {
		// The row was not judged; revisit on the next pass. When
		// exactly one agent failed, the error is attributable — feed
		// the lifecycle so the monitor probes it and renegotiates the
		// session (an agent that restarts between probe rounds leaves
		// behind sessions with dead handles, and without foreground
		// traffic nothing else would ever notice). A multi-agent
		// failure looks like a network event: leave the verdict to the
		// health probes.
		if len(failed) == 1 && !isOverloadSignal(errs[failed[0]]) {
			f.failAgent(failed[0], errs[failed[0]])
		}
		rep.Skipped++
		return false, nil
	}
	rep.Rows++
	rep.Bytes += l.Unit * int64(len(f.sessions))
	f.c.metrics.ScrubRows.Add(1)

	k := f.c.parityK()
	switch {
	case len(corrupt) == 0:
		if !f.c.cfg.Parity {
			return false, nil
		}
		// All units read back clean: audit the row through the codec.
		shards := f.shardsOfBufs(r, bufs)
		ok, verr := f.c.codec.Verify(shards)
		if verr != nil {
			return false, fmt.Errorf("core: scrub: verify row %d: %w", r, verr)
		}
		if ok {
			return false, nil
		}
		rep.ParityMismatches++
		f.c.traceEvent("scrub_mismatch", -1, "%s row %d parity disagrees with data", f.name, r)
		f.c.cfg.Logf("core: scrub: %s row %d parity mismatch", f.name, r)
		if !opts.Repair {
			return false, nil
		}
		// The data units read back clean; the parity units are the liars
		// (a crash between data and parity writes leaves exactly this).
		// Re-encode from the data and rewrite only the units that
		// actually disagree.
		m := l.DataPerRow()
		fresh := make([][]byte, m+k)
		copy(fresh, shards[:m])
		for j := 0; j < k; j++ {
			fresh[m+j] = make([]byte, l.Unit)
		}
		if eerr := f.ecEncode(fresh); eerr != nil {
			return false, fmt.Errorf("core: scrub: re-encode row %d: %w", r, eerr)
		}
		for j := 0; j < k; j++ {
			if bytes.Equal(fresh[m+j], shards[m+j]) {
				continue
			}
			pa := l.ParityAgentAt(r, j)
			rs := sp.StartChild("scrub_repair", pa)
			rs.MarkRetry()
			rs.Annotate("row %d parity recomputed", r)
			werr := f.writeRowUnit(pa, r, fresh[m+j], rs)
			rs.SetError(werr)
			rs.Finish()
			if werr != nil {
				return false, fmt.Errorf("core: scrub: rewrite parity row %d: %w", r, werr)
			}
			rep.Repaired++
			f.c.metrics.Repairs.Add(1)
			f.c.tel.agent(pa).repairs.Inc()
			f.c.traceEvent("repair", pa, "%s row %d parity recomputed", f.name, r)
		}

	case len(corrupt) <= k && f.c.cfg.Parity:
		if !opts.Repair {
			return false, nil
		}
		// Up to k corrupt units: drop them from the row and let the
		// codec reconstruct the holes from the survivors.
		shards := f.shardsOfBufs(r, bufs)
		for _, i := range corrupt {
			shards[f.shardOfAgent(r, i)] = nil
		}
		if rerr := f.ecReconstruct(shards); rerr != nil {
			return false, fmt.Errorf("core: scrub: reconstruct row %d: %w", r, rerr)
		}
		for _, dead := range corrupt {
			unit := shards[f.shardOfAgent(r, dead)]
			rs := sp.StartChild("scrub_repair", dead)
			rs.MarkRetry()
			rs.Annotate("row %d rewritten from parity", r)
			werr := f.writeRowUnit(dead, r, unit, rs)
			rs.SetError(werr)
			rs.Finish()
			if werr != nil {
				return false, fmt.Errorf("core: scrub: rewrite agent %d row %d: %w", dead, r, werr)
			}
			rep.Repaired++
			f.c.metrics.Repairs.Add(1)
			f.c.tel.agent(dead).repairs.Inc()
			f.c.traceEvent("repair", dead, "%s row %d rewritten from parity", f.name, r)
			f.c.cfg.Logf("core: scrub: repaired %s row %d on agent %d", f.name, r, dead)
		}

	default:
		// More corrupt units in one row than the scheme has parity (or
		// no parity at all): the codec cannot reconstruct them.
		rep.Unrepairable += int64(len(corrupt))
		for _, i := range corrupt {
			f.noteUnrepairable(i, errs[i])
		}
	}
	return false, nil
}

// shardsOfBufs reorders the per-agent unit buffers of row r into code
// order (data shards first, then parity shards).
func (f *File) shardsOfBufs(r int64, bufs [][]byte) [][]byte {
	shards := make([][]byte, len(bufs))
	for i, b := range bufs {
		shards[f.shardOfAgent(r, i)] = b
	}
	return shards
}

// agentState returns agent i's lifecycle state.
func (c *Client) agentState(i int) AgentState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.health) {
		return StateDown
	}
	return c.health[i].state
}

// ScrubOnce scrubs every open file once, repairing (when parity is
// enabled) what it finds. The health monitor calls it on the
// ScrubInterval tick; it is also safe to call directly.
func (c *Client) ScrubOnce() ScrubReport {
	var rep ScrubReport
	for _, f := range c.openFiles() {
		r, err := f.Scrub(ScrubOptions{Repair: c.cfg.Parity})
		rep.add(r)
		rep.Objects++
		if err != nil {
			c.cfg.Logf("core: scrub %s: %v", f.Name(), err)
		}
	}
	return rep
}

// ScrubObject opens the named object, scrubs it, and closes it again —
// the on-demand maintenance entry point (swiftctl scrub NAME).
func (c *Client) ScrubObject(name string, opts ScrubOptions) (ScrubReport, error) {
	f, err := c.Open(name, OpenFlags{})
	if err != nil {
		return ScrubReport{}, err
	}
	defer f.Close()
	rep, err := f.Scrub(opts)
	rep.Objects = 1
	return rep, err
}

// ScrubAll lists every object on the agent set and scrubs each in turn.
func (c *Client) ScrubAll(opts ScrubOptions) (ScrubReport, error) {
	names, err := c.List()
	if err != nil {
		return ScrubReport{}, err
	}
	var rep ScrubReport
	for _, name := range names {
		r, rerr := c.ScrubObject(name, opts)
		rep.add(r)
		if rerr != nil && err == nil {
			err = fmt.Errorf("core: scrub %s: %w", name, rerr)
		}
	}
	return rep, err
}
