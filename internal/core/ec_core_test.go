package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"swift/internal/ec"
)

// The k=2 (Reed–Solomon) integration matrix: everything the single-XOR
// tests prove for one failure, proven again for two simultaneous
// failures — degraded reads with ANY pair of agents down, degraded
// writes, rebuild while a second agent is still out, read-repair with
// one agent down, and scrub healing a doubly-corrupt row.

// TestDegradedReadMatrixK2: a 3+2 volume serves byte-exact reads with
// any two of its five agents down.
func TestDegradedReadMatrixK2(t *testing.T) {
	for d0 := 0; d0 < 5; d0++ {
		for d1 := d0 + 1; d1 < 5; d1++ {
			t.Run(fmt.Sprintf("dead_%d_%d", d0, d1), func(t *testing.T) {
				c := newCluster(t, clusterOpts{agents: 5, parityShards: 2, unit: 2048})
				if s := c.client.Scheme(); s != "3+2" {
					t.Fatalf("scheme = %q, want 3+2", s)
				}
				f, _ := c.client.Open("obj", OpenFlags{Create: true})
				data := randBytes(60_000, int64(100+5*d0+d1))
				if _, err := f.WriteAt(data, 0); err != nil {
					t.Fatalf("write: %v", err)
				}
				f.Close()

				for _, dead := range []int{d0, d1} {
					c.agents[dead].Close()
					c.client.MarkDown(dead, true)
				}
				g, err := c.client.Open("obj", OpenFlags{})
				if err != nil {
					t.Fatalf("degraded open: %v", err)
				}
				defer g.Close()
				if g.Size() > int64(len(data)) {
					t.Fatalf("degraded size %d > real %d", g.Size(), len(data))
				}
				out := make([]byte, len(data))
				if err := g.readRange(out, 0, true, nil); err != nil {
					t.Fatalf("degraded read: %v", err)
				}
				if !bytes.Equal(out, data) {
					t.Fatal("degraded read mismatch")
				}
			})
		}
	}
}

// TestDegradedWriteThenReadK2: with two agents down, writes land on the
// survivors and read back byte-exact.
func TestDegradedWriteThenReadK2(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 5, parityShards: 2, unit: 2048})
	f, _ := c.client.Open("obj", OpenFlags{Create: true})
	data := randBytes(40_000, 130)
	f.WriteAt(data, 0)
	f.Close()

	for _, dead := range []int{1, 3} {
		c.agents[dead].Close()
		c.client.MarkDown(dead, true)
	}
	g, err := c.client.Open("obj", OpenFlags{})
	if err != nil {
		t.Fatalf("degraded open: %v", err)
	}
	defer g.Close()
	patch := randBytes(10_000, 131)
	if _, err := g.WriteAt(patch, 5_000); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	copy(data[5_000:], patch)
	out := make([]byte, len(data))
	if err := g.readRange(out, 0, true, nil); err != nil {
		t.Fatalf("degraded read-back: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("degraded write mismatch")
	}
}

// TestMidOperationDoubleFailover: two agents die while the file is open;
// the read discovers both failures mid-operation and still completes.
func TestMidOperationDoubleFailover(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 5, parityShards: 2, unit: 2048})
	f, _ := c.client.Open("obj", OpenFlags{Create: true})
	defer f.Close()
	data := randBytes(50_000, 132)
	f.WriteAt(data, 0)

	c.agents[1].Close()
	c.agents[4].Close()
	out := make([]byte, len(data))
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("double failover read: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("double failover read mismatch")
	}
	st := c.client.ECStats()
	if st.ReconstructCalls == 0 {
		t.Fatal("no codec reconstructions recorded")
	}
}

// TestQuorumLossK2: a third failure exceeds the 3+2 scheme; reads fail
// with ErrNoQuorum instead of hanging or fabricating data.
func TestQuorumLossK2(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 5, parityShards: 2, unit: 2048})
	f, _ := c.client.Open("obj", OpenFlags{Create: true})
	defer f.Close()
	data := randBytes(30_000, 133)
	f.WriteAt(data, 0)

	for _, dead := range []int{0, 2, 4} {
		c.agents[dead].Close()
		c.client.MarkDown(dead, true)
	}
	out := make([]byte, len(data))
	if err := f.readRange(out, 0, true, nil); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("read with 3 agents down = %v, want ErrNoQuorum", err)
	}
}

// TestParityUnitsAreConsistentK2: verify on the agents' raw stores that
// each row's two parity units are the codec's encoding of its data
// units — the at-rest layout matches internal/ec exactly.
func TestParityUnitsAreConsistentK2(t *testing.T) {
	const unit = 1024
	c := newCluster(t, clusterOpts{agents: 5, parityShards: 2, unit: unit})
	f, _ := c.client.Open("obj", OpenFlags{Create: true})
	defer f.Close()
	data := randBytes(3*unit*4+777, 134) // a few rows plus a partial tail
	f.WriteAt(data, 0)

	l := c.client.Layout()
	m, k := l.DataPerRow(), l.ParityPerRow()
	codec, err := ec.New(m, k)
	if err != nil {
		t.Fatal(err)
	}
	lastRow := l.RowOfGlobal(int64(len(data)) - 1)
	for row := int64(0); row <= lastRow; row++ {
		shards := make([][]byte, m+k)
		for a := 0; a < 5; a++ {
			obj, err := c.stores[a].Open("obj", false)
			if err != nil {
				t.Fatalf("agent %d: %v", a, err)
			}
			buf := make([]byte, unit)
			obj.ReadAt(buf, row*unit) // zero-padded tail is fine
			obj.Close()
			if p := l.ParityPos(row, a); p >= 0 {
				shards[m+p] = buf
			} else {
				shards[l.DataPos(row, a)] = buf
			}
		}
		ok, err := codec.Verify(shards)
		if err != nil {
			t.Fatalf("row %d: verify: %v", row, err)
		}
		if !ok {
			t.Fatalf("row %d: parity units do not match codec encoding", row)
		}
	}
}

// TestRebuildWithAgentDownK2: rebuilding a replaced fragment succeeds
// while a second agent is still out — the codec reconstructs through
// both holes.
func TestRebuildWithAgentDownK2(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 5, parityShards: 2, unit: 2048})
	f, _ := c.client.Open("obj", OpenFlags{Create: true})
	data := randBytes(45_000, 135)
	f.WriteAt(data, 0)
	f.Close()

	// Agent 3's disk is replaced; agent 1 is down at the same time.
	if err := c.stores[3].Remove("obj"); err != nil {
		t.Fatalf("remove fragment: %v", err)
	}
	c.agents[1].Close()
	c.client.MarkDown(1, true)

	g, err := c.client.Open("obj", OpenFlags{Create: true})
	if err != nil {
		t.Fatalf("open for rebuild: %v", err)
	}
	if err := g.Rebuild(3); err != nil {
		t.Fatalf("rebuild with second agent down: %v", err)
	}
	g.Close()

	want := c.client.Layout().FragmentSizes(int64(len(data)))[3]
	got, err := c.stores[3].Stat("obj")
	if err != nil {
		t.Fatalf("stat rebuilt: %v", err)
	}
	if got != want {
		t.Fatalf("rebuilt fragment size = %d, want %d", got, want)
	}

	h, _ := c.client.Open("obj", OpenFlags{})
	defer h.Close()
	out := make([]byte, len(data))
	if err := h.readRange(out, 0, true, nil); err != nil {
		t.Fatalf("read after rebuild: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("rebuild mismatch")
	}
}

// TestReadRepairCorruptWithAgentDownK2: at-rest corruption on one agent
// while another is down is exactly two impairments — within a 3+2
// scheme's power. The read returns exact data and repairs the rot.
func TestReadRepairCorruptWithAgentDownK2(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 5, parityShards: 2, integrityBS: repairBS})
	f0, data := writeObj(t, c, "obj", 100_000, 136)
	f0.Close()

	c.agents[4].Close()
	c.client.MarkDown(4, true)
	f, err := c.client.Open("obj", OpenFlags{})
	if err != nil {
		t.Fatalf("degraded open: %v", err)
	}
	defer f.Close()

	// Row 0's parity units live on agents 4 (down) and 0; agent 1 holds
	// data there, so rot on it is seen by the healthy read path.
	flipRaw(t, c, 1, "obj", 137)

	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("read over corruption with agent down: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read served corrupt bytes")
	}
	m := c.client.MetricsSnapshot()
	if m.Corruptions == 0 || m.Repairs == 0 {
		t.Fatalf("corruptions=%d repairs=%d, want both > 0", m.Corruptions, m.Repairs)
	}
	if m.Unrepairable != 0 {
		t.Fatalf("unrepairable = %d, want 0", m.Unrepairable)
	}
}

// TestScrubHealsDoubleCorruptionK2: two rotten units in the same stripe
// row — unrepairable under single XOR — are reconstructed and rewritten
// by the scrubber under a k=2 scheme.
func TestScrubHealsDoubleCorruptionK2(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 5, parityShards: 2, integrityBS: repairBS})
	f, data := writeObj(t, c, "obj", 100_000, 137)
	defer f.Close()

	// Both flips land in row 0 of two different agents.
	flipRaw(t, c, 0, "obj", 137)
	flipRaw(t, c, 1, "obj", 2048)

	rep, err := f.Scrub(ScrubOptions{Repair: true})
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.Scheme != "3+2" {
		t.Fatalf("report scheme = %q, want 3+2", rep.Scheme)
	}
	if rep.Corruptions != 2 || rep.Repaired != 2 || rep.Unrepairable != 0 {
		t.Fatalf("scrub report: %s", rep)
	}
	verify, err := f.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatalf("verification scrub: %v", err)
	}
	if !verify.Clean() {
		t.Fatalf("verification scrub not clean: %s", verify)
	}

	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("read after scrub: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read mismatch after scrub repair")
	}
}

// TestECStatsSurfaceInSnapshot: the client stats snapshot carries the
// scheme and codec counters.
func TestECStatsSurfaceInSnapshot(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 5, parityShards: 2, unit: 2048})
	f, _ := c.client.Open("obj", OpenFlags{Create: true})
	defer f.Close()
	f.WriteAt(randBytes(20_000, 138), 0)

	st := c.client.Stats()
	if st.Scheme != "3+2" {
		t.Fatalf("snapshot scheme = %q, want 3+2", st.Scheme)
	}
	if st.EC.EncodeCalls == 0 || st.EC.EncodeBytes == 0 {
		t.Fatalf("encode counters not advancing: %+v", st.EC)
	}
}

// TestParityShardsValidation: unsatisfiable schemes are rejected at
// dial time.
func TestParityShardsValidation(t *testing.T) {
	h := memnetTestHost(t)
	// k=2 needs at least 4 agents (m >= 2).
	_, err := Dial(Config{Host: h, Agents: []string{"a:1", "b:1", "c:1"}, ParityShards: 2})
	if err == nil {
		t.Fatal("expected error for 3 agents with 2 parity shards")
	}
	// Negative k is rejected.
	_, err = Dial(Config{Host: h, Agents: []string{"a:1", "b:1", "c:1"}, ParityShards: -1})
	if err == nil {
		t.Fatal("expected error for negative parity shards")
	}
}
