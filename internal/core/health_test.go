package core

import (
	"bytes"
	"testing"
	"time"

	"swift/internal/agent"
)

// restartAgent brings agent i back on its original host and store, as the
// fault-injection harnesses do.
func restartAgent(t *testing.T, c *cluster, i int) {
	t.Helper()
	fresh, err := agent.New(c.hosts[i], c.stores[i], agent.Config{
		ResendCheck: 5 * time.Millisecond,
		ResendAfter: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("restart agent %d: %v", i, err)
	}
	t.Cleanup(func() { fresh.Close() })
	c.agents[i] = fresh
}

// TestLifecycleStrikes: attributable errors walk an agent through
// healthy -> suspect -> down; re-admission resets the record.
func TestLifecycleStrikes(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 3})
	cl := c.client

	h := cl.Health()
	if len(h) != 3 {
		t.Fatalf("health has %d entries, want 3", len(h))
	}
	for i, ah := range h {
		if ah.State != StateHealthy || ah.Failures != 0 || ah.LastErr != "" {
			t.Fatalf("agent %d not pristine: %+v", i, ah)
		}
	}

	cl.noteFailure(1, ErrRetriesSpent)
	if h := cl.Health()[1]; h.State != StateSuspect || h.Failures != 1 {
		t.Fatalf("after first strike: %+v", h)
	}
	cl.noteFailure(1, ErrAgentDown)
	if h := cl.Health()[1]; h.State != StateDown || h.Failures != 2 {
		t.Fatalf("after second strike: %+v", h)
	}
	if h := cl.Health()[1]; h.LastErr == "" {
		t.Fatal("last error not recorded")
	}
	// The other agents are untouched.
	if h := cl.Health()[0]; h.State != StateHealthy {
		t.Fatalf("agent 0 collateral damage: %+v", h)
	}

	// A probe round finds the agent answering (it never actually died)
	// and re-admits it, clearing the record.
	cl.ProbeOnce()
	if h := cl.Health()[1]; h.State != StateHealthy || h.Failures != 0 || h.LastErr != "" {
		t.Fatalf("after re-admission: %+v", h)
	}
	if cl.MetricsSnapshot().Readmissions == 0 {
		t.Fatal("re-admission not counted")
	}
}

// TestProbeOnceDemotesSilentAgents: with no traffic flowing, probe rounds
// alone demote a dead agent healthy -> suspect -> down.
func TestProbeOnceDemotesSilentAgents(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 3})
	c.agents[2].Close()

	c.client.ProbeOnce()
	if h := c.client.Health()[2]; h.State != StateSuspect {
		t.Fatalf("after one silent round: %v", h.State)
	}
	c.client.ProbeOnce()
	if h := c.client.Health()[2]; h.State != StateDown {
		t.Fatalf("after two silent rounds: %v", h.State)
	}
	if h := c.client.Health()[0]; h.State != StateHealthy {
		t.Fatalf("live agent demoted: %v", h.State)
	}

	// Restart: the next round re-admits it with no caller intervention.
	restartAgent(t, c, 2)
	c.client.ProbeOnce()
	if h := c.client.Health()[2]; h.State != StateHealthy {
		t.Fatalf("restarted agent not re-admitted: %+v", h)
	}
}

// TestMonitorAutoReadmitWithRebuild is the full recovery story: an agent
// crashes mid-life, the data path fails over and marks it, writes proceed
// degraded, the agent restarts, and the background monitor re-admits it —
// reopening the file's session and rebuilding the stale fragment from
// parity — with no caller intervention. VerifyParity then proves the
// rebuilt units are consistent with the degraded writes.
func TestMonitorAutoReadmitWithRebuild(t *testing.T) {
	c := newCluster(t, clusterOpts{agents: 4, parity: true, unit: 2048})
	f, err := c.client.Open("obj", OpenFlags{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := randBytes(60_000, 41)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}

	// Crash agent 2 and touch it: the read fails over (served degraded)
	// and the lifecycle notes the attributable error.
	c.agents[2].Close()
	out := make([]byte, len(data))
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("degraded read mismatch")
	}
	if h := c.client.Health()[2]; h.State == StateHealthy {
		t.Fatal("failover did not mark the agent")
	}

	// Write new content while the agent is out: its units go stale.
	data = randBytes(60_000, 42)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("degraded write: %v", err)
	}

	// Restart the agent and let the monitor find it.
	restartAgent(t, c, 2)
	if err := c.client.StartMonitor(MonitorConfig{
		Interval: 15 * time.Millisecond,
		Rebuild:  true,
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if h := c.client.Health()[2]; h.State == StateHealthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("agent 2 never re-admitted: %+v", c.client.Health()[2])
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.client.StopMonitor()

	// The rebuilt fragment must be consistent with the degraded writes:
	// a scrub finds nothing, and the healthy-path read returns the new
	// content.
	bad, err := f.VerifyParity()
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(bad) != 0 {
		t.Fatalf("rows %v inconsistent after auto-rebuild", bad)
	}
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("post-readmit read: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("post-readmit read mismatch")
	}
}

// TestMonitorStartStopIdempotent: the monitor can be started once, start
// is a no-op while running, and stop is safe to repeat.
func TestMonitorStartStopIdempotent(t *testing.T) {
	c := newCluster(t, clusterOpts{})
	if err := c.client.StartMonitor(MonitorConfig{Interval: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := c.client.StartMonitor(MonitorConfig{Interval: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	c.client.StopMonitor()
	c.client.StopMonitor()
	for i, h := range c.client.Health() {
		if h.State != StateHealthy {
			t.Fatalf("agent %d demoted by monitor on a healthy cluster: %+v", i, h)
		}
	}
	if c.client.MetricsSnapshot().Probes == 0 {
		t.Fatal("monitor sent no probes")
	}
}
