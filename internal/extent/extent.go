// Package extent tracks sets of byte ranges. The Swift data-transfer
// protocol is built on datagrams that may be lost, duplicated, or reordered;
// both sides keep extent sets to decide which portions of a request have
// been received and which must be resent — the client for reads ("the
// client keeps sufficient state to determine what packets have been
// received"), the storage agent for writes ("each storage agent checks the
// packets it receives against the packets it was expecting").
package extent

import (
	"fmt"
	"sort"
	"strings"
)

// Extent is a half-open byte range [Off, Off+Len).
type Extent struct {
	Off int64
	Len int64
}

// End returns the exclusive end offset.
func (e Extent) End() int64 { return e.Off + e.Len }

func (e Extent) String() string { return fmt.Sprintf("[%d,%d)", e.Off, e.End()) }

// Set is a set of non-overlapping, non-adjacent extents kept in ascending
// order. The zero value is an empty set. Set is not safe for concurrent use.
type Set struct {
	es []Extent
}

// Add inserts [off, off+n) into the set, coalescing with any overlapping or
// adjacent extents. Adding an empty or negative range is a no-op.
func (s *Set) Add(off, n int64) {
	if n <= 0 {
		return
	}
	end := off + n
	// Find the first extent whose end is >= off (candidate for merge).
	i := sort.Search(len(s.es), func(i int) bool { return s.es[i].End() >= off }) //lint:allow hotalloc non-escaping closure, stack-allocated (extent bench and hotpath table measure 0 allocs/op)
	j := i
	for j < len(s.es) && s.es[j].Off <= end {
		if s.es[j].Off < off {
			off = s.es[j].Off
		}
		if s.es[j].End() > end {
			end = s.es[j].End()
		}
		j++
	}
	merged := Extent{Off: off, Len: end - off}
	if j > i {
		// Coalesce in place: the merged extent replaces [i, j).
		s.es[i] = merged
		s.es = append(s.es[:i+1], s.es[j:]...)
		return
	}
	// Pure insertion at i: shift the tail up by one.
	s.es = append(s.es, Extent{})
	copy(s.es[i+1:], s.es[i:])
	s.es[i] = merged
}

// AddExtent inserts e into the set.
func (s *Set) AddExtent(e Extent) { s.Add(e.Off, e.Len) }

// Contains reports whether [off, off+n) is fully covered by the set.
// An empty range is trivially contained.
func (s *Set) Contains(off, n int64) bool {
	if n <= 0 {
		return true
	}
	i := sort.Search(len(s.es), func(i int) bool { return s.es[i].End() > off }) //lint:allow hotalloc non-escaping closure, stack-allocated (extent bench and hotpath table measure 0 allocs/op)
	if i == len(s.es) {
		return false
	}
	e := s.es[i]
	return e.Off <= off && e.End() >= off+n
}

// Missing returns the portions of [off, off+n) not covered by the set,
// in ascending order.
func (s *Set) Missing(off, n int64) []Extent {
	var out []Extent
	if n <= 0 {
		return out
	}
	end := off + n
	pos := off
	i := sort.Search(len(s.es), func(i int) bool { return s.es[i].End() > off })
	for ; i < len(s.es) && s.es[i].Off < end; i++ {
		e := s.es[i]
		if e.Off > pos {
			out = append(out, Extent{Off: pos, Len: e.Off - pos})
		}
		if e.End() > pos {
			pos = e.End()
		}
	}
	if pos < end {
		out = append(out, Extent{Off: pos, Len: end - pos})
	}
	return out
}

// Covered returns the total number of bytes of [off, off+n) that are
// covered by the set.
func (s *Set) Covered(off, n int64) int64 {
	missing := int64(0)
	for _, m := range s.Missing(off, n) {
		missing += m.Len
	}
	return n - missing
}

// Total returns the total number of bytes in the set.
func (s *Set) Total() int64 {
	var t int64
	for _, e := range s.es {
		t += e.Len
	}
	return t
}

// Len returns the number of disjoint extents in the set.
func (s *Set) Len() int { return len(s.es) }

// Extents returns a copy of the extents in ascending order.
func (s *Set) Extents() []Extent {
	out := make([]Extent, len(s.es))
	copy(out, s.es)
	return out
}

// Reset empties the set, retaining capacity.
func (s *Set) Reset() { s.es = s.es[:0] }

// String renders the set as a compact list of ranges.
func (s *Set) String() string {
	parts := make([]string, len(s.es))
	for i, e := range s.es {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}
