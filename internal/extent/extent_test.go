package extent

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddCoalesces(t *testing.T) {
	var s Set
	s.Add(10, 5) // [10,15)
	s.Add(20, 5) // [20,25)
	s.Add(15, 5) // bridges: [10,25)
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1: %v", s.Len(), s.String())
	}
	if !s.Contains(10, 15) {
		t.Fatalf("missing coverage: %v", s.String())
	}
	if s.Total() != 15 {
		t.Fatalf("total = %d, want 15", s.Total())
	}
}

func TestAddOverlapVariants(t *testing.T) {
	cases := []struct {
		name string
		adds [][2]int64
		len  int
		tot  int64
	}{
		{"disjoint", [][2]int64{{0, 5}, {10, 5}}, 2, 10},
		{"adjacent", [][2]int64{{0, 5}, {5, 5}}, 1, 10},
		{"contained", [][2]int64{{0, 20}, {5, 5}}, 1, 20},
		{"containing", [][2]int64{{5, 5}, {0, 20}}, 1, 20},
		{"left-overlap", [][2]int64{{5, 10}, {0, 7}}, 1, 15},
		{"right-overlap", [][2]int64{{0, 10}, {7, 10}}, 1, 17},
		{"empty", [][2]int64{{5, 0}, {7, -3}}, 0, 0},
		{"multi-span", [][2]int64{{0, 2}, {4, 2}, {8, 2}, {1, 8}}, 1, 10},
	}
	for _, tc := range cases {
		var s Set
		for _, a := range tc.adds {
			s.Add(a[0], a[1])
		}
		if s.Len() != tc.len || s.Total() != tc.tot {
			t.Errorf("%s: len=%d total=%d, want len=%d total=%d (%v)",
				tc.name, s.Len(), s.Total(), tc.len, tc.tot, s.String())
		}
	}
}

func TestMissing(t *testing.T) {
	var s Set
	s.Add(10, 10) // [10,20)
	s.Add(30, 10) // [30,40)

	miss := s.Missing(0, 50)
	want := []Extent{{0, 10}, {20, 10}, {40, 10}}
	if len(miss) != len(want) {
		t.Fatalf("missing = %v, want %v", miss, want)
	}
	for i := range want {
		if miss[i] != want[i] {
			t.Fatalf("missing[%d] = %v, want %v", i, miss[i], want[i])
		}
	}
	if got := s.Missing(12, 6); len(got) != 0 {
		t.Fatalf("covered range reported missing: %v", got)
	}
	if got := s.Missing(15, 10); len(got) != 1 || got[0] != (Extent{20, 5}) {
		t.Fatalf("partial missing = %v", got)
	}
}

func TestContainsEdges(t *testing.T) {
	var s Set
	s.Add(100, 50)
	checks := []struct {
		off, n int64
		want   bool
	}{
		{100, 50, true}, {100, 51, false}, {99, 2, false},
		{149, 1, true}, {150, 1, false}, {120, 0, true},
	}
	for _, c := range checks {
		if got := s.Contains(c.off, c.n); got != c.want {
			t.Errorf("Contains(%d,%d) = %v, want %v", c.off, c.n, got, c.want)
		}
	}
}

func TestCovered(t *testing.T) {
	var s Set
	s.Add(0, 10)
	s.Add(20, 10)
	if got := s.Covered(5, 20); got != 10 {
		t.Fatalf("covered = %d, want 10", got)
	}
}

func TestReset(t *testing.T) {
	var s Set
	s.Add(0, 10)
	s.Reset()
	if s.Len() != 0 || s.Total() != 0 {
		t.Fatal("reset did not empty the set")
	}
}

// TestQuickAgainstBitmap cross-checks the extent set against a brute-force
// bitmap model under random operations.
func TestQuickAgainstBitmap(t *testing.T) {
	const space = 512
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		var bm [space]bool
		for i := 0; i < 40; i++ {
			off := rng.Int63n(space)
			n := rng.Int63n(space - off)
			s.Add(off, n)
			for j := off; j < off+n; j++ {
				bm[j] = true
			}
		}
		// Total must match.
		tot := int64(0)
		for _, b := range bm {
			if b {
				tot++
			}
		}
		if s.Total() != tot {
			return false
		}
		// Random Contains / Missing probes must match.
		for i := 0; i < 30; i++ {
			off := rng.Int63n(space)
			n := rng.Int63n(space - off)
			all := true
			missing := int64(0)
			for j := off; j < off+n; j++ {
				if !bm[j] {
					all = false
					missing++
				}
			}
			if s.Contains(off, n) != all {
				return false
			}
			var missTot int64
			for _, m := range s.Missing(off, n) {
				missTot += m.Len
				// Every reported-missing byte really is missing.
				for j := m.Off; j < m.End(); j++ {
					if bm[j] {
						return false
					}
				}
			}
			if missTot != missing {
				return false
			}
		}
		// Invariant: extents sorted, non-overlapping, non-adjacent.
		es := s.Extents()
		for i := 1; i < len(es); i++ {
			if es[i-1].End() >= es[i].Off {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAddStableAllocs pins the hot-path contract enforced by swiftvet's
// hotalloc gate: once the extent slice has grown to its working size,
// Add neither allocates on coalescing inserts nor builds temporary
// slices on pure inserts within capacity.
func TestAddStableAllocs(t *testing.T) {
	var s Set
	s.Add(100, 10)
	s.Add(300, 10)
	if allocs := testing.AllocsPerRun(100, func() {
		s.Add(95, 20) // coalesces into [95,110) every run
	}); allocs != 0 {
		t.Fatalf("coalescing Add allocated %v times per run, want 0", allocs)
	}
	// A pure insert within capacity must also be allocation-free: grow
	// once, then re-add the same extent (idempotent coalesce).
	s.Add(200, 10)
	if allocs := testing.AllocsPerRun(100, func() {
		s.Add(200, 10)
	}); allocs != 0 {
		t.Fatalf("idempotent Add allocated %v times per run, want 0", allocs)
	}
}
