package parity

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestXORBasics(t *testing.T) {
	dst := []byte{0x00, 0xff, 0xaa}
	src := []byte{0x0f, 0xf0, 0xaa}
	if n := XOR(dst, src); n != 3 {
		t.Fatalf("n = %d", n)
	}
	want := []byte{0x0f, 0x0f, 0x00}
	if !bytes.Equal(dst, want) {
		t.Fatalf("dst = %x, want %x", dst, want)
	}
}

func TestXORShortSource(t *testing.T) {
	dst := []byte{1, 2, 3, 4}
	if n := XOR(dst, []byte{0xff}); n != 1 {
		t.Fatalf("n = %d", n)
	}
	if dst[0] != 0xfe || dst[1] != 2 {
		t.Fatalf("dst = %v", dst)
	}
}

func TestComputeCheckReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const unit = 257
	units := make([][]byte, 4)
	for i := range units {
		// Uneven lengths: zero-padding semantics.
		units[i] = make([]byte, unit-i*13)
		rng.Read(units[i])
	}
	p := make([]byte, unit)
	Compute(p, units)
	if err := Check(p, units); err != nil {
		t.Fatalf("check: %v", err)
	}

	// Reconstruct each unit from the others plus parity.
	for lost := range units {
		surviving := [][]byte{p}
		for i, u := range units {
			if i != lost {
				surviving = append(surviving, u)
			}
		}
		rec := make([]byte, unit)
		Reconstruct(rec, surviving)
		// The reconstruction is the lost unit zero-padded to unit size.
		want := make([]byte, unit)
		copy(want, units[lost])
		if !bytes.Equal(rec, want) {
			t.Fatalf("unit %d reconstruction mismatch", lost)
		}
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	units := [][]byte{{1, 2, 3}, {4, 5, 6}}
	p := make([]byte, 3)
	Compute(p, units)
	p[1] ^= 0x80
	if err := Check(p, units); err == nil {
		t.Fatal("corruption not detected")
	}
}

// TestQuickReconstructionIdentity: for random unit sets, XOR parity
// reconstructs any single lost member exactly (zero-padded).
func TestQuickReconstructionIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(6)
		unit := 1 + rng.Intn(512)
		units := make([][]byte, k)
		for i := range units {
			units[i] = make([]byte, 1+rng.Intn(unit))
			rng.Read(units[i])
		}
		p := make([]byte, unit)
		Compute(p, units)

		lost := rng.Intn(k)
		surviving := [][]byte{p}
		for i, u := range units {
			if i != lost {
				surviving = append(surviving, u)
			}
		}
		rec := make([]byte, unit)
		Reconstruct(rec, surviving)
		want := make([]byte, unit)
		copy(want, units[lost])
		return bytes.Equal(rec, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
