// Package parity implements Swift's computed-copy redundancy: XOR parity
// over the data units of a stripe row. The paper adopts computed-copy
// redundancy because it "provides resiliency in the presence of a single
// failure (per group) at a low cost in terms of storage but at the expense
// of some additional computation"; this package is that computation.
package parity

import "fmt"

// XOR xors src into dst element-wise over the overlapping prefix and
// returns the number of bytes processed.
func XOR(dst, src []byte) int {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	// Simple byte loop; the compiler vectorizes this adequately, and the
	// paper's cost model charges one instruction per byte anyway.
	for i := 0; i < n; i++ {
		dst[i] ^= src[i]
	}
	return n
}

// Compute fills parityUnit with the XOR of the given data units. Units
// shorter than the parity unit are treated as zero-padded, matching the
// engine's convention that parity units always span the full striping unit.
func Compute(parityUnit []byte, dataUnits [][]byte) {
	for i := range parityUnit {
		parityUnit[i] = 0
	}
	for _, u := range dataUnits {
		XOR(parityUnit, u)
	}
}

// Reconstruct rebuilds a lost unit from the surviving units of its row
// (the remaining data units plus the parity unit). dst must be as long as
// the striping unit; surviving units shorter than dst are zero-padded.
// Reconstruct works identically for a lost data unit and a lost parity
// unit, since XOR parity is its own inverse.
func Reconstruct(dst []byte, surviving [][]byte) {
	Compute(dst, surviving)
}

// Check verifies that parityUnit equals the XOR of the data units and
// returns an error identifying the first mismatching byte otherwise.
func Check(parityUnit []byte, dataUnits [][]byte) error {
	want := make([]byte, len(parityUnit))
	Compute(want, dataUnits)
	for i := range parityUnit {
		if parityUnit[i] != want[i] {
			return fmt.Errorf("parity: mismatch at byte %d: have %#x want %#x",
				i, parityUnit[i], want[i])
		}
	}
	return nil
}
