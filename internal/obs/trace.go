package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one structured trace event: a burst-level or lifecycle-level
// occurrence worth seeing when diagnosing a transfer. Events are emitted
// off the per-packet hot path (timeouts, failovers, state transitions,
// session lifecycle) so the ring can afford a mutex.
type Event struct {
	Time  time.Time
	Layer string // emitting layer: "core", "agent", "mediator", ...
	Kind  string // event class: "read_timeout", "health", "failover", ...
	Agent int    // agent index when attributable, else -1
	Msg   string
}

// String renders the event as one log line.
func (e Event) String() string {
	if e.Agent >= 0 {
		return fmt.Sprintf("%s %s/%s agent=%d %s",
			e.Time.Format("15:04:05.000"), e.Layer, e.Kind, e.Agent, e.Msg)
	}
	return fmt.Sprintf("%s %s/%s %s",
		e.Time.Format("15:04:05.000"), e.Layer, e.Kind, e.Msg)
}

// TraceRing is a bounded ring buffer of recent trace events. Writers
// overwrite the oldest entries; Snapshot returns the retained window in
// order. An optional sink receives every event as it is emitted (the
// Verbose log hookup).
type TraceRing struct {
	mu      sync.Mutex
	buf     []Event
	next    uint64 // total events emitted
	sink    func(Event)
	bufSink chan Event
	dropped atomic.Int64
}

// NewTraceRing returns a ring retaining the last n events (minimum 16).
func NewTraceRing(n int) *TraceRing {
	if n < 16 {
		n = 16
	}
	return &TraceRing{buf: make([]Event, n)}
}

// SetSink installs a function that receives every emitted event (nil
// removes it).
//
// Contract: the sink is called synchronously from the emitting goroutine,
// after the event is recorded, outside the ring's lock. A sink that
// blocks therefore stalls the emitter — acceptable for an in-memory tee,
// wrong for anything that can wait on I/O (a log writer behind a slow
// pipe, a network forwarder). Such sinks must use SetBufferedSink, which
// decouples the emitter behind a bounded queue.
func (r *TraceRing) SetSink(fn func(Event)) {
	r.mu.Lock()
	r.sink = fn
	r.mu.Unlock()
}

// SetBufferedSink installs a sink fed through a bounded queue drained by
// a dedicated goroutine, so Emit never blocks on the sink: when the queue
// is full the event still lands in the ring but the sink delivery is
// dropped and counted (SinkDrops). This is the hookup for sinks that may
// block — the Verbose log tee in client and agent uses it.
//
// The returned stop function closes the queue, waits for the drain
// goroutine to flush, and detaches the sink; it is idempotent and must be
// called on shutdown (Client.Close / Agent.Close do).
func (r *TraceRing) SetBufferedSink(fn func(Event), depth int) (stop func()) {
	if depth <= 0 {
		depth = 256
	}
	ch := make(chan Event, depth)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := range ch {
			fn(e)
		}
	}()
	r.mu.Lock()
	r.bufSink = ch
	r.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			r.bufSink = nil
			r.mu.Unlock()
			close(ch)
			<-done
		})
	}
}

// SinkDrops returns the number of events whose buffered-sink delivery was
// dropped because the queue was full.
func (r *TraceRing) SinkDrops() int64 { return r.dropped.Load() }

// Emit records one event, stamping the time if unset.
func (r *TraceRing) Emit(e Event) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
	sink := r.sink
	// The buffered hand-off happens under the lock so stop() cannot close
	// the channel between the nil check and the send; the send itself is
	// non-blocking, so the lock is never held for longer than an enqueue.
	if r.bufSink != nil {
		select {
		case r.bufSink <- e:
		default:
			r.dropped.Add(1)
		}
	}
	r.mu.Unlock()
	if sink != nil {
		sink(e)
	}
}

// Emitf is Emit with a formatted message.
func (r *TraceRing) Emitf(layer, kind string, agent int, format string, args ...any) {
	r.Emit(Event{Layer: layer, Kind: kind, Agent: agent, Msg: fmt.Sprintf(format, args...)}) //lint:allow hotalloc event messages allocate by design; the ring bounds retention
}

// Total returns the number of events emitted over the ring's lifetime.
func (r *TraceRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Snapshot returns the retained events, oldest first.
func (r *TraceRing) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	start := uint64(0)
	count := r.next
	if count > n {
		start = r.next - n
		count = n
	}
	out := make([]Event, 0, count)
	for i := start; i < r.next; i++ {
		out = append(out, r.buf[i%n])
	}
	return out
}

// Last returns up to n most recent events, oldest first.
func (r *TraceRing) Last(n int) []Event {
	all := r.Snapshot()
	if len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}
