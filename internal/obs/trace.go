package obs

import (
	"fmt"
	"sync"
	"time"
)

// Event is one structured trace event: a burst-level or lifecycle-level
// occurrence worth seeing when diagnosing a transfer. Events are emitted
// off the per-packet hot path (timeouts, failovers, state transitions,
// session lifecycle) so the ring can afford a mutex.
type Event struct {
	Time  time.Time
	Layer string // emitting layer: "core", "agent", "mediator", ...
	Kind  string // event class: "read_timeout", "health", "failover", ...
	Agent int    // agent index when attributable, else -1
	Msg   string
}

// String renders the event as one log line.
func (e Event) String() string {
	if e.Agent >= 0 {
		return fmt.Sprintf("%s %s/%s agent=%d %s",
			e.Time.Format("15:04:05.000"), e.Layer, e.Kind, e.Agent, e.Msg)
	}
	return fmt.Sprintf("%s %s/%s %s",
		e.Time.Format("15:04:05.000"), e.Layer, e.Kind, e.Msg)
}

// TraceRing is a bounded ring buffer of recent trace events. Writers
// overwrite the oldest entries; Snapshot returns the retained window in
// order. An optional sink receives every event as it is emitted (the
// Verbose log hookup).
type TraceRing struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events emitted
	sink func(Event)
}

// NewTraceRing returns a ring retaining the last n events (minimum 16).
func NewTraceRing(n int) *TraceRing {
	if n < 16 {
		n = 16
	}
	return &TraceRing{buf: make([]Event, n)}
}

// SetSink installs a function that receives every emitted event (nil
// removes it). The sink is called synchronously after the event is
// recorded, outside the ring's lock.
func (r *TraceRing) SetSink(fn func(Event)) {
	r.mu.Lock()
	r.sink = fn
	r.mu.Unlock()
}

// Emit records one event, stamping the time if unset.
func (r *TraceRing) Emit(e Event) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
	sink := r.sink
	r.mu.Unlock()
	if sink != nil {
		sink(e)
	}
}

// Emitf is Emit with a formatted message.
func (r *TraceRing) Emitf(layer, kind string, agent int, format string, args ...any) {
	r.Emit(Event{Layer: layer, Kind: kind, Agent: agent, Msg: fmt.Sprintf(format, args...)})
}

// Total returns the number of events emitted over the ring's lifetime.
func (r *TraceRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Snapshot returns the retained events, oldest first.
func (r *TraceRing) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	start := uint64(0)
	count := r.next
	if count > n {
		start = r.next - n
		count = n
	}
	out := make([]Event, 0, count)
	for i := start; i < r.next; i++ {
		out = append(out, r.buf[i%n])
	}
	return out
}

// Last returns up to n most recent events, oldest first.
func (r *TraceRing) Last(n int) []Event {
	all := r.Snapshot()
	if len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}
