package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// fnum formats a float the way Prometheus clients do.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// secs converts a duration to seconds for export.
func secs(d time.Duration) float64 { return d.Seconds() }

// mergeLabels renders labels plus one extra pair (for quantile series).
func mergeLabels(l Labels, k, v string) string {
	m := make(Labels, len(l)+1)
	for lk, lv := range l {
		m[lk] = lv
	}
	m[k] = v
	return m.render()
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format. Histograms export as summaries: quantile series plus
// _sum and _count, values in seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	headered := make(map[string]bool)
	header := func(m *metric) {
		if headered[m.name] {
			return
		}
		headered[m.name] = true
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind.promType())
	}
	for _, m := range r.snapshotMetrics() {
		header(m)
		ls := m.labels.render()
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", m.name, ls, m.c.Load())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %d\n", m.name, ls, m.g.Load())
		case kindCounterFunc, kindGaugeFunc:
			fmt.Fprintf(&b, "%s%s %s\n", m.name, ls, fnum(m.f()))
		case kindHistogram:
			s := m.h.Snapshot()
			for _, q := range [...]struct {
				q string
				v time.Duration
			}{{"0.5", s.P50}, {"0.9", s.P90}, {"0.99", s.P99}} {
				fmt.Fprintf(&b, "%s%s %s\n", m.name, mergeLabels(m.labels, "quantile", q.q), fnum(secs(q.v)))
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", m.name, ls, fnum(secs(s.Sum)))
			fmt.Fprintf(&b, "%s_count%s %d\n", m.name, ls, s.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders every registered metric as one JSON document:
//
//	{"metrics":[{"name":...,"type":...,"labels":{...},"value":...}, ...]}
//
// Histogram entries carry count/sum/mean/min/max/p50/p90/p99 in seconds.
// The encoding is hand-rolled (ordered, no reflection) so output is
// deterministic for golden tests.
func (r *Registry) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString(`{"metrics":[`)
	first := true
	for _, m := range r.snapshotMetrics() {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, `{"name":%q,"type":%q`, m.name, m.kind.jsonType())
		if len(m.labels) > 0 {
			b.WriteString(`,"labels":{`)
			keys := make([]string, 0, len(m.labels))
			for k := range m.labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for i, k := range keys {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%q:%q", k, m.labels[k])
			}
			b.WriteByte('}')
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, `,"value":%d`, m.c.Load())
		case kindGauge:
			fmt.Fprintf(&b, `,"value":%d`, m.g.Load())
		case kindCounterFunc, kindGaugeFunc:
			fmt.Fprintf(&b, `,"value":%s`, jsonNum(m.f()))
		case kindHistogram:
			s := m.h.Snapshot()
			fmt.Fprintf(&b,
				`,"count":%d,"sum":%s,"mean":%s,"min":%s,"max":%s,"p50":%s,"p90":%s,"p99":%s`,
				s.Count, jsonNum(secs(s.Sum)), jsonNum(secs(s.Mean)),
				jsonNum(secs(s.Min)), jsonNum(secs(s.Max)),
				jsonNum(secs(s.P50)), jsonNum(secs(s.P90)), jsonNum(secs(s.P99)))
			// Exemplar TraceIDs (hex) link percentile buckets to kept
			// traces; omitted when no exemplar-carrying observation has
			// landed, which keeps exemplar-free output golden-stable.
			for _, q := range [...]struct {
				name string
				p    float64
			}{{"x50", 50}, {"x90", 90}, {"x99", 99}} {
				if id := m.h.Exemplar(q.p); id != 0 {
					fmt.Fprintf(&b, `,"%s":"%016x"`, q.name, id)
				}
			}
		}
		b.WriteByte('}')
	}
	b.WriteString("]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonNum formats a float as a valid JSON number (no Inf/NaN).
func jsonNum(v float64) string {
	if v != v || v > 1e308 || v < -1e308 { // NaN or ±Inf
		return "0"
	}
	return fnum(v)
}
