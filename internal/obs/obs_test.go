package obs

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"swift/internal/stats"
)

// TestBucketRoundTrip: every value lands in a bucket whose bounds contain
// it, across the small-value exact range and several octaves.
func TestBucketRoundTrip(t *testing.T) {
	values := []int64{0, 1, 2, 7, 8, 9, 15, 16, 100, 1000, 4095, 4096,
		1e6, 1e9, 5e9, 1 << 40}
	for _, v := range values {
		idx := bucketOf(v)
		lo, hi := bucketBounds(idx)
		if v < lo || v >= hi {
			t.Errorf("value %d in bucket %d with bounds [%d,%d)", v, idx, lo, hi)
		}
	}
	// Bucket indices are monotonic in the value.
	prev := -1
	for v := int64(0); v < 1<<20; v += 977 {
		idx := bucketOf(v)
		if idx < prev {
			t.Fatalf("bucketOf not monotonic at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

// TestHistogramBasics: count, sum, min and max are exact; zero
// observations survive later larger ones.
func TestHistogramBasics(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(10 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if want := 2*time.Millisecond + 10*time.Microsecond; s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	if s.Min != 0 {
		t.Fatalf("min = %v, want 0 (zero observation must survive)", s.Min)
	}
	if s.Max != 2*time.Millisecond {
		t.Fatalf("max = %v, want 2ms", s.Max)
	}
	if s.Mean <= 0 || s.Mean > s.Max {
		t.Fatalf("mean = %v out of range", s.Mean)
	}

	var empty Histogram
	es := empty.Snapshot()
	if es.Count != 0 || es.P99 != 0 || es.Min != 0 || es.Max != 0 {
		t.Fatalf("empty snapshot not zero: %+v", es)
	}
}

// TestHistogramPercentilesVsSample: the log-bucketed percentiles must
// agree with the exact order-statistic percentiles from internal/stats
// within the bucket quantization error (≤ ~12.5% plus interpolation).
func TestHistogramPercentilesVsSample(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	var s stats.Sample
	for i := 0; i < 20000; i++ {
		// Long-tailed latencies: microseconds to tens of milliseconds.
		v := time.Duration(1000 * (1 + rng.ExpFloat64()*5000))
		h.Observe(v)
		s.Add(float64(v))
	}
	snap := h.Snapshot()
	for _, tc := range []struct {
		name  string
		got   time.Duration
		exact float64
	}{
		{"p50", snap.P50, s.Percentile(50)},
		{"p90", snap.P90, s.Percentile(90)},
		{"p99", snap.P99, s.Percentile(99)},
	} {
		rel := (float64(tc.got) - tc.exact) / tc.exact
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.25 {
			t.Errorf("%s = %v, exact %.0fns: relative error %.1f%% > 25%%",
				tc.name, tc.got, tc.exact, 100*rel)
		}
	}
	if m := time.Duration(s.Mean()); snap.Mean < m-m/100 || snap.Mean > m+m/100 {
		t.Errorf("mean = %v, exact %v (mean is not quantized; must match)", snap.Mean, m)
	}
}

// TestConcurrent hammers every primitive from many goroutines while a
// reader snapshots; run with -race to prove the data path is lock-free
// and race-free.
func TestConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", nil)
	g := r.Gauge("g", "", nil)
	h := r.Histogram("h_seconds", "", nil)
	ring := NewTraceRing(64)

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					ring.Emitf("test", "tick", w, "i=%d", i)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			h.Snapshot()
			ring.Snapshot()
			var sink nullWriter
			r.WritePrometheus(&sink)
			r.WriteJSON(&sink)
		}
	}()
	wg.Wait()
	<-done

	if got := c.Load(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestTraceRing: wrap-around keeps the newest window in order, Total
// counts everything, the sink sees every event.
func TestTraceRing(t *testing.T) {
	ring := NewTraceRing(16)
	var sunk []Event
	ring.SetSink(func(e Event) { sunk = append(sunk, e) })
	for i := 0; i < 40; i++ {
		ring.Emitf("core", "evt", i%3, "event %d", i)
	}
	if ring.Total() != 40 {
		t.Fatalf("total = %d, want 40", ring.Total())
	}
	if len(sunk) != 40 {
		t.Fatalf("sink saw %d events, want 40", len(sunk))
	}
	snap := ring.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("snapshot holds %d, want 16", len(snap))
	}
	if snap[0].Msg != "event 24" || snap[15].Msg != "event 39" {
		t.Fatalf("wrong window: first=%q last=%q", snap[0].Msg, snap[15].Msg)
	}
	last := ring.Last(4)
	if len(last) != 4 || last[3].Msg != "event 39" {
		t.Fatalf("Last(4) wrong: %+v", last)
	}
	if s := snap[0].String(); s == "" {
		t.Fatal("event String empty")
	}
}
