package obs

import (
	"testing"

	"swift/internal/testutil/leakcheck"
)

// TestMain fails the binary if any test leaks a goroutine: the HTTP
// debug server and buffered trace sinks must shut down when their test
// stops them.
func TestMain(m *testing.M) { leakcheck.Main(m) }
