// Package obs is Swift's low-overhead telemetry layer: atomic counters
// and gauges, log-bucketed latency histograms with percentile snapshots,
// a structured trace-event ring buffer, and a registry that exports
// everything in Prometheus text format and JSON.
//
// The design constraint is the data path: the Swift engine moves one
// datagram every few modeled microseconds, so every primitive that can be
// touched per packet or per burst is a plain atomic operation — no locks,
// no allocation, no map lookups. Registration (naming a metric, attaching
// labels) happens once at setup time under a registry mutex; recording is
// an atomic add into pre-resolved memory.
//
// The paper's argument is quantitative — Tables 1-4 exist to locate the
// bottleneck (client CPU, bus saturation, disk arms) as the system scales.
// This package is how the grown system keeps answering the same question
// at runtime: where does the time go, per agent and per session.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
// The zero value is ready to use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
//
//swift:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//swift:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
// The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
//
//swift:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram bucket geometry: values (nanoseconds) are binned into
// geometric buckets with four sub-buckets per octave, giving a worst-case
// relative quantization error of about 1/8 of the value — plenty for
// locating a bottleneck, at the cost of a fixed 2 KiB array per histogram.
//
// Values 0..7 ns map exactly to buckets 0..7; larger values v with
// 2^e <= v < 2^(e+1) map to bucket 4e + (the next two mantissa bits).
const histBuckets = 256

// bucketOf returns the bucket index for a non-negative value.
func bucketOf(v int64) int {
	if v < 8 {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // 2^e <= v < 2^(e+1), e >= 3
	sub := int(v>>(uint(e)-2)) & 3
	idx := e*4 + sub
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketBounds returns the [lo, hi) value range covered by bucket idx.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < 8 {
		return int64(idx), int64(idx) + 1
	}
	e := idx / 4
	sub := int64(idx % 4)
	width := int64(1) << (uint(e) - 2)
	lo = int64(1)<<uint(e) + sub*width
	return lo, lo + width
}

// Histogram is a log-bucketed latency histogram safe for concurrent
// recording with no locks: every Observe is a handful of atomic adds.
// The zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds+1; 0 means "no observations yet"
	max     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
	// exemplars[i] holds the TraceID of the last exemplar-carrying
	// observation that landed in bucket i (0 = none), linking a latency
	// bucket to a concrete kept trace.
	exemplars [histBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations count as zero.
//
//swift:hotpath
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	// min is stored as v+1 so that 0 can mean "unset".
	for {
		cur := h.min.Load()
		if cur != 0 && v+1 >= cur {
			break
		}
		if h.min.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveExemplar records one duration and, when traceID is non-zero,
// remembers it as the exemplar for the duration's bucket — so a p99
// outlier in the histogram can be chased to the exact trace that caused
// it. Same cost class as Observe: a few atomics, no locks.
//
//swift:hotpath
func (h *Histogram) ObserveExemplar(d time.Duration, traceID uint64) {
	h.Observe(d)
	if traceID != 0 {
		v := int64(d)
		if v < 0 {
			v = 0
		}
		h.exemplars[bucketOf(v)].Store(traceID)
	}
}

// Exemplar returns the TraceID recorded nearest the p-th percentile
// bucket (searching that bucket, then below, then above), or 0 when no
// exemplar has been observed.
func (h *Histogram) Exemplar(p float64) uint64 {
	v := h.Percentile(p)
	idx := bucketOf(int64(v))
	for i := idx; i >= 0; i-- {
		if id := h.exemplars[i].Load(); id != 0 {
			return id
		}
	}
	for i := idx + 1; i < histBuckets; i++ {
		if id := h.exemplars[i].Load(); id != 0 {
			return id
		}
	}
	return 0
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot is a coherent-enough summary of a histogram: counts, sum and
// the standard latency percentiles. Percentile values carry the bucket
// quantization error (≤ ~12.5% relative).
type Snapshot struct {
	Count int64
	Sum   time.Duration
	Mean  time.Duration
	Min   time.Duration
	Max   time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
}

// Snapshot summarizes the histogram. Concurrent recording may skew the
// snapshot by in-flight observations; it never blocks recorders.
func (h *Histogram) Snapshot() Snapshot {
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	s := Snapshot{Count: total, Sum: time.Duration(h.sum.Load())}
	if total == 0 {
		return s
	}
	s.Mean = s.Sum / time.Duration(total)
	if m := h.min.Load(); m > 0 {
		s.Min = time.Duration(m - 1)
	}
	s.Max = time.Duration(h.max.Load())
	s.P50 = percentileFrom(counts[:], total, 50)
	s.P90 = percentileFrom(counts[:], total, 90)
	s.P99 = percentileFrom(counts[:], total, 99)
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) from the live
// buckets.
func (h *Histogram) Percentile(p float64) time.Duration {
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	if total == 0 {
		return 0
	}
	return percentileFrom(counts[:], total, p)
}

// percentileFrom walks the cumulative bucket counts to the rank of the
// requested percentile and interpolates linearly inside the bucket.
func percentileFrom(counts []int64, total int64, p float64) time.Duration {
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := p / 100 * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo, hi := bucketBounds(i)
			// Position of the target rank within this bucket.
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			v := float64(lo) + frac*float64(hi-lo)
			return time.Duration(math.Round(v))
		}
		cum += c
	}
	// All counts consumed (rounding): the top occupied bucket's upper edge.
	for i := len(counts) - 1; i >= 0; i-- {
		if counts[i] > 0 {
			_, hi := bucketBounds(i)
			return time.Duration(hi)
		}
	}
	return 0
}
