package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler serving the registry at /metrics
// (Prometheus text format; ?format=json switches to JSON). When trace is
// non-nil, /trace serves the retained trace events as text.
func Handler(r *Registry, trace *TraceRing) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	if trace != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, e := range trace.Snapshot() {
				fmt.Fprintln(w, e.String())
			}
		})
	}
	// Standard pprof surface, mounted explicitly (no DefaultServeMux).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts an HTTP server on addr exposing /metrics, /trace and
// /debug/pprof for the given registry. It returns once the listener is
// bound; serving proceeds in the background.
func Serve(addr string, r *Registry, trace *TraceRing) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r, trace), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}
