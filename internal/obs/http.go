package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler returns an http.Handler serving the registry at /metrics
// (Prometheus text format; ?format=json switches to JSON). When trace is
// non-nil, /trace serves the retained trace events as text. When tracer
// is non-nil, /trace/ops serves the kept span trees as waterfalls
// (?format=json for the structured form; ?slow=1, ?op=NAME, ?id=HEX and
// ?n=COUNT filter).
func Handler(r *Registry, trace *TraceRing, tracer *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	if trace != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, e := range trace.Snapshot() {
				fmt.Fprintln(w, e.String())
			}
		})
	}
	if tracer != nil {
		mux.HandleFunc("/trace/ops", func(w http.ResponseWriter, req *http.Request) {
			traces, err := FilterTraces(tracer.Traces(), req.URL.Query().Get("op"),
				req.URL.Query().Get("id"), req.URL.Query().Get("slow") != "",
				atoiDefault(req.URL.Query().Get("n"), 0))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if req.URL.Query().Get("format") == "json" {
				w.Header().Set("Content-Type", "application/json")
				json.NewEncoder(w).Encode(struct {
					Traces []Trace `json:"traces"`
				}{traces})
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, tr := range traces {
				fmt.Fprintln(w, tr.Waterfall())
			}
		})
	}
	// Standard pprof surface, mounted explicitly (no DefaultServeMux).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts an HTTP server on addr exposing /metrics, /trace,
// /trace/ops and /debug/pprof for the given registry. It returns once the
// listener is bound; serving proceeds in the background.
func Serve(addr string, r *Registry, trace *TraceRing, tracer *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r, trace, tracer), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// FilterTraces applies the /trace/ops selection: keep only traces whose
// root op equals op (when non-empty), whose id matches idHex (hex,
// when non-empty), that were tail-kept (slow/error/retry — not merely
// head-sampled) when slow is set; n > 0 keeps the n most recent. Shared
// by the HTTP handler and the swiftctl/swift-load epilogues.
func FilterTraces(traces []Trace, op, idHex string, slow bool, n int) ([]Trace, error) {
	var id uint64
	if idHex != "" {
		v, err := strconv.ParseUint(idHex, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad trace id %q: %w", idHex, err)
		}
		id = v
	}
	out := make([]Trace, 0, len(traces))
	for _, tr := range traces {
		if op != "" && tr.Op != op {
			continue
		}
		if id != 0 && tr.TraceID != id {
			continue
		}
		if slow && !tr.Slow() {
			continue
		}
		out = append(out, tr)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out, nil
}

func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return v
}
