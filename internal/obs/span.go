package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Distributed tracing: every client operation mints a (TraceID, SpanID,
// sampled) context that rides the wire to agents and mediators; each hop
// opens child spans, and finished spans land in a bounded per-process
// collector. Sampling is tail-based: when tracing is enabled every op is
// recorded, and the keep/drop decision happens when the op's span tree
// completes — ops that error, hit a resend/repair retry, carry the
// head-sample flag, or run slower than the op type's live p99 are kept;
// the rest are discarded. This keeps the interesting traces (the slow
// tail the paper's tables exist to explain) without paying to retain the
// fast majority.
//
// The per-packet data path stays allocation-free: data packets (TData)
// never carry trace context, and with tracing disabled (Rate <= 0) every
// tracer and span method is a nil-receiver no-op.

// Span context flag bits (propagated on the wire).
const (
	// SpanSampled marks a head-sampled trace: every hop keeps its
	// fragment regardless of local tail criteria.
	SpanSampled uint8 = 1 << 0
)

// SpanContext is the propagated identity of one span: enough for a remote
// hop to attach children to the right parent in the right trace.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
	Flags   uint8
}

// Valid reports whether the context names a trace.
func (c SpanContext) Valid() bool { return c.TraceID != 0 }

// Sampled reports whether the head-sample flag is set.
func (c SpanContext) Sampled() bool { return c.Flags&SpanSampled != 0 }

// Note is one timestamped annotation inside a span, stored as an offset
// from the span's start.
type Note struct {
	At  time.Duration `json:"at"`
	Msg string        `json:"msg"`
}

// SpanRecord is one finished span as retained by the collector.
type SpanRecord struct {
	SpanID uint64        `json:"span"`
	Parent uint64        `json:"parent"` // 0 for a locally-minted root
	Name   string        `json:"name"`
	Layer  string        `json:"layer"`
	Agent  int           `json:"agent"` // agent index when attributable, else -1
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur"`
	Err    string        `json:"err,omitempty"`
	Retry  bool          `json:"retry,omitempty"`
	Fault  bool          `json:"fault,omitempty"` // injected-fault drill
	Notes  []Note        `json:"notes,omitempty"`
}

// Trace is one assembled span tree, kept by the tail sampler.
type Trace struct {
	TraceID uint64        `json:"trace"`
	Op      string        `json:"op"`    // root span name
	Layer   string        `json:"layer"` // root span layer
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"dur"`
	Err     string        `json:"err,omitempty"`
	Keep    string        `json:"keep"` // why it was kept: error|retry|fault|slow|sampled
	Spans   []SpanRecord  `json:"spans"`
}

// Slow reports whether the trace was kept by a tail criterion (not merely
// head-sampled): it errored, retried, carried an injected fault, or
// exceeded the op's live p99.
func (t Trace) Slow() bool { return t.Keep != "sampled" }

// Span is one live (unfinished) span. A nil *Span is valid and every
// method on it is a no-op, so call sites need no tracing-enabled checks
// and the disabled path allocates nothing.
type Span struct {
	tracer *Tracer
	ctx    SpanContext
	parent uint64
	name   string
	layer  string
	agent  int
	start  time.Time

	mu    sync.Mutex
	err   string
	retry bool
	fault bool
	notes []Note
}

// Context returns the span's propagable context (zero for a nil span).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// Annotate appends a timestamped note to the span.
func (s *Span) Annotate(format string, args ...any) {
	if s == nil {
		return
	}
	at := time.Since(s.start)
	s.mu.Lock()
	if len(s.notes) < maxSpanNotes {
		s.notes = append(s.notes, Note{At: at, Msg: fmt.Sprintf(format, args...)}) //lint:allow hotalloc span notes allocate by design, capped at maxSpanNotes per span
	}
	s.mu.Unlock()
}

// SetError records the op's failure on the span (nil error is ignored).
// An errored span forces its whole trace to be kept.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = err.Error()
	s.mu.Unlock()
}

// MarkRetry flags the span as having hit a retry/resend/repair path,
// which forces its whole trace to be kept.
func (s *Span) MarkRetry() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.retry = true
	s.mu.Unlock()
}

// MarkFault flags the span as carrying an injected fault (a latency or
// loss drill), which forces its whole trace to be kept. Without it a
// uniformly-injected delay never trips the live-p99 criterion — every op
// is equally slow — and the drill's traces would only survive head
// sampling.
func (s *Span) MarkFault() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.fault = true
	s.mu.Unlock()
}

// StartChild opens a child span in the same trace. agent is the agent
// index when the child is attributable to one, else -1.
func (s *Span) StartChild(name string, agent int) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.start(s.ctx.TraceID, s.ctx.SpanID, s.ctx.Flags, s.layer, name, agent)
}

// Finish closes the span and hands it to the collector. When it is the
// last unfinished span of its trace, the tree is assembled and the
// keep/drop decision is made.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	rec := SpanRecord{
		SpanID: s.ctx.SpanID,
		Parent: s.parent,
		Name:   s.name,
		Layer:  s.layer,
		Agent:  s.agent,
		Start:  s.start,
		Dur:    end.Sub(s.start),
		Err:    s.err,
		Retry:  s.retry,
		Fault:  s.fault,
		Notes:  s.notes,
	}
	s.mu.Unlock()
	s.tracer.finish(s.ctx, rec)
}

// Collector bounds. Open traces beyond maxOpenTraces and spans beyond
// maxTraceSpans per trace are dropped (and counted); the finished ring
// keeps the most recent keptTraces trees.
const (
	defaultMaxOpen   = 512
	defaultMaxSpans  = 256
	defaultKeep      = 128
	maxSpanNotes     = 64
	slowMinSamples   = 64 // per-op observations before the live p99 gates
	staleTraceWindow = 5 * time.Minute
)

// openTrace buffers the finished spans of a not-yet-complete trace.
type openTrace struct {
	spans   []SpanRecord
	pending int  // spans started but not yet finished
	sampled bool // head-sample flag seen on any span
	touched time.Time
}

// TracerConfig configures a Tracer.
type TracerConfig struct {
	// Rate is the head-sampling probability in [0,1]. Rate <= 0 disables
	// tracing entirely: StartOp returns nil and nothing allocates.
	// Regardless of Rate, while tracing is enabled every op records spans
	// and the tail sampler keeps errored/retried/slow ops.
	Rate float64
	// MaxOpen bounds the number of distinct in-flight traces buffered
	// (default 512). MaxSpans bounds spans retained per trace (default
	// 256). Keep bounds the finished-trace ring (default 128).
	MaxOpen  int
	MaxSpans int
	Keep     int
}

// Tracer mints spans and collects finished span trees. One Tracer serves
// one process (or one in-process cluster in tests, where sharing a single
// Tracer across client, agents and mediators assembles cross-layer trees
// in one collector). The zero of *Tracer (nil) is a valid disabled tracer.
type Tracer struct {
	threshold uint64 // head-sample when id <= threshold
	maxOpen   int
	maxSpans  int
	keep      int
	rng       atomic.Uint64

	mu     sync.Mutex
	open   map[uint64]*openTrace
	done   []Trace // ring, oldest first
	opHist map[string]*Histogram

	spansStarted  Counter
	spansFinished Counter
	spansDropped  Counter
	tracesKept    Counter
	tracesDropped Counter
}

// NewTracer returns a Tracer. A Rate <= 0 yields a nil (disabled) tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Rate <= 0 {
		return nil
	}
	t := &Tracer{
		maxOpen:  cfg.MaxOpen,
		maxSpans: cfg.MaxSpans,
		keep:     cfg.Keep,
		open:     make(map[uint64]*openTrace),
		opHist:   make(map[string]*Histogram),
	}
	if t.maxOpen <= 0 {
		t.maxOpen = defaultMaxOpen
	}
	if t.maxSpans <= 0 {
		t.maxSpans = defaultMaxSpans
	}
	if t.keep <= 0 {
		t.keep = defaultKeep
	}
	if cfg.Rate >= 1 {
		t.threshold = math.MaxUint64
	} else {
		t.threshold = uint64(cfg.Rate * float64(math.MaxUint64))
	}
	t.rng.Store(uint64(time.Now().UnixNano()) | 1)
	return t
}

// Register exposes the tracer's own health as swift_trace_* series.
func (t *Tracer) Register(r *Registry) {
	if t == nil || r == nil {
		return
	}
	r.CounterFunc("swift_trace_spans_started_total",
		"Spans opened across all layers served by this tracer.", nil,
		func() float64 { return float64(t.spansStarted.Load()) })
	r.CounterFunc("swift_trace_spans_finished_total",
		"Spans finished and handed to the collector.", nil,
		func() float64 { return float64(t.spansFinished.Load()) })
	r.CounterFunc("swift_trace_spans_dropped_total",
		"Spans discarded because a collector bound was hit.", nil,
		func() float64 { return float64(t.spansDropped.Load()) })
	r.CounterFunc("swift_trace_traces_kept_total",
		"Assembled span trees kept by the tail sampler.", nil,
		func() float64 { return float64(t.tracesKept.Load()) })
	r.CounterFunc("swift_trace_traces_discarded_total",
		"Assembled span trees discarded by the tail sampler.", nil,
		func() float64 { return float64(t.tracesDropped.Load()) })
	r.GaugeFunc("swift_trace_traces_open",
		"In-flight traces currently buffered in the collector.", nil,
		func() float64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			return float64(len(t.open))
		})
}

// id draws the next pseudo-random 64-bit id (xorshift; never 0).
func (t *Tracer) id() uint64 {
	for {
		old := t.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if t.rng.CompareAndSwap(old, x) {
			if x == 0 {
				x = 1
			}
			return x
		}
	}
}

// StartOp opens a locally-rooted span for one client operation. Returns
// nil (trace everything downstream as no-ops) when tracing is disabled.
func (t *Tracer) StartOp(layer, name string) *Span {
	if t == nil {
		return nil
	}
	var flags uint8
	id := t.id()
	if id <= t.threshold {
		flags = SpanSampled
	}
	return t.start(id, 0, flags, layer, name, -1)
}

// StartRemote opens a span joined to a context that arrived over the
// wire: the local fragment of a trace rooted in another process.
func (t *Tracer) StartRemote(ctx SpanContext, layer, name string, agent int) *Span {
	if t == nil || !ctx.Valid() {
		return nil
	}
	return t.start(ctx.TraceID, ctx.SpanID, ctx.Flags, layer, name, agent)
}

func (t *Tracer) start(traceID, parent uint64, flags uint8, layer, name string, agent int) *Span {
	s := &Span{ //lint:allow hotalloc one span record per traced op, bounded by sampling and maxOpen
		tracer: t,
		ctx:    SpanContext{TraceID: traceID, SpanID: t.id(), Flags: flags},
		parent: parent,
		name:   name,
		layer:  layer,
		agent:  agent,
		start:  time.Now(),
	}
	t.spansStarted.Inc()
	t.mu.Lock()
	ot := t.open[traceID]
	if ot == nil {
		if len(t.open) >= t.maxOpen {
			t.evictStaleLocked(s.start)
		}
		if len(t.open) < t.maxOpen {
			ot = &openTrace{} //lint:allow hotalloc one open-trace record per sampled trace, capped at maxOpen
			t.open[traceID] = ot
		}
	}
	if ot != nil {
		ot.pending++
		ot.touched = s.start
		if flags&SpanSampled != 0 {
			ot.sampled = true
		}
	}
	t.mu.Unlock()
	return s
}

// evictStaleLocked discards open traces untouched for staleTraceWindow —
// orphaned fragments whose root died or whose packets were lost.
func (t *Tracer) evictStaleLocked(now time.Time) {
	for id, ot := range t.open {
		if now.Sub(ot.touched) > staleTraceWindow {
			t.spansDropped.Add(int64(len(ot.spans)))
			delete(t.open, id)
		}
	}
}

func (t *Tracer) finish(ctx SpanContext, rec SpanRecord) {
	t.spansFinished.Inc()
	t.mu.Lock()
	ot := t.open[ctx.TraceID]
	if ot == nil {
		// Collector was full when the span started; nothing buffered.
		t.spansDropped.Inc()
		t.mu.Unlock()
		return
	}
	if len(ot.spans) < t.maxSpans {
		ot.spans = append(ot.spans, rec) //lint:allow hotalloc span buffer grows to maxSpans once per sampled trace, then stops
	} else {
		t.spansDropped.Inc()
	}
	ot.pending--
	ot.touched = time.Now()
	if ot.pending > 0 {
		t.mu.Unlock()
		return
	}
	// Last span of the trace (or of this process's fragment): assemble.
	delete(t.open, ctx.TraceID)
	tr := assemble(ctx.TraceID, ot.spans)
	keep := t.keepReason(ot, tr)
	if keep == "" {
		t.tracesDropped.Inc()
		t.mu.Unlock()
		return
	}
	tr.Keep = keep
	t.done = append(t.done, tr)
	if len(t.done) > t.keep {
		t.done = t.done[len(t.done)-t.keep:]
	}
	t.tracesKept.Inc()
	t.mu.Unlock()
}

// keepReason applies the tail-sampling policy and returns why the trace
// is kept, or "" to discard. Called with t.mu held.
func (t *Tracer) keepReason(ot *openTrace, tr Trace) string {
	errored, retried, faulted := false, false, false
	for i := range tr.Spans {
		if tr.Spans[i].Err != "" {
			errored = true
		}
		if tr.Spans[i].Retry {
			retried = true
		}
		if tr.Spans[i].Fault {
			faulted = true
		}
	}
	// Locally-rooted traces feed the per-op latency histogram that the
	// "slower than live p99" criterion reads.
	var slow bool
	if len(tr.Spans) > 0 && tr.Spans[0].Parent == 0 {
		h := t.opHist[tr.Op]
		if h == nil {
			h = &Histogram{} //lint:allow hotalloc one histogram per distinct op name, amortized over the process lifetime
			t.opHist[tr.Op] = h
		}
		if h.Count() >= slowMinSamples && tr.Dur > h.Percentile(99) {
			slow = true
		}
		h.Observe(tr.Dur)
	}
	switch {
	case errored:
		return "error"
	case retried:
		return "retry"
	case faulted:
		return "fault"
	case slow:
		return "slow"
	case ot.sampled:
		return "sampled"
	}
	return ""
}

// assemble orders spans (roots first, then by start time) into a Trace.
func assemble(traceID uint64, spans []SpanRecord) Trace {
	local := make(map[uint64]bool, len(spans)) //lint:allow hotalloc assemble runs once per kept trace, rate-limited by the keep policy
	for i := range spans {
		local[spans[i].SpanID] = true
	}
	sort.SliceStable(spans, func(i, j int) bool { //lint:allow hotalloc assemble runs once per kept trace, rate-limited by the keep policy
		ri := spans[i].Parent == 0 || !local[spans[i].Parent]
		rj := spans[j].Parent == 0 || !local[spans[j].Parent]
		if ri != rj {
			return ri
		}
		return spans[i].Start.Before(spans[j].Start)
	})
	tr := Trace{TraceID: traceID, Spans: spans}
	if len(spans) > 0 {
		root := spans[0]
		tr.Op, tr.Layer, tr.Start, tr.Dur, tr.Err = root.Name, root.Layer, root.Start, root.Dur, root.Err
	}
	return tr
}

// Traces returns the kept traces, most recent last.
func (t *Tracer) Traces() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, len(t.done))
	copy(out, t.done)
	return out
}

// TraceByID returns the kept trace with the given id.
func (t *Tracer) TraceByID(id uint64) (Trace, bool) {
	if t == nil {
		return Trace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.done) - 1; i >= 0; i-- {
		if t.done[i].TraceID == id {
			return t.done[i], true
		}
	}
	return Trace{}, false
}

// Waterfall renders the trace as an indented text tree with proportional
// duration bars — the human-readable form served at /trace/ops and by
// `swiftctl trace`.
func (tr Trace) Waterfall() string {
	var b []byte
	b = fmt.Appendf(b, "trace %016x op=%s layer=%s dur=%v keep=%s",
		tr.TraceID, tr.Op, tr.Layer, tr.Dur, tr.Keep)
	if tr.Err != "" {
		b = fmt.Appendf(b, " err=%q", tr.Err)
	}
	b = append(b, '\n')
	depth := spanDepths(tr.Spans)
	const cols = 40
	total := tr.Dur
	if total <= 0 {
		total = 1
	}
	for i := range tr.Spans {
		s := &tr.Spans[i]
		off := s.Start.Sub(tr.Start)
		lo := int(int64(off) * cols / int64(total))
		hi := int(int64(off+s.Dur) * cols / int64(total))
		if lo < 0 {
			lo = 0
		}
		if hi > cols {
			hi = cols
		}
		if hi <= lo {
			hi = lo + 1
		}
		bar := make([]byte, cols+1)
		for j := range bar {
			switch {
			case j >= lo && j < hi:
				bar[j] = '#'
			default:
				bar[j] = '.'
			}
		}
		b = fmt.Appendf(b, "  [%s] %*s%s", bar, 2*depth[s.SpanID], "", s.Name)
		if s.Agent >= 0 {
			b = fmt.Appendf(b, " agent=%d", s.Agent)
		}
		b = fmt.Appendf(b, " +%v %v", off, s.Dur)
		if s.Retry {
			b = append(b, " RETRY"...)
		}
		if s.Fault {
			b = append(b, " FAULT"...)
		}
		if s.Err != "" {
			b = fmt.Appendf(b, " err=%q", s.Err)
		}
		b = append(b, '\n')
		for _, n := range s.Notes {
			b = fmt.Appendf(b, "  %*s· +%v %s\n", 2*depth[s.SpanID]+4+cols+1, "", off+n.At, n.Msg)
		}
	}
	return string(b)
}

// spanDepths computes each span's depth below its tree's root.
func spanDepths(spans []SpanRecord) map[uint64]int {
	parent := make(map[uint64]uint64, len(spans))
	for i := range spans {
		parent[spans[i].SpanID] = spans[i].Parent
	}
	depth := make(map[uint64]int, len(spans))
	for i := range spans {
		d, id := 0, spans[i].SpanID
		for n := 0; n < len(spans); n++ {
			p, ok := parent[id]
			if !ok || p == 0 {
				break
			}
			if _, local := parent[p]; !local {
				break
			}
			d++
			id = p
		}
		depth[spans[i].SpanID] = d
	}
	return depth
}
