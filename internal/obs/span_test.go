package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// alwaysTracer returns a tracer that head-samples everything.
func alwaysTracer() *Tracer { return NewTracer(TracerConfig{Rate: 1}) }

func TestTracerDisabledIsNil(t *testing.T) {
	if tr := NewTracer(TracerConfig{Rate: 0}); tr != nil {
		t.Fatal("rate 0 must yield a nil tracer")
	}
	var tr *Tracer
	s := tr.StartOp("core", "read")
	if s != nil {
		t.Fatal("nil tracer must mint nil spans")
	}
	// Every method on a nil span is a no-op.
	s.Annotate("x %d", 1)
	s.SetError(errors.New("x"))
	s.MarkRetry()
	c := s.StartChild("y", 2)
	if c != nil {
		t.Fatal("child of nil span must be nil")
	}
	if ctx := s.Context(); ctx.Valid() {
		t.Fatal("nil span context must be invalid")
	}
	s.Finish()
	if got := tr.Traces(); got != nil {
		t.Fatalf("nil tracer Traces() = %v", got)
	}
}

// TestTracerDisabledZeroAlloc pins the acceptance criterion: with tracing
// disabled, the span API allocates nothing.
func TestTracerDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.StartOp("core", "read")
		c := s.StartChild("agent_read", 1)
		c.MarkRetry()
		c.Finish()
		s.Finish()
		_ = s.Context()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %v per op, want 0", allocs)
	}
}

func TestSpanTreeAssembly(t *testing.T) {
	tr := alwaysTracer()
	root := tr.StartOp("core", "read")
	if root == nil {
		t.Fatal("enabled tracer minted nil span")
	}
	if !root.Context().Sampled() {
		t.Fatal("rate-1 tracer must head-sample")
	}
	c0 := root.StartChild("agent_read", 0)
	c1 := root.StartChild("agent_read", 1)
	c1.Annotate("resend ask")
	c1.MarkRetry()
	// A remote hop joins via the wire context.
	remote := tr.StartRemote(c0.Context(), "agent", "serve_read", 0)
	remote.Finish()
	c0.Finish()
	c1.Finish()
	root.Finish()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.Op != "read" || got.Layer != "core" {
		t.Fatalf("root op/layer = %q/%q", got.Op, got.Layer)
	}
	if got.Keep != "retry" {
		t.Fatalf("keep = %q, want retry (retry outranks sampled)", got.Keep)
	}
	if len(got.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(got.Spans))
	}
	if got.Spans[0].Parent != 0 {
		t.Fatal("root span must sort first")
	}
	byID := map[uint64]SpanRecord{}
	for _, s := range got.Spans {
		byID[s.SpanID] = s
	}
	rootID := got.Spans[0].SpanID
	var foundRemote, foundRetry bool
	for _, s := range got.Spans {
		switch s.Name {
		case "agent_read":
			if s.Parent != rootID {
				t.Fatalf("agent_read parent = %x, want root %x", s.Parent, rootID)
			}
			if s.Retry {
				foundRetry = true
				if len(s.Notes) != 1 || s.Notes[0].Msg != "resend ask" {
					t.Fatalf("retry span notes = %+v", s.Notes)
				}
			}
		case "serve_read":
			foundRemote = true
			p, ok := byID[s.Parent]
			if !ok || p.Name != "agent_read" || p.Agent != 0 {
				t.Fatalf("serve_read parent = %+v", p)
			}
			if s.Layer != "agent" {
				t.Fatalf("serve_read layer = %q", s.Layer)
			}
		}
	}
	if !foundRemote || !foundRetry {
		t.Fatalf("remote=%v retry=%v, want both", foundRemote, foundRetry)
	}
	if _, ok := tr.TraceByID(got.TraceID); !ok {
		t.Fatal("TraceByID missed a kept trace")
	}
	wf := got.Waterfall()
	for _, want := range []string{"op=read", "serve_read", "RETRY", "resend ask"} {
		if !strings.Contains(wf, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, wf)
		}
	}
}

func TestTailSamplingKeepReasons(t *testing.T) {
	// Head-sampling off (tiny rate): plain fast ops must be discarded,
	// errored and retried ones kept.
	tr := NewTracer(TracerConfig{Rate: 1e-18})
	tr.threshold = 0 // never head-sample, deterministically

	s := tr.StartOp("core", "write")
	s.Finish()
	if n := len(tr.Traces()); n != 0 {
		t.Fatalf("fast clean op kept (%d traces), want discard", n)
	}
	if tr.tracesDropped.Load() != 1 {
		t.Fatalf("tracesDropped = %d, want 1", tr.tracesDropped.Load())
	}

	s = tr.StartOp("core", "write")
	s.SetError(errors.New("agent down"))
	s.Finish()
	s = tr.StartOp("core", "write")
	s.MarkRetry()
	s.Finish()
	traces := tr.Traces()
	if len(traces) != 2 || traces[0].Keep != "error" || traces[1].Keep != "retry" {
		t.Fatalf("keeps = %+v, want [error retry]", traces)
	}
	if traces[0].Err != "agent down" {
		t.Fatalf("root err = %q", traces[0].Err)
	}
}

func TestTailSamplingSlowOutlier(t *testing.T) {
	tr := NewTracer(TracerConfig{Rate: 1e-18})
	tr.threshold = 0
	// Feed the live p99 with fast ops, then finish one far past it. The
	// per-op histogram is internal, so seed it directly and use a
	// backdated span for the outlier.
	h := &Histogram{}
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	tr.mu.Lock()
	tr.opHist["read"] = h
	tr.mu.Unlock()

	s := tr.StartOp("core", "read")
	s.start = s.start.Add(-time.Second) // op took ~1s vs 1ms p99
	s.Finish()
	traces := tr.Traces()
	if len(traces) != 1 || traces[0].Keep != "slow" {
		t.Fatalf("slow outlier not kept: %+v", traces)
	}
}

func TestCollectorBounds(t *testing.T) {
	tr := NewTracer(TracerConfig{Rate: 1, MaxOpen: 2, MaxSpans: 2, Keep: 2})
	// Open three traces: the third exceeds MaxOpen and is not buffered.
	a := tr.StartOp("core", "read")
	b := tr.StartOp("core", "read")
	c := tr.StartOp("core", "read")
	c.Finish()
	if n := len(tr.Traces()); n != 0 {
		t.Fatalf("over-bound trace was kept (%d)", n)
	}
	if tr.spansDropped.Load() == 0 {
		t.Fatal("over-bound span not counted dropped")
	}
	// Per-trace span cap: 3 children + root on a MaxSpans=2 tracer.
	a.StartChild("x", -1).Finish()
	a.StartChild("y", -1).Finish()
	a.StartChild("z", -1).Finish()
	a.Finish()
	b.Finish()
	traces := tr.Traces()
	for _, g := range traces {
		if len(g.Spans) > 2 {
			t.Fatalf("trace retained %d spans, cap 2", len(g.Spans))
		}
	}
	// Keep ring bound.
	for i := 0; i < 5; i++ {
		s := tr.StartOp("core", "read")
		s.Finish()
	}
	if n := len(tr.Traces()); n > 2 {
		t.Fatalf("done ring holds %d, cap 2", n)
	}
}

func TestFilterTraces(t *testing.T) {
	traces := []Trace{
		{TraceID: 1, Op: "read", Keep: "sampled"},
		{TraceID: 2, Op: "write", Keep: "slow"},
		{TraceID: 3, Op: "read", Keep: "error"},
	}
	got, err := FilterTraces(traces, "read", "", false, 0)
	if err != nil || len(got) != 2 {
		t.Fatalf("op filter: %v %v", got, err)
	}
	got, err = FilterTraces(traces, "", "", true, 0)
	if err != nil || len(got) != 2 || got[0].TraceID != 2 {
		t.Fatalf("slow filter: %v %v", got, err)
	}
	got, err = FilterTraces(traces, "", "3", false, 0)
	if err != nil || len(got) != 1 || got[0].TraceID != 3 {
		t.Fatalf("id filter: %v %v", got, err)
	}
	got, err = FilterTraces(traces, "", "", false, 1)
	if err != nil || len(got) != 1 || got[0].TraceID != 3 {
		t.Fatalf("n filter: %v %v", got, err)
	}
	if _, err = FilterTraces(traces, "", "zz", false, 0); err == nil {
		t.Fatal("bad hex id accepted")
	}
}

func TestHistogramExemplar(t *testing.T) {
	var h Histogram
	h.ObserveExemplar(time.Millisecond, 0xabc)
	for i := 0; i < 94; i++ {
		h.Observe(time.Millisecond)
	}
	// 5% of observations are 1s outliers, so p99 lands in their bucket.
	for i := 0; i < 5; i++ {
		h.ObserveExemplar(time.Second, 0xdef)
	}
	if got := h.Exemplar(99); got != 0xdef {
		t.Fatalf("p99 exemplar = %x, want def", got)
	}
	if got := h.Exemplar(50); got != 0xabc {
		t.Fatalf("p50 exemplar = %x, want abc", got)
	}
	var empty Histogram
	if got := empty.Exemplar(99); got != 0 {
		t.Fatalf("empty exemplar = %x, want 0", got)
	}
}

// TestBufferedSink verifies the non-blocking hand-off: a sink that stalls
// forever cannot stall Emit, and overflow is counted, while the ring
// itself still records every event.
func TestBufferedSink(t *testing.T) {
	r := NewTraceRing(64)
	block := make(chan struct{})
	var mu sync.Mutex
	var got []Event
	stop := r.SetBufferedSink(func(e Event) {
		<-block
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	}, 2)

	done := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			r.Emitf("test", "evt", -1, "e%d", i)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a stalled sink")
	}
	if r.Total() != 10 {
		t.Fatalf("ring recorded %d events, want 10", r.Total())
	}
	if r.SinkDrops() == 0 {
		t.Fatal("no sink drops counted despite stalled sink")
	}
	close(block)
	stop()
	stop() // idempotent
	mu.Lock()
	delivered := len(got)
	mu.Unlock()
	if delivered == 0 {
		t.Fatal("stop did not flush queued events")
	}
	// Events emitted after stop are recorded but not delivered.
	r.Emitf("test", "evt", -1, "late")
	mu.Lock()
	if len(got) != delivered {
		t.Fatal("sink received an event after stop")
	}
	mu.Unlock()
}

func TestTracerRegisterMetrics(t *testing.T) {
	tr := alwaysTracer()
	reg := NewRegistry()
	tr.Register(reg)
	s := tr.StartOp("core", "read")
	s.Finish()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"swift_trace_spans_started_total 1",
		"swift_trace_spans_finished_total 1",
		"swift_trace_traces_kept_total 1",
		"swift_trace_traces_open 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}
