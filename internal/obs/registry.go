package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Labels name one metric instance among several sharing a metric name
// (e.g. the per-agent histograms of one client).
type Labels map[string]string

// render formats labels deterministically: {a="x",b="y"} with keys sorted.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "summary"
	default:
		return "gauge"
	}
}

func (k metricKind) jsonType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// metric is one registered instrument.
type metric struct {
	name   string
	help   string
	labels Labels
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
	f      func() float64
}

// Registry is a named collection of metrics. Registration takes a mutex;
// the returned instruments are lock-free to record into. A Registry is
// scoped (per client, per agent process) rather than global, so tests and
// multi-client processes never collide on names.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(m *metric) {
	r.mu.Lock()
	r.metrics = append(r.metrics, m)
	r.mu.Unlock()
}

// Counter registers and returns a counter. Histograms and counters with
// the same name must differ in labels; the registry does not police this.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.add(&metric{name: name, help: help, labels: labels, kind: kindCounter, c: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.add(&metric{name: name, help: help, labels: labels, kind: kindGauge, g: g})
	return g
}

// Histogram registers and returns a latency histogram. By convention the
// name ends in "_seconds"; exported values are in seconds.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	h := &Histogram{}
	r.add(&metric{name: name, help: help, labels: labels, kind: kindHistogram, h: h})
	return h
}

// CounterFunc registers a counter whose value is computed at export time —
// for counters that already live elsewhere (a segment's frame count, a
// client's protocol counters) and should not be double-booked.
func (r *Registry) CounterFunc(name, help string, labels Labels, f func() float64) {
	r.add(&metric{name: name, help: help, labels: labels, kind: kindCounterFunc, f: f})
}

// GaugeFunc registers a gauge computed at export time (utilization ratios,
// load fractions, queue depths owned by another subsystem).
func (r *Registry) GaugeFunc(name, help string, labels Labels, f func() float64) {
	r.add(&metric{name: name, help: help, labels: labels, kind: kindGaugeFunc, f: f})
}

// snapshotMetrics copies the metric list so exporters iterate without
// holding the registration lock.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	return out
}

// Names returns the registered metric names in registration order,
// de-duplicated (labeled instances share a name).
func (r *Registry) Names() []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range r.snapshotMetrics() {
		if !seen[m.name] {
			seen[m.name] = true
			out = append(out, m.name)
		}
	}
	return out
}
