package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// goldenRegistry builds a registry with one of every metric kind and
// fully deterministic values.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("swift_test_ops_total", "Ops.", nil).Add(3)
	r.Gauge("swift_test_sessions", "Sessions.", Labels{"agent": "0"}).Set(2)
	r.CounterFunc("swift_test_frames_total", "Frames.", nil, func() float64 { return 4.5 })
	h := r.Histogram("swift_test_lat_seconds", "Latency.", nil)
	h.Observe(time.Second)
	return r
}

// One observation of exactly 1s lands in the bucket [939524096,
// 1073741824) ns, so every percentile interpolates to the bucket's upper
// edge: 1.073741824 s.
const goldenQuantile = "1.073741824"

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP swift_test_ops_total Ops.
# TYPE swift_test_ops_total counter
swift_test_ops_total 3
# HELP swift_test_sessions Sessions.
# TYPE swift_test_sessions gauge
swift_test_sessions{agent="0"} 2
# HELP swift_test_frames_total Frames.
# TYPE swift_test_frames_total counter
swift_test_frames_total 4.5
# HELP swift_test_lat_seconds Latency.
# TYPE swift_test_lat_seconds summary
swift_test_lat_seconds{quantile="0.5"} ` + goldenQuantile + `
swift_test_lat_seconds{quantile="0.9"} ` + goldenQuantile + `
swift_test_lat_seconds{quantile="0.99"} ` + goldenQuantile + `
swift_test_lat_seconds_sum 1
swift_test_lat_seconds_count 1
`
	if got := b.String(); got != want {
		t.Errorf("prometheus output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	want := `{"metrics":[` +
		`{"name":"swift_test_ops_total","type":"counter","value":3},` +
		`{"name":"swift_test_sessions","type":"gauge","labels":{"agent":"0"},"value":2},` +
		`{"name":"swift_test_frames_total","type":"counter","value":4.5},` +
		`{"name":"swift_test_lat_seconds","type":"histogram","count":1,"sum":1,"mean":1,` +
		`"min":1,"max":1,"p50":` + goldenQuantile + `,"p90":` + goldenQuantile +
		`,"p99":` + goldenQuantile + `}]}` + "\n"
	got := b.String()
	if got != want {
		t.Errorf("json output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// And it must be valid JSON.
	var doc struct {
		Metrics []map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(got), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.Metrics) != 4 {
		t.Fatalf("parsed %d metrics, want 4", len(doc.Metrics))
	}
}

// TestHandler drives the HTTP surface: /metrics in both formats, /trace,
// and the pprof index.
func TestHandler(t *testing.T) {
	reg := goldenRegistry()
	ring := NewTraceRing(16)
	ring.Emitf("test", "evt", -1, "hello trace")
	srv := httptest.NewServer(Handler(reg, ring, nil))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "swift_test_ops_total 3") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/metrics?format=json"); code != 200 || !strings.Contains(body, `"name":"swift_test_ops_total"`) {
		t.Errorf("/metrics?format=json: code=%d body=%q", code, body)
	}
	if code, body := get("/trace"); code != 200 || !strings.Contains(body, "hello trace") {
		t.Errorf("/trace: code=%d body=%q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code=%d", code)
	}
}

// TestServe binds an ephemeral port and round-trips a scrape.
func TestServe(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", goldenRegistry(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
