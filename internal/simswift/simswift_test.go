package simswift

import (
	"testing"
	"time"
)

// small returns a quick config for logic tests.
func small(disks int, unit, req int64) Config {
	return Config{
		Disks: disks, Drive: Figure3Drive(),
		RequestBytes: req, Unit: unit,
		Requests: 300, Warmup: 50, Seed: 7,
	}
}

func TestLightLoadResponseNearServiceTime(t *testing.T) {
	// 32 disks, 1MB request, 32KB units: one unit per disk, so at light
	// load the response is roughly one unit service time (~37ms) plus
	// network; far below 100ms.
	cfg := small(32, 32*KB, 1<<20)
	r := Run(cfg, 0.5)
	if r.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if r.MeanResponse < 20*time.Millisecond || r.MeanResponse > 120*time.Millisecond {
		t.Fatalf("light-load response = %v, want ≈40-80ms", r.MeanResponse)
	}
}

func TestResponseGrowsWithLoad(t *testing.T) {
	cfg := small(8, 32*KB, 1<<20)
	light := Run(cfg, 1)
	heavy := Run(cfg, 6)
	if heavy.MeanResponse <= light.MeanResponse {
		t.Fatalf("response did not grow: light %v heavy %v",
			light.MeanResponse, heavy.MeanResponse)
	}
}

func TestMoreDisksLowerResponse(t *testing.T) {
	// Figure 3's central claim at fixed load and unit size.
	few := Run(small(4, 16*KB, 1<<20), 3)
	many := Run(small(16, 16*KB, 1<<20), 3)
	if many.MeanResponse >= few.MeanResponse {
		t.Fatalf("16 disks (%v) not faster than 4 (%v)",
			many.MeanResponse, few.MeanResponse)
	}
}

func TestLargerUnitsLowerResponse(t *testing.T) {
	// "As small transfer sizes require many seeks ... large transfer
	// sizes have a significantly positive effect on the data-rates."
	small4 := Run(small(8, 4*KB, 1<<20), 2)
	big32 := Run(small(8, 32*KB, 1<<20), 2)
	if big32.MeanResponse >= small4.MeanResponse {
		t.Fatalf("32K units (%v) not faster than 4K (%v)",
			big32.MeanResponse, small4.MeanResponse)
	}
}

func TestUtilizationsSane(t *testing.T) {
	r := Run(small(8, 32*KB, 1<<20), 4)
	if r.DiskUtil <= 0 || r.DiskUtil > 1 {
		t.Fatalf("disk util = %v", r.DiskUtil)
	}
	if r.RingUtil <= 0 || r.RingUtil > 1 {
		t.Fatalf("ring util = %v", r.RingUtil)
	}
	// §5: "no more than 22% of the network capacity was ever used".
	if r.RingUtil > 0.25 {
		t.Fatalf("ring util = %v, should be far from saturation", r.RingUtil)
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := small(4, 16*KB, 256*KB)
	a := Run(cfg, 5)
	b := Run(cfg, 5)
	if a.MeanResponse != b.MeanResponse || a.Completed != b.Completed {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestMaxSustainableRateScalesWithDisks(t *testing.T) {
	// Figure 5/6's claim: near-linear scaling in the number of disks.
	cfg4 := Figure5Config(Figure3Drive(), 4)
	cfg4.Requests = 400
	cfg16 := Figure5Config(Figure3Drive(), 16)
	cfg16.Requests = 400
	r4, _ := MaxSustainableRate(cfg4)
	r16, _ := MaxSustainableRate(cfg16)
	if ratio := r16 / r4; ratio < 2.5 || ratio > 6 {
		t.Fatalf("16/4 disk rate ratio = %.2f, want ≈4 (near-linear)", ratio)
	}
}

func TestMaxSustainableRateScalesWithUnit(t *testing.T) {
	// "The increase in effective data-rate is almost linear in the size
	// of the transfer unit": 32K units deliver several times the 4K
	// rate for the same disks.
	c4 := Config{Disks: 16, Drive: Figure3Drive(), RequestBytes: 512 * KB,
		Unit: 4 * KB, Requests: 400, Seed: 1}
	c32 := c4
	c32.Unit = 32 * KB
	r4, _ := MaxSustainableRate(c4)
	r32, _ := MaxSustainableRate(c32)
	if ratio := r32 / r4; ratio < 2.5 {
		t.Fatalf("32K/4K rate ratio = %.2f, want >= ~3", ratio)
	}
}

func TestFasterDriveHigherRate(t *testing.T) {
	slow := Figure5Config(Figure4Drive(), 8)
	slow.Requests = 400
	fast := Figure5Config(Figure3Drive(), 8)
	fast.Requests = 400
	rs, _ := MaxSustainableRate(slow)
	rf, _ := MaxSustainableRate(fast)
	if rf <= rs {
		t.Fatalf("2.5MB/s drive (%.0f) not faster than 1.5MB/s (%.0f)", rf, rs)
	}
}

func TestFigureParameterSets(t *testing.T) {
	if len(Figure3Disks()) != 4 || len(Figure3Units()) != 3 {
		t.Fatal("figure 3 sweep wrong")
	}
	if len(Figure56Drives()) != 6 {
		t.Fatal("figure 5/6 needs six drives")
	}
	if Figure4Drive().MediaRate != 1.5e6 {
		t.Fatal("figure 4 drive rate wrong")
	}
	// Paper: transferring 32KB takes ≈37ms on the M2372K.
	ms := MeanUnitService(Figure3Config(4, 32*KB))
	if ms < 36*time.Millisecond || ms > 38*time.Millisecond {
		t.Fatalf("mean unit service = %v", ms)
	}
}

func TestWriteOnlyWorkload(t *testing.T) {
	cfg := small(4, 32*KB, 256*KB)
	cfg.ReadFraction = 0.0001 // ~all writes
	r := Run(cfg, 2)
	if r.Completed == 0 || r.MeanResponse <= 0 {
		t.Fatalf("write workload: %+v", r)
	}
}

func TestSingleDisk(t *testing.T) {
	cfg := small(1, 32*KB, 128*KB)
	r := Run(cfg, 1)
	if r.Completed == 0 {
		t.Fatal("single-disk run failed")
	}
}
