package simswift

import (
	"time"

	"swift/internal/disk"
)

// Parameter sets for the paper's Figures 3-6, exposed so the harness
// (cmd/swift-sim), the benchmarks, and the tests regenerate exactly the
// same experiments.

// KB is one kilobyte, the unit the figures are stated in.
const KB = 1024

// Figure3Drive is the Fujitsu M2372K as the caption gives it: "average
// seek time = 16 ms, average rotational delay = 8.3 ms, transfer rate =
// 2.5 megabytes/second".
func Figure3Drive() disk.Model { return disk.FujitsuM2372K() }

// Figure4Drive is the caption's "slower storage device": same geometry
// with a 1.5 MB/s transfer rate.
func Figure4Drive() disk.Model {
	m := disk.FujitsuM2372K()
	m.Name = "slow-1.5MB/s"
	m.MediaRate = 1.5e6
	return m
}

// Figure3Config builds the Figure 3 configuration: 1-megabyte client
// requests against the given number of disks and disk transfer unit
// (4, 16, or 32 KB).
func Figure3Config(disks int, unit int64) Config {
	return Config{
		Disks:        disks,
		Drive:        Figure3Drive(),
		RequestBytes: 1 << 20,
		Unit:         unit,
		Seed:         1,
	}
}

// Figure3Disks and Figure3Units are the swept parameters.
func Figure3Disks() []int   { return []int{4, 8, 16, 32} }
func Figure3Units() []int64 { return []int64{4 * KB, 16 * KB, 32 * KB} }
func Figure3Loads() []float64 {
	return []float64{1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 25, 28, 30}
}

// Figure4Config builds the Figure 4 configuration: 128-kilobyte requests,
// 4-kilobyte units, 1.5 MB/s drive.
func Figure4Config(disks int) Config {
	return Config{
		Disks:        disks,
		Drive:        Figure4Drive(),
		RequestBytes: 128 * KB,
		Unit:         4 * KB,
		Seed:         1,
	}
}

// Figure4Disks and Figure4Loads are the swept parameters.
func Figure4Disks() []int { return []int{1, 2, 4, 8, 16, 32} }
func Figure4Loads() []float64 {
	return []float64{1, 2, 4, 6, 8, 10, 12, 15, 18, 21, 25, 30, 35, 40}
}

// Figure5Config builds the Figure 5 configuration for one drive type:
// maximum sustainable data-rate with 128-kilobyte requests and
// 4-kilobyte transfer units.
func Figure5Config(drive disk.Model, disks int) Config {
	return Config{
		Disks:        disks,
		Drive:        drive,
		RequestBytes: 128 * KB,
		Unit:         4 * KB,
		Seed:         1,
		Requests:     900,
	}
}

// Figure6Config builds the Figure 6 configuration: 1-megabyte requests,
// 32-kilobyte units.
func Figure6Config(drive disk.Model, disks int) Config {
	return Config{
		Disks:        disks,
		Drive:        drive,
		RequestBytes: 1 << 20,
		Unit:         32 * KB,
		Seed:         1,
		Requests:     900,
	}
}

// Figure56Disks is the x axis of Figures 5 and 6.
func Figure56Disks() []int { return []int{1, 2, 4, 8, 16, 24, 32} }

// Figure56Drives returns the six drive models in legend order.
func Figure56Drives() []disk.Model { return disk.SimulatorDrives() }

// MeanUnitService is a closed-form check value: the expected disk service
// time per transfer unit.
func MeanUnitService(cfg Config) time.Duration {
	c := cfg.filled()
	return c.Drive.MeanAccessTime(c.Unit)
}
