package simswift

import (
	"time"

	"swift/internal/sim"
)

// Real-time disk scheduling — the paper's §6.1.2 future work: "we intend
// to extend the architecture with techniques for providing data-rate
// guarantees for magnetic disk devices ... the problem of scheduling
// real-time disk transfers has received considerably less attention."
//
// RunRT simulates periodic continuous-media streams (each must fetch one
// request per period, deadline = the next period boundary) competing with
// Poisson background traffic, under either FIFO or earliest-deadline-first
// disk queues. The EDF runs show how deadline scheduling converts
// background-induced stream misses into modest background slowdown.

// RTConfig parameterizes a guarantees experiment.
type RTConfig struct {
	// Disks is the number of storage agents (one disk each).
	Disks int

	// Base carries the installation (drive, unit, network, CPU).
	// Base.RequestBytes is the background request size.
	Base Config

	// Streams is the number of periodic continuous-media streams.
	Streams int
	// StreamBytes is the bytes each stream fetches per period.
	StreamBytes int64
	// Period is the stream period (deadline spacing).
	Period time.Duration
	// Periods is how many periods to simulate.
	Periods int
	// BackgroundRate is the Poisson background arrival rate (req/s).
	BackgroundRate float64
	// EDF selects earliest-deadline-first disk queues; false is FIFO.
	EDF bool
}

// RTResult summarizes a guarantees run.
type RTResult struct {
	// StreamRequests and StreamMisses count periodic requests and the
	// ones that completed after their deadline.
	StreamRequests int
	StreamMisses   int
	// MissFraction is StreamMisses / StreamRequests.
	MissFraction float64
	// MeanStreamResponse is the periodic requests' mean response.
	MeanStreamResponse time.Duration
	// MeanBackgroundResponse is the background requests' mean response.
	MeanBackgroundResponse time.Duration
	// BackgroundCompleted counts finished background requests.
	BackgroundCompleted int
}

// rtModel extends the §5 model with deadline-aware disk acquisition.
type rtModel struct {
	*model
}

// readWithDeadline is the read path with an explicit disk-queue deadline.
// Background traffic passes an infinite deadline, which under EDF makes it
// yield to stream requests at every disk.
func (m *rtModel) readWithDeadline(p *sim.Proc, deadline time.Duration, done func()) {
	per := m.unitsPerDisk()
	totalUnits := 0
	for _, n := range per {
		totalUnits += n
	}
	join := m.eng.NewGate()
	join.Add(totalUnits)

	m.client.Use(p, m.procTime(requestMsgBytes))
	token := time.Duration(m.eng.Rand().Int63n(int64(m.cfg.TokenDelayMax) + 1))
	m.ring.Use(p, token+m.txTime(requestMsgBytes))

	for i := 0; i < m.cfg.Disks; i++ {
		if per[i] == 0 {
			continue
		}
		i, n := i, per[i]
		m.eng.Go(func(a *sim.Proc) {
			m.disks[i].AcquireDeadline(a, deadline)
			for u := 0; u < n; u++ {
				a.Sleep(m.cfg.Drive.AccessTime(m.eng.Rand(), m.cfg.Unit))
				m.eng.Go(func(tx *sim.Proc) {
					m.sendMsg(tx, m.agents[i], m.client, m.cfg.Unit)
					join.Done()
				})
			}
			m.disks[i].Release()
		})
	}
	join.Wait(p)
	done()
}

// RunRT executes one guarantees experiment.
func RunRT(cfg RTConfig) RTResult {
	base := cfg.Base
	base.Disks = cfg.Disks
	base = base.filled()
	if cfg.Periods == 0 {
		cfg.Periods = 200
	}
	if cfg.Streams == 0 {
		cfg.Streams = 1
	}

	eng := sim.New(base.Seed)
	m := &rtModel{model: &model{cfg: base, eng: eng}}
	m.ring = eng.NewResource("ring", 1)
	m.client = eng.NewResource("client-cpu", 1)
	disc := sim.FIFO
	if cfg.EDF {
		disc = sim.EDF
	}
	for i := 0; i < base.Disks; i++ {
		m.disks = append(m.disks, eng.NewResourceDisc("disk", 1, disc))
		m.agents = append(m.agents, eng.NewResource("agent-cpu", 1))
	}

	var res RTResult
	var streamRespSum, bgRespSum time.Duration

	// A stream-sized view of the model shares every resource with the
	// base model but issues StreamBytes requests.
	streamModel := &rtModel{model: &model{cfg: withRequest(base, cfg.StreamBytes), eng: eng}}
	streamModel.disks, streamModel.agents = m.disks, m.agents
	streamModel.ring, streamModel.client = m.ring, m.client

	// Periodic streams. Each period issues one read sized StreamBytes
	// with the next period boundary as its deadline.
	for s := 0; s < cfg.Streams; s++ {
		s := s
		eng.Spawn(0, func(p *sim.Proc) {
			// Stagger stream phases.
			phase := time.Duration(s) * cfg.Period / time.Duration(cfg.Streams)
			p.Sleep(phase)
			for k := 0; k < cfg.Periods; k++ {
				arrival := phase + time.Duration(k)*cfg.Period
				deadline := arrival + cfg.Period
				start := p.Now()
				streamModel.readWithDeadline(p, deadline, func() {})
				resp := p.Now() - start
				res.StreamRequests++
				streamRespSum += resp
				if p.Now() > deadline {
					res.StreamMisses++
				}
				// Sleep out the remainder of the period.
				if next := arrival + cfg.Period; next > p.Now() {
					p.Sleep(next - p.Now())
				}
			}
		})
	}

	// Background Poisson readers, no deadline.
	if cfg.BackgroundRate > 0 {
		horizon := time.Duration(cfg.Periods) * cfg.Period
		eng.Spawn(0, func(g *sim.Proc) {
			for g.Now() < horizon {
				ia := eng.Rand().ExpFloat64() / cfg.BackgroundRate
				g.Sleep(time.Duration(ia * float64(time.Second)))
				eng.Go(func(p *sim.Proc) {
					start := p.Now()
					m.readWithDeadline(p, 1<<62-1, func() {})
					bgRespSum += p.Now() - start
					res.BackgroundCompleted++
				})
			}
		})
	}

	eng.RunAll()
	if res.StreamRequests > 0 {
		res.MissFraction = float64(res.StreamMisses) / float64(res.StreamRequests)
		res.MeanStreamResponse = streamRespSum / time.Duration(res.StreamRequests)
	}
	if res.BackgroundCompleted > 0 {
		res.MeanBackgroundResponse = bgRespSum / time.Duration(res.BackgroundCompleted)
	}
	return res
}

// withRequest returns base with a different request size.
func withRequest(base Config, bytes int64) Config {
	base.RequestBytes = bytes
	return base
}
