package simswift

import (
	"testing"
	"time"
)

// rtBase builds a guarantees experiment: 4 disks, one 512 KB/s stream
// (128 KB every 250 ms), with tunable background load.
func rtBase(bg float64, edf bool) RTConfig {
	return RTConfig{
		Disks: 4,
		Base: Config{
			Drive:        Figure3Drive(),
			Unit:         32 * KB,
			RequestBytes: 256 * KB, // background request size
			Seed:         3,
		},
		Streams:        1,
		StreamBytes:    128 * KB,
		Period:         250 * time.Millisecond,
		Periods:        120,
		BackgroundRate: bg,
		EDF:            edf,
	}
}

func TestNoBackgroundMeetsDeadlines(t *testing.T) {
	r := RunRT(rtBase(0, false))
	if r.StreamRequests != 120 {
		t.Fatalf("requests = %d", r.StreamRequests)
	}
	if r.MissFraction > 0.01 {
		t.Fatalf("unloaded miss fraction = %.3f", r.MissFraction)
	}
}

func TestBackgroundCausesMissesUnderFIFO(t *testing.T) {
	r := RunRT(rtBase(12, false))
	if r.BackgroundCompleted == 0 {
		t.Fatal("no background completed")
	}
	if r.MissFraction < 0.05 {
		t.Skipf("background too light to cause FIFO misses (%.3f); model drift", r.MissFraction)
	}
}

func TestEDFProtectsStreams(t *testing.T) {
	const bg = 12
	fifo := RunRT(rtBase(bg, false))
	edf := RunRT(rtBase(bg, true))
	if fifo.MissFraction == 0 {
		t.Skip("FIFO run had no misses; nothing to protect against")
	}
	if edf.MissFraction >= fifo.MissFraction {
		t.Fatalf("EDF misses %.3f not better than FIFO %.3f",
			edf.MissFraction, fifo.MissFraction)
	}
	// The stream's mean response improves too.
	if edf.MeanStreamResponse >= fifo.MeanStreamResponse {
		t.Fatalf("EDF stream response %v not better than FIFO %v",
			edf.MeanStreamResponse, fifo.MeanStreamResponse)
	}
}

func TestParityImpactCostsWrites(t *testing.T) {
	// §6.1.1's planned study: redundancy slows a write-dominated
	// workload (extra parity units + XOR time) but not catastrophically.
	plain, par := ParityImpact(8, 32*KB, 512*KB, 2)
	if plain.Completed == 0 || par.Completed == 0 {
		t.Fatal("runs incomplete")
	}
	if par.MeanResponse <= plain.MeanResponse {
		t.Fatalf("parity writes (%v) not slower than plain (%v)",
			par.MeanResponse, plain.MeanResponse)
	}
	// 8 disks: one parity unit per 7 data units plus XOR time; the
	// response hit should be well under 2x.
	if par.MeanResponse > 2*plain.MeanResponse {
		t.Fatalf("parity cost collapsed writes: %v vs %v",
			par.MeanResponse, plain.MeanResponse)
	}
}

func TestParityReadsUnaffected(t *testing.T) {
	cfg := ParityConfig{
		Config: Config{
			Disks: 8, Drive: Figure3Drive(),
			RequestBytes: 512 * KB, Unit: 32 * KB,
			ReadFraction: 0.9999, Requests: 300, Seed: 2,
		},
		Parity: true,
	}
	withP := RunParity(cfg, 2)
	cfg.Parity = false
	without := RunParity(cfg, 2)
	ratio := withP.MeanResponse.Seconds() / without.MeanResponse.Seconds()
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("read-dominated parity ratio = %.2f, want ≈1", ratio)
	}
}

func TestEDFDeterministic(t *testing.T) {
	a := RunRT(rtBase(8, true))
	b := RunRT(rtBase(8, true))
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
