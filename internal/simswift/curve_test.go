package simswift

import (
	"testing"
	"time"
)

func TestResponseCurveMonotoneInLoad(t *testing.T) {
	cfg := small(8, 32*KB, 512*KB)
	points := ResponseCurve(cfg, []float64{1, 4, 8})
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Lambda <= points[i-1].Lambda {
			t.Fatal("lambdas not ascending")
		}
		if points[i].MeanResponse < points[i-1].MeanResponse/2 {
			t.Fatalf("response dropped sharply with load: %v -> %v",
				points[i-1].MeanResponse, points[i].MeanResponse)
		}
	}
}

func TestRingOverheadGrowsWithSmallUnits(t *testing.T) {
	// At a fixed arrival rate the byte volume is identical, but small
	// units cost a token acquisition and per-message protocol overhead
	// for every 4 KB instead of every 32 KB, so the ring is occupied
	// slightly longer.
	smallU := Run(small(8, 4*KB, 512*KB), 2)
	bigU := Run(small(8, 32*KB, 512*KB), 2)
	if smallU.RingUtil < bigU.RingUtil {
		t.Fatalf("ring util: 4K %.4f < 32K %.4f", smallU.RingUtil, bigU.RingUtil)
	}
	// And neither comes near saturation (§5: never above 22%).
	if smallU.RingUtil > 0.22 || bigU.RingUtil > 0.22 {
		t.Fatalf("ring unexpectedly loaded: %.3f / %.3f", smallU.RingUtil, bigU.RingUtil)
	}
}

func TestClientDataRateConsistent(t *testing.T) {
	cfg := small(16, 32*KB, 1<<20)
	r := Run(cfg, 2)
	want := float64(cfg.RequestBytes) / r.MeanResponse.Seconds()
	if r.ClientDataRate < want*0.99 || r.ClientDataRate > want*1.01 {
		t.Fatalf("client data rate %.0f inconsistent with response %v", r.ClientDataRate, r.MeanResponse)
	}
}

func TestMaxSustainableFixedPoint(t *testing.T) {
	// At the returned lambda, response ≈ interarrival (the definition).
	cfg := Figure6Config(Figure3Drive(), 8)
	cfg.Requests = 500
	_, lambda := MaxSustainableRate(cfg)
	r := Run(cfg, lambda)
	product := r.MeanResponse.Seconds() * lambda
	if product < 0.5 || product > 2.0 {
		t.Fatalf("fixed point off: response*lambda = %.2f, want ≈1", product)
	}
}

func TestSeqPlacementImprovesThroughput(t *testing.T) {
	// The paper: "staging data in the cache and sequential preallocation
	// of storage would greatly reduce the number of seeks and
	// significantly improve performance. As it is, our model provides a
	// lower bound." With sequential placement, multiblock requests on
	// few disks (many units per disk) speed up dramatically.
	cfg := small(4, 4*KB, 512*KB) // 32 units/disk: seek-dominated
	lower := Run(cfg, 1)
	cfg.SeqPlacement = true
	better := Run(cfg, 1)
	if better.MeanResponse >= lower.MeanResponse {
		t.Fatalf("seq placement (%v) not faster than lower bound (%v)",
			better.MeanResponse, lower.MeanResponse)
	}
	// 4 KB units on the M2372K: ≈25.9ms random vs ≈14ms sequential per
	// unit — expect a large improvement, not a rounding error.
	if better.MeanResponse > lower.MeanResponse*3/4 {
		t.Fatalf("improvement too small: %v vs %v", better.MeanResponse, lower.MeanResponse)
	}
	// Max sustainable rate improves correspondingly.
	c5 := Figure5Config(Figure3Drive(), 8)
	c5.Requests = 400
	rLower, _ := MaxSustainableRate(c5)
	c5.SeqPlacement = true
	rBetter, _ := MaxSustainableRate(c5)
	if rBetter <= rLower {
		t.Fatalf("max rate with placement (%.0f) not above lower bound (%.0f)", rBetter, rLower)
	}
}

func TestRunHandlesSubMillisecondLoad(t *testing.T) {
	cfg := small(4, 32*KB, 128*KB)
	r := Run(cfg, 0.25)
	if r.Completed == 0 {
		t.Fatal("nothing completed at very light load")
	}
	if r.MeanResponse > 200*time.Millisecond {
		t.Fatalf("light-load response %v too high", r.MeanResponse)
	}
}
