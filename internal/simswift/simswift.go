// Package simswift is the paper's §5 discrete-event model of a Swift
// installation on a gigabit token-ring LAN, used "to show how the
// architecture could exploit network and processor advances" and to locate
// the components that limit I/O performance.
//
// Per §5.1, the model has: client requests generated with exponential
// interarrival times and a 4:1 read-to-write ratio; diskless 100-MIPS
// clients; storage agents with one disk each; disks as FIFO resources
// whose block service time is seek + rotation + transfer with seek and
// rotation drawn uniformly (multiblock requests hold the disk until they
// finish); and network messages that cost protocol processing (1500
// instructions plus one per byte), token acquisition, and transmission
// time. Caching, parity computation, and resource preallocation are not
// modeled, exactly as in the paper.
package simswift

import (
	"time"

	"swift/internal/disk"
	"swift/internal/sim"
)

// Config parameterizes one simulated installation and workload.
type Config struct {
	// Disks is the number of storage agents (one disk each).
	Disks int
	// Drive is the disk model.
	Drive disk.Model
	// RequestBytes is the client request size.
	RequestBytes int64
	// Unit is the disk transfer unit (the striping unit).
	Unit int64
	// RingBandwidthBps is the token ring's raw bandwidth (default 1e9).
	RingBandwidthBps float64
	// MIPS is each host's processor speed in instructions/second
	// (default 100e6).
	MIPS float64
	// ProtocolInstr is the fixed per-message protocol cost in
	// instructions (default 1500).
	ProtocolInstr float64
	// InstrPerByte is the per-byte protocol cost (default 1: "for the
	// most part unavoidable, since it is necessary data copying").
	InstrPerByte float64
	// ReadFraction is the probability a request is a read (default 0.8,
	// the paper's conservative 4:1 estimate from the Berkeley study).
	ReadFraction float64
	// TokenDelayMax is the maximum token-acquisition delay, drawn
	// uniformly (default 20µs).
	TokenDelayMax time.Duration
	// SeqPlacement enables the "advanced layout policies" the paper's
	// model deliberately excludes ("our model provides a lower bound"):
	// after the first unit of a multiblock disk request, subsequent
	// units pay only a track-to-track seek plus rotation instead of a
	// full random positioning.
	SeqPlacement bool
	// Requests is the number of requests to complete (default 1200).
	Requests int
	// Warmup is the number of initial requests excluded from statistics
	// (default Requests/6).
	Warmup int
	// Seed seeds the run.
	Seed int64
}

func (c Config) filled() Config {
	if c.RingBandwidthBps == 0 {
		c.RingBandwidthBps = 1e9
	}
	if c.MIPS == 0 {
		c.MIPS = 100e6
	}
	if c.ProtocolInstr == 0 {
		c.ProtocolInstr = 1500
	}
	if c.InstrPerByte == 0 {
		c.InstrPerByte = 1
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.8
	}
	if c.TokenDelayMax == 0 {
		c.TokenDelayMax = 20 * time.Microsecond
	}
	if c.Requests == 0 {
		c.Requests = 1200
	}
	if c.Warmup == 0 {
		c.Warmup = c.Requests / 6
	}
	return c
}

// Result summarizes one run.
type Result struct {
	// MeanResponse is the average time to complete a request.
	MeanResponse time.Duration
	// Completed is the number of requests measured (after warmup).
	Completed int
	// DiskUtil is the mean disk utilization.
	DiskUtil float64
	// RingUtil is the ring utilization.
	RingUtil float64
	// ClientDataRate is RequestBytes divided by the mean response: the
	// data-rate a client observes on its own requests.
	ClientDataRate float64
}

// model is one constructed simulation.
type model struct {
	cfg    Config
	eng    *sim.Engine
	disks  []*sim.Resource
	ring   *sim.Resource
	client *sim.Resource // client host CPU
	agents []*sim.Resource
}

func newModel(cfg Config) *model {
	eng := sim.New(cfg.Seed)
	m := &model{cfg: cfg, eng: eng}
	m.ring = eng.NewResource("ring", 1)
	m.client = eng.NewResource("client-cpu", 1)
	for i := 0; i < cfg.Disks; i++ {
		m.disks = append(m.disks, eng.NewResource("disk", 1))
		m.agents = append(m.agents, eng.NewResource("agent-cpu", 1))
	}
	return m
}

// procTime is the protocol processing cost of an n-byte message.
func (m *model) procTime(n int64) time.Duration {
	instr := m.cfg.ProtocolInstr + m.cfg.InstrPerByte*float64(n)
	return time.Duration(instr / m.cfg.MIPS * float64(time.Second))
}

// txTime is the ring transmission time of an n-byte message.
func (m *model) txTime(n int64) time.Duration {
	return time.Duration(float64(n) * 8 / m.cfg.RingBandwidthBps * float64(time.Second))
}

// sendMsg models one message: sender protocol processing, token
// acquisition plus transmission on the ring, then receiver processing.
func (m *model) sendMsg(p *sim.Proc, from, to *sim.Resource, n int64) {
	from.Use(p, m.procTime(n))
	token := time.Duration(m.eng.Rand().Int63n(int64(m.cfg.TokenDelayMax) + 1))
	m.ring.Use(p, token+m.txTime(n))
	to.Use(p, m.procTime(n))
}

// unitAccess returns the disk service time for the u-th unit of one
// multiblock request on a disk: full positioning for the first unit;
// with SeqPlacement, later units pay track-to-track positioning only.
func (m *model) unitAccess(u int) time.Duration {
	d := m.cfg.Drive
	if u > 0 && m.cfg.SeqPlacement {
		return d.TrackSeek + d.RotationDelay(m.eng.Rand()) + d.TransferTime(m.cfg.Unit)
	}
	return d.AccessTime(m.eng.Rand(), m.cfg.Unit)
}

// unitsPerDisk distributes the request's transfer units round-robin.
func (m *model) unitsPerDisk() []int {
	units := int((m.cfg.RequestBytes + m.cfg.Unit - 1) / m.cfg.Unit)
	per := make([]int, m.cfg.Disks)
	for u := 0; u < units; u++ {
		per[u%m.cfg.Disks]++
	}
	return per
}

const requestMsgBytes = 128 // small multicast request packet

// readRequest models §5.1's read path: "a small request packet is
// multicast to the storage agents. The client then waits for the data to
// be transmitted by the storage agents." Each agent reads its blocks with
// the disk held across the multiblock request; each block is scheduled for
// network transmission as soon as it has been read.
func (m *model) readRequest(p *sim.Proc, done func()) {
	per := m.unitsPerDisk()
	totalUnits := 0
	for _, n := range per {
		totalUnits += n
	}
	join := m.eng.NewGate()
	join.Add(totalUnits)

	// Multicast request.
	m.client.Use(p, m.procTime(requestMsgBytes))
	token := time.Duration(m.eng.Rand().Int63n(int64(m.cfg.TokenDelayMax) + 1))
	m.ring.Use(p, token+m.txTime(requestMsgBytes))

	for i := 0; i < m.cfg.Disks; i++ {
		if per[i] == 0 {
			continue
		}
		i, n := i, per[i]
		m.eng.Go(func(a *sim.Proc) {
			m.disks[i].Acquire(a)
			for u := 0; u < n; u++ {
				a.Sleep(m.unitAccess(u))
				// Ship this block while the remaining blocks are
				// still being read.
				m.eng.Go(func(tx *sim.Proc) {
					m.sendMsg(tx, m.agents[i], m.client, m.cfg.Unit)
					join.Done()
				})
			}
			m.disks[i].Release()
		})
	}
	join.Wait(p)
	done()
}

// writeRequest models the write path: "a write request transmits the data
// to each of the storage agents. Once the blocks have been transmitted the
// client awaits an acknowledgement from the storage agents that the data
// have been written to disk."
func (m *model) writeRequest(p *sim.Proc, done func()) {
	per := m.unitsPerDisk()
	acks := m.eng.NewGate()
	arrived := make([]*sim.Gate, m.cfg.Disks)
	involved := 0
	for i := 0; i < m.cfg.Disks; i++ {
		if per[i] == 0 {
			continue
		}
		involved++
		arrived[i] = m.eng.NewGate()
		arrived[i].Add(per[i])
	}
	acks.Add(involved)

	// Each involved agent waits for its blocks, writes them with the
	// disk held, and acknowledges.
	for i := 0; i < m.cfg.Disks; i++ {
		if per[i] == 0 {
			continue
		}
		i, n := i, per[i]
		m.eng.Go(func(a *sim.Proc) {
			arrived[i].Wait(a)
			m.disks[i].Acquire(a)
			for u := 0; u < n; u++ {
				a.Sleep(m.unitAccess(u))
			}
			m.disks[i].Release()
			m.sendMsg(a, m.agents[i], m.client, requestMsgBytes) // ack
			acks.Done()
		})
	}

	// The client streams the data units round-robin.
	units := 0
	for _, n := range per {
		units += n
	}
	for u := 0; u < units; u++ {
		i := u % m.cfg.Disks
		m.sendMsg(p, m.client, m.agents[i], m.cfg.Unit)
		arrived[i].Done()
	}
	acks.Wait(p)
	done()
}

// Run simulates the configuration under an open-loop Poisson arrival
// process of lambda requests/second and reports steady-state statistics.
func Run(cfg Config, lambda float64) Result {
	cfg = cfg.filled()
	m := newModel(cfg)
	eng := m.eng

	type rec struct {
		start, end time.Duration
	}
	recs := make([]rec, cfg.Requests)
	measStart := time.Duration(-1)

	eng.Go(func(g *sim.Proc) {
		for r := 0; r < cfg.Requests; r++ {
			ia := eng.Rand().ExpFloat64() / lambda
			g.Sleep(time.Duration(ia * float64(time.Second)))
			r := r
			isRead := eng.Rand().Float64() < cfg.ReadFraction
			if r == cfg.Warmup && measStart < 0 {
				measStart = g.Now()
			}
			eng.Go(func(p *sim.Proc) {
				recs[r].start = p.Now()
				done := func() { recs[r].end = p.Now() }
				if isRead {
					m.readRequest(p, done)
				} else {
					m.writeRequest(p, done)
				}
			})
		}
	})
	eng.RunAll()

	var sum time.Duration
	counted := 0
	for r := cfg.Warmup; r < cfg.Requests; r++ {
		if recs[r].end > recs[r].start {
			sum += recs[r].end - recs[r].start
			counted++
		}
	}
	res := Result{Completed: counted}
	if counted > 0 {
		res.MeanResponse = sum / time.Duration(counted)
		res.ClientDataRate = float64(cfg.RequestBytes) / res.MeanResponse.Seconds()
	}
	elapsed := eng.Now()
	if measStart > 0 {
		elapsed -= measStart
	}
	if elapsed > 0 {
		var diskBusy time.Duration
		for _, d := range m.disks {
			diskBusy += d.BusyTime()
		}
		res.DiskUtil = diskBusy.Seconds() / float64(cfg.Disks) / eng.Now().Seconds()
		res.RingUtil = m.ring.BusyTime().Seconds() / eng.Now().Seconds()
	}
	return res
}

// LoadPoint is one point of a response-time-versus-load curve.
type LoadPoint struct {
	Lambda float64 // offered requests/second
	Result
}

// ResponseCurve sweeps arrival rates, as Figures 3 and 4 do.
func ResponseCurve(cfg Config, lambdas []float64) []LoadPoint {
	out := make([]LoadPoint, 0, len(lambdas))
	for _, l := range lambdas {
		out = append(out, LoadPoint{Lambda: l, Result: Run(cfg, l)})
	}
	return out
}

// MaxSustainableRate finds the paper's Figure 5/6 metric: "the data-rate
// observed by the client when the average time to complete a request is
// the same as the average time between requests". It returns that
// data-rate in bytes/second along with the fixed-point arrival rate.
func MaxSustainableRate(cfg Config) (dataRate float64, lambda float64) {
	cfg = cfg.filled()
	over := func(l float64) bool {
		r := Run(cfg, l)
		return r.MeanResponse.Seconds()*l >= 1
	}
	// Exponential search for an overloaded rate, then bisection.
	lo, hi := 0.0, 1.0
	for i := 0; i < 20 && !over(hi); i++ {
		lo = hi
		hi *= 2
	}
	for i := 0; i < 12; i++ {
		mid := (lo + hi) / 2
		if over(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	lambda = (lo + hi) / 2
	return float64(cfg.RequestBytes) * lambda, lambda
}
