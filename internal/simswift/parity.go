package simswift

import (
	"time"

	"swift/internal/sim"
	"swift/internal/stripe"
)

// §6.1.1 simulator enhancement — implemented future work: "the simulator
// needs additional parameters to incorporate the cost of computing this
// derived data [the parity check data]. With these enhancements in place
// we plan to study the impact that computing the check data has on
// data-rates."
//
// With parity enabled, every write request additionally (a) charges the
// client processor the XOR cost over the request's bytes, and (b) ships
// and writes one rotating parity unit per stripe row, laid out exactly as
// the prototype's engine lays them out (internal/stripe). Healthy reads
// are unaffected, as in the real engine.

// ParityConfig extends Config with computed-copy redundancy costs.
type ParityConfig struct {
	Config
	// Parity enables the redundancy write path.
	Parity bool
	// ParityInstrPerByte is the XOR cost (default 1 instruction/byte,
	// symmetric with the protocol's copy cost).
	ParityInstrPerByte float64
}

func (c ParityConfig) filled() ParityConfig {
	c.Config = c.Config.filled()
	if c.ParityInstrPerByte == 0 {
		c.ParityInstrPerByte = 1
	}
	return c
}

// parityUnitsPerDisk returns each disk's unit count for one request,
// including the rotating parity units.
func parityUnitsPerDisk(cfg ParityConfig) []int {
	l := stripe.Layout{Unit: cfg.Unit, Agents: cfg.Disks, Parity: true}
	per := make([]int, cfg.Disks)
	for i, frag := range l.FragmentSizes(cfg.RequestBytes) {
		per[i] = int((frag + cfg.Unit - 1) / cfg.Unit)
	}
	return per
}

// RunParity simulates the configuration with redundancy costs applied to
// writes. It mirrors Run otherwise.
func RunParity(cfg ParityConfig, lambda float64) Result {
	cfg = cfg.filled()
	base := cfg.Config
	m := newModel(base)
	eng := m.eng

	parityCPU := time.Duration(
		cfg.ParityInstrPerByte * float64(base.RequestBytes) / base.MIPS * float64(time.Second))

	writeParity := func(p *sim.Proc, done func()) {
		per := parityUnitsPerDisk(cfg)
		acks := eng.NewGate()
		arrived := make([]*sim.Gate, base.Disks)
		involved := 0
		for i := 0; i < base.Disks; i++ {
			if per[i] == 0 {
				continue
			}
			involved++
			arrived[i] = eng.NewGate()
			arrived[i].Add(per[i])
		}
		acks.Add(involved)

		// The client computes the check data before transmission.
		if cfg.Parity {
			m.client.Use(p, parityCPU)
		}
		for i := 0; i < base.Disks; i++ {
			if per[i] == 0 {
				continue
			}
			i, n := i, per[i]
			eng.Go(func(a *sim.Proc) {
				arrived[i].Wait(a)
				m.disks[i].Acquire(a)
				for u := 0; u < n; u++ {
					a.Sleep(base.Drive.AccessTime(eng.Rand(), base.Unit))
				}
				m.disks[i].Release()
				m.sendMsg(a, m.agents[i], m.client, requestMsgBytes)
				acks.Done()
			})
		}
		total := 0
		for _, n := range per {
			total += n
		}
		for u, sent := 0, 0; sent < total; u++ {
			i := u % base.Disks
			if arrived[i] == nil || arrived[i].Pending() == 0 {
				continue
			}
			m.sendMsg(p, m.client, m.agents[i], base.Unit)
			arrived[i].Done()
			sent++
		}
		acks.Wait(p)
		done()
	}

	type rec struct{ start, end time.Duration }
	recs := make([]rec, base.Requests)
	eng.Go(func(g *sim.Proc) {
		for r := 0; r < base.Requests; r++ {
			ia := eng.Rand().ExpFloat64() / lambda
			g.Sleep(time.Duration(ia * float64(time.Second)))
			r := r
			isRead := eng.Rand().Float64() < base.ReadFraction
			eng.Go(func(p *sim.Proc) {
				recs[r].start = p.Now()
				done := func() { recs[r].end = p.Now() }
				if isRead || !cfg.Parity {
					if isRead {
						m.readRequest(p, done)
					} else {
						m.writeRequest(p, done)
					}
					return
				}
				writeParity(p, done)
			})
		}
	})
	eng.RunAll()

	var sum time.Duration
	counted := 0
	for r := base.Warmup; r < base.Requests; r++ {
		if recs[r].end > recs[r].start {
			sum += recs[r].end - recs[r].start
			counted++
		}
	}
	res := Result{Completed: counted}
	if counted > 0 {
		res.MeanResponse = sum / time.Duration(counted)
		res.ClientDataRate = float64(base.RequestBytes) / res.MeanResponse.Seconds()
	}
	var diskBusy time.Duration
	for _, d := range m.disks {
		diskBusy += d.BusyTime()
	}
	if eng.Now() > 0 {
		res.DiskUtil = diskBusy.Seconds() / float64(base.Disks) / eng.Now().Seconds()
		res.RingUtil = m.ring.BusyTime().Seconds() / eng.Now().Seconds()
	}
	return res
}

// ParityImpact compares write-heavy response times with and without
// computed-copy redundancy at one load — the study §6.1.1 planned.
func ParityImpact(disks int, unit, request int64, lambda float64) (plain, withParity Result) {
	mk := func(par bool) Result {
		cfg := ParityConfig{
			Config: Config{
				Disks:        disks,
				Drive:        Figure3Drive(),
				RequestBytes: request,
				Unit:         unit,
				ReadFraction: 0.0001, // write-dominated: parity is a write cost
				Requests:     800,
				Seed:         1,
			},
			Parity: par,
		}
		return RunParity(cfg, lambda)
	}
	return mk(false), mk(true)
}
