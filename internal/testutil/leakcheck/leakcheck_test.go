package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestCleanPass: a goroutine that exits within the grace period is not
// reported.
func TestCleanPass(t *testing.T) {
	before := Snapshot()
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	<-done
	if leaked := Check(before); len(leaked) > 0 {
		t.Fatalf("clean run reported leaks:\n%s", strings.Join(leaked, "\n---\n"))
	}
}

// TestDetectsLeak: a goroutine parked past the grace period is caught,
// and its stack names the launch site.
func TestDetectsLeak(t *testing.T) {
	before := Snapshot()
	quit := make(chan struct{})
	//lint:allow goexit fixture: the leak under test is released at the end of the test
	go func() {
		<-quit
	}()
	leaked := Check(before)
	close(quit)
	if len(leaked) != 1 {
		t.Fatalf("want exactly 1 leak, got %d:\n%s", len(leaked), strings.Join(leaked, "\n---\n"))
	}
	if !strings.Contains(leaked[0], "leakcheck.TestDetectsLeak") {
		t.Errorf("leak stack does not name the launch site:\n%s", leaked[0])
	}
}

// TestBaselineSurvives: goroutines alive before the snapshot are never
// reported, even when their blocking state changes.
func TestBaselineSurvives(t *testing.T) {
	quit := make(chan struct{})
	tick := make(chan struct{}, 1)
	//lint:allow goexit fixture: released at the end of the test
	go func() {
		for {
			select {
			case <-quit:
				return
			case tick <- struct{}{}:
				time.Sleep(time.Millisecond)
			}
		}
	}()
	<-tick
	before := Snapshot()
	<-tick // state flips between send and sleep across checks
	if leaked := Check(before); len(leaked) > 0 {
		t.Fatalf("pre-snapshot goroutine reported as leak:\n%s", strings.Join(leaked, "\n---\n"))
	}
	close(quit)
}

// TestIdentity pins the header parsing used to key goroutines.
func TestIdentity(t *testing.T) {
	cases := []struct{ in, want string }{
		{"goroutine 12 [chan receive]:\nmain.f()", "goroutine 12"},
		{"goroutine 3 [running]:", "goroutine 3"},
		{"goroutine 7", "goroutine 7"},
	}
	for _, c := range cases {
		if got := identity(c.in); got != c.want {
			t.Errorf("identity(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
