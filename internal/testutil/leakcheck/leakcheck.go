// Package leakcheck detects goroutines leaked by a test binary using
// only the standard library: it snapshots runtime stacks before the
// tests run and diffs them afterwards, retrying with a short grace
// period so goroutines that are mid-shutdown (closing nets, draining
// tickers) are not misreported.
//
// Wire it into a package with a TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// It complements the goexit static analyzer: goexit proves every
// goroutine launch has a visible shutdown path in the source, and
// leakcheck proves those paths actually run under `go test`.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// grace is how long Check waits, in total, for stragglers to exit.
const grace = 2 * time.Second

// Main runs m and exits non-zero if the run leaked goroutines. Use it
// as the body of a package's TestMain.
func Main(m *testing.M) {
	os.Exit(Run(m))
}

// Run runs m and returns its exit code, forced to 1 when goroutines
// leak. Split from Main for testability.
func Run(m *testing.M) int {
	before := snapshot()
	code := m.Run()
	if leaked := Check(before); len(leaked) > 0 {
		fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) leaked by this test binary:\n", len(leaked))
		for _, g := range leaked {
			fmt.Fprintf(os.Stderr, "--- leaked goroutine ---\n%s\n", g)
		}
		if code == 0 {
			code = 1
		}
	}
	return code
}

// Check diffs the current goroutines against a snapshot taken earlier,
// retrying over a grace period, and returns the stacks of survivors
// that are neither in the baseline nor benign runtime helpers.
func Check(before map[string]bool) []string {
	deadline := time.Now().Add(grace)
	var leaked []string
	for {
		leaked = leaked[:0]
		for id, stack := range current() {
			if before[id] || benign(stack) {
				continue
			}
			leaked = append(leaked, stack)
		}
		if len(leaked) == 0 || time.Now().After(deadline) {
			sort.Strings(leaked)
			return leaked
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Snapshot records the identities of all currently live goroutines.
// Capture it before starting the code under test.
func Snapshot() map[string]bool { return snapshot() }

func snapshot() map[string]bool {
	ids := make(map[string]bool)
	for id := range current() {
		ids[id] = true
	}
	return ids
}

// current returns the live goroutines keyed by identity ("goroutine N"
// plus creation site) with their full stacks as values.
func current() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[string]string)
	for _, g := range strings.Split(string(buf), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" {
			continue
		}
		out[identity(g)] = g
	}
	return out
}

// identity keys a goroutine by its stable id ("goroutine N"), ignoring
// the bracketed state, which changes as the goroutine blocks and runs.
func identity(stack string) string {
	head := stack
	if i := strings.IndexByte(head, '\n'); i >= 0 {
		head = head[:i]
	}
	if i := strings.IndexByte(head, '['); i > 0 {
		head = strings.TrimSpace(head[:i])
	}
	return head
}

// benign reports stacks owned by the runtime or the testing harness
// that come and go on their own schedule.
func benign(stack string) bool {
	for _, marker := range []string{
		"testing.(*T).Run",        // parallel subtest parents
		"testing.tRunner",         // the running test itself
		"testing.runTests",        // testing.Main driver
		"testing.(*M).startAlarm", // test deadline timer
		"runtime.goexit0",         // exiting as we look
		"runtime.gc",              // collector workers
		"runtime.bgsweep",         // collector workers
		"runtime.bgscavenge",      // collector workers
		"runtime.forcegchelper",   // collector workers
		"runtime.ReadTrace",       // tracer
		"os/signal.signal_recv",   // signal handler
		"os/signal.loop",          // signal handler
		"runtime/pprof.profileWriter",
		"leakcheck.Check", // ourselves
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	// Goroutines parked in a syscall by the poller.
	return strings.HasPrefix(stack, "goroutine ") && strings.Contains(stack, "[syscall") && strings.Contains(stack, "runtime.ensureSigM")
}

// T verifies a single test leaks nothing: call at the top of the test
// and it registers a cleanup that diffs goroutines at test exit.
func T(t *testing.T) {
	t.Helper()
	before := snapshot()
	t.Cleanup(func() {
		if leaked := Check(before); len(leaked) > 0 {
			t.Errorf("leakcheck: %d goroutine(s) leaked:\n%s", len(leaked), strings.Join(leaked, "\n---\n"))
		}
	})
}
