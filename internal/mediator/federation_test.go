package mediator

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fedInstall builds a 3-replica federation over the standard test
// installation, with leases on the shared fake clock.
func fedInstall(t *testing.T, ttl time.Duration, clk *fakeClock) *Federation {
	t.Helper()
	base := testInstall()
	if ttl > 0 {
		base.LeaseTTL = ttl
		base.Now = clk.Now
	}
	f, err := NewFederation([]string{"med-a", "med-b", "med-c"}, base)
	if err != nil {
		t.Fatalf("federation: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestFederationMirrorsSessions(t *testing.T) {
	f := fedInstall(t, 0, nil)
	rec, err := f.Mediator(0).Admit(Requirements{Rate: 400e3, Key: "tenant-a"})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if rec.Home != "med-a" {
		t.Fatalf("home = %q, want med-a", rec.Home)
	}
	if rec.ID&idBaseMask == 0 {
		t.Fatalf("federated session id %#x has no replica namespace", rec.ID)
	}
	f.WaitMirrors()
	for i, med := range f.Mediators() {
		if n := med.Sessions(); n != 1 {
			t.Fatalf("replica %d: sessions = %d, want 1", i, n)
		}
		for a := range testInstall().Agents {
			if med.AgentLoad(a) != f.Mediator(0).AgentLoad(a) {
				t.Fatalf("replica %d: agent %d load diverged", i, a)
			}
		}
		st, err := med.Status()
		if err != nil {
			t.Fatalf("replica %d status: %v", i, err)
		}
		want := 0
		if i == 0 {
			want = 1
		}
		if st.HomeSessions != want {
			t.Fatalf("replica %d: home sessions = %d, want %d", i, st.HomeSessions, want)
		}
	}
}

func TestFederationCloseReleasesEverywhere(t *testing.T) {
	f := fedInstall(t, 0, nil)
	rec, err := f.Mediator(1).Admit(Requirements{Rate: 400e3})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	f.WaitMirrors()
	if err := f.Mediator(1).CloseSession(rec.ID); err != nil {
		t.Fatalf("close: %v", err)
	}
	f.WaitMirrors()
	for i, med := range f.Mediators() {
		if n := med.Sessions(); n != 0 {
			t.Fatalf("replica %d: sessions = %d after close", i, n)
		}
		for a := range testInstall().Agents {
			if l := med.AgentLoad(a); l != 0 {
				t.Fatalf("replica %d: agent %d load %f after close", i, a, l)
			}
		}
	}
}

func TestApplyMirrorLastWriterWins(t *testing.T) {
	cfg := testInstall()
	cfg.Self = "med-x"
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	defer m.Close()
	t0 := time.Unix(2000, 0)
	rec := SessionRecord{
		ID: 42, Key: "k", Home: "med-y", Expires: t0,
		Plan: Plan{SessionID: 42, Agents: []int{0}, Addrs: []string{"agent0:7070"}, Unit: 65536, Rate: 100e3},
	}
	if err := m.ApplyMirror(MirrorUpdate{Op: MirrorUpsert, Rec: rec}); err != nil {
		t.Fatalf("upsert: %v", err)
	}
	// A stale update (earlier deadline) must not roll the lease back.
	stale := rec
	stale.Expires = t0.Add(-time.Minute)
	stale.Home = "med-z"
	if err := m.ApplyMirror(MirrorUpdate{Op: MirrorUpsert, Rec: stale}); err != nil {
		t.Fatalf("stale upsert: %v", err)
	}
	m.mu.Lock()
	s := m.sessions[42]
	home, exp := s.home, s.expires
	m.mu.Unlock()
	if home != "med-y" || !exp.Equal(t0) {
		t.Fatalf("stale mirror won: home=%q expires=%v", home, exp)
	}
	// A fresher update wins.
	fresh := rec
	fresh.Expires = t0.Add(time.Minute)
	fresh.Home = "med-z"
	if err := m.ApplyMirror(MirrorUpdate{Op: MirrorUpsert, Rec: fresh}); err != nil {
		t.Fatalf("fresh upsert: %v", err)
	}
	m.mu.Lock()
	home = m.sessions[42].home
	m.mu.Unlock()
	if home != "med-z" {
		t.Fatalf("fresh mirror lost: home=%q", home)
	}
	// Applying a mirror reserves capacity; deleting releases it.
	if m.AgentLoad(0) == 0 {
		t.Fatal("mirrored session reserved nothing")
	}
	if err := m.ApplyMirror(MirrorUpdate{Op: MirrorDelete, Rec: rec}); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if l := m.AgentLoad(0); l != 0 {
		t.Fatalf("agent load %f after mirror delete", l)
	}
}

func TestRenewAdoptsMirroredSessionAfterCrash(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	f := fedInstall(t, time.Minute, clk)
	rec, err := f.Mediator(0).Admit(Requirements{Rate: 400e3, Key: "tenant-a"})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	f.WaitMirrors()
	f.Kill(0)
	// The client re-targets its heartbeat to a survivor, which adopts.
	home, err := f.Mediator(1).RenewSession(*rec)
	if err != nil {
		t.Fatalf("renew on survivor: %v", err)
	}
	if home != "med-b" {
		t.Fatalf("adopted home = %q, want med-b", home)
	}
	st, err := f.Mediator(1).Status()
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}
	if st.HomeSessions != 1 {
		t.Fatalf("home sessions = %d after adoption", st.HomeSessions)
	}
}

func TestRenewAdoptsUnknownSessionWholesale(t *testing.T) {
	// The home died before its first mirror flushed: the survivor has
	// never heard of the session and must adopt the record the client
	// carries, reservations and all.
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m, err := New(leaseInstall(time.Minute, clk))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	defer m.Close()
	rec := SessionRecord{
		ID: (7 << 48) | 1, Key: "orphan", Home: "med-dead",
		Expires: clk.Now().Add(time.Second), // nearly lapsed
		Plan:    Plan{Agents: []int{0, 1}, Addrs: []string{"agent0:7070", "agent1:7070"}, Unit: 65536, Rate: 400e3},
	}
	home, err := m.RenewSession(rec)
	if err != nil {
		t.Fatalf("renew unknown: %v", err)
	}
	if home != "mediator" {
		t.Fatalf("home = %q, want mediator", home)
	}
	if m.Sessions() != 1 {
		t.Fatal("adopted session not installed")
	}
	if m.AgentLoad(0) == 0 || m.AgentLoad(1) == 0 {
		t.Fatal("adoption reserved no capacity")
	}
	// Adoption granted a fresh TTL, not the stale deadline in the record.
	clk.Advance(30 * time.Second)
	if n := m.ExpireNow(); n != 0 {
		t.Fatalf("adopted session expired %d early", n)
	}
}

func TestDrainHandsSessionsToPeers(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	f := fedInstall(t, time.Minute, clk)
	rec, err := f.Mediator(0).Admit(Requirements{Rate: 400e3, Key: "tenant-a"})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	f.WaitMirrors()
	handed, err := f.Drain(0)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if handed != 1 {
		t.Fatalf("handed = %d, want 1", handed)
	}
	// The session moved to the rendezvous-next peer for its key.
	wantHome := PlaceOrder("tenant-a", []string{"med-b", "med-c"})[0]
	st0, err := f.Mediator(0).Status()
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st0.Role != "draining" {
		t.Fatalf("role = %q, want draining", st0.Role)
	}
	if st0.Handoffs != 1 || st0.HomeSessions != 0 || st0.LastHandoff.IsZero() {
		t.Fatalf("drain status: %+v", st0)
	}
	// A heartbeat that lands on the draining replica is honoured and
	// answers with the new home, re-targeting the client.
	home, err := f.Mediator(0).RenewSession(*rec)
	if err != nil {
		t.Fatalf("renew mid-drain: %v", err)
	}
	if home != wantHome {
		t.Fatalf("renew answered home %q, want %q", home, wantHome)
	}
	// New admissions are refused while draining.
	if _, err := f.Mediator(0).Admit(Requirements{Rate: 100e3}); !errors.Is(err, ErrDraining) {
		t.Fatalf("admit on draining: err = %v, want ErrDraining", err)
	}
	// The new home is home for the session.
	for i, name := range f.Names() {
		if name != wantHome {
			continue
		}
		st, err := f.Mediator(i).Status()
		if err != nil {
			t.Fatalf("status %s: %v", name, err)
		}
		if st.HomeSessions != 1 {
			t.Fatalf("%s home sessions = %d after handoff", name, st.HomeSessions)
		}
	}
}

func TestKilledReplicaRefusesEverything(t *testing.T) {
	f := fedInstall(t, 0, nil)
	rec, err := f.Mediator(0).Admit(Requirements{Rate: 100e3})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	f.WaitMirrors()
	f.Kill(0)
	m := f.Mediator(0)
	if _, err := m.Admit(Requirements{Rate: 100e3}); !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("admit: %v", err)
	}
	if _, err := m.RenewSession(*rec); !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("renew: %v", err)
	}
	if err := m.CloseSession(rec.ID); !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("close: %v", err)
	}
	if err := m.ApplyMirror(MirrorUpdate{Op: MirrorUpsert, Rec: *rec}); !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("apply: %v", err)
	}
	if _, err := m.Status(); !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("status: %v", err)
	}
	if _, err := m.Drain(); !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("drain: %v", err)
	}
	if _, err := m.Snapshot(); !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("snapshot: %v", err)
	}
	// Kill is idempotent and Close after Kill is clean.
	m.Kill()
}

func TestRestartReconcilesFromPeers(t *testing.T) {
	f := fedInstall(t, 0, nil)
	var ids []uint64
	for i := 0; i < 3; i++ {
		rec, err := f.Mediator(i).Admit(Requirements{Rate: 200e3, Key: fmt.Sprintf("t%d", i)})
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		ids = append(ids, rec.ID)
	}
	f.WaitMirrors()
	f.Kill(0)
	if err := f.Restart(0); err != nil {
		t.Fatalf("restart: %v", err)
	}
	m := f.Mediator(0)
	if n := m.Sessions(); n != 3 {
		t.Fatalf("restarted replica sessions = %d, want 3", n)
	}
	for a := range testInstall().Agents {
		if m.AgentLoad(a) != f.Mediator(1).AgentLoad(a) {
			t.Fatalf("agent %d load diverged after restart", a)
		}
	}
	// The restarted replica must not re-issue a live id from its former
	// namespace: its next admission gets a strictly larger sequence.
	rec, err := m.Admit(Requirements{Rate: 100e3})
	if err != nil {
		t.Fatalf("post-restart admit: %v", err)
	}
	for _, id := range ids {
		if rec.ID == id {
			t.Fatalf("restarted replica re-issued live session id %#x", id)
		}
	}
}

// TestPlacementStableUnderMembershipChange is the rendezvous property:
// removing a replica re-homes only the sessions it owned, and adding one
// steals only ~1/N of the keys — never shuffles the rest.
func TestPlacementStableUnderMembershipChange(t *testing.T) {
	replicas := []string{"med-a", "med-b", "med-c", "med-d", "med-e"}
	const keys = 1000
	key := func(i int) string { return fmt.Sprintf("client-%d", i) }

	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		before[key(i)] = Place(key(i), replicas)
	}

	// Remove med-c: every key homed elsewhere must stay put.
	without := []string{"med-a", "med-b", "med-d", "med-e"}
	moved := 0
	for i := 0; i < keys; i++ {
		now := Place(key(i), without)
		if before[key(i)] == "med-c" {
			moved++
			if now == "med-c" {
				t.Fatal("key still placed on removed replica")
			}
		} else if now != before[key(i)] {
			t.Fatalf("key %s re-homed %s -> %s though its replica survived", key(i), before[key(i)], now)
		}
	}
	if moved == 0 || moved > keys/2 {
		t.Fatalf("removal moved %d/%d keys; want roughly 1/5", moved, keys)
	}

	// Add med-f: only keys stolen by med-f may move.
	with := append(append([]string(nil), replicas...), "med-f")
	stolen := 0
	for i := 0; i < keys; i++ {
		now := Place(key(i), with)
		if now != before[key(i)] {
			if now != "med-f" {
				t.Fatalf("key %s moved %s -> %s on an add", key(i), before[key(i)], now)
			}
			stolen++
		}
	}
	// Expect ~1/6 of the keys; allow a wide statistical margin.
	if stolen < keys/12 || stolen > keys/3 {
		t.Fatalf("add stole %d/%d keys; want roughly 1/6", stolen, keys)
	}

	// Placement order is a permutation, deterministic, and ignores input order.
	ord := PlaceOrder("some-key", replicas)
	if len(ord) != len(replicas) {
		t.Fatalf("order has %d entries, want %d", len(ord), len(replicas))
	}
	shuffled := append([]string(nil), replicas...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	ord2 := PlaceOrder("some-key", shuffled)
	for i := range ord {
		if ord[i] != ord2[i] {
			t.Fatalf("placement order depends on input order: %v vs %v", ord, ord2)
		}
	}
}

// TestForeignAgentIndicesDoNotPanicRelease is the release-side twin of
// reserveLocked's foreign-index guard: a mirrored (or client-carried)
// record whose agent indices do not exist in this installation inserts
// without reserving those entries, and must release the same way — via
// mirror delete, close, and lease expiry — instead of panicking the
// replica with an index out of range.
func TestForeignAgentIndicesDoNotPanicRelease(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	cfg := leaseInstall(time.Minute, clk)
	cfg.Self = "med-x"
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	defer m.Close()
	foreign := func(id uint64) SessionRecord {
		return SessionRecord{
			ID: id, Key: "foreign", Home: "med-far", Expires: clk.Now().Add(time.Minute),
			Plan: Plan{SessionID: id, Agents: []int{0, 97, -1}, Addrs: []string{"a", "b", "c"}, Unit: 65536, Rate: 300e3},
		}
	}
	// Mirror-delete path.
	if err := m.ApplyMirror(MirrorUpdate{Op: MirrorUpsert, Rec: foreign(1)}); err != nil {
		t.Fatalf("upsert: %v", err)
	}
	if err := m.ApplyMirror(MirrorUpdate{Op: MirrorDelete, Rec: foreign(1)}); err != nil {
		t.Fatalf("delete: %v", err)
	}
	// Close path.
	if err := m.ApplyMirror(MirrorUpdate{Op: MirrorUpsert, Rec: foreign(2)}); err != nil {
		t.Fatalf("upsert: %v", err)
	}
	if err := m.CloseSession(2); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Lease-expiry path (adoption installs the record wholesale).
	if _, err := m.RenewSession(foreign(3)); err != nil {
		t.Fatalf("adopt: %v", err)
	}
	clk.Advance(2 * time.Minute)
	if n := m.ExpireNow(); n != 1 {
		t.Fatalf("expired %d foreign sessions, want 1", n)
	}
	// The in-range index must be fully released; loads end at exactly zero.
	if l := m.AgentLoad(0); l != 0 {
		t.Fatalf("agent 0 load %g after foreign churn, want 0", l)
	}
}

// failingPeer is a Peer whose Mirror can be switched between refusing
// and recording updates — the seam for delete-retry tests.
type failingPeer struct {
	mu      sync.Mutex
	name    string
	failing bool
	got     []MirrorUpdate
}

func (p *failingPeer) Name() string { return p.name }

func (p *failingPeer) SetFailing(v bool) {
	p.mu.Lock()
	p.failing = v
	p.mu.Unlock()
}

func (p *failingPeer) Got() []MirrorUpdate {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]MirrorUpdate(nil), p.got...)
}

func (p *failingPeer) Mirror(u MirrorUpdate) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failing {
		return errors.New("peer unreachable")
	}
	p.got = append(p.got, u)
	return nil
}

// TestFailedMirrorDeleteIsRetried: a MirrorDelete a peer refuses must be
// parked and re-offered on later mirror activity — a dropped delete has
// no renewal to repair it, and with leases disabled the peer would keep
// the phantom reservation forever.
func TestFailedMirrorDeleteIsRetried(t *testing.T) {
	cfg := testInstall()
	cfg.Self = "med-a"
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	defer m.Close()
	peer := &failingPeer{name: "med-b", failing: true}
	m.SetPeers([]Peer{peer})
	rec, err := m.Admit(Requirements{Rate: 100e3})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if err := m.CloseSession(rec.ID); err != nil {
		t.Fatalf("close: %v", err)
	}
	m.WaitMirrors() // delete attempted against the failing peer and parked
	peer.SetFailing(false)
	m.WaitMirrors() // flush barrier retries the parked delete
	var deletes int
	for _, u := range peer.Got() {
		if u.Op == MirrorDelete && u.Rec.ID == rec.ID {
			deletes++
		}
	}
	if deletes == 0 {
		t.Fatal("refused MirrorDelete was never retried; peer keeps a phantom reservation")
	}
}

// TestDrainHandoffCarriesFreshLease: a renewal landing between Drain's
// snapshot and the handoff must not make the handoff carry a stale
// deadline — the peer judges upserts by last-writer-wins on Expires, and
// a stale handoff would leave the draining replica recorded as home.
// The first-choice peer refuses the handoff and sneaks a renewal in; the
// second-choice peer must then see the renewed deadline.
func TestDrainHandoffCarriesFreshLease(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	cfg := leaseInstall(time.Minute, clk)
	cfg.Self = "med-a"
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	defer m.Close()
	rec, err := m.Admit(Requirements{Rate: 100e3, Key: "tenant-a"})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	renewed := clk.Now().Add(30 * time.Second).Add(time.Minute)
	first := &renewingPeer{m: m, rec: *rec, clk: clk}
	second := &failingPeer{name: ""}
	order := PlaceOrder("tenant-a", []string{"med-b", "med-c"})
	first.name, second.name = order[0], order[1]
	m.SetPeers([]Peer{first, second})
	if _, err := m.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The second peer also receives asynchronous mirror-loop upserts
	// (Home=med-a); the handoff is the update naming it as the new home.
	var handoffs int
	for _, u := range second.Got() {
		if u.Op != MirrorUpsert || u.Rec.Home != second.name {
			continue
		}
		handoffs++
		if !u.Rec.Expires.Equal(renewed) {
			t.Fatalf("handoff carries deadline %v, want the mid-drain renewal's %v", u.Rec.Expires, renewed)
		}
	}
	if handoffs == 0 {
		t.Fatal("second peer never received the handoff")
	}
}

// renewingPeer refuses its first Mirror after sneaking in a renewal —
// the deterministic stand-in for a heartbeat racing Drain's handoff.
type renewingPeer struct {
	mu   sync.Mutex
	name string
	m    *Mediator
	rec  SessionRecord
	clk  *fakeClock
	done bool
}

func (p *renewingPeer) Name() string { return p.name }

func (p *renewingPeer) Mirror(u MirrorUpdate) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.done {
		p.done = true
		p.clk.Advance(30 * time.Second)
		if _, err := p.m.RenewSession(p.rec); err != nil {
			return fmt.Errorf("mid-drain renew: %w", err)
		}
		return errors.New("peer unreachable")
	}
	return nil
}

// TestRenewAtExactDeadline is the TTL-boundary regression: a lease is
// valid through its deadline instant, so a renew (or sweep) landing at
// exactly T0+TTL must not find the session expired.
func TestRenewAtExactDeadline(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m, err := New(leaseInstall(time.Minute, clk))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	defer m.Close()
	p, err := m.OpenSession(Requirements{Rate: 100e3})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	clk.Advance(time.Minute) // exactly the deadline
	if n := m.ExpireNow(); n != 0 {
		t.Fatalf("sweep at the deadline instant reaped %d", n)
	}
	if err := m.Renew(p.SessionID); err != nil {
		t.Fatalf("renew at the deadline instant: %v", err)
	}
	clk.Advance(time.Minute + time.Nanosecond) // one past the new deadline
	if n := m.ExpireNow(); n != 1 {
		t.Fatalf("sweep past the deadline reaped %d, want 1", n)
	}
}

// TestRenewVsExpiryHammer races renewals, closes, and expiry sweeps;
// whatever interleaving wins, reservations must come back to exactly zero.
func TestRenewVsExpiryHammer(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m, err := New(leaseInstall(time.Millisecond, clk))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	defer m.Close()
	const rounds = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	sweeperDone := make(chan struct{})
	go func() { // expiry storm
		defer close(sweeperDone)
		for {
			select {
			case <-stop:
				return
			default:
				clk.Advance(time.Millisecond)
				m.ExpireNow()
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				p, err := m.OpenSession(Requirements{Rate: 50e3})
				if err != nil {
					continue // admission full under churn; fine
				}
				m.Renew(p.SessionID)
				m.CloseSession(p.SessionID)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-sweeperDone
	clk.Advance(time.Hour)
	m.ExpireNow()
	if n := m.Sessions(); n != 0 {
		t.Fatalf("%d sessions survive the hammer", n)
	}
	for i := range testInstall().Agents {
		if l := m.AgentLoad(i); l != 0 {
			t.Fatalf("agent %d load %g after hammer, want exactly 0", i, l)
		}
	}
	for j := 0; j < 2; j++ {
		if l := m.NetLoad(j); l != 0 {
			t.Fatalf("net %d load %g after hammer, want exactly 0", j, l)
		}
	}
}
