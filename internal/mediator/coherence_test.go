package mediator

import (
	"errors"
	"testing"
	"time"
)

// newCoherenceMediator builds a single replica over the standard test
// installation for direct CacheSync exercises.
func newCoherenceMediator(t *testing.T) *Mediator {
	t.Helper()
	m, err := New(testInstall())
	if err != nil {
		t.Fatalf("new mediator: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// TestCacheSyncAdoptsOwnWrites pins the writer-side rule: a session's
// declared writes bump the generation and come back as adoptions (the
// new generation for the object), even when the session also declares
// the object cached — never as a bare invalidation of its own cache.
func TestCacheSyncAdoptsOwnWrites(t *testing.T) {
	m := newCoherenceMediator(t)
	p, err := m.OpenSession(Requirements{Rate: 100e3})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	out, err := m.CacheSync(p.SessionID,
		[]CachedObject{{Name: "v", Gen: 0}}, []string{"v"})
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	if len(out) != 1 || out[0].Name != "v" || out[0].Gen != 1 {
		t.Fatalf("reply = %+v, want v@1", out)
	}
	if g := m.ObjectGen("v"); g != 1 {
		t.Fatalf("gen = %d, want 1", g)
	}
	// Re-declaring the same round (a lost-reply retransmit) just bumps
	// again — harmless over-invalidation, never a stuck generation.
	out, err = m.CacheSync(p.SessionID, nil, []string{"v"})
	if err != nil {
		t.Fatalf("retransmit: %v", err)
	}
	if len(out) != 1 || out[0].Gen != 2 {
		t.Fatalf("retransmit reply = %+v, want v@2", out)
	}
}

// TestCacheSyncInvalidatesStaleReaders pins the reader side: only
// images behind the current generation are named, and the reply carries
// the generation to converge to.
func TestCacheSyncInvalidatesStaleReaders(t *testing.T) {
	m := newCoherenceMediator(t)
	w, err := m.OpenSession(Requirements{Rate: 100e3})
	if err != nil {
		t.Fatalf("open writer: %v", err)
	}
	r, err := m.OpenSession(Requirements{Rate: 100e3})
	if err != nil {
		t.Fatalf("open reader: %v", err)
	}
	if _, err := m.CacheSync(w.SessionID, nil, []string{"a", "b"}); err != nil {
		t.Fatalf("writer sync: %v", err)
	}
	out, err := m.CacheSync(r.SessionID, []CachedObject{
		{Name: "a", Gen: 0}, // stale
		{Name: "b", Gen: 1}, // current
		{Name: "c", Gen: 0}, // never written: current by definition
	}, nil)
	if err != nil {
		t.Fatalf("reader sync: %v", err)
	}
	if len(out) != 1 || out[0].Name != "a" || out[0].Gen != 1 {
		t.Fatalf("reply = %+v, want only a@1", out)
	}
}

// TestCacheSyncUnknownSession pins the lease-loss sentinel and that an
// expired lease severs the coherence channel with it.
func TestCacheSyncUnknownSession(t *testing.T) {
	clk := &fakeClock{now: time.Unix(100, 0)}
	m, err := New(leaseInstall(time.Second, clk))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	t.Cleanup(func() { m.Close() })

	if _, err := m.CacheSync(42, nil, nil); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("unknown id err = %v, want ErrUnknownSession", err)
	}
	p, err := m.OpenSession(Requirements{Rate: 100e3})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := m.CacheSync(p.SessionID, nil, nil); err != nil {
		t.Fatalf("live sync: %v", err)
	}
	clk.Advance(2 * time.Second) // lease lapses
	if _, err := m.CacheSync(p.SessionID, nil, nil); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("expired lease err = %v, want ErrUnknownSession", err)
	}
}

// TestGenerationBumpCrossesFederation pins the mirror ride: a write
// declared on one replica moves the generation on its peers, so a
// reader homed elsewhere still hears about it.
func TestGenerationBumpCrossesFederation(t *testing.T) {
	f := fedInstall(t, 0, nil)
	w, err := f.Mediator(0).OpenSession(Requirements{Rate: 100e3})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Mediator(0).CacheSync(w.SessionID, nil, []string{"shared"}); err != nil {
		t.Fatalf("sync: %v", err)
	}
	f.WaitMirrors()
	for i := 0; i < 3; i++ {
		if g := f.Mediator(i).ObjectGen("shared"); g != 1 {
			t.Fatalf("replica %d gen = %d, want 1", i, g)
		}
	}
}

// TestRestartReconcilesGenerations pins the restart rule: the
// generation table dies with the process, and the restarted replica
// max-merges it back from a peer so it cannot vouch "fresh" for an
// object the federation knows was overwritten.
func TestRestartReconcilesGenerations(t *testing.T) {
	f := fedInstall(t, 0, nil)
	w, err := f.Mediator(1).OpenSession(Requirements{Rate: 100e3})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Mediator(1).CacheSync(w.SessionID, nil, []string{"x"}); err != nil {
		t.Fatalf("sync: %v", err)
	}
	f.WaitMirrors()
	f.Kill(0)
	if err := f.Restart(0); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if g := f.Mediator(0).ObjectGen("x"); g != 1 {
		t.Fatalf("restarted replica gen = %d, want 1", g)
	}
}

// TestSyncGensMaxMerges pins that reconciliation is a max-merge: a
// stale snapshot can never roll a generation backwards.
func TestSyncGensMaxMerges(t *testing.T) {
	m := newCoherenceMediator(t)
	if err := m.SyncGens(map[string]uint64{"a": 5, "b": 2}); err != nil {
		t.Fatalf("sync gens: %v", err)
	}
	if err := m.SyncGens(map[string]uint64{"a": 3, "b": 7}); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	if g := m.ObjectGen("a"); g != 5 {
		t.Fatalf("a = %d, want 5 (no rollback)", g)
	}
	if g := m.ObjectGen("b"); g != 7 {
		t.Fatalf("b = %d, want 7", g)
	}
	snap, err := m.GenSnapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if len(snap) != 2 || snap["a"] != 5 || snap["b"] != 7 {
		t.Fatalf("snapshot = %v", snap)
	}
}
