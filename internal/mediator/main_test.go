package mediator

import (
	"testing"

	"swift/internal/testutil/leakcheck"
)

// TestMain fails the binary if any test leaks a goroutine: the
// mediator's session janitor must stop when its test closes it.
func TestMain(m *testing.M) { leakcheck.Main(m) }
