package mediator

import (
	"strconv"

	"swift/internal/obs"
)

// telemetry is the mediator's observability surface: admission counters
// and export-time reservation-utilization gauges computed straight from
// the load tables (never double-booked).
type telemetry struct {
	reg         *obs.Registry
	admits      *obs.Counter // sessions admitted
	rejects     *obs.Counter // sessions rejected (ErrUnsatisfiable)
	closes      *obs.Counter // sessions closed
	renewals    *obs.Counter // lease heartbeats honoured
	expirations *obs.Counter // sessions reaped by lease expiry
}

// initTelemetry registers the mediator's instruments. The reservation
// gauges are GaugeFuncs over the live load tables, so exports always see
// the current utilization without a second bookkeeping path.
func (m *Mediator) initTelemetry(reg *obs.Registry) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m.tel = &telemetry{
		reg:     reg,
		admits:  reg.Counter("swift_mediator_admits_total", "Sessions admitted.", nil),
		rejects: reg.Counter("swift_mediator_rejects_total", "Sessions rejected as unsatisfiable.", nil),
		closes:  reg.Counter("swift_mediator_closes_total", "Sessions closed.", nil),
		renewals: reg.Counter("swift_mediator_lease_renewals_total",
			"Session lease heartbeats honoured.", nil),
		expirations: reg.Counter("swift_mediator_lease_expirations_total",
			"Sessions reaped because their lease lapsed.", nil),
	}
	reg.GaugeFunc("swift_mediator_sessions", "Active reserved sessions.", nil, func() float64 {
		return float64(m.Sessions())
	})
	for i := range m.cfg.Agents {
		i := i
		cap := m.cfg.Agents[i].Rate
		reg.GaugeFunc("swift_mediator_agent_reserved_ratio",
			"Fraction of the agent's deliverable rate currently reserved.",
			obs.Labels{"agent": strconv.Itoa(i)}, func() float64 {
				if cap <= 0 {
					return 0
				}
				return m.AgentLoad(i) / cap
			})
	}
	for j := range m.cfg.Nets {
		j := j
		cap := m.cfg.Nets[j].Capacity
		reg.GaugeFunc("swift_mediator_net_reserved_ratio",
			"Fraction of the interconnect's capacity currently reserved.",
			obs.Labels{"net": m.cfg.Nets[j].Name}, func() float64 {
				if cap <= 0 {
					return 0
				}
				return m.NetLoad(j) / cap
			})
	}
}

// Obs returns the mediator's metric registry, for export.
func (m *Mediator) Obs() *obs.Registry { return m.tel.reg }
