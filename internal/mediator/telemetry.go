package mediator

import (
	"strconv"

	"swift/internal/obs"
)

// telemetry is the mediator's observability surface: admission counters,
// federation counters, and export-time reservation-utilization gauges
// computed straight from the load tables (never double-booked). Federated
// replicas label every instrument with {replica="<Self>"} so a tier
// sharing one registry exports one series per replica.
type telemetry struct {
	reg            *obs.Registry
	admits         *obs.Counter // sessions admitted
	rejects        *obs.Counter // sessions rejected (ErrUnsatisfiable or ErrDraining)
	closes         *obs.Counter // sessions closed
	renewals       *obs.Counter // lease heartbeats honoured
	expirations    *obs.Counter // sessions reaped by lease expiry
	failovers      *obs.Counter // sessions adopted from a failed peer
	handoffs       *obs.Counter // sessions handed to peers by Drain
	mirrorsSent    *obs.Counter // replication updates delivered to peers
	mirrorsApplied *obs.Counter // replication updates applied from peers
	mirrorDrops    *obs.Counter // replication updates dropped or refused

	overloadRejects *obs.Counter // sessions shed by the admission watermark

	// Cache coherence (see coherence.go).
	cacheSyncs     *obs.Counter // client coherence rounds served
	writesDeclared *obs.Counter // object write declarations (generation bumps)
	invalidations  *obs.Counter // stale cached objects reported to clients
}

// lbl builds an instrument's label set, adding the replica label on
// federated mediators. Returning the extra labels untouched for the
// unfederated case keeps the pre-federation export format byte-identical.
func (m *Mediator) lbl(extra obs.Labels) obs.Labels {
	if m.cfg.Self == "" {
		return extra
	}
	out := obs.Labels{"replica": m.cfg.Self}
	for k, v := range extra {
		out[k] = v
	}
	return out
}

// initTelemetry registers the mediator's instruments. The reservation
// gauges are GaugeFuncs over the live load tables, so exports always see
// the current utilization without a second bookkeeping path.
func (m *Mediator) initTelemetry(reg *obs.Registry) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m.tel = &telemetry{
		reg:     reg,
		admits:  reg.Counter("swift_mediator_admits_total", "Sessions admitted.", m.lbl(nil)),
		rejects: reg.Counter("swift_mediator_rejects_total", "Sessions rejected as unsatisfiable.", m.lbl(nil)),
		closes:  reg.Counter("swift_mediator_closes_total", "Sessions closed.", m.lbl(nil)),
		renewals: reg.Counter("swift_mediator_lease_renewals_total",
			"Session lease heartbeats honoured.", m.lbl(nil)),
		expirations: reg.Counter("swift_mediator_lease_expirations_total",
			"Sessions reaped because their lease lapsed.", m.lbl(nil)),
		failovers: reg.Counter("swift_mediator_failovers_total",
			"Sessions adopted after their home replica failed and the client re-targeted.", m.lbl(nil)),
		handoffs: reg.Counter("swift_mediator_handoffs_total",
			"Live sessions handed to a peer replica by Drain.", m.lbl(nil)),
		mirrorsSent: reg.Counter("swift_mediator_mirrors_sent_total",
			"Session replication updates delivered to peer replicas.", m.lbl(nil)),
		mirrorsApplied: reg.Counter("swift_mediator_mirrors_applied_total",
			"Session replication updates applied from peer replicas.", m.lbl(nil)),
		mirrorDrops: reg.Counter("swift_mediator_mirrors_dropped_total",
			"Session replication updates dropped (full peer queue) or refused by a peer.", m.lbl(nil)),
		overloadRejects: reg.Counter("swift_mediator_overload_rejects_total",
			"New sessions shed because reserved ratios exceeded the admission watermark.", m.lbl(nil)),
		cacheSyncs: reg.Counter("swift_mediator_cache_syncs_total",
			"Client cache-coherence rounds served over the lease channel.", m.lbl(nil)),
		writesDeclared: reg.Counter("swift_mediator_cache_writes_declared_total",
			"Object write declarations received (each bumps the object's generation).", m.lbl(nil)),
		invalidations: reg.Counter("swift_mediator_cache_invalidations_total",
			"Stale cached objects reported back to clients for invalidation.", m.lbl(nil)),
	}
	reg.GaugeFunc("swift_mediator_sessions", "Active reserved sessions known to this replica.",
		m.lbl(nil), func() float64 {
			return float64(m.Sessions())
		})
	reg.GaugeFunc("swift_mediator_home_sessions",
		"Active sessions this replica is the lease home for.",
		m.lbl(nil), func() float64 {
			st, err := m.Status()
			if err != nil {
				return 0
			}
			return float64(st.HomeSessions)
		})
	for i := range m.cfg.Agents {
		i := i
		cap := m.cfg.Agents[i].Rate
		reg.GaugeFunc("swift_mediator_agent_reserved_ratio",
			"Fraction of the agent's deliverable rate currently reserved.",
			m.lbl(obs.Labels{"agent": strconv.Itoa(i)}), func() float64 {
				if cap <= 0 {
					return 0
				}
				return m.AgentLoad(i) / cap
			})
	}
	for j := range m.cfg.Nets {
		j := j
		cap := m.cfg.Nets[j].Capacity
		reg.GaugeFunc("swift_mediator_net_reserved_ratio",
			"Fraction of the interconnect's capacity currently reserved.",
			m.lbl(obs.Labels{"net": m.cfg.Nets[j].Name}), func() float64 {
				if cap <= 0 {
					return 0
				}
				return m.NetLoad(j) / cap
			})
	}
}

// Obs returns the mediator's metric registry, for export.
func (m *Mediator) Obs() *obs.Registry { return m.tel.reg }
