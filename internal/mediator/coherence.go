package mediator

// Cache coherence over the lease channel.
//
// The mediator keeps a per-object write generation: a counter bumped every
// time any session declares that it moved the object's bytes on the
// storage agents (a write-through or a write-behind flush). Clients ride a
// CacheSync exchange on their existing renew/heartbeat cadence: they
// declare the objects they cache (with the generation their image
// reflects) plus the objects they wrote since the last round, and the
// reply names every cached object whose generation has moved past the
// client's — those images are stale and must be dropped.
//
// A session's own declared writes are special-cased: the writer's cache
// absorbed those bytes on the way out, so the reply hands it the new
// generation to adopt rather than an invalidation. Two sessions writing
// the same object through different home replicas can mint the same
// generation number within one mirror round-trip; the max-merge keeps the
// counters monotonic and the next declaration from either writer moves
// the generation past both, so staleness is bounded by one heartbeat.
//
// Generation bumps ride the federation mirror channel (MirrorInvalidate)
// so a reader homed on a peer replica hears about a writer homed here.
// The generation map is deliberately not rebuilt on restart: a restarted
// replica max-merges generations back from its peers' mirrors, and a
// client whose sync round fails conservatively keeps redeclaring its
// written set until a round succeeds.

// CachedObject names one object a client caches (or was told to drop)
// together with the mediator write-generation its cached image reflects.
type CachedObject struct {
	Name string
	Gen  uint64
}

// CacheSync is one client's coherence round, riding its heartbeat: cached
// declares the session's resident objects and the generations their
// images reflect, written declares the objects whose agent-side bytes
// this client moved since its previous successful round. The reply lists
// the cached objects that are stale — plus the client's own written
// objects with their new generations, which the writer adopts instead of
// invalidating (its cache absorbed those bytes on the way out). An
// unknown or expired session gets ErrUnknownSession: its lease is gone
// and with it any claim to coherent caching.
func (m *Mediator) CacheSync(id uint64, cached []CachedObject, written []string) ([]CachedObject, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killed {
		return nil, ErrReplicaDown
	}
	m.expireLocked()
	s := m.sessions[id]
	if s == nil {
		return nil, ErrUnknownSession
	}
	m.tel.cacheSyncs.Inc()

	wrote := make(map[string]bool, len(written))
	for _, name := range written {
		wrote[name] = true
		if m.objGen == nil {
			m.objGen = make(map[string]uint64)
		}
		m.objGen[name]++
		m.tel.writesDeclared.Inc()
		// The bump rides the mirror channel so peer-homed readers hear it.
		m.mirrorLocked(MirrorInvalidate, SessionRecord{
			ID: m.objGen[name], Key: name, Home: m.selfName(),
		})
	}

	// Refresh the session's interest set (what it caches), for operators.
	s.cached = len(cached)

	var out []CachedObject
	for _, co := range cached {
		if g := m.objGen[co.Name]; g > co.Gen {
			out = append(out, CachedObject{Name: co.Name, Gen: g})
			if !wrote[co.Name] {
				m.tel.invalidations.Inc()
			}
		}
	}
	// A written object the client does not (or no longer) caches still
	// needs its new generation echoed back, so a writer that re-opens the
	// object later starts from the generation its own write minted.
	for _, name := range written {
		if g := m.objGen[name]; g > 0 && !containsObject(out, name) {
			out = append(out, CachedObject{Name: name, Gen: g})
		}
	}
	return out, nil
}

// containsObject reports whether out already names the object.
func containsObject(out []CachedObject, name string) bool {
	for _, co := range out {
		if co.Name == name {
			return true
		}
	}
	return false
}

// ObjectGen returns the current write generation of one object (0 when
// never written through a coherence round) — a test and operator hook.
func (m *Mediator) ObjectGen(name string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.objGen[name]
}

// GenSnapshot copies the object write-generation table, for peer
// reconciliation after a replica restart (the in-memory table dies with
// the process; a restarted replica that answered "fresh" for an object a
// peer knows was written would let a reader serve stale bytes).
func (m *Mediator) GenSnapshot() (map[string]uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killed {
		return nil, ErrReplicaDown
	}
	out := make(map[string]uint64, len(m.objGen))
	for name, gen := range m.objGen {
		out[name] = gen
	}
	return out, nil
}

// SyncGens max-merges a peer's generation snapshot — the restart
// reconciliation path, paired with SyncFrom for sessions.
func (m *Mediator) SyncGens(gens map[string]uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killed {
		return ErrReplicaDown
	}
	for name, gen := range gens {
		m.applyInvalidateLocked(name, gen)
	}
	return nil
}

// applyInvalidateLocked max-merges a mirrored generation bump; m.mu held.
// Max-merge keeps the counter monotonic when mirrors arrive out of order
// or a restarted replica resyncs from a peer.
func (m *Mediator) applyInvalidateLocked(name string, gen uint64) {
	if m.objGen == nil {
		m.objGen = make(map[string]uint64)
	}
	if gen > m.objGen[name] {
		m.objGen[name] = gen
	}
}
