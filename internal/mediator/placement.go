package mediator

import (
	"hash/fnv"
	"sort"
)

// Rendezvous (highest-random-weight) placement of sessions over mediator
// replicas. Every participant — replicas deciding where to hand a drained
// session, clients deciding which replica to open against or fail over to
// — computes the same ordering from nothing but the session key and the
// replica names, so placement needs no coordination and no shared state.
//
// The defining property, verified by TestPlacementStability, is minimal
// disruption: adding or removing one replica re-homes only the ~1/N of
// keys whose top-scoring replica changed; every other key's ordering is
// untouched. A modulo scheme would re-home nearly all of them.

// placeScore is the rendezvous weight of one (key, replica) pair: a
// 64-bit FNV-1a over the replica name and the key, separated by a NUL so
// ("ab","c") and ("a","bc") cannot collide.
func placeScore(key, replica string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(replica))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// PlaceOrder returns the replicas ordered by descending rendezvous score
// for key: the first entry is the key's home, the rest are its failover
// sequence. Ties break by name for determinism. The input is not modified.
func PlaceOrder(key string, replicas []string) []string {
	out := append([]string(nil), replicas...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := placeScore(key, out[i]), placeScore(key, out[j])
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}

// Place returns the home replica for key, or "" with no replicas.
func Place(key string, replicas []string) string {
	if len(replicas) == 0 {
		return ""
	}
	best := replicas[0]
	bestScore := placeScore(key, best)
	for _, r := range replicas[1:] {
		s := placeScore(key, r)
		if s > bestScore || (s == bestScore && r < best) {
			best, bestScore = r, s
		}
	}
	return best
}
