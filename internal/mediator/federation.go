package mediator

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Federation: a tier of mediator replicas with replicated session state.
//
// Each replica runs the same admission logic over the same installation
// description. A session admitted anywhere is asynchronously mirrored to
// every peer (session id, placement key, home replica, plan, lease
// deadline), so any surviving replica can renew, close, or adopt the
// session when its home crashes or drains. Reservation accounting is
// replicated with the sessions: applying a mirrored upsert reserves the
// plan's capacity locally, applying a delete releases it, which keeps
// AgentLoad/NetLoad convergent across replicas without a consensus round.
//
// Nothing here is durable: the tier survives any minority of replica
// crashes because the survivors hold mirrors, but state lives only in
// memory. A full-tier restart loses all sessions — clients re-open, which
// is the paper's session model anyway (leases already bound how long a
// dead client pins capacity; federation bounds how long a dead *mediator*
// strands a live client).

// Federation errors.
var (
	// ErrReplicaDown is returned by every operation on a killed replica —
	// the in-process stand-in for a crashed mediator host.
	ErrReplicaDown = errors.New("mediator: replica down")
	// ErrDraining is returned to new admissions (and adoption attempts)
	// on a draining replica; live sessions continue to renew.
	ErrDraining = errors.New("mediator: replica draining")
)

// SessionRecord is the replicated form of one session: everything a peer
// needs to admit renewals for it, release it, or adopt it outright.
type SessionRecord struct {
	ID      uint64
	Key     string // placement key (client-chosen; "" falls back to the id)
	Home    string // replica currently responsible for the lease
	Expires time.Time
	Plan    Plan
}

// MirrorOp discriminates replication updates.
type MirrorOp uint8

const (
	// MirrorUpsert installs or refreshes a session record.
	MirrorUpsert MirrorOp = iota + 1
	// MirrorDelete removes a session and releases its reservations.
	MirrorDelete
	// MirrorInvalidate propagates a cache write-generation bump: Rec.Key
	// carries the object name and Rec.ID the new generation (no session
	// involved). Peers max-merge it so readers homed anywhere observe a
	// write declared on any replica.
	MirrorInvalidate
)

func (op MirrorOp) String() string {
	switch op {
	case MirrorUpsert:
		return "upsert"
	case MirrorDelete:
		return "delete"
	case MirrorInvalidate:
		return "invalidate"
	default:
		return fmt.Sprintf("mirrorop(%d)", uint8(op))
	}
}

// MirrorUpdate is one replication message between replicas.
type MirrorUpdate struct {
	Op   MirrorOp
	Rec  SessionRecord
	From string // originating replica, informational
}

// Peer is a mediator replica as seen by another replica: the transport
// seam. In-process federations wire replicas directly (Federation); over
// the network, medrpc implements Peer with TMedMirror packets.
type Peer interface {
	Name() string
	Mirror(u MirrorUpdate) error
}

// mirrorMsg is a peer-queue entry: an update to deliver, or a flush
// barrier (done != nil) that WaitMirrors uses to wait for everything
// queued before it.
type mirrorMsg struct {
	u    MirrorUpdate
	done chan struct{}
}

// peerLink is one peer's private replication stream: its own bounded
// queue, drain goroutine, and parked-delete set. Per-peer isolation is
// the point — a dead or partitioned peer times out on its own queue
// only, so live peers keep receiving mirrors promptly. (A shared
// fan-out loop would let one dead peer backlog every update; a session
// close's delete then reaches the live peers later than a lease TTL
// after the last renewal's upsert, and they reap the mirrored session
// as expired before the delete lands.)
type peerLink struct {
	peer  Peer
	queue chan mirrorMsg

	mu      sync.Mutex
	pending map[uint64]MirrorUpdate // deletes awaiting delivery to this peer
}

// park records a MirrorDelete this peer refused (or that overflowed its
// queue), keyed by session id. The link loop retries parked deletes on
// every subsequent activity (including the WaitMirrors flush barrier):
// a dropped upsert is repaired by the next renewal's mirror, but a
// closed session never renews, so a lost delete would leave the peer a
// phantom reservation — forever, when leases are disabled.
func (l *peerLink) park(u MirrorUpdate) {
	l.mu.Lock()
	if l.pending == nil {
		l.pending = make(map[uint64]MirrorUpdate)
	}
	l.pending[u.Rec.ID] = u
	l.mu.Unlock()
}

// takePending drains the parked-delete set for a retry round.
func (l *peerLink) takePending() map[uint64]MirrorUpdate {
	l.mu.Lock()
	pending := l.pending
	l.pending = nil
	l.mu.Unlock()
	return pending
}

// SetPeers installs the replica's peer set and starts one asynchronous
// mirror link per peer. Call once, after New and before traffic; the
// links stop on Close or Kill.
func (m *Mediator) SetPeers(peers []Peer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.peers = append([]Peer(nil), peers...)
	if m.links == nil && len(m.peers) > 0 && !m.killed {
		m.mirStop = make(chan struct{})
		for _, p := range m.peers {
			l := &peerLink{peer: p, queue: make(chan mirrorMsg, 4096)}
			m.links = append(m.links, l)
			m.mirWG.Add(1)
			go m.linkLoop(l, m.mirStop)
		}
	}
}

// linkLoop delivers one peer's queued updates in order until stopped.
// It is channel-driven — no clock reads — so the clockcheck and goexit
// analyzers both hold over it. Before handling each message (flush
// barriers included) it retries the peer's parked deletes.
func (m *Mediator) linkLoop(l *peerLink, stop <-chan struct{}) {
	defer m.mirWG.Done()
	deliver := func(u MirrorUpdate) bool {
		if err := l.peer.Mirror(u); err != nil {
			m.tel.mirrorDrops.Inc()
			return false
		}
		m.tel.mirrorsSent.Inc()
		return true
	}
	for {
		select {
		case <-stop:
			return
		case msg := <-l.queue:
			// Retry parked deletes first. Deletes are idempotent —
			// removing an unknown session is a no-op — so a peer that
			// already applied one tolerates the repeat.
			for _, u := range l.takePending() {
				if !deliver(u) {
					l.park(u)
				}
			}
			if msg.done != nil {
				close(msg.done)
				continue
			}
			if !deliver(msg.u) && msg.u.Op == MirrorDelete {
				l.park(msg.u)
			}
		}
	}
}

// mirrorLocked queues a replication update on every peer link; m.mu
// held. The enqueue never blocks: a full queue drops the update
// (counted), except deletes, which are parked for the link to retry —
// they have no renewal to repair them.
func (m *Mediator) mirrorLocked(op MirrorOp, rec SessionRecord) {
	u := MirrorUpdate{Op: op, Rec: rec, From: m.self}
	for _, l := range m.links {
		select {
		case l.queue <- mirrorMsg{u: u}:
		default:
			m.tel.mirrorDrops.Inc()
			if op == MirrorDelete {
				l.park(u)
			}
		}
	}
}

// WaitMirrors blocks until every update queued before the call has been
// offered to its peer, on every link. Tests use it as a determinism
// barrier.
func (m *Mediator) WaitMirrors() {
	m.mu.Lock()
	links := append([]*peerLink(nil), m.links...)
	stop := m.mirStop
	killed := m.killed
	m.mu.Unlock()
	if len(links) == 0 || stop == nil || killed {
		return
	}
	flushed := make([]chan struct{}, 0, len(links))
	for _, l := range links {
		done := make(chan struct{})
		select {
		case l.queue <- mirrorMsg{done: done}:
			flushed = append(flushed, done)
		case <-stop:
			return
		}
	}
	for _, done := range flushed {
		select {
		case <-done:
		case <-stop:
			return
		}
	}
}

// ApplyMirror applies one replication update from a peer. Upserts are
// last-writer-wins by lease deadline; inserting a previously unseen
// session reserves its plan's capacity so accounting tracks the sessions.
// Applied updates are never re-mirrored (no echo storms).
func (m *Mediator) ApplyMirror(u MirrorUpdate) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killed {
		return ErrReplicaDown
	}
	switch u.Op {
	case MirrorUpsert:
		rec := u.Rec
		if s := m.sessions[rec.ID]; s != nil {
			if !rec.Expires.Before(s.expires) {
				s.expires = rec.Expires
				s.home = rec.Home
			}
		} else {
			m.insertRecordLocked(rec)
		}
		m.tel.mirrorsApplied.Inc()
	case MirrorDelete:
		if s := m.sessions[u.Rec.ID]; s != nil {
			// Out of the map before releasing, same as CloseSession.
			delete(m.sessions, u.Rec.ID)
			m.releaseLocked(s.plan)
		}
		m.tel.mirrorsApplied.Inc()
	case MirrorInvalidate:
		m.applyInvalidateLocked(u.Rec.Key, u.Rec.ID)
		m.tel.mirrorsApplied.Inc()
	default:
		return fmt.Errorf("mediator: unknown mirror op %v", u.Op)
	}
	return nil
}

// insertRecordLocked installs a mirrored or adopted record and reserves
// its capacity; m.mu held. It also advances nextID past any session this
// replica itself issued in a previous life, so a restarted replica never
// re-issues a live id.
func (m *Mediator) insertRecordLocked(rec SessionRecord) *session {
	p := rec.Plan
	p.Agents = append([]int(nil), rec.Plan.Agents...)
	p.Addrs = append([]string(nil), rec.Plan.Addrs...)
	s := &session{plan: &p, expires: rec.Expires, key: rec.Key, home: rec.Home}
	m.sessions[rec.ID] = s
	m.reserveLocked(s.plan)
	if m.idBase != 0 && rec.ID&idBaseMask == m.idBase {
		if seq := rec.ID & idSeqMask; seq > m.nextID {
			m.nextID = seq
		}
	}
	return s
}

// reserveLocked books a plan's capacity, the inverse of releaseLocked;
// m.mu held. Mirrored reservations may transiently exceed an agent's
// capacity during re-homing churn; the loads are accounting, not limits,
// and admission simply sees no free capacity until the churn settles.
func (m *Mediator) reserveLocked(p *Plan) {
	dataAgents := len(p.Agents) - p.ParityShards
	if dataAgents < 1 {
		dataAgents = 1
	}
	perAgent := p.Rate / float64(dataAgents)
	for _, i := range p.Agents {
		if i < 0 || i >= len(m.agentLoad) {
			continue // foreign record from a differently-sized installation
		}
		m.agentLoad[i] += perAgent
		m.netLoad[m.cfg.Agents[i].Net] += perAgent
	}
}

// RenewSession is the federated heartbeat: renew-or-adopt. If the session
// is known it extends the lease; if this replica is not its home, the
// client has re-targeted after a failure, so the replica adopts the
// session (takes over as home). If the session is entirely unknown — its
// home died before the first mirror arrived — the record the client
// carries is adopted wholesale, reservations and all. The returned home
// name tells the client which replica to heartbeat next (a draining home
// answers with the peer it handed the session to, re-targeting the client
// transparently).
func (m *Mediator) RenewSession(rec SessionRecord) (home string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killed {
		return "", ErrReplicaDown
	}
	m.expireLocked()
	s := m.sessions[rec.ID]
	if s == nil {
		if m.draining {
			return "", ErrDraining
		}
		if m.cfg.LeaseTTL > 0 {
			rec.Expires = m.cfg.Now().Add(m.cfg.LeaseTTL)
		}
		rec.Home = m.selfName()
		s = m.insertRecordLocked(rec)
		m.tel.failovers.Inc()
		m.tel.renewals.Inc()
		m.mirrorLocked(MirrorUpsert, m.recordLocked(rec.ID, s))
		return s.home, nil
	}
	if s.home != m.selfName() && !m.draining {
		// The client re-targeted here while the record says another
		// replica is home: that home is gone as far as the client is
		// concerned. Adopt.
		s.home = m.selfName()
		m.tel.failovers.Inc()
	}
	if m.cfg.LeaseTTL > 0 {
		s.expires = m.cfg.Now().Add(m.cfg.LeaseTTL)
	}
	m.tel.renewals.Inc()
	if s.home == m.selfName() || m.draining {
		m.mirrorLocked(MirrorUpsert, m.recordLocked(rec.ID, s))
	}
	return s.home, nil
}

// Drain stops admitting new sessions and synchronously hands every
// session this replica is home for to a live peer (rendezvous-next for
// the session's key), so the replica can shut down with zero leases
// lapsing. Renewals keep succeeding throughout — a heartbeat that lands
// mid-drain is honoured and answered with the session's new home, which
// re-targets the client. Returns the number of sessions handed off.
func (m *Mediator) Drain() (int, error) {
	m.mu.Lock()
	if m.killed {
		m.mu.Unlock()
		return 0, ErrReplicaDown
	}
	m.expireLocked()
	m.draining = true
	self := m.selfName()
	var recs []SessionRecord
	for id, s := range m.sessions {
		if s.home == self {
			recs = append(recs, m.recordLocked(id, s))
		}
	}
	peers := append([]Peer(nil), m.peers...)
	m.mu.Unlock()

	if len(recs) == 0 {
		return 0, nil
	}
	if len(peers) == 0 {
		return 0, fmt.Errorf("mediator: drain: %d live sessions but no peers to hand them to", len(recs))
	}
	peerByName := make(map[string]Peer, len(peers))
	names := make([]string, 0, len(peers))
	for _, p := range peers {
		peerByName[p.Name()] = p
		names = append(names, p.Name())
	}

	handed, want := 0, len(recs)
	var firstErr error
	for _, rec := range recs {
		key := rec.Key
		if key == "" {
			key = fmt.Sprintf("%d", rec.ID)
		}
		sent, gone := false, false
		for _, name := range PlaceOrder(key, names) {
			// Re-snapshot under the lock immediately before each handoff:
			// a renewal that landed since the drain snapshot carries a newer
			// deadline with Home=self, and a handoff built from the stale
			// snapshot would lose last-writer-wins at the peer, leaving the
			// draining replica recorded as home.
			m.mu.Lock()
			s := m.sessions[rec.ID]
			if s == nil {
				gone = true // closed or expired mid-drain; nothing to hand off
				m.mu.Unlock()
				break
			}
			rec = m.recordLocked(rec.ID, s)
			m.mu.Unlock()
			rec.Home = name
			if err := peerByName[name].Mirror(MirrorUpdate{Op: MirrorUpsert, Rec: rec, From: self}); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("mediator: drain: handoff of session %d to %s: %w", rec.ID, name, err)
				}
				continue
			}
			m.mu.Lock()
			if s := m.sessions[rec.ID]; s != nil {
				s.home = name
			}
			m.lastHandoff = m.cfg.Now()
			m.mirrorLocked(MirrorUpsert, rec) // tell the other peers about the new home
			m.mu.Unlock()
			m.tel.handoffs.Inc()
			handed++
			sent = true
			break
		}
		if gone {
			want--
			continue
		}
		if !sent && firstErr == nil {
			firstErr = fmt.Errorf("mediator: drain: no peer accepted session %d", rec.ID)
		}
	}
	if handed < want {
		return handed, fmt.Errorf("mediator: drain: handed off %d of %d sessions: %w", handed, want, firstErr)
	}
	return handed, nil
}

// Kill simulates a replica crash for tests and drills: every subsequent
// operation returns ErrReplicaDown and the janitor and mirror loops stop.
// State is frozen, not released — exactly what a crashed process's memory
// does.
func (m *Mediator) Kill() {
	m.mu.Lock()
	m.killed = true
	m.mu.Unlock()
	m.stopLoops()
}

// Snapshot returns every live session as a record, for peer
// reconciliation after a replica restart.
func (m *Mediator) Snapshot() ([]SessionRecord, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killed {
		return nil, ErrReplicaDown
	}
	m.expireLocked()
	out := make([]SessionRecord, 0, len(m.sessions))
	for id, s := range m.sessions {
		out = append(out, m.recordLocked(id, s))
	}
	return out, nil
}

// SyncFrom installs a snapshot of session records — the restart
// reconciliation path. Records already known locally follow the usual
// last-writer-wins rule.
func (m *Mediator) SyncFrom(recs []SessionRecord) error {
	for _, rec := range recs {
		if err := m.ApplyMirror(MirrorUpdate{Op: MirrorUpsert, Rec: rec}); err != nil {
			return err
		}
	}
	return nil
}

// ReplicaStatus is one replica's operator-facing state.
type ReplicaStatus struct {
	Name          string
	Role          string    // "active" or "draining"
	Sessions      int       // sessions known (home + mirrored)
	HomeSessions  int       // sessions this replica is home for
	AgentReserved []float64 // per-agent reserved fraction of deliverable rate
	NetReserved   []float64 // per-net reserved fraction of capacity
	LastHandoff   time.Time // zero if this replica never handed a session off
	Failovers     int64     // sessions adopted from a failed peer
	Handoffs      int64     // sessions handed to peers by Drain
	Expirations   int64     // leases this replica reaped
}

// Status reports the replica's role, session counts, reservation ratios
// and failover/handoff counters.
func (m *Mediator) Status() (ReplicaStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killed {
		return ReplicaStatus{}, ErrReplicaDown
	}
	m.expireLocked()
	st := ReplicaStatus{
		Name:        m.selfName(),
		Role:        "active",
		Sessions:    len(m.sessions),
		LastHandoff: m.lastHandoff,
		Failovers:   m.tel.failovers.Load(),
		Handoffs:    m.tel.handoffs.Load(),
		Expirations: m.tel.expirations.Load(),
	}
	if m.draining {
		st.Role = "draining"
	}
	for _, s := range m.sessions {
		if s.home == m.selfName() {
			st.HomeSessions++
		}
	}
	st.AgentReserved = make([]float64, len(m.agentLoad))
	for i, l := range m.agentLoad {
		if c := m.cfg.Agents[i].Rate; c > 0 {
			st.AgentReserved[i] = l / c
		}
	}
	st.NetReserved = make([]float64, len(m.netLoad))
	for j, l := range m.netLoad {
		if c := m.cfg.Nets[j].Capacity; c > 0 {
			st.NetReserved[j] = l / c
		}
	}
	return st, nil
}

// Name returns the replica's name ("mediator" when unfederated), so a
// *Mediator satisfies the client-side endpoint interface directly.
func (m *Mediator) Name() string { return m.selfName() }

// recordLocked snapshots one session as a replication record; m.mu held.
func (m *Mediator) recordLocked(id uint64, s *session) SessionRecord {
	return SessionRecord{ID: id, Key: s.key, Home: s.home, Expires: s.expires, Plan: *s.plan}
}

func (m *Mediator) selfName() string {
	if m.self == "" {
		return "mediator"
	}
	return m.self
}

// Federation wires N in-process replicas of one installation into a tier:
// the test and simulation harness for federated operation (deployments
// run one replica per swiftd and federate over medrpc instead). Peer
// links resolve through the Federation at call time, so a replica
// restarted with Restart is immediately reachable by its peers.
type Federation struct {
	mu    sync.Mutex
	names []string
	meds  []*Mediator
	mk    func(name string) (*Mediator, error)
}

// NewFederation builds one replica per name over the shared installation
// described by base (base.Self is overwritten per replica) and links them
// as peers.
func NewFederation(names []string, base Config) (*Federation, error) {
	if len(names) == 0 {
		return nil, errors.New("mediator: federation needs at least one replica")
	}
	f := &Federation{names: append([]string(nil), names...)}
	f.mk = func(name string) (*Mediator, error) {
		c := base
		c.Self = name
		return New(c)
	}
	for _, name := range f.names {
		med, err := f.mk(name)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("mediator: federation replica %q: %w", name, err)
		}
		f.meds = append(f.meds, med)
	}
	for i, med := range f.meds {
		var peers []Peer
		for j := range f.meds {
			if j != i {
				peers = append(peers, fedPeer{f: f, idx: j})
			}
		}
		med.SetPeers(peers)
	}
	return f, nil
}

// fedPeer routes Peer calls through the federation so they always reach
// the replica currently installed under that index.
type fedPeer struct {
	f   *Federation
	idx int
}

func (p fedPeer) Name() string { return p.f.names[p.idx] }

func (p fedPeer) Mirror(u MirrorUpdate) error {
	return p.f.Mediator(p.idx).ApplyMirror(u)
}

// Names returns the replica names in index order.
func (f *Federation) Names() []string { return append([]string(nil), f.names...) }

// Mediator returns replica i (killed replicas answer ErrReplicaDown on
// every operation until restarted).
func (f *Federation) Mediator(i int) *Mediator {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.meds[i]
}

// Mediators snapshots all replicas in index order.
func (f *Federation) Mediators() []*Mediator {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Mediator(nil), f.meds...)
}

// Kill crashes replica i in place.
func (f *Federation) Kill(i int) {
	f.Mediator(i).Kill()
}

// Drain drains replica i, handing its home sessions to live peers.
func (f *Federation) Drain(i int) (int, error) {
	return f.Mediator(i).Drain()
}

// Restart replaces a killed replica with a fresh one and reconciles its
// session state from the first live peer's snapshot. Peer links of the
// other replicas resolve through the federation, so they pick up the new
// instance automatically.
func (f *Federation) Restart(i int) error {
	fresh, err := f.mk(f.names[i])
	if err != nil {
		return fmt.Errorf("mediator: restart %q: %w", f.names[i], err)
	}
	var peers []Peer
	for j := range f.names {
		if j != i {
			peers = append(peers, fedPeer{f: f, idx: j})
		}
	}
	fresh.SetPeers(peers)
	f.mu.Lock()
	old := f.meds[i]
	f.meds[i] = fresh
	meds := append([]*Mediator(nil), f.meds...)
	f.mu.Unlock()
	_ = old.Close()
	for j, med := range meds {
		if j == i {
			continue
		}
		recs, err := med.Snapshot()
		if err != nil {
			continue // dead peer; try the next
		}
		if err := fresh.SyncFrom(recs); err != nil {
			return fmt.Errorf("mediator: restart %q: sync from %q: %w", f.names[i], f.names[j], err)
		}
		// Object write generations reconcile alongside the sessions: a
		// restarted replica that forgot a generation would tell a cached
		// reader its stale image is fresh.
		if gens, err := med.GenSnapshot(); err == nil {
			_ = fresh.SyncGens(gens)
		}
		return nil
	}
	return nil // no live peer to reconcile from; start empty
}

// WaitMirrors flushes every live replica's mirror outbox — a test
// barrier making asynchronous replication deterministic.
func (f *Federation) WaitMirrors() {
	for _, med := range f.Mediators() {
		med.WaitMirrors()
	}
}

// Close shuts every replica down.
func (f *Federation) Close() error {
	for _, med := range f.Mediators() {
		if med != nil {
			_ = med.Close()
		}
	}
	return nil
}
