package mediator

import (
	"strings"
	"testing"

	"swift/internal/obs"
)

// TestMediatorTelemetry: admissions, rejections and reservation
// utilization must be visible through the registry.
func TestMediatorTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	m, err := New(Config{
		Agents: []AgentInfo{
			{Addr: "a:1", Rate: 1000, Net: 0},
			{Addr: "b:1", Rate: 1000, Net: 0},
		},
		Nets: []NetInfo{{Name: "ether0", Capacity: 1500}},
		Obs:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	p, err := m.OpenSession(Requirements{Rate: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenSession(Requirements{Rate: 1e9}); err == nil {
		t.Fatal("expected rejection")
	}
	if m.tel.admits.Load() != 1 || m.tel.rejects.Load() != 1 {
		t.Fatalf("admits=%d rejects=%d, want 1/1",
			m.tel.admits.Load(), m.tel.rejects.Load())
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"swift_mediator_admits_total 1",
		"swift_mediator_rejects_total 1",
		"swift_mediator_sessions 1",
		"swift_mediator_agent_reserved_ratio",
		`net="ether0"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q", want)
		}
	}

	if err := m.CloseSession(p.SessionID); err != nil {
		t.Fatal(err)
	}
	if m.tel.closes.Load() != 1 {
		t.Fatalf("closes = %d, want 1", m.tel.closes.Load())
	}
	// Reservations released: every agent ratio back to zero.
	for i := range m.cfg.Agents {
		if l := m.AgentLoad(i); l != 0 {
			t.Errorf("agent %d load = %v after close", i, l)
		}
	}
}
