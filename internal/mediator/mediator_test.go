package mediator

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// testInstall: 6 agents at 400 KB/s each, two 1.12 MB/s Ethernets,
// 3 agents per segment — the paper's two-Ethernet setup.
func testInstall() Config {
	agents := make([]AgentInfo, 6)
	for i := range agents {
		agents[i] = AgentInfo{Addr: "agent" + string(rune('0'+i)) + ":7070", Rate: 400e3, Net: i / 3}
	}
	return Config{
		Agents: agents,
		Nets:   []NetInfo{{"lab", 1.12e6}, {"dept", 1.12e6}},
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Agents: []AgentInfo{{Rate: 1}}, Nets: nil}); err == nil {
		t.Fatal("no nets accepted")
	}
	if _, err := New(Config{Agents: []AgentInfo{{Rate: 0, Net: 0}}, Nets: []NetInfo{{"n", 1}}}); err == nil {
		t.Fatal("zero-rate agent accepted")
	}
	if _, err := New(Config{Agents: []AgentInfo{{Rate: 1, Net: 5}}, Nets: []NetInfo{{"n", 1}}}); err == nil {
		t.Fatal("unknown net accepted")
	}
}

func TestLowRateUsesFewAgentsLargeUnit(t *testing.T) {
	m, _ := New(testInstall())
	p, err := m.OpenSession(Requirements{Rate: 100e3})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(p.Agents) != 1 {
		t.Fatalf("agents = %d, want 1", len(p.Agents))
	}
	if p.Unit != 256*1024 {
		t.Fatalf("unit = %d, want 256K for a one-agent session", p.Unit)
	}
}

func TestHighRateUsesManyAgentsSmallUnit(t *testing.T) {
	m, _ := New(testInstall())
	p, err := m.OpenSession(Requirements{Rate: 2e6})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(p.Agents) < 5 {
		t.Fatalf("agents = %d, want >= 5 for 2 MB/s over 400 KB/s agents", len(p.Agents))
	}
	if p.Unit >= 256*1024 {
		t.Fatalf("unit = %d, want smaller for high-parallelism session", p.Unit)
	}
	// The plan must span both networks: one Ethernet cannot carry 2 MB/s.
	nets := map[int]bool{}
	cfg := testInstall()
	for _, a := range p.Agents {
		nets[cfg.Agents[a].Net] = true
	}
	if len(nets) != 2 {
		t.Fatal("2 MB/s session did not span both segments")
	}
}

func TestRejectsImpossibleRate(t *testing.T) {
	m, _ := New(testInstall())
	if _, err := m.OpenSession(Requirements{Rate: 10e6}); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("err = %v, want ErrUnsatisfiable", err)
	}
}

func TestReservationsAccumulateAndRelease(t *testing.T) {
	m, _ := New(testInstall())
	var ids []uint64
	// Six 350 KB/s sessions fit (2.1 MB/s total against 2.24 MB/s of
	// network and 2.4 MB/s of agents) and leave only 50 KB/s per agent.
	for i := 0; i < 6; i++ {
		p, err := m.OpenSession(Requirements{Rate: 350e3})
		if err != nil {
			t.Fatalf("session %d rejected: %v", i, err)
		}
		ids = append(ids, p.SessionID)
	}
	if _, err := m.OpenSession(Requirements{Rate: 350e3}); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("7th session: err = %v, want ErrUnsatisfiable", err)
	}
	// Release one; admission works again.
	if err := m.CloseSession(ids[0]); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := m.OpenSession(Requirements{Rate: 350e3}); err != nil {
		t.Fatalf("after release: %v", err)
	}
	if m.Sessions() != 6 {
		t.Fatalf("sessions = %d", m.Sessions())
	}
}

func TestNetworkCapacityLimits(t *testing.T) {
	// One segment, three fast agents: the network, not the agents, must
	// gate admission.
	cfg := Config{
		Agents: []AgentInfo{
			{Addr: "a:1", Rate: 1e6, Net: 0},
			{Addr: "b:1", Rate: 1e6, Net: 0},
			{Addr: "c:1", Rate: 1e6, Net: 0},
		},
		Nets: []NetInfo{{"ether", 1.12e6}},
	}
	m, _ := New(cfg)
	if _, err := m.OpenSession(Requirements{Rate: 2e6}); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("err = %v, want ErrUnsatisfiable (network bound)", err)
	}
	if _, err := m.OpenSession(Requirements{Rate: 1e6}); err != nil {
		t.Fatalf("1 MB/s should fit: %v", err)
	}
}

func TestRedundancyAddsAgent(t *testing.T) {
	m, _ := New(testInstall())
	p, err := m.OpenSession(Requirements{Rate: 300e3, Redundancy: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if !p.Parity {
		t.Fatal("plan not marked parity")
	}
	if len(p.Agents) < 3 {
		t.Fatalf("agents = %d, want >= 3 with redundancy", len(p.Agents))
	}
}

func TestBestEffortSession(t *testing.T) {
	m, _ := New(testInstall())
	p, err := m.OpenSession(Requirements{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(p.Agents) != 1 || p.Rate != 0 {
		t.Fatalf("best effort plan = %+v", p)
	}
}

func TestCloseUnknownSession(t *testing.T) {
	// Close is idempotent: unknown (never opened, already closed, or
	// lease-reaped) sessions are a no-op, not an error.
	m, _ := New(testInstall())
	if err := m.CloseSession(99); err != nil {
		t.Fatalf("err = %v, want nil (idempotent close)", err)
	}
}

func TestCloseSessionIdempotent(t *testing.T) {
	m, _ := New(testInstall())
	p, err := m.OpenSession(Requirements{Rate: 350e3})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := m.CloseSession(p.SessionID); err != nil {
		t.Fatalf("first close: %v", err)
	}
	// Second close must not error and must not double-release capacity.
	if err := m.CloseSession(p.SessionID); err != nil {
		t.Fatalf("second close: %v", err)
	}
	for i := 0; i < 6; i++ {
		if m.AgentLoad(i) < 0 || m.AgentLoad(i) != 0 {
			t.Fatalf("agent %d load %f after double close", i, m.AgentLoad(i))
		}
	}
	if m.NetLoad(0) != 0 || m.NetLoad(1) != 0 {
		t.Fatal("net load wrong after double close")
	}
}

// fakeClock is a manually advanced lease clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func leaseInstall(ttl time.Duration, clk *fakeClock) Config {
	cfg := testInstall()
	cfg.LeaseTTL = ttl
	cfg.Now = clk.Now
	return cfg
}

func TestLeaseExpiryReleasesReservations(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m, err := New(leaseInstall(time.Minute, clk))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	defer m.Close()
	// Saturate the installation, then let every lease lapse.
	var ids []uint64
	for i := 0; i < 6; i++ {
		p, err := m.OpenSession(Requirements{Rate: 350e3})
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		ids = append(ids, p.SessionID)
	}
	if _, err := m.OpenSession(Requirements{Rate: 350e3}); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("7th session: err = %v, want ErrUnsatisfiable", err)
	}
	clk.Advance(2 * time.Minute)
	if n := m.ExpireNow(); n != 6 {
		t.Fatalf("expired %d sessions, want 6", n)
	}
	if m.Sessions() != 0 {
		t.Fatalf("sessions = %d after expiry", m.Sessions())
	}
	// 100% of the reservations must be back.
	for i := 0; i < 6; i++ {
		if m.AgentLoad(i) != 0 {
			t.Fatalf("agent %d load %f after expiry", i, m.AgentLoad(i))
		}
	}
	if m.NetLoad(0) != 0 || m.NetLoad(1) != 0 {
		t.Fatal("net load not released by expiry")
	}
	// Capacity is admittable again; the dead clients' closes are no-ops.
	if _, err := m.OpenSession(Requirements{Rate: 350e3}); err != nil {
		t.Fatalf("post-expiry admission: %v", err)
	}
	for _, id := range ids {
		if err := m.CloseSession(id); err != nil {
			t.Fatalf("close of expired session %d: %v", id, err)
		}
	}
}

func TestRenewKeepsLeaseAlive(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m, err := New(leaseInstall(time.Minute, clk))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	defer m.Close()
	p, err := m.OpenSession(Requirements{Rate: 100e3})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Heartbeat every 30s for five minutes: the session must survive.
	for i := 0; i < 10; i++ {
		clk.Advance(30 * time.Second)
		if err := m.Renew(p.SessionID); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	if m.Sessions() != 1 {
		t.Fatalf("sessions = %d, want 1", m.Sessions())
	}
	// Stop the heartbeat; the lease lapses and renewal is refused.
	clk.Advance(2 * time.Minute)
	if err := m.Renew(p.SessionID); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("renew after expiry: err = %v, want ErrUnknownSession", err)
	}
	if m.Sessions() != 0 {
		t.Fatalf("sessions = %d after lapse", m.Sessions())
	}
}

func TestLazyExpiryOnOpen(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m, err := New(leaseInstall(time.Minute, clk))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	defer m.Close()
	// Saturate, lapse, then admit without an explicit sweep: OpenSession
	// must reap lazily.
	for i := 0; i < 6; i++ {
		if _, err := m.OpenSession(Requirements{Rate: 350e3}); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	clk.Advance(2 * time.Minute)
	if _, err := m.OpenSession(Requirements{Rate: 350e3}); err != nil {
		t.Fatalf("admission after lapse: %v", err)
	}
}

func TestSessionListShowsLease(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m, err := New(leaseInstall(time.Minute, clk))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	defer m.Close()
	p, _ := m.OpenSession(Requirements{Rate: 100e3})
	ss := m.SessionList()
	if len(ss) != 1 || ss[0].ID != p.SessionID {
		t.Fatalf("session list = %+v", ss)
	}
	want := clk.Now().Add(time.Minute)
	if !ss[0].Expires.Equal(want) {
		t.Fatalf("expires = %v, want %v", ss[0].Expires, want)
	}
}

func TestPlanDeterministicOrder(t *testing.T) {
	m, _ := New(testInstall())
	p, _ := m.OpenSession(Requirements{Rate: 1.1e6})
	for i := 1; i < len(p.Agents); i++ {
		if p.Agents[i-1] >= p.Agents[i] {
			t.Fatal("agent order not ascending")
		}
	}
	if len(p.Addrs) != len(p.Agents) {
		t.Fatal("addrs/agents length mismatch")
	}
}

func TestLoadAccounting(t *testing.T) {
	m, _ := New(testInstall())
	p, _ := m.OpenSession(Requirements{Rate: 400e3})
	var total float64
	for i := 0; i < 6; i++ {
		total += m.AgentLoad(i)
	}
	if total < 399e3 || total > 401e3 {
		t.Fatalf("total agent load = %.0f, want 400e3", total)
	}
	m.CloseSession(p.SessionID)
	for i := 0; i < 6; i++ {
		if m.AgentLoad(i) != 0 {
			t.Fatalf("agent %d load %f after release", i, m.AgentLoad(i))
		}
	}
	if m.NetLoad(0) != 0 || m.NetLoad(1) != 0 {
		t.Fatal("net load not released")
	}
}

func TestParityShardsReserveExtraAgents(t *testing.T) {
	m, _ := New(testInstall())
	// 600 KB/s over 400 KB/s agents needs 2 data agents; k=2 adds two
	// parity agents, so the plan must hold at least 4.
	p, err := m.OpenSession(Requirements{Rate: 600e3, ParityShards: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if !p.Parity || p.ParityShards != 2 {
		t.Fatalf("plan parity=%v shards=%d, want true/2", p.Parity, p.ParityShards)
	}
	if len(p.Agents) < 4 {
		t.Fatalf("plan has %d agents, want >= 4 (2 data + 2 parity)", len(p.Agents))
	}
	// Every selected agent carries rate/(n-k): the reservation must
	// account for parity traffic on all n agents.
	data := len(p.Agents) - p.ParityShards
	perAgent := p.Rate / float64(data)
	for _, i := range p.Agents {
		if got := m.AgentLoad(i); got < perAgent*0.99 {
			t.Fatalf("agent %d load %.0f, want ~%.0f", i, got, perAgent)
		}
	}
	// Closing releases the m+k reservation exactly.
	if err := m.CloseSession(p.SessionID); err != nil {
		t.Fatalf("close: %v", err)
	}
	for _, i := range p.Agents {
		if got := m.AgentLoad(i); got != 0 {
			t.Fatalf("agent %d load %.0f after close, want 0", i, got)
		}
	}
}

func TestRejectsUnsatisfiableRedundancy(t *testing.T) {
	m, _ := New(testInstall())
	// 6 agents cannot host a k=5 scheme (needs >= 7).
	if _, err := m.OpenSession(Requirements{ParityShards: 5}); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("k=5 over 6 agents = %v, want ErrUnsatisfiable", err)
	}
	// Negative shard counts are nonsense, not best effort.
	if _, err := m.OpenSession(Requirements{ParityShards: -1}); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("k=-1 = %v, want ErrUnsatisfiable", err)
	}
	// A rate needing all 6 agents for data leaves no room for parity.
	if _, err := m.OpenSession(Requirements{Rate: 2e6, ParityShards: 2}); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("rate+k over capacity = %v, want ErrUnsatisfiable", err)
	}
}

func TestParityShardsImplyRedundancy(t *testing.T) {
	m, _ := New(testInstall())
	p, err := m.OpenSession(Requirements{ParityShards: 1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if !p.Parity || p.ParityShards != 1 {
		t.Fatalf("plan parity=%v shards=%d, want true/1", p.Parity, p.ParityShards)
	}
	// Legacy Redundancy without an explicit count is one parity shard.
	q, err := m.OpenSession(Requirements{Redundancy: true})
	if err != nil {
		t.Fatalf("open legacy: %v", err)
	}
	if q.ParityShards != 1 {
		t.Fatalf("legacy redundancy shards = %d, want 1", q.ParityShards)
	}
}

// TestAdmissionWatermarkSheds pushes a reserved ratio past the watermark
// and checks that new sessions are shed with a typed, paceable rejection
// — and re-admitted once the load drains.
func TestAdmissionWatermarkSheds(t *testing.T) {
	cfg := testInstall()
	cfg.AdmitWatermark = 0.5
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	// 300 KB/s lands on one 400 KB/s agent: its reserved ratio (0.75) now
	// exceeds the watermark, but the admission itself sees an empty table.
	rec, err := m.Admit(Requirements{Rate: 300e3})
	if err != nil {
		t.Fatalf("admit under watermark: %v", err)
	}
	_, err = m.Admit(Requirements{Rate: 100e3})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("admit over watermark = %v, want ErrOverloaded", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("rejection %v does not carry a retry-after hint", err)
	}
	if oe.RetryAfter < 50*time.Millisecond {
		t.Fatalf("retry-after = %v, want >= 50ms floor", oe.RetryAfter)
	}
	if got := m.tel.overloadRejects.Load(); got != 1 {
		t.Fatalf("overload rejects counter = %d, want 1", got)
	}
	// Draining the load reopens admission.
	if err := m.CloseSession(rec.ID); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := m.Admit(Requirements{Rate: 100e3}); err != nil {
		t.Fatalf("admit after drain: %v", err)
	}
}

// TestAdmissionWatermarkDisabled checks the zero value keeps the
// pre-overload-control behavior: everything the nets can carry is
// admissible (5 × 400 KB/s fills the two 1.12 MB/s segments).
func TestAdmissionWatermarkDisabled(t *testing.T) {
	m, _ := New(testInstall())
	for i := 0; i < 5; i++ {
		if _, err := m.Admit(Requirements{Rate: 400e3}); err != nil {
			t.Fatalf("admit %d with no watermark: %v", i, err)
		}
	}
}
