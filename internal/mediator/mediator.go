// Package mediator implements the Swift storage mediator: the component
// that, per §2 of the paper, "reserves resources from all the necessary
// storage agents and from the communication subsystem in a session-
// oriented manner" and then hands the distribution agent a transfer plan.
//
// The mediator owns a capacity model of the installation — each storage
// agent's deliverable data-rate and each interconnect's capacity — and
// performs admission control: "resource preallocation implies that storage
// mediators will reject any request with requirements it is unable to
// satisfy." It also chooses the striping unit from the client's data-rate
// requirement: "if the required transfer rate is low, then the striping
// unit can be large and Swift can spread the data over only a few storage
// agents. If the required data-rate is high, then the striping unit will
// be chosen small enough to exploit all the parallelism needed."
package mediator

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"swift/internal/obs"
)

// Errors.
var (
	// ErrUnsatisfiable is returned when the installation cannot meet a
	// request's requirements; the mediator rejects rather than degrades.
	ErrUnsatisfiable = errors.New("mediator: requirements cannot be satisfied")
	// ErrUnknownSession is returned for operations on absent sessions
	// (never opened, already closed, or lease-expired).
	ErrUnknownSession = errors.New("mediator: unknown session")
	// ErrOverloaded is returned when admission control sheds a new session
	// because reserved ratios already exceed the configured watermark.
	// Unlike ErrUnsatisfiable it is transient: sessions close and leases
	// expire, so the client should pace and retry (see OverloadedError's
	// RetryAfter hint) rather than fail over to a peer replica.
	ErrOverloaded = errors.New("mediator: overloaded")
)

// OverloadedError carries the retry-after pacing hint with an
// ErrOverloaded rejection. It unwraps to ErrOverloaded, and its text
// embeds the hint in a parseable "retry after <duration>" suffix so the
// sentinel survives a trip through the medrpc wire as a remote error.
type OverloadedError struct {
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", ErrOverloaded, e.RetryAfter)
}

func (e *OverloadedError) Unwrap() error { return ErrOverloaded }

// AgentInfo describes one storage agent's capacity.
type AgentInfo struct {
	Addr string  // well-known control address
	Rate float64 // sustainable data-rate in bytes/second
	Net  int     // index into Config.Nets of the segment it lives on
}

// NetInfo describes one interconnect.
type NetInfo struct {
	Name     string
	Capacity float64 // effective payload capacity in bytes/second
}

// Config is the installation the mediator administers.
type Config struct {
	Agents []AgentInfo
	Nets   []NetInfo
	// Self is this replica's name within a federated mediator tier.
	// Empty means an unfederated, single mediator (the pre-federation
	// behaviour). Federated replicas namespace their session ids with a
	// hash of Self so ids admitted on different replicas never collide,
	// and label their metrics with {replica="Self"}.
	Self string
	// MinUnit and MaxUnit bound the striping unit (defaults 4 KiB and
	// 256 KiB). Units are powers of two.
	MinUnit, MaxUnit int64
	// LeaseTTL bounds how long an admitted session may hold its
	// reservations without a Renew heartbeat from the distribution
	// agent. An expired lease releases the session's agent and network
	// reservations automatically — a crashed client cannot pin capacity
	// forever. Zero disables leases (sessions live until closed).
	LeaseTTL time.Duration
	// AdmitWatermark, when > 0, sheds new sessions once any agent's or
	// interconnect's reserved ratio reaches this fraction of its capacity
	// (e.g. 0.9): the mediator answers ErrOverloaded with a retry-after
	// hint instead of reserving the last slack, keeping headroom for
	// renewals and degraded-mode traffic. Zero disables the watermark
	// (admission rejects only on hard infeasibility, the pre-overload
	// behaviour).
	AdmitWatermark float64
	// Now is the lease clock (default time.Now). Tests inject a fake.
	Now func() time.Time
	// Obs, when non-nil, is the metric registry the mediator registers
	// its admission counters and reservation-utilization gauges in. Nil
	// gets a private registry; telemetry is always recorded.
	Obs *obs.Registry
}

// Requirements is what a client asks for when opening a session.
type Requirements struct {
	// Rate is the required data-rate in bytes/second. Zero requests
	// best effort and is admitted on a single agent with a large unit.
	Rate float64
	// Redundancy asks for computed-copy (parity) protection, which
	// costs ParityShards extra agents per stripe row.
	Redundancy bool
	// ParityShards is the number of parity units per stripe row (the k
	// of an m+k erasure scheme). Zero with Redundancy means one (the
	// single-XOR computed copy of the paper); values above one buy
	// tolerance of that many simultaneous agent failures at the cost of
	// as many extra agents. Setting it implies Redundancy.
	ParityShards int
	// Key is the client's placement key within a federated tier: it
	// decides which replica is the session's home and the failover order
	// (see PlaceOrder). Empty is allowed; drains then place by session id.
	Key string
}

// Plan is a transfer plan: everything the distribution agent needs to
// execute the session without further mediator involvement.
type Plan struct {
	SessionID    uint64
	Agents       []int    // selected agent indices, striping order
	Addrs        []string // their control addresses
	Unit         int64    // striping unit in bytes
	Parity       bool
	ParityShards int     // parity units per stripe row (0 without parity)
	Rate         float64 // granted (reserved) data-rate, bytes/second
}

// session is one admitted plan plus its lease and federation state.
type session struct {
	plan    *Plan
	expires time.Time // zero when leases are disabled
	key     string    // placement key (federation)
	home    string    // replica responsible for the lease
	cached  int       // objects the client declared cached in its last CacheSync
}

// Session-id namespacing for federated replicas: the top 16 bits hash the
// replica name, the low 48 carry the per-replica sequence.
const (
	idBaseMask = uint64(0xFFFF) << 48
	idSeqMask  = ^idBaseMask
)

// Mediator tracks reservations against the installation's capacities.
type Mediator struct {
	cfg    Config
	self   string // cfg.Self
	idBase uint64 // session-id namespace, 0 when unfederated

	tel *telemetry

	mu          sync.Mutex
	agentLoad   []float64           // guarded by mu
	netLoad     []float64           // guarded by mu
	sessions    map[uint64]*session // guarded by mu
	objGen      map[string]uint64   // per-object cache write generation; guarded by mu
	nextID      uint64              // guarded by mu
	peers       []Peer
	links       []*peerLink // one replication queue+goroutine per peer
	draining    bool        // guarded by mu
	killed      bool        // guarded by mu
	lastHandoff time.Time   // guarded by mu

	janStop chan struct{}
	janDone chan struct{}
	mirStop chan struct{}
	mirWG   sync.WaitGroup
}

// New validates the installation description and returns a mediator.
func New(cfg Config) (*Mediator, error) {
	if len(cfg.Agents) == 0 {
		return nil, errors.New("mediator: no agents")
	}
	if len(cfg.Nets) == 0 {
		return nil, errors.New("mediator: no networks")
	}
	for i, a := range cfg.Agents {
		if a.Rate <= 0 {
			return nil, fmt.Errorf("mediator: agent %d has no capacity", i)
		}
		if a.Net < 0 || a.Net >= len(cfg.Nets) {
			return nil, fmt.Errorf("mediator: agent %d on unknown net %d", i, a.Net)
		}
	}
	if cfg.MinUnit == 0 {
		cfg.MinUnit = 4 * 1024
	}
	if cfg.MaxUnit == 0 {
		cfg.MaxUnit = 256 * 1024
	}
	if cfg.MinUnit > cfg.MaxUnit || cfg.MinUnit <= 0 {
		return nil, fmt.Errorf("mediator: bad unit bounds [%d,%d]", cfg.MinUnit, cfg.MaxUnit)
	}
	if cfg.LeaseTTL < 0 {
		return nil, fmt.Errorf("mediator: negative lease TTL %v", cfg.LeaseTTL)
	}
	if cfg.Now == nil {
		//lint:allow clockcheck Config.Now is the lease clock's injection seam; this is its production default
		cfg.Now = time.Now
	}
	m := &Mediator{
		cfg:       cfg,
		self:      cfg.Self,
		agentLoad: make([]float64, len(cfg.Agents)),
		netLoad:   make([]float64, len(cfg.Nets)),
		sessions:  make(map[uint64]*session),
	}
	if cfg.Self != "" {
		m.idBase = (placeScore("", cfg.Self) & 0xFFFF) << 48
		if m.idBase == 0 {
			m.idBase = 1 << 48 // keep federated ids out of the unfederated space
		}
	}
	m.initTelemetry(cfg.Obs)
	if cfg.LeaseTTL > 0 {
		m.startJanitor()
	}
	return m, nil
}

// startJanitor launches the background lease reaper. Expiry is also
// applied lazily on every mediator operation, so the janitor only bounds
// how long a dead client's reservations linger on an otherwise idle
// mediator. Stopped by Close.
func (m *Mediator) startJanitor() {
	interval := m.cfg.LeaseTTL / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	m.janStop, m.janDone = stop, done
	go func() {
		defer close(done)
		//lint:allow clockcheck the janitor ticker only bounds reap latency; lease expiry itself is judged with cfg.Now
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				m.ExpireNow()
			}
		}
	}()
}

// Close stops the lease janitor and the mirror fan-out loop, if running.
// The mediator's bookkeeping remains usable afterwards (expiry still
// applies lazily).
func (m *Mediator) Close() error {
	m.stopLoops()
	return nil
}

// stopLoops shuts the janitor and the per-peer mirror links down,
// idempotently.
func (m *Mediator) stopLoops() {
	m.mu.Lock()
	janStop, janDone := m.janStop, m.janDone
	m.janStop = nil
	mirStop := m.mirStop
	m.mirStop = nil
	m.mu.Unlock()
	if janStop != nil {
		close(janStop)
		<-janDone
	}
	if mirStop != nil {
		close(mirStop)
		m.mirWG.Wait()
	}
}

// ExpireNow sweeps expired leases, releasing their reservations, and
// returns how many sessions it reaped.
func (m *Mediator) ExpireNow() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.expireLocked()
}

// expireLocked releases every session whose lease has lapsed; m.mu held.
// A lease is valid through its deadline instant: a renew arriving at
// exactly expires must win over the reaper, so reaping requires
// now.After(expires), strictly. Each reaped session is taken out of the
// map before its reservations are released, so no concurrent path can
// observe (and double-release) a half-expired session.
func (m *Mediator) expireLocked() int {
	if m.cfg.LeaseTTL <= 0 || m.killed {
		return 0
	}
	now := m.cfg.Now()
	n := 0
	for id, s := range m.sessions {
		if !now.After(s.expires) {
			continue
		}
		delete(m.sessions, id)
		m.releaseLocked(s.plan)
		m.tel.expirations.Inc()
		n++
	}
	return n
}

// OpenSession admits or rejects a request, reserving agent and network
// capacity and returning the transfer plan.
func (m *Mediator) OpenSession(req Requirements) (*Plan, error) {
	rec, err := m.Admit(req)
	if err != nil {
		return nil, err
	}
	p := rec.Plan
	return &p, nil
}

// Admit is OpenSession in its federated form: it returns the full session
// record — plan, home replica, placement key, lease deadline — that a
// client needs in order to fail over to a peer replica later, and queues
// the new session for mirroring to the peers.
func (m *Mediator) Admit(req Requirements) (*SessionRecord, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killed {
		return nil, ErrReplicaDown
	}
	if m.draining {
		m.tel.rejects.Inc()
		return nil, ErrDraining
	}
	m.expireLocked()
	if w := m.cfg.AdmitWatermark; w > 0 && m.maxReservedLocked() >= w {
		m.tel.rejects.Inc()
		m.tel.overloadRejects.Inc()
		return nil, &OverloadedError{RetryAfter: m.retryAfterLocked()}
	}
	p, err := m.admitLocked(req)
	if err != nil {
		return nil, err
	}
	rec := m.recordLocked(p.SessionID, m.sessions[p.SessionID])
	m.mirrorLocked(MirrorUpsert, rec)
	return &rec, nil
}

// maxReservedLocked returns the highest reserved ratio across all agents
// and interconnects; m.mu held.
func (m *Mediator) maxReservedLocked() float64 {
	var max float64
	for i, a := range m.cfg.Agents {
		if a.Rate > 0 {
			if r := m.agentLoad[i] / a.Rate; r > max {
				max = r
			}
		}
	}
	for j, n := range m.cfg.Nets {
		if n.Capacity > 0 {
			if r := m.netLoad[j] / n.Capacity; r > max {
				max = r
			}
		}
	}
	return max
}

// retryAfterLocked derives the overload retry-after hint: a quarter of
// the lease TTL (capacity frees as leases lapse and sessions close),
// floored at 50ms so lease-less installations still pace clients.
func (m *Mediator) retryAfterLocked() time.Duration {
	hint := m.cfg.LeaseTTL / 4
	if hint < 50*time.Millisecond {
		hint = 50 * time.Millisecond
	}
	return hint
}

// admitLocked runs admission control; m.mu held.
func (m *Mediator) admitLocked(req Requirements) (*Plan, error) {
	// Normalize the redundancy scheme: ParityShards implies Redundancy,
	// and plain Redundancy means the single computed copy.
	shards := req.ParityShards
	if shards < 0 {
		m.tel.rejects.Inc()
		return nil, fmt.Errorf("%w: negative parity shards %d", ErrUnsatisfiable, shards)
	}
	if shards > 0 {
		req.Redundancy = true
	}
	if req.Redundancy && shards == 0 {
		shards = 1
	}

	// Available capacity per agent, sorted descending; ties broken by
	// index for determinism.
	type avail struct {
		idx  int
		free float64
	}
	avails := make([]avail, 0, len(m.cfg.Agents))
	for i, a := range m.cfg.Agents {
		if free := a.Rate - m.agentLoad[i]; free > 0 {
			avails = append(avails, avail{i, free})
		}
	}
	sort.Slice(avails, func(i, j int) bool {
		if avails[i].free != avails[j].free {
			return avails[i].free > avails[j].free
		}
		return avails[i].idx < avails[j].idx
	})

	need := req.Rate
	minAgents := 1
	if req.Redundancy {
		// An m+k scheme needs at least two data units per row (one would
		// be replication, not striping) on top of the k parity units.
		minAgents = shards + 2
	}

	// Grow the agent set until the per-agent share fits in the least-
	// capable chosen agent and the per-net traffic fits in every net.
	for k := minAgents; k <= len(avails); k++ {
		chosen := avails[:k]
		dataAgents := k - shards
		if dataAgents < 1 {
			continue
		}
		// With rotating parity every agent carries ~ rate/dataAgents.
		perAgent := need / float64(dataAgents)
		if need == 0 {
			perAgent = 0
		}
		if perAgent > chosen[k-1].free {
			continue
		}
		// Network feasibility.
		netTraffic := make([]float64, len(m.cfg.Nets))
		for _, c := range chosen {
			netTraffic[m.cfg.Agents[c.idx].Net] += perAgent
		}
		ok := true
		for j, tr := range netTraffic {
			if m.netLoad[j]+tr > m.cfg.Nets[j].Capacity {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}

		// Admit: build the plan and reserve. Federated replicas namespace
		// the id so concurrently-admitting replicas never collide.
		m.nextID++
		id := m.nextID
		if m.idBase != 0 {
			id = m.idBase | (m.nextID & idSeqMask)
		}
		p := &Plan{
			SessionID:    id,
			Unit:         m.chooseUnit(k),
			Parity:       req.Redundancy,
			ParityShards: shards,
			Rate:         need,
		}
		for _, c := range chosen {
			p.Agents = append(p.Agents, c.idx)
			p.Addrs = append(p.Addrs, m.cfg.Agents[c.idx].Addr)
			m.agentLoad[c.idx] += perAgent
			m.netLoad[m.cfg.Agents[c.idx].Net] += perAgent
		}
		sort.Ints(p.Agents) // deterministic striping order
		p.Addrs = p.Addrs[:0]
		for _, i := range p.Agents {
			p.Addrs = append(p.Addrs, m.cfg.Agents[i].Addr)
		}
		s := &session{plan: p, key: req.Key, home: m.selfName()}
		if m.cfg.LeaseTTL > 0 {
			s.expires = m.cfg.Now().Add(m.cfg.LeaseTTL)
		}
		m.sessions[p.SessionID] = s
		m.tel.admits.Inc()
		return p, nil
	}
	m.tel.rejects.Inc()
	return nil, fmt.Errorf("%w: rate %.0f B/s (redundancy=%v parity_shards=%d)",
		ErrUnsatisfiable, req.Rate, req.Redundancy, shards)
}

// chooseUnit picks the striping unit for a k-agent session: the largest
// power of two not above MaxUnit/k, floored at MinUnit — large units for
// low-parallelism sessions, small units for high-parallelism ones.
func (m *Mediator) chooseUnit(k int) int64 {
	u := m.cfg.MaxUnit
	for u > m.cfg.MinUnit && u*int64(k) > m.cfg.MaxUnit {
		u /= 2
	}
	if u < m.cfg.MinUnit {
		u = m.cfg.MinUnit
	}
	return u
}

// CloseSession releases a session's reservations. It is idempotent:
// closing a session that is already closed (or was reaped by lease
// expiry) is a no-op, so release paths can be retried safely and a
// heartbeat racing a close cannot double-release capacity.
func (m *Mediator) CloseSession(id uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killed {
		return ErrReplicaDown
	}
	m.expireLocked()
	s := m.sessions[id]
	if s == nil {
		return nil // idempotent: nothing to release
	}
	// Out of the map first, then release: a racing janitor pass or renew
	// can no longer find the session, so capacity cannot double-release.
	rec := m.recordLocked(id, s)
	delete(m.sessions, id)
	m.releaseLocked(s.plan)
	m.tel.closes.Inc()
	m.mirrorLocked(MirrorDelete, rec)
	return nil
}

// releaseLocked returns a plan's reservations to the capacity model;
// m.mu must be held. Out-of-range agent indices are skipped, mirroring
// reserveLocked's guard: a mirrored or client-carried record from a
// differently-sized installation inserts without reserving those
// entries, so it must also release without touching them — anything
// else panics the replica when the foreign record expires or closes.
func (m *Mediator) releaseLocked(p *Plan) {
	dataAgents := len(p.Agents) - p.ParityShards
	if dataAgents < 1 {
		dataAgents = 1
	}
	perAgent := p.Rate / float64(dataAgents)
	for _, i := range p.Agents {
		if i < 0 || i >= len(m.agentLoad) {
			continue // foreign record from a differently-sized installation
		}
		m.agentLoad[i] -= perAgent
		if m.agentLoad[i] < 0 {
			m.agentLoad[i] = 0
		}
		j := m.cfg.Agents[i].Net
		m.netLoad[j] -= perAgent
		if m.netLoad[j] < 0 {
			m.netLoad[j] = 0
		}
	}
}

// Renew extends a session's lease by the configured TTL — the
// distribution agent's heartbeat. With leases disabled it only verifies
// that the session exists. Renewing an unknown (or already expired)
// session returns ErrUnknownSession: the client's reservations are gone
// and it must re-open a session.
func (m *Mediator) Renew(id uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killed {
		return ErrReplicaDown
	}
	m.expireLocked()
	s := m.sessions[id]
	if s == nil {
		return ErrUnknownSession
	}
	if m.cfg.LeaseTTL > 0 {
		s.expires = m.cfg.Now().Add(m.cfg.LeaseTTL)
	}
	m.tel.renewals.Inc()
	if s.home == m.selfName() {
		m.mirrorLocked(MirrorUpsert, m.recordLocked(id, s))
	}
	return nil
}

// SessionStatus is one live session's plan and lease, for operators.
type SessionStatus struct {
	ID           uint64
	Agents       []int
	Unit         int64
	Parity       bool
	ParityShards int
	Rate         float64
	Expires      time.Time // zero when leases are disabled
	Home         string    // replica responsible for the lease
	Key          string    // placement key
	Cached       int       // objects declared cached in the last CacheSync
}

// SessionList snapshots the live sessions, sorted by ID.
func (m *Mediator) SessionList() []SessionStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked()
	out := make([]SessionStatus, 0, len(m.sessions))
	for id, s := range m.sessions {
		out = append(out, SessionStatus{
			ID:           id,
			Agents:       append([]int(nil), s.plan.Agents...),
			Unit:         s.plan.Unit,
			Parity:       s.plan.Parity,
			ParityShards: s.plan.ParityShards,
			Rate:         s.plan.Rate,
			Expires:      s.expires,
			Home:         s.home,
			Key:          s.key,
			Cached:       s.cached,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Sessions reports the number of active (unexpired) sessions.
func (m *Mediator) Sessions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked()
	return len(m.sessions)
}

// AgentLoad returns the reserved data-rate on agent i.
func (m *Mediator) AgentLoad(i int) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked()
	return m.agentLoad[i]
}

// NetLoad returns the reserved data-rate on net j.
func (m *Mediator) NetLoad(j int) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked()
	return m.netLoad[j]
}
